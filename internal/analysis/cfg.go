package analysis

// A per-function control-flow graph over the statements of one Go
// function body. The interprocedural analyzers (timerleak, spanbalance,
// flagorder) need exactly two questions answered that a plain AST walk
// cannot: "does every path from this statement to the function's exit
// pass through one of these other statements?" and "can this statement
// reach that one without re-entering a loop?". The builder below is a
// deliberately small structured-CFG constructor in the spirit of
// golang.org/x/tools/go/cfg, reimplemented on the standard library like
// the rest of this package.
//
// Granularity: each basic block holds a list of *atoms* — simple
// statements and the expression parts of structured statements (an if's
// Init and Cond, a for's Post, a return's results). Structured bodies are
// recursed into their own blocks, so no atom ever contains a nested
// statement; analyzers can ast.Inspect an atom without double-visiting.
// Nested function literals are separate functions: analyzers must not
// descend into them when scanning atoms (see inspectAtom).
//
// Modeling choices, tuned for the invariants checked here:
//
//   - panic(...) terminates its path without reaching exit: a panic
//     aborts the whole run, so an unclosed span or undisarmed timer on a
//     panic path is not a leak the analyzers should charge.
//   - An edge into a loop-head block is marked `back`. Path queries that
//     model "sequenced later in this activation" (flagorder) skip back
//     edges; liveness-style queries (timerleak, spanbalance) follow them.
//   - defer needs no CFG modeling: a deferred consume is treated by the
//     analyzers as consuming at the defer statement itself, since every
//     exit reached after the defer statement executes it.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block: atoms executed in order, then a transfer
// through one of succs.
type cfgBlock struct {
	index int
	atoms []ast.Node
	succs []cfgEdge
}

// cfgEdge is one control transfer. back marks edges into loop heads.
type cfgEdge struct {
	to   *cfgBlock
	back bool
}

// funcCFG is the graph for one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// atomSite locates one atom inside a CFG.
type atomSite struct {
	block *cfgBlock
	idx   int
}

// findAtom locates the atom whose subtree contains pos (excluding nested
// function literals, which are not atoms of this CFG).
func (c *funcCFG) findAtom(pos token.Pos) (atomSite, bool) {
	for _, b := range c.blocks {
		for i, a := range b.atoms {
			if a.Pos() <= pos && pos < a.End() {
				return atomSite{block: b, idx: i}, true
			}
		}
	}
	return atomSite{}, false
}

// cfgBuilder carries the construction state.
type cfgBuilder struct {
	g *funcCFG
	// cur is the block new atoms append to; nil after a terminator until
	// the next statement opens an unreachable continuation block.
	cur *cfgBlock
	// breaks/continues are the innermost targets for unlabeled branches.
	breaks    []*cfgBlock
	continues []*cfgBlock
	// loopHeads marks blocks that are loop heads: edges into them are
	// back edges.
	loopHeads map[*cfgBlock]bool
	// labels: pendingLabel is the label naming the *next* loop/switch
	// built; labeled maps label -> its break/continue targets; labelBlk
	// maps label -> the block a goto jumps to.
	pendingLabel string
	labeled      map[string]*labelTargets
	labelBlk     map[string]*cfgBlock
	gotos        []pendingGoto
	// fallthroughTo is the next case clause's block while building a
	// switch clause body.
	fallthroughTo *cfgBlock
}

type labelTargets struct {
	brk, cont *cfgBlock
}

type pendingGoto struct {
	from  *cfgBlock
	label string
	pos   token.Pos
}

// buildCFG constructs the CFG for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		g:         &funcCFG{},
		loopHeads: map[*cfgBlock]bool{},
		labeled:   map[string]*labelTargets{},
		labelBlk:  map[string]*cfgBlock{},
	}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	// Fall off the end of the body: implicit return.
	b.edge(b.cur, b.g.exit)
	// Resolve forward gotos.
	for _, pg := range b.gotos {
		if tgt := b.labelBlk[pg.label]; tgt != nil {
			e := cfgEdge{to: tgt}
			// A backward goto re-enters earlier code; treat like a loop
			// back edge so forward-order queries do not follow it.
			if len(tgt.atoms) > 0 && tgt.atoms[0].Pos() < pg.pos {
				e.back = true
			}
			pg.from.succs = append(pg.from.succs, e)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// edge appends from→to, marking back edges into loop heads.
func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, cfgEdge{to: to, back: b.loopHeads[to]})
}

// block returns the current block, opening a fresh (unreachable)
// continuation if a terminator just closed the path.
func (b *cfgBuilder) block() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) atom(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.block()
	blk.atoms = append(blk.atoms, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.ExprStmt:
		b.atom(st)
		if isPanicCall(st.X) {
			b.cur = nil // path ends; the run is dead
		}

	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.atom(s)

	case *ast.ReturnStmt:
		b.atom(st)
		b.edge(b.cur, b.g.exit)
		b.cur = nil

	case *ast.IfStmt:
		if st.Init != nil {
			b.atom(st.Init)
		}
		b.atom(st.Cond)
		head := b.block()
		thenB := b.newBlock()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmt(st.Body)
		afterThen := b.cur
		var afterElse *cfgBlock
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(st.Else)
			afterElse = b.cur
		}
		join := b.newBlock()
		b.edge(afterThen, join)
		if st.Else != nil {
			b.edge(afterElse, join)
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.atom(st.Init)
		}
		head := b.newBlock()
		b.loopHeads[head] = true
		b.edge(b.block(), head)
		if st.Cond != nil {
			head.atoms = append(head.atoms, st.Cond)
		}
		after := b.newBlock()
		contTarget := head
		var postB *cfgBlock
		if st.Post != nil {
			postB = b.newBlock()
			postB.atoms = append(postB.atoms, st.Post)
			b.edge(postB, head)
			contTarget = postB
		}
		if st.Cond != nil {
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, after, contTarget)
		b.cur = body
		b.stmt(st.Body)
		b.edge(b.cur, contTarget)
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.atom(st.X)
		head := b.newBlock()
		b.loopHeads[head] = true
		b.edge(b.block(), head)
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmt(st.Body)
		b.edge(b.cur, head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.atom(st.Init)
		}
		if st.Tag != nil {
			b.atom(st.Tag)
		}
		b.caseClauses(label, st.Body.List, func(cc *ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool) {
			return cc.List, cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.atom(st.Init)
		}
		b.atom(st.Assign)
		b.caseClauses(label, st.Body.List, func(cc *ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool) {
			return cc.List, cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.block()
		after := b.newBlock()
		b.pushSwitch(label, after)
		var hasDefault bool
		for _, c := range st.Body.List {
			comm := c.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(head, cb)
			b.cur = cb
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			} else {
				hasDefault = true
			}
			b.stmtList(comm.Body)
			b.edge(b.cur, after)
		}
		_ = hasDefault // a default-less select still always transfers to a clause
		b.popSwitch()
		b.cur = after

	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.edge(b.cur, lbl)
		b.cur = lbl
		b.labelBlk[st.Label.Name] = lbl
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			var tgt *cfgBlock
			if st.Label != nil {
				if lt := b.labeled[st.Label.Name]; lt != nil {
					tgt = lt.brk
				}
			} else if len(b.breaks) > 0 {
				tgt = b.breaks[len(b.breaks)-1]
			}
			b.edge(b.cur, tgt)
			b.cur = nil
		case token.CONTINUE:
			var tgt *cfgBlock
			if st.Label != nil {
				if lt := b.labeled[st.Label.Name]; lt != nil {
					tgt = lt.cont
				}
			} else if len(b.continues) > 0 {
				tgt = b.continues[len(b.continues)-1]
			}
			b.edge(b.cur, tgt)
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: st.Label.Name, pos: st.Pos()})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			b.edge(b.cur, b.fallthroughTo)
			b.cur = nil
		}

	default:
		// Unknown statement kinds are treated as opaque atoms.
		b.atom(s)
	}
}

// caseClauses builds the shared switch/type-switch clause structure.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, split func(*ast.CaseClause) ([]ast.Expr, []ast.Stmt, bool)) {
	head := b.block()
	after := b.newBlock()
	b.pushSwitch(label, after)
	// Pre-create clause blocks so fallthrough can target the next one.
	blks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i := range clauses {
		blks[i] = b.newBlock()
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		exprs, body, isDefault := split(cc)
		if isDefault {
			hasDefault = true
		}
		b.edge(head, blks[i])
		b.cur = blks[i]
		for _, e := range exprs {
			b.atom(e)
		}
		saved := b.fallthroughTo
		if i+1 < len(clauses) {
			b.fallthroughTo = blks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(body)
		b.fallthroughTo = saved
		b.edge(b.cur, after)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.popSwitch()
	b.cur = after
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		b.labeled[label] = &labelTargets{brk: brk, cont: cont}
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) pushSwitch(label string, brk *cfgBlock) {
	b.breaks = append(b.breaks, brk)
	if label != "" {
		b.labeled[label] = &labelTargets{brk: brk}
	}
}

func (b *cfgBuilder) popSwitch() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// isPanicCall reports whether e is a direct call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}

// inspectAtom walks an atom's subtree without descending into nested
// function literals (which are separate functions with their own CFGs).
func inspectAtom(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}

// funcUnit is one analyzable function: a declaration or a function
// literal, with its body.
type funcUnit struct {
	name string
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

// funcUnits enumerates every function body in a file: declarations and
// all nested function literals, outermost first. Each literal is its own
// unit — "every path out of the arming function" means paths out of the
// innermost enclosing function, not out of the declaration that happens
// to lexically contain it.
func funcUnits(f *ast.File) []funcUnit {
	var units []funcUnit
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		units = append(units, funcUnit{name: fd.Name.Name, decl: fd, body: fd.Body})
		collectLits(fd.Body, fd.Name.Name, &units)
	}
	// Function literals in package-level var initializers.
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				collectLits(v, "package-level func literal", &units)
			}
		}
	}
	return units
}

func collectLits(root ast.Node, outer string, units *[]funcUnit) {
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		*units = append(*units, funcUnit{name: "func literal in " + outer, lit: lit, body: lit.Body})
		collectLits(lit.Body, outer, units)
		return false
	})
}
