package analysis

// simDomain lists the packages whose code runs under (or feeds) the
// discrete-event engine, where byte-determinism is load-bearing: only
// virtual sim.Time may advance, all randomness flows through the seeded
// splitmix64 injector, map iteration must not order output, and all
// concurrency goes through sim.Proc or the runner pool.
//
// cmd/* and examples/* are deliberately outside the domain: they sit on
// the far side of the determinism boundary (flag parsing, stderr
// progress, process exit) and are covered only by the module-wide
// checks (boundedwait, directive).
var simDomain = map[string]bool{
	"putget/internal/sim":       true,
	"putget/internal/pcie":      true,
	"putget/internal/wire":      true,
	"putget/internal/topo":      true,
	"putget/internal/extoll":    true,
	"putget/internal/ibsim":     true,
	"putget/internal/gpusim":    true,
	"putget/internal/hostsim":   true,
	"putget/internal/core":      true,
	"putget/internal/faults":    true,
	"putget/internal/transport": true,
	"putget/internal/shmem":     true,
	"putget/internal/trace":     true,
	"putget/internal/bench":     true,
	// Beyond the core list: these also execute between a seed and a
	// figure, so the same invariants hold.
	"putget/internal/runner":   true,
	"putget/internal/msg":      true,
	"putget/internal/memspace": true,
	"putget/internal/cluster":  true,
	"putget/internal/stats":    true,
	"putget/internal/kv":       true,
}

// IsSimDomain reports whether the import path is inside the determinism
// boundary.
func IsSimDomain(path string) bool { return simDomain[path] }

// simPkgPath is where the virtual-clock types live; engineaffinity uses
// it to recognize captured engine handles.
const simPkgPath = "putget/internal/sim"

// runnerPkgPath is the sanctioned worker pool; closures shipped to it
// must not capture engine handles from the spawning shard.
const runnerPkgPath = "putget/internal/runner"
