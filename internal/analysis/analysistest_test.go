package analysis

// This file is the fixture harness: an analysistest-style runner on the
// standard library alone. Fixture sources under testdata/src/putget form
// a standalone module named `putget` (so the sim-domain import paths
// resolve), seeded with deliberate violations. Expectations are written
// as comments in the fixtures:
//
//	code() // want `regex`
//	// want+2 `regex`      (expectation for the line two below)
//
// Each regex is matched against "analyzer: message" of a finding on that
// file:line. The test fails on any unmatched expectation (a seeded
// violation the analyzer missed) and on any unexpected finding (a false
// positive on the clean shapes).

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe parses "// want+N `re` `re` ..." comments.
var wantRe = regexp.MustCompile("^// want(\\+[0-9]+)? (`[^`]*`(?: `[^`]*`)*)$")

var wantArgRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file string // absolute path
	line int
	re   *regexp.Regexp
	src  token.Position // where the want comment itself sits, for messages
}

// parseExpectations walks every non-test .go file under dir.
func parseExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	var exps []expectation
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing fixture %s: %v", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, _ := strconv.Atoi(m[1][1:])
					line += off
				}
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[2], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						return fmt.Errorf("%s: bad want regexp %q: %v", pos, arg[1], err)
					}
					exps = append(exps, expectation{file: path, line: line, re: re, src: pos})
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return exps
}

func fixtureDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "putget"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestAnalyzersOnFixtures runs the full suite over the fixture module
// and reconciles findings against the want comments.
func TestAnalyzersOnFixtures(t *testing.T) {
	dir := fixtureDir(t)
	diags, err := Run(dir, []string{"./..."}, All())
	if err != nil {
		t.Fatalf("running analyzers over fixtures: %v", err)
	}
	exps := parseExpectations(t, dir)
	if len(exps) == 0 {
		t.Fatal("no want expectations found in fixtures")
	}

	matched := make([]bool, len(diags))
	for _, exp := range exps {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != exp.file || d.Pos.Line != exp.line {
				continue
			}
			if exp.re.MatchString(d.Analyzer + ": " + d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no finding matching %q at %s:%d",
				exp.src, exp.re, filepath.Base(exp.file), exp.line)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// TestFixtureFindingsPerAnalyzer pins that every analyzer fires at least
// once on the fixtures — a guard against an analyzer silently becoming a
// no-op (e.g. a renamed package emptying the sim domain).
func TestFixtureFindingsPerAnalyzer(t *testing.T) {
	diags, err := Run(fixtureDir(t), []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, d := range diags {
		got[d.Analyzer]++
	}
	for _, a := range All() {
		if got[a.Name] == 0 {
			t.Errorf("analyzer %s produced no findings on the seeded fixtures", a.Name)
		}
	}
}

// TestDeterministicOutput: two runs over the same tree produce identical
// findings in identical order — the linter's own output is subject to
// the invariant it enforces.
func TestDeterministicOutput(t *testing.T) {
	dir := fixtureDir(t)
	first, err := Run(dir, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(dir, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("finding counts differ between runs: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].String() != second[i].String() {
			t.Errorf("finding %d differs between runs:\n  %s\n  %s", i, first[i], second[i])
		}
	}
}
