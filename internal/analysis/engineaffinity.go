package analysis

import (
	"go/ast"
	"go/types"
)

// EngineAffinity turns PR 2's runtime engine-affinity panics (cross-
// engine touch, concurrent-touch CAS detector) into compile-time
// findings. Two shapes are flagged in sim-domain packages:
//
//  1. Raw `go` statements. A goroutine that touches an engine from
//     outside the engine's own scheduling discipline is exactly what
//     the CAS detector panics on at runtime; all concurrency in the sim
//     domain goes through sim.Proc (engine-owned coroutines) or the
//     runner pool (isolated per-cell engines).
//
//  2. Closures shipped to the runner pool (any call into
//     putget/internal/runner) that capture a *sim.Engine or *sim.Proc
//     from the enclosing scope. Each shard must construct its own
//     engine; a captured handle is a cross-engine touch waiting for a
//     worker to schedule it.
var EngineAffinity = &Analyzer{
	Name: "engineaffinity",
	Doc:  "flag raw go statements and engine handles captured by runner-pool closures in sim-domain code",
	Run: func(pass *Pass) error {
		if !IsSimDomain(pass.Pkg.Path()) {
			return nil
		}
		for _, f := range pass.Files {
			if pass.isTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(e.Pos(),
						"raw go statement in sim-domain package %s: concurrency must go through sim.Proc or the runner pool (or annotate with //putget:allow engineaffinity -- <reason>)",
						pass.Pkg.Path())
				case *ast.CallExpr:
					checkRunnerCapture(pass, e)
				}
				return true
			})
		}
		return nil
	},
}

// checkRunnerCapture inspects closures passed to the runner pool for
// captured engine handles.
func checkRunnerCapture(pass *Pass, call *ast.CallExpr) {
	if !isRunnerCall(pass, call) {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			// Free variable: declared before the literal begins (params
			// and body-local variables are declared inside it).
			if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
				return true
			}
			if name := engineHandleType(v.Type()); name != "" {
				pass.Reportf(id.Pos(),
					"%s %s captured by a closure shipped to the runner pool: each shard must construct its own engine (cross-engine touch panics at runtime)",
					name, id.Name)
			}
			return true
		})
	}
}

// isRunnerCall reports whether the call resolves to a function in
// putget/internal/runner (runner.Run, runner.Map, ...), including
// generic instantiations.
func isRunnerCall(pass *Pass, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	// Strip explicit instantiation: runner.Map[cell, string](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X
	case *ast.IndexListExpr:
		fun = ix.X
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[f.Sel]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == runnerPkgPath
}

// engineHandleType returns a display name if t is (a pointer to) an
// engine-affine handle type, else "".
func engineHandleType(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != simPkgPath {
		return ""
	}
	switch named.Obj().Name() {
	case "Engine":
		return "sim engine handle"
	case "Proc":
		return "sim process handle"
	}
	return ""
}
