package analysis

// A conservative, package-local call graph. Nodes are the functions and
// methods declared in the package under analysis; edges are the static
// calls their bodies (including nested function literals) make, resolved
// through the type checker. Callees outside the package — stdlib,
// sibling packages loaded as export data, interface methods — appear as
// leaf nodes with no out-edges, since their bodies are not loaded; this
// matches the per-package unit model of `go vet`, where dependencies
// arrive pre-compiled.
//
// The graph answers reachability questions: boundedwait uses it to
// replace the old name-only wrapper-ladder exemption ("a call to
// DevWaitComplete inside a function that happens to be named
// DevWaitComplete") with real transitive membership — every function
// reachable from a wait's own definition is part of implementing that
// wait, however many helpers the implementation is factored into.

import (
	"go/ast"
	"go/types"
)

// callGraph maps each function object to the set of functions it calls.
type callGraph struct {
	// calls maps caller -> callees (static, deduplicated).
	calls map[*types.Func][]*types.Func
	// decls maps the functions declared in this package to their bodies.
	decls map[*types.Func]*ast.FuncDecl
}

// buildCallGraph constructs the call graph for the pass's package.
// Calls made inside a function literal are attributed to the enclosing
// declared function: a helper closure is part of its function's body.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{
		calls: map[*types.Func][]*types.Func{},
		decls: map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[caller] = fd
			seen := map[*types.Func]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(pass, call); callee != nil && !seen[callee] {
					seen[callee] = true
					g.calls[caller] = append(g.calls[caller], callee)
				}
				return true
			})
		}
	}
	return g
}

// calleeFunc resolves a call expression to the called *types.Func, or
// nil for calls through variables, builtins, and conversions. Interface
// method calls resolve to the interface's method object — a leaf, since
// which implementation runs is not statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X // generic instantiation
	case *ast.IndexListExpr:
		fun = ix.X
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[f.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// reachable returns the set of declared functions reachable from roots
// (roots included), following call edges through this package only.
func (g *callGraph) reachable(roots []*types.Func) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if out[fn] {
			return
		}
		out[fn] = true
		for _, callee := range g.calls[fn] {
			// Only expand callees whose bodies live in this package.
			if _, ok := g.decls[callee]; ok {
				visit(callee)
			} else {
				out[callee] = true
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return out
}
