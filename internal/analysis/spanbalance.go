package analysis

// The spanbalance analyzer flags SpanOpen/SpanOpenAt calls with a path
// to return that lacks the matching SpanClose.
//
// Motivating bugs (PR 3, PR 6): the span tracing layer's exact-sum
// `breakdown` experiment requires every opened span to close — an
// unbalanced span either skews a stage's latency sum or trips the
// recorder's dynamic imbalance check, but only on runs where tracing is
// attached and the leaky path executes. The kv suite checks this
// dynamically; this analyzer moves the check to vet time, where the
// leaky error-return path is visible without having to provoke it.

import (
	"go/ast"
)

// SpanBalance reports trace spans opened but not closed on every path.
var SpanBalance = &Analyzer{
	Name: "spanbalance",
	Doc:  "report SpanOpen/SpanOpenAt without a matching SpanClose on every path",
	Run:  runSpanBalance,
}

var spanBalanceRule = &balanceRule{
	openNames: map[string]bool{"SpanOpen": true, "SpanOpenAt": true},
	consume:   spanConsume,
	read:      spanRead,
	discarded: func(open string) string {
		return "result of " + open + " discarded: the span can never be closed " +
			"and will skew breakdown sums; keep the SpanID and SpanClose it, " +
			"or annotate with //putget:allow spanbalance -- <reason>"
	},
	leaked: func(open, fn string) string {
		return "span from " + open + " is not closed on a path out of " + fn + ": " +
			"add SpanClose before every return (defer works), " +
			"or annotate with //putget:allow spanbalance -- <reason>"
	},
}

func runSpanBalance(pass *Pass) error {
	return runBalance(pass, spanBalanceRule)
}

// spanConsume matches `e.SpanClose(id)` / `e.SpanCloseAt(id, at)` where
// e is a sim.Engine and id is the tracked span.
func spanConsume(pass *Pass, path []ast.Node, id *ast.Ident) bool {
	call, ok := parentNonParen(path, id).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 || ast.Unparen(call.Args[0]) != id {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "SpanClose" && sel.Sel.Name != "SpanCloseAt") {
		return false
	}
	return isEngineMethodSel(pass, sel)
}

// spanRead: SpanIDs have no query methods; comparisons and condition
// positions are already handled structurally by the balance engine.
func spanRead(pass *Pass, path []ast.Node, id *ast.Ident) bool {
	return false
}
