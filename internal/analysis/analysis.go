// Package analysis is putgetlint: a suite of static analyzers that
// enforce the simulator's determinism and engine-affinity invariants at
// vet time instead of rediscovering them as flaky golden-test diffs.
//
// Every figure the repro ships is credible only because the
// discrete-event engine is byte-deterministic across seeds, worker
// counts and refactors. The invariants behind that determinism are
// static properties of the code, and this package checks them as such:
//
//   - nowalltime: no wall-clock time (time.Now, time.Sleep, ...) in
//     sim-domain packages — only virtual sim.Time is legal there.
//   - noglobalrand: no math/rand or crypto/rand in sim-domain packages —
//     randomness must flow through the seeded splitmix64 injector
//     (internal/faults).
//   - maporder: no iteration over a map whose body has order-dependent
//     effects (emits output, appends to an outer slice that is never
//     sorted, posts sim events, writes trace records).
//   - engineaffinity: no raw go statements in sim-domain code, and no
//     sim.Engine/sim.Proc handles captured by closures shipped to the
//     runner pool — all concurrency goes through sim.Proc or the pool,
//     and every shard builds its own engine.
//   - boundedwait: no unbounded blocking waits (DevWaitComplete,
//     HostWaitNotif, DevPollCQ, ...) outside test files — use the
//     ...Timeout variants, or annotate why the wait cannot hang. The
//     exemption for a wait's own implementation is computed from the
//     package call graph: every function transitively reachable from a
//     wait-named definition is part of that wait's delegation ladder.
//
// Four interprocedural analyzers, built on the per-function CFG
// (cfg.go) and per-package call graph (callgraph.go), target bug
// classes this repo has actually shipped and then fixed:
//
//   - timerleak: an AtTimer/AfterTimer handle neither Cancelled nor
//     handed off on every path out of the arming function — the PR 7
//     tombstone class.
//   - spanbalance: a SpanOpen/SpanOpenAt with a path to return that
//     lacks the matching SpanClose — the class the kv suite only
//     checks dynamically (PR 3/PR 6).
//   - flagorder: a flag/imm put sequenced before the bulk put it
//     signals on the same endpoint — the PR 8 stale-read class.
//   - hotalloc: composite-literal, closure-capture, and
//     interface-boxing allocations inside functions marked
//     //putget:hot — the PR 7/PR 9 allocs/op baselines as a
//     compile-time guard.
//
// A final analyzer, directive, validates the suppression syntax itself.
//
// Legitimate exceptions are annotated in-source with
//
//	//putget:allow <analyzer> -- <reason>
//
// which suppresses findings of that analyzer on the directive's line and
// the line below it. Placed before the package clause, the directive
// applies to the whole file. The reason is mandatory: an allow without
// one is itself a finding — and so is a stale allow that suppresses
// nothing, so suppressions cannot outlive the code they excused.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the analyzers could be ported to the
// upstream framework verbatim if the dependency ever becomes available;
// it is reimplemented here on the standard library alone because this
// module has no third-party dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //putget:allow directives.
	Name string
	// Doc is a one-paragraph description of what it enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass hands one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos. Findings suppressed by a valid
// //putget:allow directive are dropped by the runner.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// isTestFile reports whether pos lies in a _test.go file. Test files are
// exempt from every analyzer: runtime tests may legitimately use
// wall-clock deadlines, unbounded waits on known-complete schedules, and
// unordered map walks over their own assertions.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// All returns the full putgetlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoWallTime,
		NoGlobalRand,
		MapOrder,
		EngineAffinity,
		BoundedWait,
		TimerLeak,
		SpanBalance,
		FlagOrder,
		HotAlloc,
		Directive,
	}
}

// ByName resolves analyzer names (for directive validation).
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage applies the given analyzers to one loaded package and
// returns the surviving findings in source order. Suppression via
// //putget:allow is applied here so every analyzer gets it uniformly —
// and tracked, so that after all analyzers have run, a valid directive
// that suppressed nothing (for an analyzer that actually ran) is
// reported as stale: the code it excused is gone and the suppression
// must not outlive it.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	ran := map[string]bool{}
	var out []Diagnostic
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.report = func(d Diagnostic) {
			if a.Name != directiveName && dirs.allows(a.Name, d.Pos) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Types.Path(), a.Name, err)
		}
	}
	if ran[directiveName] {
		for _, d := range dirs.all {
			if d.valid() && !d.used && ran[d.analyzer] {
				out = append(out, Diagnostic{
					Analyzer: directiveName,
					Pos:      d.pos,
					Message: fmt.Sprintf(
						"stale putget:allow %s: it suppresses no finding — the code it excused is gone; delete the directive",
						d.analyzer),
				})
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool { return diagLess(ds[i], ds[j]) })
}

func diagLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
