// Package analysis is putgetlint: a suite of static analyzers that
// enforce the simulator's determinism and engine-affinity invariants at
// vet time instead of rediscovering them as flaky golden-test diffs.
//
// Every figure the repro ships is credible only because the
// discrete-event engine is byte-deterministic across seeds, worker
// counts and refactors. The invariants behind that determinism are
// static properties of the code, and this package checks them as such:
//
//   - nowalltime: no wall-clock time (time.Now, time.Sleep, ...) in
//     sim-domain packages — only virtual sim.Time is legal there.
//   - noglobalrand: no math/rand or crypto/rand in sim-domain packages —
//     randomness must flow through the seeded splitmix64 injector
//     (internal/faults).
//   - maporder: no iteration over a map whose body has order-dependent
//     effects (emits output, appends to an outer slice that is never
//     sorted, posts sim events, writes trace records).
//   - engineaffinity: no raw go statements in sim-domain code, and no
//     sim.Engine/sim.Proc handles captured by closures shipped to the
//     runner pool — all concurrency goes through sim.Proc or the pool,
//     and every shard builds its own engine.
//   - boundedwait: no unbounded blocking waits (DevWaitComplete,
//     HostWaitNotif, DevPollCQ, ...) outside test files — use the
//     ...Timeout variants, or annotate why the wait cannot hang.
//
// A sixth analyzer, directive, validates the suppression syntax itself.
//
// Legitimate exceptions are annotated in-source with
//
//	//putget:allow <analyzer> -- <reason>
//
// which suppresses findings of that analyzer on the directive's line and
// the line below it. Placed before the package clause, the directive
// applies to the whole file. The reason is mandatory: an allow without
// one is itself a finding.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the analyzers could be ported to the
// upstream framework verbatim if the dependency ever becomes available;
// it is reimplemented here on the standard library alone because this
// module has no third-party dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //putget:allow directives.
	Name string
	// Doc is a one-paragraph description of what it enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass hands one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos. Findings suppressed by a valid
// //putget:allow directive are dropped by the runner.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// isTestFile reports whether pos lies in a _test.go file. Test files are
// exempt from every analyzer: runtime tests may legitimately use
// wall-clock deadlines, unbounded waits on known-complete schedules, and
// unordered map walks over their own assertions.
func (p *Pass) isTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// All returns the full putgetlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoWallTime,
		NoGlobalRand,
		MapOrder,
		EngineAffinity,
		BoundedWait,
		Directive,
	}
}

// ByName resolves analyzer names (for directive validation).
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage applies the given analyzers to one loaded package and
// returns the surviving findings in source order. Suppression via
// //putget:allow is applied here so every analyzer gets it uniformly.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.report = func(d Diagnostic) {
			if a.Name != directiveName && dirs.allows(a.Name, d.Pos) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Types.Path(), a.Name, err)
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool { return diagLess(ds[i], ds[j]) })
}

func diagLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
