package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-level identifiers of the time package
// that read or wait on the host's wall clock. Pure data types
// (time.Duration arithmetic, formatting of already-captured values) are
// not flagged: the invariant is that no wall-clock *reading* happens in
// the sim domain, not that the time package is unmentionable.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// NoWallTime forbids wall-clock time in sim-domain packages: results
// must be functions of the seed alone, and the only clock that may
// advance between a stimulus and a measurement is virtual sim.Time.
var NoWallTime = &Analyzer{
	Name: "nowalltime",
	Doc:  "forbid time.Now/Sleep/Since/After etc. in sim-domain packages; only virtual sim.Time is legal there",
	Run: func(pass *Pass) error {
		if !IsSimDomain(pass.Pkg.Path()) {
			return nil
		}
		for _, f := range pass.Files {
			if pass.isTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
				if !ok || pkgName.Imported().Path() != "time" {
					return true
				}
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in sim-domain package %s: only virtual sim.Time may advance here (or annotate with //putget:allow nowalltime -- <reason>)",
						sel.Sel.Name, pass.Pkg.Path())
				}
				return true
			})
		}
		return nil
	},
}
