package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive:
//
//	//putget:allow <analyzer> -- <reason>
//
// Scope rules:
//   - On or above the line of a finding (trailing comment or the line
//     immediately above), it suppresses that analyzer's findings there.
//   - Before the package clause, it suppresses that analyzer for the
//     whole file (for e.g. a benchmark harness whose every measurement
//     loop legitimately uses unbounded waits).
//
// The reason after " -- " is mandatory and must be non-empty: the point
// of the directive is that every exception to an invariant is justified
// in-source, reviewable, and greppable. Malformed directives never
// suppress anything and are themselves findings (see Directive below).
const directivePrefix = "//putget:allow"

const directiveName = "directive"

// directive is one parsed //putget:allow comment.
type directive struct {
	analyzer string // analyzer name, "" if missing
	reason   string // justification after " -- ", "" if missing
	pos      token.Position
	fileWide bool // appeared before the package clause
	used     bool // suppressed at least one finding this run
}

// parseDirective splits one comment. ok is false for comments that are
// not putget:allow directives at all.
func parseDirective(c *ast.Comment) (analyzer, reason string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := text[len(directivePrefix):]
	// Require an exact token boundary: "//putget:allowx" is not a directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false
	}
	rest = strings.TrimSpace(rest)
	name, reason, found := strings.Cut(rest, "--")
	name = strings.TrimSpace(name)
	if !found {
		return name, "", true
	}
	return name, strings.TrimSpace(reason), true
}

// directiveIndex records, per file, which analyzers are allowed where.
// Entries point at the shared directive records so suppression hits can
// be tracked for stale-allow detection.
type directiveIndex struct {
	// fileWide maps filename -> analyzer name -> whole-file directives.
	fileWide map[string]map[string][]*directive
	// byLine maps filename -> line -> analyzer name -> directives there.
	byLine map[string]map[int]map[string][]*directive
	// all holds every directive (well-formed or not) for validation.
	all []*directive
}

// parseDirectives scans the comments of every file.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{
		fileWide: map[string]map[string][]*directive{},
		byLine:   map[string]map[int]map[string][]*directive{},
	}
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{
					analyzer: name,
					reason:   reason,
					pos:      pos,
					fileWide: pos.Line < pkgLine,
				}
				idx.all = append(idx.all, d)
				if !d.valid() {
					continue // malformed directives never suppress
				}
				if d.fileWide {
					m := idx.fileWide[pos.Filename]
					if m == nil {
						m = map[string][]*directive{}
						idx.fileWide[pos.Filename] = m
					}
					m[name] = append(m[name], d)
				} else {
					lines := idx.byLine[pos.Filename]
					if lines == nil {
						lines = map[int]map[string][]*directive{}
						idx.byLine[pos.Filename] = lines
					}
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						m := lines[ln]
						if m == nil {
							m = map[string][]*directive{}
							lines[ln] = m
						}
						m[name] = append(m[name], d)
					}
				}
			}
		}
	}
	return idx
}

// valid reports whether the directive names a real analyzer and carries
// a non-empty reason.
func (d *directive) valid() bool {
	return d.analyzer != "" && d.analyzer != directiveName &&
		ByName(d.analyzer) != nil && d.reason != ""
}

// allows reports whether a finding of the named analyzer at pos is
// suppressed, marking every directive that contributed as used.
func (idx *directiveIndex) allows(analyzer string, pos token.Position) bool {
	hit := false
	for _, d := range idx.fileWide[pos.Filename][analyzer] {
		d.used = true
		hit = true
	}
	for _, d := range idx.byLine[pos.Filename][pos.Line][analyzer] {
		d.used = true
		hit = true
	}
	return hit
}

// Directive validates the suppression directives themselves: every
// //putget:allow must name a known analyzer and carry a reason after
// " -- ". It runs in every package (including non-sim-domain ones) so a
// typo can never silently disable a real check. Stale detection — a
// valid directive that suppressed nothing — is done by RunPackage after
// all analyzers have reported, and is attributed to this analyzer.
var Directive = &Analyzer{
	Name: directiveName,
	Doc:  "putget:allow directives must name a known analyzer, carry a reason, and suppress something",
}

// Run is attached in init to break the initialization cycle
// Directive -> ByName -> All -> Directive.
func init() {
	Directive.Run = runDirective
}

func runDirective(pass *Pass) error {
	idx := parseDirectives(pass.Fset, pass.Files)
	for _, d := range idx.all {
		if d.valid() {
			continue
		}
		var msg string
		switch {
		case d.analyzer == "":
			msg = "putget:allow needs an analyzer name: //putget:allow <analyzer> -- <reason>"
		case d.analyzer == directiveName || ByName(d.analyzer) == nil:
			msg = fmt.Sprintf("putget:allow names unknown analyzer %q", d.analyzer)
		default:
			msg = "putget:allow " + d.analyzer + " is missing its reason: append -- <why this exception is safe>"
		}
		pass.report(Diagnostic{Analyzer: directiveName, Pos: d.pos, Message: msg})
	}
	return nil
}
