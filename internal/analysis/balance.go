package analysis

// The shared open/consume path-balance engine behind timerleak and
// spanbalance. Both analyzers check the same shape: a call that opens a
// resource handle (a cancellable sim.Timer, a trace SpanID) must, on
// every path out of the arming function, either be consumed (cancelled /
// closed) or provably handed off to someone else (stored in a struct,
// returned, passed along — an escape means another function owns the
// balance obligation and the per-function analysis stops).
//
// The analysis is deliberately conservative in the false-positive
// direction:
//
//   - any escape of the handle (field store, call argument other than
//     the consume call, return, capture by a non-deferred closure,
//     address-taken) abandons the site: ownership moved;
//   - reassigning the variable kills the tracked handle on that path
//     (the overwrite is its own open site, analyzed independently);
//   - a consume inside `defer v.Cancel()` or `defer func(){ v.Cancel() }()`
//     counts at the defer statement: every exit reached after it runs it;
//   - paths ending in panic() are not charged — the run is dead.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// balanceRule parameterizes the engine for one analyzer.
type balanceRule struct {
	// openNames are the sim.Engine methods that create the handle.
	openNames map[string]bool
	// consume classifies a call that discharges the obligation for v:
	// Timer.Cancel, Engine.SpanClose(v)/SpanCloseAt(v, ...).
	consume func(pass *Pass, path []ast.Node, id *ast.Ident) bool
	// read classifies harmless uses (Timer.Active, comparisons are
	// handled structurally). A use that is neither consume, read, nor a
	// recognized structural shape is an escape.
	read func(pass *Pass, path []ast.Node, id *ast.Ident) bool
	// discarded builds the finding message for a dropped result.
	discarded func(openName string) string
	// leaked builds the finding message for an unbalanced path.
	leaked func(openName, fn string) string
}

// runBalance applies a balance rule to every function in the package.
func runBalance(pass *Pass, rule *balanceRule) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, unit := range funcUnits(f) {
			checkBalanceUnit(pass, rule, unit)
		}
	}
	return nil
}

// openCall matches `recv.Name(...)` where Name is an open method and
// recv is a *sim.Engine.
func openCall(pass *Pass, rule *balanceRule, n ast.Node) (*ast.CallExpr, string) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !rule.openNames[sel.Sel.Name] {
		return nil, ""
	}
	if !isEngineMethodSel(pass, sel) {
		return nil, ""
	}
	return call, sel.Sel.Name
}

// isEngineMethodSel reports whether sel is a method selection on a
// (pointer to) sim.Engine.
func isEngineMethodSel(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return engineHandleType(s.Recv()) == "sim engine handle"
}

func checkBalanceUnit(pass *Pass, rule *balanceRule, unit funcUnit) {
	// Find open calls in this unit (not in nested literals — those are
	// their own units).
	type openSite struct {
		call *ast.CallExpr
		name string
	}
	var opens []openSite
	ast.Inspect(unit.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != unit.body {
			return false
		}
		if call, name := openCall(pass, rule, n); call != nil {
			opens = append(opens, openSite{call: call, name: name})
		}
		return true
	})
	if len(opens) == 0 {
		return
	}

	cfg := buildCFG(unit.body)
	for _, o := range opens {
		checkOpenSite(pass, rule, unit, cfg, o.call, o.name)
	}
}

func checkOpenSite(pass *Pass, rule *balanceRule, unit funcUnit, cfg *funcCFG, call *ast.CallExpr, openName string) {
	path := nodePath(unit.body, call)
	if path == nil {
		return
	}
	bind, v := bindingOf(pass, path, call)
	switch bind {
	case bindDiscarded:
		pass.Reportf(call.Pos(), "%s", rule.discarded(openName))
		return
	case bindEscaped:
		return // result handed off at the open itself
	}

	// Collect every use of v in the unit and classify it.
	var consumePos []token.Pos
	escaped := false
	bindIdent := bindingIdent(path, call)
	ast.Inspect(unit.body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == bindIdent {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj != v {
			return true
		}
		upath := nodePath(unit.body, id)
		switch classifyUse(pass, rule, unit, upath, id) {
		case useConsume:
			consumePos = append(consumePos, topStmtPos(unit, upath, id))
		case useRead:
		case useEscape:
			escaped = true
		}
		return true
	})
	if escaped {
		return
	}

	// Map consume positions to CFG atoms.
	consumeAtoms := map[ast.Node]bool{}
	for _, p := range consumePos {
		if site, ok := cfg.findAtom(p); ok {
			consumeAtoms[site.block.atoms[site.idx]] = true
		}
	}

	open, ok := cfg.findAtom(call.Pos())
	if !ok {
		return
	}
	if leakPathExists(cfg, open, consumeAtoms) {
		pass.Reportf(call.Pos(), "%s", rule.leaked(openName, unit.name))
	}
}

// leakPathExists reports whether some path from the open atom to the
// function exit avoids every consume atom. Back edges are followed: a
// loop iteration that re-runs the open without consuming is a real path.
func leakPathExists(cfg *funcCFG, open atomSite, consumeAtoms map[ast.Node]bool) bool {
	if len(consumeAtoms) == 0 {
		// No consume anywhere: leak iff exit is reachable at all.
		return exitReachable(cfg, open)
	}
	type state struct {
		b   *cfgBlock
		idx int
	}
	visited := map[*cfgBlock]bool{}
	stack := []state{{open.block, open.idx + 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		consumed := false
		for i := s.idx; i < len(s.b.atoms); i++ {
			if consumeAtoms[s.b.atoms[i]] {
				consumed = true
				break
			}
		}
		if consumed {
			continue
		}
		if s.b == cfg.exit {
			return true
		}
		for _, e := range s.b.succs {
			if e.to == cfg.exit {
				return true
			}
			if !visited[e.to] {
				visited[e.to] = true
				stack = append(stack, state{e.to, 0})
			}
		}
	}
	return false
}

func exitReachable(cfg *funcCFG, from atomSite) bool {
	visited := map[*cfgBlock]bool{}
	stack := []*cfgBlock{from.block}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == cfg.exit {
			return true
		}
		if visited[b] {
			continue
		}
		visited[b] = true
		for _, e := range b.succs {
			stack = append(stack, e.to)
		}
	}
	return false
}

// Binding classification for the open call's result.
type bindKind int

const (
	bindVar bindKind = iota
	bindDiscarded
	bindEscaped
)

// bindingOf inspects the open call's parents to find what happens to its
// result: bound to a local variable, discarded, or escaped on the spot.
func bindingOf(pass *Pass, path []ast.Node, call *ast.CallExpr) (bindKind, *types.Var) {
	parent := parentNonParen(path, call)
	switch p := parent.(type) {
	case *ast.ExprStmt:
		return bindDiscarded, nil
	case *ast.AssignStmt:
		if len(p.Lhs) != len(p.Rhs) {
			return bindEscaped, nil
		}
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != call {
				continue
			}
			id, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident)
			if !ok {
				return bindEscaped, nil // field/index store: handed off
			}
			if id.Name == "_" {
				return bindDiscarded, nil
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if v, ok := obj.(*types.Var); ok {
				return bindVar, v
			}
			return bindEscaped, nil
		}
	case *ast.ValueSpec:
		for i, val := range p.Values {
			if ast.Unparen(val) != call {
				continue
			}
			if i < len(p.Names) {
				if p.Names[i].Name == "_" {
					return bindDiscarded, nil
				}
				if v, ok := pass.TypesInfo.Defs[p.Names[i]].(*types.Var); ok {
					return bindVar, v
				}
			}
		}
	}
	return bindEscaped, nil
}

// bindingIdent returns the identifier the open call's result is bound
// to, so the use scan can skip the binding occurrence itself.
func bindingIdent(path []ast.Node, call *ast.CallExpr) *ast.Ident {
	parent := parentNonParen(path, call)
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) == call && i < len(p.Lhs) {
				if id, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident); ok {
					return id
				}
			}
		}
	case *ast.ValueSpec:
		for i, val := range p.Values {
			if ast.Unparen(val) == call && i < len(p.Names) {
				return p.Names[i]
			}
		}
	}
	return nil
}

// Use classification.
type useKind int

const (
	useRead useKind = iota
	useConsume
	useEscape
)

// classifyUse decides what one appearance of the handle variable does.
func classifyUse(pass *Pass, rule *balanceRule, unit funcUnit, path []ast.Node, id *ast.Ident) useKind {
	if path == nil {
		return useEscape
	}
	// Inside a nested function literal? Only `defer func(){ ... }()`
	// directly in this unit keeps the obligation local.
	if lit := innermostLit(path, unit); lit != nil {
		if deferredInUnit(path, lit) {
			if rule.consume(pass, path, id) {
				return useConsume
			}
			if rule.read(pass, path, id) {
				return useRead
			}
			return useEscape
		}
		return useEscape
	}
	if rule.consume(pass, path, id) {
		return useConsume
	}
	if rule.read(pass, path, id) {
		return useRead
	}
	parent := parentNonParen(path, id)
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == id {
				return useConsume // reassignment kills the tracked handle
			}
		}
		return useEscape // RHS use: copied somewhere else
	case *ast.BinaryExpr:
		return useRead // comparison
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return useEscape
		}
		return useRead
	case *ast.IfStmt, *ast.SwitchStmt, *ast.CaseClause, *ast.ForStmt:
		return useRead // condition position
	}
	// Call argument, composite literal, return, send, index, selector
	// base, range operand, ... : the handle leaves our hands.
	return useEscape
}

// innermostLit returns the innermost function literal strictly enclosing
// the use within this unit, or nil.
func innermostLit(path []ast.Node, unit funcUnit) *ast.FuncLit {
	for i := len(path) - 1; i >= 0; i-- {
		if lit, ok := path[i].(*ast.FuncLit); ok && lit != unit.lit {
			return lit
		}
	}
	return nil
}

// deferredInUnit reports whether lit is the immediate callee of a defer
// statement (defer func(){...}()) on the path.
func deferredInUnit(path []ast.Node, lit *ast.FuncLit) bool {
	for i, n := range path {
		if n != lit {
			continue
		}
		// Expect ... DeferStmt -> CallExpr -> lit.
		if i >= 2 {
			call, okc := path[i-1].(*ast.CallExpr)
			_, okd := path[i-2].(*ast.DeferStmt)
			if okc && okd && ast.Unparen(call.Fun) == lit {
				return true
			}
		}
		return false
	}
	return false
}

// topStmtPos returns the position keying the CFG atom for a use: the
// defer statement when the consume is deferred, else the use itself.
func topStmtPos(unit funcUnit, path []ast.Node, id *ast.Ident) token.Pos {
	for _, n := range path {
		if d, ok := n.(*ast.DeferStmt); ok {
			return d.Pos()
		}
	}
	return id.Pos()
}

// parentNonParen returns the nearest ancestor of n on path that is not a
// parenthesis.
func parentNonParen(path []ast.Node, n ast.Node) ast.Node {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == n {
			for j := i - 1; j >= 0; j-- {
				if _, ok := path[j].(*ast.ParenExpr); ok {
					continue
				}
				return path[j]
			}
			return nil
		}
	}
	return nil
}

// nodePath returns the ancestor chain from root down to (and including)
// target, or nil if target is not under root.
func nodePath(root ast.Node, target ast.Node) []ast.Node {
	var stack, found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			found = append([]ast.Node(nil), stack...)
			return false
		}
		return true
	})
	return found
}
