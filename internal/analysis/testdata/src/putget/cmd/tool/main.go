// Command tool shows that boundedwait is module-wide: an unbounded wait
// in a cmd (or example) is flagged even though cmd/* is outside the sim
// domain — an example that can deadlock teaches the API wrong.
package main

type rig struct{}

func (rig) DevWaitNotif() {}

func main() {
	var r rig
	r.DevWaitNotif() // want `unbounded blocking wait DevWaitNotif outside a test: use the bounded DevWaitNotifTimeout variant`
}
