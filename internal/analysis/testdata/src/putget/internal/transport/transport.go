// Package transport is a fixture stub of the fabric-agnostic endpoint
// API, under the canonical import path, so the flagorder analyzer can
// match put/wait calls against the Endpoint method set and boundedwait
// can derive the unbounded-wait names from it.
package transport

import "putget/internal/sim"

// Region names a (stub) registered memory region.
type Region struct{}

// Completion is a (stub) reaped completion record.
type Completion struct{}

// CompClass selects local vs remote completions.
type CompClass int

// Endpoint is the (stub) data plane: one side of a connection.
type Endpoint interface {
	DevPut(src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int)
	DevPutImm(value uint64, dst Region, dstOff uint64, size, flags int)
	DevPutCollective(src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int)
	DevGet(dst Region, dstOff uint64, src Region, srcOff uint64, size int)
	DevWaitComplete(c CompClass) Completion
	DevWaitCompleteTimeout(c CompClass, timeout sim.Duration) (Completion, bool)

	HostPut(src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int)
	HostPutImm(value uint64, dst Region, dstOff uint64, size, flags int)
	HostWaitComplete(c CompClass) Completion
	HostWaitCompleteTimeout(c CompClass, timeout sim.Duration) (Completion, bool)
}
