// Fixtures for the boundedwait analyzer: unbounded blocking waits are
// flagged outside tests; the ...Timeout variants and the wrapper ladder
// — every function transitively reachable through the call graph from a
// wait-named definition — stay clean.
package bench

type endpoint struct{}

func (endpoint) DevWaitComplete()                       {}
func (endpoint) DevWaitCompleteTimeout(d int) bool      { return true }
func (endpoint) DevWaitNotifValue() (uint64, uint64)    { return 0, 0 }
func (endpoint) DevWaitNotifTimeout(d int) (int, bool)  { return 0, true }
func (endpoint) HostPollCQ()                            {}
func (endpoint) HostPollCQTimeout(d int) (uint64, bool) { return 0, true }

func hotLoop(ep endpoint) {
	ep.DevWaitComplete() // want `unbounded blocking wait DevWaitComplete outside a test: use the bounded DevWaitCompleteTimeout variant`
}

func notifValue(ep endpoint) uint64 {
	_, v := ep.DevWaitNotifValue() // want `unbounded blocking wait DevWaitNotifValue outside a test: use the bounded DevWaitNotifTimeout variant`
	return v
}

func boundedLoop(ep endpoint) bool {
	return ep.DevWaitCompleteTimeout(10)
}

func allowedWait(ep endpoint) {
	ep.HostPollCQ() //putget:allow boundedwait -- fixture: completion guaranteed by construction in this rig
}

type adapter struct{ ep endpoint }

// DevWaitComplete delegates to the inner endpoint: the wrapper ladder by
// which transport adapters implement a wait in terms of core's is the
// wait's own definition, not a use of it — no finding.
func (a adapter) DevWaitComplete() {
	a.ep.DevWaitComplete()
}

// drainCQ is not itself named like a wait, but it is reachable from
// adapterDeep.DevWaitComplete below, so the call-graph exemption covers
// it: it is part of that wait's delegation ladder — no finding. (The
// old name-only rule would have flagged this helper.)
func drainCQ(ep endpoint) {
	ep.HostPollCQ()
}

type adapterDeep struct{ ep endpoint }

// DevWaitComplete implements the wait through a local helper: the
// transitive ladder.
func (a adapterDeep) DevWaitComplete() {
	drainCQ(a.ep)
}
