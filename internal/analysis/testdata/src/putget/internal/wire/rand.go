// Fixtures for the noglobalrand analyzer: the import itself is the
// finding — nothing can be called without it.
package wire

import (
	crand "crypto/rand" // want `import of crypto/rand in sim-domain package putget/internal/wire`
	"math/rand"         // want `import of math/rand in sim-domain package putget/internal/wire`
)

func entropy() int {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return rand.Int()
}
