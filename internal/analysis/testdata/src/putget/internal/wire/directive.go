// Fixtures for the directive analyzer: malformed //putget:allow comments
// never suppress anything and are themselves findings.
package wire

import "time"

// want+1 `putget:allow names unknown analyzer "nosuchanalyzer"`
//putget:allow nosuchanalyzer -- misspelled analyzer names must not silently disable a real check

// want+1 `putget:allow boundedwait is missing its reason`
//putget:allow boundedwait

// want+1 `putget:allow needs an analyzer name`
//putget:allow

// want+1 `putget:allow names unknown analyzer "directive"`
//putget:allow directive -- the validator itself cannot be silenced

// A malformed directive suppresses nothing: the missing-reason allow
// directly above the call does not shield the wall-clock read.
// want+2 `putget:allow nowalltime is missing its reason`
//
//putget:allow nowalltime
var bootStamp = time.Now() // want `wall-clock time\.Now in sim-domain package putget/internal/wire`

// A well-formed directive that suppresses nothing is stale: the code it
// excused is gone, and keeping it would silently shield whatever lands
// on its line next.
// want+2 `stale putget:allow boundedwait: it suppresses no finding`
//
//putget:allow boundedwait -- fixture: nothing here blocks; this allow is stale and must be reported
var staleAnchor = 0
