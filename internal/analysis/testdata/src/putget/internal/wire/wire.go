// Fixtures for the nowalltime analyzer: internal/wire is inside the sim
// domain, so every wall-clock read here must be flagged. This file is
// also the acceptance demo that a time.Now introduced into internal/wire
// fails the lint gate.
package wire

import "time"

func wallClockReads() {
	_ = time.Now()              // want `wall-clock time\.Now in sim-domain package putget/internal/wire`
	time.Sleep(1)               // want `wall-clock time\.Sleep in sim-domain package putget/internal/wire`
	_ = time.Since(time.Time{}) // want `wall-clock time\.Since in sim-domain package putget/internal/wire`
	<-time.After(1)             // want `wall-clock time\.After in sim-domain package putget/internal/wire`
	_ = time.NewTimer(1)        // want `wall-clock time\.NewTimer in sim-domain package putget/internal/wire`
}

// pureTimeDataIsFine: time.Duration arithmetic and formatting of
// already-captured values do not read the clock and must not be flagged.
func pureTimeDataIsFine(t time.Time) (time.Duration, string) {
	d := 5 * time.Millisecond
	return d, t.Format(time.RFC3339)
}

func suppressedRead() time.Time {
	//putget:allow nowalltime -- fixture: justified wall-clock use, suppressed on the next line
	return time.Now()
}
