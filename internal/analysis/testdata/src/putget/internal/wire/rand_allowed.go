// Fixture for file-wide suppression: a //putget:allow before the package
// clause applies to the entire file, so the math/rand import below is
// not flagged.
//putget:allow noglobalrand -- fixture: file-wide suppression placed before the package clause

package wire

import "math/rand"

func seededHelper() int {
	return rand.New(rand.NewSource(1)).Int()
}
