// Package sim is a fixture stub of the real discrete-event engine: just
// enough surface, under the canonical import path, for the putgetlint
// analyzers to resolve engine handles, event-posting methods, timer
// handles, and span ids against.
package sim

// Time is the virtual clock.
type Time int64

// Duration is a span of virtual time.
type Duration int64

// Engine is the (stub) discrete-event engine.
type Engine struct{}

// Tracef records a trace line (order-observable).
func (e *Engine) Tracef(format string, args ...interface{}) {}

// At schedules fn at virtual time t (order-observable).
func (e *Engine) At(t Time, name string, fn func()) {}

// After schedules fn a duration from now (order-observable).
func (e *Engine) After(d Duration, fn func()) {}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return 0 }

// Timer is a (stub) cancellable event handle.
type Timer struct{}

// AtTimer arms a cancellable event at absolute time t.
func (e *Engine) AtTimer(t Time, fn func()) Timer { return Timer{} }

// AfterTimer arms a cancellable event d from now.
func (e *Engine) AfterTimer(d Duration, fn func()) Timer { return Timer{} }

// Cancel disarms the timer; reports whether it was still pending.
func (t Timer) Cancel() bool { return false }

// Active reports whether the timer is still pending.
func (t Timer) Active() bool { return false }

// SpanID identifies one span; the zero id means "observability off".
type SpanID uint64

// Attr is one key=value attribute on a span.
type Attr struct {
	Key   string
	Value string
}

// Observing reports whether an observer is installed.
func (e *Engine) Observing() bool { return false }

// SpanOpen opens a span starting now.
func (e *Engine) SpanOpen(comp, kind string, attrs ...Attr) SpanID { return 0 }

// SpanOpenAt opens a span with an explicit start time.
func (e *Engine) SpanOpenAt(at Time, comp, kind string, attrs ...Attr) SpanID { return 0 }

// SpanClose ends a span now.
func (e *Engine) SpanClose(id SpanID) {}

// SpanCloseAt ends a span at an explicit time.
func (e *Engine) SpanCloseAt(id SpanID, at Time) {}

// Proc is a (stub) engine-owned coroutine.
type Proc struct{}

// Yield hands control back to the engine.
func (p *Proc) Yield() {}
