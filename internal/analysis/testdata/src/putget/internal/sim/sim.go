// Package sim is a fixture stub of the real discrete-event engine: just
// enough surface, under the canonical import path, for the putgetlint
// analyzers to resolve engine handles and event-posting methods against.
package sim

// Time is the virtual clock.
type Time int64

// Duration is a span of virtual time.
type Duration int64

// Engine is the (stub) discrete-event engine.
type Engine struct{}

// Tracef records a trace line (order-observable).
func (e *Engine) Tracef(format string, args ...interface{}) {}

// At schedules fn at virtual time t (order-observable).
func (e *Engine) At(t Time, name string, fn func()) {}

// Proc is a (stub) engine-owned coroutine.
type Proc struct{}

// Yield hands control back to the engine.
func (p *Proc) Yield() {}
