// Package runner is a fixture stub of the sanctioned worker pool, under
// the canonical import path so engineaffinity recognizes calls into it.
package runner

// Map runs fn over items (stub: sequentially).
func Map[T, R any](parallel int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	for i, it := range items {
		out[i] = fn(i, it)
	}
	return out
}
