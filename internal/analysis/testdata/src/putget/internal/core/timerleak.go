// Fixtures for the timerleak analyzer: an AtTimer/AfterTimer handle
// must be Cancelled or handed off on every path out of the arming
// function. The seeded violation reproduces the PR 7 tombstone class:
// a retry timer armed per attempt and abandoned when the reply wins
// the race.
package core

import "putget/internal/sim"

func onRetry() {}

// undisarmedRetry is the PR 7 bug shape: the reply-wins path returns
// without disarming the retry timer, which later fires against
// completed state.
func undisarmedRetry(e *sim.Engine, replyWon bool) {
	rt := e.AfterTimer(5, onRetry) // want `timer from AfterTimer leaks on a path out of undisarmedRetry`
	if replyWon {
		return
	}
	rt.Cancel()
}

// droppedTimer discards the handle outright: it can never be cancelled.
func droppedTimer(e *sim.Engine) {
	e.AtTimer(10, onRetry) // want `result of AtTimer discarded`
}

// disarmedRetry cancels on both paths: clean.
func disarmedRetry(e *sim.Engine, replyWon bool) {
	rt := e.AfterTimer(5, onRetry)
	if replyWon {
		rt.Cancel()
		return
	}
	rt.Cancel()
}

// deferredDisarm uses defer: the cancel covers every exit.
func deferredDisarm(e *sim.Engine, steps int) {
	rt := e.AfterTimer(5, onRetry)
	defer rt.Cancel()
	for i := 0; i < steps; i++ {
		if i == 3 {
			return
		}
	}
}

// deferredClosureDisarm cancels inside a deferred literal: still a
// consume at the defer statement.
func deferredClosureDisarm(e *sim.Engine) {
	rt := e.AfterTimer(5, onRetry)
	defer func() {
		if rt.Active() {
			rt.Cancel()
		}
	}()
}

type pendingOp struct {
	retry sim.Timer
}

// handoff stores the handle in the operation record: ownership moves to
// whoever completes the op, so the arming function owes nothing.
func handoff(e *sim.Engine, op *pendingOp) {
	op.retry = e.AfterTimer(5, onRetry)
}

// escapeByReturn hands the handle to the caller: clean here.
func escapeByReturn(e *sim.Engine) sim.Timer {
	return e.AfterTimer(5, onRetry)
}
