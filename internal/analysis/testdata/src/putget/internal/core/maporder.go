// Fixtures for the maporder analyzer: map iteration is flagged only when
// the loop body has an order-dependent effect; pure reductions and the
// collect-keys-then-sort idiom stay clean.
package core

import (
	"fmt"
	"sort"
	"strings"

	"putget/internal/sim"
)

func printsInRange(m map[string]int) {
	for k, v := range m { // want `iteration over map m has an order-dependent effect \(calls fmt\.Println\)`
		fmt.Println(k, v)
	}
}

func appendsUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to outer slice keys, which is never sorted in this block`
		keys = append(keys, k)
	}
	return keys
}

// collectThenSort is the sanctioned idiom: the sort after the loop
// erases iteration order, so nothing is flagged.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pureReduction is order-independent and stays clean.
func pureReduction(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// perIterationSliceIsFine: the slice is declared inside the loop body,
// so iteration order cannot leak through it.
func perIterationSliceIsFine(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func tracesInRange(e *sim.Engine, m map[string]int) {
	for k := range m { // want `posts sim events / trace records via Tracef`
		e.Tracef("key %s", k)
	}
}

func writesInRange(b *strings.Builder, m map[string]int) {
	for k := range m { // want `writes output via WriteString`
		b.WriteString(k)
	}
}

// sprintIsFine: Sprint* is pure; the nondeterministic order never leaves
// the loop because the result is folded into a map.
func sprintIsFine(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = fmt.Sprintf("%s=%d", k, v)
	}
	return out
}

func suppressedRange(m map[string]int) {
	//putget:allow maporder -- fixture: output order provably independent of iteration order
	for k := range m {
		fmt.Println(k)
	}
}
