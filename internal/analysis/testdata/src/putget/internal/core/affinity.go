// Fixtures for the engineaffinity analyzer: raw go statements and engine
// handles captured by closures shipped to the runner pool.
package core

import (
	"putget/internal/runner"
	"putget/internal/sim"
)

func rawGoroutine() {
	go func() {}() // want `raw go statement in sim-domain package putget/internal/core`
}

func sanctionedGoroutine() {
	//putget:allow engineaffinity -- fixture: this helper is itself a pool implementation detail
	go func() {}()
}

func capturesEngine(e *sim.Engine) []int {
	return runner.Map(2, []int{1, 2}, func(i, item int) int {
		e.Tracef("shard %d", i) // want `sim engine handle e captured by a closure shipped to the runner pool`
		return item
	})
}

func capturesProc(p *sim.Proc) []int {
	return runner.Map(2, []int{1, 2}, func(i, item int) int {
		p.Yield() // want `sim process handle p captured by a closure shipped to the runner pool`
		return item
	})
}

// buildsOwnEngine is the sanctioned shape: each shard constructs its own
// engine inside the closure, so nothing is captured.
func buildsOwnEngine() []int {
	return runner.Map(2, []int{1, 2}, func(i, item int) int {
		var local sim.Engine
		local.Tracef("shard %d", i)
		return item
	})
}

// explicitInstantiation: the generic call is still recognized through an
// explicit type-argument list.
func explicitInstantiation(e *sim.Engine) []string {
	return runner.Map[int, string](2, []int{1}, func(i, item int) string {
		e.Tracef("shard %d", i) // want `sim engine handle e captured by a closure shipped to the runner pool`
		return ""
	})
}
