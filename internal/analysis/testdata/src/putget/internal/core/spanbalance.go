// Fixtures for the spanbalance analyzer: a SpanOpen/SpanOpenAt must be
// matched by SpanClose on every path out of the opening function — the
// PR 3/PR 6 class where an early error return skips the close and the
// breakdown experiment's exact-sum check only catches it dynamically.
package core

import "putget/internal/sim"

func stageWork() bool { return true }

// unbalancedStage is the seeded violation: the failure path returns
// without closing the stage span.
func unbalancedStage(e *sim.Engine, fail bool) {
	id := e.SpanOpen("core", "stage") // want `span from SpanOpen is not closed on a path out of unbalancedStage`
	if fail {
		return
	}
	e.SpanClose(id)
}

// droppedSpan discards the id: the span can never be closed.
func droppedSpan(e *sim.Engine) {
	e.SpanOpenAt(e.Now(), "core", "stage") // want `result of SpanOpenAt discarded`
}

// balancedBranches closes on both paths: clean.
func balancedBranches(e *sim.Engine, fail bool) {
	id := e.SpanOpen("core", "stage")
	if fail {
		e.SpanCloseAt(id, e.Now())
		return
	}
	e.SpanClose(id)
}

// balancedDefer closes via defer: covers every exit, clean.
func balancedDefer(e *sim.Engine) {
	id := e.SpanOpenAt(e.Now(), "core", "stage")
	defer e.SpanClose(id)
	for stageWork() {
		return
	}
}

// openSpanHelper returns the id to the caller: the balance obligation
// moves with it, clean here.
func openSpanHelper(e *sim.Engine, kind string) sim.SpanID {
	return e.SpanOpen("core", kind)
}
