// Fixtures for the flagorder analyzer: on a FIFO connection the
// "data ready" flag must be posted after the bulk put it signals. The
// seeded violation reproduces the PR 8 stale-read bug, where the tiny
// imm descriptor overtook the still-in-flight payload.
package core

import "putget/internal/transport"

var reg transport.Region

// flagBeforeData is the PR 8 repro: flag first, payload second — the
// receiver polls the flag, sees it set, and reads stale bytes.
func flagBeforeData(ep transport.Endpoint) {
	ep.DevPutImm(1, reg, 0, 8, 0) // want `flag/imm put DevPutImm on ep is posted before the bulk put DevPut it signals`
	ep.DevPut(reg, 0, reg, 64, 4096, 0)
}

// hostFlagBeforeData: same bug through the host mirror, across a branch.
func hostFlagBeforeData(ep transport.Endpoint, twice bool) {
	ep.HostPutImm(1, reg, 0, 8, 0) // want `flag/imm put HostPutImm on ep is posted before the bulk put HostPut it signals`
	if twice {
		ep.HostPut(reg, 0, reg, 64, 1024, 0)
	}
}

// dataThenFlag is the correct idiom: payload, then flag. Clean.
func dataThenFlag(ep transport.Endpoint) {
	ep.DevPut(reg, 0, reg, 64, 4096, 0)
	ep.DevPutImm(1, reg, 0, 8, 0)
}

// pipelined: the imm at the end of iteration i does not precede
// iteration i+1's bulk put — back edges are not "before". Clean.
func pipelined(ep transport.Endpoint, n int) {
	for i := 0; i < n; i++ {
		ep.HostPut(reg, 0, reg, 64, 1024, 0)
		ep.HostPutImm(uint64(i), reg, 0, 8, 0)
	}
}

// fenced: a completion wait between the imm and the next bulk put
// consumes the signal — the next put starts a new exchange. Clean.
func fenced(ep transport.Endpoint) {
	ep.HostPutImm(1, reg, 0, 8, 0)
	ep.HostWaitCompleteTimeout(0, 10)
	ep.HostPut(reg, 0, reg, 64, 1024, 0)
}

// twoConns: puts on different endpoints are unordered relative to each
// other — no pairing, clean.
func twoConns(a, b transport.Endpoint) {
	a.DevPutImm(1, reg, 0, 8, 0)
	b.DevPut(reg, 0, reg, 64, 4096, 0)
}
