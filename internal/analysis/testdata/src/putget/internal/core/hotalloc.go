// Fixtures for the hotalloc analyzer: functions marked //putget:hot
// must not allocate per call — no allocating composite literals, no
// capturing closures, no interface boxing of non-pointer values. The
// marker turns the PR 7/PR 9 allocs/op bench baselines into a vet-time
// guard.
package core

type kvPair struct{ k, v int }

type failure struct{ code int }

// dispatch is marked hot: every allocation shape below is seeded.
//
//putget:hot
func dispatch(emit func(interface{}), sink func(func())) {
	box := 7
	emit(box)             // want `value box is boxed into an interface and allocates in hot path dispatch`
	tmp := []int{1, 2, 3} // want `slice literal allocates in hot path dispatch`
	box += tmp[0]
	sink(func() { box++ }) // want `closure capturing 1 variable\(s\) allocates in hot path dispatch`
}

// hotPointer returns a fresh pair per call.
//
//putget:hot
func hotPointer(k, v int) *kvPair {
	return &kvPair{k, v} // want `&composite literal allocates in hot path hotPointer`
}

// hotClean is hot and allocation-free: no findings.
//
//putget:hot
func hotClean(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// hotStatic passes a closure that captures nothing: the compiler shares
// one static closure, no allocation, clean.
//
//putget:hot
func hotStatic(run func(func())) {
	run(func() {})
}

// hotPanic allocates only on the way into a panic: that path ends the
// run, so it is exempt.
//
//putget:hot
func hotPanic(i int) int {
	if i < 0 {
		panic(&failure{i})
	}
	return i
}

// coldAlloc is unmarked: allocations are fine outside hot paths.
func coldAlloc() []int {
	return []int{1, 2, 3}
}
