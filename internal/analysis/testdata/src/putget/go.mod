module putget

go 1.24
