// Package util sits outside the sim domain: the per-package analyzers
// (nowalltime, noglobalrand, maporder, engineaffinity) must not fire
// here. Only the module-wide checks (boundedwait, directive) apply.
package util

import (
	"fmt"
	"math/rand"
	"time"
)

func WallClockIsFine() time.Time { return time.Now() }

func RandIsFine() int { return rand.Int() }

func MapRangeIsFine(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func GoroutinesAreFine() {
	go func() {}()
}
