package analysis

// The timerleak analyzer flags AtTimer/AfterTimer handles that are
// neither Cancelled nor provably consumed on every path out of the
// arming function.
//
// Motivating bug (PR 7): the event-engine rewrite introduced
// cancellable timers precisely because the old engine accumulated
// tombstones — retry/deadline events armed and then abandoned when the
// operation completed first. A dropped Timer handle recreates that bug
// at the call site: the timer still fires, the closure still runs, and
// either the heap carries dead weight or — worse — a stale retry
// executes against completed state. Every armed timer must be owned:
// cancelled on the paths that no longer need it, or handed off (stored,
// returned, passed) to the code that will.

import (
	"go/ast"
)

// TimerLeak reports sim timers armed and then dropped.
var TimerLeak = &Analyzer{
	Name: "timerleak",
	Doc:  "report AtTimer/AfterTimer handles not cancelled or handed off on every path",
	Run:  runTimerLeak,
}

var timerLeakRule = &balanceRule{
	openNames: map[string]bool{"AtTimer": true, "AfterTimer": true},
	consume:   timerConsume,
	read:      timerRead,
	discarded: func(open string) string {
		return "result of " + open + " discarded: the timer cannot be cancelled; " +
			"keep the handle and Cancel it when the waited-for event wins the race, " +
			"or annotate with //putget:allow timerleak -- <reason>"
	},
	leaked: func(open, fn string) string {
		return "timer from " + open + " leaks on a path out of " + fn + ": " +
			"Cancel it on every exit that abandons it (the PR 7 tombstone class), " +
			"or annotate with //putget:allow timerleak -- <reason>"
	},
}

func runTimerLeak(pass *Pass) error {
	return runBalance(pass, timerLeakRule)
}

// timerConsume matches `v.Cancel()`.
func timerConsume(pass *Pass, path []ast.Node, id *ast.Ident) bool {
	return methodCallOn(path, id, "Cancel")
}

// timerRead matches `v.Active()` — a harmless query.
func timerRead(pass *Pass, path []ast.Node, id *ast.Ident) bool {
	return methodCallOn(path, id, "Active")
}

// methodCallOn reports whether id appears as the receiver of a direct
// method call `id.name(...)`.
func methodCallOn(path []ast.Node, id *ast.Ident, name string) bool {
	sel, ok := parentNonParen(path, id).(*ast.SelectorExpr)
	if !ok || sel.X != id || sel.Sel.Name != name {
		return false
	}
	call, ok := parentNonParen(path, sel).(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == sel
}
