package analysis

// The hotalloc analyzer guards the engine's marked hot paths against
// per-event allocations: composite literals that allocate, closures
// that capture (each capture materializes a heap cell + closure
// object), and interface boxing of non-pointer values at call
// boundaries.
//
// Motivating work (PR 7, PR 9): the event-engine rewrite got its 2.3×
// from exactly these — value-typed heap entries instead of boxed
// events, a once-per-spawn `resumeF` method value instead of a fresh
// wake closure per park, and the allocs/op bench baselines in CI that
// keep regressions out. The bench guard only fires for paths a
// benchmark exercises; this analyzer covers every function annotated
// with a `//putget:hot` marker comment, at vet time.
//
// Exemptions: allocations inside a panic(...) argument chain are free —
// that path is the end of the run, not a per-event cost. Test files are
// exempt as everywhere in this suite.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc reports allocation sites inside //putget:hot functions.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "report composite-literal, closure-capture, and interface-boxing allocations in //putget:hot functions",
	Run:  runHotAlloc,
}

// hotMarker is the doc-comment line that opts a function into the
// allocation guard.
const hotMarker = "//putget:hot"

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotMarked(fd.Doc) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func isHotMarked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == hotMarker || strings.HasPrefix(text, hotMarker+" ") {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	panicRanges := collectPanicRanges(pass, fd.Body)
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	name := fd.Name.Name

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if caps := captureCount(pass, fd, x); caps > 0 && !inPanic(x.Pos()) {
				pass.Reportf(x.Pos(),
					"closure capturing %d variable(s) allocates in hot path %s: "+
						"predeclare it once (the engine's resumeF pattern) or pass state explicitly, "+
						"or annotate with //putget:allow hotalloc -- <reason>", caps, name)
			}
			return false // the literal's body runs elsewhere
		case *ast.CompositeLit:
			if kind := allocatingLitKind(pass, x); kind != "" && !inPanic(x.Pos()) {
				pass.Reportf(x.Pos(),
					"%s allocates in hot path %s: hoist it out of the hot path or reuse a buffer, "+
						"or annotate with //putget:allow hotalloc -- <reason>", kind, name)
			}
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return true
			}
			if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok && !inPanic(x.Pos()) {
				pass.Reportf(x.Pos(),
					"&composite literal allocates in hot path %s: reuse a preallocated value, "+
						"or annotate with //putget:allow hotalloc -- <reason>", name)
			}
		case *ast.CallExpr:
			for _, box := range boxedArgs(pass, x) {
				if !inPanic(box.Pos()) {
					pass.Reportf(box.Pos(),
						"value %s is boxed into an interface and allocates in hot path %s: "+
							"take a pointer or a concrete type, "+
							"or annotate with //putget:allow hotalloc -- <reason>",
						exprString(box), name)
				}
			}
		}
		return true
	})
}

// collectPanicRanges records the source extents of every panic(...)
// call so allocations on the way into a panic are exempt.
func collectPanicRanges(pass *Pass, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPanicIdent(pass, call.Fun) {
			out = append(out, [2]token.Pos{call.Pos(), call.End()})
		}
		return true
	})
	return out
}

func isPanicIdent(pass *Pass, fun ast.Expr) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// captureCount counts distinct variables a function literal captures
// from the enclosing declaration — parameters, receiver, or locals
// declared outside the literal. Zero captures means a static closure,
// which the compiler shares without allocating.
func captureCount(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) int {
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Declared inside the enclosing function but outside the literal?
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			seen[v] = true
		}
		return true
	})
	return len(seen)
}

// allocatingLitKind classifies a composite literal that heap-allocates:
// slice and map literals always do; struct and array value literals do
// not (the &T{} case is reported at the & operator).
func allocatingLitKind(pass *Pass, lit *ast.CompositeLit) string {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return ""
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		return "slice literal"
	case *types.Map:
		return "map literal"
	}
	return ""
}

// boxedArgs returns the call arguments that are converted to an
// interface type and carry a non-pointer-shaped concrete value — each
// such conversion allocates. Calls through `...` spreads pass the slice
// unboxed. Conversions T(x) with interface T are handled too.
func boxedArgs(pass *Pass, call *ast.CallExpr) []ast.Expr {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return nil
	}
	if tv.IsType() {
		// Conversion to an interface type.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(pass, call.Args[0]) {
			return call.Args[:1]
		}
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil // builtin or invalid
	}
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	var out []ast.Expr
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, nothing boxed
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(pass, arg) {
			out = append(out, arg)
		}
	}
	return out
}

// boxes reports whether storing arg's value in an interface allocates:
// true for concrete non-pointer-shaped values, false for nil, existing
// interfaces, and pointer-shaped types (pointer, chan, map, func,
// unsafe.Pointer), which fit the interface word directly.
func boxes(pass *Pass, arg ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.IsNil() {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}
