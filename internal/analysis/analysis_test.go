package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSource type-checks one dependency-free source file under the
// given filename and import path and runs the full suite on it.
func checkSource(t *testing.T, filename, importPath, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	tpkg, err := conf.Check(importPath, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	diags, err := RunPackage(&Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		TypesInfo:  info,
	}, All())
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestTestFilesExempt: the identical violation is flagged in a regular
// file and exempt in a _test.go file.
func TestTestFilesExempt(t *testing.T) {
	const src = `package wire

func f() {
	go func() {}()
}
`
	if got := checkSource(t, "a.go", "putget/internal/wire", src); len(got) != 1 {
		t.Fatalf("a.go: want 1 engineaffinity finding, got %v", got)
	}
	if got := checkSource(t, "a_test.go", "putget/internal/wire", src); len(got) != 0 {
		t.Fatalf("a_test.go: want no findings, got %v", got)
	}
}

// TestNonSimPackagesExemptFromDomainChecks: the same goroutine in a
// package outside the determinism boundary is clean.
func TestNonSimPackagesExemptFromDomainChecks(t *testing.T) {
	const src = `package web

func f() {
	go func() {}()
}
`
	if got := checkSource(t, "a.go", "putget/web", src); len(got) != 0 {
		t.Fatalf("non-sim package: want no findings, got %v", got)
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text              string
		wantOK            bool
		wantName, wantWhy string
	}{
		{"//putget:allow nowalltime -- progress timer", true, "nowalltime", "progress timer"},
		{"//putget:allow nowalltime", true, "nowalltime", ""},
		{"//putget:allow", true, "", ""},
		{"//putget:allow  boundedwait --  padded  ", true, "boundedwait", "padded"},
		{"//putget:allowx nowalltime -- not a directive", false, "", ""},
		{"// ordinary comment", false, "", ""},
	}
	for _, c := range cases {
		name, why, ok := parseDirective(&ast.Comment{Text: c.text})
		if ok != c.wantOK || name != c.wantName || why != c.wantWhy {
			t.Errorf("parseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, name, why, ok, c.wantName, c.wantWhy, c.wantOK)
		}
	}
}

// TestDirectiveScope: a line directive covers its own line and the next;
// two lines down is out of scope.
func TestDirectiveScope(t *testing.T) {
	const src = `package wire

func f() {
	//putget:allow engineaffinity -- covers the next line only
	go func() {}()
	go func() {}()
}
`
	got := checkSource(t, "a.go", "putget/internal/wire", src)
	if len(got) != 1 {
		t.Fatalf("want exactly 1 finding (second goroutine), got %v", got)
	}
	if got[0].Pos.Line != 6 {
		t.Errorf("finding at line %d, want line 6", got[0].Pos.Line)
	}
}

// TestSimDomainTable spot-checks the boundary.
func TestSimDomainTable(t *testing.T) {
	for _, in := range []string{
		"putget/internal/sim", "putget/internal/wire", "putget/internal/bench",
		"putget/internal/transport", "putget/internal/runner",
	} {
		if !IsSimDomain(in) {
			t.Errorf("IsSimDomain(%q) = false, want true", in)
		}
	}
	for _, out := range []string{
		"putget/cmd/putgetbench", "putget/examples/quickstart",
		"putget/internal/analysis", "putget",
	} {
		if IsSimDomain(out) {
			t.Errorf("IsSimDomain(%q) = true, want false", out)
		}
	}
}

// TestByName: every analyzer resolves by name; unknowns do not.
func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName(nosuch) != nil")
	}
}

// TestDiagnosticOrder: sortDiagnostics orders by file, line, column,
// analyzer.
func TestDiagnosticOrder(t *testing.T) {
	pos := func(f string, l, c int) token.Position { return token.Position{Filename: f, Line: l, Column: c} }
	ds := []Diagnostic{
		{Analyzer: "z", Pos: pos("b.go", 1, 1)},
		{Analyzer: "a", Pos: pos("a.go", 2, 1)},
		{Analyzer: "b", Pos: pos("a.go", 1, 5)},
		{Analyzer: "a", Pos: pos("a.go", 1, 5)},
	}
	sortDiagnostics(ds)
	var order []string
	for _, d := range ds {
		order = append(order, d.Pos.Filename+":"+d.Analyzer)
	}
	want := "a.go:a a.go:b a.go:a b.go:z"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
}

func TestTimeoutBase(t *testing.T) {
	if got := timeoutBase("DevWaitNotifValue"); got != "DevWaitNotif" {
		t.Errorf("timeoutBase(DevWaitNotifValue) = %s", got)
	}
	if got := timeoutBase("DevWaitComplete"); got != "DevWaitComplete" {
		t.Errorf("timeoutBase(DevWaitComplete) = %s", got)
	}
}
