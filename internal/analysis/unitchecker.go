package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file implements the `go vet -vettool` protocol: cmd/go writes a
// JSON config describing one compilation unit (source files plus export
// data for every dependency it already compiled) and invokes the tool as
//
//	putgetlint <flags> <objdir>/vet.cfg
//
// The tool type-checks the unit, runs its analyzers, prints findings to
// stderr, writes its (empty — putgetlint exchanges no facts) vetx output
// file, and exits nonzero iff it found problems. The protocol mirrors
// golang.org/x/tools/go/analysis/unitchecker, reimplemented on the
// standard library.

// VetConfig matches the JSON cmd/go writes to vet.cfg (see vetConfig in
// cmd/go/internal/work/exec.go). Unknown fields are ignored.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunUnitchecker executes one vet.cfg unit and returns the process exit
// code. Findings go to stderr.
func RunUnitchecker(cfgFile string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "putgetlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "putgetlint: parsing vet config %s: %v\n", cfgFile, err)
		return 1
	}

	// putgetlint produces no facts, so dependency-only invocations have
	// nothing to compute; and analyzers never fire on packages outside
	// this module, so skip the type-check entirely for them.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		return writeVetx(cfg, stderr)
	}

	pkg, err := typeCheck(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// cmd/go hack (#18395): the compiler will report the error.
			return writeVetx(cfg, stderr)
		}
		fmt.Fprintf(stderr, "putgetlint: %v\n", err)
		return 1
	}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "putgetlint: %v\n", err)
		return 1
	}
	if code := writeVetx(cfg, stderr); code != 0 {
		return code
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s\n", d)
	}
	return 2
}

// writeVetx writes the (empty) facts output cmd/go caches for future
// runs. Missing output would defeat vet result caching.
func writeVetx(cfg VetConfig, stderr io.Writer) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		fmt.Fprintf(stderr, "putgetlint: writing vetx output: %v\n", err)
		return 1
	}
	return 0
}
