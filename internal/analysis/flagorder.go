package analysis

// The flagorder analyzer flags a flag/imm put sequenced before the bulk
// put it signals on the same connection.
//
// Motivating bug (PR 8): both fabrics guarantee per-connection FIFO, so
// the signalling idiom is "post the bulk data, then post the imm flag" —
// the receiver that polls the flag and sees it set may then read the
// data. Posted the other way round, the tiny imm descriptor overtakes
// the still-in-flight bulk payload and the receiver reads stale bytes.
// PR 8's per-cable FIFO fix made the simulator honest about this; the
// analyzer makes the ordering a vet-time invariant: within a function,
// an Imm put on an endpoint followed (on some forward path, with no
// intervening completion wait) by a bulk put on the same endpoint is
// reported at the imm put.
//
// Loops are handled by excluding CFG back edges — an imm at the end of
// iteration i does not "precede" iteration i+1's bulk put — and any
// blocking synchronization call (Wait*/Poll*/Barrier/Quiet/Fence) ends
// the search on that path, since the signal has then been consumed.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FlagOrder reports imm/flag puts posted before the bulk put they signal.
var FlagOrder = &Analyzer{
	Name: "flagorder",
	Doc:  "report a flag/imm put sequenced before the bulk put it signals on the same endpoint",
	Run:  runFlagOrder,
}

const transportPkgPath = "putget/internal/transport"

// Method-name sets from the transport.Endpoint method set.
var (
	immPutNames  = map[string]bool{"DevPutImm": true, "HostPutImm": true}
	bulkPutNames = map[string]bool{"DevPut": true, "DevPutCollective": true, "HostPut": true}
)

// barrierCallName reports whether a callee name is a blocking
// synchronization point that consumes the signal.
func barrierCallName(name string) bool {
	if strings.Contains(name, "Wait") || strings.Contains(name, "Poll") ||
		strings.Contains(name, "Barrier") || strings.Contains(name, "Quiet") ||
		strings.Contains(name, "Fence") {
		return true
	}
	// Synchronous round-trips order the connection too.
	return name == "DevGet" || name == "HostGet" || name == "DevFetchAdd" || name == "HostFetchAdd"
}

func runFlagOrder(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, unit := range funcUnits(f) {
			checkFlagOrderUnit(pass, unit)
		}
	}
	return nil
}

// putEvent is one ordered occurrence inside an atom: an imm put, a bulk
// put, or a barrier call.
type putEvent struct {
	kind putEventKind
	recv string // receiver expression, for imm/bulk matching
	name string // method name
	pos  token.Pos
}

type putEventKind int

const (
	evImm putEventKind = iota
	evBulk
	evBarrier
)

func checkFlagOrderUnit(pass *Pass, unit funcUnit) {
	// Quick scan: any imm put at all in this unit?
	events := map[ast.Node][]putEvent{} // atom -> ordered events
	haveImm := false

	collect := func(atom ast.Node) []putEvent {
		if ev, ok := events[atom]; ok {
			return ev
		}
		var ev []putEvent
		inspectAtom(atom, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case immPutNames[name] && isEndpointMethodSel(pass, sel):
				ev = append(ev, putEvent{evImm, exprString(sel.X), name, call.Pos()})
			case bulkPutNames[name] && isEndpointMethodSel(pass, sel):
				ev = append(ev, putEvent{evBulk, exprString(sel.X), name, call.Pos()})
			case barrierCallName(name):
				ev = append(ev, putEvent{kind: evBarrier, name: name, pos: call.Pos()})
			}
			return true
		})
		// ast.Inspect is pre-order, which follows source order for
		// sibling statements; sort defensively anyway.
		for i := 1; i < len(ev); i++ {
			for j := i; j > 0 && ev[j].pos < ev[j-1].pos; j-- {
				ev[j], ev[j-1] = ev[j-1], ev[j]
			}
		}
		events[atom] = ev
		return ev
	}

	ast.Inspect(unit.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != unit.body {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if immPutNames[sel.Sel.Name] && isEndpointMethodSel(pass, sel) {
					haveImm = true
				}
			}
		}
		return true
	})
	if !haveImm {
		return
	}
	cfg := buildCFG(unit.body)

	for _, b := range cfg.blocks {
		for ai, atom := range b.atoms {
			for ei, ev := range collect(atom) {
				if ev.kind != evImm {
					continue
				}
				if bulk := bulkAfterImm(cfg, collect, b, ai, ei, ev.recv); bulk != nil {
					pass.Reportf(ev.pos,
						"flag/imm put %s on %s is posted before the bulk put %s it signals (%s): "+
							"on a FIFO connection the imm overtakes the payload and the receiver reads stale data "+
							"(the PR 8 class); post the bulk put first, "+
							"or annotate with //putget:allow flagorder -- <reason>",
						ev.name, ev.recv, bulk.name, pass.Fset.Position(bulk.pos))
				}
			}
		}
	}
}

// bulkAfterImm searches forward from the imm event (block b, atom index
// ai, event index ei) along non-back edges for a bulk put on the same
// receiver, stopping each path at a barrier call. Returns the first
// matching bulk event, or nil.
func bulkAfterImm(cfg *funcCFG, collect func(ast.Node) []putEvent, b *cfgBlock, ai, ei int, recv string) *putEvent {
	// scanAtoms processes events of atoms[from:] in block blk, the first
	// atom starting at event index evFrom. Returns (found, stopped).
	type frame struct {
		blk    *cfgBlock
		from   int
		evFrom int
	}
	visited := map[*cfgBlock]bool{b: true}
	stack := []frame{{b, ai, ei + 1}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stopped := false
		for i := fr.from; i < len(fr.blk.atoms) && !stopped; i++ {
			evs := collect(fr.blk.atoms[i])
			start := 0
			if i == fr.from {
				start = fr.evFrom
			}
			for _, ev := range evs[start:] {
				if ev.kind == evBarrier {
					stopped = true
					break
				}
				if ev.kind == evBulk && ev.recv == recv {
					found := ev
					return &found
				}
			}
		}
		if stopped {
			continue
		}
		for _, e := range fr.blk.succs {
			if e.back || visited[e.to] {
				continue
			}
			visited[e.to] = true
			stack = append(stack, frame{e.to, 0, 0})
		}
	}
	return nil
}

// isEndpointMethodSel reports whether sel selects a method on a
// transport endpoint: the receiver's named type (the Endpoint interface
// or a concrete endpoint implementation) lives in the transport package.
func isEndpointMethodSel(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == transportPkgPath
}
