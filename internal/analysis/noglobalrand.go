package analysis

import (
	"strconv"
)

// randPackages are the entropy sources banned inside the determinism
// boundary. Even a locally-seeded math/rand.New is banned: the one
// sanctioned randomness source is the splitmix64 injector in
// internal/faults, whose streams are keyed so results are functions of
// the -seed flag alone.
var randPackages = map[string]string{
	"math/rand":    "use the seeded splitmix64 injector (internal/faults) instead",
	"math/rand/v2": "use the seeded splitmix64 injector (internal/faults) instead",
	"crypto/rand":  "nondeterministic entropy can never appear inside the determinism boundary",
}

// NoGlobalRand forbids importing math/rand (v1 or v2) and crypto/rand
// in sim-domain packages. The import itself is flagged — one finding
// per file, and nothing can be called without it.
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc:  "forbid math/rand and crypto/rand in sim-domain packages; randomness flows through the seeded splitmix64 injector",
	Run: func(pass *Pass) error {
		if !IsSimDomain(pass.Pkg.Path()) {
			return nil
		}
		for _, f := range pass.Files {
			if pass.isTestFile(f.Pos()) {
				continue
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if why, banned := randPackages[path]; banned {
					pass.Reportf(imp.Pos(),
						"import of %s in sim-domain package %s: %s",
						path, pass.Pkg.Path(), why)
				}
			}
		}
		return nil
	},
}
