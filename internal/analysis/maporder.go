package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map whose body has order-dependent
// effects. Go randomizes map iteration order per process, so such a loop
// is exactly the classic source of nondeterministic stdout, Perfetto
// bytes, and event schedules that golden tests then catch as flaky
// diffs. Effects counted as order-dependent:
//
//   - emitting output (fmt.Print*/Fprint*, Write/WriteString/... methods)
//   - posting sim events or writing trace records (sim.Engine.At/After/
//     Spawn/Tracev/Span*/Metric and trace recorder methods)
//   - appending to a slice declared outside the loop, unless the same
//     enclosing block sorts that slice afterwards (the sanctioned
//     collect-keys-then-sort idiom)
//
// Pure reductions (sums, min/max, building another map) are
// order-independent and not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body emits output, posts sim events, writes trace records, or appends to an unsorted outer slice",
	Run: func(pass *Pass) error {
		if !IsSimDomain(pass.Pkg.Path()) {
			return nil
		}
		for _, f := range pass.Files {
			if pass.isTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				var list []ast.Stmt
				switch b := n.(type) {
				case *ast.BlockStmt:
					list = b.List
				case *ast.CaseClause:
					list = b.Body
				case *ast.CommClause:
					list = b.Body
				default:
					return true
				}
				for i, st := range list {
					rs, ok := st.(*ast.RangeStmt)
					if !ok {
						continue
					}
					checkMapRange(pass, rs, list[i+1:])
				}
				return true
			})
		}
		return nil
	},
}

// checkMapRange reports rs if it ranges over a map and its body has an
// order-dependent effect that `after` (the rest of the enclosing block)
// does not neutralize by sorting.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, after []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var effect string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if why := orderedEffectCall(pass, e); why != "" {
				effect = why
				return false
			}
		case *ast.AssignStmt:
			if why := unsortedOuterAppend(pass, e, rs, after); why != "" {
				effect = why
				return false
			}
		}
		return true
	})
	if effect != "" {
		pass.Reportf(rs.Pos(),
			"iteration over map %s has an order-dependent effect (%s); iterate a sorted key slice instead",
			exprString(rs.X), effect)
	}
}

// fmtOutputFuncs emit bytes in call order. Sprint* are pure and exempt.
var fmtOutputFuncs = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

// writerMethods emit bytes in call order regardless of receiver type
// (strings.Builder, bytes.Buffer, io.Writer, bufio.Writer, ...).
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// simPostMethods schedule events or write trace/metric records; their
// call order is observable in the event schedule and the trace file.
var simPostMethods = map[string]bool{
	"At": true, "After": true, "Spawn": true, "SpawnAt": true,
	"Tracef": true, "Tracev": true,
	"SpanOpen": true, "SpanOpenAt": true, "SpanClose": true, "SpanCloseAt": true,
	"Metric": true, "Event": true, "Sample": true, "Record": true,
}

// orderedEffectCall classifies a call inside a map-range body.
func orderedEffectCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	// Package-level fmt output.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && fmtOutputFuncs[name] {
				return "calls fmt." + name
			}
			return ""
		}
	}
	// Method calls.
	if selInfo, ok := pass.TypesInfo.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
		if writerMethods[name] {
			return "writes output via " + name
		}
		if simPostMethods[name] && recvFromSimOrTrace(selInfo.Recv()) {
			return "posts sim events / trace records via " + name
		}
	}
	return ""
}

// recvFromSimOrTrace reports whether the method receiver is a type
// declared in internal/sim or internal/trace.
func recvFromSimOrTrace(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == simPkgPath || path == "putget/internal/trace"
}

// unsortedOuterAppend reports an `outer = append(outer, ...)` inside a
// map-range body, unless a statement after the loop in the same block
// sorts the slice.
func unsortedOuterAppend(pass *Pass, as *ast.AssignStmt, rs *ast.RangeStmt, after []ast.Stmt) string {
	if len(as.Lhs) != len(as.Rhs) {
		return ""
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) {
			continue
		}
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		// Declared inside the loop body: per-iteration, order can't leak.
		if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
			continue
		}
		if sortedAfter(pass, v, after) {
			continue
		}
		return fmt.Sprintf("appends to outer slice %s, which is never sorted in this block", id.Name)
	}
	return ""
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortFuncs maps package path -> function names that establish a
// deterministic order over their first argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether one of the statements after the range loop
// sorts v.
func sortedAfter(pass *Pass, v *types.Var, after []ast.Stmt) bool {
	for _, st := range after {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			continue
		}
		names := sortFuncs[pn.Imported().Path()]
		if names == nil || !names[sel.Sel.Name] {
			continue
		}
		argID, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if ok && pass.TypesInfo.Uses[argID] == v {
			return true
		}
	}
	return false
}

// exprString renders a short expression for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(x.X)
	default:
		return "expression"
	}
}
