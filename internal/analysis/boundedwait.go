package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// unboundedWaits seeds the set of blocking completion waits that spin
// forever if the awaited notification, CQE, or completion never arrives
// — the calls PR 1 added ...Timeout variants for. At analysis time the
// set is widened with whatever non-Timeout Wait/Poll methods the
// transport.Endpoint interface declares (see waitNames), so a new
// endpoint wait is covered the moment it is added to the interface,
// without touching this list.
var unboundedWaits = map[string]bool{
	"DevWaitComplete":   true,
	"HostWaitComplete":  true,
	"DevWaitNotif":      true,
	"HostWaitNotif":     true,
	"DevWaitNotifValue": true,
	"DevPollCQ":         true,
	"HostPollCQ":        true,
}

// waitNames returns the unbounded-wait name set for this pass: the seed
// list plus every Dev*/Host* method of transport.Endpoint whose name
// says Wait or Poll and that has no bounded (...Timeout) spelling.
func waitNames(pass *Pass) map[string]bool {
	names := map[string]bool{}
	for k := range unboundedWaits {
		names[k] = true
	}
	ep := endpointInterface(pass.Pkg)
	if ep == nil {
		return names
	}
	for i := 0; i < ep.NumMethods(); i++ {
		n := ep.Method(i).Name()
		if !strings.HasPrefix(n, "Dev") && !strings.HasPrefix(n, "Host") {
			continue
		}
		if strings.HasSuffix(n, "Timeout") {
			continue
		}
		if strings.Contains(n, "Wait") || strings.Contains(n, "Poll") {
			names[n] = true
		}
	}
	return names
}

// endpointInterface finds the transport.Endpoint interface among the
// package under analysis and its transitive imports (loaded as export
// data), or nil when transport is not in the dependency cone.
func endpointInterface(pkg *types.Package) *types.Interface {
	var find func(p *types.Package, seen map[*types.Package]bool) *types.Interface
	find = func(p *types.Package, seen map[*types.Package]bool) *types.Interface {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == transportPkgPath {
			if tn, ok := p.Scope().Lookup("Endpoint").(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp, seen); iface != nil {
				return iface
			}
		}
		return nil
	}
	return find(pkg, map[*types.Package]bool{})
}

// BoundedWait flags calls to non-timeout blocking waits outside test
// files, module-wide (cmd/* and examples/* included: an example that
// deadlocks teaches the API wrong). A call is exempt when it appears
// inside the wait's own implementation — any function transitively
// reachable, through the package call graph, from a function named like
// a wait. That covers the delegation ladder by which transport adapters
// implement Endpoint.DevWaitComplete in terms of core's DevWaitNotif,
// however many local helpers the ladder is factored into — the old rule
// only exempted functions that happened to share the wait's name.
var BoundedWait = &Analyzer{
	Name: "boundedwait",
	Doc:  "flag unbounded blocking waits (DevWaitComplete, HostWaitNotif, DevPollCQ, ...) outside test files; use the ...Timeout variants or annotate",
	Run:  runBoundedWait,
}

func runBoundedWait(pass *Pass) error {
	names := waitNames(pass)
	g := buildCallGraph(pass)
	var roots []*types.Func
	for fn := range g.decls {
		if names[fn.Name()] {
			roots = append(roots, fn)
		}
	}
	exempt := g.reachable(roots)
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && exempt[fn] {
				continue // part of a wait's own delegation ladder
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !names[sel.Sel.Name] {
					return true
				}
				pass.Reportf(call.Pos(),
					"unbounded blocking wait %s outside a test: use the bounded %sTimeout variant and handle the timeout, or annotate with //putget:allow boundedwait -- <reason>",
					sel.Sel.Name, timeoutBase(sel.Sel.Name))
				return true
			})
		}
	}
	return nil
}

// timeoutBase names the bounded variant's stem for the message:
// DevWaitNotifValue's bounded form is DevWaitNotifTimeout.
func timeoutBase(name string) string {
	if name == "DevWaitNotifValue" {
		return "DevWaitNotif"
	}
	return name
}
