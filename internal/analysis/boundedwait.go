package analysis

import (
	"go/ast"
)

// unboundedWaits are the blocking completion waits that spin forever if
// the awaited notification, CQE, or completion never arrives — the
// calls PR 1 added ...Timeout variants for. The bare forms are legal in
// tests (which run known-complete schedules under `go test` timeouts)
// and inside their own wrapper ladder; anywhere else they either need
// the bounded variant or an in-source justification for why the wait
// cannot hang.
var unboundedWaits = map[string]bool{
	"DevWaitComplete":   true,
	"HostWaitComplete":  true,
	"DevWaitNotif":      true,
	"HostWaitNotif":     true,
	"DevWaitNotifValue": true,
	"DevPollCQ":         true,
	"HostPollCQ":        true,
}

// BoundedWait flags calls to non-timeout blocking waits outside test
// files, module-wide (cmd/* and examples/* included: an example that
// deadlocks teaches the API wrong). A call is exempt when it appears
// inside a function of the same name — the delegation ladder by which
// transport adapters implement Endpoint.DevWaitComplete in terms of
// core's DevWaitNotif is the wait's own definition, not a use of it.
var BoundedWait = &Analyzer{
	Name: "boundedwait",
	Doc:  "flag unbounded blocking waits (DevWaitComplete, HostWaitNotif, DevPollCQ, ...) outside test files; use the ...Timeout variants or annotate",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			if pass.isTestFile(f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if unboundedWaits[fd.Name.Name] {
					continue // the wrapper ladder defines the wait
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || !unboundedWaits[sel.Sel.Name] {
						return true
					}
					pass.Reportf(call.Pos(),
						"unbounded blocking wait %s outside a test: use the bounded %sTimeout variant and handle the timeout, or annotate with //putget:allow boundedwait -- <reason>",
						sel.Sel.Name, timeoutBase(sel.Sel.Name))
					return true
				})
			}
		}
		return nil
	},
}

// timeoutBase names the bounded variant's stem for the message:
// DevWaitNotifValue's bounded form is DevWaitNotifTimeout.
func timeoutBase(name string) string {
	if name == "DevWaitNotifValue" {
		return "DevWaitNotif"
	}
	return name
}
