package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one type-checked compilation unit ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
}

// Load lists patterns in dir with the go tool, compiles export data for
// every dependency, and returns the matched packages parsed and
// type-checked. Only non-test Go files are loaded: test files are exempt
// from every analyzer, and under `go vet -vettool` they arrive through
// the unitchecker path instead.
//
// The loader shells out to `go list -deps -export -json` rather than
// depending on golang.org/x/tools/go/packages: this module is
// dependency-free, and the go tool is the one binary a Go repo can
// always assume.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,ImportMap,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(&out)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.Name != "" {
			targets = append(targets, p)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		var files []string
		for _, gf := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, gf))
		}
		pkg, err := typeCheck(t.ImportPath, t.Dir, files, t.ImportMap, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses and type-checks one package against pre-built export
// data. importMap translates source-level import paths to canonical
// ones; exports maps canonical paths to export data files.
func typeCheck(importPath, dir string, filenames []string, importMap map[string]string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", fn, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if c, ok := importMap[path]; ok {
			path = c
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Run loads patterns in dir and applies the analyzers, returning all
// surviving findings in deterministic order.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, ds...)
	}
	return all, nil
}
