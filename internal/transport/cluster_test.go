package transport

// Cluster-path conformance: the same Endpoint contract must hold when
// the two endpoints sit on arbitrary nodes of an N-node switched fabric
// instead of the two ends of one cable.

import (
	"bytes"
	"testing"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/topo"
)

func forBothClusters(t *testing.T, spec topo.Spec, n int, f func(t *testing.T, k Kind, cl *cluster.Cluster, tr Transport)) {
	for _, k := range []Kind{KindExtoll, KindIB} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			fab := cluster.FabricExtoll
			if k == KindIB {
				fab = cluster.FabricIB
			}
			cl := cluster.NewClusterOn(fab, spec, n, cluster.Default())
			defer cl.Shutdown()
			f(t, k, cl, NewCluster(k, cl))
		})
	}
}

func TestClusterDevPutAcrossTorus(t *testing.T) {
	forBothClusters(t, topo.Spec{Kind: topo.Torus3D}, 8, func(t *testing.T, k Kind, cl *cluster.Cluster, tr Transport) {
		src, dst := cl.Node(1), cl.Node(6) // opposite corners of the 2x2x2 torus
		sBuf := src.AllocDev(rigBuf)
		dBuf := dst.AllocDev(rigBuf)
		sR := tr.Register(src, sBuf, rigBuf)
		dR := tr.Register(dst, dBuf, rigBuf)
		es, ed := tr.ConnectPair(src, dst, ConnHint{})
		if es.Node() != src || ed.Node() != dst {
			t.Fatal("ConnectPair endpoint order does not match arguments")
		}
		payload := make([]byte, 4096)
		for i := range payload {
			payload[i] = byte(i*13 + 5)
		}
		if err := src.GPU.HostWrite(sBuf, payload); err != nil {
			t.Fatal(err)
		}
		var comp Completion
		done := src.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			es.DevPut(w, sR, 0, dR, 0, len(payload), FlagLocalComp)
			comp = es.DevWaitComplete(w, CompLocal)
		})
		cl.E.Run()
		if !done.Done() {
			t.Fatal("put kernel did not complete (deadlock?)")
		}
		if comp.Err || comp.Timeout {
			t.Fatalf("healthy put completed with %+v", comp)
		}
		got := make([]byte, len(payload))
		if err := dst.GPU.HostRead(dBuf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("put payload corrupted crossing the torus")
		}
	})
}

// A get must round-trip the fabric both ways (request out, response
// back) even when the two directions take multi-hop routed paths.
func TestClusterDevGetAcrossFatTree(t *testing.T) {
	forBothClusters(t, topo.Spec{Kind: topo.FatTree}, 9, func(t *testing.T, k Kind, cl *cluster.Cluster, tr Transport) {
		// Radix derives to 3: nodes 0 and 8 sit on different leaves.
		loc, rem := cl.Node(0), cl.Node(8)
		lBuf := loc.AllocDev(rigBuf)
		rBuf := rem.AllocDev(rigBuf)
		lR := tr.Register(loc, lBuf, rigBuf)
		rR := tr.Register(rem, rBuf, rigBuf)
		el, _ := tr.ConnectPair(loc, rem, ConnHint{})
		payload := make([]byte, 2048)
		for i := range payload {
			payload[i] = byte(i*3 + 1)
		}
		if err := rem.GPU.HostWrite(rBuf, payload); err != nil {
			t.Fatal(err)
		}
		done := loc.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			el.DevGet(w, lR, 0, rR, 0, len(payload))
		})
		cl.E.Run()
		if !done.Done() {
			t.Fatal("get kernel did not complete (deadlock?)")
		}
		got := make([]byte, len(payload))
		if err := loc.GPU.HostRead(lBuf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("get payload corrupted crossing the fat-tree")
		}
	})
}

// Several connections from distinct nodes into one hot node must all
// work concurrently — per-node port/QPN allocation and routing-key
// binding must not collide.
func TestClusterManyToOne(t *testing.T) {
	forBothClusters(t, topo.Spec{Kind: topo.Torus3D}, 8, func(t *testing.T, k Kind, cl *cluster.Cluster, tr Transport) {
		hot := cl.Node(7)
		hBuf := hot.AllocDev(rigBuf)
		hR := tr.Register(hot, hBuf, rigBuf)
		senders := []int{0, 2, 5}
		kernels := 0
		for si, s := range senders {
			src := cl.Node(s)
			sBuf := src.AllocDev(4096)
			sR := tr.Register(src, sBuf, 4096)
			es, _ := tr.ConnectPair(src, hot, ConnHint{})
			fill := make([]byte, 512)
			for i := range fill {
				fill[i] = byte(s + 1)
			}
			if err := src.GPU.HostWrite(sBuf, fill); err != nil {
				t.Fatal(err)
			}
			off := uint64(si) * 512
			src.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
				es.DevPut(w, sR, 0, hR, off, 512, FlagLocalComp)
				es.DevWaitComplete(w, CompLocal)
			})
			kernels++
		}
		cl.E.Run()
		got := make([]byte, 512*len(senders))
		if err := hot.GPU.HostRead(hBuf, got); err != nil {
			t.Fatal(err)
		}
		for si, s := range senders {
			for i := 0; i < 512; i++ {
				if got[si*512+i] != byte(s+1) {
					t.Fatalf("sender %d slot corrupted at byte %d: %d", s, i, got[si*512+i])
				}
			}
		}
	})
}
