package transport

// The conformance suite pins the Endpoint contract against every backend:
// whatever fabric sits underneath, an Endpoint must deliver puts in order,
// complete each flagged operation exactly once, respect bounded waits, and
// surface fault-path failures as Err/Timeout completions. A third backend
// (DESIGN.md) is expected to pass this file unchanged.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"putget/internal/cluster"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

type rig struct {
	tb         *cluster.Testbed
	tr         Transport
	aBuf, bBuf memspace.Addr
	aR, bR     Region
	a, b       Endpoint
}

const rigBuf = 1 << 20

func newRig(t *testing.T, k Kind, p cluster.Params, hint ConnHint) *rig {
	t.Helper()
	var tb *cluster.Testbed
	if k == KindExtoll {
		tb = cluster.NewExtollPair(p)
	} else {
		tb = cluster.NewIBPair(p)
	}
	tr := New(k, tb)
	aBuf := tb.A.AllocDev(rigBuf)
	bBuf := tb.B.AllocDev(rigBuf)
	aR := tr.Register(tb.A, aBuf, rigBuf)
	bR := tr.Register(tb.B, bBuf, rigBuf)
	a, b := tr.Connect(0, hint)
	return &rig{tb: tb, tr: tr, aBuf: aBuf, bBuf: bBuf, aR: aR, bR: bR, a: a, b: b}
}

func forBoth(t *testing.T, f func(t *testing.T, k Kind)) {
	for _, k := range []Kind{KindExtoll, KindIB} {
		k := k
		t.Run(k.String(), func(t *testing.T) { f(t, k) })
	}
}

func mustDone(t *testing.T, d interface{ Done() bool }, what string) {
	t.Helper()
	if !d.Done() {
		t.Fatalf("%s did not complete (deadlock?)", what)
	}
}

func TestConformanceDevPutRoundTrip(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		r := newRig(t, k, cluster.Default(), ConnHint{})
		defer r.tb.Shutdown()
		payload := make([]byte, 4096)
		for i := range payload {
			payload[i] = byte(i*7 + 3)
		}
		if err := r.tb.A.GPU.HostWrite(r.aBuf, payload); err != nil {
			t.Fatal(err)
		}
		var comp Completion
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			r.a.DevPut(w, r.aR, 0, r.bR, 0, len(payload), FlagLocalComp)
			comp = r.a.DevWaitComplete(w, CompLocal)
		})
		r.tb.E.Run()
		mustDone(t, done, "put kernel")
		if comp.Err || comp.Timeout {
			t.Fatalf("healthy put completed with %+v", comp)
		}
		got := make([]byte, len(payload))
		if err := r.tb.B.GPU.HostRead(r.bBuf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("put payload corrupted")
		}
	})
}

func TestConformanceDevPutCollectiveRoundTrip(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		r := newRig(t, k, cluster.Default(), ConnHint{})
		defer r.tb.Shutdown()
		payload := make([]byte, 512)
		for i := range payload {
			payload[i] = byte(i*3 + 11)
		}
		if err := r.tb.A.GPU.HostWrite(r.aBuf, payload); err != nil {
			t.Fatal(err)
		}
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: 32}, func(w *gpusim.Warp) {
			r.a.DevPutCollective(w, r.aR, 0, r.bR, 0, len(payload), FlagLocalComp)
			r.a.DevWaitComplete(w, CompLocal)
		})
		r.tb.E.Run()
		mustDone(t, done, "collective put kernel")
		got := make([]byte, len(payload))
		if err := r.tb.B.GPU.HostRead(r.bBuf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("collective put payload corrupted")
		}
	})
}

// TestConformanceOrdering: puts on one connection are delivered in post
// order, so when the final put (the only flagged one) completes locally,
// every earlier payload has already landed.
func TestConformanceOrdering(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		r := newRig(t, k, cluster.Default(), ConnHint{})
		defer r.tb.Shutdown()
		const n, chunk = 8, 256
		src := make([]byte, n*chunk)
		for i := range src {
			src[i] = byte(i*13 + 1)
		}
		if err := r.tb.A.GPU.HostWrite(r.aBuf, src); err != nil {
			t.Fatal(err)
		}
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 0; i < n; i++ {
				flags := 0
				if i == n-1 {
					flags = FlagLocalComp
				}
				r.a.DevPut(w, r.aR, uint64(i*chunk), r.bR, uint64(i*chunk), chunk, flags)
			}
			r.a.DevWaitComplete(w, CompLocal)
		})
		r.tb.E.Run()
		mustDone(t, done, "ordered put kernel")
		got := make([]byte, n*chunk)
		if err := r.tb.B.GPU.HostRead(r.bBuf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Fatal("in-order delivery violated: earlier puts missing after final completion")
		}
	})
}

// TestConformanceCompletionExactlyOnce: N flagged operations produce
// exactly N local completions — no duplicates, no leftovers.
func TestConformanceCompletionExactlyOnce(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		r := newRig(t, k, cluster.Default(), ConnHint{})
		defer r.tb.Shutdown()
		const n = 4
		var extra bool
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 0; i < n; i++ {
				r.a.DevPut(w, r.aR, 0, r.bR, 0, 64, FlagLocalComp)
			}
			for i := 0; i < n; i++ {
				r.a.DevWaitComplete(w, CompLocal)
			}
			_, extra = r.a.DevTryComplete(w, CompLocal)
		})
		r.tb.E.Run()
		mustDone(t, done, "exactly-once kernel")
		if extra {
			t.Fatal("reaped a fifth completion from four flagged puts")
		}
	})
}

// TestConformanceTimeoutSemantics: a bounded wait on an idle completion
// stream reports failure at (about) its deadline instead of blocking.
func TestConformanceTimeoutSemantics(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		r := newRig(t, k, cluster.Default(), ConnHint{})
		defer r.tb.Shutdown()
		var (
			ok   bool
			tEnd sim.Time
		)
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			_, ok = r.a.DevWaitCompleteTimeout(w, CompLocal, 200*sim.Microsecond)
			tEnd = w.Now()
		})
		r.tb.E.Run()
		mustDone(t, done, "bounded wait kernel")
		if ok {
			t.Fatal("bounded wait claimed a completion from an idle endpoint")
		}
		if limit := sim.Time(0).Add(500 * sim.Microsecond); tEnd > limit {
			t.Fatalf("bounded wait returned at %v; deadline was 200us", tEnd)
		}
	})
}

// TestConformanceRemoteCompletion: a put flagged for remote completion is
// reaped at the destination with the payload size the fabric reported.
func TestConformanceRemoteCompletion(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		r := newRig(t, k, cluster.Default(), ConnHint{})
		defer r.tb.Shutdown()
		const size = 128
		var comp Completion
		bDone := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("b.cpu", func(p *sim.Proc) {
			r.b.HostPrepostArrivals(p, 1)
			comp = r.b.HostWaitComplete(p, CompRemote)
			bDone.Complete()
		})
		aDone := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			p.Sleep(10 * sim.Microsecond) // let B prepost first
			r.a.HostPut(p, r.aR, 0, r.bR, 0, size, FlagRemoteComp)
			aDone.Complete()
		})
		r.tb.E.Run()
		if !aDone.Done() || !bDone.Done() {
			t.Fatal("remote-completion procs did not finish")
		}
		if comp.Err || comp.Timeout {
			t.Fatalf("healthy arrival completed with %+v", comp)
		}
		if comp.Size != size {
			t.Fatalf("arrival completion size = %d, want %d", comp.Size, size)
		}
	})
}

func TestConformanceDevGetRoundTrip(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		r := newRig(t, k, cluster.Default(), ConnHint{})
		defer r.tb.Shutdown()
		payload := make([]byte, 1024)
		for i := range payload {
			payload[i] = byte(i*5 + 2)
		}
		if err := r.tb.B.GPU.HostWrite(r.bBuf, payload); err != nil {
			t.Fatal(err)
		}
		var first uint64
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			r.a.DevGet(w, r.aR, 0, r.bR, 0, len(payload))
			// The contract: data is locally visible when DevGet returns.
			first = w.LdGlobalU64(r.aBuf)
		})
		r.tb.E.Run()
		mustDone(t, done, "get kernel")
		if want := binary.LittleEndian.Uint64(payload[:8]); first != want {
			t.Fatalf("DevGet returned before data landed: %#x != %#x", first, want)
		}
		got := make([]byte, len(payload))
		if err := r.tb.A.GPU.HostRead(r.aBuf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("get payload corrupted")
		}
	})
}

func TestConformanceFetchAdd(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		r := newRig(t, k, cluster.Default(), ConnHint{Atomics: true})
		defer r.tb.Shutdown()
		seed := make([]byte, 8)
		binary.LittleEndian.PutUint64(seed, 100)
		if err := r.tb.B.GPU.HostWrite(r.bBuf, seed); err != nil {
			t.Fatal(err)
		}
		var old1, old2 uint64
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			old1 = r.a.DevFetchAdd(w, 5, r.bR, 0)
			old2 = r.a.DevFetchAdd(w, 7, r.bR, 0)
		})
		r.tb.E.Run()
		mustDone(t, done, "fetch-add kernel")
		if old1 != 100 || old2 != 105 {
			t.Fatalf("fetch-add old values = %d, %d; want 100, 105", old1, old2)
		}
		got := make([]byte, 8)
		if err := r.tb.B.GPU.HostRead(r.bBuf, got); err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint64(got); v != 112 {
			t.Fatalf("counter = %d, want 112", v)
		}
	})
}

func TestConformanceHostMirrors(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		r := newRig(t, k, cluster.Default(), ConnHint{Atomics: true})
		defer r.tb.Shutdown()
		payload := make([]byte, 256)
		for i := range payload {
			payload[i] = byte(i ^ 0x3c)
		}
		if err := r.tb.A.GPU.HostWrite(r.aBuf, payload); err != nil {
			t.Fatal(err)
		}
		var (
			comp Completion
			old  uint64
		)
		done := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			r.a.HostPut(p, r.aR, 0, r.bR, 0, len(payload), FlagLocalComp)
			comp = r.a.HostWaitComplete(p, CompLocal)
			r.a.HostGet(p, r.aR, 4096, r.bR, 0, len(payload))
			old = r.a.HostFetchAdd(p, 1, r.bR, 512)
			done.Complete()
		})
		r.tb.E.Run()
		if !done.Done() {
			t.Fatal("host mirror proc did not finish")
		}
		if comp.Err || comp.Timeout {
			t.Fatalf("healthy host put completed with %+v", comp)
		}
		if old != 0 {
			t.Fatalf("host fetch-add old = %d, want 0", old)
		}
		got := make([]byte, len(payload))
		if err := r.tb.A.GPU.HostRead(r.aBuf+4096, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("host get read back wrong bytes after host put")
		}
	})
}

// TestConformanceFaultParity: on a dead wire (100% drop) each fabric's
// end-to-end failure signal must surface through the endpoint completion
// streams as Completion{Err: true, Timeout: true}. The tracked operation
// differs per fabric — EXTOLL puts are fire-and-forget at the requester
// (only gets and fetch-adds arm the response watchdog), while InfiniBand
// RC acks every signaled operation — so the test drives each fabric's
// tracked op and asserts the identical Completion mapping.
func TestConformanceFaultParity(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		p := cluster.Default()
		p.FaultInject = true
		p.FaultSeed = 3
		p.FaultDropRate = 1.0
		r := newRig(t, k, p, ConnHint{})
		defer r.tb.Shutdown()
		var (
			comp Completion
			ok   bool
		)
		done := sim.NewCompletion(r.tb.E)
		if k == KindExtoll {
			// Post the tracked get through the raw-WR escape hatch so its
			// timeout notification stays in the ring for the endpoint's
			// bounded completer wait to convert.
			ra := r.tr.(*Extoll).RMA(0)
			srcNLA, dstNLA := r.bR.NLA(), r.aR.NLA()
			r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
				ra.HostGet(p, 0, srcNLA, dstNLA, 64, extoll.FlagCompNotif)
				comp, ok = r.a.HostWaitCompleteTimeout(p, CompRemote, 5*sim.Millisecond)
				done.Complete()
			})
		} else {
			r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
				r.a.HostPut(p, r.aR, 0, r.bR, 0, 64, FlagLocalComp)
				comp, ok = r.a.HostWaitCompleteTimeout(p, CompLocal, 5*sim.Millisecond)
				done.Complete()
			})
		}
		r.tb.E.Run()
		if !done.Done() {
			t.Fatal("fault-parity proc did not finish")
		}
		if !ok {
			t.Fatal("no completion surfaced for an operation on a dead wire")
		}
		if !comp.Err || !comp.Timeout {
			t.Fatalf("dead-wire completion = %+v; want Err and Timeout set", comp)
		}
	})
}

// TestConformanceLostPutNoPhantomArrival: a put whose payload dies on the
// wire must never produce an arrival completion at the peer — the bounded
// remote wait unblocks empty-handed on both fabrics instead of hanging or
// inventing an event.
func TestConformanceLostPutNoPhantomArrival(t *testing.T) {
	forBoth(t, func(t *testing.T, k Kind) {
		p := cluster.Default()
		p.FaultInject = true
		p.FaultSeed = 5
		p.FaultDropRate = 1.0
		r := newRig(t, k, p, ConnHint{})
		defer r.tb.Shutdown()
		var ok bool
		done := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("b.cpu", func(p *sim.Proc) {
			r.b.HostPrepostArrivals(p, 1)
			_, ok = r.b.HostWaitCompleteTimeout(p, CompRemote, 3*sim.Millisecond)
			done.Complete()
		})
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			r.a.HostPut(p, r.aR, 0, r.bR, 0, 64, FlagRemoteComp)
		})
		r.tb.E.Run()
		if !done.Done() {
			t.Fatal("phantom-arrival waiter did not finish")
		}
		if ok {
			t.Fatal("peer reaped an arrival completion for a put that never crossed the wire")
		}
	})
}
