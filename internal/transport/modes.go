package transport

import "fmt"

// ControlMode selects who drives the put/get control path and where the
// completion information lives — the one axis the paper sweeps for both
// fabrics (§V). It replaces the former per-fabric ExtollMode/IBMode pairs;
// the String values are the paper's series names, unchanged.
type ControlMode int

const (
	// Direct: the GPU posts descriptors and polls completion information
	// where EXTOLL puts it — notification rings in system memory
	// (dev2dev-direct). EXTOLL only.
	Direct ControlMode = iota
	// PollOnGPU: the GPU posts descriptors and polls the last received
	// payload word in device memory instead of touching notifications
	// (dev2dev-pollOnGPU). EXTOLL only.
	PollOnGPU
	// QueuesOnGPU: the GPU posts to IB work queues placed in GPU device
	// memory and polls the CQ there (dev2dev-bufOnGPU). InfiniBand only.
	QueuesOnGPU
	// QueuesOnHost: same control path with the IB queues in host memory,
	// every touch crossing PCIe (dev2dev-bufOnHost). InfiniBand only.
	QueuesOnHost
	// HostAssisted: the GPU triggers a CPU helper thread through a
	// host-memory flag; the CPU drives the fabric (dev2dev-assisted).
	HostAssisted
	// HostControlled: all control flow stays on the CPU
	// (dev2dev-hostControlled) — the paper's baseline.
	HostControlled
)

// String returns the paper's series label for the mode.
func (m ControlMode) String() string {
	switch m {
	case Direct:
		return "dev2dev-direct"
	case PollOnGPU:
		return "dev2dev-pollOnGPU"
	case QueuesOnGPU:
		return "dev2dev-bufOnGPU"
	case QueuesOnHost:
		return "dev2dev-bufOnHost"
	case HostAssisted:
		return "dev2dev-assisted"
	case HostControlled:
		return "dev2dev-hostControlled"
	}
	return fmt.Sprintf("ControlMode(%d)", int(m))
}

// Supports reports whether a fabric implements a control mode: the queue-
// placement variants are IB-specific (EXTOLL's rings are driver-placed),
// the notification/data-polling variants are EXTOLL-specific, and the two
// host-driven modes exist everywhere.
func Supports(k Kind, m ControlMode) bool {
	switch m {
	case Direct, PollOnGPU:
		return k == KindExtoll
	case QueuesOnGPU, QueuesOnHost:
		return k == KindIB
	case HostAssisted, HostControlled:
		return true
	}
	return false
}

// Modes lists the control modes a fabric supports, in presentation order.
func Modes(k Kind) []ControlMode {
	all := []ControlMode{Direct, PollOnGPU, QueuesOnGPU, QueuesOnHost, HostAssisted, HostControlled}
	var out []ControlMode
	for _, m := range all {
		if Supports(k, m) {
			out = append(out, m)
		}
	}
	return out
}
