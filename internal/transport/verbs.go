package transport

import (
	"encoding/binary"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// Verbs adapts core.Verbs to the Transport/Endpoint interfaces. Like the
// EXTOLL adapter it is pure delegation: descriptor posting keeps the
// paper's measured per-WQE instruction footprint (Table II), CQ polling
// keeps its conversion/lookup costs, and queue placement follows the
// ConnHint, so numbers through this adapter equal the raw Verbs path.
type Verbs struct {
	tb *cluster.Testbed // pair testbeds; nil for clusters
	cl *cluster.Cluster // N-node clusters; nil for pairs
	// vs binds one core.Verbs per node, eager for pairs, lazy for
	// cluster nodes. Lookup-only map.
	vs map[*cluster.Node]*core.Verbs
}

// NewVerbs builds the InfiniBand adapter over a testbed from
// cluster.NewIBPair.
func NewVerbs(tb *cluster.Testbed) *Verbs {
	return &Verbs{
		tb: tb,
		vs: map[*cluster.Node]*core.Verbs{tb.A: core.NewVerbs(tb.A), tb.B: core.NewVerbs(tb.B)},
	}
}

// NewVerbsCluster builds the InfiniBand adapter over an N-node cluster
// from cluster.NewClusterOn(cluster.FabricIB, ...).
func NewVerbsCluster(cl *cluster.Cluster) *Verbs {
	return &Verbs{cl: cl, vs: map[*cluster.Node]*core.Verbs{}}
}

// Kind implements Transport.
func (t *Verbs) Kind() Kind { return KindIB }

// Testbed implements Transport.
func (t *Verbs) Testbed() *cluster.Testbed { return t.tb }

// Cluster implements Transport.
func (t *Verbs) Cluster() *cluster.Cluster { return t.cl }

// Verbs exposes the underlying per-node Verbs binding (side 0 = node A)
// for cost-model experiments that need the raw API. Pair only.
func (t *Verbs) Verbs(side int) *core.Verbs {
	if side == 0 {
		return t.verbs(t.tb.A)
	}
	return t.verbs(t.tb.B)
}

func (t *Verbs) verbs(n *cluster.Node) *core.Verbs {
	if v := t.vs[n]; v != nil {
		return v
	}
	if t.cl != nil {
		t.cl.IndexOf(n) // panics on foreign nodes
		v := core.NewVerbs(n)
		t.vs[n] = v
		return v
	}
	panic("transport: node not part of this testbed")
}

// Register implements Transport.
func (t *Verbs) Register(n *cluster.Node, base memspace.Addr, size uint64) Region {
	return Region{Base: base, Size: size, kind: KindIB, mr: t.verbs(n).RegMR(base, size)}
}

// Connect implements Transport: one queue pair per call, rings sized and
// placed per the hint. With hint.Atomics each endpoint additionally gets
// an 8-byte registered device-memory landing buffer for fetch-add
// results; without it the allocation layout is untouched.
func (t *Verbs) Connect(idx int, hint ConnHint) (Endpoint, Endpoint) {
	if t.tb == nil {
		panic("transport: Connect is pair-only; use ConnectPair on a cluster")
	}
	return t.connect(t.tb.A, t.tb.B, hint)
}

// ConnectPair implements Transport: one fresh queue pair per node, RC-
// connected; on a cluster the topology routing tables learn that packets
// sent from each QPN reach the other node.
func (t *Verbs) ConnectPair(na, nb *cluster.Node, hint ConnHint) (Endpoint, Endpoint) {
	if na == nb {
		panic("transport: ConnectPair needs two distinct nodes")
	}
	return t.connect(na, nb, hint)
}

func (t *Verbs) connect(na, nb *cluster.Node, hint ConnHint) (Endpoint, Endpoint) {
	sq, rq, cq := hint.SendEntries, hint.RecvEntries, hint.CompEntries
	if sq == 0 {
		sq = 512
	}
	if rq == 0 {
		rq = 64
	}
	if cq == 0 {
		cq = 512
	}
	va, vb := t.verbs(na), t.verbs(nb)
	qa := va.CreateQP(sq, rq, cq, hint.QueuesOnGPU)
	qb := vb.CreateQP(sq, rq, cq, hint.QueuesOnGPU)
	core.ConnectVQPs(qa, qb)
	if t.cl != nil {
		t.cl.BindIB(na, qa.QP.QPN, nb)
		t.cl.BindIB(nb, qb.QP.QPN, na)
	}
	ea := &ibEndpoint{v: va, node: na, qp: qa}
	eb := &ibEndpoint{v: vb, node: nb, qp: qb}
	if hint.Atomics {
		ea.scratch = na.AllocDev(8)
		ea.scratchMR = va.RegMR(ea.scratch, 8)
		eb.scratch = nb.AllocDev(8)
		eb.scratchMR = vb.RegMR(eb.scratch, 8)
	}
	return ea, eb
}

// ibEndpoint is one side of an IB queue-pair connection. txSeq numbers
// posted operations (it becomes the WQE's WRID and, for remote
// completions, the immediate the peer reaps as Completion.Value); rxSeq
// numbers preposted arrival slots.
type ibEndpoint struct {
	v         *core.Verbs
	node      *cluster.Node
	qp        *core.VQP
	txSeq     uint64
	rxSeq     uint64
	scratch   memspace.Addr
	scratchMR *ibsim.MR
}

// Node implements Endpoint.
func (e *ibEndpoint) Node() *cluster.Node { return e.node }

// putWQE builds the write descriptor for one put; the completion flags
// map to IB's signaling (local) and write-with-immediate (remote) forms.
func (e *ibEndpoint) putWQE(src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int) ibsim.WQE {
	e.txSeq++
	wqe := ibsim.WQE{
		Opcode: ibsim.OpRDMAWrite, WRID: e.txSeq,
		LAddr: uint64(src.Base) + srcOff, LKey: src.mr.LKey, Length: size,
		RAddr: uint64(dst.Base) + dstOff, RKey: dst.mr.RKey,
	}
	if flags&FlagLocalComp != 0 {
		wqe.Flags |= ibsim.FlagSignaled
	}
	if flags&FlagRemoteComp != 0 {
		wqe.Opcode = ibsim.OpRDMAWriteImm
		wqe.Imm = uint32(e.txSeq)
	}
	return wqe
}

func (e *ibEndpoint) immWQE(value uint64, dst Region, dstOff uint64, size, flags int) ibsim.WQE {
	if size > 8 {
		panic("transport: PutImm size > 8")
	}
	e.txSeq++
	var vb [8]byte
	binary.LittleEndian.PutUint64(vb[:], value)
	wqe := ibsim.WQE{
		Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagInline, WRID: e.txSeq,
		Inline: vb[:size], Length: size,
		RAddr: uint64(dst.Base) + dstOff, RKey: dst.mr.RKey,
	}
	if flags&FlagLocalComp != 0 {
		wqe.Flags |= ibsim.FlagSignaled
	}
	if flags&FlagRemoteComp != 0 {
		wqe.Opcode = ibsim.OpRDMAWriteImm
		wqe.Imm = uint32(e.txSeq)
	}
	return wqe
}

func (e *ibEndpoint) getWQE(dst Region, dstOff uint64, src Region, srcOff uint64, size int) ibsim.WQE {
	e.txSeq++
	return ibsim.WQE{
		Opcode: ibsim.OpRDMARead, Flags: ibsim.FlagSignaled, WRID: e.txSeq,
		LAddr: uint64(dst.Base) + dstOff, LKey: dst.mr.LKey, Length: size,
		RAddr: uint64(src.Base) + srcOff, RKey: src.mr.RKey,
	}
}

func (e *ibEndpoint) fetchAddWQE(addend uint64, dst Region, dstOff uint64) ibsim.WQE {
	if e.scratchMR == nil {
		panic("transport: FetchAdd needs ConnHint.Atomics on InfiniBand")
	}
	e.txSeq++
	return ibsim.WQE{
		Opcode: ibsim.OpAtomicFAdd, Flags: ibsim.FlagSignaled, WRID: e.txSeq,
		LAddr: uint64(e.scratch), LKey: e.scratchMR.LKey, Length: 8,
		RAddr: uint64(dst.Base) + dstOff, RKey: dst.mr.RKey, Add: addend,
	}
}

func (e *ibEndpoint) cq(c CompClass) *core.VCQ {
	if c == CompLocal {
		return e.qp.SendCQ
	}
	return e.qp.RecvCQ
}

func cqeCompletion(cqe ibsim.CQE) Completion {
	return Completion{
		Size: cqe.ByteLen, Value: uint64(cqe.Imm),
		Err:     cqe.Status != ibsim.StatusOK,
		Timeout: cqe.Status == ibsim.StatusRetryExc || cqe.Status == ibsim.StatusRnrExc,
	}
}

// DevPut implements Endpoint.
func (e *ibEndpoint) DevPut(w *gpusim.Warp, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int) {
	e.v.DevPostSend(w, e.qp, e.putWQE(src, srcOff, dst, dstOff, size, flags))
}

// DevPutImm implements Endpoint: the value travels inline in the WQE.
func (e *ibEndpoint) DevPutImm(w *gpusim.Warp, value uint64, dst Region, dstOff uint64, size, flags int) {
	e.v.DevPostSend(w, e.qp, e.immWQE(value, dst, dstOff, size, flags))
}

// DevPutCollective implements Endpoint.
func (e *ibEndpoint) DevPutCollective(w *gpusim.Warp, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int) {
	e.v.DevPostSendCollective(w, e.qp, e.putWQE(src, srcOff, dst, dstOff, size, flags))
}

// DevGet implements Endpoint: an RDMA read completes into the send CQ
// when the response data has landed.
func (e *ibEndpoint) DevGet(w *gpusim.Warp, dst Region, dstOff uint64, src Region, srcOff uint64, size int) {
	e.v.DevPostSend(w, e.qp, e.getWQE(dst, dstOff, src, srcOff, size))
	//putget:allow boundedwait -- get is synchronous by definition: the RDMA-read CQE wait IS the operation; bounded gets go through DevTryComplete/DevWaitCompleteTimeout
	e.v.DevPollCQ(w, e.qp.SendCQ)
}

// DevFetchAdd implements Endpoint: the atomic's CQE arrives after the old
// value has landed in the scratch buffer, so the load below is ordered.
func (e *ibEndpoint) DevFetchAdd(w *gpusim.Warp, addend uint64, dst Region, dstOff uint64) uint64 {
	e.v.DevPostSend(w, e.qp, e.fetchAddWQE(addend, dst, dstOff))
	//putget:allow boundedwait -- fetch-add is synchronous by definition: the CQE orders the old value's landing in scratch
	e.v.DevPollCQ(w, e.qp.SendCQ)
	return w.LdGlobalU64(e.scratch)
}

// DevTryComplete implements Endpoint.
func (e *ibEndpoint) DevTryComplete(w *gpusim.Warp, c CompClass) (Completion, bool) {
	cqe, ok := e.v.DevTryPollCQ(w, e.cq(c))
	return cqeCompletion(cqe), ok
}

// DevWaitComplete implements Endpoint.
func (e *ibEndpoint) DevWaitComplete(w *gpusim.Warp, c CompClass) Completion {
	return cqeCompletion(e.v.DevPollCQ(w, e.cq(c)))
}

// DevWaitCompleteTimeout implements Endpoint.
func (e *ibEndpoint) DevWaitCompleteTimeout(w *gpusim.Warp, c CompClass, timeout sim.Duration) (Completion, bool) {
	cqe, ok := e.v.DevPollCQTimeout(w, e.cq(c), timeout)
	return cqeCompletion(cqe), ok
}

// HostPut implements Endpoint.
func (e *ibEndpoint) HostPut(p *sim.Proc, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int) {
	e.v.HostPostSend(p, e.qp, e.putWQE(src, srcOff, dst, dstOff, size, flags))
}

// HostPutImm implements Endpoint.
func (e *ibEndpoint) HostPutImm(p *sim.Proc, value uint64, dst Region, dstOff uint64, size, flags int) {
	e.v.HostPostSend(p, e.qp, e.immWQE(value, dst, dstOff, size, flags))
}

// HostGet implements Endpoint.
func (e *ibEndpoint) HostGet(p *sim.Proc, dst Region, dstOff uint64, src Region, srcOff uint64, size int) {
	e.v.HostPostSend(p, e.qp, e.getWQE(dst, dstOff, src, srcOff, size))
	//putget:allow boundedwait -- get is synchronous by definition: the RDMA-read CQE wait IS the operation
	e.v.HostPollCQ(p, e.qp.SendCQ)
}

// HostFetchAdd implements Endpoint.
func (e *ibEndpoint) HostFetchAdd(p *sim.Proc, addend uint64, dst Region, dstOff uint64) uint64 {
	e.v.HostPostSend(p, e.qp, e.fetchAddWQE(addend, dst, dstOff))
	//putget:allow boundedwait -- fetch-add is synchronous by definition: the CQE orders the old value's landing in scratch
	e.v.HostPollCQ(p, e.qp.SendCQ)
	return e.node.CPU.ReadU64(p, e.scratch)
}

// HostTryComplete implements Endpoint.
func (e *ibEndpoint) HostTryComplete(p *sim.Proc, c CompClass) (Completion, bool) {
	cqe, ok := e.v.HostTryPollCQ(p, e.cq(c))
	return cqeCompletion(cqe), ok
}

// HostWaitComplete implements Endpoint.
func (e *ibEndpoint) HostWaitComplete(p *sim.Proc, c CompClass) Completion {
	return cqeCompletion(e.v.HostPollCQ(p, e.cq(c)))
}

// HostWaitCompleteTimeout implements Endpoint.
func (e *ibEndpoint) HostWaitCompleteTimeout(p *sim.Proc, c CompClass, timeout sim.Duration) (Completion, bool) {
	cqe, ok := e.v.HostPollCQTimeout(p, e.cq(c), timeout)
	return cqeCompletion(cqe), ok
}

// HostPrepostArrivals implements Endpoint: one receive WQE per expected
// write-with-immediate.
func (e *ibEndpoint) HostPrepostArrivals(p *sim.Proc, n int) {
	for i := 0; i < n; i++ {
		e.v.HostPostRecv(p, e.qp, ibsim.RecvWQE{WRID: e.rxSeq})
		e.rxSeq++
	}
}
