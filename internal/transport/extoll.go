package transport

import (
	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// Extoll adapts core.RMA to the Transport/Endpoint interfaces. Every
// method is pure delegation: the RMA layer charges the exact WR-creation,
// MMIO and notification-consume costs of the paper's EXTOLL model, so a
// benchmark running over this adapter is cycle-identical to one written
// against core.RMA directly.
type Extoll struct {
	tb     *cluster.Testbed
	ra, rb *core.RMA
}

// NewExtoll builds the EXTOLL adapter over a testbed from
// cluster.NewExtollPair.
func NewExtoll(tb *cluster.Testbed) *Extoll {
	return &Extoll{tb: tb, ra: core.NewRMA(tb.A), rb: core.NewRMA(tb.B)}
}

// Kind implements Transport.
func (t *Extoll) Kind() Kind { return KindExtoll }

// Testbed implements Transport.
func (t *Extoll) Testbed() *cluster.Testbed { return t.tb }

// RMA exposes the underlying per-node RMA binding (side 0 = node A) for
// cost-model experiments that need the raw EXTOLL API.
func (t *Extoll) RMA(side int) *core.RMA {
	if side == 0 {
		return t.ra
	}
	return t.rb
}

func (t *Extoll) rma(n *cluster.Node) *core.RMA {
	switch n {
	case t.tb.A:
		return t.ra
	case t.tb.B:
		return t.rb
	}
	panic("transport: node not part of this testbed")
}

// Register implements Transport: the window enters node n's address
// translation unit and becomes remotely addressable.
func (t *Extoll) Register(n *cluster.Node, base memspace.Addr, size uint64) Region {
	return Region{Base: base, Size: size, kind: KindExtoll, nla: t.rma(n).Register(base, size)}
}

// Connect implements Transport: port idx is opened on both NICs and
// cabled together. EXTOLL has no per-connection rings to size, so the
// hint only matters for its Atomics field (a no-op here — EXTOLL
// fetch-add needs no landing buffer; the old value returns in the
// responder notification).
func (t *Extoll) Connect(idx int, hint ConnHint) (Endpoint, Endpoint) {
	t.ra.OpenPort(idx)
	t.rb.OpenPort(idx)
	extoll.ConnectPorts(t.tb.A.Extoll, idx, t.tb.B.Extoll, idx)
	return &extEndpoint{r: t.ra, node: t.tb.A, port: idx},
		&extEndpoint{r: t.rb, node: t.tb.B, port: idx}
}

// extEndpoint is one side of an EXTOLL port connection.
type extEndpoint struct {
	r    *core.RMA
	node *cluster.Node
	port int
}

func extFlags(flags int) int {
	f := 0
	if flags&FlagLocalComp != 0 {
		f |= extoll.FlagReqNotif
	}
	if flags&FlagRemoteComp != 0 {
		f |= extoll.FlagCompNotif
	}
	return f
}

func extClass(c CompClass) int {
	if c == CompLocal {
		return extoll.ClassRequester
	}
	return extoll.ClassCompleter
}

// Node implements Endpoint.
func (e *extEndpoint) Node() *cluster.Node { return e.node }

// DevPut implements Endpoint.
func (e *extEndpoint) DevPut(w *gpusim.Warp, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int) {
	e.r.DevPut(w, e.port, src.nla+extoll.NLA(srcOff), dst.nla+extoll.NLA(dstOff), size, extFlags(flags))
}

// DevPutImm implements Endpoint.
func (e *extEndpoint) DevPutImm(w *gpusim.Warp, value uint64, dst Region, dstOff uint64, size, flags int) {
	e.r.DevPutImm(w, e.port, value, dst.nla+extoll.NLA(dstOff), size, extFlags(flags))
}

// DevPutCollective implements Endpoint.
func (e *extEndpoint) DevPutCollective(w *gpusim.Warp, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int) {
	e.r.DevPutCollective(w, e.port, src.nla+extoll.NLA(srcOff), dst.nla+extoll.NLA(dstOff), size, extFlags(flags))
}

// DevGet implements Endpoint: the get requests a completer notification
// (EXTOLL raises it at the requesting NIC when the response data lands)
// and consumes it before returning.
func (e *extEndpoint) DevGet(w *gpusim.Warp, dst Region, dstOff uint64, src Region, srcOff uint64, size int) {
	e.r.DevGet(w, e.port, src.nla+extoll.NLA(srcOff), dst.nla+extoll.NLA(dstOff), size, extoll.FlagCompNotif)
	//putget:allow boundedwait -- get is synchronous by definition: the wait for the response IS the operation; bounded gets go through DevTryComplete/DevWaitCompleteTimeout
	e.r.DevWaitNotif(w, e.port, extoll.ClassCompleter)
}

// DevFetchAdd implements Endpoint: the old value travels back in the
// responder's completer notification cookie.
func (e *extEndpoint) DevFetchAdd(w *gpusim.Warp, addend uint64, dst Region, dstOff uint64) uint64 {
	e.r.DevFetchAdd(w, e.port, addend, dst.nla+extoll.NLA(dstOff))
	//putget:allow boundedwait -- fetch-add is synchronous by definition: its return value arrives in the completer notification it waits on
	_, old := e.r.DevWaitNotifValue(w, e.port, extoll.ClassCompleter)
	return old
}

// DevTryComplete implements Endpoint.
func (e *extEndpoint) DevTryComplete(w *gpusim.Warp, c CompClass) (Completion, bool) {
	size, ok := e.r.DevTryConsumeNotif(w, e.port, extClass(c))
	return Completion{Size: size}, ok
}

// DevWaitComplete implements Endpoint.
func (e *extEndpoint) DevWaitComplete(w *gpusim.Warp, c CompClass) Completion {
	return Completion{Size: e.r.DevWaitNotif(w, e.port, extClass(c))}
}

// DevWaitCompleteTimeout implements Endpoint.
func (e *extEndpoint) DevWaitCompleteTimeout(w *gpusim.Warp, c CompClass, timeout sim.Duration) (Completion, bool) {
	nr, ok := e.r.DevWaitNotifTimeout(w, e.port, extClass(c), timeout)
	return Completion{Size: nr.Size, Err: nr.Err, Timeout: nr.Timeout}, ok
}

// HostPut implements Endpoint.
func (e *extEndpoint) HostPut(p *sim.Proc, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int) {
	e.r.HostPut(p, e.port, src.nla+extoll.NLA(srcOff), dst.nla+extoll.NLA(dstOff), size, extFlags(flags))
}

// HostPutImm implements Endpoint.
func (e *extEndpoint) HostPutImm(p *sim.Proc, value uint64, dst Region, dstOff uint64, size, flags int) {
	e.r.HostPutImm(p, e.port, value, dst.nla+extoll.NLA(dstOff), size, extFlags(flags))
}

// HostGet implements Endpoint.
func (e *extEndpoint) HostGet(p *sim.Proc, dst Region, dstOff uint64, src Region, srcOff uint64, size int) {
	e.r.HostGet(p, e.port, src.nla+extoll.NLA(srcOff), dst.nla+extoll.NLA(dstOff), size, extoll.FlagCompNotif)
	//putget:allow boundedwait -- get is synchronous by definition: the wait for the response IS the operation
	e.r.HostWaitNotif(p, e.port, extoll.ClassCompleter)
}

// HostFetchAdd implements Endpoint.
func (e *extEndpoint) HostFetchAdd(p *sim.Proc, addend uint64, dst Region, dstOff uint64) uint64 {
	return e.r.HostFetchAdd(p, e.port, addend, dst.nla+extoll.NLA(dstOff))
}

// HostTryComplete implements Endpoint.
func (e *extEndpoint) HostTryComplete(p *sim.Proc, c CompClass) (Completion, bool) {
	size, ok := e.r.HostTryConsumeNotif(p, e.port, extClass(c))
	return Completion{Size: size}, ok
}

// HostWaitComplete implements Endpoint.
func (e *extEndpoint) HostWaitComplete(p *sim.Proc, c CompClass) Completion {
	return Completion{Size: e.r.HostWaitNotif(p, e.port, extClass(c))}
}

// HostWaitCompleteTimeout implements Endpoint.
func (e *extEndpoint) HostWaitCompleteTimeout(p *sim.Proc, c CompClass, timeout sim.Duration) (Completion, bool) {
	nr, ok := e.r.HostWaitNotifTimeout(p, e.port, extClass(c), timeout)
	return Completion{Size: nr.Size, Err: nr.Err, Timeout: nr.Timeout}, ok
}

// HostPrepostArrivals implements Endpoint: EXTOLL completer notifications
// need no preposted descriptors.
func (e *extEndpoint) HostPrepostArrivals(p *sim.Proc, n int) {}
