package transport

import (
	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// Extoll adapts core.RMA to the Transport/Endpoint interfaces. Every
// method is pure delegation: the RMA layer charges the exact WR-creation,
// MMIO and notification-consume costs of the paper's EXTOLL model, so a
// benchmark running over this adapter is cycle-identical to one written
// against core.RMA directly.
type Extoll struct {
	tb *cluster.Testbed // pair testbeds; nil for clusters
	cl *cluster.Cluster // N-node clusters; nil for pairs
	// rmas binds one core.RMA per node, built eagerly for pairs and
	// lazily (first touch) for cluster nodes. Lookup-only map.
	rmas map[*cluster.Node]*core.RMA
	// nextPort allocates connection ports per node: unlike a pair, the
	// two ends of a cluster connection generally get different port
	// numbers (each node numbers its own connections independently).
	nextPort map[*cluster.Node]int
	nextIdx  int // pair ConnectPair port counter
}

// NewExtoll builds the EXTOLL adapter over a testbed from
// cluster.NewExtollPair.
func NewExtoll(tb *cluster.Testbed) *Extoll {
	return &Extoll{
		tb:       tb,
		rmas:     map[*cluster.Node]*core.RMA{tb.A: core.NewRMA(tb.A), tb.B: core.NewRMA(tb.B)},
		nextPort: map[*cluster.Node]int{},
	}
}

// NewExtollCluster builds the EXTOLL adapter over an N-node cluster
// from cluster.NewClusterOn(cluster.FabricExtoll, ...).
func NewExtollCluster(cl *cluster.Cluster) *Extoll {
	return &Extoll{
		cl:       cl,
		rmas:     map[*cluster.Node]*core.RMA{},
		nextPort: map[*cluster.Node]int{},
	}
}

// Kind implements Transport.
func (t *Extoll) Kind() Kind { return KindExtoll }

// Testbed implements Transport.
func (t *Extoll) Testbed() *cluster.Testbed { return t.tb }

// Cluster implements Transport.
func (t *Extoll) Cluster() *cluster.Cluster { return t.cl }

// RMA exposes the underlying per-node RMA binding (side 0 = node A) for
// cost-model experiments that need the raw EXTOLL API. Pair only.
func (t *Extoll) RMA(side int) *core.RMA {
	if side == 0 {
		return t.rma(t.tb.A)
	}
	return t.rma(t.tb.B)
}

func (t *Extoll) rma(n *cluster.Node) *core.RMA {
	if r := t.rmas[n]; r != nil {
		return r
	}
	if t.cl != nil {
		t.cl.IndexOf(n) // panics on foreign nodes
		r := core.NewRMA(n)
		t.rmas[n] = r
		return r
	}
	panic("transport: node not part of this testbed")
}

// Register implements Transport: the window enters node n's address
// translation unit and becomes remotely addressable.
func (t *Extoll) Register(n *cluster.Node, base memspace.Addr, size uint64) Region {
	return Region{Base: base, Size: size, kind: KindExtoll, nla: t.rma(n).Register(base, size)}
}

// Connect implements Transport: port idx is opened on both NICs and
// cabled together. EXTOLL has no per-connection rings to size, so the
// hint only matters for its Atomics field (a no-op here — EXTOLL
// fetch-add needs no landing buffer; the old value returns in the
// responder notification).
func (t *Extoll) Connect(idx int, hint ConnHint) (Endpoint, Endpoint) {
	if t.tb == nil {
		panic("transport: Connect is pair-only; use ConnectPair on a cluster")
	}
	ra, rb := t.rma(t.tb.A), t.rma(t.tb.B)
	ra.OpenPort(idx)
	rb.OpenPort(idx)
	extoll.ConnectPorts(t.tb.A.Extoll, idx, t.tb.B.Extoll, idx)
	return &extEndpoint{r: ra, node: t.tb.A, port: idx},
		&extEndpoint{r: rb, node: t.tb.B, port: idx}
}

// ConnectPair implements Transport: each node allocates its next free
// port, the ports are cross-connected (EXTOLL supports asymmetric port
// numbers), and on a cluster the topology routing tables learn that
// packets originating from each port reach the other node.
func (t *Extoll) ConnectPair(na, nb *cluster.Node, hint ConnHint) (Endpoint, Endpoint) {
	if na == nb {
		panic("transport: ConnectPair needs two distinct nodes")
	}
	if t.tb != nil {
		idx := t.nextIdx
		t.nextIdx++
		ea, eb := t.Connect(idx, hint)
		if na == t.tb.B { // argument order is preserved
			ea, eb = eb, ea
		}
		return ea, eb
	}
	ra, rb := t.rma(na), t.rma(nb)
	pa, pb := t.nextPort[na], t.nextPort[nb]
	t.nextPort[na] = pa + 1
	t.nextPort[nb] = pb + 1
	ra.OpenPort(pa)
	rb.OpenPort(pb)
	extoll.ConnectPorts(na.Extoll, pa, nb.Extoll, pb)
	t.cl.BindExtoll(na, pa, nb)
	t.cl.BindExtoll(nb, pb, na)
	return &extEndpoint{r: ra, node: na, port: pa},
		&extEndpoint{r: rb, node: nb, port: pb}
}

// extEndpoint is one side of an EXTOLL port connection.
type extEndpoint struct {
	r    *core.RMA
	node *cluster.Node
	port int
}

func extFlags(flags int) int {
	f := 0
	if flags&FlagLocalComp != 0 {
		f |= extoll.FlagReqNotif
	}
	if flags&FlagRemoteComp != 0 {
		f |= extoll.FlagCompNotif
	}
	return f
}

func extClass(c CompClass) int {
	if c == CompLocal {
		return extoll.ClassRequester
	}
	return extoll.ClassCompleter
}

// Node implements Endpoint.
func (e *extEndpoint) Node() *cluster.Node { return e.node }

// DevPut implements Endpoint.
func (e *extEndpoint) DevPut(w *gpusim.Warp, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int) {
	e.r.DevPut(w, e.port, src.nla+extoll.NLA(srcOff), dst.nla+extoll.NLA(dstOff), size, extFlags(flags))
}

// DevPutImm implements Endpoint.
func (e *extEndpoint) DevPutImm(w *gpusim.Warp, value uint64, dst Region, dstOff uint64, size, flags int) {
	e.r.DevPutImm(w, e.port, value, dst.nla+extoll.NLA(dstOff), size, extFlags(flags))
}

// DevPutCollective implements Endpoint.
func (e *extEndpoint) DevPutCollective(w *gpusim.Warp, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int) {
	e.r.DevPutCollective(w, e.port, src.nla+extoll.NLA(srcOff), dst.nla+extoll.NLA(dstOff), size, extFlags(flags))
}

// DevGet implements Endpoint: the get requests a completer notification
// (EXTOLL raises it at the requesting NIC when the response data lands)
// and consumes it before returning.
func (e *extEndpoint) DevGet(w *gpusim.Warp, dst Region, dstOff uint64, src Region, srcOff uint64, size int) {
	e.r.DevGet(w, e.port, src.nla+extoll.NLA(srcOff), dst.nla+extoll.NLA(dstOff), size, extoll.FlagCompNotif)
	//putget:allow boundedwait -- get is synchronous by definition: the wait for the response IS the operation; bounded gets go through DevTryComplete/DevWaitCompleteTimeout
	e.r.DevWaitNotif(w, e.port, extoll.ClassCompleter)
}

// DevFetchAdd implements Endpoint: the old value travels back in the
// responder's completer notification cookie.
func (e *extEndpoint) DevFetchAdd(w *gpusim.Warp, addend uint64, dst Region, dstOff uint64) uint64 {
	e.r.DevFetchAdd(w, e.port, addend, dst.nla+extoll.NLA(dstOff))
	//putget:allow boundedwait -- fetch-add is synchronous by definition: its return value arrives in the completer notification it waits on
	_, old := e.r.DevWaitNotifValue(w, e.port, extoll.ClassCompleter)
	return old
}

// DevTryComplete implements Endpoint.
func (e *extEndpoint) DevTryComplete(w *gpusim.Warp, c CompClass) (Completion, bool) {
	size, ok := e.r.DevTryConsumeNotif(w, e.port, extClass(c))
	return Completion{Size: size}, ok
}

// DevWaitComplete implements Endpoint.
func (e *extEndpoint) DevWaitComplete(w *gpusim.Warp, c CompClass) Completion {
	return Completion{Size: e.r.DevWaitNotif(w, e.port, extClass(c))}
}

// DevWaitCompleteTimeout implements Endpoint.
func (e *extEndpoint) DevWaitCompleteTimeout(w *gpusim.Warp, c CompClass, timeout sim.Duration) (Completion, bool) {
	nr, ok := e.r.DevWaitNotifTimeout(w, e.port, extClass(c), timeout)
	return Completion{Size: nr.Size, Err: nr.Err, Timeout: nr.Timeout}, ok
}

// HostPut implements Endpoint.
func (e *extEndpoint) HostPut(p *sim.Proc, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int) {
	e.r.HostPut(p, e.port, src.nla+extoll.NLA(srcOff), dst.nla+extoll.NLA(dstOff), size, extFlags(flags))
}

// HostPutImm implements Endpoint.
func (e *extEndpoint) HostPutImm(p *sim.Proc, value uint64, dst Region, dstOff uint64, size, flags int) {
	e.r.HostPutImm(p, e.port, value, dst.nla+extoll.NLA(dstOff), size, extFlags(flags))
}

// HostGet implements Endpoint.
func (e *extEndpoint) HostGet(p *sim.Proc, dst Region, dstOff uint64, src Region, srcOff uint64, size int) {
	e.r.HostGet(p, e.port, src.nla+extoll.NLA(srcOff), dst.nla+extoll.NLA(dstOff), size, extoll.FlagCompNotif)
	//putget:allow boundedwait -- get is synchronous by definition: the wait for the response IS the operation
	e.r.HostWaitNotif(p, e.port, extoll.ClassCompleter)
}

// HostFetchAdd implements Endpoint.
func (e *extEndpoint) HostFetchAdd(p *sim.Proc, addend uint64, dst Region, dstOff uint64) uint64 {
	return e.r.HostFetchAdd(p, e.port, addend, dst.nla+extoll.NLA(dstOff))
}

// HostTryComplete implements Endpoint.
func (e *extEndpoint) HostTryComplete(p *sim.Proc, c CompClass) (Completion, bool) {
	size, ok := e.r.HostTryConsumeNotif(p, e.port, extClass(c))
	return Completion{Size: size}, ok
}

// HostWaitComplete implements Endpoint.
func (e *extEndpoint) HostWaitComplete(p *sim.Proc, c CompClass) Completion {
	return Completion{Size: e.r.HostWaitNotif(p, e.port, extClass(c))}
}

// HostWaitCompleteTimeout implements Endpoint.
func (e *extEndpoint) HostWaitCompleteTimeout(p *sim.Proc, c CompClass, timeout sim.Duration) (Completion, bool) {
	nr, ok := e.r.HostWaitNotifTimeout(p, e.port, extClass(c), timeout)
	return Completion{Size: nr.Size, Err: nr.Err, Timeout: nr.Timeout}, ok
}

// HostPrepostArrivals implements Endpoint: EXTOLL completer notifications
// need no preposted descriptors.
func (e *extEndpoint) HostPrepostArrivals(p *sim.Proc, n int) {}
