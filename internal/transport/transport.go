// Package transport is the fabric-agnostic put/get layer: one Endpoint
// data-plane API implemented over both of the paper's fabrics (EXTOLL RMA
// and InfiniBand Verbs). The paper's point is that the two are the same
// one-sided put/get idea behind different descriptor formats; this package
// is that observation as an interface. The adapters are pure delegation —
// every virtual-time cost (GPU instructions, PCIe transactions, NIC
// pipeline stages) is charged by the underlying core API, so a benchmark
// ported to Endpoint reproduces its fabric's numbers exactly.
//
// Setup plane: a Transport registers memory Regions and connects Endpoint
// pairs (EXTOLL ports, IB queue pairs). Data plane: an Endpoint puts,
// gets and fetch-adds between Regions, and reaps Completions — local
// ("my descriptor finished", EXTOLL requester notification / IB send CQE)
// or remote ("data arrived here", EXTOLL completer notification / IB recv
// CQE consumed by a write-with-immediate). A third backend plugs in by
// implementing the two interfaces; see DESIGN.md.
package transport

import (
	"putget/internal/cluster"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// Kind names a fabric backend.
type Kind int

// Supported fabrics.
const (
	KindExtoll Kind = iota
	KindIB
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindExtoll {
		return "EXTOLL"
	}
	return "InfiniBand"
}

// Completion flags for put operations. A put with no flags is fire-and-
// forget: no completion is generated anywhere.
const (
	// FlagLocalComp requests a local completion at the origin when the
	// operation is done (EXTOLL requester notification / IB signaled CQE).
	FlagLocalComp = 1 << iota
	// FlagRemoteComp requests a completion at the destination when the
	// data lands (EXTOLL completer notification / IB write-with-immediate,
	// which consumes a preposted arrival slot — see HostPrepostArrivals).
	FlagRemoteComp
)

// CompClass selects which completion stream to reap.
type CompClass int

const (
	// CompLocal reaps origin-side completions of this endpoint's own
	// operations.
	CompLocal CompClass = iota
	// CompRemote reaps arrival-side completions for data landed at this
	// endpoint.
	CompRemote
)

// Completion is one reaped completion event.
type Completion struct {
	// Size is the payload byte count the fabric reported (0 where the
	// fabric does not carry one).
	Size int
	// Value is the operation's sequence value when the fabric carries one
	// (IB immediate); the paper's EXTOLL notifications carry no sequence.
	Value uint64
	// Err reports a failed operation (protection fault, retry exhaustion,
	// requester timeout).
	Err bool
	// Timeout reports that the failure was specifically a lost network
	// response (EXTOLL requester timeout, IB retry/RNR exhaustion).
	Timeout bool
}

// ConnHint tunes one Connect call. The zero value picks each fabric's
// defaults; EXTOLL ignores the ring sizes (its notification rings are
// driver-allocated per port).
type ConnHint struct {
	// SendEntries/RecvEntries/CompEntries size the IB work and completion
	// rings (defaults 512/64/512).
	SendEntries, RecvEntries, CompEntries int
	// QueuesOnGPU places the IB rings in GPU device memory instead of
	// host memory (the paper's dev2dev-bufOnGPU placement).
	QueuesOnGPU bool
	// Atomics provisions fetch-add support: the IB adapter allocates and
	// registers a small device-memory landing buffer per endpoint for the
	// returned old value. Off by default so connections that never
	// fetch-add keep an identical allocation layout.
	Atomics bool
}

// Region is registered memory a put/get can address: a window the fabric
// can reach remotely (EXTOLL network logical address / IB memory region
// keys).
type Region struct {
	// Base and Size locate the window in the owning node's address space.
	Base memspace.Addr
	Size uint64

	kind Kind
	nla  extoll.NLA
	mr   *ibsim.MR
}

// NLA exposes the EXTOLL network logical address of the region — an
// escape hatch for cost-model experiments that build raw work requests.
func (r Region) NLA() extoll.NLA {
	if r.kind != KindExtoll || r.mr != nil {
		panic("transport: NLA on non-EXTOLL region")
	}
	return r.nla
}

// MR exposes the InfiniBand memory region, for experiments that build raw
// WQEs.
func (r Region) MR() *ibsim.MR {
	if r.mr == nil {
		panic("transport: MR on non-InfiniBand region")
	}
	return r.mr
}

// Transport is the setup plane: build Regions and connected Endpoint
// pairs over a two-node testbed or an N-node cluster.
type Transport interface {
	// Kind names the backend.
	Kind() Kind
	// Testbed returns the two-node testbed this transport drives, or nil
	// when it drives an N-node cluster.
	Testbed() *cluster.Testbed
	// Cluster returns the N-node cluster this transport drives, or nil
	// when it drives a pair testbed.
	Cluster() *cluster.Cluster
	// Register makes [base, base+size) of node n's memory remotely
	// addressable.
	Register(n *cluster.Node, base memspace.Addr, size uint64) Region
	// Connect opens connection idx between a pair testbed's two nodes and
	// returns the endpoint pair (a on node A, b on node B). idx selects
	// the EXTOLL port; IB allocates a fresh queue pair per call. Calls
	// must use distinct idx values. Pair testbeds only.
	Connect(idx int, hint ConnHint) (a, b Endpoint)
	// ConnectPair opens a connection between any two distinct nodes and
	// returns the endpoint pair in argument order. Connection identities
	// (EXTOLL ports, IB queue pairs) are allocated per node, and on a
	// cluster the topology's routing tables are bound so each side's
	// packets reach the other. Works on both pair testbeds and clusters;
	// on pair testbeds do not mix with explicitly-indexed Connect calls.
	ConnectPair(a, b *cluster.Node, hint ConnHint) (ea, eb Endpoint)
}

// Endpoint is the data plane: one side of a connection. Dev* methods run
// on a GPU warp and charge GPU instruction + PCIe costs; Host* mirrors run
// on a CPU proc. Operations name memory as (Region, offset) pairs — src
// local to this endpoint's node, dst on the peer (and vice versa for
// gets).
//
// Completion semantics: an operation posted with FlagLocalComp must be
// reaped exactly once from CompLocal; one posted with FlagRemoteComp is
// reaped at the peer from CompRemote. DevGet/HostGet and the fetch-adds
// are synchronous — they return when the data (or old value) has landed —
// and consume their own completions.
type Endpoint interface {
	// Node returns the node this endpoint lives on.
	Node() *cluster.Node

	DevPut(w *gpusim.Warp, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int)
	// DevPutImm writes size (≤ 8) bytes of an immediate value carried in
	// the descriptor itself — no source buffer, no payload DMA.
	DevPutImm(w *gpusim.Warp, value uint64, dst Region, dstOff uint64, size, flags int)
	// DevPutCollective is DevPut with the descriptor write spread across
	// the lanes of the calling warp (the paper's §VI thread-collaborative
	// posting).
	DevPutCollective(w *gpusim.Warp, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int)
	// DevGet reads size bytes from the peer's src region into the local
	// dst region and returns once the data has landed locally.
	DevGet(w *gpusim.Warp, dst Region, dstOff uint64, src Region, srcOff uint64, size int)
	// DevFetchAdd atomically adds addend to the 8-byte word at the peer's
	// dst and returns the pre-add value. Requires ConnHint.Atomics on IB.
	DevFetchAdd(w *gpusim.Warp, addend uint64, dst Region, dstOff uint64) uint64
	DevTryComplete(w *gpusim.Warp, c CompClass) (Completion, bool)
	DevWaitComplete(w *gpusim.Warp, c CompClass) Completion
	DevWaitCompleteTimeout(w *gpusim.Warp, c CompClass, timeout sim.Duration) (Completion, bool)

	HostPut(p *sim.Proc, src Region, srcOff uint64, dst Region, dstOff uint64, size, flags int)
	HostPutImm(p *sim.Proc, value uint64, dst Region, dstOff uint64, size, flags int)
	HostGet(p *sim.Proc, dst Region, dstOff uint64, src Region, srcOff uint64, size int)
	HostFetchAdd(p *sim.Proc, addend uint64, dst Region, dstOff uint64) uint64
	HostTryComplete(p *sim.Proc, c CompClass) (Completion, bool)
	HostWaitComplete(p *sim.Proc, c CompClass) Completion
	HostWaitCompleteTimeout(p *sim.Proc, c CompClass, timeout sim.Duration) (Completion, bool)

	// HostPrepostArrivals makes the endpoint ready to reap n remote-
	// completion puts from the peer. IB posts n receive WQEs (a
	// write-with-immediate consumes one); EXTOLL completer notifications
	// need no preposting, so it is a no-op there.
	HostPrepostArrivals(p *sim.Proc, n int)
}

// New builds the adapter for a fabric kind over a testbed created with
// the matching cluster constructor.
func New(k Kind, tb *cluster.Testbed) Transport {
	if k == KindExtoll {
		return NewExtoll(tb)
	}
	return NewVerbs(tb)
}

// NewCluster builds the adapter for a fabric kind over an N-node
// cluster built with the matching cluster.NewClusterOn fabric.
func NewCluster(k Kind, cl *cluster.Cluster) Transport {
	if k == KindExtoll {
		return NewExtollCluster(cl)
	}
	return NewVerbsCluster(cl)
}
