// Package shmem is a small OpenSHMEM-flavoured GPU communication library
// built on the put/get APIs — a working sketch of the "future GPU
// communication libraries" the paper's conclusion calls for, designed
// around its §VI claims:
//
//   - claim 1 (small footprint): per-PE state is a few words of device
//     memory — a barrier flag and a couple of counters;
//   - claim 2 (thread-collaborative interface): operations are callable
//     from device code; descriptor writes can use the warp-collective path;
//   - claim 3 (minimal PCIe control traffic): all completion detection
//     polls device memory (pollOnGPU) or uses immediate puts; the
//     system-memory notification rings are touched only by Quiet.
//
// The library spans the repository's two-node testbed: two processing
// elements (PEs), one per GPU, over the EXTOLL fabric. Every data object
// lives in a symmetric heap at identical offsets on both PEs, so remote
// addresses are derived, never exchanged.
package shmem

import (
	"fmt"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/memspace"
)

// World is a two-PE SHMEM job over an EXTOLL testbed.
type World struct {
	TB  *cluster.Testbed
	PEs [2]*PE
}

// PE is one processing element: a GPU plus its communication state.
type PE struct {
	Rank int
	Node *cluster.Node
	RMA  *core.RMA

	heapBase memspace.Addr // symmetric heap in local device memory
	heapSize uint64
	heapBrk  uint64

	localNLA extoll.NLA // local heap registered at the local NIC
	peerNLA  extoll.NLA // peer heap registered at the peer NIC

	// internal symmetric objects (offsets into the heap)
	barrierOff  uint64 // arrival flag written by the peer
	barrierSeq  uint64 // software barrier epoch
	outstanding int    // puts not yet quiesced
}

// dataPort and syncPort separate bulk puts from barrier/atomic traffic so
// Quiet never consumes a synchronization notification.
const (
	dataPort = 0
	syncPort = 1
)

// NewWorld builds a two-PE world with the given symmetric heap size.
func NewWorld(p cluster.Params, heapSize uint64) *World {
	tb := cluster.NewExtollPair(p)
	w := &World{TB: tb}
	mk := func(rank int, node *cluster.Node) *PE {
		pe := &PE{Rank: rank, Node: node, RMA: core.NewRMA(node)}
		pe.heapBase = node.AllocDev(heapSize)
		pe.heapSize = heapSize
		return pe
	}
	w.PEs[0] = mk(0, tb.A)
	w.PEs[1] = mk(1, tb.B)
	for i, pe := range w.PEs {
		peer := w.PEs[1-i]
		pe.localNLA = pe.RMA.Register(pe.heapBase, heapSize)
		pe.peerNLA = peer.RMA.Register(peer.heapBase, heapSize)
		pe.RMA.OpenPort(dataPort)
		pe.RMA.OpenPort(syncPort)
	}
	extoll.ConnectPorts(tb.A.Extoll, dataPort, tb.B.Extoll, dataPort)
	extoll.ConnectPorts(tb.A.Extoll, syncPort, tb.B.Extoll, syncPort)
	// The barrier flag is the first symmetric allocation on every PE.
	for _, pe := range w.PEs {
		off := pe.alloc(8)
		pe.barrierOff = off
	}
	return w
}

// alloc carves n bytes (8-byte aligned) out of the symmetric heap. Both
// PEs must allocate in the same order (the SHMEM symmetric-heap rule).
func (pe *PE) alloc(n uint64) uint64 {
	off := (pe.heapBrk + 7) &^ 7
	pe.heapBrk = off + n
	if pe.heapBrk > pe.heapSize {
		panic("shmem: symmetric heap exhausted")
	}
	return off
}

// Shutdown terminates the world's parked simulation processes.
func (w *World) Shutdown() { w.TB.Shutdown() }

// Malloc allocates n bytes on every PE at the same symmetric offset.
func (w *World) Malloc(n uint64) uint64 {
	off := w.PEs[0].alloc(n)
	if got := w.PEs[1].alloc(n); got != off {
		panic(fmt.Sprintf("shmem: symmetric heaps diverged: %d vs %d", off, got))
	}
	return off
}

// Addr converts a symmetric offset to this PE's local device address.
func (pe *PE) Addr(off uint64) memspace.Addr {
	return pe.heapBase + memspace.Addr(off)
}

// HostWrite/HostRead are zero-time setup helpers.
func (pe *PE) HostWrite(off uint64, data []byte) error {
	return pe.Node.GPU.HostWrite(pe.Addr(off), data)
}

// HostRead copies out of the symmetric heap without charging time.
func (pe *PE) HostRead(off uint64, data []byte) error {
	return pe.Node.GPU.HostRead(pe.Addr(off), data)
}

// ---- device-side operations (called from GPU kernels) ----

// Put copies n bytes from the local symmetric offset src to the peer's
// symmetric offset dst. Completion is asynchronous; call Quiet to wait.
func (pe *PE) Put(w *gpusim.Warp, dst, src uint64, n int) {
	pe.RMA.DevPut(w, dataPort, pe.localNLA+extoll.NLA(src), pe.peerNLA+extoll.NLA(dst),
		n, extoll.FlagReqNotif)
	pe.outstanding++
}

// PutImm writes one 64-bit value to the peer's symmetric offset without
// any source DMA (claim 3's cheapest possible transfer).
func (pe *PE) PutImm(w *gpusim.Warp, dst uint64, value uint64) {
	pe.RMA.DevPutImm(w, dataPort, value, pe.peerNLA+extoll.NLA(dst), 8, extoll.FlagReqNotif)
	pe.outstanding++
}

// Get copies n bytes from the peer's symmetric offset src into the local
// offset dst and blocks until the data has arrived.
func (pe *PE) Get(w *gpusim.Warp, dst, src uint64, n int) {
	pe.RMA.DevGet(w, dataPort, pe.peerNLA+extoll.NLA(src), pe.localNLA+extoll.NLA(dst),
		n, extoll.FlagCompNotif)
	pe.RMA.DevWaitNotif(w, dataPort, extoll.ClassCompleter)
}

// Quiet blocks until every outstanding Put has left local memory (the
// EXTOLL requester notification — local completion, as shmem_quiet
// requires on a fabric with in-order delivery).
func (pe *PE) Quiet(w *gpusim.Warp) {
	for pe.outstanding > 0 {
		pe.RMA.DevWaitNotif(w, dataPort, extoll.ClassRequester)
		pe.outstanding--
	}
}

// Fence orders puts; with a single in-order connection it is Quiet.
func (pe *PE) Fence(w *gpusim.Warp) { pe.Quiet(w) }

// WaitUntil blocks until the local symmetric word at off equals want —
// device-memory polling, claim 3's preferred completion detection.
func (pe *PE) WaitUntil(w *gpusim.Warp, off uint64, want uint64) {
	w.PollGlobalU64(pe.Addr(off), want)
}

// Barrier synchronizes both PEs: each increments its epoch, writes it to
// the peer's barrier flag with an immediate put over the sync port, and
// polls its own flag in device memory until the peer's epoch arrives.
func (pe *PE) Barrier(w *gpusim.Warp) {
	pe.barrierSeq++
	pe.RMA.DevPutImm(w, syncPort, pe.barrierSeq,
		pe.peerNLA+extoll.NLA(pe.barrierOff), 8, extoll.FlagReqNotif)
	pe.RMA.DevWaitNotif(w, syncPort, extoll.ClassRequester)
	pe.WaitUntil(w, pe.barrierOff, pe.barrierSeq)
}

// FetchAdd atomically adds addend to the peer's symmetric 64-bit word at
// off and returns the previous value.
func (pe *PE) FetchAdd(w *gpusim.Warp, off uint64, addend uint64) uint64 {
	pe.RMA.DevFetchAdd(w, syncPort, addend, pe.peerNLA+extoll.NLA(off))
	_, old := pe.RMA.DevWaitNotifValue(w, syncPort, extoll.ClassCompleter)
	return old
}

// Run launches body as a single-block, full-warp kernel on every PE and
// returns when both complete; it panics on deadlock. This is the SPMD
// entry point — body runs with 32 lanes, so coalesced sweeps and the
// thread-collective descriptor paths are available.
func (w *World) Run(body func(pe *PE, warp *gpusim.Warp)) {
	dones := make([]interface{ Done() bool }, 2)
	for i, pe := range w.PEs {
		pe := pe
		dones[i] = pe.Node.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: 32}, func(warp *gpusim.Warp) {
			body(pe, warp)
		})
	}
	w.TB.E.Run()
	for i, d := range dones {
		if !d.Done() {
			panic(fmt.Sprintf("shmem: PE %d did not complete (deadlock?)", i))
		}
	}
}
