// Package shmem is a small OpenSHMEM-flavoured GPU communication library
// built on the put/get APIs — a working sketch of the "future GPU
// communication libraries" the paper's conclusion calls for, designed
// around its §VI claims:
//
//   - claim 1 (small footprint): per-PE state is a few words of device
//     memory — a barrier flag and a couple of counters;
//   - claim 2 (thread-collaborative interface): operations are callable
//     from device code; descriptor writes can use the warp-collective path;
//   - claim 3 (minimal PCIe control traffic): all completion detection
//     polls device memory (pollOnGPU) or uses immediate puts; the
//     fabric's completion streams are touched only by Quiet.
//
// The library spans either of the repository's testbeds: a two-node pair
// (NewWorld/NewWorldOn — one PE per GPU over a single cable) or an N-node
// switched cluster (NewWorldN — one PE per node of a fat-tree or 3D-torus
// topo.Net). It is written against the transport.Endpoint abstraction, so
// the same code runs SHMEM over EXTOLL RMA or over InfiniBand Verbs.
// Every data object lives in a symmetric heap at identical offsets on all
// PEs, so remote addresses are derived, never exchanged.
//
// N-rank worlds are a thin wrapper over a root Team (team.go): every
// rank subset — split halves, strided grids, a shrunk team routing
// around a dead node — is a Team, and all collectives (collectives.go)
// are planned against a team. State is built lazily end to end: cluster
// nodes materialize on first touch, PEs on first use, and each team's
// connection graph and barrier flags on first plan, so a 1024-node
// world whose job spans 64 ranks pays for 64.
package shmem

import (
	"fmt"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/memspace"
	"putget/internal/sim"
	"putget/internal/transport"
)

// World is a SHMEM job: N PEs over a testbed. Pair worlds (NewWorld,
// NewWorldOn) have two PEs joined by a cable and a nil CL; N-rank worlds
// (NewWorldN) have one PE per cluster node and a nil TB.
type World struct {
	TB        *cluster.Testbed // pair worlds; nil for N-rank worlds
	CL        *cluster.Cluster // N-rank worlds; nil for pair worlds
	Transport transport.Transport

	n   int
	pes []*PE // lazily built for N-rank worlds; eager for pairs

	// Symmetric-heap bookkeeping. The bump pointer lives on the World —
	// allocation order is global, so offsets are symmetric by
	// construction and a PE built late (lazily) inherits the same layout.
	heapSize uint64
	heapBrk  uint64

	// N-rank state: every PE's registered heap (indexed by rank), the
	// set of established connections, and the root team.
	regions []transport.Region
	conns   map[[2]int]bool
	root    *Team
}

// PE is one processing element: a GPU plus its communication state.
type PE struct {
	Rank int
	N    int // world size
	Node *cluster.Node

	world *World

	heapBase memspace.Addr // symmetric heap in local device memory

	local transport.Region // local heap, registered with the fabric
	peer  transport.Region // peer heap, as a remote put/get target (pair)

	data transport.Endpoint // bulk puts and gets (pair)
	sync transport.Endpoint // barrier immediates and atomics (pair)

	// N-rank state: one endpoint per connected peer (nil until
	// World.Connect) and the per-peer outstanding-put counters.
	dataTo []transport.Endpoint
	outTo  []int

	// internal symmetric objects (offsets into the heap)
	barrierOff  uint64 // arrival flag written by the peer (pair)
	barrierSeq  uint64 // software barrier epoch (pair)
	outstanding int    // puts not yet quiesced (pair)
}

// dataConn and syncConn separate bulk puts from barrier/atomic traffic so
// Quiet never consumes a synchronization completion. On EXTOLL they map to
// two RMA ports; on InfiniBand to two queue pairs.
const (
	dataConn = 0
	syncConn = 1
)

// NewWorld builds a two-PE world over the EXTOLL fabric (the paper's
// primary testbed) with the given symmetric heap size.
func NewWorld(p cluster.Params, heapSize uint64) *World {
	return NewWorldOn(transport.KindExtoll, p, heapSize)
}

// NewWorldOn builds a two-PE world over the chosen fabric. The library
// code above the transport layer is identical for both; only descriptor
// formats and completion mechanisms differ underneath.
func NewWorldOn(k transport.Kind, p cluster.Params, heapSize uint64) *World {
	var tb *cluster.Testbed
	if k == transport.KindExtoll {
		tb = cluster.NewExtollPair(p)
	} else {
		tb = cluster.NewIBPair(p)
	}
	tr := transport.New(k, tb)
	w := &World{TB: tb, Transport: tr, n: 2, heapSize: heapSize, conns: map[[2]int]bool{}}
	mk := func(rank int, node *cluster.Node) *PE {
		pe := &PE{Rank: rank, N: 2, Node: node, world: w}
		pe.heapBase = node.AllocDev(heapSize)
		return pe
	}
	w.pes = []*PE{mk(0, tb.A), mk(1, tb.B)}
	regs := [2]transport.Region{
		tr.Register(tb.A, w.pes[0].heapBase, heapSize),
		tr.Register(tb.B, w.pes[1].heapBase, heapSize),
	}
	for i, pe := range w.pes {
		pe.local = regs[i]
		pe.peer = regs[1-i]
	}
	// On InfiniBand the queues live in GPU device memory (the paper's
	// bufOnGPU placement — claim 3's minimal-PCIe completion detection)
	// and the sync connection provisions the fetch-add landing buffer.
	hint := transport.ConnHint{QueuesOnGPU: k == transport.KindIB}
	syncHint := hint
	syncHint.Atomics = true
	w.pes[0].data, w.pes[1].data = tr.Connect(dataConn, hint)
	w.pes[0].sync, w.pes[1].sync = tr.Connect(syncConn, syncHint)
	// The barrier flag is the first symmetric allocation on every PE.
	off := w.Malloc(8)
	for _, pe := range w.pes {
		pe.barrierOff = off
	}
	return w
}

// N returns the world size in ranks.
func (w *World) N() int { return w.n }

// PE returns rank r's processing element. On an N-rank world the PE —
// and the cluster node underneath it — is materialized on first touch:
// the node's CPU/GPU/NIC are built, the symmetric heap is carved out of
// device memory and registered with the fabric. Ranks a job never
// touches are never built.
func (w *World) PE(r int) *PE {
	if r < 0 || r >= w.n {
		panic(fmt.Sprintf("shmem: rank %d out of range (world size %d)", r, w.n))
	}
	if pe := w.pes[r]; pe != nil {
		return pe
	}
	nd := w.CL.Node(r)
	pe := &PE{Rank: r, N: w.n, Node: nd, world: w}
	// The heap is the node's first device allocation, so heapBase — and
	// with it every symmetric offset — is identical on every rank no
	// matter when the rank is materialized.
	pe.heapBase = nd.AllocDev(w.heapSize)
	pe.dataTo = make([]transport.Endpoint, w.n)
	pe.outTo = make([]int, w.n)
	w.pes[r] = pe
	w.regions[r] = w.Transport.Register(nd, pe.heapBase, w.heapSize)
	pe.local = w.regions[r]
	return pe
}

// Shutdown terminates the world's parked simulation processes.
func (w *World) Shutdown() {
	if w.TB != nil {
		w.TB.Shutdown()
		return
	}
	w.CL.Shutdown()
}

func (w *World) engine() *sim.Engine {
	if w.TB != nil {
		return w.TB.E
	}
	return w.CL.E
}

// Malloc allocates n bytes (8-byte aligned) at the same symmetric offset
// on every PE. The bump pointer is world state, so heaps cannot diverge
// per rank and lazily-built PEs see the same layout as eager ones.
func (w *World) Malloc(n uint64) uint64 {
	off := (w.heapBrk + 7) &^ 7
	w.heapBrk = off + n
	if w.heapBrk > w.heapSize {
		panic(fmt.Sprintf("shmem: symmetric heap exhausted (%d of %d bytes used)", w.heapBrk, w.heapSize))
	}
	return off
}

// Addr converts a symmetric offset to this PE's local device address.
func (pe *PE) Addr(off uint64) memspace.Addr {
	return pe.heapBase + memspace.Addr(off)
}

// HostWrite/HostRead are zero-time setup helpers.
func (pe *PE) HostWrite(off uint64, data []byte) error {
	return pe.Node.GPU.HostWrite(pe.Addr(off), data)
}

// HostRead copies out of the symmetric heap without charging time.
func (pe *PE) HostRead(off uint64, data []byte) error {
	return pe.Node.GPU.HostRead(pe.Addr(off), data)
}

// ---- device-side operations (called from GPU kernels) ----

// Put copies n bytes from the local symmetric offset src to the peer's
// symmetric offset dst. Completion is asynchronous; call Quiet to wait.
func (pe *PE) Put(w *gpusim.Warp, dst, src uint64, n int) {
	pe.data.DevPut(w, pe.local, src, pe.peer, dst, n, transport.FlagLocalComp)
	pe.outstanding++
}

// PutImm writes one 64-bit value to the peer's symmetric offset without
// any source DMA (claim 3's cheapest possible transfer).
func (pe *PE) PutImm(w *gpusim.Warp, dst uint64, value uint64) {
	pe.data.DevPutImm(w, value, pe.peer, dst, 8, transport.FlagLocalComp)
	pe.outstanding++
}

// Get copies n bytes from the peer's symmetric offset src into the local
// offset dst and blocks until the data has arrived.
func (pe *PE) Get(w *gpusim.Warp, dst, src uint64, n int) {
	pe.data.DevGet(w, pe.local, dst, pe.peer, src, n)
}

// Quiet blocks until every outstanding Put has completed locally (the
// EXTOLL requester notification / IB send CQE — local completion, as
// shmem_quiet requires on a fabric with in-order delivery).
func (pe *PE) Quiet(w *gpusim.Warp) {
	for pe.outstanding > 0 {
		//putget:allow boundedwait -- shmem_quiet is unbounded by the OpenSHMEM spec: it waits on exactly the puts this PE issued, each of which the reliable fabric completes
		pe.data.DevWaitComplete(w, transport.CompLocal)
		pe.outstanding--
	}
}

// Fence orders puts; with a single in-order connection it is Quiet.
func (pe *PE) Fence(w *gpusim.Warp) { pe.Quiet(w) }

// WaitUntil blocks until the local symmetric word at off equals want —
// device-memory polling, claim 3's preferred completion detection.
func (pe *PE) WaitUntil(w *gpusim.Warp, off uint64, want uint64) {
	w.PollGlobalU64(pe.Addr(off), want)
}

// Barrier synchronizes both PEs: each increments its epoch, writes it to
// the peer's barrier flag with an immediate put over the sync connection,
// and polls its own flag in device memory until the peer's epoch arrives.
func (pe *PE) Barrier(w *gpusim.Warp) {
	pe.barrierSeq++
	pe.sync.DevPutImm(w, pe.barrierSeq, pe.peer, pe.barrierOff, 8, transport.FlagLocalComp)
	//putget:allow boundedwait -- shmem_barrier_all is unbounded by the OpenSHMEM spec: it reaps this PE's own flag put before polling the peer's epoch
	pe.sync.DevWaitComplete(w, transport.CompLocal)
	pe.WaitUntil(w, pe.barrierOff, pe.barrierSeq)
}

// FetchAdd atomically adds addend to the peer's symmetric 64-bit word at
// off and returns the previous value.
func (pe *PE) FetchAdd(w *gpusim.Warp, off uint64, addend uint64) uint64 {
	return pe.sync.DevFetchAdd(w, addend, pe.peer, off)
}

// Run launches body as a single-block, full-warp kernel on every PE and
// returns when all complete; it panics on deadlock. This is the SPMD
// entry point — body runs with 32 lanes, so coalesced sweeps and the
// thread-collective descriptor paths are available. On an N-rank world
// this is the root team's Run: it materializes every rank; jobs that
// span a subset should Run their Team instead.
func (w *World) Run(body func(pe *PE, warp *gpusim.Warp)) {
	if w.TB != nil {
		w.launch(w.pes, body)
		return
	}
	w.Root().Run(body)
}

// launch starts body on each given PE and drives the engine until all
// kernels complete; shared by pair Run and Team.Run.
func (w *World) launch(pes []*PE, body func(pe *PE, warp *gpusim.Warp)) {
	dones := make([]interface{ Done() bool }, len(pes))
	for i, pe := range pes {
		pe := pe
		dones[i] = pe.Node.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: 32}, func(warp *gpusim.Warp) {
			body(pe, warp)
		})
	}
	w.engine().Run()
	for i, d := range dones {
		if !d.Done() {
			panic(fmt.Sprintf("shmem: PE %d did not complete (deadlock?)", pes[i].Rank))
		}
	}
}
