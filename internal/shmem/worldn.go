package shmem

// N-rank worlds: one PE per node of a switched cluster. The pair world's
// two implicit connections become an explicit (and sparse) connection
// graph — World.Connect wires exactly the rank pairs an algorithm needs,
// and the collectives in collectives.go connect their own peer sets at
// plan time. Synchronization is the root team's dissemination barrier
// (team.go), the N-rank generalization of the pair Barrier.
//
// Construction is lazy at every layer: NewWorldN builds only the switch
// graph and the rank tables. A node and its PE materialize on the first
// World.PE touch (usually via Connect or Team.Run), and each team's
// barrier flags and connection graph materialize on first use. A job
// that runs a 64-rank team of a 1024-node world builds 64 nodes.

import (
	"fmt"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/topo"
	"putget/internal/transport"
)

// NewWorldN builds an n-PE world over an n-node cluster of the chosen
// fabric, joined by the given topology. Each node contributes one PE
// with a symmetric heap of heapSize bytes. Nothing per-rank is built
// here; PEs and connections materialize on first touch, and collective
// plans connect their own peers.
func NewWorldN(k transport.Kind, spec topo.Spec, n int, p cluster.Params, heapSize uint64) *World {
	fab := cluster.FabricExtoll
	if k == transport.KindIB {
		fab = cluster.FabricIB
	}
	return NewWorldOnCluster(k, cluster.NewClusterOn(fab, spec, n, p), heapSize)
}

// NewWorldOnCluster wraps an existing cluster in a SHMEM world — the
// team-based core that NewWorldN delegates to. Useful when several
// worlds should share one fabric, or when the caller tuned the cluster
// directly.
func NewWorldOnCluster(k transport.Kind, cl *cluster.Cluster, heapSize uint64) *World {
	n := cl.N()
	w := &World{
		CL:        cl,
		Transport: transport.NewCluster(k, cl),
		n:         n,
		pes:       make([]*PE, n),
		heapSize:  heapSize,
		regions:   make([]transport.Region, n),
		conns:     map[[2]int]bool{},
	}
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	w.root = w.newTeam("world", ranks)
	return w
}

// connHint picks the per-connection defaults an N-rank world uses: IB
// rings live in GPU device memory (the paper's bufOnGPU placement, same
// as the pair world's data connection).
func (w *World) connHint() transport.ConnHint {
	return transport.ConnHint{QueuesOnGPU: w.Transport.Kind() == transport.KindIB}
}

// Connect establishes the connection between ranks a and b if it does not
// exist yet (idempotent), materializing both PEs first. Setup plane: call
// before Run. Pair worlds are born fully connected and must not call this.
func (w *World) Connect(a, b int) {
	if w.CL == nil {
		panic("shmem: Connect is for N-rank worlds; pair worlds are fully connected")
	}
	if a == b {
		panic("shmem: Connect needs two distinct ranks")
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	if w.conns[key] {
		return
	}
	pa, pb := w.PE(a), w.PE(b)
	ea, eb := w.Transport.ConnectPair(pa.Node, pb.Node, w.connHint())
	pa.dataTo[b] = ea
	pb.dataTo[a] = eb
	w.conns[key] = true
}

// Connections reports how many rank pairs have been wired so far — the
// connection-graph cost a lazy-build job actually paid.
func (w *World) Connections() int { return len(w.conns) }

// ep returns this PE's endpoint to a peer rank, panicking with guidance
// when the ranks were never connected.
func (pe *PE) ep(peer int) transport.Endpoint {
	ep := pe.dataTo[peer]
	if ep == nil {
		panic(fmt.Sprintf("shmem: ranks %d and %d are not connected; call World.Connect(%d, %d) before Run", pe.Rank, peer, pe.Rank, peer))
	}
	return ep
}

// ---- N-rank device-side operations ----

// PutTo copies n bytes from the local symmetric offset src to peer rank's
// symmetric offset dst. Completion is asynchronous; call QuietAll (or
// reap the peer's stream selectively) to wait.
func (pe *PE) PutTo(w *gpusim.Warp, peer int, dst, src uint64, n int) {
	pe.ep(peer).DevPut(w, pe.local, src, pe.world.regions[peer], dst, n, transport.FlagLocalComp)
	pe.outTo[peer]++
}

// PutImmTo writes one 64-bit value to peer rank's symmetric offset with
// an immediate put (no source DMA).
func (pe *PE) PutImmTo(w *gpusim.Warp, peer int, dst uint64, value uint64) {
	pe.ep(peer).DevPutImm(w, value, pe.world.regions[peer], dst, 8, transport.FlagLocalComp)
	pe.outTo[peer]++
}

// GetFrom copies n bytes from peer rank's symmetric offset src into the
// local offset dst and blocks until the data has arrived.
func (pe *PE) GetFrom(w *gpusim.Warp, peer int, dst, src uint64, n int) {
	pe.ep(peer).DevGet(w, pe.local, dst, pe.world.regions[peer], src, n)
}

// QuietAll blocks until every outstanding PutTo/PutImmTo on every peer
// connection has completed locally — the N-rank shmem_quiet.
func (pe *PE) QuietAll(w *gpusim.Warp) {
	for peer, out := range pe.outTo {
		for out > 0 {
			//putget:allow boundedwait -- shmem_quiet is unbounded by the OpenSHMEM spec: it waits on exactly the puts this PE issued, each of which the reliable fabric completes
			pe.dataTo[peer].DevWaitComplete(w, transport.CompLocal)
			out--
		}
		pe.outTo[peer] = 0
	}
}

// BarrierAll synchronizes all N PEs — the root team's dissemination
// barrier: in round k, team rank r writes its epoch to rank (r+2^k)
// mod N's round-k flag with a fire-and-forget immediate put (no
// completion anywhere, so Quiet semantics are untouched) and polls its
// own round-k flag in device memory until the epoch from rank (r-2^k)
// mod N lands. ceil(log2 N) rounds transitively cover all ranks.
//
// Flag slots alternate between two parity sets by epoch. Dissemination
// coverage means a rank exits epoch s only after every rank has entered
// it, so no writer can be two barriers ahead of a poller; a one-ahead
// writer (epoch s+1) targets the other parity's slots. Each slot is
// therefore written exactly once per observed epoch and the equality
// poll cannot miss a transition.
//
// World.Run materializes the root team; a kernel launched through a
// sub-team's Run should call its Team.Barrier instead.
func (pe *PE) BarrierAll(w *gpusim.Warp) {
	pe.world.root.Barrier(pe, w)
}
