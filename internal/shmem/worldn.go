package shmem

// N-rank worlds: one PE per node of a switched cluster. The pair world's
// two implicit connections become an explicit (and sparse) connection
// graph — World.Connect wires exactly the rank pairs an algorithm needs,
// and the collectives in collectives.go connect their own peer sets at
// plan time. Synchronization is a dissemination barrier over epoch-valued
// immediate puts, the N-rank generalization of the pair Barrier.

import (
	"fmt"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/topo"
	"putget/internal/transport"
)

// NewWorldN builds an n-PE world over an n-node cluster of the chosen
// fabric, joined by the given topology. Each node contributes one PE with
// a symmetric heap of heapSize bytes. The constructor establishes only
// the dissemination-barrier connections (about log2(n) peers per rank);
// point-to-point traffic between other rank pairs needs World.Connect
// before Run, and each collective plan connects its own peers.
func NewWorldN(k transport.Kind, spec topo.Spec, n int, p cluster.Params, heapSize uint64) *World {
	fab := cluster.FabricExtoll
	if k == transport.KindIB {
		fab = cluster.FabricIB
	}
	cl := cluster.NewClusterOn(fab, spec, n, p)
	tr := transport.NewCluster(k, cl)
	w := &World{CL: cl, Transport: tr, conns: map[[2]int]bool{}}
	for i, nd := range cl.Nodes {
		pe := &PE{Rank: i, N: n, Node: nd, world: w}
		pe.heapBase = nd.AllocDev(heapSize)
		pe.heapSize = heapSize
		pe.dataTo = make([]transport.Endpoint, n)
		pe.outTo = make([]int, n)
		w.PEs = append(w.PEs, pe)
	}
	w.regions = make([]transport.Region, n)
	for i, pe := range w.PEs {
		w.regions[i] = tr.Register(pe.Node, pe.heapBase, heapSize)
		pe.local = w.regions[i]
	}
	// Dissemination barrier state: ceil(log2(n)) rounds, two parity slots
	// per round (epoch alternation makes one-barrier-ahead writers land in
	// the other parity's slots — see BarrierAll).
	for w.rounds = 0; 1<<w.rounds < n; w.rounds++ {
	}
	w.dissOff = w.Malloc(uint64(16 * w.rounds))
	for rd := 0; rd < w.rounds; rd++ {
		for r := 0; r < n; r++ {
			w.Connect(r, (r+(1<<rd))%n)
		}
	}
	return w
}

// connHint picks the per-connection defaults an N-rank world uses: IB
// rings live in GPU device memory (the paper's bufOnGPU placement, same
// as the pair world's data connection).
func (w *World) connHint() transport.ConnHint {
	return transport.ConnHint{QueuesOnGPU: w.Transport.Kind() == transport.KindIB}
}

// Connect establishes the connection between ranks a and b if it does not
// exist yet (idempotent). Setup plane: call before Run. Pair worlds are
// born fully connected and must not call this.
func (w *World) Connect(a, b int) {
	if w.CL == nil {
		panic("shmem: Connect is for N-rank worlds; pair worlds are fully connected")
	}
	if a == b {
		panic("shmem: Connect needs two distinct ranks")
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	if w.conns[key] {
		return
	}
	ea, eb := w.Transport.ConnectPair(w.PEs[a].Node, w.PEs[b].Node, w.connHint())
	w.PEs[a].dataTo[b] = ea
	w.PEs[b].dataTo[a] = eb
	w.conns[key] = true
}

// ep returns this PE's endpoint to a peer rank, panicking with guidance
// when the ranks were never connected.
func (pe *PE) ep(peer int) transport.Endpoint {
	ep := pe.dataTo[peer]
	if ep == nil {
		panic(fmt.Sprintf("shmem: ranks %d and %d are not connected; call World.Connect(%d, %d) before Run", pe.Rank, peer, pe.Rank, peer))
	}
	return ep
}

// ---- N-rank device-side operations ----

// PutTo copies n bytes from the local symmetric offset src to peer rank's
// symmetric offset dst. Completion is asynchronous; call QuietAll (or
// reap the peer's stream selectively) to wait.
func (pe *PE) PutTo(w *gpusim.Warp, peer int, dst, src uint64, n int) {
	pe.ep(peer).DevPut(w, pe.local, src, pe.world.regions[peer], dst, n, transport.FlagLocalComp)
	pe.outTo[peer]++
}

// PutImmTo writes one 64-bit value to peer rank's symmetric offset with
// an immediate put (no source DMA).
func (pe *PE) PutImmTo(w *gpusim.Warp, peer int, dst uint64, value uint64) {
	pe.ep(peer).DevPutImm(w, value, pe.world.regions[peer], dst, 8, transport.FlagLocalComp)
	pe.outTo[peer]++
}

// GetFrom copies n bytes from peer rank's symmetric offset src into the
// local offset dst and blocks until the data has arrived.
func (pe *PE) GetFrom(w *gpusim.Warp, peer int, dst, src uint64, n int) {
	pe.ep(peer).DevGet(w, pe.local, dst, pe.world.regions[peer], src, n)
}

// QuietAll blocks until every outstanding PutTo/PutImmTo on every peer
// connection has completed locally — the N-rank shmem_quiet.
func (pe *PE) QuietAll(w *gpusim.Warp) {
	for peer, out := range pe.outTo {
		for out > 0 {
			//putget:allow boundedwait -- shmem_quiet is unbounded by the OpenSHMEM spec: it waits on exactly the puts this PE issued, each of which the reliable fabric completes
			pe.dataTo[peer].DevWaitComplete(w, transport.CompLocal)
			out--
		}
		pe.outTo[peer] = 0
	}
}

// BarrierAll synchronizes all N PEs with a dissemination barrier: in
// round k, rank r writes its epoch to rank (r+2^k) mod N's round-k flag
// with a fire-and-forget immediate put (no completion anywhere, so Quiet
// semantics are untouched) and polls its own round-k flag in device
// memory until the epoch from rank (r-2^k) mod N lands. ceil(log2 N)
// rounds transitively cover all ranks.
//
// Flag slots alternate between two parity sets by epoch. Dissemination
// coverage means a rank exits epoch s only after every rank has entered
// it, so no writer can be two barriers ahead of a poller; a one-ahead
// writer (epoch s+1) targets the other parity's slots. Each slot is
// therefore written exactly once per observed epoch and the equality
// poll cannot miss a transition.
func (pe *PE) BarrierAll(w *gpusim.Warp) {
	pe.dissSeq++
	par := uint64(8 * (pe.dissSeq & 1))
	for k := 0; k < pe.world.rounds; k++ {
		peer := (pe.Rank + (1 << k)) % pe.N
		slot := pe.world.dissOff + uint64(16*k) + par
		pe.ep(peer).DevPutImm(w, pe.dissSeq, pe.world.regions[peer], slot, 8, 0)
		pe.WaitUntil(w, slot, pe.dissSeq)
	}
}
