package shmem

// Collectives over teams, built purely from the put/get data plane: bulk
// data moves as fire-and-forget puts, arrival is signalled by a
// fire-and-forget immediate put on the same connection (same-connection
// FIFO on both fabrics orders the flag after the data), and arrival
// detection is device-memory polling — the §VI claim-3 completion style,
// with the fabric's completion streams left untouched so user Quiet/
// QuietAll calls never race a collective.
//
// Every plan is constructed against a Team and runs entirely in
// team-rank space; the World-level constructors are wrappers planning on
// the root team. Plans allocate their own symmetric staging and flag
// state at construction (host side) and connect their own peer set, so
// Run is pure device code. Slots are unique per step within one
// invocation, and every invocation ends with the team's barrier: no rank
// can start invocation s+1 before all ranks finished their slot
// observations of invocation s, so epoch-valued equality polls cannot
// miss a transition and staging reuse across invocations cannot race.

import (
	"fmt"

	"putget/internal/gpusim"
	"putget/internal/transport"
)

// AllReduceAlg selects the allreduce schedule.
type AllReduceAlg int

const (
	// Ring runs a reduce-scatter pass followed by an allgather pass
	// around the rank ring: 2(N-1) steps moving count/N words each —
	// bandwidth-optimal, any rank count dividing the vector.
	Ring AllReduceAlg = iota
	// RecursiveDoubling exchanges whole vectors with partner r XOR 2^k
	// over log2(N) rounds — latency-optimal for short vectors. Non-
	// power-of-two sizes use the standard pre/post-fold: the first
	// 2*(N - 2^floor(log2 N)) ranks pair up, odd members fold into even
	// ones, the power-of-two core runs the doubling rounds, and the
	// result is copied back to the folded-out ranks.
	RecursiveDoubling
)

// String implements fmt.Stringer.
func (a AllReduceAlg) String() string {
	if a == RecursiveDoubling {
		return "rdouble"
	}
	return "ring"
}

// AllReduce is a planned sum-allreduce of count uint64 words at symmetric
// offset vec: after Run returns on every member rank, each member's
// vector holds the element-wise sum of all members' inputs.
type AllReduce struct {
	t     *Team
	alg   AllReduceAlg
	vec   uint64
	count int
	chunk int    // ring: words per rank
	stag  uint64 // staging (ring: size-1 chunks; rd: rds vectors [+ pre-fold vector])
	inF   uint64 // arrival flags, one word per step/round [+ pre/post-fold flags]
	agF   uint64 // ring allgather flags, one word per step
	rds   int    // rd: log2(core) rounds
	core  int    // rd: largest power of two <= team size
	rem   int    // rd: size - core ranks folded in before the rounds
	seqs  []uint64
}

// NewAllReduce plans a sum-allreduce over the team and connects its
// peers (ring neighbours, or the pre-fold pairs plus the XOR-hypercube
// core for RecursiveDoubling). count must divide by the team size for
// Ring; RecursiveDoubling accepts any size.
func (t *Team) NewAllReduce(alg AllReduceAlg, vec uint64, count int) *AllReduce {
	t.ensure()
	n := t.Size()
	a := &AllReduce{t: t, alg: alg, vec: vec, count: count, seqs: make([]uint64, n)}
	w := t.w
	switch alg {
	case Ring:
		if count%n != 0 {
			panic(fmt.Sprintf("shmem: ring allreduce on team %q needs count %% size == 0 (count %d, size %d)", t.label, count, n))
		}
		a.chunk = count / n
		a.stag = w.Malloc(uint64((n - 1) * a.chunk * 8))
		a.inF = w.Malloc(uint64((n - 1) * 8))
		a.agF = w.Malloc(uint64((n - 1) * 8))
		for r := 0; r < n; r++ {
			if n > 1 {
				w.Connect(t.ranks[r], t.ranks[(r+1)%n])
			}
		}
	case RecursiveDoubling:
		a.core = 1
		for a.core*2 <= n {
			a.core *= 2
		}
		a.rem = n - a.core
		for a.rds = 0; 1<<a.rds < a.core; a.rds++ {
		}
		stagVecs, flagWords := a.rds, a.rds
		if a.rem > 0 {
			stagVecs++     // pre-fold landing vector
			flagWords += 2 // pre-fold and post-fold flags
		}
		a.stag = w.Malloc(uint64(stagVecs * count * 8))
		a.inF = w.Malloc(uint64(flagWords * 8))
		for i := 0; i < a.rem; i++ {
			w.Connect(t.ranks[2*i], t.ranks[2*i+1])
		}
		for k := 0; k < a.rds; k++ {
			for c := 0; c < a.core; c++ {
				if p := c ^ (1 << k); c < p {
					w.Connect(t.ranks[a.coreToTeam(c)], t.ranks[a.coreToTeam(p)])
				}
			}
		}
	default:
		panic("shmem: unknown AllReduceAlg")
	}
	return a
}

// NewAllReduce plans on the root team — every rank of the world.
func (w *World) NewAllReduce(alg AllReduceAlg, vec uint64, count int) *AllReduce {
	return w.Root().NewAllReduce(alg, vec, count)
}

// coreToTeam maps a doubling-core rank to its team rank: the first rem
// core ranks are the surviving (even) members of the pre-fold pairs.
func (a *AllReduce) coreToTeam(c int) int {
	if c < a.rem {
		return 2 * c
	}
	return c + a.rem
}

// teamToCore is the inverse for core participants; odd pre-fold ranks
// (team rank < 2*rem, odd) are not in the core.
func (a *AllReduce) teamToCore(tr int) int {
	if tr < 2*a.rem {
		return tr / 2
	}
	return tr - a.rem
}

// Run executes the allreduce on the calling PE; every team member must
// call it (SPMD). It returns once this rank's vector holds the global
// sums and all members have passed the trailing team barrier.
func (a *AllReduce) Run(pe *PE, w *gpusim.Warp) {
	tr := a.t.rankOf(pe)
	a.seqs[tr]++
	if a.alg == Ring {
		a.ring(pe, w, tr, a.seqs[tr])
	} else {
		a.rdouble(pe, w, tr, a.seqs[tr])
	}
	a.t.Barrier(pe, w)
}

// ring: step s of the reduce-scatter sends chunk (r-s) mod N to the right
// neighbour's staging slot s and folds the incoming slot into chunk
// (r-s-1) mod N; after N-1 steps rank r owns the fully reduced chunk
// (r+1) mod N. The allgather then circulates final chunks in place.
// Outgoing DMAs and local reduce writes touch disjoint chunks at every
// step, so the fire-and-forget puts never race their own source. All
// ranks here are team ranks; only the endpoint lookup leaves team space.
func (a *AllReduce) ring(pe *PE, w *gpusim.Warp, r int, seq uint64) {
	n := a.t.Size()
	if n == 1 {
		return
	}
	right := a.t.ranks[(r+1)%n]
	ep := pe.ep(right)
	chunkB := uint64(a.chunk) * 8
	reg := pe.world.regions[right]
	for s := 0; s < n-1; s++ {
		send := uint64(((r-s)%n + n) % n)
		ep.DevPut(w, pe.local, a.vec+send*chunkB, reg, a.stag+uint64(s)*chunkB, a.chunk*8, 0)
		ep.DevPutImm(w, seq, reg, a.inF+uint64(8*s), 8, 0)
		pe.WaitUntil(w, a.inF+uint64(8*s), seq)
		recv := uint64(((r-s-1)%n + n) % n)
		for i := uint64(0); i < uint64(a.chunk); i++ {
			dst := pe.Addr(a.vec + recv*chunkB + 8*i)
			w.StGlobalU64(dst, w.LdGlobalU64(dst)+w.LdGlobalU64(pe.Addr(a.stag+uint64(s)*chunkB+8*i)))
		}
	}
	for s := 0; s < n-1; s++ {
		send := uint64(((r+1-s)%n + n) % n)
		ep.DevPut(w, pe.local, a.vec+send*chunkB, reg, a.vec+send*chunkB, a.chunk*8, 0)
		ep.DevPutImm(w, seq, reg, a.agF+uint64(8*s), 8, 0)
		pe.WaitUntil(w, a.agF+uint64(8*s), seq)
	}
}

// rdouble: optional pre-fold (odd pair members ship their vector to the
// even partner and wait out the rounds), then round k exchanges the
// current partial vector with core partner c XOR 2^k and folds the
// partner's copy in, then the post-fold returns the finished vector to
// the folded-out ranks. The outgoing round put reads the same vector the
// fold rewrites, so each round reaps the put's local completion before
// reducing — the source buffer is never overwritten under a DMA. The
// pre- and post-fold puts are fire-and-forget: the pre-fold sender's
// vector is only overwritten by the post-fold put, which its partner
// issues strictly after consuming the pre-fold data (flag-after-data
// FIFO), and the post-fold source is quiesced by the trailing barrier's
// causality (the receiver enters the barrier only after the flag lands).
func (a *AllReduce) rdouble(pe *PE, w *gpusim.Warp, tr int, seq uint64) {
	t := a.t
	vecB := uint64(a.count) * 8
	preStag := a.stag + uint64(a.rds)*vecB
	preF := a.inF + uint64(8*a.rds)
	postF := a.inF + uint64(8*(a.rds+1))
	if tr < 2*a.rem {
		if tr&1 == 1 {
			peer := t.ranks[tr-1]
			ep := pe.ep(peer)
			reg := t.w.regions[peer]
			ep.DevPut(w, pe.local, a.vec, reg, preStag, a.count*8, 0)
			ep.DevPutImm(w, seq, reg, preF, 8, 0)
			// The partner's post-fold put lands the finished vector
			// directly in a.vec; the flag write behind it releases us.
			pe.WaitUntil(w, postF, seq)
			return
		}
		pe.WaitUntil(w, preF, seq)
		for i := uint64(0); i < uint64(a.count); i++ {
			dst := pe.Addr(a.vec + 8*i)
			w.StGlobalU64(dst, w.LdGlobalU64(dst)+w.LdGlobalU64(pe.Addr(preStag+8*i)))
		}
	}
	core := a.teamToCore(tr)
	for k := 0; k < a.rds; k++ {
		peer := t.ranks[a.coreToTeam(core^(1<<k))]
		ep := pe.ep(peer)
		reg := pe.world.regions[peer]
		ep.DevPut(w, pe.local, a.vec, reg, a.stag+uint64(k)*vecB, a.count*8, transport.FlagLocalComp)
		ep.DevPutImm(w, seq, reg, a.inF+uint64(8*k), 8, 0)
		//putget:allow boundedwait -- the round's own signalled put: its local completion bounds the wait and licenses reusing the vector as a reduce target
		ep.DevWaitComplete(w, transport.CompLocal)
		pe.WaitUntil(w, a.inF+uint64(8*k), seq)
		for i := uint64(0); i < uint64(a.count); i++ {
			dst := pe.Addr(a.vec + 8*i)
			w.StGlobalU64(dst, w.LdGlobalU64(dst)+w.LdGlobalU64(pe.Addr(a.stag+uint64(k)*vecB+8*i)))
		}
	}
	if tr < 2*a.rem {
		peer := t.ranks[tr+1]
		ep := pe.ep(peer)
		reg := t.w.regions[peer]
		ep.DevPut(w, pe.local, a.vec, reg, a.vec, a.count*8, 0)
		ep.DevPutImm(w, seq, reg, postF, 8, 0)
	}
}

// AllToAll is a planned personalized exchange: team rank r's source
// chunk d lands in team rank d's destination slot r. One step — every
// rank fires all size-1 puts, then awaits all size-1 arrival flags.
type AllToAll struct {
	t        *Team
	src, dst uint64
	chunkB   int
	flags    uint64
	seqs     []uint64
}

// NewAllToAll plans a full exchange of size chunks of chunkBytes (a
// multiple of 8) living at symmetric offsets src (outgoing, chunk d for
// team rank d) and dst (incoming, slot s from team rank s), and connects
// the team's full mesh.
func (t *Team) NewAllToAll(src, dst uint64, chunkBytes int) *AllToAll {
	t.ensure()
	if chunkBytes%8 != 0 {
		panic("shmem: alltoall chunk must be a multiple of 8 bytes")
	}
	n := t.Size()
	a := &AllToAll{t: t, src: src, dst: dst, chunkB: chunkBytes, seqs: make([]uint64, n)}
	a.flags = t.w.Malloc(uint64(8 * n))
	for r := 0; r < n; r++ {
		for p := r + 1; p < n; p++ {
			t.w.Connect(t.ranks[r], t.ranks[p])
		}
	}
	return a
}

// NewAllToAll plans on the root team — every rank of the world.
func (w *World) NewAllToAll(src, dst uint64, chunkBytes int) *AllToAll {
	return w.Root().NewAllToAll(src, dst, chunkBytes)
}

// Run executes the exchange on the calling PE (SPMD). Sends walk the
// rotated schedule r+1, r+2, ... in team-rank space so no destination
// sees all senders at once on the first step.
func (a *AllToAll) Run(pe *PE, w *gpusim.Warp) {
	t := a.t
	r := t.rankOf(pe)
	a.seqs[r]++
	seq := a.seqs[r]
	n := t.Size()
	chunkB := uint64(a.chunkB)
	for i := uint64(0); i < chunkB/8; i++ {
		w.StGlobalU64(pe.Addr(a.dst+uint64(r)*chunkB+8*i), w.LdGlobalU64(pe.Addr(a.src+uint64(r)*chunkB+8*i)))
	}
	for d := 1; d < n; d++ {
		peerTr := (r + d) % n
		peer := t.ranks[peerTr]
		ep := pe.ep(peer)
		reg := pe.world.regions[peer]
		ep.DevPut(w, pe.local, a.src+uint64(peerTr)*chunkB, reg, a.dst+uint64(r)*chunkB, a.chunkB, 0)
		ep.DevPutImm(w, seq, reg, a.flags+uint64(8*r), 8, 0)
	}
	for d := 1; d < n; d++ {
		pe.WaitUntil(w, a.flags+uint64(8*((r+d)%n)), seq)
	}
	t.Barrier(pe, w)
}

// Halo is a planned 3D halo exchange: the team's ranks form a dims[0] x
// dims[1] x dims[2] periodic grid and every rank swaps one fixed-size
// face payload with each of its six neighbours per Run.
type Halo struct {
	t     *Team
	dims  [3]int
	faceB int
	send  uint64 // 6 outgoing faces, indexed by direction
	recv  uint64 // 6 incoming faces, indexed by the direction they came from
	flags uint64
	seqs  []uint64
}

// halo directions: +x, -x, +y, -y, +z, -z; opp flips the sign.
func haloOpp(d int) int { return d ^ 1 }

// NewHalo plans a halo exchange on a periodic dims grid (the product
// must equal the team size) with faceBytes per face (a multiple of 8),
// allocating the six send and six receive face slots and connecting the
// neighbour links. Use SendOff/RecvOff to address the faces.
func (t *Team) NewHalo(dims [3]int, faceBytes int) *Halo {
	t.ensure()
	n := t.Size()
	if dims[0]*dims[1]*dims[2] != n {
		panic(fmt.Sprintf("shmem: halo grid %dx%dx%d does not cover team %q's %d ranks", dims[0], dims[1], dims[2], t.label, n))
	}
	if faceBytes%8 != 0 {
		panic("shmem: halo face must be a multiple of 8 bytes")
	}
	h := &Halo{t: t, dims: dims, faceB: faceBytes, seqs: make([]uint64, n)}
	h.send = t.w.Malloc(uint64(6 * faceBytes))
	h.recv = t.w.Malloc(uint64(6 * faceBytes))
	h.flags = t.w.Malloc(6 * 8)
	for r := 0; r < n; r++ {
		for d := 0; d < 6; d++ {
			if p := h.neighbor(r, d); r < p {
				t.w.Connect(t.ranks[r], t.ranks[p])
			}
		}
	}
	return h
}

// NewHalo plans on the root team — every rank of the world.
func (w *World) NewHalo(dims [3]int, faceBytes int) *Halo {
	return w.Root().NewHalo(dims, faceBytes)
}

// SendOff returns the symmetric offset of the outgoing face for direction
// d (0..5 = +x, -x, +y, -y, +z, -z).
func (h *Halo) SendOff(d int) uint64 { return h.send + uint64(d*h.faceB) }

// RecvOff returns the symmetric offset of the face received from
// direction d.
func (h *Halo) RecvOff(d int) uint64 { return h.recv + uint64(d*h.faceB) }

// neighbor returns the team rank one step in direction d with periodic
// wrap.
func (h *Halo) neighbor(r, d int) int {
	c := [3]int{r % h.dims[0], (r / h.dims[0]) % h.dims[1], r / (h.dims[0] * h.dims[1])}
	ax := d / 2
	step := 1
	if d&1 == 1 {
		step = h.dims[ax] - 1 // -1 mod dims
	}
	c[ax] = (c[ax] + step) % h.dims[ax]
	return c[0] + h.dims[0]*(c[1]+h.dims[1]*c[2])
}

// Run exchanges all six faces on the calling PE (SPMD): the direction-d
// face lands in the neighbour's opposite-direction receive slot. Grid
// axes of extent 1 degenerate to a local copy.
func (h *Halo) Run(pe *PE, w *gpusim.Warp) {
	t := h.t
	r := t.rankOf(pe)
	h.seqs[r]++
	seq := h.seqs[r]
	faceB := uint64(h.faceB)
	for d := 0; d < 6; d++ {
		peerTr := h.neighbor(r, d)
		dst := h.RecvOff(haloOpp(d))
		if peerTr == r {
			for i := uint64(0); i < faceB/8; i++ {
				w.StGlobalU64(pe.Addr(dst+8*i), w.LdGlobalU64(pe.Addr(h.SendOff(d)+8*i)))
			}
			continue
		}
		peer := t.ranks[peerTr]
		ep := pe.ep(peer)
		reg := pe.world.regions[peer]
		ep.DevPut(w, pe.local, h.SendOff(d), reg, dst, h.faceB, 0)
		ep.DevPutImm(w, seq, reg, h.flags+uint64(8*haloOpp(d)), 8, 0)
	}
	for d := 0; d < 6; d++ {
		if h.neighbor(r, d) != r {
			pe.WaitUntil(w, h.flags+uint64(8*d), seq)
		}
	}
	t.Barrier(pe, w)
}
