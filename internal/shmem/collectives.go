package shmem

// Collectives over N-rank worlds, built purely from the put/get data
// plane: bulk data moves as fire-and-forget puts, arrival is signalled by
// a fire-and-forget immediate put on the same connection (same-connection
// FIFO on both fabrics orders the flag after the data), and arrival
// detection is device-memory polling — the §VI claim-3 completion style,
// with the fabric's completion streams left untouched so user Quiet/
// QuietAll calls never race a collective.
//
// Every plan allocates its own symmetric staging and flag state at
// construction (host side) and connects its own peer set, so Run is pure
// device code. Slots are unique per step within one invocation, and every
// invocation ends with BarrierAll: no rank can start invocation s+1
// before all ranks finished their slot observations of invocation s, so
// epoch-valued equality polls cannot miss a transition and staging reuse
// across invocations cannot race.

import (
	"fmt"

	"putget/internal/gpusim"
	"putget/internal/transport"
)

// AllReduceAlg selects the allreduce schedule.
type AllReduceAlg int

const (
	// Ring runs a reduce-scatter pass followed by an allgather pass
	// around the rank ring: 2(N-1) steps moving count/N words each —
	// bandwidth-optimal, any rank count dividing the vector.
	Ring AllReduceAlg = iota
	// RecursiveDoubling exchanges whole vectors with partner r XOR 2^k
	// over log2(N) rounds — latency-optimal for short vectors; requires a
	// power-of-two rank count.
	RecursiveDoubling
)

// String implements fmt.Stringer.
func (a AllReduceAlg) String() string {
	if a == RecursiveDoubling {
		return "rdouble"
	}
	return "ring"
}

// AllReduce is a planned sum-allreduce of count uint64 words at symmetric
// offset vec: after Run returns on every rank, each rank's vector holds
// the element-wise sum of all ranks' inputs.
type AllReduce struct {
	w     *World
	alg   AllReduceAlg
	vec   uint64
	count int
	chunk int    // ring: words per rank
	stag  uint64 // staging slots (ring: N-1 chunks; rd: rounds vectors)
	inF   uint64 // arrival flags, one word per step/round
	agF   uint64 // ring allgather flags, one word per step
	rds   int    // rd: log2(N) rounds
	seqs  []uint64
}

// NewAllReduce plans a sum-allreduce over the whole world and connects
// its peers (ring neighbours, or the XOR-hypercube for RecursiveDoubling).
// count must divide by N for Ring; N must be a power of two for
// RecursiveDoubling.
func (w *World) NewAllReduce(alg AllReduceAlg, vec uint64, count int) *AllReduce {
	if w.CL == nil {
		panic("shmem: NewAllReduce needs an N-rank world (NewWorldN)")
	}
	n := len(w.PEs)
	a := &AllReduce{w: w, alg: alg, vec: vec, count: count, seqs: make([]uint64, n)}
	switch alg {
	case Ring:
		if count%n != 0 {
			panic(fmt.Sprintf("shmem: ring allreduce needs count %% N == 0 (count %d, N %d)", count, n))
		}
		a.chunk = count / n
		a.stag = w.Malloc(uint64((n - 1) * a.chunk * 8))
		a.inF = w.Malloc(uint64((n - 1) * 8))
		a.agF = w.Malloc(uint64((n - 1) * 8))
		for r := 0; r < n; r++ {
			w.Connect(r, (r+1)%n)
		}
	case RecursiveDoubling:
		if n&(n-1) != 0 {
			panic(fmt.Sprintf("shmem: recursive-doubling allreduce needs a power-of-two rank count, got %d", n))
		}
		for a.rds = 0; 1<<a.rds < n; a.rds++ {
		}
		a.stag = w.Malloc(uint64(a.rds * count * 8))
		a.inF = w.Malloc(uint64(a.rds * 8))
		for k := 0; k < a.rds; k++ {
			for r := 0; r < n; r++ {
				if p := r ^ (1 << k); r < p {
					w.Connect(r, p)
				}
			}
		}
	default:
		panic("shmem: unknown AllReduceAlg")
	}
	return a
}

// Run executes the allreduce on the calling PE; every rank must call it
// (SPMD). It returns once this rank's vector holds the global sums and
// all ranks have passed the trailing barrier.
func (a *AllReduce) Run(pe *PE, w *gpusim.Warp) {
	a.seqs[pe.Rank]++
	if a.alg == Ring {
		a.ring(pe, w, a.seqs[pe.Rank])
	} else {
		a.rdouble(pe, w, a.seqs[pe.Rank])
	}
	pe.BarrierAll(w)
}

// ring: step s of the reduce-scatter sends chunk (r-s) mod N to the right
// neighbour's staging slot s and folds the incoming slot into chunk
// (r-s-1) mod N; after N-1 steps rank r owns the fully reduced chunk
// (r+1) mod N. The allgather then circulates final chunks in place.
// Outgoing DMAs and local reduce writes touch disjoint chunks at every
// step, so the fire-and-forget puts never race their own source.
func (a *AllReduce) ring(pe *PE, w *gpusim.Warp, seq uint64) {
	n, r := pe.N, pe.Rank
	right := (r + 1) % n
	ep := pe.ep(right)
	chunkB := uint64(a.chunk) * 8
	reg := pe.world.regions[right]
	for s := 0; s < n-1; s++ {
		send := uint64(((r-s)%n + n) % n)
		ep.DevPut(w, pe.local, a.vec+send*chunkB, reg, a.stag+uint64(s)*chunkB, a.chunk*8, 0)
		ep.DevPutImm(w, seq, reg, a.inF+uint64(8*s), 8, 0)
		pe.WaitUntil(w, a.inF+uint64(8*s), seq)
		recv := uint64(((r-s-1)%n + n) % n)
		for i := uint64(0); i < uint64(a.chunk); i++ {
			dst := pe.Addr(a.vec + recv*chunkB + 8*i)
			w.StGlobalU64(dst, w.LdGlobalU64(dst)+w.LdGlobalU64(pe.Addr(a.stag+uint64(s)*chunkB+8*i)))
		}
	}
	for s := 0; s < n-1; s++ {
		send := uint64(((r+1-s)%n + n) % n)
		ep.DevPut(w, pe.local, a.vec+send*chunkB, reg, a.vec+send*chunkB, a.chunk*8, 0)
		ep.DevPutImm(w, seq, reg, a.agF+uint64(8*s), 8, 0)
		pe.WaitUntil(w, a.agF+uint64(8*s), seq)
	}
}

// rdouble: round k exchanges the current partial vector with partner
// r XOR 2^k and folds the partner's copy in. The outgoing put reads the
// same vector the fold rewrites, so each round reaps the put's local
// completion before reducing — the source buffer is never overwritten
// under a DMA.
func (a *AllReduce) rdouble(pe *PE, w *gpusim.Warp, seq uint64) {
	vecB := uint64(a.count) * 8
	for k := 0; k < a.rds; k++ {
		peer := pe.Rank ^ (1 << k)
		ep := pe.ep(peer)
		reg := pe.world.regions[peer]
		ep.DevPut(w, pe.local, a.vec, reg, a.stag+uint64(k)*vecB, a.count*8, transport.FlagLocalComp)
		ep.DevPutImm(w, seq, reg, a.inF+uint64(8*k), 8, 0)
		//putget:allow boundedwait -- the round's own signalled put: its local completion bounds the wait and licenses reusing the vector as a reduce target
		ep.DevWaitComplete(w, transport.CompLocal)
		pe.WaitUntil(w, a.inF+uint64(8*k), seq)
		for i := uint64(0); i < uint64(a.count); i++ {
			dst := pe.Addr(a.vec + 8*i)
			w.StGlobalU64(dst, w.LdGlobalU64(dst)+w.LdGlobalU64(pe.Addr(a.stag+uint64(k)*vecB+8*i)))
		}
	}
}

// AllToAll is a planned personalized exchange: rank r's source chunk d
// lands in rank d's destination slot r. One step — every rank fires all
// N-1 puts, then awaits all N-1 arrival flags.
type AllToAll struct {
	w        *World
	src, dst uint64
	chunkB   int
	flags    uint64
	seqs     []uint64
}

// NewAllToAll plans a full exchange of N chunks of chunkBytes (a multiple
// of 8) living at symmetric offsets src (outgoing, chunk d for rank d)
// and dst (incoming, slot s from rank s), and connects the full mesh.
func (w *World) NewAllToAll(src, dst uint64, chunkBytes int) *AllToAll {
	if w.CL == nil {
		panic("shmem: NewAllToAll needs an N-rank world (NewWorldN)")
	}
	if chunkBytes%8 != 0 {
		panic("shmem: alltoall chunk must be a multiple of 8 bytes")
	}
	n := len(w.PEs)
	a := &AllToAll{w: w, src: src, dst: dst, chunkB: chunkBytes, seqs: make([]uint64, n)}
	a.flags = w.Malloc(uint64(8 * n))
	for r := 0; r < n; r++ {
		for p := r + 1; p < n; p++ {
			w.Connect(r, p)
		}
	}
	return a
}

// Run executes the exchange on the calling PE (SPMD). Sends walk the
// rotated schedule r+1, r+2, ... so no destination sees all senders at
// once on the first step.
func (a *AllToAll) Run(pe *PE, w *gpusim.Warp) {
	a.seqs[pe.Rank]++
	seq := a.seqs[pe.Rank]
	n, r := pe.N, pe.Rank
	chunkB := uint64(a.chunkB)
	for i := uint64(0); i < chunkB/8; i++ {
		w.StGlobalU64(pe.Addr(a.dst+uint64(r)*chunkB+8*i), w.LdGlobalU64(pe.Addr(a.src+uint64(r)*chunkB+8*i)))
	}
	for d := 1; d < n; d++ {
		peer := (r + d) % n
		ep := pe.ep(peer)
		reg := pe.world.regions[peer]
		ep.DevPut(w, pe.local, a.src+uint64(peer)*chunkB, reg, a.dst+uint64(r)*chunkB, a.chunkB, 0)
		ep.DevPutImm(w, seq, reg, a.flags+uint64(8*r), 8, 0)
	}
	for d := 1; d < n; d++ {
		pe.WaitUntil(w, a.flags+uint64(8*((r+d)%n)), seq)
	}
	pe.BarrierAll(w)
}

// Halo is a planned 3D halo exchange: ranks form a dims[0] x dims[1] x
// dims[2] periodic grid and every rank swaps one fixed-size face payload
// with each of its six neighbours per Run.
type Halo struct {
	w     *World
	dims  [3]int
	faceB int
	send  uint64 // 6 outgoing faces, indexed by direction
	recv  uint64 // 6 incoming faces, indexed by the direction they came from
	flags uint64
	seqs  []uint64
}

// halo directions: +x, -x, +y, -y, +z, -z; opp flips the sign.
func haloOpp(d int) int { return d ^ 1 }

// NewHalo plans a halo exchange on a periodic dims grid (the product
// must equal N) with faceBytes per face (a multiple of 8), allocating
// the six send and six receive face slots and connecting the neighbour
// links. Use SendOff/RecvOff to address the faces.
func (w *World) NewHalo(dims [3]int, faceBytes int) *Halo {
	if w.CL == nil {
		panic("shmem: NewHalo needs an N-rank world (NewWorldN)")
	}
	n := len(w.PEs)
	if dims[0]*dims[1]*dims[2] != n {
		panic(fmt.Sprintf("shmem: halo grid %dx%dx%d does not cover %d ranks", dims[0], dims[1], dims[2], n))
	}
	if faceBytes%8 != 0 {
		panic("shmem: halo face must be a multiple of 8 bytes")
	}
	h := &Halo{w: w, dims: dims, faceB: faceBytes, seqs: make([]uint64, n)}
	h.send = w.Malloc(uint64(6 * faceBytes))
	h.recv = w.Malloc(uint64(6 * faceBytes))
	h.flags = w.Malloc(6 * 8)
	for r := 0; r < n; r++ {
		for d := 0; d < 6; d++ {
			if p := h.neighbor(r, d); p != r {
				if r < p {
					w.Connect(r, p)
				}
			}
		}
	}
	return h
}

// SendOff returns the symmetric offset of the outgoing face for direction
// d (0..5 = +x, -x, +y, -y, +z, -z).
func (h *Halo) SendOff(d int) uint64 { return h.send + uint64(d*h.faceB) }

// RecvOff returns the symmetric offset of the face received from
// direction d.
func (h *Halo) RecvOff(d int) uint64 { return h.recv + uint64(d*h.faceB) }

// neighbor returns the rank one step in direction d with periodic wrap.
func (h *Halo) neighbor(r, d int) int {
	c := [3]int{r % h.dims[0], (r / h.dims[0]) % h.dims[1], r / (h.dims[0] * h.dims[1])}
	ax := d / 2
	step := 1
	if d&1 == 1 {
		step = h.dims[ax] - 1 // -1 mod dims
	}
	c[ax] = (c[ax] + step) % h.dims[ax]
	return c[0] + h.dims[0]*(c[1]+h.dims[1]*c[2])
}

// Run exchanges all six faces on the calling PE (SPMD): the direction-d
// face lands in the neighbour's opposite-direction receive slot. Grid
// axes of extent 1 degenerate to a local copy.
func (h *Halo) Run(pe *PE, w *gpusim.Warp) {
	h.seqs[pe.Rank]++
	seq := h.seqs[pe.Rank]
	faceB := uint64(h.faceB)
	for d := 0; d < 6; d++ {
		peer := h.neighbor(pe.Rank, d)
		dst := h.RecvOff(haloOpp(d))
		if peer == pe.Rank {
			for i := uint64(0); i < faceB/8; i++ {
				w.StGlobalU64(pe.Addr(dst+8*i), w.LdGlobalU64(pe.Addr(h.SendOff(d)+8*i)))
			}
			continue
		}
		ep := pe.ep(peer)
		reg := pe.world.regions[peer]
		ep.DevPut(w, pe.local, h.SendOff(d), reg, dst, h.faceB, 0)
		ep.DevPutImm(w, seq, reg, h.flags+uint64(8*haloOpp(d)), 8, 0)
	}
	for d := 0; d < 6; d++ {
		if h.neighbor(pe.Rank, d) != pe.Rank {
			pe.WaitUntil(w, h.flags+uint64(8*d), seq)
		}
	}
	pe.BarrierAll(w)
}
