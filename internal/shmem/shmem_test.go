package shmem

import (
	"bytes"
	"encoding/binary"
	"testing"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/transport"
)

func smallParams() cluster.Params {
	p := cluster.Default()
	p.GPUDevMemSize = 64 << 20
	p.HostRAMSize = 96 << 20
	return p
}

// forBothFabrics runs a test body as a subtest over each transport
// backend: the SHMEM library itself is fabric-agnostic, so every
// semantic property must hold over EXTOLL and InfiniBand alike.
func forBothFabrics(t *testing.T, f func(t *testing.T, k transport.Kind)) {
	for _, k := range []transport.Kind{transport.KindExtoll, transport.KindIB} {
		k := k
		t.Run(k.String(), func(t *testing.T) { f(t, k) })
	}
}

func TestPutQuietDelivers(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		w := NewWorldOn(k, smallParams(), 1<<20)
		buf := w.Malloc(4096)
		payload := make([]byte, 4096)
		for i := range payload {
			payload[i] = byte(i * 5)
		}
		if err := w.PE(0).HostWrite(buf, payload); err != nil {
			t.Fatal(err)
		}
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			if pe.Rank == 0 {
				pe.Put(warp, buf, buf, len(payload))
				pe.Quiet(warp)
			}
		})
		got := make([]byte, len(payload))
		if err := w.PE(1).HostRead(buf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("put payload corrupted")
		}
	})
}

func TestGetFetchesPeerData(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		w := NewWorldOn(k, smallParams(), 1<<20)
		src := w.Malloc(1024)
		dst := w.Malloc(1024)
		payload := []byte("symmetric heap payload for shmem get")
		if err := w.PE(1).HostWrite(src, payload); err != nil {
			t.Fatal(err)
		}
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			if pe.Rank == 0 {
				pe.Get(warp, dst, src, len(payload))
				// Data must be visible immediately after Get returns.
				v := warp.LdGlobalU64(pe.Addr(dst))
				want := binary.LittleEndian.Uint64(payload[:8])
				if v != want {
					t.Errorf("get returned before data arrived: %#x != %#x", v, want)
				}
			}
		})
		got := make([]byte, len(payload))
		if err := w.PE(0).HostRead(dst, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("get payload corrupted")
		}
	})
}

func TestPutImmAndWaitUntil(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		w := NewWorldOn(k, smallParams(), 1<<20)
		flag := w.Malloc(8)
		var sawAt [2]int64
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			if pe.Rank == 0 {
				warp.Proc().Sleep(20_000_000) // 20us
				pe.PutImm(warp, flag, 0x77)
				pe.Quiet(warp)
			} else {
				pe.WaitUntil(warp, flag, 0x77)
				sawAt[1] = int64(warp.Now())
			}
		})
		if sawAt[1] < 20_000_000 {
			t.Fatalf("PE1 passed WaitUntil at %d before the PutImm", sawAt[1])
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		w := NewWorldOn(k, smallParams(), 1<<20)
		const rounds = 5
		var exits [2][rounds]int64
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			for r := 0; r < rounds; r++ {
				// Rank 1 dawdles before the barrier on even rounds, rank 0 on
				// odd rounds: the barrier must absorb the skew either way.
				if (r+pe.Rank)%2 == 0 {
					warp.Proc().Sleep(30_000_000) // 30us
				}
				pe.Barrier(warp)
				exits[pe.Rank][r] = int64(warp.Now())
			}
		})
		for r := 0; r < rounds; r++ {
			d := exits[0][r] - exits[1][r]
			if d < 0 {
				d = -d
			}
			// Exits must be within one fabric crossing of each other.
			if d > 20_000_000 {
				t.Fatalf("round %d barrier exits skewed by %dps", r, d)
			}
			// And a barrier exit must not precede the slow PE's arrival.
			if r == 0 && (exits[0][0] < 30_000_000 || exits[1][0] < 30_000_000) {
				t.Fatalf("round 0 exits (%d, %d) precede the 30us dawdle", exits[0][0], exits[1][0])
			}
		}
	})
}

func TestBarrierRepeats(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		// Back-to-back barriers with no work in between must not deadlock or
		// mix epochs.
		w := NewWorldOn(k, smallParams(), 1<<20)
		count := 0
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			for i := 0; i < 20; i++ {
				pe.Barrier(warp)
			}
			count++
		})
		if count != 2 {
			t.Fatalf("finished PEs = %d", count)
		}
	})
}

func TestFetchAddBothPEs(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		w := NewWorldOn(k, smallParams(), 1<<20)
		ctr := w.Malloc(8)
		var olds [2]uint64
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			// Use a single canonical counter on PE 1: PE 0 adds 10, twice,
			// and must see the running old values back.
			if pe.Rank == 0 {
				olds[0] = pe.FetchAdd(warp, ctr, 10)
				olds[1] = pe.FetchAdd(warp, ctr, 10)
			}
		})
		if olds[0] != 0 || olds[1] != 10 {
			t.Fatalf("fetch-add old values = %v, want [0 10]", olds)
		}
		got := make([]byte, 8)
		if err := w.PE(1).HostRead(ctr, got); err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint64(got); v != 20 {
			t.Fatalf("counter = %d, want 20", v)
		}
	})
}

func TestSymmetricHeapDiscipline(t *testing.T) {
	w := NewWorld(smallParams(), 4096)
	a := w.Malloc(100)
	b := w.Malloc(100)
	if a == b {
		t.Fatal("allocations overlap")
	}
	if a%8 != 0 || b%8 != 0 {
		t.Fatal("allocations unaligned")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("heap exhaustion not detected")
		}
	}()
	w.Malloc(1 << 20)
}

func TestPingPongLatencyReasonable(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		// A shmem-level ping-pong should cost on the order of the pollOnGPU
		// latency — it is built from PutImm + WaitUntil.
		w := NewWorldOn(k, smallParams(), 1<<20)
		flag := w.Malloc(16)
		const iters = 10
		var start, end int64
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			mine := flag
			theirs := flag + 8
			if pe.Rank == 0 {
				start = int64(warp.Now())
				for i := uint64(1); i <= iters; i++ {
					pe.PutImm(warp, theirs, i)
					pe.Quiet(warp)
					pe.WaitUntil(warp, mine, i)
				}
				end = int64(warp.Now())
			} else {
				for i := uint64(1); i <= iters; i++ {
					pe.WaitUntil(warp, theirs, i)
					pe.PutImm(warp, mine, i)
					pe.Quiet(warp)
				}
			}
		})
		perIter := (end - start) / iters
		// Half-RTT should be a handful of microseconds.
		if perIter <= 0 || perIter > 40_000_000 {
			t.Fatalf("shmem ping-pong %dps per iteration", perIter)
		}
	})
}
