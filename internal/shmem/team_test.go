package shmem

import (
	"fmt"
	"strings"
	"testing"

	"putget/internal/gpusim"
	"putget/internal/topo"
	"putget/internal/transport"
)

// seedTeam writes the world-rank pattern (element i = wr+i+1) on every
// member; oracleCheck verifies each member holds the sums over exactly
// the team's membership — element i = size*(i+1) + sum(world ranks).
func seedTeam(t *testing.T, tm *Team, vec uint64, words int) {
	t.Helper()
	for tr := 0; tr < tm.Size(); tr++ {
		vals := make([]uint64, words)
		for i := range vals {
			vals[i] = uint64(tm.WorldRank(tr) + i + 1)
		}
		hostWriteU64s(t, tm.PE(tr), vec, vals)
	}
}

func oracleCheck(t *testing.T, tm *Team, vec uint64, words int) {
	t.Helper()
	rankSum := 0
	for tr := 0; tr < tm.Size(); tr++ {
		rankSum += tm.WorldRank(tr)
	}
	for tr := 0; tr < tm.Size(); tr++ {
		got := hostReadU64s(t, tm.PE(tr), vec, words)
		for i := range got {
			want := uint64(tm.Size()*(i+1) + rankSum)
			if got[i] != want {
				t.Fatalf("team %q rank %d element %d = %d, want %d", tm.Label(), tr, i, got[i], want)
			}
		}
	}
}

func TestTeamSplitRankTranslation(t *testing.T) {
	w := newTestWorldN(transport.KindExtoll, topo.Spec{Kind: topo.FatTree}, 12)
	defer w.Shutdown()
	root := w.Root()
	// Three colors by modulo; keys reverse the world order inside each
	// color, and rank 7 opts out with a negative color.
	colors := make([]int, 12)
	keys := make([]int, 12)
	for r := range colors {
		colors[r] = r % 3
		keys[r] = -r
	}
	colors[7] = -1
	teams := root.Split(colors, keys)
	if len(teams) != 3 {
		t.Fatalf("got %d teams, want 3", len(teams))
	}
	// Color 1 members are 1, 4, 7, 10 minus the opted-out 7; reversed by
	// key: 10, 4, 1.
	want := []int{10, 4, 1}
	tm := teams[1]
	if tm.Size() != len(want) {
		t.Fatalf("color-1 team size = %d, want %d", tm.Size(), len(want))
	}
	for tr, wr := range want {
		if got := tm.WorldRank(tr); got != wr {
			t.Fatalf("WorldRank(%d) = %d, want %d", tr, got, wr)
		}
		back, ok := tm.TeamRank(wr)
		if !ok || back != tr {
			t.Fatalf("TeamRank(%d) = %d, %v; want %d, true", wr, back, ok, tr)
		}
	}
	if _, ok := tm.TeamRank(7); ok {
		t.Fatal("opted-out world rank 7 resolved to a team rank")
	}
	if _, ok := tm.TeamRank(0); ok {
		t.Fatal("color-0 member resolved inside the color-1 team")
	}
}

func TestTeamStridedRoundTrip(t *testing.T) {
	w := newTestWorldN(transport.KindExtoll, topo.Spec{Kind: topo.FatTree}, 16)
	defer w.Shutdown()
	tm := w.Root().Strided(1, 3, 5) // world ranks 1, 4, 7, 10, 13
	for tr := 0; tr < 5; tr++ {
		wr := 1 + 3*tr
		if got := tm.WorldRank(tr); got != wr {
			t.Fatalf("WorldRank(%d) = %d, want %d", tr, got, wr)
		}
		back, ok := tm.TeamRank(wr)
		if !ok || back != tr {
			t.Fatalf("TeamRank(%d) = %d, %v; want %d, true", wr, back, ok, tr)
		}
	}
	// Strided of strided composes in team-rank space: every other member.
	sub := tm.Strided(0, 2, 3) // world ranks 1, 7, 13
	for tr, wr := range []int{1, 7, 13} {
		if got := sub.WorldRank(tr); got != wr {
			t.Fatalf("sub WorldRank(%d) = %d, want %d", tr, got, wr)
		}
	}
	// Out-of-range stride must fail loudly, not wrap.
	defer func() {
		if recover() == nil {
			t.Fatal("overrunning Strided did not panic")
		}
	}()
	tm.Strided(0, 4, 3)
}

func TestTeamOneRankDegenerate(t *testing.T) {
	w := newTestWorldN(transport.KindExtoll, topo.Spec{Kind: topo.FatTree}, 8)
	defer w.Shutdown()
	tm := w.Root().Strided(5, 1, 1)
	vec := w.Malloc(8 * 4)
	plan := tm.NewAllReduce(RecursiveDoubling, vec, 4)
	seedTeam(t, tm, vec, 4)
	ran := false
	tm.Run(func(pe *PE, warp *gpusim.Warp) {
		if pe.Rank != 5 {
			t.Errorf("degenerate team ran on rank %d", pe.Rank)
		}
		ran = true
		plan.Run(pe, warp)
		tm.Barrier(pe, warp) // 0-round barrier must be a no-op, not a hang
	})
	if !ran {
		t.Fatal("kernel did not run")
	}
	oracleCheck(t, tm, vec, 4) // sum over {5} = identity
	if got := w.CL.Built(); got != 1 {
		t.Fatalf("built %d nodes for a 1-rank team, want 1", got)
	}
}

// Overlapping teams on one PE: the same rank belongs to the root team
// and to a sub-team, and runs both teams' collectives in one kernel.
// Each team owns distinct barrier flags and staging, so the epochs
// cannot cross.
func TestTeamOverlappingMembership(t *testing.T) {
	const n = 8
	w := newTestWorldN(transport.KindExtoll, topo.Spec{Kind: topo.FatTree}, n)
	defer w.Shutdown()
	root := w.Root()
	evens := root.Strided(0, 2, 4)
	vecAll := w.Malloc(8 * 4)
	vecEven := w.Malloc(8 * 4)
	planAll := root.NewAllReduce(RecursiveDoubling, vecAll, 4)
	planEven := evens.NewAllReduce(RecursiveDoubling, vecEven, 4)
	seedTeam(t, root, vecAll, 4)
	seedTeam(t, evens, vecEven, 4)
	w.Run(func(pe *PE, warp *gpusim.Warp) {
		planAll.Run(pe, warp)
		if _, ok := evens.TeamRank(pe.Rank); ok {
			planEven.Run(pe, warp)
		}
		pe.BarrierAll(warp)
	})
	oracleCheck(t, root, vecAll, 4)
	oracleCheck(t, evens, vecEven, 4)
}

func TestTeamWithoutShrinkCompletes(t *testing.T) {
	// A 3x3x3 torus with node 13 (the center) dead: the full-machine
	// collective is impossible, but the shrunk 26-rank team must route
	// around the hole and produce sums over exactly the survivors.
	const n = 27
	spec := topo.Spec{Kind: topo.Torus3D, DimX: 3, DimY: 3, DimZ: 3,
		Routing: topo.Adaptive, DownNodes: []int{13}}
	w := newTestWorldN(transport.KindExtoll, spec, n)
	defer w.Shutdown()
	team := w.Root().Without(13)
	if team.Size() != 26 {
		t.Fatalf("team size = %d, want 26", team.Size())
	}
	if _, ok := team.TeamRank(13); ok {
		t.Fatal("dead rank still resolves in the shrunk team")
	}
	// Survivor order is preserved and renumbered densely.
	if wr := team.WorldRank(13); wr != 14 {
		t.Fatalf("team rank 13 = world rank %d, want 14", wr)
	}
	vec := w.Malloc(8 * 4)
	plan := team.NewAllReduce(RecursiveDoubling, vec, 4) // 26: non-power-of-two
	seedTeam(t, team, vec, 4)
	team.Run(func(pe *PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	oracleCheck(t, team, vec, 4)
	if got := w.CL.Built(); got != 26 {
		t.Fatalf("built %d nodes, want 26 (the dead node must never materialize)", got)
	}
}

func TestTeamWithoutValidation(t *testing.T) {
	w := newTestWorldN(transport.KindExtoll, topo.Spec{Kind: topo.FatTree}, 4)
	defer w.Shutdown()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Without of a non-member did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "not a member") {
			t.Fatalf("panic %v does not explain the non-membership", r)
		}
	}()
	w.Root().Without(2).Without(2)
}

// Lazy construction end to end: building a world touches no nodes; a
// sub-team's plan and run touch only its members and wire only its
// connection graph.
func TestTeamLazyBuildCounts(t *testing.T) {
	const n = 32
	w := newTestWorldN(transport.KindExtoll, topo.Spec{Kind: topo.FatTree}, n)
	defer w.Shutdown()
	if got := w.CL.Built(); got != 0 {
		t.Fatalf("fresh world built %d nodes, want 0", got)
	}
	team := w.Root().Strided(0, 4, 8)
	if got := w.CL.Built(); got != 0 {
		t.Fatalf("team creation built %d nodes, want 0", got)
	}
	vec := w.Malloc(8 * 8)
	plan := team.NewAllReduce(Ring, vec, 8)
	if got := w.CL.Built(); got != 8 {
		t.Fatalf("plan built %d nodes, want the team's 8", got)
	}
	seedTeam(t, team, vec, 8)
	team.Run(func(pe *PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	oracleCheck(t, team, vec, 8)
	if got := w.CL.Built(); got != 8 {
		t.Fatalf("run built %d nodes, want 8", got)
	}
	// 8-member team: ring neighbours + 3 dissemination rounds, all
	// within the membership — never more pairs than the full mesh of 8.
	if got := w.Connections(); got > 28 {
		t.Fatalf("wired %d pairs, more than the team's full mesh (28)", got)
	}
}

func TestTeamMisuse(t *testing.T) {
	w := newTestWorldN(transport.KindExtoll, topo.Spec{Kind: topo.FatTree}, 6)
	defer w.Shutdown()
	team := w.Root().Strided(0, 1, 3)
	team.ensure()
	outsider := w.PE(5)
	mustPanicContaining := func(name, frag string, f func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: expected panic", name)
			}
			if !strings.Contains(fmt.Sprint(r), frag) {
				t.Fatalf("%s: panic %v missing %q", name, r, frag)
			}
		}()
		f()
	}
	mustPanicContaining("foreign barrier", "not a member", func() {
		team.Barrier(outsider, nil)
	})
	mustPanicContaining("unmaterialized barrier", "before materialization", func() {
		w.Root().Barrier(w.PE(0), nil)
	})
	mustPanicContaining("empty split", "no members", func() {
		w.newTeam("empty", nil)
	})
	mustPanicContaining("duplicate member", "twice", func() {
		w.newTeam("dup", []int{1, 2, 1})
	})
}
