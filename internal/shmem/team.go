package shmem

import (
	"fmt"
	"sort"

	"putget/internal/gpusim"
)

// Team is an ordered subset of a World's ranks — SHMEM's communicator.
// Every collective in this library is planned against a team; the World
// itself is just the root team spanning all ranks. Teams are cheap to
// create: nothing (PEs, connections, barrier flags) is materialized
// until the team is first used by Run or a collective plan, so carving
// many views out of a large world costs only the rank tables.
//
// A team translates between two rank spaces: the world rank (the node
// index in the cluster) and the team rank (position in this team's
// member list). Collectives and barriers run entirely in team-rank
// space, so the same algorithm serves the root team, a split half, a
// strided grid, or a team shrunk around a dead node.
type Team struct {
	w     *World
	label string
	ranks []int       // team rank -> world rank
	idx   map[int]int // world rank -> team rank

	// Dissemination-barrier state, materialized by ensure(): a
	// ceil(log2 size)-round flag array in the symmetric heap (two
	// 8-byte parity slots per round) and per-member epoch counters.
	// Each team owns its own flag block, so overlapping teams on one
	// PE never share barrier state.
	built   bool
	rounds  int
	dissOff uint64
	seqs    []uint64 // per-team-rank barrier epoch
}

// Root returns the team spanning every rank of the world. Only N-rank
// worlds have teams; pair worlds use the two-PE Barrier directly.
func (w *World) Root() *Team {
	if w.CL == nil {
		panic("shmem: teams need an N-rank world (NewWorldN); pair worlds have exactly two PEs")
	}
	return w.root
}

// newTeam validates the member list and builds the rank tables.
func (w *World) newTeam(label string, ranks []int) *Team {
	if len(ranks) == 0 {
		panic(fmt.Sprintf("shmem: team %q has no members", label))
	}
	t := &Team{w: w, label: label, ranks: ranks, idx: make(map[int]int, len(ranks))}
	for tr, wr := range ranks {
		if wr < 0 || wr >= w.n {
			panic(fmt.Sprintf("shmem: team %q member %d out of range (world size %d)", label, wr, w.n))
		}
		if prev, dup := t.idx[wr]; dup {
			panic(fmt.Sprintf("shmem: team %q lists world rank %d twice (team ranks %d and %d)", label, wr, prev, tr))
		}
		t.idx[wr] = tr
	}
	return t
}

// Size returns the team's member count.
func (t *Team) Size() int { return len(t.ranks) }

// Label returns the team's diagnostic name.
func (t *Team) Label() string { return t.label }

// WorldRank translates a team rank to its world rank.
func (t *Team) WorldRank(tr int) int {
	if tr < 0 || tr >= len(t.ranks) {
		panic(fmt.Sprintf("shmem: team %q rank %d out of range (size %d)", t.label, tr, len(t.ranks)))
	}
	return t.ranks[tr]
}

// TeamRank translates a world rank to this team's rank space; ok is
// false when the world rank is not a member.
func (t *Team) TeamRank(worldRank int) (tr int, ok bool) {
	tr, ok = t.idx[worldRank]
	return tr, ok
}

// PE returns the member at team rank tr, materializing it on first use.
func (t *Team) PE(tr int) *PE { return t.w.PE(t.WorldRank(tr)) }

// rankOf is the device-side translation: which team rank is this PE?
func (t *Team) rankOf(pe *PE) int {
	tr, ok := t.idx[pe.Rank]
	if !ok {
		panic(fmt.Sprintf("shmem: PE %d is not a member of team %q", pe.Rank, t.label))
	}
	return tr
}

// Split partitions the team by color, shmem_team_split_color-style:
// members with the same color form one new team, ordered by (key, old
// team rank); a negative color opts the member out of every new team.
// colors and keys are indexed by team rank and must match the team
// size. The returned teams are ordered by ascending color.
func (t *Team) Split(colors, keys []int) []*Team {
	if len(colors) != len(t.ranks) || len(keys) != len(t.ranks) {
		panic(fmt.Sprintf("shmem: Split on team %q (size %d) needs %d colors and keys, got %d and %d",
			t.label, len(t.ranks), len(t.ranks), len(colors), len(keys)))
	}
	type member struct{ key, tr int }
	groups := make(map[int][]member)
	for tr, c := range colors {
		if c < 0 {
			continue
		}
		groups[c] = append(groups[c], member{keys[tr], tr})
	}
	order := make([]int, 0, len(groups))
	for c := range groups {
		order = append(order, c)
	}
	sort.Ints(order)
	teams := make([]*Team, 0, len(order))
	for _, c := range order {
		ms := groups[c]
		sort.SliceStable(ms, func(i, j int) bool {
			if ms[i].key != ms[j].key {
				return ms[i].key < ms[j].key
			}
			return ms[i].tr < ms[j].tr
		})
		ranks := make([]int, len(ms))
		for i, m := range ms {
			ranks[i] = t.ranks[m.tr]
		}
		teams = append(teams, t.w.newTeam(fmt.Sprintf("%s/color%d", t.label, c), ranks))
	}
	return teams
}

// Strided carves out the members at team ranks start, start+stride,
// ... (size of them), shmem_team_split_strided-style.
func (t *Team) Strided(start, stride, size int) *Team {
	if start < 0 || stride < 1 || size < 1 {
		panic(fmt.Sprintf("shmem: Strided(start=%d, stride=%d, size=%d) on team %q: need start >= 0, stride >= 1, size >= 1",
			start, stride, size, t.label))
	}
	last := start + (size-1)*stride
	if last >= len(t.ranks) {
		panic(fmt.Sprintf("shmem: Strided(start=%d, stride=%d, size=%d) on team %q overruns team size %d",
			start, stride, size, t.label, len(t.ranks)))
	}
	ranks := make([]int, size)
	for i := range ranks {
		ranks[i] = t.ranks[start+i*stride]
	}
	return t.w.newTeam(fmt.Sprintf("%s/strided(%d,%d,%d)", t.label, start, stride, size), ranks)
}

// Without re-forms the team with the given world ranks removed — the
// fault-resilience primitive: a job whose node died shrinks its team
// around the hole and re-plans the collective on the survivors. The
// surviving members keep their relative order; their team ranks are
// renumbered densely. Panics if a listed rank is not a member or if
// nothing would survive.
func (t *Team) Without(worldRanks ...int) *Team {
	drop := make(map[int]bool, len(worldRanks))
	for _, wr := range worldRanks {
		if _, ok := t.idx[wr]; !ok {
			panic(fmt.Sprintf("shmem: Without(%d) on team %q: world rank %d is not a member", wr, t.label, wr))
		}
		drop[wr] = true
	}
	ranks := make([]int, 0, len(t.ranks)-len(drop))
	for _, wr := range t.ranks {
		if !drop[wr] {
			ranks = append(ranks, wr)
		}
	}
	return t.w.newTeam(fmt.Sprintf("%s/without%v", t.label, worldRanks), ranks)
}

// ensure materializes the team's barrier plumbing: symmetric flag space
// for the dissemination rounds and connections between every barrier
// pair. Host-side only (it allocates and connects); Run and every
// collective plan constructor call it, so device code always finds the
// team ready.
func (t *Team) ensure() {
	if t.built {
		return
	}
	size := len(t.ranks)
	t.rounds = 0
	for 1<<t.rounds < size {
		t.rounds++
	}
	// Two 8-byte parity slots per round, as in the world barrier: epoch
	// values alternate slots so a fast peer's round k+1 write cannot be
	// confused with a slow peer's round k value from the last epoch.
	t.dissOff = t.w.Malloc(uint64(16 * t.rounds))
	t.seqs = make([]uint64, size)
	for k := 0; k < t.rounds; k++ {
		for r := 0; r < size; r++ {
			t.w.Connect(t.ranks[r], t.ranks[(r+(1<<k))%size])
		}
	}
	t.built = true
}

// Barrier synchronizes the team's members with a dissemination barrier
// in team-rank space: ceil(log2 size) rounds, each an immediate put of
// the epoch to rank (tr + 2^k) mod size followed by a device-memory
// poll for the matching epoch from rank (tr - 2^k) mod size.
func (t *Team) Barrier(pe *PE, w *gpusim.Warp) {
	if !t.built {
		panic(fmt.Sprintf("shmem: team %q used before materialization; Team.Run and collective plans call ensure() host-side", t.label))
	}
	tr := t.rankOf(pe)
	t.seqs[tr]++
	seq := t.seqs[tr]
	par := uint64(8 * (seq & 1))
	size := len(t.ranks)
	for k := 0; k < t.rounds; k++ {
		peer := t.ranks[(tr+(1<<k))%size]
		slot := t.dissOff + uint64(16*k) + par
		pe.ep(peer).DevPutImm(w, seq, t.w.regions[peer], slot, 8, 0)
		pe.WaitUntil(w, slot, seq)
	}
}

// Run launches body on every member of the team (single block, 32
// threads, as World.Run) and drives the simulation until all complete.
// Only member nodes are materialized — on a big world, running a small
// team builds exactly the small team's slice of the machine.
func (t *Team) Run(body func(pe *PE, warp *gpusim.Warp)) {
	t.ensure()
	pes := make([]*PE, len(t.ranks))
	for i, wr := range t.ranks {
		pes[i] = t.w.PE(wr)
	}
	t.w.launch(pes, body)
}
