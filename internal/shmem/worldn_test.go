package shmem

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/topo"
	"putget/internal/transport"
)

// clusterParams keeps per-node footprints small so worlds of dozens of
// ranks stay cheap to build.
func clusterParams() cluster.Params {
	p := cluster.Default()
	p.GPUDevMemSize = 64 << 20
	p.HostRAMSize = 96 << 20
	return p
}

func newTestWorldN(k transport.Kind, spec topo.Spec, n int) *World {
	return NewWorldN(k, spec, n, clusterParams(), 1<<20)
}

// hostWriteU64s seeds a symmetric vector on one rank without sim time.
func hostWriteU64s(t *testing.T, pe *PE, off uint64, vals []uint64) {
	t.Helper()
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	if err := pe.HostWrite(off, buf); err != nil {
		t.Fatal(err)
	}
}

func hostReadU64s(t *testing.T, pe *PE, off uint64, n int) []uint64 {
	t.Helper()
	buf := make([]byte, 8*n)
	if err := pe.HostRead(off, buf); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return out
}

// The symmetric heap's bump pointer lives on the World (not per PE), so
// rank layouts cannot diverge by construction — a lazily-built rank must
// see exactly the offsets an eager one would have.
func TestMallocSymmetricAcrossLazyBuilds(t *testing.T) {
	w := newTestWorldN(transport.KindExtoll, topo.Spec{Kind: topo.Torus3D}, 4)
	defer w.Shutdown()
	a := w.Malloc(64)
	early := w.PE(1) // built before the second Malloc
	b := w.Malloc(16)
	late := w.PE(2) // built after both
	if a != 0 || b != 64 {
		t.Fatalf("offsets = %d, %d; want 0, 64", a, b)
	}
	if early.Addr(b)-early.heapBase != late.Addr(b)-late.heapBase {
		t.Fatal("symmetric offset differs between early- and late-built ranks")
	}
}

func TestBarrierAllSynchronizes(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		// 5 ranks: a non-power-of-two count exercises the mod-N wrap in the
		// dissemination schedule.
		w := newTestWorldN(k, topo.Spec{Kind: topo.FatTree}, 5)
		defer w.Shutdown()
		const rounds = 3
		exits := make([][rounds]int64, w.N())
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			for r := 0; r < rounds; r++ {
				// A different straggler every round.
				if pe.Rank == (r*2)%pe.N {
					warp.Proc().Sleep(30_000_000) // 30us
				}
				pe.BarrierAll(warp)
				exits[pe.Rank][r] = int64(warp.Now())
			}
		})
		floor := int64(0)
		for r := 0; r < rounds; r++ {
			floor += 30_000_000
			for rank := range exits {
				if exits[rank][r] < floor {
					t.Fatalf("round %d: rank %d exited at %dps, before the round's straggler arrived (floor %dps)", r, rank, exits[rank][r], floor)
				}
			}
		}
	})
}

func TestPutToGetFromQuietAll(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		w := newTestWorldN(k, topo.Spec{Kind: topo.Torus3D}, 6)
		defer w.Shutdown()
		w.Connect(0, 3)
		w.Connect(5, 3)
		src := w.Malloc(1024)
		dst := w.Malloc(1024)
		hostWriteU64s(t, w.PE(0), src, []uint64{11, 22, 33, 44})
		hostWriteU64s(t, w.PE(3), src, []uint64{77, 88})
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			switch pe.Rank {
			case 0:
				pe.PutTo(warp, 3, dst, src, 32)
				pe.QuietAll(warp)
				pe.PutImmTo(warp, 3, dst+32, 0xfeed)
				pe.QuietAll(warp)
			case 5:
				pe.GetFrom(warp, 3, dst, src, 16)
			}
		})
		got := hostReadU64s(t, w.PE(3), dst, 5)
		want := []uint64{11, 22, 33, 44, 0xfeed}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank 3 dst[%d] = %#x, want %#x", i, got[i], want[i])
			}
		}
		if got := hostReadU64s(t, w.PE(5), dst, 2); got[0] != 77 || got[1] != 88 {
			t.Fatalf("rank 5 get = %v, want [77 88]", got)
		}
	})
}

// verifyAllReduce seeds rank r's element i with r+i+1, runs the plan
// twice (reuse exercises the epoch/parity machinery), and checks every
// rank holds the doubled global sums.
func verifyAllReduce(t *testing.T, w *World, alg AllReduceAlg, count int) {
	t.Helper()
	n := w.N()
	vec := w.Malloc(uint64(8 * count))
	plan := w.NewAllReduce(alg, vec, count)
	for r := 0; r < n; r++ {
		vals := make([]uint64, count)
		for i := range vals {
			vals[i] = uint64(r + i + 1)
		}
		hostWriteU64s(t, w.PE(r), vec, vals)
	}
	w.Run(func(pe *PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	// sum over ranks of (r+i+1) = n*(i+1) + n(n-1)/2
	want := func(i int) uint64 { return uint64(n*(i+1) + n*(n-1)/2) }
	for r := 0; r < n; r++ {
		got := hostReadU64s(t, w.PE(r), vec, count)
		for i := range got {
			if got[i] != want(i) {
				t.Fatalf("%v: rank %d element %d = %d, want %d", alg, r, i, got[i], want(i))
			}
		}
	}
	// Second invocation on the same plan: vectors now hold the first
	// round's sums, so the result must be n times those.
	w.Run(func(pe *PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	for r := 0; r < n; r++ {
		got := hostReadU64s(t, w.PE(r), vec, count)
		for i := range got {
			if got[i] != uint64(n)*want(i) {
				t.Fatalf("%v reuse: rank %d element %d = %d, want %d", alg, r, i, got[i], uint64(n)*want(i))
			}
		}
	}
}

func TestAllReduceSmallRankCounts(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		for _, n := range []int{4, 8, 16} {
			n := n
			t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
				w := newTestWorldN(k, topo.Spec{Kind: topo.Torus3D}, n)
				defer w.Shutdown()
				verifyAllReduce(t, w, Ring, 2*n)
				verifyAllReduce(t, w, RecursiveDoubling, 16)
			})
		}
	})
}

// Non-power-of-two recursive doubling: the pre/post-fold must produce
// correct sums for every survivor-count shape — odd sizes, rem == size/2
// extremes (3, 6, 12), and sizes one away from a power of two (5, 7).
func TestAllReduceRecursiveDoublingAnySize(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		for _, n := range []int{3, 5, 6, 7, 12} {
			n := n
			t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
				w := newTestWorldN(k, topo.Spec{Kind: topo.FatTree}, n)
				defer w.Shutdown()
				verifyAllReduce(t, w, RecursiveDoubling, 16)
			})
		}
	})
}

// The tentpole acceptance bar: allreduce must verify at >= 64 simulated
// ranks on both topologies over both fabrics.
func TestAllReduce64Ranks(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		for _, kind := range []topo.Kind{topo.FatTree, topo.Torus3D} {
			kind := kind
			t.Run(kind.String(), func(t *testing.T) {
				w := newTestWorldN(k, topo.Spec{Kind: kind}, 64)
				defer w.Shutdown()
				verifyAllReduce(t, w, Ring, 64)
			})
		}
	})
}

func TestAllReduceRejectsBadShapes(t *testing.T) {
	w := newTestWorldN(transport.KindExtoll, topo.Spec{Kind: topo.Torus3D}, 6)
	defer w.Shutdown()
	vec := w.Malloc(8 * 8)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("ring count", func() { w.NewAllReduce(Ring, vec, 8) }) // 8 % 6 != 0
	// Recursive doubling accepts any team size since the pre/post-fold
	// generalization (TestAllReduceRecursiveDoublingAnySize); the only
	// remaining shape error is the ring divisibility rule above.
}

func TestAllToAll(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		const n = 8
		const chunkW = 4
		w := newTestWorldN(k, topo.Spec{Kind: topo.FatTree}, n)
		defer w.Shutdown()
		src := w.Malloc(8 * chunkW * n)
		dst := w.Malloc(8 * chunkW * n)
		plan := w.NewAllToAll(src, dst, 8*chunkW)
		for r := 0; r < n; r++ {
			vals := make([]uint64, chunkW*n)
			for d := 0; d < n; d++ {
				for i := 0; i < chunkW; i++ {
					vals[d*chunkW+i] = uint64(r)<<16 | uint64(d)<<8 | uint64(i)
				}
			}
			hostWriteU64s(t, w.PE(r), src, vals)
		}
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			plan.Run(pe, warp)
		})
		for d := 0; d < n; d++ {
			got := hostReadU64s(t, w.PE(d), dst, chunkW*n)
			for r := 0; r < n; r++ {
				for i := 0; i < chunkW; i++ {
					want := uint64(r)<<16 | uint64(d)<<8 | uint64(i)
					if got[r*chunkW+i] != want {
						t.Fatalf("rank %d slot %d word %d = %#x, want %#x", d, r, i, got[r*chunkW+i], want)
					}
				}
			}
		}
	})
}

func TestHaloExchange(t *testing.T) {
	forBothFabrics(t, func(t *testing.T, k transport.Kind) {
		// 2x3x2 = 12 ranks: one axis of extent 2 (both directions hit the
		// same neighbour) and none degenerate.
		dims := [3]int{2, 3, 2}
		const faceW = 8
		w := newTestWorldN(k, topo.Spec{Kind: topo.Torus3D}, 12)
		defer w.Shutdown()
		plan := w.NewHalo(dims, 8*faceW)
		for r := 0; r < 12; r++ {
			for d := 0; d < 6; d++ {
				vals := make([]uint64, faceW)
				for i := range vals {
					vals[i] = uint64(r)<<16 | uint64(d)<<8 | uint64(i)
				}
				hostWriteU64s(t, w.PE(r), plan.SendOff(d), vals)
			}
		}
		w.Run(func(pe *PE, warp *gpusim.Warp) {
			plan.Run(pe, warp)
		})
		for r := 0; r < 12; r++ {
			for d := 0; d < 6; d++ {
				// The face received from direction d was sent by that
				// neighbour in the opposite direction.
				nb := plan.neighbor(r, d)
				got := hostReadU64s(t, w.PE(r), plan.RecvOff(d), faceW)
				for i := range got {
					want := uint64(nb)<<16 | uint64(haloOpp(d))<<8 | uint64(i)
					if got[i] != want {
						t.Fatalf("rank %d recv dir %d word %d = %#x, want %#x (from rank %d)", r, d, i, got[i], want, nb)
					}
				}
			}
		}
	})
}

func TestUnconnectedRanksPanicWithGuidance(t *testing.T) {
	w := newTestWorldN(transport.KindExtoll, topo.Spec{Kind: topo.Torus3D}, 8)
	defer w.Shutdown()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for unconnected ranks")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "World.Connect") {
			t.Fatalf("panic %q does not point at World.Connect", msg)
		}
	}()
	// A fresh world has no connections at all (the root team's barrier
	// graph materializes at first Run), so this must panic.
	w.PE(0).ep(3)
}
