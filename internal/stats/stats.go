// Package stats provides the small numeric helpers the benchmark harness
// needs: central tendencies over iteration samples and rate conversions.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (0 for empty input). The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using the
// nearest-rank method on a sorted copy: the smallest element with at
// least p% of the sample at or below it, rank = ceil(p/100·n). (A plain
// truncation here would bias every percentile one element high — P50 of
// an even-length sample would land on the upper middle element and
// disagree with Median.)
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := nearestRank(p, len(cp))
	return cp[rank]
}

// nearestRank maps a percentile to its 0-based nearest-rank index,
// ceil(p/100·n)-1. The epsilon keeps exact boundaries stable: in floats
// 0.999·1000 lands a hair above 999 and a bare Ceil would overshoot the
// rank by one.
func nearestRank(p float64, n int) int {
	rank := int(math.Ceil(p/100*float64(n)-1e-9)) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}

// P99 returns the 99th percentile of xs.
func P99(xs []float64) float64 { return Percentile(xs, 99) }

// P999 returns the 99.9th percentile of xs — the serving-workload tail
// column. With fewer than 1000 samples nearest-rank makes it the sample
// maximum, which is the honest reading at that sample size.
func P999(xs []float64) float64 { return Percentile(xs, 99.9) }

// PercentileMulti returns the nearest-rank percentile for each requested
// p over one shared sort of xs — agreeing element-for-element with
// Percentile but paying the O(n log n) once for a whole latency column
// set. Empty input yields zeros.
func PercentileMulti(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	for i, p := range ps {
		switch {
		case p <= 0:
			out[i] = cp[0]
		case p >= 100:
			out[i] = cp[len(cp)-1]
		default:
			out[i] = cp[nearestRank(p, len(cp))]
		}
	}
	return out
}
