package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even Median = %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if Percentile(xs, 0) != 10 || Percentile(xs, 100) != 50 {
		t.Fatal("percentile bounds wrong")
	}
	if got := Percentile(xs, 50); got != 30 {
		t.Fatalf("P50 = %v", got)
	}
}

// The truncation bug made even-length P50 land on the upper middle
// element; nearest-rank must pick the lower one.
func TestPercentileEvenLengthNearestRank(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 50); got != 20 {
		t.Fatalf("even P50 = %v, want 20 (nearest rank ceil(0.5*4)-1)", got)
	}
	if got := Percentile(xs, 25); got != 10 {
		t.Fatalf("P25 = %v, want 10", got)
	}
	if got := Percentile(xs, 75); got != 30 {
		t.Fatalf("P75 = %v, want 30", got)
	}
	if got := Percentile(xs, 76); got != 40 {
		t.Fatalf("P76 = %v, want 40", got)
	}
}

// Property: Percentile agrees with Median — exactly for odd lengths, and
// within the middle pair for even lengths (nearest-rank P50 is the lower
// middle element, the median averages the pair).
func TestPercentileMedianConsistencyProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p50, md := Percentile(xs, 50), Median(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		n := len(sorted)
		if n%2 == 1 {
			return p50 == md
		}
		lo, hi := sorted[n/2-1], sorted[n/2]
		return p50 == lo && lo <= md && md <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p and pinned to Min/Max at the ends.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, 0) == Min(xs) &&
			Percentile(xs, 100) == Max(xs) &&
			Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PercentileMulti agrees element-for-element with Percentile
// for arbitrary inputs and percentile lists, does not mutate its input,
// and yields all zeros for an empty sample.
func TestPercentileMultiMatchesSingleProperty(t *testing.T) {
	f := func(raw []int16, rawPs []uint8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		ps := make([]float64, len(rawPs))
		for i, v := range rawPs {
			ps[i] = float64(v) * 100 / 255 // cover [0,100] incl. fractional p
		}
		before := append([]float64(nil), xs...)
		got := PercentileMulti(xs, ps...)
		if len(got) != len(ps) {
			return false
		}
		for i, p := range ps {
			if got[i] != Percentile(xs, p) {
				return false
			}
		}
		for i := range xs {
			if xs[i] != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// P99/P999 are nearest-rank: below 100 (resp. 1000) samples they read
// the sample maximum; at the boundary they step to the next rank down.
func TestTailPercentileSmallSamples(t *testing.T) {
	small := []float64{3, 1, 2}
	if P99(small) != 3 || P999(small) != 3 {
		t.Fatalf("tail of 3 samples = %v/%v, want the max", P99(small), P999(small))
	}
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i) // 0..999
	}
	if got := P99(xs); got != 989 {
		t.Fatalf("P99 of 0..999 = %v, want 989 (rank ceil(0.99*1000)-1)", got)
	}
	if got := P999(xs); got != 998 {
		t.Fatalf("P999 of 0..999 = %v, want 998 (rank ceil(0.999*1000)-1)", got)
	}
	multi := PercentileMulti(xs, 50, 99, 99.9)
	if multi[0] != 499 || multi[1] != 989 || multi[2] != 998 {
		t.Fatalf("PercentileMulti(50,99,99.9) = %v", multi)
	}
	if got := PercentileMulti(nil, 50, 99); got[0] != 0 || got[1] != 0 {
		t.Fatalf("PercentileMulti(nil) = %v, want zeros", got)
	}
}

// Property: Min ≤ Median ≤ Max and Min ≤ Mean ≤ Max for any input.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		mn, md, mx, me := Min(xs), Median(xs), Max(xs), Mean(xs)
		return mn <= md && md <= mx && mn <= me && me <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Median of a sorted slice equals the direct middle element(s).
func TestMedianAgainstSort(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		got := Median(xs)
		sort.Float64s(xs)
		var want float64
		if len(xs)%2 == 1 {
			want = xs[len(xs)/2]
		} else {
			want = (xs[len(xs)/2-1] + xs[len(xs)/2]) / 2
		}
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
