package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even Median = %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if Percentile(xs, 0) != 10 || Percentile(xs, 100) != 50 {
		t.Fatal("percentile bounds wrong")
	}
	if got := Percentile(xs, 50); got != 30 {
		t.Fatalf("P50 = %v", got)
	}
}

// The truncation bug made even-length P50 land on the upper middle
// element; nearest-rank must pick the lower one.
func TestPercentileEvenLengthNearestRank(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 50); got != 20 {
		t.Fatalf("even P50 = %v, want 20 (nearest rank ceil(0.5*4)-1)", got)
	}
	if got := Percentile(xs, 25); got != 10 {
		t.Fatalf("P25 = %v, want 10", got)
	}
	if got := Percentile(xs, 75); got != 30 {
		t.Fatalf("P75 = %v, want 30", got)
	}
	if got := Percentile(xs, 76); got != 40 {
		t.Fatalf("P76 = %v, want 40", got)
	}
}

// Property: Percentile agrees with Median — exactly for odd lengths, and
// within the middle pair for even lengths (nearest-rank P50 is the lower
// middle element, the median averages the pair).
func TestPercentileMedianConsistencyProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p50, md := Percentile(xs, 50), Median(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		n := len(sorted)
		if n%2 == 1 {
			return p50 == md
		}
		lo, hi := sorted[n/2-1], sorted[n/2]
		return p50 == lo && lo <= md && md <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p and pinned to Min/Max at the ends.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, 0) == Min(xs) &&
			Percentile(xs, 100) == Max(xs) &&
			Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Min ≤ Median ≤ Max and Min ≤ Mean ≤ Max for any input.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		mn, md, mx, me := Min(xs), Median(xs), Max(xs), Mean(xs)
		return mn <= md && md <= mx && mn <= me && me <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Median of a sorted slice equals the direct middle element(s).
func TestMedianAgainstSort(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		got := Median(xs)
		sort.Float64s(xs)
		var want float64
		if len(xs)%2 == 1 {
			want = xs[len(xs)/2]
		} else {
			want = (xs[len(xs)/2-1] + xs[len(xs)/2]) / 2
		}
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
