package kv

import (
	"putget/internal/faults"
	"putget/internal/sim"
)

// target records one send of the current attempt: which preference-list
// slot it should satisfy and which connection (replica) it went to — the
// two differ for hinted writes.
type target struct {
	member int // index into the key's preference list
	conn   int // replica that physically received the message
}

// request is the coordinator-side state of one client operation.
type request struct {
	id       uint64
	isPut    bool
	key      int
	ver      uint64
	writer   uint64
	val      uint64
	attempt  int
	start    sim.Time
	done     bool
	rerouted bool
	got      int
	acked    []bool // per preference-list slot
	reps     []rec  // get replies, valid where acked
	targets  []target
	span     sim.SpanID

	// deadline is the current attempt's timeout; it stays armed after
	// quorum completion while any target is still silent (stragglers feed
	// the failure detector) and is cancelled once every target has acked.
	// retry is the pending backoff rearm; completion cancels it. Both were
	// previously plain After closures that sat dead in the event queue,
	// retaining the request and inflating Pending until their instants.
	deadline sim.Timer
	retry    sim.Timer
}

// coordinator is the client-side request router: it assigns versions,
// fans attempts out to preference lists, counts quorums, detects down
// replicas from consecutive missed deadlines, reroutes writes as hints,
// probes for recovery, and triggers hint flushes and read-repair. It is
// purely event-driven — control decisions charge no CPU time (the timed
// work is in the per-connection tx/rx procs) — and all its randomness
// comes from one seeded stream consumed in engine order.
type coordinator struct {
	cfg   Config
	e     *sim.Engine
	m     *Metrics
	s     *server
	ring  *Ring
	prefs [][]int // preference list per key

	latest    []uint64 // per-key version counter
	alive     []bool
	misses    []int
	hintCount [][]int // [holder][target]: hinted writes routed but not yet flushed

	reqs   map[uint64]*request // id → in-flight request; lookups only, never ranged
	nextID uint64
	rng    *faults.Splitmix64
	tEnd   sim.Time
}

func newCoordinator(s *server) *coordinator {
	cfg := s.cfg
	c := &coordinator{
		cfg:       cfg,
		e:         s.e,
		m:         s.m,
		s:         s,
		ring:      NewRing(cfg.Replicas, cfg.VNodes, cfg.RF, cfg.Seed),
		prefs:     make([][]int, cfg.Keys),
		latest:    make([]uint64, cfg.Keys),
		alive:     make([]bool, cfg.Replicas),
		misses:    make([]int, cfg.Replicas),
		hintCount: make([][]int, cfg.Replicas),
		reqs:      make(map[uint64]*request),
		rng:       faults.NewSplitmix64(faults.DeriveSeed(cfg.Seed, 0xc0ffee)),
		tEnd:      s.tEnd,
	}
	for k := range c.prefs {
		c.prefs[k] = c.ring.Pref(k)
	}
	for r := range c.alive {
		c.alive[r] = true
		c.hintCount[r] = make([]int, cfg.Replicas)
	}
	return c
}

// launch starts one client request (runs in event context at its arrival
// instant).
func (c *coordinator) launch(a arrival) {
	c.m.Requests++
	c.nextID++
	req := &request{
		id:     c.nextID,
		isPut:  a.isPut,
		key:    a.key,
		start:  c.e.Now(),
		writer: uint64(a.client + 1),
	}
	if a.isPut {
		c.latest[a.key]++
		req.ver = c.latest[a.key]
		req.val = req.id
	}
	pref := c.prefs[a.key]
	req.acked = make([]bool, len(pref))
	req.reps = make([]rec, len(pref))
	c.reqs[req.id] = req
	var route sim.SpanID
	if c.e.Observing() {
		route = c.e.SpanOpen("a.kv", "kv.route")
		req.span = c.e.SpanOpen("a.kv", "kv.quorum")
	}
	req.attempt = 1
	c.attempt(req)
	c.e.SpanClose(route)
}

// attempt sends the current round to every unsatisfied preference-list
// member — directly when alive, as a hinted write to a fallback when
// down — and arms the attempt deadline.
func (c *coordinator) attempt(req *request) {
	pref := c.prefs[req.key]
	req.targets = req.targets[:0]
	var fallbacks []int
	for i, mbr := range pref {
		if req.acked[i] {
			continue
		}
		conn := mbr
		flg := uint64(0)
		if !c.alive[mbr] {
			if !req.rerouted {
				req.rerouted = true
				c.m.Rerouted++
			}
			if !req.isPut {
				// Reads are preference-list-only: a fallback has no
				// authoritative copy to serve.
				continue
			}
			fb := c.fallback(req.key, fallbacks)
			if fb < 0 {
				continue // no healthy fallback; the retry/deadline budget decides
			}
			fallbacks = append(fallbacks, fb)
			conn = fb
			flg = flagHinted
			c.hintCount[fb][mbr]++
		}
		op := opGet
		if req.isPut {
			op = opPut
		}
		c.send(conn, wireMsg{
			id: req.id, op: op, key: uint64(req.key),
			ver: req.ver, writer: req.writer, val: req.val,
			aux: uint64(mbr), flg: flg,
		})
		req.targets = append(req.targets, target{member: i, conn: conn})
	}
	n := req.attempt
	req.deadline = c.e.AfterTimer(c.cfg.AttemptTimeout, func() { c.onTimeout(req, n) })
}

// fallback picks the hint holder for a down member: the next ring
// replica outside the key's preference list that is alive and not
// already holding a hint for this attempt.
func (c *coordinator) fallback(key int, used []int) int {
	pref := c.prefs[key]
	chosen := -1
	c.ring.Walk(key, func(r int) bool {
		for _, p := range pref {
			if r == p {
				return true
			}
		}
		for _, u := range used {
			if r == u {
				return true
			}
		}
		if !c.alive[r] {
			return true
		}
		chosen = r
		return false
	})
	return chosen
}

// send queues a message on a connection's tx proc.
func (c *coordinator) send(conn int, m wireMsg) {
	c.s.conns[conn].txq.Send(m)
}

// onTimeout fires at an attempt deadline. Straggler accounting runs
// even when the quorum already completed the request — a W-of-RF write
// masks a dark replica, and without member-level misses the failure
// detector would never see it. Stale deadlines (a later attempt already
// armed) are ignored entirely.
func (c *coordinator) onTimeout(req *request, n int) {
	if req.attempt != n {
		return
	}
	missed := false
	for _, t := range req.targets {
		if !req.acked[t.member] {
			missed = true
			c.miss(t.conn)
		}
	}
	if missed {
		c.m.Timeouts++
	}
	if req.done {
		return
	}
	if req.attempt > c.cfg.MaxRetries {
		req.done = true
		c.m.QuorumFails++
		c.e.SpanClose(req.span)
		return
	}
	req.attempt++
	c.m.Retries++
	back := c.cfg.BackoffBase << uint(req.attempt-2)
	back += sim.Duration(c.rng.Float64() * float64(c.cfg.BackoffBase/2))
	req.retry = c.e.AfterTimer(back, func() {
		if !req.done {
			c.attempt(req)
		}
	})
}

// miss charges one missed deadline against a replica; DownAfter
// consecutive misses mark it down and start the recovery prober.
func (c *coordinator) miss(r int) {
	if !c.alive[r] {
		return
	}
	c.misses[r]++
	if c.misses[r] >= c.cfg.DownAfter {
		c.alive[r] = false
		c.schedulePing(r)
	}
}

// schedulePing probes a down replica every PingEvery until it answers or
// the run ends; any reply flips it back up via markAlive.
func (c *coordinator) schedulePing(r int) {
	c.e.After(c.cfg.PingEvery, func() {
		if c.alive[r] || c.e.Now() >= c.tEnd {
			return
		}
		c.m.Pings++
		c.send(r, wireMsg{op: opPing, aux: uint64(r)})
		c.schedulePing(r)
	})
}

// markAlive records evidence of life from replica r. On a down→up
// transition it tells every hint holder to flush r's queued writes home;
// the flush travels the holder's ordered connection, so it cannot
// overtake any hint routed before it.
func (c *coordinator) markAlive(r int) {
	c.misses[r] = 0
	if c.alive[r] {
		return
	}
	c.alive[r] = true
	for h := range c.hintCount {
		if c.hintCount[h][r] > 0 {
			c.hintCount[h][r] = 0
			c.send(h, wireMsg{op: opFlush, aux: uint64(r), flg: flagNoReply})
		}
	}
}

// onReply is called by the rx procs with each reply landing on conn
// replier. aux names the preference-list member the reply satisfies.
func (c *coordinator) onReply(replier int, m wireMsg) {
	c.markAlive(replier)
	if m.op == opPingRep {
		return
	}
	req := c.reqs[m.id]
	if req == nil {
		return
	}
	pref := c.prefs[req.key]
	idx := -1
	for i, mbr := range pref {
		if uint64(mbr) == m.aux {
			idx = i
			break
		}
	}
	if idx < 0 || req.acked[idx] {
		return
	}
	req.acked[idx] = true
	if req.done {
		// Late ack on a completed request: recorded so the still-armed
		// deadline does not charge this replica a spurious miss.
		c.maybeDisarm(req)
		return
	}
	req.got++
	switch m.op {
	case opPutAck:
		if req.isPut && req.got >= c.cfg.W {
			c.complete(req)
		}
	case opGetRep:
		req.reps[idx] = rec{ver: m.ver, writer: m.writer, val: m.val}
		if !req.isPut && req.got >= c.cfg.R {
			c.finishGet(req)
		}
	}
	if req.done {
		c.maybeDisarm(req)
	}
}

// maybeDisarm cancels a completed request's attempt deadline once every
// target of the current attempt has acked: with no straggler left to
// charge, the timeout would be a pure no-op, so removing it is
// observation-equivalent and keeps the event queue free of tombstones.
func (c *coordinator) maybeDisarm(req *request) {
	for _, t := range req.targets {
		if !req.acked[t.member] {
			return
		}
	}
	req.deadline.Cancel()
}

// finishGet resolves a read quorum: the newest record under LWW wins,
// and every replier that served something older is sent a read-repair
// write.
func (c *coordinator) finishGet(req *request) {
	var win rec
	for i := range req.reps {
		if req.acked[i] && req.reps[i].newer(win) {
			win = req.reps[i]
		}
	}
	if win.ver > 0 {
		pref := c.prefs[req.key]
		for i, mbr := range pref {
			if req.acked[i] && win.newer(req.reps[i]) {
				c.m.Repairs++
				c.send(mbr, wireMsg{
					op: opPut, key: uint64(req.key),
					ver: win.ver, writer: win.writer, val: win.val,
					aux: uint64(mbr), flg: flagNoReply | flagRepair,
				})
			}
		}
	}
	c.complete(req)
}

// complete finishes a successful request and records its latency. The
// request stays in the map: late replies must still find it to record
// their acks (the map is bounded by the cell's total request count and
// only ever looked up by id, never ranged).
func (c *coordinator) complete(req *request) {
	req.done = true
	req.retry.Cancel() // a pending backoff would only re-check done and bail
	c.m.Ok++
	c.m.Latencies = append(c.m.Latencies, c.e.Now().Sub(req.start).Microseconds())
	c.e.SpanClose(req.span)
}
