package kv

import (
	"fmt"
	"math"
	"sort"

	"putget/internal/cluster"
	"putget/internal/faults"
	"putget/internal/hostsim"
	"putget/internal/memspace"
	"putget/internal/sim"
	"putget/internal/transport"
)

// Replica-side cost model: the storage engine is deliberately coarse —
// the paper's put/get fabric is the object of study, the KV engine just
// has to cost something plausible per operation.
const (
	applyCost   = 300 * sim.Nanosecond // per handled message (lookup + LWW merge)
	handoffCost = 300 * sim.Nanosecond // per hinted record flushed home
	prepostN    = 512                  // arrival slots preposted per connection side
)

// arrival is one precomputed client request, scheduled before the load
// phase starts so the offered-load schedule is independent of anything
// the protocol does.
type arrival struct {
	at     sim.Duration // offset from load start
	client int
	isPut  bool
	key    int
}

// conn is one coordinator↔replica connection: endpoints, the tx mailbox,
// and the four monotone slot cursors. Slots are never reused — buffers
// are sized for the worst-case message count — so the i-th remote
// completion on a side always pairs with slot i (the fabric's reliability
// protocol delivers exactly-once in order, and IB completions carry the
// immediate while EXTOLL's carry nothing, so cursor demux is the only
// portable scheme).
type conn struct {
	idx  int
	a, b transport.Endpoint
	txq  *sim.Chan[wireMsg]

	txCur  int // next A-side request slot to write
	rxCur  int // next A-side reply slot to reap
	btxCur int // next B-side reply slot to write
	brxCur int // next B-side request slot to reap
}

// server wires one serving cell together: buffers, connections, replica
// stores, and the shared metrics block.
type server struct {
	cfg  Config
	e    *sim.Engine
	cpuA *hostsim.CPU
	cpuB *hostsim.CPU

	conns  []*conn
	coord  *coordinator
	stores []*replicaStore
	m      *Metrics

	t0, tEnd  sim.Time
	outage    []faults.Window // absolute per-replica outage window
	hasOutage []bool
	dead      []bool // replica died permanently (open-ended outage)

	capSlots  int
	slotBytes int

	aTx, aRx, bRx, bTx     memspace.Addr
	aTxR, aRxR, bRxR, bTxR transport.Region
}

// off locates slot s of connection c inside each of the four buffers
// (they share one layout).
func (s *server) off(c, slot int) uint64 {
	return uint64((c*s.capSlots + slot) * s.slotBytes)
}

// fitKVParams shrinks the simulated memories to what a serving cell
// needs; testbeds are rebuilt per cell and Go would otherwise touch
// hundreds of megabytes of zeroed pages each time.
func fitKVParams(p cluster.Params) cluster.Params {
	if need := uint64(64 << 20); p.GPUDevMemSize > need {
		p.GPUDevMemSize = need
	}
	if need := uint64(64 << 20); p.HostRAMSize > need {
		p.HostRAMSize = need
	}
	return p
}

// Run executes one serving cell on fabric kind k and returns its
// metrics. The cell owns an isolated engine and testbed, so cells can
// shard freely across runner workers.
func Run(k transport.Kind, p cluster.Params, cfg Config) Metrics {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if k == transport.KindExtoll && cfg.Replicas > p.ExtPorts {
		panic(fmt.Sprintf("kv: %d replicas exceed the %d EXTOLL ports", cfg.Replicas, p.ExtPorts))
	}
	p = fitKVParams(p)
	var tb *cluster.Testbed
	if k == transport.KindExtoll {
		tb = cluster.NewExtollPair(p)
	} else {
		tb = cluster.NewIBPair(p)
	}
	defer tb.Shutdown()
	if cfg.Observer != nil {
		tb.E.SetObserver(cfg.Observer)
	}
	tr := transport.New(k, tb)

	s := newServer(tr, cfg)

	// Phase 1: prepost arrival slots on every connection side (one setup
	// proc per connection so the virtual setup cost is parallel), then run
	// to quiescence. Load starts on a clean testbed at t0.
	for _, c := range s.conns {
		c := c
		tb.E.Spawn(fmt.Sprintf("kv.setup%d", c.idx), func(p *sim.Proc) {
			c.a.HostPrepostArrivals(p, prepostN)
			c.b.HostPrepostArrivals(p, prepostN)
		})
	}
	tb.E.Run()
	t0 := tb.E.Now()

	// Phase 2: the whole offered-load schedule is precomputed, so the end
	// of the run is known before the first request fires — every loop in
	// the cell is bounded by tEnd.
	arrivals := buildArrivals(cfg)
	var tLast sim.Duration
	for _, a := range arrivals {
		if a.at > tLast {
			tLast = a.at
		}
	}
	s.t0 = t0
	s.tEnd = t0.Add(tLast + cfg.Drain)
	for _, o := range cfg.Outages {
		w := faults.Window{Start: t0.Add(o.Start)}
		if o.Dur > 0 {
			w.End = t0.Add(o.Start + o.Dur)
		}
		s.outage[o.Replica] = w
		s.hasOutage[o.Replica] = true
	}
	s.coord = newCoordinator(s)

	for _, c := range s.conns {
		c := c
		tb.E.Spawn(fmt.Sprintf("a.kv.tx%d", c.idx), func(p *sim.Proc) { s.txLoop(p, c) })
		tb.E.Spawn(fmt.Sprintf("a.kv.rx%d", c.idx), func(p *sim.Proc) { s.rxLoop(p, c) })
		tb.E.Spawn(fmt.Sprintf("b.kv.rep%d", c.idx), func(p *sim.Proc) { s.replicaLoop(p, c) })
	}
	tb.E.Spawn("kv.monitor", func(p *sim.Proc) { s.monitorLoop(p) })
	for _, a := range arrivals {
		a := a
		tb.E.At(t0.Add(a.at), func() { s.coord.launch(a) })
	}
	tb.E.Run()

	m := *s.m
	m.Elapsed = s.tEnd.Sub(t0)
	m.Events = tb.E.Executed()
	return m
}

// newServer allocates the shmem-style buffer layout and opens one
// connection per replica. Host RAM holds four symmetric buffers — A's
// request staging and reply landing, B's request landing and reply
// staging — each split into per-connection segments of capSlots slots.
func newServer(tr transport.Transport, cfg Config) *server {
	tb := tr.Testbed()
	s := &server{
		cfg:       cfg,
		e:         tb.E,
		cpuA:      tb.A.CPU,
		cpuB:      tb.B.CPU,
		conns:     make([]*conn, cfg.Replicas),
		stores:    make([]*replicaStore, cfg.Replicas),
		m:         &Metrics{},
		outage:    make([]faults.Window, cfg.Replicas),
		hasOutage: make([]bool, cfg.Replicas),
		dead:      make([]bool, cfg.Replicas),
		slotBytes: cfg.SlotBytes,
	}
	// Worst-case slots per connection: every attempt of every request can
	// route at most one message to a given replica, plus pings, flushes
	// and read-repairs; replies mirror requests one-for-one. The margin
	// covers the probe/flush/repair traffic.
	s.capSlots = cfg.Clients*cfg.PerClient*(cfg.MaxRetries+2) + 4096
	seg := uint64(s.capSlots * cfg.SlotBytes)
	total := seg * uint64(cfg.Replicas)
	s.aTx = tb.A.AllocHost(total)
	s.aRx = tb.A.AllocHost(total)
	s.bRx = tb.B.AllocHost(total)
	s.bTx = tb.B.AllocHost(total)
	s.aTxR = tr.Register(tb.A, s.aTx, total)
	s.aRxR = tr.Register(tb.A, s.aRx, total)
	s.bRxR = tr.Register(tb.B, s.bRx, total)
	s.bTxR = tr.Register(tb.B, s.bTx, total)
	hint := transport.ConnHint{SendEntries: 1024, RecvEntries: 2 * prepostN, CompEntries: 1024}
	for r := 0; r < cfg.Replicas; r++ {
		a, b := tr.Connect(r, hint)
		s.conns[r] = &conn{idx: r, a: a, b: b, txq: sim.NewChan[wireMsg](tb.E)}
		s.stores[r] = newReplicaStore(cfg.Keys, cfg.Replicas)
	}
	return s
}

// buildArrivals precomputes every client's open-loop schedule: seeded
// exponential interarrival gaps, a put/get coin, and a Zipf-skewed key
// draw, one independent splitmix64 stream per client.
func buildArrivals(cfg Config) []arrival {
	cdf := zipfCDF(cfg.Keys, cfg.Zipf)
	out := make([]arrival, 0, cfg.Clients*cfg.PerClient)
	for cl := 0; cl < cfg.Clients; cl++ {
		rng := faults.NewSplitmix64(faults.DeriveSeed(cfg.Seed, 0x10000+uint64(cl)))
		var t sim.Duration
		for i := 0; i < cfg.PerClient; i++ {
			t += sim.Duration(-math.Log(1-rng.Float64()) * float64(cfg.MeanGap))
			out = append(out, arrival{
				at:     t,
				client: cl,
				isPut:  rng.Float64() < cfg.PutFrac,
				key:    zipfDraw(cdf, rng.Float64()),
			})
		}
	}
	return out
}

// zipfCDF tabulates the cumulative distribution of a Zipf(s) draw over n
// keys (key 0 hottest).
func zipfCDF(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		w[k] = 1 / math.Pow(float64(k+1), s)
		sum += w[k]
	}
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += w[k] / sum
		w[k] = acc
	}
	w[n-1] = 1
	return w
}

func zipfDraw(cdf []float64, u float64) int {
	return sort.SearchFloat64s(cdf, u)
}

// txLoop drains one connection's tx mailbox: encode into the next
// staging slot, one put with a remote completion. It parks on the
// mailbox between messages and is reaped by the testbed shutdown.
func (s *server) txLoop(p *sim.Proc, c *conn) {
	scratch := make([]byte, s.slotBytes)
	for {
		m := c.txq.Recv(p)
		if c.txCur >= s.capSlots {
			panic("kv: tx slots exhausted")
		}
		off := s.off(c.idx, c.txCur)
		c.txCur++
		m.encode(scratch)
		s.cpuA.Write(p, s.aTx+memspace.Addr(off), scratch)
		c.a.HostPut(p, s.aTxR, off, s.bRxR, off, s.slotBytes, transport.FlagRemoteComp)
	}
}

// rxLoop reaps replies on one connection until the run ends, feeding the
// coordinator and replenishing one arrival slot per completion.
func (s *server) rxLoop(p *sim.Proc, c *conn) {
	scratch := make([]byte, s.slotBytes)
	for {
		now := p.Now()
		if now >= s.tEnd {
			return
		}
		if _, ok := c.a.HostWaitCompleteTimeout(p, transport.CompRemote, s.tEnd.Sub(now)); !ok {
			continue
		}
		if c.rxCur >= s.capSlots {
			panic("kv: rx slots exhausted")
		}
		off := s.off(c.idx, c.rxCur)
		c.rxCur++
		s.cpuA.Read(p, s.aRx+memspace.Addr(off), scratch)
		c.a.HostPrepostArrivals(p, 1)
		s.coord.onReply(c.idx, decodeMsg(scratch))
	}
}

// replicaLoop is one replica's server thread: reap a request, run the
// storage engine, reply. Outage windows model replica failure above the
// fabric — the thread simply stops reaping (a bounded window is a
// blackout it sleeps through; an open-ended one is death).
func (s *server) replicaLoop(p *sim.Proc, c *conn) {
	r := c.idx
	st := s.stores[r]
	scratch := make([]byte, s.slotBytes)
	for {
		now := p.Now()
		if now >= s.tEnd {
			return
		}
		if s.hasOutage[r] {
			w := s.outage[r]
			if w.Contains(now) {
				if w.End == 0 {
					s.dead[r] = true
					return
				}
				p.SleepUntil(w.End)
				continue
			}
		}
		wait := s.tEnd.Sub(now)
		if s.hasOutage[r] {
			if w := s.outage[r]; now < w.Start {
				if d := w.Start.Sub(now); d < wait {
					wait = d
				}
			}
		}
		if _, ok := c.b.HostWaitCompleteTimeout(p, transport.CompRemote, wait); !ok {
			continue
		}
		if c.brxCur >= s.capSlots {
			panic("kv: request slots exhausted")
		}
		off := s.off(r, c.brxCur)
		c.brxCur++
		s.cpuB.Read(p, s.bRx+memspace.Addr(off), scratch)
		c.b.HostPrepostArrivals(p, 1)
		s.handle(p, c, st, decodeMsg(scratch), scratch)
	}
}

// handle runs the storage engine for one request.
func (s *server) handle(p *sim.Proc, c *conn, st *replicaStore, m wireMsg, scratch []byte) {
	s.cpuB.Compute(p, applyCost)
	switch m.op {
	case opPut:
		in := rec{ver: m.ver, writer: m.writer, val: m.val}
		switch {
		case m.flg&flagHinted != 0:
			st.addHint(int(m.aux), int(m.key), in)
			s.m.Hints++
		case m.flg&flagRepair != 0:
			var span sim.SpanID
			if s.e.Observing() {
				span = s.e.SpanOpen("b.kv", "kv.repair")
			}
			st.apply(int(m.key), in)
			s.e.SpanClose(span)
		default:
			st.apply(int(m.key), in)
		}
		if m.flg&flagNoReply == 0 {
			s.reply(p, c, wireMsg{id: m.id, op: opPutAck, key: m.key, aux: m.aux}, scratch)
		}
	case opGet:
		got := st.recs[m.key]
		s.reply(p, c, wireMsg{
			id: m.id, op: opGetRep, key: m.key,
			ver: got.ver, writer: got.writer, val: got.val, aux: m.aux,
		}, scratch)
	case opPing:
		s.reply(p, c, wireMsg{id: m.id, op: opPingRep, aux: uint64(c.idx)}, scratch)
	case opFlush:
		tgt := int(m.aux)
		hints := st.takeHints(tgt)
		if len(hints) == 0 {
			return
		}
		var span sim.SpanID
		if s.e.Observing() {
			span = s.e.SpanOpen("b.kv", "kv.handoff")
		}
		for _, h := range hints {
			s.cpuB.Compute(p, handoffCost)
			s.stores[tgt].apply(h.key, h.rec)
			s.m.Handoffs++
		}
		s.e.SpanClose(span)
	}
}

// reply stages a reply in the next B-side slot and puts it home.
func (s *server) reply(p *sim.Proc, c *conn, m wireMsg, scratch []byte) {
	if c.btxCur >= s.capSlots {
		panic("kv: reply slots exhausted")
	}
	off := s.off(c.idx, c.btxCur)
	c.btxCur++
	m.encode(scratch)
	s.cpuB.Write(p, s.bTx+memspace.Addr(off), scratch)
	c.b.HostPut(p, s.bTxR, off, s.aRxR, off, s.slotBytes, transport.FlagRemoteComp)
}

// monitorLoop samples replication lag on a fixed cadence. It is an
// oracle — it reads the stores directly and charges no simulated time —
// so the measurement cannot perturb the protocol. Dead replicas (an
// operator would have removed them) are excluded; blacked-out ones count,
// which is exactly what makes the blackout row's lag spike visible.
func (s *server) monitorLoop(p *sim.Proc) {
	for {
		now := p.Now()
		lag := s.sampleLag()
		if lag > s.m.MaxLag {
			s.m.MaxLag = lag
		}
		if now >= s.tEnd {
			s.m.EndLag = lag
			return
		}
		next := now.Add(s.cfg.SampleEvery)
		if next > s.tEnd {
			next = s.tEnd
		}
		p.SleepUntil(next)
	}
}

// sampleLag counts stale (key, replica) pairs: preference-list members
// holding something older than the newest copy among live members.
func (s *server) sampleLag() int {
	lag := 0
	for k := 0; k < s.cfg.Keys; k++ {
		var vmax rec
		for _, mbr := range s.coord.prefs[k] {
			if !s.dead[mbr] && s.stores[mbr].recs[k].newer(vmax) {
				vmax = s.stores[mbr].recs[k]
			}
		}
		if vmax.ver == 0 {
			continue
		}
		for _, mbr := range s.coord.prefs[k] {
			if !s.dead[mbr] && vmax.newer(s.stores[mbr].recs[k]) {
				lag++
			}
		}
	}
	return lag
}
