package kv

import "encoding/binary"

// Message operation codes. Requests travel A→B, replies B→A.
const (
	opPut uint64 = iota + 1
	opGet
	opPing
	opFlush
	opPutAck
	opGetRep
	opPingRep
)

// Message flags.
const (
	// flagNoReply suppresses the replica's reply (read-repair writes,
	// hint flushes).
	flagNoReply uint64 = 1 << iota
	// flagHinted marks a put rerouted to a fallback replica; aux names
	// the intended owner, and the fallback stores the record as a hint
	// instead of applying it locally.
	flagHinted
	// flagRepair marks a read-repair put (same apply path, traced as its
	// own span kind).
	flagRepair
)

// slotWords/slotHeaderBytes fix the wire header: eight 64-bit words.
const (
	slotWords       = 8
	slotHeaderBytes = slotWords * 8
)

// wireMsg is one request or reply as it crosses the fabric. On requests
// aux is the intended owner replica (for hinted puts: the down replica
// the hint must eventually reach; for flushes: the recovered target); on
// replies aux echoes the owner so the coordinator credits the right
// quorum slot even when a fallback answered.
type wireMsg struct {
	id     uint64
	op     uint64
	key    uint64
	ver    uint64
	writer uint64
	val    uint64
	aux    uint64
	flg    uint64
}

// encode serializes the header into b (little-endian, like the rest of
// the simulated memory system). b must hold at least slotHeaderBytes.
func (m wireMsg) encode(b []byte) {
	binary.LittleEndian.PutUint64(b[0:], m.id)
	binary.LittleEndian.PutUint64(b[8:], m.op)
	binary.LittleEndian.PutUint64(b[16:], m.key)
	binary.LittleEndian.PutUint64(b[24:], m.ver)
	binary.LittleEndian.PutUint64(b[32:], m.writer)
	binary.LittleEndian.PutUint64(b[40:], m.val)
	binary.LittleEndian.PutUint64(b[48:], m.aux)
	binary.LittleEndian.PutUint64(b[56:], m.flg)
}

// decodeMsg parses a header out of b.
func decodeMsg(b []byte) wireMsg {
	return wireMsg{
		id:     binary.LittleEndian.Uint64(b[0:]),
		op:     binary.LittleEndian.Uint64(b[8:]),
		key:    binary.LittleEndian.Uint64(b[16:]),
		ver:    binary.LittleEndian.Uint64(b[24:]),
		writer: binary.LittleEndian.Uint64(b[32:]),
		val:    binary.LittleEndian.Uint64(b[40:]),
		aux:    binary.LittleEndian.Uint64(b[48:]),
		flg:    binary.LittleEndian.Uint64(b[56:]),
	}
}
