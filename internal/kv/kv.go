// Package kv is a sharded, replicated key-value serving workload layered
// on the fabric-agnostic transport.Endpoint API — the paper's put/get
// primitives promoted from microbenchmark substrate to a genuine
// multi-replica storage protocol with graceful degradation as the
// headline property.
//
// Topology: node A hosts the client population and the coordinator; node
// B hosts N simulated replicas, one host proc per replica, each reached
// over its own transport connection (EXTOLL port / IB queue pair), so
// every request and reply crosses the modeled wire and is exposed to the
// seeded fault injector. Placement is a consistent-hash ring with virtual
// nodes; each key has a preference list of RF distinct replicas. Writes
// carry per-key monotonic versions (last-writer-wins, ties broken by
// writer id) and complete at W acknowledgements; reads complete at R
// replies and return the newest version seen. Requests run under
// per-attempt deadlines with bounded retry and deterministic seeded
// backoff; replicas that miss consecutive deadlines are marked down and
// rerouted around (writes go to a fallback replica as hinted handoff).
// A ping prober detects recovery, at which point hint holders flush the
// rerouted writes back and read-repair fixes stale replies, so a
// recovered replica reconverges — replication lag returns to zero.
//
// Determinism: everything runs on one discrete-event engine per cell; all
// randomness (Zipf key draws, open-loop interarrival gaps, retry jitter)
// flows through seeded splitmix64 streams; the data plane indexes slices,
// never ranges over maps. A sweep's cells shard across the runner pool
// and assemble in fixed order, so the report is byte-identical for any
// -parallel worker count.
package kv

import (
	"fmt"

	"putget/internal/sim"
)

// Config fixes one serving cell: cluster shape, workload, and the
// client-visible timeout/retry policy.
type Config struct {
	// Replicas is the number of simulated replicas (each one transport
	// connection and one host proc on node B).
	Replicas int
	// VNodes is the number of ring points per replica.
	VNodes int
	// RF is the replication factor: the preference-list length per key.
	RF int
	// R and W are the read and write quorums over RF.
	R, W int

	// Clients is the open-loop client population; each issues PerClient
	// requests at exponentially distributed gaps of mean MeanGap.
	Clients   int
	PerClient int
	MeanGap   sim.Duration
	// PutFrac is the fraction of requests that are puts (rest are gets).
	PutFrac float64

	// Keys is the key-space size; Zipf is the skew exponent of the draw.
	Keys int
	Zipf float64

	// SlotBytes is the wire footprint of one request/reply message (the
	// 64-byte header plus modeled payload padding).
	SlotBytes int

	// AttemptTimeout bounds one attempt; a request retries at most
	// MaxRetries times with exponential backoff from BackoffBase plus
	// seeded jitter, then counts as a quorum failure.
	AttemptTimeout sim.Duration
	MaxRetries     int
	BackoffBase    sim.Duration

	// DownAfter consecutive missed deadlines mark a replica down;
	// PingEvery is the prober cadence for down replicas.
	DownAfter int
	PingEvery sim.Duration

	// Drain extends the run past the last client arrival so in-flight
	// requests, handoff flushes and the lag monitor settle.
	Drain sim.Duration
	// SampleEvery is the replication-lag sampling cadence.
	SampleEvery sim.Duration

	// Seed drives every PRNG stream of the cell.
	Seed uint64

	// Observer, when non-nil, is installed on the cell's engine before
	// the run, capturing the kv.route/kv.quorum/kv.repair/kv.handoff
	// span stream. It never affects metrics. Leave nil in sweeps — an
	// observer must not be shared across concurrent cells.
	Observer sim.Observer

	// Outages script KV-level replica failures (distinct from wire
	// faults): the replica stops reaping its connection inside the
	// window. An open-ended window (Dur == 0) is permanent death.
	Outages []Outage
}

// Outage pauses or kills one replica. Start is an offset from load start;
// Dur == 0 means the replica never returns.
type Outage struct {
	Replica int
	Start   sim.Duration
	Dur     sim.Duration
}

// DefaultConfig is the kvserve benchmark cell: 5 replicas, RF=3 with
// majority-style R=W=2 quorums, a 4-client Zipf-skewed open-loop
// population. The offered load sits below both fabrics' saturation
// point, and the attempt deadline is sized to absorb one link-level
// retransmission recovery (EXTOLL retx timer 15us, IB 20us) — a single
// wire drop costs tail latency, not a spurious failover.
func DefaultConfig(seed uint64) Config {
	return Config{
		Replicas:       5,
		VNodes:         16,
		RF:             3,
		R:              2,
		W:              2,
		Clients:        4,
		PerClient:      120,
		MeanGap:        10 * sim.Microsecond,
		PutFrac:        0.7,
		Keys:           256,
		Zipf:           1.1,
		SlotBytes:      64,
		AttemptTimeout: 25 * sim.Microsecond,
		MaxRetries:     2,
		BackoffBase:    10 * sim.Microsecond,
		DownAfter:      2,
		PingEvery:      20 * sim.Microsecond,
		Drain:          150 * sim.Microsecond,
		SampleEvery:    20 * sim.Microsecond,
		Seed:           seed,
	}
}

// Validate rejects configurations that cannot describe a working cell.
func (c Config) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		{c.Replicas > 0, fmt.Sprintf("Replicas must be positive, got %d", c.Replicas)},
		{c.VNodes > 0, fmt.Sprintf("VNodes must be positive, got %d", c.VNodes)},
		{c.RF > 0 && c.RF <= c.Replicas,
			fmt.Sprintf("RF must be in [1,Replicas=%d], got %d", c.Replicas, c.RF)},
		{c.R > 0 && c.R <= c.RF, fmt.Sprintf("R must be in [1,RF=%d], got %d", c.RF, c.R)},
		{c.W > 0 && c.W <= c.RF, fmt.Sprintf("W must be in [1,RF=%d], got %d", c.RF, c.W)},
		{c.Clients > 0, fmt.Sprintf("Clients must be positive, got %d", c.Clients)},
		{c.PerClient > 0, fmt.Sprintf("PerClient must be positive, got %d", c.PerClient)},
		{c.MeanGap > 0, fmt.Sprintf("MeanGap must be positive, got %v", c.MeanGap)},
		{c.PutFrac >= 0 && c.PutFrac <= 1, fmt.Sprintf("PutFrac must be in [0,1], got %g", c.PutFrac)},
		{c.Keys > 0, fmt.Sprintf("Keys must be positive, got %d", c.Keys)},
		{c.Zipf > 0, fmt.Sprintf("Zipf must be positive, got %g", c.Zipf)},
		{c.SlotBytes >= slotHeaderBytes,
			fmt.Sprintf("SlotBytes must be at least the %d-byte header, got %d", slotHeaderBytes, c.SlotBytes)},
		{c.AttemptTimeout > 0, fmt.Sprintf("AttemptTimeout must be positive, got %v", c.AttemptTimeout)},
		{c.MaxRetries >= 0, fmt.Sprintf("MaxRetries must be non-negative, got %d", c.MaxRetries)},
		{c.BackoffBase > 0, fmt.Sprintf("BackoffBase must be positive, got %v", c.BackoffBase)},
		{c.DownAfter > 0, fmt.Sprintf("DownAfter must be positive, got %d", c.DownAfter)},
		{c.PingEvery > 0, fmt.Sprintf("PingEvery must be positive, got %v", c.PingEvery)},
		{c.Drain > 0, fmt.Sprintf("Drain must be positive, got %v", c.Drain)},
		{c.SampleEvery > 0, fmt.Sprintf("SampleEvery must be positive, got %v", c.SampleEvery)},
	}
	for _, ck := range checks {
		if !ck.ok {
			return fmt.Errorf("kv: invalid Config: %s", ck.msg)
		}
	}
	for _, o := range c.Outages {
		if o.Replica < 0 || o.Replica >= c.Replicas {
			return fmt.Errorf("kv: invalid Config: outage replica %d out of range [0,%d)", o.Replica, c.Replicas)
		}
		if o.Start < 0 || o.Dur < 0 {
			return fmt.Errorf("kv: invalid Config: outage window (%v + %v) must be non-negative", o.Start, o.Dur)
		}
	}
	return nil
}

// Metrics is one cell's outcome. Every field derives from virtual time
// and seeded PRNG streams, so two runs of the same (fabric, params,
// config) are identical field for field.
type Metrics struct {
	Requests    int // client requests issued
	Ok          int // completed within quorum and deadline budget
	QuorumFails int // exhausted the retry budget
	Timeouts    int // attempt deadlines with at least one replica unacknowledged
	Retries     int // attempts beyond each request's first
	Rerouted    int // requests that skipped a down replica
	Hints       int // hinted writes stored at fallback replicas
	Handoffs    int // hinted records flushed to recovered replicas
	Repairs     int // stale replicas fixed by read-repair
	Pings       int // probe messages sent to down replicas

	// Latencies holds each successful request's latency in microseconds,
	// in completion order.
	Latencies []float64

	// MaxLag is the worst sampled replication lag (stale key-replica
	// pairs over live replicas); EndLag is the final sample, after the
	// drain window — zero means full reconvergence.
	MaxLag int
	EndLag int

	// Elapsed spans load start to the end of the drain window; Events is
	// the number of simulation events the cell executed.
	Elapsed sim.Duration
	Events  uint64
}
