package kv

import (
	"sort"

	"putget/internal/faults"
)

// point is one virtual node on the hash circle.
type point struct {
	hash    uint64
	replica int
}

// Ring is consistent-hash placement: each replica owns VNodes points on a
// 64-bit circle, a key hashes to a position, and its preference list is
// the first RF distinct replicas walking clockwise from there. Placement
// is a pure function of (replicas, vnodes, rf, seed), so every component
// — coordinator, replicas, lag monitor — derives the same view without
// any metadata exchange.
type Ring struct {
	points []point
	n      int
	rf     int
	seed   uint64
}

// NewRing builds the circle. Point positions come from the same
// splitmix64 mix as the fault injectors, so placement reshuffles
// deterministically with the seed.
func NewRing(replicas, vnodes, rf int, seed uint64) *Ring {
	if rf <= 0 || rf > replicas {
		panic("kv: NewRing: rf must be in [1, replicas]")
	}
	pts := make([]point, 0, replicas*vnodes)
	for r := 0; r < replicas; r++ {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{
				hash:    faults.DeriveSeed(seed, uint64(r)<<20|uint64(v)),
				replica: r,
			})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].replica < pts[j].replica
	})
	return &Ring{points: pts, n: replicas, rf: rf, seed: seed}
}

// keyHash positions a key on the circle. The xor constant separates the
// key stream from the vnode stream.
func (g *Ring) keyHash(key int) uint64 {
	return faults.DeriveSeed(g.seed^0x5bd1e995, uint64(key))
}

// Walk visits replicas in ring order starting at key's position, each
// distinct replica once, until visit returns false or all replicas have
// been seen.
func (g *Ring) Walk(key int, visit func(replica int) bool) {
	h := g.keyHash(key)
	start := sort.Search(len(g.points), func(i int) bool { return g.points[i].hash >= h })
	seen := make([]bool, g.n)
	visited := 0
	for i := 0; i < len(g.points) && visited < g.n; i++ {
		r := g.points[(start+i)%len(g.points)].replica
		if seen[r] {
			continue
		}
		seen[r] = true
		visited++
		if !visit(r) {
			return
		}
	}
}

// Pref returns the key's preference list: the first RF distinct replicas
// clockwise from its ring position.
func (g *Ring) Pref(key int) []int {
	pref := make([]int, 0, g.rf)
	g.Walk(key, func(r int) bool {
		pref = append(pref, r)
		return len(pref) < g.rf
	})
	return pref
}
