package kv

import (
	"fmt"
	"strings"

	"putget/internal/cluster"
	"putget/internal/faults"
	"putget/internal/runner"
	"putget/internal/sim"
	"putget/internal/stats"
	"putget/internal/transport"
)

// Plan is one fault scenario of the serving sweep: wire-level
// probabilistic faults (cleaned up by the fabric's reliability protocol,
// visible to the KV layer as latency) plus KV-level replica outages
// (visible as missed deadlines, failover, and replication lag).
type Plan struct {
	Name        string
	DropRate    float64
	CorruptRate float64
	DelayMax    sim.Duration
	Outages     []Outage
}

// DefaultPlans is the acceptance grid: a clean wire, a lossy wire, a
// bounded replica blackout (the recovery row — hints flush home and end
// lag returns to zero), and a permanent replica death.
func DefaultPlans() []Plan {
	return []Plan{
		{Name: "loss-free"},
		// Drop + corrupt only: per-packet extra delay reorders the wire,
		// which the in-order reliability protocols (EXTOLL go-back-N, IB
		// RC) read as loss — a retransmission storm, not a lossy wire.
		{Name: "lossy", DropRate: 0.01, CorruptRate: 0.0025},
		{Name: "blackout", Outages: []Outage{{Replica: 2, Start: 200 * sim.Microsecond, Dur: 300 * sim.Microsecond}}},
		{Name: "death", Outages: []Outage{{Replica: 1, Start: 200 * sim.Microsecond}}},
	}
}

// Sweep runs the serving cell under every plan on both fabrics and
// renders the SLO table. Cells shard across the harness worker pool
// (p.Parallel) and assemble in fixed (fabric, plan) order, so the output
// bytes never depend on the worker count. Every cell keeps the same
// workload seed — plans face an identical request schedule — while each
// draws its own derived fault-injector seed.
func Sweep(p cluster.Params, cfg Config, plans []Plan) string {
	kinds := []transport.Kind{transport.KindExtoll, transport.KindIB}
	type cellSpec struct {
		kind, plan int
	}
	var cells []cellSpec
	for ki := range kinds {
		for pi := range plans {
			cells = append(cells, cellSpec{ki, pi})
		}
	}
	results := runner.Map(p.Parallel, cells, func(i int, c cellSpec) Metrics {
		plan := plans[c.plan]
		fp := p
		// Reliability protocols run in every cell — including loss-free —
		// so rows differ only in injected faults, not in protocol overhead.
		fp.FaultInject = true
		fp.FaultSeed = faults.DeriveSeed(cfg.Seed, uint64(i+1))
		fp.FaultDropRate = plan.DropRate
		fp.FaultCorruptRate = plan.CorruptRate
		fp.FaultDelayMax = plan.DelayMax
		cellCfg := cfg
		cellCfg.Outages = plan.Outages
		return Run(kinds[c.kind], fp, cellCfg)
	})

	var b strings.Builder
	fmt.Fprintf(&b, "kvserve: replicated put/get serving under fault plans (seed %d)\n", cfg.Seed)
	fmt.Fprintf(&b, "replicas %d rf %d R %d W %d; %d clients x %d requests, %.0f%% puts, zipf %.2f over %d keys\n",
		cfg.Replicas, cfg.RF, cfg.R, cfg.W, cfg.Clients, cfg.PerClient, cfg.PutFrac*100, cfg.Zipf, cfg.Keys)
	fmt.Fprintf(&b, "attempt timeout %v, <=%d retries, backoff from %v; lag = stale key-replica pairs\n\n",
		cfg.AttemptTimeout, cfg.MaxRetries, cfg.BackoffBase)
	for ki, k := range kinds {
		fmt.Fprintf(&b, "%s\n", k)
		fmt.Fprintf(&b, "%-10s %5s %6s %6s %6s %6s %5s %6s %5s %5s %8s %9s %9s %9s %7s %7s\n",
			"plan", "ok", "qfail", "tmout", "retry", "rerte", "hint", "hndof", "repr", "ping",
			"Kops/s", "P50[us]", "P99[us]", "P999[us]", "maxlag", "endlag")
		for pi, plan := range plans {
			m := results[ki*len(plans)+pi]
			pct := stats.PercentileMulti(m.Latencies, 50, 99, 99.9)
			kops := float64(m.Ok) / m.Elapsed.Seconds() / 1e3
			fmt.Fprintf(&b, "%-10s %5d %6d %6d %6d %6d %5d %6d %5d %5d %8.1f %9.2f %9.2f %9.2f %7d %7d\n",
				plan.Name, m.Ok, m.QuorumFails, m.Timeouts, m.Retries, m.Rerouted,
				m.Hints, m.Handoffs, m.Repairs, m.Pings,
				kops, pct[0], pct[1], pct[2], m.MaxLag, m.EndLag)
		}
		b.WriteString("\n")
	}
	return b.String()
}
