package kv

import (
	"reflect"
	"strings"
	"testing"

	"putget/internal/cluster"
	"putget/internal/sim"
	"putget/internal/transport"
)

// testConfig is a cell small enough for unit tests but busy enough to
// exercise quorums and retries.
func testConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Clients = 2
	cfg.PerClient = 40
	cfg.Keys = 64
	return cfg
}

// faultyParams turns the reliability machinery on, as every sweep cell
// does.
func faultyParams(seed uint64) cluster.Params {
	p := cluster.Default()
	p.FaultInject = true
	p.FaultSeed = seed
	return p
}

func TestServeCleanRun(t *testing.T) {
	for _, k := range []transport.Kind{transport.KindExtoll, transport.KindIB} {
		cfg := testConfig(42)
		m := Run(k, faultyParams(7), cfg)
		want := cfg.Clients * cfg.PerClient
		if m.Requests != want {
			t.Fatalf("%v: requests = %d, want %d", k, m.Requests, want)
		}
		if m.Ok != want {
			t.Fatalf("%v: ok = %d of %d (qfail %d, tmout %d) on a clean wire",
				k, m.Ok, want, m.QuorumFails, m.Timeouts)
		}
		if len(m.Latencies) != m.Ok {
			t.Fatalf("%v: %d latencies for %d ok requests", k, len(m.Latencies), m.Ok)
		}
		if m.EndLag != 0 {
			t.Fatalf("%v: end lag = %d on a clean run", k, m.EndLag)
		}
		if m.Events == 0 || m.Elapsed <= 0 {
			t.Fatalf("%v: events %d elapsed %v", k, m.Events, m.Elapsed)
		}
	}
}

func TestServeDeterministic(t *testing.T) {
	cfg := testConfig(1234)
	cfg.Outages = []Outage{{Replica: 1, Start: 60 * sim.Microsecond, Dur: 80 * sim.Microsecond}}
	p := faultyParams(99)
	p.FaultDropRate = 0.01
	p.FaultCorruptRate = 0.0025
	a := Run(transport.KindExtoll, p, cfg)
	b := Run(transport.KindExtoll, p, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestServeBlackoutRecovery(t *testing.T) {
	for _, k := range []transport.Kind{transport.KindExtoll, transport.KindIB} {
		cfg := testConfig(42)
		cfg.Outages = []Outage{{Replica: 2, Start: 60 * sim.Microsecond, Dur: 120 * sim.Microsecond}}
		m := Run(k, faultyParams(7), cfg)
		if m.Ok == 0 {
			t.Fatalf("%v: nothing completed under a single-replica blackout", k)
		}
		if m.Timeouts == 0 || m.Rerouted == 0 {
			t.Fatalf("%v: blackout caused no timeouts (%d) or rerouting (%d)", k, m.Timeouts, m.Rerouted)
		}
		if m.Hints == 0 {
			t.Fatalf("%v: no hinted writes were stored during the blackout", k)
		}
		if m.Handoffs == 0 {
			t.Fatalf("%v: hints never flushed home after recovery", k)
		}
		if m.MaxLag == 0 {
			t.Fatalf("%v: blackout left no visible replication lag", k)
		}
		if m.EndLag != 0 {
			t.Fatalf("%v: replication lag %d after recovery, want 0 (maxlag %d, handoffs %d, repairs %d)",
				k, m.EndLag, m.MaxLag, m.Handoffs, m.Repairs)
		}
	}
}

func TestServeReplicaDeath(t *testing.T) {
	cfg := testConfig(42)
	cfg.Outages = []Outage{{Replica: 1, Start: 60 * sim.Microsecond}} // Dur 0: never returns
	m := Run(transport.KindExtoll, faultyParams(7), cfg)
	if m.Ok == 0 {
		t.Fatal("nothing completed after one replica died")
	}
	if m.Rerouted == 0 || m.Hints == 0 {
		t.Fatalf("death caused no rerouting (%d) or hints (%d)", m.Rerouted, m.Hints)
	}
	if m.Handoffs != 0 {
		t.Fatalf("%d handoffs to a replica that never recovered", m.Handoffs)
	}
	if m.EndLag != 0 {
		t.Fatalf("end lag %d: dead replicas must not count as stale", m.EndLag)
	}
}

func TestServeQuorumFailure(t *testing.T) {
	// RF equals the cluster size, so a dead replica has no fallback for
	// its read quorum slots; with R == RF every read must fail after the
	// death while writes survive on sloppy-quorum... except there is no
	// replica left outside the preference list either, so writes that
	// need the dead member's ack fail too.
	cfg := testConfig(42)
	cfg.Replicas = 3
	cfg.RF = 3
	cfg.R = 3
	cfg.W = 3
	cfg.Outages = []Outage{{Replica: 0, Start: 40 * sim.Microsecond}}
	m := Run(transport.KindExtoll, faultyParams(7), cfg)
	if m.QuorumFails == 0 {
		t.Fatalf("no quorum failures with R=W=RF=replicas and a dead replica (ok %d of %d)",
			m.Ok, m.Requests)
	}
	if m.Ok+m.QuorumFails != m.Requests {
		t.Fatalf("ok %d + qfail %d != requests %d", m.Ok, m.QuorumFails, m.Requests)
	}
}

// spanRecorder counts span opens/closes by kind.
type spanRecorder struct {
	kinds  map[sim.SpanID]string
	opens  map[string]int
	closes map[string]int
}

func newSpanRecorder() *spanRecorder {
	return &spanRecorder{
		kinds:  map[sim.SpanID]string{},
		opens:  map[string]int{},
		closes: map[string]int{},
	}
}

func (r *spanRecorder) SpanOpen(id sim.SpanID, at sim.Time, comp, kind string, attrs []sim.Attr) {
	r.kinds[id] = kind
	r.opens[kind]++
}

func (r *spanRecorder) SpanClose(id sim.SpanID, at sim.Time) {
	r.closes[r.kinds[id]]++
}

func (r *spanRecorder) MetricSample(at sim.Time, comp, name string, value float64) {}
func (r *spanRecorder) Shutdown(at sim.Time)                                       {}

func TestServeSpans(t *testing.T) {
	rec := newSpanRecorder()
	cfg := testConfig(42)
	cfg.Outages = []Outage{{Replica: 2, Start: 60 * sim.Microsecond, Dur: 120 * sim.Microsecond}}
	cfg.Observer = rec
	m := Run(transport.KindExtoll, faultyParams(7), cfg)
	for _, kind := range []string{"kv.route", "kv.quorum", "kv.handoff"} {
		if rec.opens[kind] == 0 {
			t.Fatalf("no %s spans were opened", kind)
		}
		if rec.opens[kind] != rec.closes[kind] {
			t.Fatalf("%s spans unbalanced: %d open, %d closed", kind, rec.opens[kind], rec.closes[kind])
		}
	}
	if rec.opens["kv.route"] != m.Requests {
		t.Fatalf("%d kv.route spans for %d requests", rec.opens["kv.route"], m.Requests)
	}
	if rec.opens["kv.handoff"] == 0 && m.Handoffs > 0 {
		t.Fatalf("handoffs happened but no kv.handoff span")
	}
}

func TestSweepParallelInvariance(t *testing.T) {
	cfg := testConfig(42)
	cfg.Clients = 2
	cfg.PerClient = 24
	plans := DefaultPlans()[:3] // loss-free, lossy, blackout
	p1 := cluster.Default()
	p1.Parallel = 1
	p8 := cluster.Default()
	p8.Parallel = 8
	out1 := Sweep(p1, cfg, plans)
	out8 := Sweep(p8, cfg, plans)
	if out1 != out8 {
		t.Fatalf("sweep output depends on worker count:\n--- parallel=1\n%s\n--- parallel=8\n%s", out1, out8)
	}
	for _, want := range []string{"loss-free", "lossy", "blackout", "EXTOLL", "InfiniBand"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out1)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero replicas", func(c *Config) { c.Replicas = 0 }},
		{"rf above replicas", func(c *Config) { c.RF = c.Replicas + 1 }},
		{"r above rf", func(c *Config) { c.R = c.RF + 1 }},
		{"w above rf", func(c *Config) { c.W = c.RF + 1 }},
		{"no clients", func(c *Config) { c.Clients = 0 }},
		{"zero gap", func(c *Config) { c.MeanGap = 0 }},
		{"bad put fraction", func(c *Config) { c.PutFrac = 1.5 }},
		{"slot below header", func(c *Config) { c.SlotBytes = slotHeaderBytes - 8 }},
		{"zero timeout", func(c *Config) { c.AttemptTimeout = 0 }},
		{"negative retries", func(c *Config) { c.MaxRetries = -1 }},
		{"outage out of range", func(c *Config) { c.Outages = []Outage{{Replica: 99}} }},
	}
	for _, c := range cases {
		cfg := DefaultConfig(1)
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted an invalid config", c.name)
		}
	}
}
