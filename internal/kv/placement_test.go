package kv

import (
	"reflect"
	"testing"
)

func TestRingPrefDistinctAndStable(t *testing.T) {
	g := NewRing(5, 16, 3, 42)
	h := NewRing(5, 16, 3, 42)
	for key := 0; key < 512; key++ {
		pref := g.Pref(key)
		if len(pref) != 3 {
			t.Fatalf("key %d: pref length = %d, want 3", key, len(pref))
		}
		seen := map[int]bool{}
		for _, r := range pref {
			if r < 0 || r >= 5 {
				t.Fatalf("key %d: replica %d out of range", key, r)
			}
			if seen[r] {
				t.Fatalf("key %d: pref %v repeats replica %d", key, pref, r)
			}
			seen[r] = true
		}
		if got := h.Pref(key); !reflect.DeepEqual(got, pref) {
			t.Fatalf("key %d: same seed gave %v then %v", key, pref, got)
		}
	}
}

func TestRingSeedReshuffles(t *testing.T) {
	a := NewRing(8, 16, 3, 1)
	b := NewRing(8, 16, 3, 2)
	same := 0
	const keys = 256
	for key := 0; key < keys; key++ {
		if reflect.DeepEqual(a.Pref(key), b.Pref(key)) {
			same++
		}
	}
	if same == keys {
		t.Fatalf("placement identical across seeds for all %d keys", keys)
	}
}

func TestRingCoversAllReplicas(t *testing.T) {
	const n = 7
	g := NewRing(n, 16, 3, 9)
	owned := make([]bool, n)
	for key := 0; key < 4096; key++ {
		owned[g.Pref(key)[0]] = true
	}
	for r, ok := range owned {
		if !ok {
			t.Fatalf("replica %d owns no key as primary over 4096 keys", r)
		}
	}
}

func TestRingWalkVisitsEveryReplicaOnce(t *testing.T) {
	const n = 6
	g := NewRing(n, 8, 2, 3)
	for key := 0; key < 64; key++ {
		var order []int
		g.Walk(key, func(r int) bool {
			order = append(order, r)
			return true
		})
		if len(order) != n {
			t.Fatalf("key %d: walk visited %d replicas, want %d", key, len(order), n)
		}
		seen := make([]bool, n)
		for _, r := range order {
			if seen[r] {
				t.Fatalf("key %d: walk repeated replica %d", key, r)
			}
			seen[r] = true
		}
	}
}

func TestLWWOrder(t *testing.T) {
	cases := []struct {
		a, b rec
		want bool
	}{
		{rec{ver: 2}, rec{ver: 1}, true},
		{rec{ver: 1}, rec{ver: 2}, false},
		{rec{ver: 1, writer: 2}, rec{ver: 1, writer: 1}, true},
		{rec{ver: 1, writer: 1}, rec{ver: 1, writer: 2}, false},
		{rec{ver: 1, writer: 1}, rec{ver: 1, writer: 1}, false}, // replay is not newer
		{rec{ver: 1}, rec{}, true},
		{rec{}, rec{}, false},
	}
	for i, c := range cases {
		if got := c.a.newer(c.b); got != c.want {
			t.Fatalf("case %d: %+v newer than %+v = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestStoreApplyAndHints(t *testing.T) {
	s := newReplicaStore(4, 3)
	if !s.apply(1, rec{ver: 1, writer: 1, val: 10}) {
		t.Fatal("first write did not apply")
	}
	if s.apply(1, rec{ver: 1, writer: 1, val: 10}) {
		t.Fatal("replay applied")
	}
	if s.apply(1, rec{ver: 0, writer: 9, val: 11}) {
		t.Fatal("older version applied")
	}
	if !s.apply(1, rec{ver: 1, writer: 2, val: 12}) {
		t.Fatal("writer tie-break did not apply")
	}
	if got := s.recs[1]; got != (rec{ver: 1, writer: 2, val: 12}) {
		t.Fatalf("stored %+v", got)
	}
	s.addHint(2, 1, rec{ver: 3, writer: 1, val: 30})
	s.addHint(2, 0, rec{ver: 1, writer: 1, val: 31})
	if h := s.takeHints(2); len(h) != 2 {
		t.Fatalf("takeHints = %d records, want 2", len(h))
	}
	if h := s.takeHints(2); len(h) != 0 {
		t.Fatalf("second takeHints = %d records, want 0", len(h))
	}
}
