package kv

// rec is one stored version of a key. The zero rec (ver 0) means "never
// written".
type rec struct {
	ver    uint64
	writer uint64
	val    uint64
}

// newer reports whether a supersedes b under last-writer-wins order:
// higher version wins, version ties break on writer id. Equal records
// are not newer, so replays are idempotent.
func (a rec) newer(b rec) bool {
	if a.ver != b.ver {
		return a.ver > b.ver
	}
	return a.writer > b.writer
}

// hintRec is a write held on behalf of a down replica, flushed home when
// the coordinator observes recovery.
type hintRec struct {
	key int
	rec rec
}

// replicaStore is one replica's storage engine: a version-indexed record
// per key plus hint queues per intended owner. Slices throughout — the
// data plane never ranges over a map.
type replicaStore struct {
	recs  []rec
	hints [][]hintRec
}

func newReplicaStore(keys, replicas int) *replicaStore {
	return &replicaStore{recs: make([]rec, keys), hints: make([][]hintRec, replicas)}
}

// apply merges r into key k under LWW; reports whether the store changed.
func (s *replicaStore) apply(k int, r rec) bool {
	if r.newer(s.recs[k]) {
		s.recs[k] = r
		return true
	}
	return false
}

// addHint queues a write intended for the down replica target.
func (s *replicaStore) addHint(target, key int, r rec) {
	s.hints[target] = append(s.hints[target], hintRec{key: key, rec: r})
}

// takeHints removes and returns the queued hints for target.
func (s *replicaStore) takeHints(target int) []hintRec {
	h := s.hints[target]
	s.hints[target] = nil
	return h
}
