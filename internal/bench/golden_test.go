package bench

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"putget/internal/cluster"
)

// The golden tests pin the shipped experiment bytes: the transport
// refactor (and any future one) must leave `putgetbench -experiment all`
// stdout byte-identical. The goldens hold exactly what the CLI prints to
// stdout — each experiment's Run output followed by the blank line
// fmt.Println appends; the wall-time progress lines go to stderr and are
// not part of the contract.

func readGolden(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with putgetbench): %v", err)
	}
	return string(data)
}

// diffLine locates the first differing line for a readable failure.
func diffLine(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(g), len(w))
}

// TestGoldenBreakdown pins the per-stage latency attribution of a single
// 4 KiB put on both fabrics — the most sensitive single number in the
// repo, since every simulated stage contributes to it.
func TestGoldenBreakdown(t *testing.T) {
	p := cluster.Default()
	got := StageBreakdown(p) + "\n"
	if want := readGolden(t, "golden_breakdown.txt"); got != want {
		t.Fatalf("breakdown output drifted from golden:\n%s", diffLine(got, want))
	}
}

// TestGoldenAll replays every experiment of `-experiment all` and
// compares the concatenated stdout byte-for-byte against the
// pre-refactor capture. Skipped under -short (the full evaluation takes
// a few minutes of wall time).
func TestGoldenAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full -experiment all replay takes minutes; run without -short to pin the bytes")
	}
	p := cluster.Default()
	p.Parallel = 0 // GOMAXPROCS; output is worker-count invariant
	var b strings.Builder
	for _, r := range Experiments() {
		b.WriteString(r.Run(p))
		b.WriteString("\n")
	}
	got := b.String()
	if want := readGolden(t, "golden_all.txt"); got != want {
		t.Fatalf("-experiment all output drifted from golden:\n%s", diffLine(got, want))
	}
}
