package bench

import (
	"fmt"
	"strings"

	"putget/internal/cluster"
	"putget/internal/runner"
	"putget/internal/transport"
)

// CrossAPI compares the two fabrics mode-for-mode through the unified
// transport layer — the experiment the refactor makes possible: both
// columns of every row run the *same* harness code (PingPong/Stream over
// transport.Endpoint), so any difference is the fabric's, not the
// benchmark's. Rows are the six control modes; cells show 1 KiB ping-pong
// half-RTT and 64 KiB streaming bandwidth, with "-" where a fabric does
// not offer the mode (EXTOLL has no queue-placement choice; IB polls
// arrival stamps rather than notification rings).
//
// The (mode, fabric, metric) cells are sharded across the harness worker
// pool (p.Parallel); output bytes are identical for any worker count.
func CrossAPI(p cluster.Params) string {
	const (
		latSize = 1024
		bwSize  = 65536
	)
	modes := []ControlMode{
		transport.Direct, transport.PollOnGPU,
		transport.QueuesOnGPU, transport.QueuesOnHost,
		transport.HostAssisted, transport.HostControlled,
	}
	kinds := []transport.Kind{transport.KindExtoll, transport.KindIB}
	type cell struct {
		mode ControlMode
		kind transport.Kind
		bw   bool
	}
	var cells []cell
	for _, m := range modes {
		for _, k := range kinds {
			if !transport.Supports(k, m) {
				continue
			}
			cells = append(cells, cell{m, k, false}, cell{m, k, true})
		}
	}
	iters, warmup := latencyIters(latSize)
	vals := runner.Map(p.Parallel, cells, func(_ int, c cell) float64 {
		if c.bw {
			return Stream(p, c.kind, c.mode, bwSize, streamMessages(bwSize)).BytesPerSec / 1e6
		}
		return PingPong(p, c.kind, c.mode, latSize, iters, warmup).HalfRTT.Microseconds()
	})
	byCell := make(map[cell]float64, len(cells))
	for i, c := range cells {
		byCell[c] = vals[i]
	}

	var b strings.Builder
	fmt.Fprintf(&b, "crossapi: one put/get API, both fabrics, mode for mode\n")
	fmt.Fprintf(&b, "%-24s %14s %14s %16s %16s\n", "control mode",
		"EXTOLL lat[us]", "IB lat[us]", "EXTOLL bw[MB/s]", "IB bw[MB/s]")
	for _, m := range modes {
		fmt.Fprintf(&b, "%-24s", m.String())
		for _, metric := range []bool{false, true} {
			for _, k := range kinds {
				width := 14
				if metric {
					width = 16
				}
				if !transport.Supports(k, m) {
					fmt.Fprintf(&b, " %*s", width, "-")
					continue
				}
				fmt.Fprintf(&b, " %*.4g", width, byCell[cell{m, k, metric}])
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(1 KiB ping-pong half-RTT; 64 KiB streaming; '-' = mode not offered by that fabric)\n")
	return b.String()
}
