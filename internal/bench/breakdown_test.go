package bench

import (
	"strings"
	"testing"

	"putget/internal/cluster"
	"putget/internal/sim"
)

// TestBreakdownSumsToMeasuredE2E is the experiment's core invariant: the
// per-stage rows partition the measured window exactly, so the table's
// total equals the end-to-end latency (the ISSUE's 1% criterion holds
// with zero slack by construction).
func TestBreakdownSumsToMeasuredE2E(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func() breakdownResult
	}{
		{"extoll-gpu", func() breakdownResult { return breakdownExtoll(cluster.Default(), true) }},
		{"extoll-host", func() breakdownResult { return breakdownExtoll(cluster.Default(), false) }},
		{"ib-gpu", func() breakdownResult { return breakdownIB(cluster.Default(), true) }},
		{"ib-host", func() breakdownResult { return breakdownIB(cluster.Default(), false) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := tc.run()
			if res.E2E <= 0 {
				t.Fatalf("e2e = %v", res.E2E)
			}
			if len(res.Stages) < 4 {
				t.Fatalf("only %d stages attributed: %+v", len(res.Stages), res.Stages)
			}
			var sum sim.Duration
			for _, s := range res.Stages {
				if s.Time < 0 {
					t.Fatalf("negative stage time: %+v", s)
				}
				sum += s.Time
			}
			if sum != res.E2E {
				t.Fatalf("stages sum to %v, measured e2e %v", sum, res.E2E)
			}
		})
	}
}

// TestStageBreakdownParallelDeterminism: the four modes shard over the
// worker pool; the printed report must be byte-identical for any count.
func TestStageBreakdownParallelDeterminism(t *testing.T) {
	seq := cluster.Default()
	seq.Parallel = 1
	par := cluster.Default()
	par.Parallel = 8

	a, b := StageBreakdown(seq), StageBreakdown(par)
	if a != b {
		t.Fatalf("breakdown diverged between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	for _, stage := range []string{"wr.create", "wqe.post", "dma.fetch", "xmit", "complete", "measured end-to-end"} {
		if !strings.Contains(a, stage) {
			t.Fatalf("report missing stage %q:\n%s", stage, a)
		}
	}
}

// TestExtraExperimentsRegistered: the diagnostics resolve by id but stay
// out of the paper set, so `-experiment all` output is unchanged.
func TestExtraExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"breakdown", "crossapi", "kvserve"} {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("%s experiment not resolvable", id)
		}
		for _, r := range Experiments() {
			if r.ID == id {
				t.Fatalf("%s leaked into the paper experiment set", id)
			}
		}
	}
}
