package bench

import (
	"testing"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// Saturation and robustness tests: drive the full stacks much harder than
// the paper's benchmarks and assert nothing is lost, duplicated or
// deadlocked.

func TestExtollBidirectionalSaturation(t *testing.T) {
	// Both GPUs stream at each other simultaneously on separate ports;
	// every payload must arrive intact despite shared wire/datapath.
	p := cluster.Default()
	r := newExtollRig(p, 1<<20)
	r.openPorts(2)
	r.fillPayload(64 << 10)
	const msgs = 24
	mask := seqMask(64 << 10)
	off := memspace.Addr(stampOff(64 << 10))

	// A sends on port 0, B sends on port 1, concurrently.
	doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		for i := 1; i <= msgs; i++ {
			w.StGlobalU64(r.aSend+off, uint64(i))
			r.ra.DevPut(w, 0, r.aSendN, r.bRecvN, 64<<10, extoll.FlagReqNotif)
			r.ra.DevWaitNotif(w, 0, extoll.ClassRequester)
		}
	})
	doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		for i := 1; i <= msgs; i++ {
			w.StGlobalU64(r.bSend+off, uint64(i))
			r.rb.DevPut(w, 1, r.bSendN, r.aRecvN, 64<<10, extoll.FlagReqNotif)
			r.rb.DevWaitNotif(w, 1, extoll.ClassRequester)
		}
	})
	// Receivers poll for the final sequence numbers.
	sawA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		w.PollGlobalU64Masked(r.aRecv+off, uint64(msgs)&mask, mask)
	})
	sawB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		w.PollGlobalU64Masked(r.bRecv+off, uint64(msgs)&mask, mask)
	})
	r.tb.E.Run()
	for _, d := range []*sim.Completion{doneA, doneB, sawA, sawB} {
		mustDone(d, "bidirectional saturation")
	}
	if r.tb.A.Extoll.Stats().PutsSent != msgs || r.tb.B.Extoll.Stats().PutsSent != msgs {
		t.Fatalf("puts lost: %d / %d", r.tb.A.Extoll.Stats().PutsSent, r.tb.B.Extoll.Stats().PutsSent)
	}
	if r.tb.A.Extoll.Stats().NotificationOverflows+r.tb.B.Extoll.Stats().NotificationOverflows != 0 {
		t.Fatal("notification overflow under saturation")
	}
}

func TestExtollAllPortsConcurrently(t *testing.T) {
	// Every port pair carries traffic at once; per-port notification
	// rings must stay isolated.
	p := cluster.Default()
	const pairs = 16
	const perPair = 30
	res := ExtollMessageRate(p, RateBlocks, pairs, perPair)
	if res.Messages != pairs*perPair {
		t.Fatalf("messages = %d", res.Messages)
	}
	if res.MsgsPerSec <= 0 {
		t.Fatal("no throughput")
	}
}

func TestIBManyQPsInterleavedTraffic(t *testing.T) {
	// 8 QPs posting interleaved writes with shared CQs per QP; all must
	// complete without cross-QP corruption.
	p := cluster.Default()
	tb := cluster.NewIBPair(fitParams(p, 1<<20))
	va, vb := core.NewVerbs(tb.A), core.NewVerbs(tb.B)
	const qps = 8
	const per = 25
	type pair struct{ qa *core.VQP }
	var qpairs []pair
	for q := 0; q < qps; q++ {
		qa := va.CreateQP(64, 16, 64, false)
		qb := vb.CreateQP(64, 16, 64, false)
		core.ConnectVQPs(qa, qb)
		qpairs = append(qpairs, pair{qa: qa})
	}
	src := tb.A.AllocDev(4096)
	dst := tb.B.AllocDev(uint64(qps * per * 8))
	srcMR := va.RegMR(src, 4096)
	dstMR := vb.RegMR(dst, uint64(qps*per*8))

	done := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: qps}, func(w *gpusim.Warp) {
		q := w.Block
		for i := 0; i < per; i++ {
			w.StGlobalU64(src, uint64(q*1000+i)) // racy across blocks; value unused
			va.DevPostSend(w, qpairs[q].qa, ibsim.WQE{
				Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: uint64(i),
				LAddr: uint64(src), LKey: srcMR.LKey, Length: 8,
				RAddr: uint64(dst) + uint64((q*per+i)*8), RKey: dstMR.RKey,
			})
			va.DevPollCQ(w, qpairs[q].qa.SendCQ)
		}
	})
	tb.E.Run()
	mustDone(done, "interleaved QP traffic")
	if got := tb.B.IB.Stats().PacketsRx; got != qps*per {
		t.Fatalf("received %d of %d packets", got, qps*per)
	}
	if tb.A.IB.Stats().ProtectionErrs+tb.B.IB.Stats().ProtectionErrs != 0 {
		t.Fatal("protection errors under load")
	}
	if tb.A.IB.Stats().CQOverflows != 0 {
		t.Fatal("CQ overflow under load")
	}
}

func TestLongRunNotificationRingWrap(t *testing.T) {
	// More messages than ring entries: the consumed-and-freed ring must
	// wrap indefinitely without overflow.
	p := cluster.Default()
	p.ExtNotifEntries = 32 // tiny ring
	r := newExtollRig(p, 4096)
	r.openPorts(1)
	r.fillPayload(64)
	const msgs = 200 // > 6 ring wraps
	done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		for i := 0; i < msgs; i++ {
			r.ra.DevPut(w, 0, r.aSendN, r.bRecvN, 64, extoll.FlagReqNotif)
			r.ra.DevWaitNotif(w, 0, extoll.ClassRequester)
		}
	})
	r.tb.E.Run()
	mustDone(done, "ring wrap run")
	st := r.tb.A.Extoll.Stats()
	if st.NotificationOverflows != 0 {
		t.Fatalf("overflows on a consumed ring: %d", st.NotificationOverflows)
	}
	if st.NotificationsWritten != msgs {
		t.Fatalf("notifications = %d, want %d", st.NotificationsWritten, msgs)
	}
}
