package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/runner"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a reproduced paper figure: several series over a shared
// x-range.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Format renders the figure as an aligned text table, one row per x value
// and one column per series.
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteString("\n")
	// Collect the union of x values (series usually share them).
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-12.0f", x)
		for _, s := range f.Series {
			val, ok := seriesAt(s, x)
			if !ok {
				fmt.Fprintf(&b, " %22s", "-")
				continue
			}
			fmt.Fprintf(&b, " %22.4g", val)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(y-axis: %s)\n", f.YLabel)
	return b.String()
}

func seriesAt(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// CounterTable is a reproduced paper table of performance counters.
type CounterTable struct {
	ID      string
	Title   string
	Columns []string
	Rows    []CounterRow
}

// CounterRow is one metric across the table's columns.
type CounterRow struct {
	Metric string
	Values []uint64
}

// Format renders the counter table.
func (t CounterTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-28s", "metric")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %18s", c)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-28s", r.Metric)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %18d", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func counterRows(cols ...gpusim.Counters) []CounterRow {
	get := func(f func(gpusim.Counters) uint64) []uint64 {
		out := make([]uint64, len(cols))
		for i, c := range cols {
			out[i] = f(c)
		}
		return out
	}
	return []CounterRow{
		{"sysmem reads (32B)", get(func(c gpusim.Counters) uint64 { return c.SysmemReads32B })},
		{"sysmem writes (32B)", get(func(c gpusim.Counters) uint64 { return c.SysmemWrites32B })},
		{"globmem64 reads", get(func(c gpusim.Counters) uint64 { return c.Globmem64Reads })},
		{"globmem64 writes", get(func(c gpusim.Counters) uint64 { return c.Globmem64Writes })},
		{"l2 read hits", get(func(c gpusim.Counters) uint64 { return c.L2ReadHits })},
		{"l2 read requests", get(func(c gpusim.Counters) uint64 { return c.L2ReadRequests })},
		{"l2 write requests", get(func(c gpusim.Counters) uint64 { return c.L2WriteRequests })},
		{"memory accesses (r/w)", get(func(c gpusim.Counters) uint64 { return c.MemAccesses })},
		{"instructions executed", get(func(c gpusim.Counters) uint64 { return c.InstrExecuted })},
	}
}

// Experiment sweep parameters (paper axis ranges).
var (
	latencySizes   = []int{4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144}
	bandwidthSizes = []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}
	fig3Sizes      = []int{4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864}
	ratePairs      = []int{1, 2, 4, 8, 16, 32}
)

func latencyIters(size int) (iters, warmup int) {
	switch {
	case size >= 4<<20:
		return 2, 1
	case size >= 64<<10:
		return 5, 1
	default:
		return 10, 2
	}
}

func streamMessages(size int) int {
	n := (32 << 20) / size
	if n < 6 {
		return 6
	}
	if n > 192 {
		return 192
	}
	return n
}

// labels renders a mode/method list to series labels.
func labels[T fmt.Stringer](ms []T) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

// gridCell identifies one (series, x) point of a figure grid.
type gridCell struct{ si, xi int }

// gridSeries measures every (series, x) cell of a figure — each on its
// own isolated engine and testbed — sharded across the harness worker
// pool (p.Parallel workers, GOMAXPROCS when 0). The series are assembled
// in fixed grid order, so the figure's bytes are identical for any
// worker count.
func gridSeries(p cluster.Params, seriesLabels []string, xs []int, eval func(si, xi int) float64) []Series {
	cells := make([]gridCell, 0, len(seriesLabels)*len(xs))
	for si := range seriesLabels {
		for xi := range xs {
			cells = append(cells, gridCell{si, xi})
		}
	}
	ys := runner.Map(p.Parallel, cells, func(_ int, c gridCell) float64 {
		return eval(c.si, c.xi)
	})
	series := make([]Series, len(seriesLabels))
	for si, label := range seriesLabels {
		s := Series{Label: label, X: make([]float64, len(xs)), Y: make([]float64, len(xs))}
		for xi, x := range xs {
			s.X[xi] = float64(x)
			s.Y[xi] = ys[si*len(xs)+xi]
		}
		series[si] = s
	}
	return series
}

// Fig1a reproduces the EXTOLL latency plot.
func Fig1a(p cluster.Params) Figure {
	modes := []ControlMode{ExtDirect, ExtPollOnGPU, ExtAssisted, ExtHostControlled}
	return Figure{ID: "Fig1a", Title: "EXTOLL RMA ping-pong latency",
		XLabel: "size[B]", YLabel: "latency [us]",
		Series: gridSeries(p, labels(modes), latencySizes, func(si, xi int) float64 {
			size := latencySizes[xi]
			iters, warm := latencyIters(size)
			return ExtollPingPong(p, modes[si], size, iters, warm).HalfRTT.Microseconds()
		})}
}

// Fig1b reproduces the EXTOLL bandwidth plot.
func Fig1b(p cluster.Params) Figure {
	modes := []ControlMode{ExtDirect, ExtAssisted, ExtHostControlled}
	return Figure{ID: "Fig1b", Title: "EXTOLL RMA streaming bandwidth",
		XLabel: "size[B]", YLabel: "bandwidth [MB/s]",
		Series: gridSeries(p, labels(modes), bandwidthSizes, func(si, xi int) float64 {
			size := bandwidthSizes[xi]
			return ExtollStream(p, modes[si], size, streamMessages(size)).BytesPerSec / 1e6
		})}
}

// Fig2 reproduces the EXTOLL message-rate plot (64-byte messages).
func Fig2(p cluster.Params) Figure {
	methods := []RateMethod{RateBlocks, RateKernels, RateAssisted, RateHostControlled}
	return Figure{ID: "Fig2", Title: "EXTOLL RMA message rate, 64B messages",
		XLabel: "pairs", YLabel: "message rate [msgs/s]",
		Series: gridSeries(p, labels(methods), ratePairs, func(si, xi int) float64 {
			return ExtollMessageRate(p, methods[si], ratePairs[xi], 100).MsgsPerSec
		})}
}

// Table1 reproduces the EXTOLL polling-approach counter comparison
// (ping-pong, 100 iterations, 1 KiB payload; counters from the origin
// GPU).
func Table1(p cluster.Params) CounterTable {
	modes := []ControlMode{ExtDirect, ExtPollOnGPU}
	res := runner.Map(p.Parallel, modes, func(_ int, m ControlMode) LatencyResult {
		return ExtollPingPong(p, m, 1024, 100, 0)
	})
	return CounterTable{
		ID:      "TableI",
		Title:   "EXTOLL polling approaches (100 iters, 1KiB)",
		Columns: []string{"system memory", "device memory"},
		Rows:    counterRows(res[0].Counters, res[1].Counters),
	}
}

// Fig3 reproduces the put-time vs polling-time decomposition.
func Fig3(p cluster.Params) Figure {
	modes := []ControlMode{ExtDirect, ExtPollOnGPU}
	return Figure{ID: "Fig3", Title: "EXTOLL polling time / WR generation time",
		XLabel: "payload[B]", YLabel: "polling time / put time",
		Series: gridSeries(p, []string{"system memory", "device memory"}, fig3Sizes,
			func(si, xi int) float64 {
				size := fig3Sizes[xi]
				iters, warm := latencyIters(size)
				return ExtollPingPong(p, modes[si], size, iters, warm).Ratio()
			})}
}

// Fig4a reproduces the InfiniBand latency plot.
func Fig4a(p cluster.Params) Figure {
	modes := []ControlMode{IBBufOnGPU, IBBufOnHost, IBAssisted, IBHostControlled}
	return Figure{ID: "Fig4a", Title: "InfiniBand Verbs ping-pong latency",
		XLabel: "size[B]", YLabel: "latency [us]",
		Series: gridSeries(p, labels(modes), latencySizes, func(si, xi int) float64 {
			size := latencySizes[xi]
			iters, warm := latencyIters(size)
			return IBPingPong(p, modes[si], size, iters, warm).HalfRTT.Microseconds()
		})}
}

// Fig4b reproduces the InfiniBand bandwidth plot.
func Fig4b(p cluster.Params) Figure {
	modes := []ControlMode{IBBufOnGPU, IBBufOnHost, IBAssisted, IBHostControlled}
	return Figure{ID: "Fig4b", Title: "InfiniBand Verbs streaming bandwidth",
		XLabel: "size[B]", YLabel: "bandwidth [MB/s]",
		Series: gridSeries(p, labels(modes), bandwidthSizes, func(si, xi int) float64 {
			size := bandwidthSizes[xi]
			return IBStream(p, modes[si], size, streamMessages(size)).BytesPerSec / 1e6
		})}
}

// Fig5 reproduces the InfiniBand message-rate plot.
func Fig5(p cluster.Params) Figure {
	methods := []RateMethod{RateBlocks, RateKernels, RateAssisted, RateHostControlled}
	return Figure{ID: "Fig5", Title: "InfiniBand message rate, 64B messages",
		XLabel: "pairs", YLabel: "message rate [msgs/s]",
		Series: gridSeries(p, labels(methods), ratePairs, func(si, xi int) float64 {
			return IBMessageRate(p, methods[si], ratePairs[xi], 80).MsgsPerSec
		})}
}

// Table2 reproduces the InfiniBand buffer-placement counter comparison.
func Table2(p cluster.Params) CounterTable {
	modes := []ControlMode{IBBufOnHost, IBBufOnGPU}
	res := runner.Map(p.Parallel, modes, func(_ int, m ControlMode) LatencyResult {
		return IBPingPong(p, m, 1024, 100, 0)
	})
	t := CounterTable{
		ID:      "TableII",
		Title:   "InfiniBand buffer placement (100 iters, 1KiB)",
		Columns: []string{"buffer on host", "buffer on GPU"},
		Rows:    counterRows(res[0].Counters, res[1].Counters),
	}
	post, poll := IBSingleOpInstr(p)
	t.Rows = append(t.Rows,
		CounterRow{"instr per ibv_post_send", []uint64{post, post}},
		CounterRow{"instr per ibv_poll_cq", []uint64{poll, poll}},
	)
	return t
}

// JSON renders the figure as a machine-readable document for external
// plotting tools.
func (f Figure) JSON() string {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		panic(err)
	}
	return string(data)
}

// JSON renders the counter table as a machine-readable document.
func (t CounterTable) JSON() string {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		panic(err)
	}
	return string(data)
}

// Runner describes one reproducible experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(p cluster.Params) string
	// RunJSON, when non-nil, renders the experiment as JSON.
	RunJSON func(p cluster.Params) string
}

// Experiments lists every figure and table of the paper's evaluation.
func Experiments() []Runner {
	return []Runner{
		{"fig1a", "EXTOLL latency vs size, four control modes",
			func(p cluster.Params) string { return Fig1a(p).Format() },
			func(p cluster.Params) string { return Fig1a(p).JSON() }},
		{"fig1b", "EXTOLL bandwidth vs size",
			func(p cluster.Params) string { return Fig1b(p).Format() },
			func(p cluster.Params) string { return Fig1b(p).JSON() }},
		{"fig2", "EXTOLL message rate vs connection pairs",
			func(p cluster.Params) string { return Fig2(p).Format() },
			func(p cluster.Params) string { return Fig2(p).JSON() }},
		{"table1", "EXTOLL polling-approach performance counters",
			func(p cluster.Params) string { return Table1(p).Format() },
			func(p cluster.Params) string { return Table1(p).JSON() }},
		{"fig3", "EXTOLL put/polling time decomposition",
			func(p cluster.Params) string { return Fig3(p).Format() },
			func(p cluster.Params) string { return Fig3(p).JSON() }},
		{"fig4a", "InfiniBand latency vs size, four control modes",
			func(p cluster.Params) string { return Fig4a(p).Format() },
			func(p cluster.Params) string { return Fig4a(p).JSON() }},
		{"fig4b", "InfiniBand bandwidth vs size",
			func(p cluster.Params) string { return Fig4b(p).Format() },
			func(p cluster.Params) string { return Fig4b(p).JSON() }},
		{"fig5", "InfiniBand message rate vs connection pairs",
			func(p cluster.Params) string { return Fig5(p).Format() },
			func(p cluster.Params) string { return Fig5(p).JSON() }},
		{"table2", "InfiniBand buffer-placement performance counters",
			func(p cluster.Params) string { return Table2(p).Format() },
			func(p cluster.Params) string { return Table2(p).JSON() }},
		{"asic", "EXTOLL FPGA vs projected ASIC (700 MHz / 128-bit)",
			func(p cluster.Params) string { return ASICComparison() }, nil},
		{"msgcmp", "two-sided send/recv vs one-sided put (§II-B)",
			func(p cluster.Params) string { return MsgVsPut(p) }, nil},
		{"claims", "the paper's §VI design claims, quantified",
			func(p cluster.Params) string { return ClaimsReport(p) }, nil},
		{"modern", "2014 testbed vs NVSHMEM-era what-if hardware",
			func(p cluster.Params) string { return ModernComparison() }, nil},
		{"staged", "GPUDirect vs host-staged communication (§II background)",
			func(p cluster.Params) string { return StagedComparison(p) }, nil},
		{"faultsweep", "latency/goodput degradation under wire loss + blackout recovery CDF",
			func(p cluster.Params) string { return FaultSweep(p, faultSweepSeed(p)) }, nil},
	}
}

// ExtraExperiments lists diagnostic experiments that are not part of the
// paper's evaluation. `-experiment all` deliberately excludes them so the
// shipped figure bytes stay stable; they run by explicit id.
func ExtraExperiments() []Runner {
	return []Runner{
		{"breakdown", "per-stage latency breakdown of a single 4KiB put (span tracing)",
			func(p cluster.Params) string { return StageBreakdown(p) }, nil},
		{"crossapi", "both fabrics mode-for-mode through the unified transport layer",
			func(p cluster.Params) string { return CrossAPI(p) }, nil},
		{"kvserve", "replicated put/get KV serving: quorums, failover, fault-sweep SLOs",
			func(p cluster.Params) string { return KVServe(p) }, nil},
		{"scaling", "N-rank collectives over switched fat-tree/torus fabrics + teams + torus fault sweep",
			func(p cluster.Params) string { return Scaling(p) }, nil},
		{"scaling512", "bounded scaling smoke: 512-rank allreduce + teams sub-table (CI)",
			func(p cluster.Params) string { return Scaling512(p) }, nil},
	}
}

// faultSweepSeed picks the sweep's master seed: the -seed flag when given,
// else a fixed default so the experiment is reproducible out of the box.
func faultSweepSeed(p cluster.Params) uint64 {
	if p.FaultSeed != 0 {
		return p.FaultSeed
	}
	return 42
}

// Lookup finds an experiment by id, searching the paper evaluation first
// and the extra diagnostics second.
func Lookup(id string) (Runner, bool) {
	for _, r := range Experiments() {
		if r.ID == id {
			return r, true
		}
	}
	for _, r := range ExtraExperiments() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
