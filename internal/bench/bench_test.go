package bench

import (
	"testing"

	"putget/internal/cluster"
	"putget/internal/sim"
)

// ---- EXTOLL latency ----

func TestExtollPingPongAllModesComplete(t *testing.T) {
	p := cluster.Default()
	for _, mode := range []ControlMode{ExtDirect, ExtPollOnGPU, ExtAssisted, ExtHostControlled} {
		res := ExtollPingPong(p, mode, 1024, 5, 2)
		if res.HalfRTT <= 0 {
			t.Fatalf("%v: nonpositive latency", mode)
		}
		if res.HalfRTT > 100*sim.Microsecond {
			t.Fatalf("%v: implausible latency %v", mode, res.HalfRTT)
		}
	}
}

func TestExtollLatencyOrderingSmallMessages(t *testing.T) {
	// §V-A.1: host < pollOnGPU < assisted < direct for small messages;
	// direct ≈ 2× host.
	p := cluster.Default()
	lat := map[ControlMode]sim.Duration{}
	for _, mode := range []ControlMode{ExtDirect, ExtPollOnGPU, ExtAssisted, ExtHostControlled} {
		lat[mode] = ExtollPingPong(p, mode, 16, 10, 2).HalfRTT
	}
	if !(lat[ExtHostControlled] < lat[ExtPollOnGPU] &&
		lat[ExtPollOnGPU] < lat[ExtAssisted] &&
		lat[ExtAssisted] < lat[ExtDirect]) {
		t.Fatalf("latency ordering wrong: host=%v pollGPU=%v assisted=%v direct=%v",
			lat[ExtHostControlled], lat[ExtPollOnGPU], lat[ExtAssisted], lat[ExtDirect])
	}
	ratio := float64(lat[ExtDirect]) / float64(lat[ExtHostControlled])
	if ratio < 1.5 || ratio > 3.5 {
		t.Fatalf("direct/host ratio = %.2f, want ≈2", ratio)
	}
}

func TestExtollLatencyGrowsWithSize(t *testing.T) {
	p := cluster.Default()
	small := ExtollPingPong(p, ExtHostControlled, 64, 5, 1).HalfRTT
	large := ExtollPingPong(p, ExtHostControlled, 256<<10, 3, 1).HalfRTT
	if large < 10*small {
		t.Fatalf("256KiB (%v) should dwarf 64B (%v)", large, small)
	}
}

func TestExtollPollSplitRatios(t *testing.T) {
	// Fig. 3 at small sizes: sysmem polling ≈10× the put time, device
	// polling ≈2.5×.
	p := cluster.Default()
	direct := ExtollPingPong(p, ExtDirect, 1024, 10, 2)
	poll := ExtollPingPong(p, ExtPollOnGPU, 1024, 10, 2)
	if direct.Ratio() < 4 {
		t.Fatalf("sysmem polling ratio = %.1f, want ≫1 (paper ≈10)", direct.Ratio())
	}
	if poll.Ratio() >= direct.Ratio() {
		t.Fatalf("device polling ratio (%.1f) should undercut sysmem (%.1f)",
			poll.Ratio(), direct.Ratio())
	}
	if poll.Ratio() < 1 {
		t.Fatalf("device polling ratio = %.1f, want >1", poll.Ratio())
	}
}

func TestExtollCountersTable1Shape(t *testing.T) {
	// Table I structure: device polling does 3 sysmem writes and no
	// sysmem reads per iteration; sysmem polling does dozens of reads and
	// has zero L2 hits; device polling is L2-hit dominated and needs
	// fewer instructions.
	p := cluster.Default()
	const iters = 100
	direct := ExtollPingPong(p, ExtDirect, 1024, iters, 0).Counters
	poll := ExtollPingPong(p, ExtPollOnGPU, 1024, iters, 0).Counters

	if poll.SysmemReads32B != 0 {
		t.Fatalf("device polling: %d sysmem reads, want 0", poll.SysmemReads32B)
	}
	if got := poll.SysmemWrites32B; got != 3*iters {
		t.Fatalf("device polling: %d sysmem writes, want exactly 3/iteration", got)
	}
	if direct.SysmemReads32B < 10*iters {
		t.Fatalf("sysmem polling: only %d sysmem reads over %d iters", direct.SysmemReads32B, iters)
	}
	if direct.L2ReadHits != 0 {
		t.Fatalf("sysmem polling: %d L2 hits, want 0", direct.L2ReadHits)
	}
	if poll.L2ReadHits == 0 {
		t.Fatal("device polling produced no L2 hits")
	}
	if direct.InstrExecuted <= poll.InstrExecuted {
		t.Fatalf("sysmem polling (%d instr) should need more instructions than device polling (%d)",
			direct.InstrExecuted, poll.InstrExecuted)
	}
}

// ---- EXTOLL bandwidth ----

func TestExtollStreamBandwidthShape(t *testing.T) {
	p := cluster.Default()
	// Host-controlled peaks near the P2P/wire limit at 256KiB...
	peak := ExtollStream(p, ExtHostControlled, 256<<10, 16)
	if peak.BytesPerSec < 0.6e9 || peak.BytesPerSec > 1.1e9 {
		t.Fatalf("peak bandwidth = %.3g B/s, want ≈0.8-0.9e9", peak.BytesPerSec)
	}
	// ...and collapses past 1 MiB (the PCIe P2P read anomaly).
	big := ExtollStream(p, ExtHostControlled, 4<<20, 6)
	if big.BytesPerSec > 0.5e9 {
		t.Fatalf("no P2P collapse: %.3g B/s at 4MiB", big.BytesPerSec)
	}
	// Small messages are overhead-dominated.
	small := ExtollStream(p, ExtHostControlled, 64, 64)
	if small.BytesPerSec > 0.2e9 {
		t.Fatalf("64B bandwidth implausibly high: %.3g", small.BytesPerSec)
	}
}

func TestExtollStreamGPUSlowerMidSizes(t *testing.T) {
	p := cluster.Default()
	host := ExtollStream(p, ExtHostControlled, 16<<10, 24)
	gpu := ExtollStream(p, ExtDirect, 16<<10, 24)
	if gpu.BytesPerSec >= host.BytesPerSec {
		t.Fatalf("GPU-controlled (%.3g) should trail host-controlled (%.3g) at 16KiB",
			gpu.BytesPerSec, host.BytesPerSec)
	}
}

func TestExtollP2PCollapseAblation(t *testing.T) {
	p := cluster.Default()
	p.P2PCollapseOff = true
	big := ExtollStream(p, ExtHostControlled, 4<<20, 6)
	if big.BytesPerSec < 0.6e9 {
		t.Fatalf("with collapse disabled, 4MiB should stream fast; got %.3g", big.BytesPerSec)
	}
}

// ---- EXTOLL message rate ----

func TestExtollMessageRateOrderingAndScaling(t *testing.T) {
	p := cluster.Default()
	const perPair = 60
	host1 := ExtollMessageRate(p, RateHostControlled, 1, perPair)
	host32 := ExtollMessageRate(p, RateHostControlled, 32, perPair)
	blocks32 := ExtollMessageRate(p, RateBlocks, 32, perPair)
	kernels32 := ExtollMessageRate(p, RateKernels, 32, perPair)
	assisted4 := ExtollMessageRate(p, RateAssisted, 4, perPair)
	assisted32 := ExtollMessageRate(p, RateAssisted, 32, perPair)

	if host32.MsgsPerSec <= host1.MsgsPerSec {
		t.Fatalf("host rate must scale with pairs: %.3g → %.3g", host1.MsgsPerSec, host32.MsgsPerSec)
	}
	// "both CPU-controlled data transfers are still faster"
	if blocks32.MsgsPerSec >= host32.MsgsPerSec {
		t.Fatalf("GPU blocks (%.3g) should trail host (%.3g) at 32 pairs",
			blocks32.MsgsPerSec, host32.MsgsPerSec)
	}
	// blocks ≈ kernels
	rel := blocks32.MsgsPerSec / kernels32.MsgsPerSec
	if rel < 0.6 || rel > 1.6 {
		t.Fatalf("blocks (%.3g) and kernels (%.3g) should be similar", blocks32.MsgsPerSec, kernels32.MsgsPerSec)
	}
	// assisted saturates: 32 pairs no better than ~4.
	if assisted32.MsgsPerSec > 1.5*assisted4.MsgsPerSec {
		t.Fatalf("assisted should be flat beyond 4 pairs: %.3g vs %.3g",
			assisted4.MsgsPerSec, assisted32.MsgsPerSec)
	}
}

// ---- IB latency ----

func TestIBPingPongAllModesComplete(t *testing.T) {
	p := cluster.Default()
	for _, mode := range []ControlMode{IBBufOnGPU, IBBufOnHost, IBAssisted, IBHostControlled} {
		res := IBPingPong(p, mode, 1024, 5, 2)
		if res.HalfRTT <= 0 || res.HalfRTT > 200*sim.Microsecond {
			t.Fatalf("%v: implausible latency %v", mode, res.HalfRTT)
		}
	}
}

func TestIBLatencyGPUFarAboveHost(t *testing.T) {
	// §V-B.1: GPU-initiated latency is much higher than CPU-initiated for
	// small messages; buffer placement makes only a small difference.
	p := cluster.Default()
	gpuQ := IBPingPong(p, IBBufOnGPU, 16, 10, 2).HalfRTT
	hostQ := IBPingPong(p, IBBufOnHost, 16, 10, 2).HalfRTT
	host := IBPingPong(p, IBHostControlled, 16, 10, 2).HalfRTT
	assisted := IBPingPong(p, IBAssisted, 16, 10, 2).HalfRTT

	if float64(gpuQ) < 2.5*float64(host) {
		t.Fatalf("GPU-controlled (%v) should be ≫ host-controlled (%v)", gpuQ, host)
	}
	diff := float64(gpuQ) / float64(hostQ)
	if diff < 0.7 || diff > 1.4 {
		t.Fatalf("queue placement should make a small difference: %v vs %v", gpuQ, hostQ)
	}
	if !(host < assisted && assisted < gpuQ) {
		t.Fatalf("ordering wrong: host=%v assisted=%v gpu=%v", host, assisted, gpuQ)
	}
}

// ---- IB bandwidth ----

func TestIBStreamBandwidthShape(t *testing.T) {
	p := cluster.Default()
	peak := IBStream(p, IBHostControlled, 256<<10, 16)
	if peak.BytesPerSec < 0.7e9 || peak.BytesPerSec > 1.3e9 {
		t.Fatalf("IB peak = %.3g B/s, want ≈1e9 (P2P limited)", peak.BytesPerSec)
	}
	big := IBStream(p, IBHostControlled, 4<<20, 6)
	if big.BytesPerSec > 0.5e9 {
		t.Fatalf("no P2P collapse on IB: %.3g B/s at 4MiB", big.BytesPerSec)
	}
	gpu := IBStream(p, IBBufOnGPU, 256<<10, 16)
	if gpu.BytesPerSec < 0.5*peak.BytesPerSec {
		t.Fatalf("GPU-controlled IB bandwidth too low: %.3g vs %.3g", gpu.BytesPerSec, peak.BytesPerSec)
	}
}

// ---- IB message rate ----

func TestIBMessageRateGPUCatchesUpAt32(t *testing.T) {
	// §V-B.2: with one QP per block the WR generation parallelizes
	// perfectly; at 32 connections the GPU nearly matches the host.
	p := cluster.Default()
	const perPair = 50
	host32 := IBMessageRate(p, RateHostControlled, 32, perPair)
	blocks32 := IBMessageRate(p, RateBlocks, 32, perPair)
	blocks1 := IBMessageRate(p, RateBlocks, 1, perPair)

	if blocks32.MsgsPerSec < 0.4*host32.MsgsPerSec {
		t.Fatalf("GPU at 32 QPs (%.3g) should approach host (%.3g)",
			blocks32.MsgsPerSec, host32.MsgsPerSec)
	}
	if blocks32.MsgsPerSec < 8*blocks1.MsgsPerSec {
		t.Fatalf("GPU rate should scale with QPs: %.3g → %.3g", blocks1.MsgsPerSec, blocks32.MsgsPerSec)
	}
	assisted4 := IBMessageRate(p, RateAssisted, 4, perPair)
	assisted16 := IBMessageRate(p, RateAssisted, 16, perPair)
	if assisted16.MsgsPerSec > 1.5*assisted4.MsgsPerSec {
		t.Fatalf("assisted should be flat beyond 4 pairs: %.3g vs %.3g",
			assisted4.MsgsPerSec, assisted16.MsgsPerSec)
	}
}

func TestIBBlocksVsKernelsSimilar(t *testing.T) {
	p := cluster.Default()
	blocks := IBMessageRate(p, RateBlocks, 8, 40)
	kernels := IBMessageRate(p, RateKernels, 8, 40)
	rel := blocks.MsgsPerSec / kernels.MsgsPerSec
	if rel < 0.6 || rel > 1.6 {
		t.Fatalf("blocks (%.3g) vs kernels (%.3g) should be similar", blocks.MsgsPerSec, kernels.MsgsPerSec)
	}
}

// ---- ablations ----

func TestIBSingleOpInstrMatchesPaper(t *testing.T) {
	post, poll := IBSingleOpInstr(cluster.Default())
	if post < 420 || post > 460 {
		t.Fatalf("post_send = %d instr, paper: 442", post)
	}
	if poll < 260 || poll > 300 {
		t.Fatalf("poll_cq = %d instr, paper: 283", poll)
	}
}

func TestAblationEndianness(t *testing.T) {
	withOpt, without := AblationEndianness(cluster.Default())
	if without <= withOpt || without-withOpt < 100 {
		t.Fatalf("static-field optimization saves %d instr (from %d), want ≥100", without-withOpt, without)
	}
}

func TestAblationCollectivePosts(t *testing.T) {
	ex := AblationCollectivePostExtoll(cluster.Default())
	if ex.CollectiveTxns >= ex.SingleTxns || ex.CollectiveInstr > ex.SingleInstr {
		t.Fatalf("EXTOLL collective post not cheaper: %+v", ex)
	}
	ib := AblationCollectivePostIB(cluster.Default())
	if ib.CollectiveInstr >= ib.SingleInstr/2 {
		t.Fatalf("IB collective post should halve instructions: %+v", ib)
	}
	if ib.CollectiveTxns >= ib.SingleTxns {
		t.Fatalf("IB collective post should cut PCIe transactions: %+v", ib)
	}
}

func TestAblationNotifPlacement(t *testing.T) {
	host, dev := AblationNotifPlacement(cluster.Default(), 1024)
	// Claim 3: rings in GPU memory remove the PCIe polling round trips...
	if dev.Counters.SysmemReads32B >= host.Counters.SysmemReads32B {
		t.Fatalf("device rings should eliminate sysmem poll reads: %d vs %d",
			dev.Counters.SysmemReads32B, host.Counters.SysmemReads32B)
	}
	// ...and lower the latency of the notification-polling path.
	if dev.HalfRTT >= host.HalfRTT {
		t.Fatalf("device rings should cut latency: %v vs %v", dev.HalfRTT, host.HalfRTT)
	}
}

func TestAblationP2PCollapseBandwidth(t *testing.T) {
	with, without := AblationP2PCollapse(cluster.Default())
	if without.BytesPerSec < 2*with.BytesPerSec {
		t.Fatalf("collapse should at least halve 4MiB bandwidth: %.3g vs %.3g",
			with.BytesPerSec, without.BytesPerSec)
	}
}

func TestMsgVsPutOverheadPositive(t *testing.T) {
	// §II-B: two-sided semantics cost more than one-sided put at every
	// size (tag matching + eager buffering), with the gap shrinking once
	// the rendezvous protocol kicks in.
	p := cluster.Default()
	small2 := MsgPingPong(p, 1024, 8, 2).HalfRTT
	small1 := IBPingPong(p, IBBufOnGPU, 1024, 8, 2).HalfRTT
	if small2 <= small1 {
		t.Fatalf("send/recv (%v) should exceed put (%v) at 1KiB", small2, small1)
	}
	big2 := MsgPingPong(p, 65536, 5, 1).HalfRTT
	big1 := IBPingPong(p, IBBufOnGPU, 65536, 5, 1).HalfRTT
	smallOver := float64(small2)/float64(small1) - 1
	bigOver := float64(big2)/float64(big1) - 1
	if bigOver >= smallOver {
		t.Fatalf("rendezvous should amortize: overhead %.0f%% at 1KiB vs %.0f%% at 64KiB",
			smallOver*100, bigOver*100)
	}
}

func TestASICComparisonRuns(t *testing.T) {
	out := ASICComparison()
	if len(out) < 100 {
		t.Fatalf("ASIC comparison output too short: %q", out)
	}
}

func TestStagedCrossover(t *testing.T) {
	// §II background: GPUDirect wins while the P2P path is healthy;
	// host staging overtakes past the 1MiB collapse.
	p := cluster.Default()
	dSmall := ExtollStream(p, ExtHostControlled, 64<<10, 10).BytesPerSec
	sSmall := StagedStream(p, 64<<10, 10).BytesPerSec
	if sSmall >= dSmall {
		t.Fatalf("staged (%.3g) should lose to GPUDirect (%.3g) at 64KiB", sSmall, dSmall)
	}
	dBig := ExtollStream(p, ExtHostControlled, 4<<20, 8).BytesPerSec
	sBig := StagedStream(p, 4<<20, 8).BytesPerSec
	if sBig <= dBig {
		t.Fatalf("staged (%.3g) should beat collapsed GPUDirect (%.3g) at 4MiB", sBig, dBig)
	}
	// Latency: staging always pays the two copies.
	dLat := ExtollPingPong(p, ExtHostControlled, 64, 5, 1).HalfRTT
	sLat := StagedPingPong(p, 64, 5, 1).HalfRTT
	if sLat <= dLat {
		t.Fatalf("staged latency (%v) should exceed GPUDirect (%v)", sLat, dLat)
	}
}

func TestModernShrinksGPUGap(t *testing.T) {
	old, now := cluster.Default(), cluster.Modern()
	oldGap := float64(ExtollPingPong(old, ExtDirect, 16, 8, 2).HalfRTT) /
		float64(ExtollPingPong(old, ExtHostControlled, 16, 8, 2).HalfRTT)
	newGap := float64(ExtollPingPong(now, ExtDirect, 16, 8, 2).HalfRTT) /
		float64(ExtollPingPong(now, ExtHostControlled, 16, 8, 2).HalfRTT)
	if newGap >= oldGap {
		t.Fatalf("modern hardware should shrink the GPU gap: %.2f -> %.2f", oldGap, newGap)
	}
	if newGap <= 1.0 {
		t.Fatalf("the gap should survive (%.2f): descriptor generation is still serial", newGap)
	}
}
