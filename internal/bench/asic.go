package bench

import (
	"fmt"
	"strings"

	"putget/internal/cluster"
)

// ASICComparison contrasts the shipped Galibier FPGA (157 MHz, 64-bit
// datapath) with the projected EXTOLL ASIC the paper mentions in §V
// ("core frequency will be increased to about 700MHz and internal
// datapaths become extended to 128bit"). It answers the forward-looking
// question the paper leaves open: how much of the GPU-control penalty is
// the FPGA's fault?
func ASICComparison() string {
	fpga := cluster.Default()
	asic := cluster.ASIC()

	var b strings.Builder
	fmt.Fprintf(&b, "EXTOLL FPGA (157MHz/64b) vs projected ASIC (700MHz/128b)\n\n")

	fmt.Fprintf(&b, "%-34s %12s %12s\n", "metric", "FPGA", "ASIC")
	row := func(name string, f, a float64, unit string) {
		fmt.Fprintf(&b, "%-34s %12.4g %12.4g  %s\n", name, f, a, unit)
	}

	for _, mode := range []ControlMode{ExtDirect, ExtHostControlled} {
		lf := ExtollPingPong(fpga, mode, 16, 10, 2).HalfRTT.Microseconds()
		la := ExtollPingPong(asic, mode, 16, 10, 2).HalfRTT.Microseconds()
		row("latency 16B "+mode.String(), lf, la, "us")
	}
	for _, mode := range []ControlMode{ExtDirect, ExtHostControlled} {
		bf := ExtollStream(fpga, mode, 256<<10, 16).BytesPerSec / 1e6
		ba := ExtollStream(asic, mode, 256<<10, 16).BytesPerSec / 1e6
		row("bandwidth 256KiB "+mode.String(), bf, ba, "MB/s")
	}
	rf := ExtollMessageRate(fpga, RateHostControlled, 32, 80).MsgsPerSec
	ra := ExtollMessageRate(asic, RateHostControlled, 32, 80).MsgsPerSec
	row("msg rate 32 pairs host", rf, ra, "msgs/s")
	rf = ExtollMessageRate(fpga, RateBlocks, 32, 80).MsgsPerSec
	ra = ExtollMessageRate(asic, RateBlocks, 32, 80).MsgsPerSec
	row("msg rate 32 pairs blocks", rf, ra, "msgs/s")

	b.WriteString("\nThe ASIC shrinks the NIC's own pipeline, but dev2dev bandwidth\n")
	b.WriteString("stays pinned by the PCIe peer-to-peer read path and GPU-controlled\n")
	b.WriteString("latency stays dominated by descriptor generation and notification\n")
	b.WriteString("polling — the paper's claims survive the ASIC.\n")
	return b.String()
}
