package bench

import (
	"putget/internal/cluster"
	"putget/internal/transport"
)

// The EXTOLL benchmark entry points are thin bindings of the generic
// harness (harness.go) to the EXTOLL transport adapter; the per-mode
// behavior lives in the harness's control-mode table.

// ExtollPingPong runs the §V-A.1 latency experiment: `iters` measured
// ping-pong exchanges of `size` bytes after `warmup` unmeasured ones,
// between the two GPUs, under the given control mode. The returned
// counters cover GPU A over the measured iterations.
func ExtollPingPong(p cluster.Params, mode ControlMode, size, iters, warmup int) LatencyResult {
	return PingPong(p, transport.KindExtoll, mode, size, iters, warmup)
}

// ExtollStream runs the §V-A.1 bandwidth experiment: `messages` puts of
// `size` bytes A→B; throughput is measured from the first post on A to
// the arrival of the final payload at B.
func ExtollStream(p cluster.Params, mode ControlMode, size, messages int) BandwidthResult {
	return Stream(p, transport.KindExtoll, mode, size, messages)
}

// ExtollMessageRate runs the §V-A.2 experiment: `pairs` connection pairs
// each send `perPair` 64-byte messages over their own RMA port.
func ExtollMessageRate(p cluster.Params, method RateMethod, pairs, perPair int) RateResult {
	return MessageRate(p, transport.KindExtoll, method, pairs, perPair)
}
