package bench

import (
	"bytes"
	"fmt"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// extollRig is a two-node EXTOLL testbed with ping/pong buffers in GPU
// memory on both sides, registered and connected.
type extollRig struct {
	tb     *cluster.Testbed
	ra, rb *core.RMA

	aSend, aRecv memspace.Addr // on GPU A
	bSend, bRecv memspace.Addr // on GPU B

	aSendN, aRecvN extoll.NLA // registered at A
	bSendN, bRecvN extoll.NLA // registered at B
}

// fitParams shrinks the simulated memories to what an experiment needs:
// testbeds are rebuilt per measurement and Go would otherwise touch
// hundreds of megabytes of zeroed pages per point.
func fitParams(p cluster.Params, bufBytes uint64) cluster.Params {
	if need := 2*bufBytes + (64 << 20); p.GPUDevMemSize > need {
		p.GPUDevMemSize = need
	}
	if need := uint64(96 << 20); p.HostRAMSize > need {
		p.HostRAMSize = need
	}
	return p
}

func newExtollRig(p cluster.Params, bufSize uint64) *extollRig {
	tb := cluster.NewExtollPair(fitParams(p, bufSize))
	ra, rb := core.NewRMA(tb.A), core.NewRMA(tb.B)
	r := &extollRig{tb: tb, ra: ra, rb: rb}
	r.aSend = tb.A.AllocDev(bufSize)
	r.aRecv = tb.A.AllocDev(bufSize)
	r.bSend = tb.B.AllocDev(bufSize)
	r.bRecv = tb.B.AllocDev(bufSize)
	r.aSendN = ra.Register(r.aSend, bufSize)
	r.aRecvN = ra.Register(r.aRecv, bufSize)
	r.bSendN = rb.Register(r.bSend, bufSize)
	r.bRecvN = rb.Register(r.bRecv, bufSize)
	return r
}

// openPorts opens and connects ports 0..n-1 pairwise.
func (r *extollRig) openPorts(n int) {
	for i := 0; i < n; i++ {
		r.ra.OpenPort(i)
		r.rb.OpenPort(i)
		extoll.ConnectPorts(r.tb.A.Extoll, i, r.tb.B.Extoll, i)
	}
}

// fillPayload initializes both send buffers with a deterministic pattern.
func (r *extollRig) fillPayload(size int) []byte {
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	mustWrite(r.tb.A.GPU.HostWrite(r.aSend, payload))
	mustWrite(r.tb.B.GPU.HostWrite(r.bSend, payload))
	return payload
}

func mustWrite(err error) {
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
}

func mustDone(c *sim.Completion, what string) {
	if !c.Done() {
		panic("bench: deadlock: " + what + " did not complete")
	}
}

// ExtollPingPong runs the §V-A.1 latency experiment: `iters` measured
// ping-pong exchanges of `size` bytes after `warmup` unmeasured ones,
// between the two GPUs, under the given control mode. The returned
// counters cover GPU A over the measured iterations.
func ExtollPingPong(p cluster.Params, mode ExtollMode, size, iters, warmup int) LatencyResult {
	buf := uint64(size)
	if buf < 8 {
		buf = 8
	}
	r := newExtollRig(p, buf)
	defer r.tb.Shutdown()
	r.openPorts(1)
	payload := r.fillPayload(size)
	total := warmup + iters
	mask := seqMask(size)
	off := memspace.Addr(stampOff(size))

	var tStart, tEnd sim.Time
	var putSum, pollSum sim.Duration

	switch mode {
	case ExtDirect, ExtPollOnGPU:
		flags := 0
		if mode == ExtDirect {
			flags = extoll.FlagReqNotif | extoll.FlagCompNotif
		}
		doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				if i == warmup+1 {
					r.tb.A.GPU.ResetCounters()
					tStart = w.Now()
				}
				t0 := w.Now()
				if mode == ExtPollOnGPU {
					w.StGlobalU64(r.aSend+off, uint64(i))
				}
				r.ra.DevPut(w, 0, r.aSendN, r.bRecvN, size, flags)
				t1 := w.Now()
				if mode == ExtDirect {
					r.ra.DevWaitNotif(w, 0, extoll.ClassRequester)
					r.ra.DevWaitNotif(w, 0, extoll.ClassCompleter) // pong arrived
				} else {
					r.ra.DevPollU64Masked(w, r.aRecv+off, uint64(i)&mask, mask)
				}
				t2 := w.Now()
				if i > warmup {
					putSum += t1.Sub(t0)
					pollSum += t2.Sub(t1)
				}
			}
			tEnd = w.Now()
		})
		doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				if mode == ExtDirect {
					r.rb.DevWaitNotif(w, 0, extoll.ClassCompleter) // ping arrived
				} else {
					r.rb.DevPollU64Masked(w, r.bRecv+off, uint64(i)&mask, mask)
					w.StGlobalU64(r.bSend+off, uint64(i))
				}
				r.rb.DevPut(w, 0, r.bSendN, r.aRecvN, size, flags)
				if mode == ExtDirect {
					r.rb.DevWaitNotif(w, 0, extoll.ClassRequester)
				}
			}
		})
		r.tb.E.Run()
		mustDone(doneA, "extoll ping-pong kernel A")
		mustDone(doneB, "extoll ping-pong kernel B")

	case ExtAssisted:
		flagsA := core.NewAssistFlags(r.tb.A)
		flagsB := core.NewAssistFlags(r.tb.B)
		doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				if i == warmup+1 {
					r.tb.A.GPU.ResetCounters()
					tStart = w.Now()
				}
				t0 := w.Now()
				w.StGlobalU64(r.aSend+off, uint64(i))
				core.DevRequestAssist(w, flagsA, uint64(i))
				t1 := w.Now()
				r.ra.DevPollU64Masked(w, r.aRecv+off, uint64(i)&mask, mask)
				t2 := w.Now()
				if i > warmup {
					putSum += t1.Sub(t0)
					pollSum += t2.Sub(t1)
				}
			}
			tEnd = w.Now()
		})
		doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				r.rb.DevPollU64Masked(w, r.bRecv+off, uint64(i)&mask, mask)
				w.StGlobalU64(r.bSend+off, uint64(i))
				core.DevRequestAssist(w, flagsB, uint64(i))
			}
		})
		r.tb.E.Spawn("a.cpu.assist", func(p *sim.Proc) {
			for i := 1; i <= total; i++ {
				core.HostAwaitAssistReq(p, r.tb.A.CPU, flagsA, uint64(i))
				r.ra.HostPut(p, 0, r.aSendN, r.bRecvN, size, extoll.FlagReqNotif)
				r.ra.HostWaitNotif(p, 0, extoll.ClassRequester)
			}
		})
		r.tb.E.Spawn("b.cpu.assist", func(p *sim.Proc) {
			for i := 1; i <= total; i++ {
				core.HostAwaitAssistReq(p, r.tb.B.CPU, flagsB, uint64(i))
				r.rb.HostPut(p, 0, r.bSendN, r.aRecvN, size, extoll.FlagReqNotif)
				r.rb.HostWaitNotif(p, 0, extoll.ClassRequester)
			}
		})
		r.tb.E.Run()
		mustDone(doneA, "extoll assisted kernel A")
		mustDone(doneB, "extoll assisted kernel B")

	case ExtHostControlled:
		flags := extoll.FlagReqNotif | extoll.FlagCompNotif
		doneA := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			for i := 1; i <= total; i++ {
				if i == warmup+1 {
					tStart = p.Now()
				}
				t0 := p.Now()
				r.ra.HostPut(p, 0, r.aSendN, r.bRecvN, size, flags)
				t1 := p.Now()
				r.ra.HostWaitNotif(p, 0, extoll.ClassRequester)
				r.ra.HostWaitNotif(p, 0, extoll.ClassCompleter) // pong arrived
				t2 := p.Now()
				if i > warmup {
					putSum += t1.Sub(t0)
					pollSum += t2.Sub(t1)
				}
			}
			tEnd = p.Now()
			doneA.Complete()
		})
		doneB := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("b.cpu", func(p *sim.Proc) {
			for i := 1; i <= total; i++ {
				r.rb.HostWaitNotif(p, 0, extoll.ClassCompleter)
				r.rb.HostPut(p, 0, r.bSendN, r.aRecvN, size, flags)
				r.rb.HostWaitNotif(p, 0, extoll.ClassRequester)
			}
			doneB.Complete()
		})
		r.tb.E.Run()
		mustDone(doneA, "extoll host-controlled A")
		mustDone(doneB, "extoll host-controlled B")

	default:
		panic("bench: unknown EXTOLL mode")
	}

	// Verify delivery: the final ping payload must equal the source.
	got := make([]byte, size)
	mustWrite(r.tb.B.GPU.HostRead(r.bRecv, got))
	if mode == ExtDirect || mode == ExtHostControlled {
		if !bytes.Equal(got, payload[:size]) {
			panic("bench: extoll ping-pong corrupted payload")
		}
	}

	return LatencyResult{
		Size:     size,
		Iters:    iters,
		HalfRTT:  tEnd.Sub(tStart) / sim.Duration(2*iters),
		PutTime:  putSum / sim.Duration(iters),
		PollTime: pollSum / sim.Duration(iters),
		Counters: r.tb.A.GPU.Counters(),
		Rel:      extollRel(r.tb),
	}
}

// ExtollStream runs the §V-A.1 bandwidth experiment: `messages` puts of
// `size` bytes A→B; throughput is measured from the first post on A to
// the arrival of the final payload at B.
func ExtollStream(p cluster.Params, mode ExtollMode, size, messages int) BandwidthResult {
	buf := uint64(size)
	if buf < 8 {
		buf = 8
	}
	r := newExtollRig(p, buf)
	defer r.tb.Shutdown()
	r.openPorts(1)
	r.fillPayload(size)
	mask := seqMask(size)
	off := memspace.Addr(stampOff(size))
	final := uint64(messages) & mask

	var tStart, tEnd sim.Time
	endSeen := sim.NewCompletion(r.tb.E)

	// Receiver-side end detection.
	switch mode {
	case ExtHostControlled:
		r.tb.E.Spawn("b.cpu.end", func(p *sim.Proc) {
			r.rb.HostWaitNotif(p, 0, extoll.ClassCompleter)
			tEnd = p.Now()
			endSeen.Complete()
		})
	default:
		r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			r.rb.DevPollU64Masked(w, r.bRecv+off, final, mask)
			tEnd = w.Now()
			endSeen.Complete()
		})
	}

	switch mode {
	case ExtDirect:
		r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			tStart = w.Now()
			for i := 1; i <= messages; i++ {
				if i == messages {
					w.StGlobalU64(r.aSend+off, uint64(i))
				}
				r.ra.DevPut(w, 0, r.aSendN, r.bRecvN, size, extoll.FlagReqNotif)
				r.ra.DevWaitNotif(w, 0, extoll.ClassRequester)
			}
		})
	case ExtPollOnGPU:
		// Without notifications there is no flow-control signal; the
		// paper's bandwidth plot therefore only shows direct, assisted
		// and host-controlled. We accept the mode here for completeness
		// by falling back to requester notifications.
		return ExtollStream(p, ExtDirect, size, messages)
	case ExtAssisted:
		flagsA := core.NewAssistFlags(r.tb.A)
		r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			tStart = w.Now()
			for i := 1; i <= messages; i++ {
				core.DevRequestAssist(w, flagsA, uint64(i))
				core.DevAwaitAssistAck(w, flagsA, uint64(i))
			}
		})
		r.tb.E.Spawn("a.cpu.assist", func(p *sim.Proc) {
			for i := 1; i <= messages; i++ {
				core.HostAwaitAssistReq(p, r.tb.A.CPU, flagsA, uint64(i))
				if i == messages {
					r.tb.A.CPU.WriteU64(p, r.aSend+off, uint64(i))
				}
				r.ra.HostPut(p, 0, r.aSendN, r.bRecvN, size, extoll.FlagReqNotif)
				r.ra.HostWaitNotif(p, 0, extoll.ClassRequester)
				core.HostAckAssist(p, r.tb.A.CPU, flagsA, uint64(i))
			}
		})
	case ExtHostControlled:
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			tStart = p.Now()
			for i := 1; i <= messages; i++ {
				flags := extoll.FlagReqNotif
				if i == messages {
					r.tb.A.CPU.WriteU64(p, r.aSend+off, uint64(i))
					flags |= extoll.FlagCompNotif
				}
				r.ra.HostPut(p, 0, r.aSendN, r.bRecvN, size, flags)
				r.ra.HostWaitNotif(p, 0, extoll.ClassRequester)
			}
		})
	}

	r.tb.E.Run()
	mustDone(endSeen, "extoll stream end detection")
	elapsed := tEnd.Sub(tStart)
	return BandwidthResult{
		Size:        size,
		Messages:    messages,
		Elapsed:     elapsed,
		BytesPerSec: float64(size) * float64(messages) / elapsed.Seconds(),
		Rel:         extollRel(r.tb),
	}
}

// ExtollMessageRate runs the §V-A.2 experiment: `pairs` connection pairs
// each send `perPair` 64-byte messages over their own RMA port.
func ExtollMessageRate(p cluster.Params, method RateMethod, pairs, perPair int) RateResult {
	const msgSize = 64
	slot := uint64(256) // per-pair buffer slot
	r := newExtollRig(p, slot*uint64(pairs))
	defer r.tb.Shutdown()
	r.openPorts(pairs)
	r.fillPayload(msgSize)

	starts := make([]sim.Time, pairs)
	ends := make([]sim.Time, pairs)
	srcN := func(b int) extoll.NLA { return r.aSendN + extoll.NLA(uint64(b)*slot) }
	dstN := func(b int) extoll.NLA { return r.bRecvN + extoll.NLA(uint64(b)*slot) }

	gpuBody := func(w *gpusim.Warp) {
		b := w.Block
		starts[b] = w.Now()
		for m := 0; m < perPair; m++ {
			r.ra.DevPut(w, b, srcN(b), dstN(b), msgSize, extoll.FlagReqNotif)
			r.ra.DevWaitNotif(w, b, extoll.ClassRequester)
		}
		ends[b] = w.Now()
	}

	switch method {
	case RateBlocks:
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: pairs}, gpuBody)
		r.tb.E.Run()
		mustDone(done, "extoll message-rate blocks kernel")
	case RateKernels:
		dones := make([]*sim.Completion, pairs)
		for b := 0; b < pairs; b++ {
			st := r.tb.A.GPU.NewStream()
			b := b
			dones[b] = r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1, Stream: st}, func(w *gpusim.Warp) {
				starts[b] = w.Now()
				for m := 0; m < perPair; m++ {
					r.ra.DevPut(w, b, srcN(b), dstN(b), msgSize, extoll.FlagReqNotif)
					r.ra.DevWaitNotif(w, b, extoll.ClassRequester)
				}
				ends[b] = w.Now()
			})
		}
		r.tb.E.Run()
		for b, d := range dones {
			mustDone(d, fmt.Sprintf("extoll message-rate kernel %d", b))
		}
	case RateAssisted:
		flags := make([]core.AssistFlags, pairs)
		for b := range flags {
			flags[b] = core.NewAssistFlags(r.tb.A)
		}
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: pairs}, func(w *gpusim.Warp) {
			b := w.Block
			starts[b] = w.Now()
			for m := 1; m <= perPair; m++ {
				core.DevRequestAssist(w, flags[b], uint64(m))
				core.DevAwaitAssistAck(w, flags[b], uint64(m))
			}
			ends[b] = w.Now()
		})
		// One CPU thread serves every pair: while it handles one request,
		// all other aspirants block — the §V-A.2 bottleneck.
		cpuDone := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu.assist", func(p *sim.Proc) {
			served := make([]uint64, pairs)
			remaining := pairs * perPair
			for remaining > 0 {
				progress := false
				for b := 0; b < pairs; b++ {
					if served[b] == uint64(perPair) {
						continue
					}
					req := r.tb.A.CPU.ReadU64(p, flags[b].Req)
					if req > served[b] {
						r.ra.HostPut(p, b, srcN(b), dstN(b), msgSize, extoll.FlagReqNotif)
						r.ra.HostWaitNotif(p, b, extoll.ClassRequester)
						served[b] = req
						core.HostAckAssist(p, r.tb.A.CPU, flags[b], req)
						remaining--
						progress = true
					}
				}
				if !progress {
					// Nothing pending: wait for the next GPU request flag.
					r.tb.A.CPU.Compute(p, 200*sim.Nanosecond)
				}
			}
			cpuDone.Complete()
		})
		r.tb.E.Run()
		mustDone(done, "extoll assisted rate kernel")
		mustDone(cpuDone, "extoll assisted rate CPU")
	case RateHostControlled:
		done := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			starts[0] = p.Now()
			posted := make([]int, pairs)
			inflight := make([]bool, pairs)
			remaining := pairs * perPair
			for remaining > 0 {
				for b := 0; b < pairs; b++ {
					if inflight[b] {
						if _, ok := r.ra.HostTryConsumeNotif(p, b, extoll.ClassRequester); ok {
							inflight[b] = false
							remaining--
						}
					} else if posted[b] < perPair {
						r.ra.HostPut(p, b, srcN(b), dstN(b), msgSize, extoll.FlagReqNotif)
						posted[b]++
						inflight[b] = true
					}
				}
			}
			ends[0] = p.Now()
			done.Complete()
		})
		r.tb.E.Run()
		mustDone(done, "extoll host-controlled rate CPU")
		for b := 1; b < pairs; b++ {
			starts[b], ends[b] = starts[0], ends[0]
		}
	}

	var minStart, maxEnd sim.Time
	minStart = starts[0]
	for b := 0; b < pairs; b++ {
		if starts[b] < minStart {
			minStart = starts[b]
		}
		if ends[b] > maxEnd {
			maxEnd = ends[b]
		}
	}
	elapsed := maxEnd.Sub(minStart)
	total := pairs * perPair
	return RateResult{
		Pairs:      pairs,
		Messages:   total,
		Elapsed:    elapsed,
		MsgsPerSec: float64(total) / elapsed.Seconds(),
	}
}
