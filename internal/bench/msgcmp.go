package bench

import (
	"fmt"
	"strings"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/msg"
	"putget/internal/sim"
)

// MsgPingPong measures a two-sided (tagged send/recv) ping-pong between
// the GPUs over InfiniBand — the hybrid-model baseline of §II-B, with tag
// matching and eager buffering on the critical path.
func MsgPingPong(p cluster.Params, size, iters, warmup int) LatencyResult {
	pf := fitParams(p, uint64(size)*4+(8<<20))
	ea, eb, tb := msg.NewPair(pf)
	defer tb.Shutdown()
	src := tb.A.AllocDev(uint64(size) + 64)
	dst := tb.A.AllocDev(uint64(size) + 64)
	bsrc := tb.B.AllocDev(uint64(size) + 64)
	bdst := tb.B.AllocDev(uint64(size) + 64)
	total := warmup + iters

	var tStart, tEnd sim.Time
	da := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: 32}, func(w *gpusim.Warp) {
		for i := 1; i <= total; i++ {
			if i == warmup+1 {
				tStart = w.Now()
			}
			ea.DevSend(w, 1, src, size)
			ea.DevRecv(w, 2, dst, size+64)
		}
		tEnd = w.Now()
	})
	db := tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: 32}, func(w *gpusim.Warp) {
		for i := 1; i <= total; i++ {
			eb.DevRecv(w, 1, bdst, size+64)
			eb.DevSend(w, 2, bsrc, size)
		}
	})
	tb.E.Run()
	if !da.Done() || !db.Done() {
		panic("bench: msg ping-pong deadlocked")
	}
	return LatencyResult{
		Size:    size,
		Iters:   iters,
		HalfRTT: tEnd.Sub(tStart) / sim.Duration(2*iters),
	}
}

// MsgVsPut contrasts two-sided send/recv with one-sided put latency at a
// few sizes, quantifying §II-B: "This normally adds a lot of overhead to
// the communication, due to tag matching or data buffering."
func MsgVsPut(p cluster.Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "two-sided send/recv vs one-sided put (GPU-controlled, one-way latency)\n\n")
	fmt.Fprintf(&b, "%-10s %16s %16s %10s\n", "size[B]", "send/recv [us]", "put [us]", "overhead")
	for _, size := range []int{16, 1024, 4096, 65536} {
		two := MsgPingPong(p, size, 8, 2).HalfRTT.Microseconds()
		one := IBPingPong(p, IBBufOnGPU, size, 8, 2).HalfRTT.Microseconds()
		fmt.Fprintf(&b, "%-10d %16.2f %16.2f %9.0f%%\n", size, two, one, (two/one-1)*100)
	}
	b.WriteString("\n(eager copies and tag matching inflate small/mid sizes; the\n")
	b.WriteString(" rendezvous protocol amortizes at 64KiB — §II-B quantified)\n")
	return b.String()
}
