package bench

import (
	"fmt"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/sim"
	"putget/internal/transport"
)

// rig is a two-node testbed of either fabric with ping/pong buffers in GPU
// memory on both sides, registered with the fabric's address-translation
// machinery. Connections are opened per benchmark through rig.tr (modes
// need different ring hints).
type rig struct {
	tr transport.Transport
	tb *cluster.Testbed

	aSend, aRecv memspace.Addr // on GPU A
	bSend, bRecv memspace.Addr // on GPU B

	aSendR, aRecvR transport.Region // registered at A
	bSendR, bRecvR transport.Region // registered at B
}

// fitParams shrinks the simulated memories to what an experiment needs:
// testbeds are rebuilt per measurement and Go would otherwise touch
// hundreds of megabytes of zeroed pages per point.
func fitParams(p cluster.Params, bufBytes uint64) cluster.Params {
	if need := 2*bufBytes + (64 << 20); p.GPUDevMemSize > need {
		p.GPUDevMemSize = need
	}
	if need := uint64(96 << 20); p.HostRAMSize > need {
		p.HostRAMSize = need
	}
	return p
}

// newRig builds the testbed and transport for a fabric kind and registers
// the four data buffers. The allocation order (four AllocDev calls, then
// four registrations) is load-bearing: buffer addresses feed the GPU's L2
// set mapping, so reordering would shift the counter tables.
func newRig(k transport.Kind, p cluster.Params, bufSize uint64) *rig {
	var tb *cluster.Testbed
	if k == transport.KindExtoll {
		tb = cluster.NewExtollPair(fitParams(p, bufSize))
	} else {
		tb = cluster.NewIBPair(fitParams(p, bufSize))
	}
	tr := transport.New(k, tb)
	r := &rig{tr: tr, tb: tb}
	r.aSend = tb.A.AllocDev(bufSize)
	r.aRecv = tb.A.AllocDev(bufSize)
	r.bSend = tb.B.AllocDev(bufSize)
	r.bRecv = tb.B.AllocDev(bufSize)
	r.aSendR = tr.Register(tb.A, r.aSend, bufSize)
	r.aRecvR = tr.Register(tb.A, r.aRecv, bufSize)
	r.bSendR = tr.Register(tb.B, r.bSend, bufSize)
	r.bRecvR = tr.Register(tb.B, r.bRecv, bufSize)
	return r
}

// fillPayload initializes both send buffers with a deterministic pattern.
// The patterns are fabric-specific (and predate the unified harness), so
// a cross-fabric delivery bug cannot silently pass the byte verifies.
func (r *rig) fillPayload(size int) []byte {
	payload := make([]byte, size)
	for i := range payload {
		if r.tr.Kind() == transport.KindExtoll {
			payload[i] = byte(i*31 + 7)
		} else {
			payload[i] = byte(i*13 + 5)
		}
	}
	mustWrite(r.tb.A.GPU.HostWrite(r.aSend, payload))
	mustWrite(r.tb.B.GPU.HostWrite(r.bSend, payload))
	return payload
}

// relCounters snapshots the fabric's reliability-protocol activity (nil
// unless the testbed ran with fault injection).
func (r *rig) relCounters() *RelCounters {
	if r.tr.Kind() == transport.KindExtoll {
		return extollRel(r.tb)
	}
	return ibRel(r.tb)
}

func mustWrite(err error) {
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
}

func mustDone(c *sim.Completion, what string) {
	if !c.Done() {
		panic("bench: deadlock: " + what + " did not complete")
	}
}

// seqMask returns the comparison mask for a size-byte sequence stamp.
func seqMask(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * uint(size))) - 1
}

// stampOff returns the in-buffer offset of the 8-byte stamp word for a
// message of the given size (the last full word, or 0 for tiny messages).
func stampOff(size int) int {
	if size >= 8 {
		return size - 8
	}
	return 0
}

// ---- raw-API rigs ----
//
// The cost-model experiments (staged breakdowns, claim checks, ablations)
// deliberately reach below the Endpoint API to meter individual steps of
// the control path; these rigs extend the generic one with each fabric's
// raw handles.

// extollRig adds the RMA bindings and registered NLAs of the four buffers.
type extollRig struct {
	rig
	ra, rb *core.RMA

	aSendN, aRecvN extoll.NLA // registered at A
	bSendN, bRecvN extoll.NLA // registered at B
}

func newExtollRig(p cluster.Params, bufSize uint64) *extollRig {
	base := newRig(transport.KindExtoll, p, bufSize)
	t := base.tr.(*transport.Extoll)
	return &extollRig{
		rig: *base,
		ra:  t.RMA(0), rb: t.RMA(1),
		aSendN: base.aSendR.NLA(), aRecvN: base.aRecvR.NLA(),
		bSendN: base.bSendR.NLA(), bRecvN: base.bRecvR.NLA(),
	}
}

// openPorts opens and connects ports 0..n-1 pairwise.
func (r *extollRig) openPorts(n int) {
	for i := 0; i < n; i++ {
		r.tr.Connect(i, transport.ConnHint{})
	}
}

// ibRig adds the Verbs bindings and memory regions of the four buffers.
type ibRig struct {
	rig
	va, vb *core.Verbs

	aSendMR, aRecvMR *ibsim.MR // registered at A
	bSendMR, bRecvMR *ibsim.MR // registered at B
}

func newIBRig(p cluster.Params, bufSize uint64) *ibRig {
	base := newRig(transport.KindIB, p, bufSize)
	t := base.tr.(*transport.Verbs)
	return &ibRig{
		rig: *base,
		va:  t.Verbs(0), vb: t.Verbs(1),
		aSendMR: base.aSendR.MR(), aRecvMR: base.aRecvR.MR(),
		bSendMR: base.bSendR.MR(), bRecvMR: base.bRecvR.MR(),
	}
}

// pingWQE builds A's ping descriptor.
func (r *ibRig) pingWQE(size int, flags int, wrid uint64) ibsim.WQE {
	return ibsim.WQE{
		Opcode: ibsim.OpRDMAWrite, Flags: flags, WRID: wrid,
		LAddr: uint64(r.aSend), LKey: r.aSendMR.LKey, Length: size,
		RAddr: uint64(r.bRecv), RKey: r.bRecvMR.RKey,
	}
}

// pongWQE builds B's pong descriptor.
func (r *ibRig) pongWQE(size int, flags int, wrid uint64) ibsim.WQE {
	return ibsim.WQE{
		Opcode: ibsim.OpRDMAWrite, Flags: flags, WRID: wrid,
		LAddr: uint64(r.bSend), LKey: r.bSendMR.LKey, Length: size,
		RAddr: uint64(r.aRecv), RKey: r.aRecvMR.RKey,
	}
}
