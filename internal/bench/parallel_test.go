package bench

import (
	"reflect"
	"strings"
	"testing"

	"putget/internal/cluster"
)

// TestFaultSweepParallelDeterminism is the headline guarantee of the
// sharded runner: the full faultsweep matrix (every fabric/mode x loss
// cell plus the blackout-recovery CDF) must produce byte-identical output
// whether the cells run on one worker or eight.
func TestFaultSweepParallelDeterminism(t *testing.T) {
	seq := cluster.Default()
	seq.Parallel = 1
	par := cluster.Default()
	par.Parallel = 8

	a := FaultSweep(seq, 42)
	b := FaultSweep(par, 42)
	if a != b {
		t.Fatalf("faultsweep diverged between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if !strings.Contains(a, "blackout recovery") {
		t.Fatalf("sweep output missing blackout section:\n%s", a)
	}
}

// TestScalingParallelDeterminism is the tentpole acceptance criterion
// for the N-rank experiment: `-experiment scaling -parallel 1` and
// `-parallel 8` must print byte-identical tables. Every cell verifies
// its collective's result internally, so this also re-proves allreduce
// correctness at 16-256 ranks on both topologies over both fabrics.
// Skipped under -short (two full scaling sweeps take a couple of
// minutes of wall time).
func TestScalingParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full scaling sweeps take minutes; run without -short")
	}
	seq := cluster.Default()
	seq.Parallel = 1
	par := cluster.Default()
	par.Parallel = 8

	a := Scaling(seq)
	b := Scaling(par)
	if a != b {
		t.Fatalf("scaling diverged between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	for _, want := range []string{"scaling/EXTOLL", "scaling/InfiniBand", "scaling/alltoall", "dead node"} {
		if !strings.Contains(a, want) {
			t.Fatalf("scaling output missing %q section:\n%s", want, a)
		}
	}
}

// TestTableParallelDeterminism covers the counter-table path: per-cell
// engines must leave the merged counters bit-identical for any worker
// count.
func TestTableParallelDeterminism(t *testing.T) {
	seq := cluster.Default()
	seq.Parallel = 1
	par := cluster.Default()
	par.Parallel = 4

	if a, b := Table1(seq), Table1(par); !reflect.DeepEqual(a, b) {
		t.Fatalf("Table1 diverged:\n%+v\n%+v", a, b)
	}
}

// TestGridSeriesParallelDeterminism exercises the figure grid helper with
// worker counts around the cell count.
func TestGridSeriesParallelDeterminism(t *testing.T) {
	eval := func(si, xi int) float64 { return float64(si*100 + xi) }
	xs := []int{1, 2, 4, 8}
	seriesLabels := []string{"a", "b", "c"}
	var want []Series
	for _, par := range []int{1, 2, 3, 12, 64} {
		p := cluster.Default()
		p.Parallel = par
		got := gridSeries(p, seriesLabels, xs, eval)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel %d: series diverged: %+v vs %+v", par, got, want)
		}
	}
	if want[2].Y[3] != 203 {
		t.Fatalf("grid order wrong: %+v", want)
	}
}
