package bench

import (
	"reflect"
	"strings"
	"testing"

	"putget/internal/cluster"
)

// TestFaultSweepParallelDeterminism is the headline guarantee of the
// sharded runner: the full faultsweep matrix (every fabric/mode x loss
// cell plus the blackout-recovery CDF) must produce byte-identical output
// whether the cells run on one worker or eight.
func TestFaultSweepParallelDeterminism(t *testing.T) {
	seq := cluster.Default()
	seq.Parallel = 1
	par := cluster.Default()
	par.Parallel = 8

	a := FaultSweep(seq, 42)
	b := FaultSweep(par, 42)
	if a != b {
		t.Fatalf("faultsweep diverged between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if !strings.Contains(a, "blackout recovery") {
		t.Fatalf("sweep output missing blackout section:\n%s", a)
	}
}

// TestScalingParallelDeterminism covers the scaling experiment's
// determinism through its bounded CI smoke: `-experiment scaling512
// -parallel 1` and `-parallel 8` must print byte-identical tables (the
// full `scaling` sweep shares every code path but runs 1024-rank cells
// that take tens of minutes — CI pins the same equality on scaling512).
// Every cell verifies its collective against the membership oracle
// internally, so this also re-proves allreduce correctness at 512 ranks
// on both fabrics and the teams paths (split, strided, dead-node
// shrink). Skipped under -short (two 512-rank sweeps take a couple of
// minutes of wall time).
func TestScalingParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two 512-rank sweeps take minutes; run without -short")
	}
	seq := cluster.Default()
	seq.Parallel = 1
	par := cluster.Default()
	par.Parallel = 8

	a := Scaling512(seq)
	b := Scaling512(par)
	if a != b {
		t.Fatalf("scaling512 diverged between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	for _, want := range []string{"scaling512", "scaling/teams", "dead node 21, shrink + complete", "built nodes"} {
		if !strings.Contains(a, want) {
			t.Fatalf("scaling512 output missing %q section:\n%s", want, a)
		}
	}
}

// TestTeamsTableParallelDeterminism pins the teams sub-table alone —
// the cheap always-on variant of the scaling equality check.
func TestTeamsTableParallelDeterminism(t *testing.T) {
	seq := cluster.Default()
	seq.Parallel = 1
	par := cluster.Default()
	par.Parallel = 8

	a := teamsTable(seq)
	b := teamsTable(par)
	if a != b {
		t.Fatalf("teams table diverged between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if !strings.Contains(a, "63 of 64 (torus)") {
		t.Fatalf("teams table missing the shrink row:\n%s", a)
	}
}

// TestTableParallelDeterminism covers the counter-table path: per-cell
// engines must leave the merged counters bit-identical for any worker
// count.
func TestTableParallelDeterminism(t *testing.T) {
	seq := cluster.Default()
	seq.Parallel = 1
	par := cluster.Default()
	par.Parallel = 4

	if a, b := Table1(seq), Table1(par); !reflect.DeepEqual(a, b) {
		t.Fatalf("Table1 diverged:\n%+v\n%+v", a, b)
	}
}

// TestGridSeriesParallelDeterminism exercises the figure grid helper with
// worker counts around the cell count.
func TestGridSeriesParallelDeterminism(t *testing.T) {
	eval := func(si, xi int) float64 { return float64(si*100 + xi) }
	xs := []int{1, 2, 4, 8}
	seriesLabels := []string{"a", "b", "c"}
	var want []Series
	for _, par := range []int{1, 2, 3, 12, 64} {
		p := cluster.Default()
		p.Parallel = par
		got := gridSeries(p, seriesLabels, xs, eval)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel %d: series diverged: %+v vs %+v", par, got, want)
		}
	}
	if want[2].Y[3] != 203 {
		t.Fatalf("grid order wrong: %+v", want)
	}
}
