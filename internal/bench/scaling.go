package bench

import (
	"encoding/binary"
	"fmt"
	"strings"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/runner"
	"putget/internal/shmem"
	"putget/internal/sim"
	"putget/internal/topo"
	"putget/internal/transport"
)

// This file is the N-rank scaling experiment: collectives over switched
// fat-tree and 3D-torus fabrics at 16-256 simulated ranks, on both NIC
// families, plus a torus fault sweep (dead cable vs dead node). Every
// cell builds an isolated cluster on its own engine and verifies its
// collective's result before reporting a time, so a wrong answer can
// never hide behind a fast one; cells shard over the harness worker pool
// and merge in fixed grid order, keeping the output byte-identical for
// any -parallel value.

// Scaling axes. Allreduce runs the full 16-256 range; alltoall stops at
// 64 ranks because its connection graph is the full mesh — the output
// carries an explicit note rather than silently truncating the sweep.
var (
	scalingRanks  = []int{16, 64, 256}
	allToAllRanks = []int{16, 64}
	scalingTopos  = []topo.Kind{topo.FatTree, topo.Torus3D}
	scalingAlgs   = []shmem.AllReduceAlg{shmem.Ring, shmem.RecursiveDoubling}
)

// scalingWords is the allreduce vector length. It is divisible by every
// rank count in the sweep, so the ring algorithm's equal-chunk
// requirement holds throughout.
const scalingWords = 256

// scalingParams shrinks per-node footprints (a 256-node world carries
// 256 GPUs) and provisions EXTOLL ports for the widest connection graph
// in the sweep: the 64-rank alltoall full mesh needs one port per peer.
func scalingParams(p cluster.Params) cluster.Params {
	p.GPUDevMemSize = 64 << 20
	p.HostRAMSize = 96 << 20
	p.ExtPorts = 72
	p.ExtNotifEntries = 128
	return p
}

// scalingWorld builds an n-rank world on the given topology and fabric.
func scalingWorld(p cluster.Params, k transport.Kind, spec topo.Spec, n int) *shmem.World {
	return shmem.NewWorldN(k, spec, n, scalingParams(p), 1<<20)
}

// seedVector writes rank r's element i = r+i+1 at offset vec on all PEs.
func seedVector(w *shmem.World, vec uint64, words int) {
	buf := make([]byte, 8*words)
	for r, pe := range w.PEs {
		for i := 0; i < words; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(r+i+1))
		}
		if err := pe.HostWrite(vec, buf); err != nil {
			panic(err)
		}
	}
}

// checkReduced verifies every rank holds the global sums of the seed
// pattern: element i = n*(i+1) + n*(n-1)/2.
func checkReduced(w *shmem.World, vec uint64, words int, label string) {
	n := len(w.PEs)
	buf := make([]byte, 8*words)
	for r, pe := range w.PEs {
		if err := pe.HostRead(vec, buf); err != nil {
			panic(err)
		}
		for i := 0; i < words; i++ {
			want := uint64(n*(i+1) + n*(n-1)/2)
			if got := binary.LittleEndian.Uint64(buf[8*i:]); got != want {
				panic(fmt.Sprintf("bench: %s: rank %d element %d = %d, want %d", label, r, i, got, want))
			}
		}
	}
}

// runAllReduce builds a world, runs one verified allreduce, and returns
// the collective's simulated wall time.
func runAllReduce(p cluster.Params, k transport.Kind, spec topo.Spec, n int, alg shmem.AllReduceAlg) sim.Duration {
	w := scalingWorld(p, k, spec, n)
	defer w.Shutdown()
	vec := w.Malloc(8 * scalingWords)
	plan := w.NewAllReduce(alg, vec, scalingWords)
	seedVector(w, vec, scalingWords)
	t0 := w.CL.E.Now()
	w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	elapsed := w.CL.E.Now().Sub(t0)
	checkReduced(w, vec, scalingWords, fmt.Sprintf("scaling allreduce %s/%s/%s/n=%d", k, alg, spec.Kind, n))
	return elapsed
}

// runAllToAll builds a world, runs one verified alltoall (one
// scalingWords/n-word chunk per destination), and returns the simulated
// wall time.
func runAllToAll(p cluster.Params, k transport.Kind, spec topo.Kind, n int) sim.Duration {
	w := scalingWorld(p, k, topo.Spec{Kind: spec}, n)
	defer w.Shutdown()
	chunkW := scalingWords / n
	src := w.Malloc(uint64(8 * chunkW * n))
	dst := w.Malloc(uint64(8 * chunkW * n))
	plan := w.NewAllToAll(src, dst, 8*chunkW)
	buf := make([]byte, 8*chunkW*n)
	for r, pe := range w.PEs {
		for d := 0; d < n; d++ {
			for i := 0; i < chunkW; i++ {
				binary.LittleEndian.PutUint64(buf[8*(d*chunkW+i):], uint64(r)<<16|uint64(d)<<8|uint64(i))
			}
		}
		if err := pe.HostWrite(src, buf); err != nil {
			panic(err)
		}
	}
	t0 := w.CL.E.Now()
	w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	elapsed := w.CL.E.Now().Sub(t0)
	for d, pe := range w.PEs {
		if err := pe.HostRead(dst, buf); err != nil {
			panic(err)
		}
		for r := 0; r < n; r++ {
			for i := 0; i < chunkW; i++ {
				want := uint64(r)<<16 | uint64(d)<<8 | uint64(i)
				if got := binary.LittleEndian.Uint64(buf[8*(r*chunkW+i):]); got != want {
					panic(fmt.Sprintf("bench: scaling alltoall %s/%s/n=%d: rank %d slot %d word %d = %#x, want %#x", k, spec, n, d, r, i, got, want))
				}
			}
		}
	}
	return elapsed
}

// allReduceFigure sweeps one fabric's allreduce cells: four series
// (algorithm x topology) over the rank axis.
func allReduceFigure(p cluster.Params, k transport.Kind) Figure {
	type arSeries struct {
		alg  shmem.AllReduceAlg
		kind topo.Kind
	}
	var cells []arSeries
	var names []string
	for _, alg := range scalingAlgs {
		for _, kind := range scalingTopos {
			cells = append(cells, arSeries{alg, kind})
			names = append(names, fmt.Sprintf("%s/%s", alg, kind))
		}
	}
	return Figure{
		ID:     "scaling/" + k.String(),
		Title:  fmt.Sprintf("%s allreduce, %d x 8B elements", k, scalingWords),
		XLabel: "ranks", YLabel: "completion time [us]",
		Series: gridSeries(p, names, scalingRanks, func(si, xi int) float64 {
			c := cells[si]
			return runAllReduce(p, k, topo.Spec{Kind: c.kind}, scalingRanks[xi], c.alg).Microseconds()
		}),
	}
}

// allToAllFigure sweeps the alltoall cells: four series (topology x
// fabric) over the capped rank axis.
func allToAllFigure(p cluster.Params) Figure {
	type a2aSeries struct {
		k    transport.Kind
		kind topo.Kind
	}
	var cells []a2aSeries
	var names []string
	for _, k := range []transport.Kind{transport.KindExtoll, transport.KindIB} {
		for _, kind := range scalingTopos {
			cells = append(cells, a2aSeries{k, kind})
			names = append(names, fmt.Sprintf("%s/%s", k, kind))
		}
	}
	return Figure{
		ID:     "scaling/alltoall",
		Title:  fmt.Sprintf("alltoall, %d x 8B elements split across ranks", scalingWords),
		XLabel: "ranks", YLabel: "completion time [us]",
		Series: gridSeries(p, names, allToAllRanks, func(si, xi int) float64 {
			c := cells[si]
			return runAllToAll(p, c.k, c.kind, allToAllRanks[xi]).Microseconds()
		}),
	}
}

// faultCell is one row of the torus fault sweep.
type faultCell struct {
	label   string
	spec    topo.Spec
	allLive bool // a collective spanning every rank can complete
}

// faultRow is the measured outcome of one cell.
type faultRow struct {
	reachable int
	meanHops  float64
	maxHops   int
	elapsed   sim.Duration
	maxDepth  int
	allLive   bool
}

// measureFault probes one fault scenario: graph-level reachability over
// all ordered node pairs, and — when every node is alive — a verified
// 64-rank ring allreduce with the cluster's congestion high-water mark.
func measureFault(p cluster.Params, c faultCell) faultRow {
	const n = 64
	var row faultRow
	row.allLive = c.allLive

	// Reachability and hop counts come from a bare fabric graph: no NICs,
	// no traffic, just the routing tables the cluster would use.
	probe := topo.NewNet[int](sim.NewEngine(), c.spec, n,
		topo.LinkConfig{BytesPerSecond: p.ExtWireBW, Latency: p.ExtWireLat},
		"probe", func(int) int { return 0 })
	hopSum, maxHops := 0, 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			h := probe.Hops(s, d)
			if h < 0 {
				continue
			}
			row.reachable++
			hopSum += h
			if h > maxHops {
				maxHops = h
			}
		}
	}
	if row.reachable > 0 {
		row.meanHops = float64(hopSum) / float64(row.reachable)
	}
	row.maxHops = maxHops

	if !c.allLive {
		// A collective that spans a dead rank cannot complete; the job
		// must be relaunched on the survivors. The reachability columns
		// quantify the blast radius instead.
		return row
	}
	w := scalingWorld(p, transport.KindExtoll, c.spec, n)
	defer w.Shutdown()
	vec := w.Malloc(8 * scalingWords)
	plan := w.NewAllReduce(shmem.Ring, vec, scalingWords)
	seedVector(w, vec, scalingWords)
	t0 := w.CL.E.Now()
	w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	row.elapsed = w.CL.E.Now().Sub(t0)
	checkReduced(w, vec, scalingWords, "fault sweep allreduce "+c.label)
	row.maxDepth = w.CL.ExtNet.MaxDepth()
	return row
}

// faultSweepTable runs the torus fault matrix: {healthy, one dead cable,
// one dead node} x {deterministic, adaptive} at 64 ranks over EXTOLL.
func faultSweepTable(p cluster.Params) string {
	const n = 64
	base := []struct {
		label   string
		links   [][2]int
		nodes   []int
		allLive bool
	}{
		{"healthy", nil, nil, true},
		// Nodes 0 and 1 are +x neighbours on the derived 4x4x4 grid; the
		// dead cable sits directly on the ring allreduce's rank 0 -> 1
		// neighbour traffic, forcing a detour.
		{"dead link 0-1", [][2]int{{0, 1}}, nil, true},
		// An interior node dies and takes its torus router with it (the
		// router rides on the NIC), cutting through-traffic too.
		{"dead node 21", nil, []int{21}, false},
	}
	var cells []faultCell
	for _, b := range base {
		for _, rt := range []topo.Routing{topo.Deterministic, topo.Adaptive} {
			cells = append(cells, faultCell{
				label: fmt.Sprintf("%-14s %-13s", b.label, rt),
				spec: topo.Spec{Kind: topo.Torus3D, Routing: rt,
					DownLinks: b.links, DownNodes: b.nodes},
				allLive: b.allLive,
			})
		}
	}
	rows := runner.Map(p.Parallel, cells, func(_ int, c faultCell) faultRow {
		return measureFault(p, c)
	})

	var b strings.Builder
	fmt.Fprintf(&b, "scaling/faults: 64-rank 4x4x4 torus over EXTOLL, ring allreduce (%d x 8B)\n", scalingWords)
	fmt.Fprintf(&b, "%-14s %-13s %12s %10s %9s %14s %10s\n",
		"scenario", "routing", "reach.pairs", "mean hops", "max hops", "allreduce[us]", "max depth")
	for i, c := range cells {
		r := rows[i]
		timeCol, depthCol := "-", "-"
		if c.allLive {
			timeCol = fmt.Sprintf("%.4g", r.elapsed.Microseconds())
			depthCol = fmt.Sprintf("%d", r.maxDepth)
		}
		fmt.Fprintf(&b, "%s %12d %10.3f %9d %14s %10s\n",
			c.label, r.reachable, r.meanHops, r.maxHops, timeCol, depthCol)
	}
	b.WriteString("(dead-node rows: a collective spanning the dead rank cannot complete;\n")
	b.WriteString(" reachability columns quantify the blast radius among the 63 survivors)\n")
	return b.String()
}

// Scaling is the N-rank scaling experiment: allreduce at 16-256 ranks on
// both topologies over both fabrics, alltoall at 16-64 ranks, and the
// torus fault sweep. Output is byte-identical for any -parallel value.
func Scaling(p cluster.Params) string {
	var b strings.Builder
	b.WriteString(allReduceFigure(p, transport.KindExtoll).Format())
	b.WriteString("\n")
	b.WriteString(allReduceFigure(p, transport.KindIB).Format())
	b.WriteString("\n")
	b.WriteString(allToAllFigure(p).Format())
	fmt.Fprintf(&b, "note: alltoall capped at %d ranks — its connection graph is the full\n", allToAllRanks[len(allToAllRanks)-1])
	b.WriteString("mesh (256 ranks would need 32640 node pairs); larger counts are omitted,\n")
	b.WriteString("not sampled.\n\n")
	b.WriteString(faultSweepTable(p))
	return b.String()
}
