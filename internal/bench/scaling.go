package bench

import (
	"encoding/binary"
	"fmt"
	"strings"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/runner"
	"putget/internal/shmem"
	"putget/internal/sim"
	"putget/internal/topo"
	"putget/internal/transport"
)

// This file is the N-rank scaling experiment: collectives over switched
// fat-tree and 3D-torus fabrics at 16-1024 simulated ranks, on both NIC
// families, plus a teams sub-table (split halves, strided subsets, a
// dead-node shrink-and-complete) and a torus fault sweep (dead cable vs
// dead node). Every cell builds an isolated cluster on its own engine
// and verifies its collective's result before reporting a time, so a
// wrong answer can never hide behind a fast one; cells shard over the
// harness worker pool and merge in fixed grid order, keeping the output
// byte-identical for any -parallel value.

// Scaling axes. Allreduce runs the full 16-1024 range — lazy cluster
// construction and per-team connection graphs keep the 512/1024 builds
// cheap; the simulated collectives themselves dominate. Alltoall still
// stops at 64 ranks because its connection graph is the full mesh — the
// output carries an explicit note rather than silently truncating the
// sweep.
var (
	scalingRanks  = []int{16, 64, 256, 512, 1024}
	allToAllRanks = []int{16, 64}
	scalingTopos  = []topo.Kind{topo.FatTree, topo.Torus3D}
	scalingAlgs   = []shmem.AllReduceAlg{shmem.Ring, shmem.RecursiveDoubling}
)

// scalingWords is the allreduce vector length for an n-rank cell:
// max(256, n) words, so the ring algorithm's equal-chunk requirement
// (count divisible by n) holds at every size while the 16-256 rows keep
// the historical 256-word vector and stay comparable across sweeps.
func scalingWords(n int) int {
	if n < 256 {
		return 256
	}
	return n
}

// scalingParams shrinks per-node footprints (a 1024-node world carries
// 1024 GPUs) and provisions EXTOLL ports for the widest connection graph
// in the sweep: the 64-rank alltoall full mesh needs one port per peer.
func scalingParams(p cluster.Params) cluster.Params {
	p.GPUDevMemSize = 64 << 20
	p.HostRAMSize = 96 << 20
	p.ExtPorts = 72
	p.ExtNotifEntries = 128
	return p
}

// scalingWorld builds an n-rank world on the given topology and fabric.
func scalingWorld(p cluster.Params, k transport.Kind, spec topo.Spec, n int) *shmem.World {
	return shmem.NewWorldN(k, spec, n, scalingParams(p), 1<<20)
}

// seedVector writes rank r's element i = r+i+1 at offset vec on all PEs.
func seedVector(w *shmem.World, vec uint64, words int) {
	buf := make([]byte, 8*words)
	for r := 0; r < w.N(); r++ {
		for i := 0; i < words; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(r+i+1))
		}
		if err := w.PE(r).HostWrite(vec, buf); err != nil {
			panic(err)
		}
	}
}

// checkReduced verifies every rank holds the global sums of the seed
// pattern: element i = n*(i+1) + n*(n-1)/2.
func checkReduced(w *shmem.World, vec uint64, words int, label string) {
	n := w.N()
	buf := make([]byte, 8*words)
	for r := 0; r < n; r++ {
		if err := w.PE(r).HostRead(vec, buf); err != nil {
			panic(err)
		}
		for i := 0; i < words; i++ {
			want := uint64(n*(i+1) + n*(n-1)/2)
			if got := binary.LittleEndian.Uint64(buf[8*i:]); got != want {
				panic(fmt.Sprintf("bench: %s: rank %d element %d = %d, want %d", label, r, i, got, want))
			}
		}
	}
}

// runAllReduce builds a world, runs one verified allreduce, and returns
// the collective's simulated wall time.
func runAllReduce(p cluster.Params, k transport.Kind, spec topo.Spec, n int, alg shmem.AllReduceAlg) sim.Duration {
	w := scalingWorld(p, k, spec, n)
	defer w.Shutdown()
	words := scalingWords(n)
	vec := w.Malloc(uint64(8 * words))
	plan := w.NewAllReduce(alg, vec, words)
	seedVector(w, vec, words)
	t0 := w.CL.E.Now()
	w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	elapsed := w.CL.E.Now().Sub(t0)
	checkReduced(w, vec, words, fmt.Sprintf("scaling allreduce %s/%s/%s/n=%d", k, alg, spec.Kind, n))
	return elapsed
}

// runAllToAll builds a world, runs one verified alltoall (one
// 256/n-word chunk per destination), and returns the simulated wall
// time.
func runAllToAll(p cluster.Params, k transport.Kind, spec topo.Kind, n int) sim.Duration {
	w := scalingWorld(p, k, topo.Spec{Kind: spec}, n)
	defer w.Shutdown()
	chunkW := scalingWords(n) / n
	src := w.Malloc(uint64(8 * chunkW * n))
	dst := w.Malloc(uint64(8 * chunkW * n))
	plan := w.NewAllToAll(src, dst, 8*chunkW)
	buf := make([]byte, 8*chunkW*n)
	for r := 0; r < n; r++ {
		for d := 0; d < n; d++ {
			for i := 0; i < chunkW; i++ {
				binary.LittleEndian.PutUint64(buf[8*(d*chunkW+i):], uint64(r)<<16|uint64(d)<<8|uint64(i))
			}
		}
		if err := w.PE(r).HostWrite(src, buf); err != nil {
			panic(err)
		}
	}
	t0 := w.CL.E.Now()
	w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	elapsed := w.CL.E.Now().Sub(t0)
	for d := 0; d < n; d++ {
		if err := w.PE(d).HostRead(dst, buf); err != nil {
			panic(err)
		}
		for r := 0; r < n; r++ {
			for i := 0; i < chunkW; i++ {
				want := uint64(r)<<16 | uint64(d)<<8 | uint64(i)
				if got := binary.LittleEndian.Uint64(buf[8*(r*chunkW+i):]); got != want {
					panic(fmt.Sprintf("bench: scaling alltoall %s/%s/n=%d: rank %d slot %d word %d = %#x, want %#x", k, spec, n, d, r, i, got, want))
				}
			}
		}
	}
	return elapsed
}

// allReduceFigure sweeps one fabric's allreduce cells: four series
// (algorithm x topology) over the given rank axis.
func allReduceFigure(p cluster.Params, k transport.Kind, ranks []int) Figure {
	type arSeries struct {
		alg  shmem.AllReduceAlg
		kind topo.Kind
	}
	var cells []arSeries
	var names []string
	for _, alg := range scalingAlgs {
		for _, kind := range scalingTopos {
			cells = append(cells, arSeries{alg, kind})
			names = append(names, fmt.Sprintf("%s/%s", alg, kind))
		}
	}
	return Figure{
		ID:     "scaling/" + k.String(),
		Title:  fmt.Sprintf("%s allreduce, max(256, ranks) x 8B elements", k),
		XLabel: "ranks", YLabel: "completion time [us]",
		Series: gridSeries(p, names, ranks, func(si, xi int) float64 {
			c := cells[si]
			return runAllReduce(p, k, topo.Spec{Kind: c.kind}, ranks[xi], c.alg).Microseconds()
		}),
	}
}

// allToAllFigure sweeps the alltoall cells: four series (topology x
// fabric) over the capped rank axis.
func allToAllFigure(p cluster.Params) Figure {
	type a2aSeries struct {
		k    transport.Kind
		kind topo.Kind
	}
	var cells []a2aSeries
	var names []string
	for _, k := range []transport.Kind{transport.KindExtoll, transport.KindIB} {
		for _, kind := range scalingTopos {
			cells = append(cells, a2aSeries{k, kind})
			names = append(names, fmt.Sprintf("%s/%s", k, kind))
		}
	}
	return Figure{
		ID:     "scaling/alltoall",
		Title:  "alltoall, 256 x 8B elements split across ranks",
		XLabel: "ranks", YLabel: "completion time [us]",
		Series: gridSeries(p, names, allToAllRanks, func(si, xi int) float64 {
			c := cells[si]
			return runAllToAll(p, c.k, c.kind, allToAllRanks[xi]).Microseconds()
		}),
	}
}

// ---- teams sub-table ----

// teamWords is the vector length of every teams-table collective; small
// enough that the table stays cheap, divisible by every team size used
// by a ring plan here.
const teamWords = 256

// seedTeamVector writes the world-rank seed pattern (element i = wr+i+1)
// on every member of the team.
func seedTeamVector(t *shmem.Team, vec uint64, words int) {
	buf := make([]byte, 8*words)
	for tr := 0; tr < t.Size(); tr++ {
		wr := t.WorldRank(tr)
		for i := 0; i < words; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(wr+i+1))
		}
		if err := t.PE(tr).HostWrite(vec, buf); err != nil {
			panic(err)
		}
	}
}

// checkTeamReduced verifies every member holds the sums over exactly the
// team's members: element i = size*(i+1) + sum(world ranks).
func checkTeamReduced(t *shmem.Team, vec uint64, words int, label string) {
	rankSum := 0
	for tr := 0; tr < t.Size(); tr++ {
		rankSum += t.WorldRank(tr)
	}
	buf := make([]byte, 8*words)
	for tr := 0; tr < t.Size(); tr++ {
		if err := t.PE(tr).HostRead(vec, buf); err != nil {
			panic(err)
		}
		for i := 0; i < words; i++ {
			want := uint64(t.Size()*(i+1) + rankSum)
			if got := binary.LittleEndian.Uint64(buf[8*i:]); got != want {
				panic(fmt.Sprintf("bench: %s: team rank %d element %d = %d, want %d", label, tr, i, got, want))
			}
		}
	}
}

// teamRow is one measured teams-table cell.
type teamRow struct {
	label   string
	ranks   string // e.g. "2 x 32 of 64"
	built   int    // nodes materialized (lazy-build cost actually paid)
	conns   int    // rank pairs wired
	elapsed sim.Duration
}

// teamCells enumerates the teams-table scenarios. Each runs in its own
// 64-rank world and verifies its collective against the membership
// oracle before reporting a time.
func teamCells(p cluster.Params) []func() teamRow {
	return []func() teamRow{
		// Two split halves run their allreduces concurrently in one
		// launch: rank r dispatches to its own team's plan, exercising
		// overlapping team state (distinct barriers, flags, staging) in
		// a single simulation.
		func() teamRow {
			w := scalingWorld(p, transport.KindExtoll, topo.Spec{Kind: topo.FatTree}, 64)
			defer w.Shutdown()
			root := w.Root()
			colors := make([]int, 64)
			keys := make([]int, 64)
			for r := range colors {
				colors[r] = r / 32
				keys[r] = r
			}
			halves := root.Split(colors, keys)
			vec := w.Malloc(8 * teamWords)
			plans := make(map[int]*shmem.AllReduce, 2) // world rank -> its half's plan; lookup only
			for _, h := range halves {
				plan := h.NewAllReduce(shmem.RecursiveDoubling, vec, teamWords)
				for tr := 0; tr < h.Size(); tr++ {
					plans[h.WorldRank(tr)] = plan
				}
				seedTeamVector(h, vec, teamWords)
			}
			t0 := w.CL.E.Now()
			w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
				plans[pe.Rank].Run(pe, warp)
			})
			elapsed := w.CL.E.Now().Sub(t0)
			for _, h := range halves {
				checkTeamReduced(h, vec, teamWords, "teams split-half allreduce "+h.Label())
			}
			return teamRow{"split halves, concurrent rdouble", "2 x 32 of 64",
				w.CL.Built(), w.Connections(), elapsed}
		},
		// A strided quarter of the machine: only the 16 member nodes are
		// ever materialized — the built column is the lazy-build win.
		func() teamRow {
			w := scalingWorld(p, transport.KindExtoll, topo.Spec{Kind: topo.FatTree}, 64)
			defer w.Shutdown()
			team := w.Root().Strided(0, 4, 16)
			vec := w.Malloc(8 * teamWords)
			plan := team.NewAllReduce(shmem.Ring, vec, teamWords)
			seedTeamVector(team, vec, teamWords)
			t0 := w.CL.E.Now()
			team.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
				plan.Run(pe, warp)
			})
			elapsed := w.CL.E.Now().Sub(t0)
			checkTeamReduced(team, vec, teamWords, "teams strided allreduce")
			return teamRow{"strided quarter, ring", "16 of 64 (stride 4)",
				w.CL.Built(), w.Connections(), elapsed}
		},
		// Dead node: torus node 21 is down (its router dies with it). The
		// job shrinks the team around the hole and completes the
		// collective on the 63 survivors — degraded but correct, where
		// PR 8 could only report the blast radius. The dead node is never
		// materialized; recursive doubling's pre/post-fold handles the
		// non-power-of-two survivor count.
		func() teamRow {
			spec := topo.Spec{Kind: topo.Torus3D, Routing: topo.Adaptive, DownNodes: []int{21}}
			w := scalingWorld(p, transport.KindExtoll, spec, 64)
			defer w.Shutdown()
			team := w.Root().Without(21)
			vec := w.Malloc(8 * teamWords)
			plan := team.NewAllReduce(shmem.RecursiveDoubling, vec, teamWords)
			seedTeamVector(team, vec, teamWords)
			t0 := w.CL.E.Now()
			team.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
				plan.Run(pe, warp)
			})
			elapsed := w.CL.E.Now().Sub(t0)
			checkTeamReduced(team, vec, teamWords, "teams dead-node shrink allreduce")
			return teamRow{"dead node 21, shrink + complete", "63 of 64 (torus)",
				w.CL.Built(), w.Connections(), elapsed}
		},
	}
}

// teamsTable runs the teams scenarios (sharded over the worker pool,
// merged in fixed order) and formats the sub-table.
func teamsTable(p cluster.Params) string {
	cells := teamCells(p)
	rows := runner.Map(p.Parallel, cells, func(_ int, f func() teamRow) teamRow {
		return f()
	})
	var b strings.Builder
	fmt.Fprintf(&b, "scaling/teams: team collectives on 64-rank EXTOLL worlds (%d x 8B)\n", teamWords)
	fmt.Fprintf(&b, "%-34s %-20s %12s %12s %14s\n",
		"scenario", "ranks", "built nodes", "conns", "allreduce[us]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %-20s %12d %12d %14.4g\n",
			r.label, r.ranks, r.built, r.conns, r.elapsed.Microseconds())
	}
	b.WriteString("(all results oracle-verified against each team's membership; the dead-node\n")
	b.WriteString(" row completes a collective around the hole via Team.Without, and 'built\n")
	b.WriteString(" nodes' counts how much of the machine lazy construction materialized)\n")
	return b.String()
}

// faultCell is one row of the torus fault sweep.
type faultCell struct {
	label   string
	spec    topo.Spec
	allLive bool // a collective spanning every rank can complete
}

// faultRow is the measured outcome of one cell.
type faultRow struct {
	reachable int
	meanHops  float64
	maxHops   int
	elapsed   sim.Duration
	maxDepth  int
	allLive   bool
}

// measureFault probes one fault scenario: graph-level reachability over
// all ordered node pairs, and — when every node is alive — a verified
// 64-rank ring allreduce with the cluster's congestion high-water mark.
func measureFault(p cluster.Params, c faultCell) faultRow {
	const n = 64
	var row faultRow
	row.allLive = c.allLive

	// Reachability and hop counts come from a bare fabric graph: no NICs,
	// no traffic, just the routing tables the cluster would use.
	probe := topo.NewNet[int](sim.NewEngine(), c.spec, n,
		topo.LinkConfig{BytesPerSecond: p.ExtWireBW, Latency: p.ExtWireLat},
		"probe", func(int) int { return 0 })
	hopSum, maxHops := 0, 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			h := probe.Hops(s, d)
			if h < 0 {
				continue
			}
			row.reachable++
			hopSum += h
			if h > maxHops {
				maxHops = h
			}
		}
	}
	if row.reachable > 0 {
		row.meanHops = float64(hopSum) / float64(row.reachable)
	}
	row.maxHops = maxHops

	if !c.allLive {
		// A collective that spans a dead rank cannot complete; the teams
		// table shows the shrink-and-complete path, and the reachability
		// columns here quantify the blast radius.
		return row
	}
	w := scalingWorld(p, transport.KindExtoll, c.spec, n)
	defer w.Shutdown()
	vec := w.Malloc(8 * teamWords)
	plan := w.NewAllReduce(shmem.Ring, vec, teamWords)
	seedVector(w, vec, teamWords)
	t0 := w.CL.E.Now()
	w.Run(func(pe *shmem.PE, warp *gpusim.Warp) {
		plan.Run(pe, warp)
	})
	row.elapsed = w.CL.E.Now().Sub(t0)
	checkReduced(w, vec, teamWords, "fault sweep allreduce "+c.label)
	row.maxDepth = w.CL.ExtNet.MaxDepth()
	return row
}

// faultSweepTable runs the torus fault matrix: {healthy, one dead cable,
// one dead node} x {deterministic, adaptive} at 64 ranks over EXTOLL.
func faultSweepTable(p cluster.Params) string {
	const n = 64
	base := []struct {
		label   string
		links   [][2]int
		nodes   []int
		allLive bool
	}{
		{"healthy", nil, nil, true},
		// Nodes 0 and 1 are +x neighbours on the derived 4x4x4 grid; the
		// dead cable sits directly on the ring allreduce's rank 0 -> 1
		// neighbour traffic, forcing a detour.
		{"dead link 0-1", [][2]int{{0, 1}}, nil, true},
		// An interior node dies and takes its torus router with it (the
		// router rides on the NIC), cutting through-traffic too.
		{"dead node 21", nil, []int{21}, false},
	}
	var cells []faultCell
	for _, b := range base {
		for _, rt := range []topo.Routing{topo.Deterministic, topo.Adaptive} {
			cells = append(cells, faultCell{
				label: fmt.Sprintf("%-14s %-13s", b.label, rt),
				spec: topo.Spec{Kind: topo.Torus3D, Routing: rt,
					DownLinks: b.links, DownNodes: b.nodes},
				allLive: b.allLive,
			})
		}
	}
	rows := runner.Map(p.Parallel, cells, func(_ int, c faultCell) faultRow {
		return measureFault(p, c)
	})

	var b strings.Builder
	fmt.Fprintf(&b, "scaling/faults: 64-rank 4x4x4 torus over EXTOLL, ring allreduce (%d x 8B)\n", teamWords)
	fmt.Fprintf(&b, "%-14s %-13s %12s %10s %9s %14s %10s\n",
		"scenario", "routing", "reach.pairs", "mean hops", "max hops", "allreduce[us]", "max depth")
	for i, c := range cells {
		r := rows[i]
		timeCol, depthCol := "-", "-"
		if c.allLive {
			timeCol = fmt.Sprintf("%.4g", r.elapsed.Microseconds())
			depthCol = fmt.Sprintf("%d", r.maxDepth)
		}
		fmt.Fprintf(&b, "%s %12d %10.3f %9d %14s %10s\n",
			c.label, r.reachable, r.meanHops, r.maxHops, timeCol, depthCol)
	}
	b.WriteString("(dead-node rows: a collective spanning the dead rank cannot complete;\n")
	b.WriteString(" the teams table above shows the same scenario shrinking the team and\n")
	b.WriteString(" finishing on the 63 survivors)\n")
	return b.String()
}

// Scaling is the N-rank scaling experiment: allreduce at 16-1024 ranks
// on both topologies over both fabrics, alltoall at 16-64 ranks, the
// teams sub-table, and the torus fault sweep. Output is byte-identical
// for any -parallel value.
func Scaling(p cluster.Params) string {
	var b strings.Builder
	b.WriteString(allReduceFigure(p, transport.KindExtoll, scalingRanks).Format())
	b.WriteString("\n")
	b.WriteString(allReduceFigure(p, transport.KindIB, scalingRanks).Format())
	b.WriteString("\n")
	b.WriteString(allToAllFigure(p).Format())
	fmt.Fprintf(&b, "note: alltoall capped at %d ranks — its connection graph is the full\n", allToAllRanks[len(allToAllRanks)-1])
	b.WriteString("mesh (1024 ranks would need 523776 node pairs); larger counts are omitted,\n")
	b.WriteString("not sampled.\n\n")
	b.WriteString(teamsTable(p))
	b.WriteString("\n")
	b.WriteString(faultSweepTable(p))
	return b.String()
}

// Scaling512 is the bounded CI smoke of the scaling experiment: the
// 512-rank allreduce column (both algorithms, both fabrics, fat-tree)
// plus the full teams sub-table — enough to exercise 512-rank lazy
// construction and the team paths inside a CI time budget, byte-identical
// for any -parallel value.
func Scaling512(p cluster.Params) string {
	var b strings.Builder
	type cell struct {
		k   transport.Kind
		alg shmem.AllReduceAlg
	}
	var cells []cell
	for _, k := range []transport.Kind{transport.KindExtoll, transport.KindIB} {
		for _, alg := range scalingAlgs {
			cells = append(cells, cell{k, alg})
		}
	}
	times := runner.Map(p.Parallel, cells, func(_ int, c cell) sim.Duration {
		return runAllReduce(p, c.k, topo.Spec{Kind: topo.FatTree}, 512, c.alg)
	})
	fmt.Fprintf(&b, "scaling512: 512-rank fat-tree allreduce (%d x 8B), verified\n", scalingWords(512))
	fmt.Fprintf(&b, "%-8s %-8s %14s\n", "fabric", "alg", "allreduce[us]")
	for i, c := range cells {
		fmt.Fprintf(&b, "%-8s %-8s %14.4g\n", c.k, c.alg, times[i].Microseconds())
	}
	b.WriteString("\n")
	b.WriteString(teamsTable(p))
	return b.String()
}
