package bench

import (
	"fmt"
	"strings"

	"putget/internal/cluster"
)

// ModernComparison asks the forward-looking question the reproduction
// bands raise: with an NVSHMEM-era GPU (better single-thread issue, many
// outstanding PCIe operations, a healed P2P path), does the paper's
// GPU-control penalty survive? It contrasts the 2014 testbed with the
// Modern profile on the headline metrics.
func ModernComparison() string {
	old := cluster.Default()
	now := cluster.Modern()

	var b strings.Builder
	b.WriteString("2014 testbed vs NVSHMEM-era what-if (cluster.Modern)\n\n")
	fmt.Fprintf(&b, "%-40s %10s %10s\n", "metric", "2014", "modern")
	row := func(name string, o, n float64, unit string) {
		fmt.Fprintf(&b, "%-40s %10.4g %10.4g  %s\n", name, o, n, unit)
	}

	row("EXTOLL direct 16B latency",
		ExtollPingPong(old, ExtDirect, 16, 10, 2).HalfRTT.Microseconds(),
		ExtollPingPong(now, ExtDirect, 16, 10, 2).HalfRTT.Microseconds(), "us")
	row("EXTOLL host 16B latency",
		ExtollPingPong(old, ExtHostControlled, 16, 10, 2).HalfRTT.Microseconds(),
		ExtollPingPong(now, ExtHostControlled, 16, 10, 2).HalfRTT.Microseconds(), "us")
	row("IB bufOnGPU 16B latency",
		IBPingPong(old, IBBufOnGPU, 16, 10, 2).HalfRTT.Microseconds(),
		IBPingPong(now, IBBufOnGPU, 16, 10, 2).HalfRTT.Microseconds(), "us")
	row("IB host 16B latency",
		IBPingPong(old, IBHostControlled, 16, 10, 2).HalfRTT.Microseconds(),
		IBPingPong(now, IBHostControlled, 16, 10, 2).HalfRTT.Microseconds(), "us")
	row("EXTOLL 4MiB bandwidth",
		ExtollStream(old, ExtHostControlled, 4<<20, 6).BytesPerSec/1e6,
		ExtollStream(now, ExtHostControlled, 4<<20, 6).BytesPerSec/1e6, "MB/s")
	row("EXTOLL blocks msg rate, 32 pairs",
		ExtollMessageRate(old, RateBlocks, 32, 80).MsgsPerSec,
		ExtollMessageRate(now, RateBlocks, 32, 80).MsgsPerSec, "msgs/s")
	row("IB blocks msg rate, 32 QPs",
		IBMessageRate(old, RateBlocks, 32, 80).MsgsPerSec,
		IBMessageRate(now, RateBlocks, 32, 80).MsgsPerSec, "msgs/s")

	oldGap := float64(ExtollPingPong(old, ExtDirect, 16, 10, 2).HalfRTT) /
		float64(ExtollPingPong(old, ExtHostControlled, 16, 10, 2).HalfRTT)
	newGap := float64(ExtollPingPong(now, ExtDirect, 16, 10, 2).HalfRTT) /
		float64(ExtollPingPong(now, ExtHostControlled, 16, 10, 2).HalfRTT)
	fmt.Fprintf(&b, "\nEXTOLL GPU/host latency gap: %.2fx (2014) -> %.2fx (modern)\n", oldGap, newGap)
	b.WriteString("Better GPUs and a healed P2P path shrink the penalty but do not\n")
	b.WriteString("erase it while descriptors are built by one thread and completions\n")
	b.WriteString("live in host memory — which is why NVSHMEM adopted exactly the\n")
	b.WriteString("paper's claims (device-side collective interfaces, GPU-resident\n")
	b.WriteString("completion state).\n")
	return b.String()
}
