//putget:allow boundedwait -- claim-verification kernels re-measure the paper's fault-free numbers; their waits complete by construction and must cost exactly what the shipped figures charged

package bench

import (
	"fmt"
	"strings"

	"putget/internal/cluster"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
)

// ClaimsReport substantiates the paper's three §VI claims for future
// put/get interfaces with measurements from the models — the synthesis
// the paper's conclusion points toward.
func ClaimsReport(p cluster.Params) string {
	var b strings.Builder
	b.WriteString("The paper's §VI claims for future put/get interfaces, quantified\n")
	b.WriteString("================================================================\n\n")

	// ---- claim 1: interface footprint ----
	b.WriteString("claim 1 — \"the footprint of the interface has to be as small as\n")
	b.WriteString("possible, as GPU memory is scarce\"\n\n")
	extRing := p.ExtNotifEntries * extoll.NotifBytes
	b.WriteString("  per-connection state (bytes):\n")
	fmt.Fprintf(&b, "    EXTOLL:    %5d BAR page (MMIO, no memory) + 3 x %d notification ring (host)\n",
		extoll.PageSize, extRing)
	ibSQ := 512 * ibsim.WQEBytes
	ibCQ := 512 * ibsim.CQEBytes
	fmt.Fprintf(&b, "    IB verbs:  %5d SQ + %d CQ + %d RQ rings (host OR GPU memory)\n",
		ibSQ, ibCQ, 64*ibsim.RecvWQEBytes)
	fmt.Fprintf(&b, "  at 32 connections that is %d KiB of IB queue state in scarce GPU\n",
		32*(ibSQ+2*ibCQ+64*ibsim.RecvWQEBytes)/1024)
	b.WriteString("  memory vs ~0 for EXTOLL — but EXTOLL pays for it with claim 3.\n\n")

	// ---- claim 2: thread-collaborative interface ----
	b.WriteString("claim 2 — \"the interface has to be in-line with the\n")
	b.WriteString("thread-collaborative execution model\"\n\n")
	ex := AblationCollectivePostExtoll(p)
	ib := AblationCollectivePostIB(p)
	withOpt, withoutOpt := AblationEndianness(p)
	fmt.Fprintf(&b, "  EXTOLL WR:   single thread %d instr / %d PCIe txns -> warp %d instr / %d txns\n",
		ex.SingleInstr, ex.SingleTxns, ex.CollectiveInstr, ex.CollectiveTxns)
	fmt.Fprintf(&b, "  IB WQE:      single thread %d instr / %d PCIe txns -> warp %d instr / %d txns\n",
		ib.SingleInstr, ib.SingleTxns, ib.CollectiveInstr, ib.CollectiveTxns)
	fmt.Fprintf(&b, "  endianness:  %d -> %d instr without static-field pre-conversion\n\n",
		withOpt, withoutOpt)

	// ---- claim 3: minimal PCIe control traffic ----
	b.WriteString("claim 3 — \"PCIe transfers for control have to be kept at a minimum\"\n\n")
	const iters = 100
	direct := ExtollPingPong(p, ExtDirect, 1024, iters, 0)
	poll := ExtollPingPong(p, ExtPollOnGPU, 1024, iters, 0)
	fmt.Fprintf(&b, "  EXTOLL control PCIe transactions per message (1KiB ping-pong):\n")
	fmt.Fprintf(&b, "    polling notifications in sysmem: %.1f reads + %.1f writes\n",
		float64(direct.Counters.SysmemReads32B)/iters, float64(direct.Counters.SysmemWrites32B)/iters)
	fmt.Fprintf(&b, "    polling data in device memory:   %.1f reads + %.1f writes\n",
		float64(poll.Counters.SysmemReads32B)/iters, float64(poll.Counters.SysmemWrites32B)/iters)
	hostRings, devRings := AblationNotifPlacement(p, 1024)
	fmt.Fprintf(&b, "  moving the notification rings to GPU memory: %.2f -> %.2f us latency\n",
		hostRings.HalfRTT.Microseconds(), devRings.HalfRTT.Microseconds())
	imm := measureImmPutGain(p)
	fmt.Fprintf(&b, "  immediate put (payload in the WR, no source DMA): saves %.2f us per small put\n\n", imm)

	b.WriteString("Together: a warp-built immediate descriptor with device-memory\n")
	b.WriteString("completion detection touches PCIe exactly once per message — the\n")
	b.WriteString("design point the paper argues future GPU NIC interfaces must hit.\n")
	return b.String()
}

// measureImmPutGain returns the one-way latency saving of an immediate
// put over a regular 8-byte put, in microseconds.
func measureImmPutGain(p cluster.Params) float64 {
	run := func(imm bool) float64 {
		r := newExtollRig(p, 4096)
		defer r.tb.Shutdown()
		r.openPorts(1)
		var done float64
		d := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			if imm {
				r.ra.DevPutImm(w, 0, 0x42, r.bRecvN, 8, extoll.FlagReqNotif)
			} else {
				r.ra.DevPut(w, 0, r.aSendN, r.bRecvN, 8, extoll.FlagReqNotif)
			}
			r.ra.DevWaitNotif(w, 0, extoll.ClassRequester)
			done = float64(w.Now())
		})
		r.tb.E.Run()
		mustDone(d, "imm put measurement")
		return done
	}
	return (run(false) - run(true)) / 1e6
}
