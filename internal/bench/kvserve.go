package bench

import (
	"putget/internal/cluster"
	"putget/internal/kv"
)

// KVServe renders the replicated put/get serving sweep (internal/kv): the
// default cell under the default fault plans on both fabrics, as an SLO
// table. The master seed follows the -seed flag like faultsweep does,
// defaulting to 42 so the table is reproducible out of the box.
func KVServe(p cluster.Params) string {
	return kv.Sweep(p, kv.DefaultConfig(faultSweepSeed(p)), kv.DefaultPlans())
}
