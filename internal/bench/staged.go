//putget:allow boundedwait -- staged host-assisted protocols reproduce the paper's Figure 7 timing; every notification waited on is produced by the preceding stage of the same fault-free run

package bench

import (
	"fmt"
	"strings"

	"putget/internal/cluster"
	"putget/internal/extoll"
	"putget/internal/sim"
)

// StagedStream measures the pre-GPUDirect hybrid model the paper's
// background contrasts: data staged through host memory (D2H copy → put
// between host buffers → H2D copy), with copy engines doing the PCIe
// legs. Because the network then DMA-reads *host* memory, it sidesteps
// the P2P read collapse — the reason real MPI stacks kept host staging
// pipelines for large messages even after GPUDirect RDMA appeared.
func StagedStream(p cluster.Params, size, messages int) BandwidthResult {
	r := newExtollRig(p, uint64(size)+64)
	defer r.tb.Shutdown()
	r.openPorts(1)
	r.fillPayload(size)

	// Host staging buffers, registered with the ATU.
	aStage := r.tb.A.AllocHost(uint64(size) + 64)
	bStage := r.tb.B.AllocHost(uint64(size) + 64)
	aStageN := r.ra.Register(aStage, uint64(size)+64)
	bStageN := r.rb.Register(bStage, uint64(size)+64)
	// Ack flag: B tells A its H2D finished so the stage can be reused.
	ackFlag := r.tb.A.AllocHost(8)
	ackNLA := r.ra.Register(ackFlag, 8)

	var tStart, tEnd sim.Time
	doneA := sim.NewCompletion(r.tb.E)
	r.tb.E.Spawn("a.cpu.staged", func(proc *sim.Proc) {
		tStart = proc.Now()
		for i := 1; i <= messages; i++ {
			// Stage the payload out of GPU memory.
			r.tb.A.GPU.Copy(proc, aStage, r.aSend, size)
			// Put host→host and wait for local completion.
			r.ra.HostPut(proc, 0, aStageN, bStageN, size, extoll.FlagReqNotif|extoll.FlagCompNotif)
			r.ra.HostWaitNotif(proc, 0, extoll.ClassRequester)
			// Wait for B's ack before reusing the staging buffer.
			r.tb.A.CPU.WaitFlag(proc, ackFlag, uint64(i))
		}
		doneA.Complete()
	})
	doneB := sim.NewCompletion(r.tb.E)
	r.tb.E.Spawn("b.cpu.staged", func(proc *sim.Proc) {
		for i := 1; i <= messages; i++ {
			r.rb.HostWaitNotif(proc, 0, extoll.ClassCompleter)
			r.tb.B.GPU.Copy(proc, r.bRecv, bStage, size)
			// Ack A through an immediate put into its flag word.
			r.rb.HostPutImm(proc, 0, uint64(i), ackNLA, 8, 0)
			if i == messages {
				tEnd = proc.Now()
			}
		}
		doneB.Complete()
	})
	r.tb.E.Run()
	mustDone(doneA, "staged stream A")
	mustDone(doneB, "staged stream B")

	elapsed := tEnd.Sub(tStart)
	return BandwidthResult{
		Size: size, Messages: messages, Elapsed: elapsed,
		BytesPerSec: float64(size) * float64(messages) / elapsed.Seconds(),
	}
}

// StagedPingPong measures staged one-way latency.
func StagedPingPong(p cluster.Params, size, iters, warmup int) LatencyResult {
	r := newExtollRig(p, uint64(size)+64)
	defer r.tb.Shutdown()
	r.openPorts(1)
	r.fillPayload(size)
	aStage := r.tb.A.AllocHost(uint64(size) + 64)
	bStage := r.tb.B.AllocHost(uint64(size) + 64)
	aStageN := r.ra.Register(aStage, uint64(size)+64)
	bStageN := r.rb.Register(bStage, uint64(size)+64)
	total := warmup + iters

	var tStart, tEnd sim.Time
	doneA := sim.NewCompletion(r.tb.E)
	r.tb.E.Spawn("a.cpu", func(proc *sim.Proc) {
		for i := 1; i <= total; i++ {
			if i == warmup+1 {
				tStart = proc.Now()
			}
			r.tb.A.GPU.Copy(proc, aStage, r.aSend, size)
			r.ra.HostPut(proc, 0, aStageN, bStageN, size, extoll.FlagReqNotif|extoll.FlagCompNotif)
			r.ra.HostWaitNotif(proc, 0, extoll.ClassRequester)
			// Pong arrives in A's stage; completer notification signals it.
			r.ra.HostWaitNotif(proc, 0, extoll.ClassCompleter)
			r.tb.A.GPU.Copy(proc, r.aRecv, aStage, size)
		}
		tEnd = proc.Now()
		doneA.Complete()
	})
	doneB := sim.NewCompletion(r.tb.E)
	r.tb.E.Spawn("b.cpu", func(proc *sim.Proc) {
		for i := 1; i <= total; i++ {
			r.rb.HostWaitNotif(proc, 0, extoll.ClassCompleter)
			r.tb.B.GPU.Copy(proc, r.bRecv, bStage, size)
			r.tb.B.GPU.Copy(proc, bStage, r.bSend, size)
			r.rb.HostPut(proc, 0, bStageN, aStageN, size, extoll.FlagReqNotif|extoll.FlagCompNotif)
			r.rb.HostWaitNotif(proc, 0, extoll.ClassRequester)
		}
		doneB.Complete()
	})
	r.tb.E.Run()
	mustDone(doneA, "staged ping-pong A")
	mustDone(doneB, "staged ping-pong B")

	return LatencyResult{
		Size: size, Iters: iters,
		HalfRTT: tEnd.Sub(tStart) / sim.Duration(2*iters),
	}
}

// StagedComparison contrasts GPUDirect (dev2dev-hostControlled) with host
// staging across sizes — the background trade-off of §II.
func StagedComparison(p cluster.Params) string {
	var b strings.Builder
	b.WriteString("GPUDirect RDMA (dev2dev) vs host-staged communication, EXTOLL\n\n")
	b.WriteString("latency [us]:\n")
	fmt.Fprintf(&b, "  %-10s %12s %12s\n", "size[B]", "GPUDirect", "staged")
	for _, size := range []int{64, 4096, 65536} {
		d := ExtollPingPong(p, ExtHostControlled, size, 8, 2).HalfRTT.Microseconds()
		s := StagedPingPong(p, size, 8, 2).HalfRTT.Microseconds()
		fmt.Fprintf(&b, "  %-10d %12.2f %12.2f\n", size, d, s)
	}
	b.WriteString("\nbandwidth [MB/s]:\n")
	fmt.Fprintf(&b, "  %-10s %12s %12s\n", "size[B]", "GPUDirect", "staged")
	for _, size := range []int{65536, 1 << 20, 4 << 20} {
		d := ExtollStream(p, ExtHostControlled, size, 10).BytesPerSec / 1e6
		s := StagedStream(p, size, 10).BytesPerSec / 1e6
		fmt.Fprintf(&b, "  %-10d %12.1f %12.1f\n", size, d, s)
	}
	b.WriteString("\nGPUDirect wins everywhere the P2P read path is healthy; past the\n")
	b.WriteString("1 MiB collapse, staging through host memory overtakes it — which is\n")
	b.WriteString("why production stacks pipeline large transfers through the host.\n")
	return b.String()
}
