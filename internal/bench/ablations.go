package bench

import (
	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
)

// This file implements the ablation studies DESIGN.md calls out: each
// isolates one design choice the paper's discussion (§VI) identifies and
// quantifies its effect.

// IBSingleOpInstr measures the instruction cost of a single device-side
// ibv_post_send and one successful ibv_poll_cq — the paper reports 442
// and 283 (§V-B.3).
func IBSingleOpInstr(p cluster.Params) (post, poll uint64) {
	r := newIBRig(p, 4096)
	defer r.tb.Shutdown()
	qa := r.va.CreateQP(64, 16, 64, false)
	qb := r.vb.CreateQP(64, 16, 64, false)
	core.ConnectVQPs(qa, qb)
	wqe := ibsim.WQE{
		Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: 1,
		LAddr: uint64(r.aSend), LKey: r.aSendMR.LKey, Length: 64,
		RAddr: uint64(r.bRecv), RKey: r.bRecvMR.RKey,
	}
	done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		r.tb.A.GPU.ResetCounters()
		r.va.DevPostSend(w, qa, wqe)
		post = r.tb.A.GPU.Counters().InstrExecuted
		// Let the local completion land so the poll succeeds first try.
		w.Proc().Sleep(50_000 * 1000) // 50us
		r.tb.A.GPU.ResetCounters()
		if _, ok := r.va.DevTryPollCQ(w, qa.SendCQ); !ok {
			panic("bench: completion not ready")
		}
		poll = r.tb.A.GPU.Counters().InstrExecuted
	})
	r.tb.E.Run()
	mustDone(done, "IB single-op measurement")
	return post, poll
}

// AblationEndianness quantifies the paper's static-conversion optimization
// ("we used static converted values where possible"): device post_send
// instruction counts with and without pre-converted static WQE fields.
func AblationEndianness(p cluster.Params) (withOpt, withoutOpt uint64) {
	measure := func(static bool) uint64 {
		r := newIBRig(p, 4096)
		defer r.tb.Shutdown()
		r.va.StaticFieldOpt = static
		qa := r.va.CreateQP(64, 16, 64, false)
		qb := r.vb.CreateQP(64, 16, 64, false)
		core.ConnectVQPs(qa, qb)
		var instr uint64
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			r.tb.A.GPU.ResetCounters()
			r.va.DevPostSend(w, qa, ibsim.WQE{
				Opcode: ibsim.OpRDMAWrite, WRID: 1,
				LAddr: uint64(r.aSend), LKey: r.aSendMR.LKey, Length: 64,
				RAddr: uint64(r.bRecv), RKey: r.bRecvMR.RKey,
			})
			instr = r.tb.A.GPU.Counters().InstrExecuted
		})
		r.tb.E.Run()
		mustDone(done, "endianness ablation")
		return instr
	}
	return measure(true), measure(false)
}

// CollectiveCost holds single-thread vs warp-collective descriptor costs.
type CollectiveCost struct {
	SingleInstr, CollectiveInstr uint64
	SingleTxns, CollectiveTxns   uint64 // 32B PCIe write transactions
}

// AblationCollectivePostExtoll measures the thread-collective EXTOLL WR
// write (claim 2 of §VI) against the single-thread baseline.
func AblationCollectivePostExtoll(p cluster.Params) CollectiveCost {
	measure := func(collective bool) (uint64, uint64) {
		r := newExtollRig(p, 4096)
		defer r.tb.Shutdown()
		r.openPorts(1)
		threads := 1
		if collective {
			threads = 8
		}
		var instr, txns uint64
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: threads}, func(w *gpusim.Warp) {
			r.tb.A.GPU.ResetCounters()
			if collective {
				r.ra.DevPutCollective(w, 0, r.aSendN, r.bRecvN, 64, 0)
			} else {
				r.ra.DevPut(w, 0, r.aSendN, r.bRecvN, 64, 0)
			}
			c := r.tb.A.GPU.Counters()
			instr, txns = c.InstrExecuted, c.SysmemWrites32B
		})
		r.tb.E.Run()
		mustDone(done, "collective put ablation")
		return instr, txns
	}
	var c CollectiveCost
	c.SingleInstr, c.SingleTxns = measure(false)
	c.CollectiveInstr, c.CollectiveTxns = measure(true)
	return c
}

// AblationCollectivePostIB measures the warp-cooperative WQE build.
func AblationCollectivePostIB(p cluster.Params) CollectiveCost {
	measure := func(collective bool) (uint64, uint64) {
		r := newIBRig(p, 4096)
		defer r.tb.Shutdown()
		qa := r.va.CreateQP(64, 16, 64, false)
		qb := r.vb.CreateQP(64, 16, 64, false)
		core.ConnectVQPs(qa, qb)
		threads := 1
		if collective {
			threads = 8
		}
		wqe := ibsim.WQE{
			Opcode: ibsim.OpRDMAWrite, WRID: 1,
			LAddr: uint64(r.aSend), LKey: r.aSendMR.LKey, Length: 64,
			RAddr: uint64(r.bRecv), RKey: r.bRecvMR.RKey,
		}
		var instr, txns uint64
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: threads}, func(w *gpusim.Warp) {
			r.tb.A.GPU.ResetCounters()
			if collective {
				r.va.DevPostSendCollective(w, qa, wqe)
			} else {
				r.va.DevPostSend(w, qa, wqe)
			}
			c := r.tb.A.GPU.Counters()
			instr, txns = c.InstrExecuted, c.SysmemWrites32B
		})
		r.tb.E.Run()
		mustDone(done, "collective post ablation")
		return instr, txns
	}
	var c CollectiveCost
	c.SingleInstr, c.SingleTxns = measure(false)
	c.CollectiveInstr, c.CollectiveTxns = measure(true)
	return c
}

// AblationNotifPlacement contrasts the EXTOLL design constraint of §VI:
// kernel-pre-allocated notification rings in host memory (as shipped)
// versus hypothetical rings in GPU device memory, measured on the
// dev2dev-direct latency path. It quantifies claim 3 ("notification
// queues in GPU memory").
func AblationNotifPlacement(p cluster.Params, size int) (hostRings, devRings LatencyResult) {
	hostRings = ExtollPingPong(p, ExtDirect, size, 10, 2)
	pd := p
	pd.ExtNotifInDevMem = true
	devRings = ExtollPingPong(pd, ExtDirect, size, 10, 2)
	return hostRings, devRings
}

// AblationP2PCollapse contrasts large-message bandwidth with the PCIe
// peer-to-peer read anomaly on and off, confirming it is the sole cause
// of the >1MiB droop in Figs. 1b/4b.
func AblationP2PCollapse(p cluster.Params) (withCollapse, withoutCollapse BandwidthResult) {
	withCollapse = ExtollStream(p, ExtHostControlled, 4<<20, 6)
	po := p
	po.P2PCollapseOff = true
	withoutCollapse = ExtollStream(po, ExtHostControlled, 4<<20, 6)
	return withCollapse, withoutCollapse
}
