package bench

import (
	"putget/internal/cluster"
	"putget/internal/transport"
)

// The InfiniBand benchmark entry points are thin bindings of the generic
// harness (harness.go) to the Verbs transport adapter; the per-mode
// behavior lives in the harness's control-mode table.

// IBPingPong runs the §V-B.1 latency experiment. For the GPU-controlled
// modes the pong is detected by polling the last received element in
// device memory (the paper avoids write-with-immediate on the GPU); the
// host-controlled mode uses write-with-immediate and receive CQEs.
func IBPingPong(p cluster.Params, mode ControlMode, size, iters, warmup int) LatencyResult {
	return PingPong(p, transport.KindIB, mode, size, iters, warmup)
}

// IBStream runs the §V-B.1 bandwidth experiment: a window of RDMA writes
// A→B with completion moderation (every 4th WQE signaled, as ib_write_bw
// does), reaping completions to refill the window; throughput measured to
// the arrival of the final payload at B.
func IBStream(p cluster.Params, mode ControlMode, size, messages int) BandwidthResult {
	return Stream(p, transport.KindIB, mode, size, messages)
}

// IBMessageRate runs the §V-B.2 experiment: `pairs` QP connections, one
// per CUDA block / kernel / CPU agent, each sending `perPair` 64-byte
// messages with a window of one signaled write.
func IBMessageRate(p cluster.Params, method RateMethod, pairs, perPair int) RateResult {
	return MessageRate(p, transport.KindIB, method, pairs, perPair)
}
