package bench

import (
	"bytes"
	"fmt"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// ibRig is a two-node InfiniBand testbed with data buffers in GPU memory
// on both sides and one connected QP (more can be added for msg rate).
type ibRig struct {
	tb     *cluster.Testbed
	va, vb *core.Verbs

	aSend, aRecv memspace.Addr // on GPU A
	bSend, bRecv memspace.Addr // on GPU B

	aSendMR, aRecvMR *ibsim.MR // registered at A
	bSendMR, bRecvMR *ibsim.MR // registered at B
}

func newIBRig(p cluster.Params, bufSize uint64) *ibRig {
	tb := cluster.NewIBPair(fitParams(p, bufSize))
	va, vb := core.NewVerbs(tb.A), core.NewVerbs(tb.B)
	r := &ibRig{tb: tb, va: va, vb: vb}
	r.aSend = tb.A.AllocDev(bufSize)
	r.aRecv = tb.A.AllocDev(bufSize)
	r.bSend = tb.B.AllocDev(bufSize)
	r.bRecv = tb.B.AllocDev(bufSize)
	r.aSendMR = va.RegMR(r.aSend, bufSize)
	r.aRecvMR = va.RegMR(r.aRecv, bufSize)
	r.bSendMR = vb.RegMR(r.bSend, bufSize)
	r.bRecvMR = vb.RegMR(r.bRecv, bufSize)
	return r
}

func (r *ibRig) fillPayload(size int) []byte {
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i*13 + 5)
	}
	mustWrite(r.tb.A.GPU.HostWrite(r.aSend, payload))
	mustWrite(r.tb.B.GPU.HostWrite(r.bSend, payload))
	return payload
}

// pingWQE builds A's ping descriptor.
func (r *ibRig) pingWQE(size int, flags int, wrid uint64) ibsim.WQE {
	return ibsim.WQE{
		Opcode: ibsim.OpRDMAWrite, Flags: flags, WRID: wrid,
		LAddr: uint64(r.aSend), LKey: r.aSendMR.LKey, Length: size,
		RAddr: uint64(r.bRecv), RKey: r.bRecvMR.RKey,
	}
}

// pongWQE builds B's pong descriptor.
func (r *ibRig) pongWQE(size int, flags int, wrid uint64) ibsim.WQE {
	return ibsim.WQE{
		Opcode: ibsim.OpRDMAWrite, Flags: flags, WRID: wrid,
		LAddr: uint64(r.bSend), LKey: r.bSendMR.LKey, Length: size,
		RAddr: uint64(r.aRecv), RKey: r.aRecvMR.RKey,
	}
}

// IBPingPong runs the §V-B.1 latency experiment. For the GPU-controlled
// modes the pong is detected by polling the last received element in
// device memory (the paper avoids write-with-immediate on the GPU); the
// host-controlled mode uses write-with-immediate and receive CQEs.
func IBPingPong(p cluster.Params, mode IBMode, size, iters, warmup int) LatencyResult {
	buf := uint64(size)
	if buf < 8 {
		buf = 8
	}
	r := newIBRig(p, buf)
	defer r.tb.Shutdown()
	total := warmup + iters
	mask := seqMask(size)
	off := memspace.Addr(stampOff(size))

	var tStart, tEnd sim.Time
	var putSum, pollSum sim.Duration

	switch mode {
	case IBBufOnGPU, IBBufOnHost:
		onGPU := mode == IBBufOnGPU
		qa := r.va.CreateQP(512, 64, 512, onGPU)
		qb := r.vb.CreateQP(512, 64, 512, onGPU)
		core.ConnectVQPs(qa, qb)
		doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				if i == warmup+1 {
					r.tb.A.GPU.ResetCounters()
					tStart = w.Now()
				}
				t0 := w.Now()
				w.StGlobalU64(r.aSend+off, uint64(i))
				r.va.DevPostSend(w, qa, r.pingWQE(size, ibsim.FlagSignaled, uint64(i)))
				t1 := w.Now()
				r.va.DevPollCQ(w, qa.SendCQ) // reap local completion
				w.PollGlobalU64Masked(r.aRecv+off, uint64(i)&mask, mask)
				t2 := w.Now()
				if i > warmup {
					putSum += t1.Sub(t0)
					pollSum += t2.Sub(t1)
				}
			}
			tEnd = w.Now()
		})
		doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				w.PollGlobalU64Masked(r.bRecv+off, uint64(i)&mask, mask)
				w.StGlobalU64(r.bSend+off, uint64(i))
				r.vb.DevPostSend(w, qb, r.pongWQE(size, ibsim.FlagSignaled, uint64(i)))
				r.vb.DevPollCQ(w, qb.SendCQ)
			}
		})
		r.tb.E.Run()
		mustDone(doneA, "IB ping-pong kernel A")
		mustDone(doneB, "IB ping-pong kernel B")

	case IBAssisted:
		qa := r.va.CreateQP(512, 64, 512, false)
		qb := r.vb.CreateQP(512, 64, 512, false)
		core.ConnectVQPs(qa, qb)
		flagsA := core.NewAssistFlags(r.tb.A)
		flagsB := core.NewAssistFlags(r.tb.B)
		doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				if i == warmup+1 {
					r.tb.A.GPU.ResetCounters()
					tStart = w.Now()
				}
				t0 := w.Now()
				w.StGlobalU64(r.aSend+off, uint64(i))
				core.DevRequestAssist(w, flagsA, uint64(i))
				t1 := w.Now()
				w.PollGlobalU64Masked(r.aRecv+off, uint64(i)&mask, mask)
				t2 := w.Now()
				if i > warmup {
					putSum += t1.Sub(t0)
					pollSum += t2.Sub(t1)
				}
			}
			tEnd = w.Now()
		})
		doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				w.PollGlobalU64Masked(r.bRecv+off, uint64(i)&mask, mask)
				w.StGlobalU64(r.bSend+off, uint64(i))
				core.DevRequestAssist(w, flagsB, uint64(i))
			}
		})
		r.tb.E.Spawn("a.cpu.assist", func(p *sim.Proc) {
			for i := 1; i <= total; i++ {
				core.HostAwaitAssistReq(p, r.tb.A.CPU, flagsA, uint64(i))
				r.va.HostPostSend(p, qa, r.pingWQE(size, ibsim.FlagSignaled, uint64(i)))
				r.va.HostPollCQ(p, qa.SendCQ)
			}
		})
		r.tb.E.Spawn("b.cpu.assist", func(p *sim.Proc) {
			for i := 1; i <= total; i++ {
				core.HostAwaitAssistReq(p, r.tb.B.CPU, flagsB, uint64(i))
				r.vb.HostPostSend(p, qb, r.pongWQE(size, ibsim.FlagSignaled, uint64(i)))
				r.vb.HostPollCQ(p, qb.SendCQ)
			}
		})
		r.tb.E.Run()
		mustDone(doneA, "IB assisted kernel A")
		mustDone(doneB, "IB assisted kernel B")

	case IBHostControlled:
		// Write-with-immediate both ways; receive CQEs synchronize the
		// two hosts (the Mellanox patch does not allow host polls on GPU
		// memory, §V-B.1).
		qa := r.va.CreateQP(512, total+8, 512, false)
		qb := r.vb.CreateQP(512, total+8, 512, false)
		core.ConnectVQPs(qa, qb)
		doneA := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			for i := 0; i < total; i++ { // pre-post receives for pongs
				r.va.HostPostRecv(p, qa, ibsim.RecvWQE{WRID: uint64(i)})
			}
			for i := 1; i <= total; i++ {
				if i == warmup+1 {
					tStart = p.Now()
				}
				t0 := p.Now()
				wqe := r.pingWQE(size, 0, uint64(i))
				wqe.Opcode = ibsim.OpRDMAWriteImm
				wqe.Imm = uint32(i)
				r.va.HostPostSend(p, qa, wqe)
				t1 := p.Now()
				cqe := r.va.HostPollCQ(p, qa.RecvCQ) // pong immediate
				if cqe.Imm != uint32(i) {
					panic(fmt.Sprintf("bench: pong imm %d at iteration %d", cqe.Imm, i))
				}
				t2 := p.Now()
				if i > warmup {
					putSum += t1.Sub(t0)
					pollSum += t2.Sub(t1)
				}
			}
			tEnd = p.Now()
			doneA.Complete()
		})
		doneB := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("b.cpu", func(p *sim.Proc) {
			for i := 0; i < total; i++ {
				r.vb.HostPostRecv(p, qb, ibsim.RecvWQE{WRID: uint64(i)})
			}
			for i := 1; i <= total; i++ {
				r.vb.HostPollCQ(p, qb.RecvCQ) // ping immediate
				wqe := r.pongWQE(size, 0, uint64(i))
				wqe.Opcode = ibsim.OpRDMAWriteImm
				wqe.Imm = uint32(i)
				r.vb.HostPostSend(p, qb, wqe)
			}
			doneB.Complete()
		})
		r.tb.E.Run()
		mustDone(doneA, "IB host-controlled A")
		mustDone(doneB, "IB host-controlled B")

	default:
		panic("bench: unknown IB mode")
	}

	return LatencyResult{
		Size:     size,
		Iters:    iters,
		HalfRTT:  tEnd.Sub(tStart) / sim.Duration(2*iters),
		PutTime:  putSum / sim.Duration(iters),
		PollTime: pollSum / sim.Duration(iters),
		Counters: r.tb.A.GPU.Counters(),
		Rel:      ibRel(r.tb),
	}
}

// IBStream runs the §V-B.1 bandwidth experiment: a window of RDMA writes
// A→B with completion moderation (every sigEvery-th WQE signaled, as
// ib_write_bw does), reaping completions to refill the window; throughput
// measured to the arrival of the final payload at B.
func IBStream(p cluster.Params, mode IBMode, size, messages int) BandwidthResult {
	const window = 4   // outstanding *signaled* WQEs
	const sigEvery = 4 // CQ moderation interval
	buf := uint64(size)
	if buf < 8 {
		buf = 8
	}
	r := newIBRig(p, buf)
	defer r.tb.Shutdown()
	payload := r.fillPayload(size)
	_ = payload
	mask := seqMask(size)
	off := memspace.Addr(stampOff(size))
	final := uint64(messages) & mask

	var tStart, tEnd sim.Time
	endSeen := sim.NewCompletion(r.tb.E)

	switch mode {
	case IBBufOnGPU, IBBufOnHost:
		onGPU := mode == IBBufOnGPU
		qa := r.va.CreateQP(512, 64, 512, onGPU)
		qb := r.vb.CreateQP(512, 64, 512, onGPU)
		core.ConnectVQPs(qa, qb)
		r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			w.PollGlobalU64Masked(r.bRecv+off, final, mask)
			tEnd = w.Now()
			endSeen.Complete()
		})
		r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			tStart = w.Now()
			outstanding := 0
			for i := 1; i <= messages; i++ {
				flags := 0
				if i%sigEvery == 0 || i == messages {
					flags = ibsim.FlagSignaled
				}
				if i == messages {
					w.StGlobalU64(r.aSend+off, uint64(i))
				}
				r.va.DevPostSend(w, qa, r.pingWQE(size, flags, uint64(i)))
				if flags != 0 {
					outstanding++
				}
				if outstanding >= window {
					r.va.DevPollCQ(w, qa.SendCQ)
					outstanding--
				}
			}
			for outstanding > 0 {
				r.va.DevPollCQ(w, qa.SendCQ)
				outstanding--
			}
		})
		_ = qb
	case IBAssisted:
		qa := r.va.CreateQP(512, 64, 512, false)
		qb := r.vb.CreateQP(512, 64, 512, false)
		core.ConnectVQPs(qa, qb)
		_ = qb
		r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			w.PollGlobalU64Masked(r.bRecv+off, final, mask)
			tEnd = w.Now()
			endSeen.Complete()
		})
		flagsA := core.NewAssistFlags(r.tb.A)
		r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			tStart = w.Now()
			for i := 1; i <= messages; i++ {
				core.DevRequestAssist(w, flagsA, uint64(i))
				core.DevAwaitAssistAck(w, flagsA, uint64(i))
			}
		})
		r.tb.E.Spawn("a.cpu.assist", func(p *sim.Proc) {
			outstanding := 0
			for i := 1; i <= messages; i++ {
				core.HostAwaitAssistReq(p, r.tb.A.CPU, flagsA, uint64(i))
				if i == messages {
					r.tb.A.CPU.WriteU64(p, r.aSend+off, uint64(i))
				}
				flags := 0
				if i%sigEvery == 0 || i == messages {
					flags = ibsim.FlagSignaled
				}
				r.va.HostPostSend(p, qa, r.pingWQE(size, flags, uint64(i)))
				if flags != 0 {
					outstanding++
				}
				if outstanding >= window {
					r.va.HostPollCQ(p, qa.SendCQ)
					outstanding--
				}
				core.HostAckAssist(p, r.tb.A.CPU, flagsA, uint64(i))
			}
		})
	case IBHostControlled:
		qa := r.va.CreateQP(512, 16, 512, false)
		qb := r.vb.CreateQP(512, 16, 512, false)
		core.ConnectVQPs(qa, qb)
		r.tb.E.Spawn("b.cpu.end", func(p *sim.Proc) {
			r.vb.HostPostRecv(p, qb, ibsim.RecvWQE{WRID: 1})
			cqe := r.vb.HostPollCQ(p, qb.RecvCQ)
			if cqe.Imm != uint32(messages) {
				panic("bench: wrong final immediate")
			}
			tEnd = p.Now()
			endSeen.Complete()
		})
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			tStart = p.Now()
			outstanding := 0
			for i := 1; i <= messages; i++ {
				flags := 0
				if i%sigEvery == 0 || i == messages {
					flags = ibsim.FlagSignaled
				}
				wqe := r.pingWQE(size, flags, uint64(i))
				if i == messages {
					r.tb.A.CPU.WriteU64(p, r.aSend+off, uint64(i))
					wqe.Opcode = ibsim.OpRDMAWriteImm
					wqe.Imm = uint32(i)
				}
				r.va.HostPostSend(p, qa, wqe)
				if flags != 0 {
					outstanding++
				}
				if outstanding >= window {
					r.va.HostPollCQ(p, qa.SendCQ)
					outstanding--
				}
			}
			for outstanding > 0 {
				r.va.HostPollCQ(p, qa.SendCQ)
				outstanding--
			}
		})
	}

	r.tb.E.Run()
	mustDone(endSeen, "IB stream end detection")
	elapsed := tEnd.Sub(tStart)

	// Verify the final payload arrived intact (modulo the stamp word).
	got := make([]byte, size)
	mustWrite(r.tb.B.GPU.HostRead(r.bRecv, got))
	want := make([]byte, size)
	mustWrite(r.tb.A.GPU.HostRead(r.aSend, want))
	if !bytes.Equal(got, want) {
		panic("bench: IB stream corrupted payload")
	}

	return BandwidthResult{
		Size:        size,
		Messages:    messages,
		Elapsed:     elapsed,
		BytesPerSec: float64(size) * float64(messages) / elapsed.Seconds(),
		Rel:         ibRel(r.tb),
	}
}

// IBMessageRate runs the §V-B.2 experiment: `pairs` QP connections, one
// per CUDA block / kernel / CPU agent, each sending `perPair` 64-byte
// messages with a window of one signaled write.
func IBMessageRate(p cluster.Params, method RateMethod, pairs, perPair int) RateResult {
	const msgSize = 64
	slot := uint64(256)
	r := newIBRig(p, slot*uint64(pairs))
	defer r.tb.Shutdown()
	r.fillPayload(msgSize)

	onGPU := method == RateBlocks || method == RateKernels
	qas := make([]*core.VQP, pairs)
	for b := 0; b < pairs; b++ {
		qa := r.va.CreateQP(256, 16, 256, onGPU)
		qb := r.vb.CreateQP(256, 16, 256, onGPU)
		core.ConnectVQPs(qa, qb)
		qas[b] = qa
	}
	wqeFor := func(b int, wrid uint64) ibsim.WQE {
		return ibsim.WQE{
			Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: wrid,
			LAddr: uint64(r.aSend) + uint64(b)*slot, LKey: r.aSendMR.LKey, Length: msgSize,
			RAddr: uint64(r.bRecv) + uint64(b)*slot, RKey: r.bRecvMR.RKey,
		}
	}

	starts := make([]sim.Time, pairs)
	ends := make([]sim.Time, pairs)

	gpuBody := func(w *gpusim.Warp, b int) {
		starts[b] = w.Now()
		for m := 1; m <= perPair; m++ {
			r.va.DevPostSend(w, qas[b], wqeFor(b, uint64(m)))
			r.va.DevPollCQ(w, qas[b].SendCQ)
		}
		ends[b] = w.Now()
	}

	switch method {
	case RateBlocks:
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: pairs}, func(w *gpusim.Warp) {
			gpuBody(w, w.Block)
		})
		r.tb.E.Run()
		mustDone(done, "IB message-rate blocks kernel")
	case RateKernels:
		dones := make([]*sim.Completion, pairs)
		for b := 0; b < pairs; b++ {
			st := r.tb.A.GPU.NewStream()
			b := b
			dones[b] = r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1, Stream: st}, func(w *gpusim.Warp) {
				gpuBody(w, b)
			})
		}
		r.tb.E.Run()
		for b, d := range dones {
			mustDone(d, fmt.Sprintf("IB message-rate kernel %d", b))
		}
	case RateAssisted:
		flags := make([]core.AssistFlags, pairs)
		for b := range flags {
			flags[b] = core.NewAssistFlags(r.tb.A)
		}
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: pairs}, func(w *gpusim.Warp) {
			b := w.Block
			starts[b] = w.Now()
			for m := 1; m <= perPair; m++ {
				core.DevRequestAssist(w, flags[b], uint64(m))
				core.DevAwaitAssistAck(w, flags[b], uint64(m))
			}
			ends[b] = w.Now()
		})
		cpuDone := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu.assist", func(p *sim.Proc) {
			served := make([]uint64, pairs)
			remaining := pairs * perPair
			for remaining > 0 {
				progress := false
				for b := 0; b < pairs; b++ {
					if served[b] == uint64(perPair) {
						continue
					}
					req := r.tb.A.CPU.ReadU64(p, flags[b].Req)
					if req > served[b] {
						r.va.HostPostSend(p, qas[b], wqeFor(b, req))
						r.va.HostPollCQ(p, qas[b].SendCQ)
						served[b] = req
						core.HostAckAssist(p, r.tb.A.CPU, flags[b], req)
						remaining--
						progress = true
					}
				}
				if !progress {
					r.tb.A.CPU.Compute(p, 200*sim.Nanosecond)
				}
			}
			cpuDone.Complete()
		})
		r.tb.E.Run()
		mustDone(done, "IB assisted rate kernel")
		mustDone(cpuDone, "IB assisted rate CPU")
	case RateHostControlled:
		done := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			starts[0] = p.Now()
			posted := make([]int, pairs)
			inflight := make([]bool, pairs)
			remaining := pairs * perPair
			for remaining > 0 {
				for b := 0; b < pairs; b++ {
					if inflight[b] {
						if _, ok := r.va.HostTryPollCQ(p, qas[b].SendCQ); ok {
							inflight[b] = false
							remaining--
						}
					} else if posted[b] < perPair {
						posted[b]++
						r.va.HostPostSend(p, qas[b], wqeFor(b, uint64(posted[b])))
						inflight[b] = true
					}
				}
			}
			ends[0] = p.Now()
			done.Complete()
		})
		r.tb.E.Run()
		mustDone(done, "IB host-controlled rate CPU")
		for b := 1; b < pairs; b++ {
			starts[b], ends[b] = starts[0], ends[0]
		}
	}

	var minStart, maxEnd sim.Time
	minStart = starts[0]
	for b := 0; b < pairs; b++ {
		if starts[b] < minStart {
			minStart = starts[b]
		}
		if ends[b] > maxEnd {
			maxEnd = ends[b]
		}
	}
	elapsed := maxEnd.Sub(minStart)
	total := pairs * perPair
	return RateResult{
		Pairs:      pairs,
		Messages:   total,
		Elapsed:    elapsed,
		MsgsPerSec: float64(total) / elapsed.Seconds(),
	}
}
