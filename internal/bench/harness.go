//putget:allow boundedwait -- generic measurement harness: ping-pong/stream/msgrate loops time completions that the fault-free rig guarantees; a timeout branch in the hot loop would distort the very instruction counts being measured (fault experiments use the bounded variants in faults.go's sweeps instead)

package bench

import (
	"bytes"
	"fmt"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/gpusim"
	"putget/internal/memspace"
	"putget/internal/sim"
	"putget/internal/transport"
)

// This file is the generic benchmark harness: one driver per experiment
// shape (ping-pong latency, streaming bandwidth, message rate), each
// parameterized by (fabric kind, control mode) and written entirely
// against the transport.Endpoint API. It replaces the former per-fabric
// driver pairs; each mode arm below issues the same Endpoint calls for
// both fabrics, and the adapters charge each fabric's exact control-path
// costs, so results are identical to the pre-unification drivers.

// connHint returns the per-mode Connect hint. EXTOLL ignores ring sizes;
// the IB numbers are the sizes the paper's drivers used (total carries
// the receive-ring demand of the host-controlled ping-pong, which reaps
// one write-with-immediate per exchange).
func connHint(ext bool, mode ControlMode, totalRecvs int) transport.ConnHint {
	hint := transport.ConnHint{QueuesOnGPU: mode == transport.QueuesOnGPU}
	if mode == transport.HostControlled && !ext {
		hint.RecvEntries = totalRecvs
	}
	return hint
}

// PingPong runs the paper's latency experiment (§V-A.1, §V-B.1): `iters`
// measured ping-pong exchanges of `size` bytes after `warmup` unmeasured
// ones, between the two GPUs, under the given control mode. The returned
// counters cover GPU A over the measured iterations.
func PingPong(p cluster.Params, kind transport.Kind, mode ControlMode, size, iters, warmup int) LatencyResult {
	if !transport.Supports(kind, mode) {
		panic(fmt.Sprintf("bench: %s does not support %s", kind, mode))
	}
	buf := uint64(size)
	if buf < 8 {
		buf = 8
	}
	r := newRig(kind, p, buf)
	defer r.tb.Shutdown()
	ext := kind == transport.KindExtoll
	total := warmup + iters
	mask := seqMask(size)
	off := memspace.Addr(stampOff(size))

	epA, epB := r.tr.Connect(0, connHint(ext, mode, total+8))
	var payload []byte
	if ext {
		payload = r.fillPayload(size)
	}

	var tStart, tEnd sim.Time
	var putSum, pollSum sim.Duration

	switch mode {
	case transport.Direct, transport.PollOnGPU:
		// EXTOLL GPU-controlled: direct reaps notifications, pollOnGPU
		// watches the last received payload word in device memory instead.
		flags := 0
		if mode == transport.Direct {
			flags = transport.FlagLocalComp | transport.FlagRemoteComp
		}
		doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				if i == warmup+1 {
					r.tb.A.GPU.ResetCounters()
					tStart = w.Now()
				}
				t0 := w.Now()
				if mode == transport.PollOnGPU {
					w.StGlobalU64(r.aSend+off, uint64(i))
				}
				epA.DevPut(w, r.aSendR, 0, r.bRecvR, 0, size, flags)
				t1 := w.Now()
				if mode == transport.Direct {
					epA.DevWaitComplete(w, transport.CompLocal)
					epA.DevWaitComplete(w, transport.CompRemote) // pong arrived
				} else {
					w.PollGlobalU64Masked(r.aRecv+off, uint64(i)&mask, mask)
				}
				t2 := w.Now()
				if i > warmup {
					putSum += t1.Sub(t0)
					pollSum += t2.Sub(t1)
				}
			}
			tEnd = w.Now()
		})
		doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				if mode == transport.Direct {
					epB.DevWaitComplete(w, transport.CompRemote) // ping arrived
				} else {
					w.PollGlobalU64Masked(r.bRecv+off, uint64(i)&mask, mask)
					w.StGlobalU64(r.bSend+off, uint64(i))
				}
				epB.DevPut(w, r.bSendR, 0, r.aRecvR, 0, size, flags)
				if mode == transport.Direct {
					epB.DevWaitComplete(w, transport.CompLocal)
				}
			}
		})
		r.tb.E.Run()
		mustDone(doneA, fmt.Sprintf("%s ping-pong kernel A", kind))
		mustDone(doneB, fmt.Sprintf("%s ping-pong kernel B", kind))

	case transport.QueuesOnGPU, transport.QueuesOnHost:
		// IB GPU-controlled: the pong is detected by polling the last
		// received element in device memory (the paper avoids
		// write-with-immediate on the GPU); only queue placement differs
		// between the two modes (the ConnHint above).
		doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				if i == warmup+1 {
					r.tb.A.GPU.ResetCounters()
					tStart = w.Now()
				}
				t0 := w.Now()
				w.StGlobalU64(r.aSend+off, uint64(i))
				epA.DevPut(w, r.aSendR, 0, r.bRecvR, 0, size, transport.FlagLocalComp)
				t1 := w.Now()
				epA.DevWaitComplete(w, transport.CompLocal) // reap local completion
				w.PollGlobalU64Masked(r.aRecv+off, uint64(i)&mask, mask)
				t2 := w.Now()
				if i > warmup {
					putSum += t1.Sub(t0)
					pollSum += t2.Sub(t1)
				}
			}
			tEnd = w.Now()
		})
		doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				w.PollGlobalU64Masked(r.bRecv+off, uint64(i)&mask, mask)
				w.StGlobalU64(r.bSend+off, uint64(i))
				epB.DevPut(w, r.bSendR, 0, r.aRecvR, 0, size, transport.FlagLocalComp)
				epB.DevWaitComplete(w, transport.CompLocal)
			}
		})
		r.tb.E.Run()
		mustDone(doneA, fmt.Sprintf("%s ping-pong kernel A", kind))
		mustDone(doneB, fmt.Sprintf("%s ping-pong kernel B", kind))

	case transport.HostAssisted:
		flagsA := core.NewAssistFlags(r.tb.A)
		flagsB := core.NewAssistFlags(r.tb.B)
		doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				if i == warmup+1 {
					r.tb.A.GPU.ResetCounters()
					tStart = w.Now()
				}
				t0 := w.Now()
				w.StGlobalU64(r.aSend+off, uint64(i))
				core.DevRequestAssist(w, flagsA, uint64(i))
				t1 := w.Now()
				w.PollGlobalU64Masked(r.aRecv+off, uint64(i)&mask, mask)
				t2 := w.Now()
				if i > warmup {
					putSum += t1.Sub(t0)
					pollSum += t2.Sub(t1)
				}
			}
			tEnd = w.Now()
		})
		doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			for i := 1; i <= total; i++ {
				w.PollGlobalU64Masked(r.bRecv+off, uint64(i)&mask, mask)
				w.StGlobalU64(r.bSend+off, uint64(i))
				core.DevRequestAssist(w, flagsB, uint64(i))
			}
		})
		r.tb.E.Spawn("a.cpu.assist", func(p *sim.Proc) {
			for i := 1; i <= total; i++ {
				core.HostAwaitAssistReq(p, r.tb.A.CPU, flagsA, uint64(i))
				epA.HostPut(p, r.aSendR, 0, r.bRecvR, 0, size, transport.FlagLocalComp)
				epA.HostWaitComplete(p, transport.CompLocal)
			}
		})
		r.tb.E.Spawn("b.cpu.assist", func(p *sim.Proc) {
			for i := 1; i <= total; i++ {
				core.HostAwaitAssistReq(p, r.tb.B.CPU, flagsB, uint64(i))
				epB.HostPut(p, r.bSendR, 0, r.aRecvR, 0, size, transport.FlagLocalComp)
				epB.HostWaitComplete(p, transport.CompLocal)
			}
		})
		r.tb.E.Run()
		mustDone(doneA, fmt.Sprintf("%s assisted kernel A", kind))
		mustDone(doneB, fmt.Sprintf("%s assisted kernel B", kind))

	case transport.HostControlled:
		// All control on the CPUs. EXTOLL synchronizes on completer
		// notifications; IB puts carry an immediate, each consuming one of
		// the preposted arrival slots (the Mellanox patch does not allow
		// host polls on GPU memory, §V-B.1).
		flags := transport.FlagRemoteComp
		if ext {
			flags |= transport.FlagLocalComp
		}
		doneA := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			epA.HostPrepostArrivals(p, total) // pongs
			for i := 1; i <= total; i++ {
				if i == warmup+1 {
					tStart = p.Now()
				}
				t0 := p.Now()
				epA.HostPut(p, r.aSendR, 0, r.bRecvR, 0, size, flags)
				t1 := p.Now()
				if ext {
					epA.HostWaitComplete(p, transport.CompLocal)
				}
				c := epA.HostWaitComplete(p, transport.CompRemote) // pong arrived
				if !ext && c.Value != uint64(i) {
					panic(fmt.Sprintf("bench: pong imm %d at iteration %d", c.Value, i))
				}
				t2 := p.Now()
				if i > warmup {
					putSum += t1.Sub(t0)
					pollSum += t2.Sub(t1)
				}
			}
			tEnd = p.Now()
			doneA.Complete()
		})
		doneB := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("b.cpu", func(p *sim.Proc) {
			epB.HostPrepostArrivals(p, total) // pings
			for i := 1; i <= total; i++ {
				epB.HostWaitComplete(p, transport.CompRemote)
				epB.HostPut(p, r.bSendR, 0, r.aRecvR, 0, size, flags)
				if ext {
					epB.HostWaitComplete(p, transport.CompLocal)
				}
			}
			doneB.Complete()
		})
		r.tb.E.Run()
		mustDone(doneA, fmt.Sprintf("%s host-controlled A", kind))
		mustDone(doneB, fmt.Sprintf("%s host-controlled B", kind))

	default:
		panic("bench: unknown control mode")
	}

	// Verify delivery on the modes whose final ping is the unmodified
	// payload (the stamping modes overwrite the tail word).
	if ext && (mode == transport.Direct || mode == transport.HostControlled) {
		got := make([]byte, size)
		mustWrite(r.tb.B.GPU.HostRead(r.bRecv, got))
		if !bytes.Equal(got, payload[:size]) {
			panic("bench: ping-pong corrupted payload")
		}
	}

	return LatencyResult{
		Size:     size,
		Iters:    iters,
		HalfRTT:  tEnd.Sub(tStart) / sim.Duration(2*iters),
		PutTime:  putSum / sim.Duration(iters),
		PollTime: pollSum / sim.Duration(iters),
		Counters: r.tb.A.GPU.Counters(),
		Events:   r.tb.E.Executed(),
		Rel:      r.relCounters(),
	}
}

// Stream runs the paper's bandwidth experiment (§V-A.1, §V-B.1):
// `messages` puts of `size` bytes A→B; throughput is measured from the
// first post on A to the arrival of the final payload at B. The put
// window follows each fabric's driver: EXTOLL completes every put (its
// requester notifications are cheap), IB moderates the CQ like
// ib_write_bw (every 4th WQE signaled, window of 4).
func Stream(p cluster.Params, kind transport.Kind, mode ControlMode, size, messages int) BandwidthResult {
	if kind == transport.KindExtoll && mode == transport.PollOnGPU {
		// Without notifications there is no flow-control signal; the
		// paper's bandwidth plot therefore only shows direct, assisted and
		// host-controlled. Accept the mode for completeness by falling
		// back to requester notifications.
		mode = transport.Direct
	}
	if !transport.Supports(kind, mode) {
		panic(fmt.Sprintf("bench: %s does not support %s", kind, mode))
	}
	buf := uint64(size)
	if buf < 8 {
		buf = 8
	}
	r := newRig(kind, p, buf)
	defer r.tb.Shutdown()
	ext := kind == transport.KindExtoll
	mask := seqMask(size)
	off := memspace.Addr(stampOff(size))
	final := uint64(messages) & mask

	window, sigEvery := 1, 1
	if !ext {
		window, sigEvery = 4, 4
	}

	epA, epB := r.tr.Connect(0, connHint(ext, mode, 16))
	r.fillPayload(size)

	var tStart, tEnd sim.Time
	endSeen := sim.NewCompletion(r.tb.E)

	// Receiver-side end detection.
	if mode == transport.HostControlled {
		r.tb.E.Spawn("b.cpu.end", func(p *sim.Proc) {
			epB.HostPrepostArrivals(p, 1)
			c := epB.HostWaitComplete(p, transport.CompRemote)
			if !ext && c.Value != uint64(messages) {
				panic("bench: wrong final immediate")
			}
			tEnd = p.Now()
			endSeen.Complete()
		})
	} else {
		r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			w.PollGlobalU64Masked(r.bRecv+off, final, mask)
			tEnd = w.Now()
			endSeen.Complete()
		})
	}

	switch mode {
	case transport.Direct, transport.QueuesOnGPU, transport.QueuesOnHost:
		r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			tStart = w.Now()
			outstanding := 0
			for i := 1; i <= messages; i++ {
				flags := 0
				if i%sigEvery == 0 || i == messages {
					flags = transport.FlagLocalComp
				}
				if i == messages {
					w.StGlobalU64(r.aSend+off, uint64(i))
				}
				epA.DevPut(w, r.aSendR, 0, r.bRecvR, 0, size, flags)
				if flags != 0 {
					outstanding++
				}
				if outstanding >= window {
					epA.DevWaitComplete(w, transport.CompLocal)
					outstanding--
				}
			}
			for outstanding > 0 {
				epA.DevWaitComplete(w, transport.CompLocal)
				outstanding--
			}
		})
	case transport.HostAssisted:
		flagsA := core.NewAssistFlags(r.tb.A)
		r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			tStart = w.Now()
			for i := 1; i <= messages; i++ {
				core.DevRequestAssist(w, flagsA, uint64(i))
				core.DevAwaitAssistAck(w, flagsA, uint64(i))
			}
		})
		r.tb.E.Spawn("a.cpu.assist", func(p *sim.Proc) {
			outstanding := 0
			for i := 1; i <= messages; i++ {
				core.HostAwaitAssistReq(p, r.tb.A.CPU, flagsA, uint64(i))
				if i == messages {
					r.tb.A.CPU.WriteU64(p, r.aSend+off, uint64(i))
				}
				flags := 0
				if i%sigEvery == 0 || i == messages {
					flags = transport.FlagLocalComp
				}
				epA.HostPut(p, r.aSendR, 0, r.bRecvR, 0, size, flags)
				if flags != 0 {
					outstanding++
				}
				if outstanding >= window {
					epA.HostWaitComplete(p, transport.CompLocal)
					outstanding--
				}
				core.HostAckAssist(p, r.tb.A.CPU, flagsA, uint64(i))
			}
		})
	case transport.HostControlled:
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			tStart = p.Now()
			outstanding := 0
			for i := 1; i <= messages; i++ {
				flags := 0
				if i%sigEvery == 0 || i == messages {
					flags = transport.FlagLocalComp
				}
				if i == messages {
					r.tb.A.CPU.WriteU64(p, r.aSend+off, uint64(i))
					flags |= transport.FlagRemoteComp
				}
				epA.HostPut(p, r.aSendR, 0, r.bRecvR, 0, size, flags)
				if flags&transport.FlagLocalComp != 0 {
					outstanding++
				}
				if outstanding >= window {
					epA.HostWaitComplete(p, transport.CompLocal)
					outstanding--
				}
			}
			for outstanding > 0 {
				epA.HostWaitComplete(p, transport.CompLocal)
				outstanding--
			}
		})
	}

	r.tb.E.Run()
	mustDone(endSeen, fmt.Sprintf("%s stream end detection", kind))
	elapsed := tEnd.Sub(tStart)

	// Verify the final payload arrived intact (modulo the stamp word,
	// which the source buffer also carries after the last-message stamp).
	if !ext {
		got := make([]byte, size)
		mustWrite(r.tb.B.GPU.HostRead(r.bRecv, got))
		want := make([]byte, size)
		mustWrite(r.tb.A.GPU.HostRead(r.aSend, want))
		if !bytes.Equal(got, want) {
			panic("bench: stream corrupted payload")
		}
	}

	return BandwidthResult{
		Size:        size,
		Messages:    messages,
		Elapsed:     elapsed,
		BytesPerSec: float64(size) * float64(messages) / elapsed.Seconds(),
		Events:      r.tb.E.Executed(),
		Rel:         r.relCounters(),
	}
}

// MessageRate runs the paper's message-rate experiment (§V-A.2, §V-B.2):
// `pairs` connections (EXTOLL ports / IB queue pairs), one per agent per
// the method, each sending `perPair` 64-byte messages with a window of
// one completed put.
func MessageRate(p cluster.Params, kind transport.Kind, method RateMethod, pairs, perPair int) RateResult {
	const msgSize = 64
	slot := uint64(256) // per-pair buffer slot
	r := newRig(kind, p, slot*uint64(pairs))
	defer r.tb.Shutdown()
	ext := kind == transport.KindExtoll

	hint := transport.ConnHint{}
	if !ext {
		onGPU := method == RateBlocks || method == RateKernels
		hint = transport.ConnHint{SendEntries: 256, RecvEntries: 16, CompEntries: 256, QueuesOnGPU: onGPU}
	}
	epsA := make([]transport.Endpoint, pairs)
	for b := 0; b < pairs; b++ {
		epsA[b], _ = r.tr.Connect(b, hint)
	}
	r.fillPayload(msgSize)

	starts := make([]sim.Time, pairs)
	ends := make([]sim.Time, pairs)
	slotOff := func(b int) uint64 { return uint64(b) * slot }

	gpuBody := func(w *gpusim.Warp, b int) {
		starts[b] = w.Now()
		for m := 1; m <= perPair; m++ {
			epsA[b].DevPut(w, r.aSendR, slotOff(b), r.bRecvR, slotOff(b), msgSize, transport.FlagLocalComp)
			epsA[b].DevWaitComplete(w, transport.CompLocal)
		}
		ends[b] = w.Now()
	}

	switch method {
	case RateBlocks:
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: pairs}, func(w *gpusim.Warp) {
			gpuBody(w, w.Block)
		})
		r.tb.E.Run()
		mustDone(done, fmt.Sprintf("%s message-rate blocks kernel", kind))
	case RateKernels:
		dones := make([]*sim.Completion, pairs)
		for b := 0; b < pairs; b++ {
			st := r.tb.A.GPU.NewStream()
			b := b
			dones[b] = r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1, Stream: st}, func(w *gpusim.Warp) {
				gpuBody(w, b)
			})
		}
		r.tb.E.Run()
		for b, d := range dones {
			mustDone(d, fmt.Sprintf("%s message-rate kernel %d", kind, b))
		}
	case RateAssisted:
		aflags := make([]core.AssistFlags, pairs)
		for b := range aflags {
			aflags[b] = core.NewAssistFlags(r.tb.A)
		}
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: pairs}, func(w *gpusim.Warp) {
			b := w.Block
			starts[b] = w.Now()
			for m := 1; m <= perPair; m++ {
				core.DevRequestAssist(w, aflags[b], uint64(m))
				core.DevAwaitAssistAck(w, aflags[b], uint64(m))
			}
			ends[b] = w.Now()
		})
		// One CPU thread serves every pair: while it handles one request,
		// all other aspirants block — the §V-A.2 bottleneck.
		cpuDone := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu.assist", func(p *sim.Proc) {
			served := make([]uint64, pairs)
			remaining := pairs * perPair
			for remaining > 0 {
				progress := false
				for b := 0; b < pairs; b++ {
					if served[b] == uint64(perPair) {
						continue
					}
					req := r.tb.A.CPU.ReadU64(p, aflags[b].Req)
					if req > served[b] {
						epsA[b].HostPut(p, r.aSendR, slotOff(b), r.bRecvR, slotOff(b), msgSize, transport.FlagLocalComp)
						epsA[b].HostWaitComplete(p, transport.CompLocal)
						served[b] = req
						core.HostAckAssist(p, r.tb.A.CPU, aflags[b], req)
						remaining--
						progress = true
					}
				}
				if !progress {
					// Nothing pending: wait for the next GPU request flag.
					r.tb.A.CPU.Compute(p, 200*sim.Nanosecond)
				}
			}
			cpuDone.Complete()
		})
		r.tb.E.Run()
		mustDone(done, fmt.Sprintf("%s assisted rate kernel", kind))
		mustDone(cpuDone, fmt.Sprintf("%s assisted rate CPU", kind))
	case RateHostControlled:
		done := sim.NewCompletion(r.tb.E)
		r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			starts[0] = p.Now()
			posted := make([]int, pairs)
			inflight := make([]bool, pairs)
			remaining := pairs * perPair
			for remaining > 0 {
				for b := 0; b < pairs; b++ {
					if inflight[b] {
						if _, ok := epsA[b].HostTryComplete(p, transport.CompLocal); ok {
							inflight[b] = false
							remaining--
						}
					} else if posted[b] < perPair {
						posted[b]++
						epsA[b].HostPut(p, r.aSendR, slotOff(b), r.bRecvR, slotOff(b), msgSize, transport.FlagLocalComp)
						inflight[b] = true
					}
				}
			}
			ends[0] = p.Now()
			done.Complete()
		})
		r.tb.E.Run()
		mustDone(done, fmt.Sprintf("%s host-controlled rate CPU", kind))
		for b := 1; b < pairs; b++ {
			starts[b], ends[b] = starts[0], ends[0]
		}
	}

	var minStart, maxEnd sim.Time
	minStart = starts[0]
	for b := 0; b < pairs; b++ {
		if starts[b] < minStart {
			minStart = starts[b]
		}
		if ends[b] > maxEnd {
			maxEnd = ends[b]
		}
	}
	elapsed := maxEnd.Sub(minStart)
	total := pairs * perPair
	return RateResult{
		Pairs:      pairs,
		Messages:   total,
		Elapsed:    elapsed,
		MsgsPerSec: float64(total) / elapsed.Seconds(),
		Events:     r.tb.E.Executed(),
	}
}
