//putget:allow boundedwait -- fault experiments wait on the *reliable* fabric layer, which either delivers (retransmission) or panics the run (retry exhaustion); an application-level timeout would double-count the recovery the sweep measures

package bench

import (
	"fmt"
	"sort"
	"strings"

	"putget/internal/cluster"
	"putget/internal/extoll"
	"putget/internal/faults"
	"putget/internal/runner"
	"putget/internal/sim"
)

// RelCounters aggregates reliability-protocol and injector activity over
// one measurement, summed across both NICs and both wire directions.
type RelCounters struct {
	Retransmits    uint64
	AcksSent       uint64
	NaksSent       uint64
	Timeouts       uint64 // retransmission-timer expiries
	ReqTimeouts    uint64 // EXTOLL requester ops that timed out
	DupRx          uint64
	IcrcDrops      uint64
	RetryExhausted uint64 // IB QPs driven to ERR
	LinkDowns      uint64 // EXTOLL links declared dead
	WireDrops      uint64 // injector verdicts, both directions
	WireCorrupts   uint64
	WireDelays     uint64
}

// collectRel sums the testbed's injector verdicts; the per-fabric NIC
// counters are added by the callers below. Nil when faults are off, so
// default-path results are unchanged.
func collectRel(tb *cluster.Testbed) *RelCounters {
	if tb.FaultsAB == nil {
		return nil
	}
	rc := &RelCounters{}
	for _, in := range []*faults.Injector{tb.FaultsAB, tb.FaultsBA} {
		st := in.Stats()
		rc.WireDrops += st.Dropped
		rc.WireCorrupts += st.Corrupted
		rc.WireDelays += st.Delayed
	}
	return rc
}

// extollRel snapshots both NICs' reliability counters plus wire verdicts.
func extollRel(tb *cluster.Testbed) *RelCounters {
	rc := collectRel(tb)
	if rc == nil {
		return nil
	}
	for _, n := range []*cluster.Node{tb.A, tb.B} {
		st := n.Extoll.Stats()
		rc.Retransmits += st.Retransmits
		rc.AcksSent += st.AcksSent
		rc.NaksSent += st.NaksSent
		rc.Timeouts += st.Timeouts
		rc.ReqTimeouts += st.ReqTimeouts
		rc.DupRx += st.DupRx
		rc.IcrcDrops += st.IcrcDrops
		rc.LinkDowns += st.LinkDowns
	}
	return rc
}

// ibRel snapshots both HCAs' reliability counters plus wire verdicts.
func ibRel(tb *cluster.Testbed) *RelCounters {
	rc := collectRel(tb)
	if rc == nil {
		return nil
	}
	for _, n := range []*cluster.Node{tb.A, tb.B} {
		st := n.IB.Stats()
		rc.Retransmits += st.Retransmits
		rc.AcksSent += st.AcksSent
		rc.NaksSent += st.NaksSent + st.RnrNaksSent
		rc.Timeouts += st.Timeouts
		rc.DupRx += st.DupRx
		rc.IcrcDrops += st.IcrcDrops
		rc.RetryExhausted += st.RetryExhausted
	}
	return rc
}

// faultSweepRates are the per-packet wire loss probabilities of the
// degradation sweep. Corruption rides along at a quarter of each rate.
var faultSweepRates = []float64{0, 0.005, 0.02, 0.05}

// faultParams prepares one lossy-sweep configuration.
func faultParams(p cluster.Params, seed uint64, dropRate float64) cluster.Params {
	p.FaultInject = true
	p.FaultSeed = seed
	p.FaultDropRate = dropRate
	p.FaultCorruptRate = dropRate / 4
	return p
}

// FaultSweep measures ping-pong latency and streaming goodput as wire loss
// grows, for two control modes per fabric, with the reliability protocols
// cleaning up after the injector. All runs derive from one seed, so the
// whole report is reproducible bit for bit.
//
// The (fabric, mode) x loss-rate matrix is sharded across the harness
// worker pool (p.Parallel): every cell builds its own isolated engine and
// testbed, and the report is assembled in fixed matrix order, so the
// output bytes never depend on the worker count.
func FaultSweep(p cluster.Params, seed uint64) string {
	extModes := []ControlMode{ExtDirect, ExtHostControlled}
	ibModes := []ControlMode{IBBufOnHost, IBHostControlled}
	sections := []string{
		"EXTOLL " + extModes[0].String(), "EXTOLL " + extModes[1].String(),
		"InfiniBand " + ibModes[0].String(), "InfiniBand " + ibModes[1].String(),
	}

	// One cell per (section, loss rate): a latency run plus a goodput run.
	type cellSpec struct {
		section int
		rate    float64
	}
	type sweepPoint struct {
		lat LatencyResult
		bw  BandwidthResult
	}
	var cells []cellSpec
	for sec := range sections {
		for _, rate := range faultSweepRates {
			cells = append(cells, cellSpec{sec, rate})
		}
	}
	points := runner.Map(p.Parallel, cells, func(_ int, c cellSpec) sweepPoint {
		fp := faultParams(p, seed, c.rate)
		if c.section < 2 {
			m := extModes[c.section]
			return sweepPoint{ExtollPingPong(fp, m, 1024, 30, 2), ExtollStream(fp, m, 4096, 64)}
		}
		m := ibModes[c.section-2]
		return sweepPoint{IBPingPong(fp, m, 1024, 30, 2), IBStream(fp, m, 4096, 64)}
	})

	var b strings.Builder
	fmt.Fprintf(&b, "faultsweep: latency and goodput vs wire loss (seed %d)\n", seed)
	fmt.Fprintf(&b, "ping-pong 1KiB x30; stream 4KiB x64; corrupt rate = loss/4\n\n")

	header := func() {
		fmt.Fprintf(&b, "%-8s %12s %14s %6s %6s %6s %6s %6s %6s\n",
			"loss%", "halfRTT[us]", "goodput[MB/s]", "retx", "tmout", "naks", "icrc", "dup", "drops")
	}
	row := func(rate float64, lat LatencyResult, bw BandwidthResult) {
		rc := &RelCounters{}
		if lat.Rel != nil {
			*rc = *lat.Rel
		}
		if bw.Rel != nil {
			rc.Retransmits += bw.Rel.Retransmits
			rc.Timeouts += bw.Rel.Timeouts
			rc.NaksSent += bw.Rel.NaksSent
			rc.IcrcDrops += bw.Rel.IcrcDrops
			rc.DupRx += bw.Rel.DupRx
			rc.WireDrops += bw.Rel.WireDrops
		}
		fmt.Fprintf(&b, "%-8.2f %12.3f %14.1f %6d %6d %6d %6d %6d %6d\n",
			rate*100, lat.HalfRTT.Microseconds(), bw.BytesPerSec/1e6,
			rc.Retransmits, rc.Timeouts, rc.NaksSent, rc.IcrcDrops, rc.DupRx, rc.WireDrops)
	}

	for sec, name := range sections {
		fmt.Fprintf(&b, "%s\n", name)
		header()
		for ri, rate := range faultSweepRates {
			pt := points[sec*len(faultSweepRates)+ri]
			row(rate, pt.lat, pt.bw)
		}
		b.WriteString("\n")
	}

	b.WriteString(BlackoutRecovery(p, seed))
	return b.String()
}

// BlackoutRecovery measures how long the EXTOLL host-controlled ping-pong
// takes to resume after a total-loss window. Five runs stagger the
// blackout start (and the drop-pattern seed), producing a small recovery
// -latency distribution; the blackout is kept shorter than
// MaxRetries x RetxTimeout so the link survives on retransmission alone.
func BlackoutRecovery(p cluster.Params, seed uint64) string {
	const (
		iters    = 400
		size     = 64
		blackout = 60 * sim.Microsecond
	)
	// The five staggered runs are independent simulations: shard them too.
	recoveries := runner.Map(p.Parallel, []int{0, 1, 2, 3, 4}, func(_, k int) sim.Duration {
		fp := p
		fp.FaultInject = true
		fp.FaultSeed = seed + uint64(k)
		fp.FaultDropRate = 0.002
		start := sim.Time(0).Add(sim.Duration(30+10*k) * sim.Microsecond)
		fp.FaultBlackoutStart = start
		fp.FaultBlackoutEnd = start.Add(blackout)
		completions := extollBlackoutRun(fp, size, iters)
		for _, t := range completions {
			if t >= fp.FaultBlackoutEnd {
				return t.Sub(fp.FaultBlackoutEnd)
			}
		}
		panic("bench: blackout run never recovered")
	})
	sort.Slice(recoveries, func(i, j int) bool { return recoveries[i] < recoveries[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "blackout recovery: EXTOLL host-controlled, %v total loss, 0.2%% residual loss\n", blackout)
	fmt.Fprintf(&b, "%-8s %s\n", "CDF", "recovery latency [us]")
	for i, r := range recoveries {
		fmt.Fprintf(&b, "%-8.2f %.3f\n", float64(i+1)/float64(len(recoveries)), r.Microseconds())
	}
	return b.String()
}

// extollBlackoutRun drives a host-controlled EXTOLL ping-pong and records
// the virtual time of each pong at A.
func extollBlackoutRun(p cluster.Params, size, iters int) []sim.Time {
	buf := uint64(size)
	if buf < 8 {
		buf = 8
	}
	r := newExtollRig(p, buf)
	defer r.tb.Shutdown()
	r.openPorts(1)
	r.fillPayload(size)
	flags := extoll.FlagReqNotif | extoll.FlagCompNotif
	completions := make([]sim.Time, 0, iters)

	doneA := sim.NewCompletion(r.tb.E)
	r.tb.E.Spawn("a.cpu", func(pr *sim.Proc) {
		for i := 1; i <= iters; i++ {
			r.ra.HostPut(pr, 0, r.aSendN, r.bRecvN, size, flags)
			r.ra.HostWaitNotif(pr, 0, extoll.ClassRequester)
			r.ra.HostWaitNotif(pr, 0, extoll.ClassCompleter)
			completions = append(completions, pr.Now())
		}
		doneA.Complete()
	})
	doneB := sim.NewCompletion(r.tb.E)
	r.tb.E.Spawn("b.cpu", func(pr *sim.Proc) {
		for i := 1; i <= iters; i++ {
			r.rb.HostWaitNotif(pr, 0, extoll.ClassCompleter)
			r.rb.HostPut(pr, 0, r.bSendN, r.aRecvN, size, flags)
			r.rb.HostWaitNotif(pr, 0, extoll.ClassRequester)
		}
		doneB.Complete()
	})
	r.tb.E.Run()
	mustDone(doneA, "extoll blackout ping-pong A")
	mustDone(doneB, "extoll blackout ping-pong B")
	return completions
}
