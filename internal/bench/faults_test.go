package bench

import (
	"reflect"
	"testing"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/sim"
)

// lossRates spans the property-test range: 0.1% to 20% per-packet drops.
var lossRates = []float64{0.001, 0.02, 0.05, 0.2}

// TestFaultLossyExtollPingPong checks that the EXTOLL link-level protocol
// delivers ping-pongs byte-identically under increasing loss (the
// measurement itself panics on payload corruption) and that the injector
// verdicts show up in the reliability counters.
func TestFaultLossyExtollPingPong(t *testing.T) {
	for _, rate := range lossRates {
		fp := faultParams(cluster.Default(), 7, rate)
		res := ExtollPingPong(fp, ExtHostControlled, 256, 20, 2)
		if res.HalfRTT <= 0 {
			t.Fatalf("rate %v: non-positive latency %v", rate, res.HalfRTT)
		}
		if res.Rel == nil {
			t.Fatalf("rate %v: missing reliability counters", rate)
		}
		if rate >= 0.05 && res.Rel.Retransmits == 0 {
			t.Errorf("rate %v: no retransmissions despite %d wire drops",
				rate, res.Rel.WireDrops)
		}
	}
}

// TestFaultLossyIBPingPong is the InfiniBand counterpart: the RC protocol
// must recover every write-with-immediate exchange (B's loop checks the
// immediates in order), and IBStream verifies the final payload bytes.
func TestFaultLossyIBPingPong(t *testing.T) {
	for _, rate := range lossRates {
		fp := faultParams(cluster.Default(), 7, rate)
		res := IBPingPong(fp, IBHostControlled, 256, 20, 2)
		if res.HalfRTT <= 0 {
			t.Fatalf("rate %v: non-positive latency %v", rate, res.HalfRTT)
		}
		bw := IBStream(fp, IBBufOnHost, 1024, 32) // panics on corrupted payload
		if bw.Rel == nil || (rate >= 0.05 && bw.Rel.Retransmits == 0) {
			t.Errorf("rate %v: stream rel counters %+v", rate, bw.Rel)
		}
	}
}

// TestFaultDeterminismSameSeed re-runs lossy measurements with the same
// seed: every virtual-time result and every counter must be bit-identical.
func TestFaultDeterminismSameSeed(t *testing.T) {
	fp := faultParams(cluster.Default(), 99, 0.05)
	e1 := ExtollPingPong(fp, ExtDirect, 512, 15, 1)
	e2 := ExtollPingPong(fp, ExtDirect, 512, 15, 1)
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("extoll lossy run diverged:\n%+v\n%+v", e1, e2)
	}
	i1 := IBPingPong(fp, IBBufOnHost, 512, 15, 1)
	i2 := IBPingPong(fp, IBBufOnHost, 512, 15, 1)
	if !reflect.DeepEqual(i1, i2) {
		t.Fatalf("IB lossy run diverged:\n%+v\n%+v", i1, i2)
	}
	// A different seed must draw a different fault pattern.
	o := ExtollPingPong(faultParams(cluster.Default(), 100, 0.05), ExtDirect, 512, 15, 1)
	if reflect.DeepEqual(e1.Rel, o.Rel) && e1.HalfRTT == o.HalfRTT {
		t.Fatalf("different seeds produced identical lossy runs")
	}
}

// TestFaultRetryExhaustionIB drives an RC QP into total loss: the
// requester must exhaust its retries, error the QP, complete the head WQE
// with a retry-exceeded CQE, and leave pollers bounded — all in finite
// virtual time.
func TestFaultRetryExhaustionIB(t *testing.T) {
	fp := faultParams(cluster.Default(), 3, 1.0)
	r := newIBRig(fp, 64)
	defer r.tb.Shutdown()
	qa := r.va.CreateQP(64, 16, 64, false)
	qb := r.vb.CreateQP(64, 16, 64, false)
	core.ConnectVQPs(qa, qb)

	var (
		cqe       ibsim.CQE
		ok, again bool
		tEnd      sim.Time
	)
	done := sim.NewCompletion(r.tb.E)
	r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
		r.va.HostPostSend(p, qa, r.pingWQE(64, ibsim.FlagSignaled, 1))
		cqe, ok = r.va.HostPollCQTimeout(p, qa.SendCQ, 5*sim.Millisecond)
		_, again = r.va.HostPollCQTimeout(p, qa.SendCQ, 200*sim.Microsecond)
		tEnd = p.Now()
		done.Complete()
	})
	r.tb.E.Run()
	mustDone(done, "IB retry-exhaustion poller")
	if !ok {
		t.Fatal("no CQE before the poll deadline")
	}
	if cqe.Status != ibsim.StatusRetryExc {
		t.Fatalf("CQE status = %d, want retry-exceeded (%d)", cqe.Status, ibsim.StatusRetryExc)
	}
	if again {
		t.Fatal("second poll returned a CQE on an emptied error QP")
	}
	if tEnd > sim.Time(0).Add(10*sim.Millisecond) {
		t.Fatalf("exhaustion took %v of virtual time; expected bounded", tEnd)
	}
	if st := r.tb.A.IB.Stats(); st.RetryExhausted == 0 || st.Timeouts == 0 {
		t.Fatalf("stats %+v: expected retry exhaustion after timeouts", st)
	}
}

// TestFaultExtollRequesterTimeout issues a Get into a black hole: the
// link dies after its retries, the tracked response is declared lost, and
// the origin port receives an error notification flagged as a timeout.
func TestFaultExtollRequesterTimeout(t *testing.T) {
	fp := faultParams(cluster.Default(), 3, 1.0)
	r := newExtollRig(fp, 64)
	defer r.tb.Shutdown()
	r.openPorts(1)
	r.fillPayload(64)

	var (
		res  core.NotifResult
		ok   bool
		tEnd sim.Time
	)
	done := sim.NewCompletion(r.tb.E)
	r.tb.E.Spawn("a.cpu", func(p *sim.Proc) {
		r.ra.HostGet(p, 0, r.bSendN, r.aRecvN, 64, extoll.FlagCompNotif)
		res, ok = r.ra.HostWaitNotifTimeout(p, 0, extoll.ClassCompleter, 2*sim.Millisecond)
		tEnd = p.Now()
		done.Complete()
	})
	r.tb.E.Run()
	mustDone(done, "EXTOLL requester-timeout waiter")
	if !ok {
		t.Fatal("no notification before the wait deadline")
	}
	if !res.Err || !res.Timeout {
		t.Fatalf("notification %+v: want error + timeout flags", res)
	}
	if tEnd > sim.Time(0).Add(5*sim.Millisecond) {
		t.Fatalf("timeout notification took %v; expected bounded", tEnd)
	}
	if st := r.tb.A.Extoll.Stats(); st.ReqTimeouts == 0 || st.LinkDowns == 0 {
		t.Fatalf("stats %+v: expected a request timeout on a dead link", st)
	}
}

// TestFaultDevWaitNotifTimeout checks the GPU-side bounded wait: a kernel
// polling an empty notification ring gives up at its deadline instead of
// spinning forever.
func TestFaultDevWaitNotifTimeout(t *testing.T) {
	fp := faultParams(cluster.Default(), 3, 1.0)
	r := newExtollRig(fp, 64)
	defer r.tb.Shutdown()
	r.openPorts(1)

	var (
		ok   bool
		tEnd sim.Time
	)
	done := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		_, ok = r.rb.DevWaitNotifTimeout(w, 0, extoll.ClassCompleter, 200*sim.Microsecond)
		tEnd = w.Now()
	})
	r.tb.E.Run()
	mustDone(done, "dev bounded notification wait")
	if ok {
		t.Fatal("bounded wait claimed a notification from an empty ring")
	}
	if limit := sim.Time(0).Add(400 * sim.Microsecond); tEnd > limit {
		t.Fatalf("bounded wait returned at %v; deadline was 200us", tEnd)
	}
}

// TestFaultBlackoutRecovery checks the 100%-loss window end to end: every
// ping-pong iteration still completes (the protocol retransmits across
// the outage) and the run terminates in bounded virtual time.
func TestFaultBlackoutRecovery(t *testing.T) {
	fp := cluster.Default()
	fp.FaultInject = true
	fp.FaultSeed = 5
	fp.FaultBlackoutStart = sim.Time(0).Add(30 * sim.Microsecond)
	fp.FaultBlackoutEnd = fp.FaultBlackoutStart.Add(60 * sim.Microsecond)
	const iters = 100
	completions := extollBlackoutRun(fp, 64, iters)
	if len(completions) != iters {
		t.Fatalf("completed %d/%d iterations", len(completions), iters)
	}
	var after sim.Time
	for _, c := range completions {
		if c >= fp.FaultBlackoutEnd {
			after = c
			break
		}
	}
	if after == 0 {
		t.Fatal("no completion after the blackout window")
	}
	if rec := after.Sub(fp.FaultBlackoutEnd); rec > 100*sim.Microsecond {
		t.Fatalf("recovery latency %v; want under two retransmission rounds", rec)
	}
}
