// Package bench implements the paper's microbenchmarks — ping-pong
// latency, streaming bandwidth, sustained message rate, and the
// performance-counter analyses — for both fabrics and all control modes,
// plus the experiment drivers that regenerate every figure and table of
// the evaluation section.
package bench

import (
	"fmt"

	"putget/internal/gpusim"
	"putget/internal/sim"
	"putget/internal/transport"
)

// ControlMode selects who drives the put/get control path; it is the
// transport layer's fabric-agnostic mode enum (its String values are the
// paper's series names). The former per-fabric ExtollMode/IBMode pairs
// are retained below as named aliases.
type ControlMode = transport.ControlMode

const (
	// ExtDirect posts WRs from the GPU and polls notifications in system
	// memory (dev2dev-direct). EXTOLL only.
	ExtDirect = transport.Direct
	// ExtPollOnGPU posts WRs from the GPU and polls the last received
	// element in device memory (dev2dev-pollOnGPU). EXTOLL only.
	ExtPollOnGPU = transport.PollOnGPU
	// ExtAssisted has the GPU trigger the CPU through a host-memory flag;
	// the CPU performs the transfer (dev2dev-assisted).
	ExtAssisted = transport.HostAssisted
	// ExtHostControlled keeps all control flow on the CPU
	// (dev2dev-hostControlled); data still moves GPU-to-GPU.
	ExtHostControlled = transport.HostControlled

	// IBBufOnGPU: GPU-controlled, queues in GPU device memory. IB only.
	IBBufOnGPU = transport.QueuesOnGPU
	// IBBufOnHost: GPU-controlled, queues in host memory. IB only.
	IBBufOnHost = transport.QueuesOnHost
	// IBAssisted: GPU triggers the CPU via a flag.
	IBAssisted = transport.HostAssisted
	// IBHostControlled: CPU-controlled with write-with-immediate.
	IBHostControlled = transport.HostControlled
)

// RateMethod selects how the message-rate agents are organized (§V-A.2).
type RateMethod int

const (
	// RateBlocks: one kernel, one CUDA block per connection pair.
	RateBlocks RateMethod = iota
	// RateKernels: one single-block kernel per pair, on its own stream.
	RateKernels
	// RateAssisted: GPU blocks trigger one shared CPU service thread.
	RateAssisted
	// RateHostControlled: one CPU thread drives all pairs.
	RateHostControlled
)

// String implements fmt.Stringer with the paper's series names.
func (m RateMethod) String() string {
	switch m {
	case RateBlocks:
		return "dev2dev-blocks"
	case RateKernels:
		return "dev2dev-kernels"
	case RateAssisted:
		return "dev2dev-assisted"
	case RateHostControlled:
		return "dev2dev-hostControlled"
	}
	return fmt.Sprintf("RateMethod(%d)", int(m))
}

// LatencyResult is one ping-pong measurement point.
type LatencyResult struct {
	Size     int
	Iters    int
	HalfRTT  sim.Duration // mean one-way latency
	PutTime  sim.Duration // mean per-iteration WR-generation time (origin)
	PollTime sim.Duration // mean per-iteration completion-wait time (origin)
	Counters gpusim.Counters
	// Events is the simulator's executed-event count for the whole cell
	// (warmup included) — the denominator of the engine's events/sec rate.
	Events uint64
	// Rel holds reliability-protocol activity; nil unless the testbed ran
	// with fault injection enabled.
	Rel *RelCounters
}

// Ratio returns PollTime/PutTime — the decomposition of Fig. 3.
func (r LatencyResult) Ratio() float64 {
	if r.PutTime <= 0 {
		return 0
	}
	return float64(r.PollTime) / float64(r.PutTime)
}

// BandwidthResult is one streaming measurement point.
type BandwidthResult struct {
	Size     int
	Messages int
	Elapsed  sim.Duration
	// BytesPerSec is payload throughput observed at the receiver.
	BytesPerSec float64
	// Events is the simulator's executed-event count for the whole cell.
	Events uint64
	// Rel holds reliability-protocol activity; nil unless the testbed ran
	// with fault injection enabled.
	Rel *RelCounters
}

// RateResult is one message-rate measurement point.
type RateResult struct {
	Pairs      int
	Messages   int
	Elapsed    sim.Duration
	MsgsPerSec float64
	// Events is the simulator's executed-event count for the whole cell.
	Events uint64
}
