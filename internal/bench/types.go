// Package bench implements the paper's microbenchmarks — ping-pong
// latency, streaming bandwidth, sustained message rate, and the
// performance-counter analyses — for both fabrics and all control modes,
// plus the experiment drivers that regenerate every figure and table of
// the evaluation section.
package bench

import (
	"fmt"

	"putget/internal/gpusim"
	"putget/internal/sim"
)

// ExtollMode selects the control path for EXTOLL experiments (§V-A).
type ExtollMode int

const (
	// ExtDirect posts WRs from the GPU and polls notifications in system
	// memory (dev2dev-direct).
	ExtDirect ExtollMode = iota
	// ExtPollOnGPU posts WRs from the GPU and polls the last received
	// element in device memory (dev2dev-pollOnGPU).
	ExtPollOnGPU
	// ExtAssisted has the GPU trigger the CPU through a host-memory flag;
	// the CPU performs the transfer (dev2dev-assisted).
	ExtAssisted
	// ExtHostControlled keeps all control flow on the CPU
	// (dev2dev-hostControlled); data still moves GPU-to-GPU.
	ExtHostControlled
)

// String implements fmt.Stringer with the paper's series names.
func (m ExtollMode) String() string {
	switch m {
	case ExtDirect:
		return "dev2dev-direct"
	case ExtPollOnGPU:
		return "dev2dev-pollOnGPU"
	case ExtAssisted:
		return "dev2dev-assisted"
	case ExtHostControlled:
		return "dev2dev-hostControlled"
	}
	return fmt.Sprintf("ExtollMode(%d)", int(m))
}

// IBMode selects the control path for InfiniBand experiments (§V-B).
type IBMode int

const (
	// IBBufOnGPU: GPU-controlled, queues in GPU device memory.
	IBBufOnGPU IBMode = iota
	// IBBufOnHost: GPU-controlled, queues in host memory.
	IBBufOnHost
	// IBAssisted: GPU triggers the CPU via a flag.
	IBAssisted
	// IBHostControlled: CPU-controlled with write-with-immediate.
	IBHostControlled
)

// String implements fmt.Stringer with the paper's series names.
func (m IBMode) String() string {
	switch m {
	case IBBufOnGPU:
		return "dev2dev-bufOnGPU"
	case IBBufOnHost:
		return "dev2dev-bufOnHost"
	case IBAssisted:
		return "dev2dev-assisted"
	case IBHostControlled:
		return "dev2dev-hostControlled"
	}
	return fmt.Sprintf("IBMode(%d)", int(m))
}

// RateMethod selects how the message-rate agents are organized (§V-A.2).
type RateMethod int

const (
	// RateBlocks: one kernel, one CUDA block per connection pair.
	RateBlocks RateMethod = iota
	// RateKernels: one single-block kernel per pair, on its own stream.
	RateKernels
	// RateAssisted: GPU blocks trigger one shared CPU service thread.
	RateAssisted
	// RateHostControlled: one CPU thread drives all pairs.
	RateHostControlled
)

// String implements fmt.Stringer with the paper's series names.
func (m RateMethod) String() string {
	switch m {
	case RateBlocks:
		return "dev2dev-blocks"
	case RateKernels:
		return "dev2dev-kernels"
	case RateAssisted:
		return "dev2dev-assisted"
	case RateHostControlled:
		return "dev2dev-hostControlled"
	}
	return fmt.Sprintf("RateMethod(%d)", int(m))
}

// LatencyResult is one ping-pong measurement point.
type LatencyResult struct {
	Size     int
	Iters    int
	HalfRTT  sim.Duration // mean one-way latency
	PutTime  sim.Duration // mean per-iteration WR-generation time (origin)
	PollTime sim.Duration // mean per-iteration completion-wait time (origin)
	Counters gpusim.Counters
	// Rel holds reliability-protocol activity; nil unless the testbed ran
	// with fault injection enabled.
	Rel *RelCounters
}

// Ratio returns PollTime/PutTime — the decomposition of Fig. 3.
func (r LatencyResult) Ratio() float64 {
	if r.PutTime <= 0 {
		return 0
	}
	return float64(r.PollTime) / float64(r.PutTime)
}

// BandwidthResult is one streaming measurement point.
type BandwidthResult struct {
	Size     int
	Messages int
	Elapsed  sim.Duration
	// BytesPerSec is payload throughput observed at the receiver.
	BytesPerSec float64
	// Rel holds reliability-protocol activity; nil unless the testbed ran
	// with fault injection enabled.
	Rel *RelCounters
}

// RateResult is one message-rate measurement point.
type RateResult struct {
	Pairs      int
	Messages   int
	Elapsed    sim.Duration
	MsgsPerSec float64
}

// seqMask returns the comparison mask for a size-byte sequence stamp.
func seqMask(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * uint(size))) - 1
}

// stampOff returns the in-buffer offset of the 8-byte stamp word for a
// message of the given size (the last full word, or 0 for tiny messages).
func stampOff(size int) int {
	if size >= 8 {
		return size - 8
	}
	return 0
}
