package bench

import (
	"strings"
	"testing"
	"testing/quick"

	"putget/internal/cluster"
	"putget/internal/sim"
)

func TestSeqMask(t *testing.T) {
	cases := []struct {
		size int
		want uint64
	}{
		{1, 0xff},
		{2, 0xffff},
		{4, 0xffffffff},
		{7, 0xffffffffffffff},
		{8, ^uint64(0)},
		{1024, ^uint64(0)},
	}
	for _, c := range cases {
		if got := seqMask(c.size); got != c.want {
			t.Errorf("seqMask(%d) = %#x, want %#x", c.size, got, c.want)
		}
	}
}

func TestStampOff(t *testing.T) {
	if stampOff(4) != 0 || stampOff(8) != 0 || stampOff(9) != 1 || stampOff(1024) != 1016 {
		t.Fatalf("stampOff wrong: %d %d %d %d", stampOff(4), stampOff(8), stampOff(9), stampOff(1024))
	}
}

// Property: a sequence number below the mask always round-trips through
// stamp-and-mask comparison.
func TestSeqMaskProperty(t *testing.T) {
	f := func(size uint8, seq uint16) bool {
		s := int(size%16) + 1
		m := seqMask(s)
		v := uint64(seq) & m
		return v&m == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyResultRatio(t *testing.T) {
	r := LatencyResult{PutTime: 100, PollTime: 1000}
	if r.Ratio() != 10 {
		t.Fatalf("Ratio = %v", r.Ratio())
	}
	if (LatencyResult{}).Ratio() != 0 {
		t.Fatal("zero put time should yield ratio 0")
	}
}

func TestModeStrings(t *testing.T) {
	if ExtDirect.String() != "dev2dev-direct" || ExtHostControlled.String() != "dev2dev-hostControlled" {
		t.Fatal("EXTOLL mode names wrong")
	}
	if IBBufOnGPU.String() != "dev2dev-bufOnGPU" || IBAssisted.String() != "dev2dev-assisted" {
		t.Fatal("IB mode names wrong")
	}
	if RateKernels.String() != "dev2dev-kernels" {
		t.Fatal("rate method names wrong")
	}
	if !strings.HasPrefix(ControlMode(99).String(), "ControlMode(") {
		t.Fatal("unknown mode should degrade gracefully")
	}
}

func TestFigureFormatAligned(t *testing.T) {
	f := Figure{
		ID: "X", Title: "test", XLabel: "size", YLabel: "stuff",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{2, 4}, Y: []float64{30, 40}},
		},
	}
	out := f.Format()
	if !strings.Contains(out, "X: test") || !strings.Contains(out, "stuff") {
		t.Fatalf("format missing headers:\n%s", out)
	}
	// x=1 exists only in series a: series b's cell must be "-".
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "1 ") || strings.HasPrefix(l, "1\t") || strings.HasPrefix(l, "1  ") {
			if !strings.Contains(l, "-") {
				t.Fatalf("missing-point marker absent in %q", l)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("x=1 row missing:\n%s", out)
	}
}

func TestFigureJSONParses(t *testing.T) {
	f := Figure{ID: "J", Series: []Series{{Label: "s", X: []float64{1}, Y: []float64{2}}}}
	j := f.JSON()
	if !strings.Contains(j, `"Label": "s"`) {
		t.Fatalf("JSON missing series label: %s", j)
	}
}

func TestExperimentLookup(t *testing.T) {
	for _, id := range []string{"fig1a", "table2", "asic", "msgcmp", "claims"} {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if _, ok := Lookup("bogus"); ok {
		t.Fatal("bogus experiment found")
	}
}

func TestLatencyItersScale(t *testing.T) {
	i1, w1 := latencyIters(64)
	i2, w2 := latencyIters(64 << 20)
	if i1 <= i2 || w1 <= w2 {
		t.Fatalf("large sizes should use fewer iterations: (%d,%d) vs (%d,%d)", i1, w1, i2, w2)
	}
}

func TestStreamMessagesBounds(t *testing.T) {
	if streamMessages(1) != 192 {
		t.Fatalf("tiny messages should cap at 192, got %d", streamMessages(1))
	}
	if streamMessages(64<<20) != 6 {
		t.Fatalf("huge messages should floor at 6, got %d", streamMessages(64<<20))
	}
}

func TestClaimsReportRuns(t *testing.T) {
	out := ClaimsReport(cluster.Default())
	for _, needle := range []string{"claim 1", "claim 2", "claim 3", "immediate put"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("claims report missing %q", needle)
		}
	}
}

func TestImmPutGainPositive(t *testing.T) {
	if g := measureImmPutGain(cluster.Default()); g <= 0 {
		t.Fatalf("immediate put gain = %.3f us, want positive", g)
	}
}

func TestFitParamsShrinksOnly(t *testing.T) {
	p := cluster.Default()
	small := fitParams(p, 1024)
	if small.GPUDevMemSize > p.GPUDevMemSize {
		t.Fatal("fitParams grew device memory")
	}
	huge := fitParams(p, 1<<30)
	if huge.GPUDevMemSize != p.GPUDevMemSize {
		t.Fatal("fitParams should not shrink below the requirement")
	}
	_ = sim.Time(0)
}
