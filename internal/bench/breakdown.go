//putget:allow boundedwait -- per-stage breakdown instruments the paper's fault-free pipeline; its waits must be byte-identical to the modes they decompose, and the table's exact-sum invariant pins them

package bench

import (
	"encoding/binary"
	"fmt"
	"strings"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/runner"
	"putget/internal/sim"
	"putget/internal/trace"
)

// breakdownSize is the payload used by the stage-breakdown experiment: big
// enough that DMA fetch and wire serialization are visible next to the
// fixed per-message costs, small enough to stay in the latency regime.
const breakdownSize = 4096

// breakdownResult is one mode's decomposition: the measured end-to-end
// time of a single put and the exclusive per-stage attribution of that
// window, which sums to E2E exactly (uncovered time lands on "(other)").
type breakdownResult struct {
	Mode   string
	E2E    sim.Duration
	Stages []trace.StageShare
}

// breakdownWindow attributes [t0, t1] over the recorded spans. Kernel
// spans are excluded: both GPUs run a kernel covering the whole window,
// so they would absorb idle segments that the table should report as
// "(other)" instead. The class ranking encodes nesting the span starts
// alone cannot: poll spans are outermost waits (both sides poll across
// the whole exchange, so they must only claim time nothing else explains),
// raw PCIe flight spans sit in the middle (MMIO stores pipeline, so each
// store's flight would otherwise shadow the WR-creation stage issuing it),
// and NIC/actor pipeline stages are innermost.
func breakdownWindow(rec *trace.Recorder, t0, t1 sim.Time) []trace.StageShare {
	var kept []trace.Span
	for _, s := range rec.Spans() {
		if s.Kind != "kernel" {
			kept = append(kept, s)
		}
	}
	return trace.Breakdown(kept, t0, t1, func(s trace.Span) int {
		switch {
		case strings.HasPrefix(s.Kind, "poll"):
			return 0
		case s.Comp == "pcie":
			return 1
		default:
			return 2
		}
	})
}

// breakdownExtoll measures a single EXTOLL put A→B with requester and
// completer notifications. The window runs from the origin actor starting
// WR creation to the destination actor consuming the completer
// notification.
func breakdownExtoll(cp cluster.Params, gpuDirect bool) breakdownResult {
	size := breakdownSize
	tb := cluster.NewExtollPair(fitParams(cp, uint64(size)))
	defer tb.Shutdown()
	rec := trace.Attach(tb.E, 200000)
	ra, rb := core.NewRMA(tb.A), core.NewRMA(tb.B)
	src := tb.A.AllocDev(uint64(size))
	dst := tb.B.AllocDev(uint64(size))
	srcN := ra.Register(src, uint64(size))
	dstN := rb.Register(dst, uint64(size))
	ra.OpenPort(0)
	rb.OpenPort(0)
	extoll.ConnectPorts(tb.A.Extoll, 0, tb.B.Extoll, 0)

	var t0, t1 sim.Time
	flags := extoll.FlagReqNotif | extoll.FlagCompNotif
	var doneA, doneB *sim.Completion
	mode := "EXTOLL host-controlled put (HostPut + completer notification)"
	if gpuDirect {
		mode = "EXTOLL GPU-direct put (DevPut + completer notification)"
		doneA = tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			t0 = w.Now()
			ra.DevPut(w, 0, srcN, dstN, size, flags)
			ra.DevWaitNotif(w, 0, extoll.ClassRequester)
		})
		doneB = tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			rb.DevWaitNotif(w, 0, extoll.ClassCompleter)
			t1 = w.Now()
		})
	} else {
		doneA = sim.NewCompletion(tb.E)
		tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			t0 = p.Now()
			ra.HostPut(p, 0, srcN, dstN, size, flags)
			ra.HostWaitNotif(p, 0, extoll.ClassRequester)
			doneA.Complete()
		})
		doneB = sim.NewCompletion(tb.E)
		tb.E.Spawn("b.cpu", func(p *sim.Proc) {
			rb.HostWaitNotif(p, 0, extoll.ClassCompleter)
			t1 = p.Now()
			doneB.Complete()
		})
	}
	tb.E.Run()
	mustDone(doneA, "breakdown extoll origin")
	mustDone(doneB, "breakdown extoll destination")
	return breakdownResult{Mode: mode, E2E: t1.Sub(t0), Stages: breakdownWindow(rec, t0, t1)}
}

// breakdownIB measures a single InfiniBand RDMA write A→B. One-sided
// writes raise no completion at the destination, so the last payload word
// carries a stamp the destination actor polls for — GPU polls device
// memory directly, the host-controlled variant polls across PCIe.
func breakdownIB(cp cluster.Params, gpuDirect bool) breakdownResult {
	size := breakdownSize
	tb := cluster.NewIBPair(fitParams(cp, uint64(size)))
	defer tb.Shutdown()
	rec := trace.Attach(tb.E, 200000)
	va, vb := core.NewVerbs(tb.A), core.NewVerbs(tb.B)
	src := tb.A.AllocDev(uint64(size))
	dst := tb.B.AllocDev(uint64(size))
	srcMR := va.RegMR(src, uint64(size))
	dstMR := vb.RegMR(dst, uint64(size))
	qa := va.CreateQP(64, 16, 64, false)
	qb := vb.CreateQP(64, 16, 64, false)
	core.ConnectVQPs(qa, qb)

	const stamp = uint64(0x51b7a3e9c4d20f15)
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], stamp)
	mustWrite(tb.A.GPU.HostWrite(src+memspace.Addr(size-8), sb[:]))
	wqe := ibsim.WQE{
		Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: 1,
		LAddr: uint64(src), LKey: srcMR.LKey, Length: size,
		RAddr: uint64(dst), RKey: dstMR.RKey,
	}
	stampAddr := dst + memspace.Addr(size-8)

	var t0, t1 sim.Time
	var doneA, doneB *sim.Completion
	mode := "InfiniBand host-controlled RDMA write (HostPostSend + stamp poll)"
	if gpuDirect {
		mode = "InfiniBand GPU-direct RDMA write (DevPostSend + stamp poll)"
		doneA = tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			t0 = w.Now()
			va.DevPostSend(w, qa, wqe)
			va.DevPollCQ(w, qa.SendCQ)
		})
		doneB = tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			w.PollGlobalU64(stampAddr, stamp)
			t1 = w.Now()
		})
	} else {
		doneA = sim.NewCompletion(tb.E)
		tb.E.Spawn("a.cpu", func(p *sim.Proc) {
			t0 = p.Now()
			va.HostPostSend(p, qa, wqe)
			va.HostPollCQ(p, qa.SendCQ)
			doneA.Complete()
		})
		doneB = sim.NewCompletion(tb.E)
		tb.E.Spawn("b.cpu", func(p *sim.Proc) {
			tb.B.CPU.WaitFlag(p, stampAddr, stamp)
			t1 = p.Now()
			doneB.Complete()
		})
	}
	_ = qb
	tb.E.Run()
	mustDone(doneA, "breakdown ib origin")
	mustDone(doneB, "breakdown ib destination")
	return breakdownResult{Mode: mode, E2E: t1.Sub(t0), Stages: breakdownWindow(rec, t0, t1)}
}

// formatBreakdown renders one mode's table. Rows appear in
// first-attribution (roughly pipeline) order; the total row restates the
// invariant that the stages partition the measured window exactly.
func formatBreakdown(res breakdownResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", res.Mode)
	fmt.Fprintf(&b, "  %-32s %12s %8s\n", "stage", "time[us]", "share")
	var sum sim.Duration
	for _, r := range res.Stages {
		name := r.Kind
		if r.Comp != "" {
			name = r.Comp + " " + r.Kind
		}
		fmt.Fprintf(&b, "  %-32s %12.4f %7.1f%%\n",
			name, r.Time.Microseconds(), 100*float64(r.Time)/float64(res.E2E))
		sum += r.Time
	}
	fmt.Fprintf(&b, "  %-32s %12.4f %7.1f%%\n", "total",
		sum.Microseconds(), 100*float64(sum)/float64(res.E2E))
	fmt.Fprintf(&b, "  %-32s %12.4f\n", "measured end-to-end",
		res.E2E.Microseconds())
	return b.String()
}

// StageBreakdown decomposes a single 4 KiB put end to end for the four
// control modes, attributing every picosecond of the window between "the
// origin actor starts building the WR" and "the destination actor observes
// completion" to the innermost traced pipeline stage (WR creation,
// doorbell/MMIO flight, descriptor and payload DMA fetch, wire
// serialization, completer landing, notification write, polling). The
// modes shard across the harness worker pool; output is byte-identical
// for any -parallel value.
func StageBreakdown(cp cluster.Params) string {
	modes := []struct {
		run func() breakdownResult
	}{
		{func() breakdownResult { return breakdownExtoll(cp, true) }},
		{func() breakdownResult { return breakdownExtoll(cp, false) }},
		{func() breakdownResult { return breakdownIB(cp, true) }},
		{func() breakdownResult { return breakdownIB(cp, false) }},
	}
	outs := runner.Map(cp.Parallel, modes, func(_ int, m struct {
		run func() breakdownResult
	}) string {
		return formatBreakdown(m.run())
	})
	var b strings.Builder
	fmt.Fprintf(&b, "breakdown: single %dB put, per-stage latency attribution\n", breakdownSize)
	b.WriteString("(stages are exclusive innermost-span time; rows sum exactly to the measured window)\n\n")
	b.WriteString(strings.Join(outs, "\n"))
	return b.String()
}
