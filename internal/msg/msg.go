// Package msg is a small two-sided (MPI-style send/recv) messaging layer
// over the InfiniBand Verbs substrate, with tag matching, eager buffering
// and a rendezvous protocol for large payloads.
//
// The paper's §II-B motivates one-sided put/get precisely by the overhead
// of this model: "This normally adds a lot of overhead to the
// communication, due to tag matching or data buffering." This package
// makes that overhead measurable — compare MsgVsPut in internal/bench.
//
// Protocols:
//
//   - eager (size ≤ EagerMax): the payload travels in an IB SEND into one
//     of the receiver's pre-posted eager slots; Recv matches the tag
//     (immediate value), then copies the payload out of the slot into the
//     user buffer — the buffering cost.
//   - rendezvous (size > EagerMax): the sender SENDs a 16-byte RTS
//     envelope carrying its source address; the matching receiver pulls
//     the payload with an RDMA READ straight into the user buffer and
//     returns a FIN, which completes the (synchronous) send.
//
//putget:allow boundedwait -- two-sided protocol engine: every CQ wait is matched by a posted, signaled WQE (send reaping, tag matching, rendezvous pull), so completion is a protocol invariant, not a fabric gamble
package msg

import (
	"fmt"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// EagerMax is the largest payload the eager protocol carries.
const EagerMax = 8192

// eagerSlots is the number of pre-posted receive buffers per endpoint.
const eagerSlots = 32

// Tag encoding in the IB immediate value.
const (
	tagMask = 0x00ff_ffff
	rtsBit  = 1 << 31
	finBit  = 1 << 30
)

// envelope is a matched-but-unconsumed message.
type envelope struct {
	tag  uint32
	size int
	slot int
	rts  bool
	fin  bool
}

// Endpoint is one side of a two-sided channel between the two GPUs.
type Endpoint struct {
	Node *cluster.Node
	v    *core.Verbs
	qp   *core.VQP

	eagerBase memspace.Addr // eagerSlots × EagerMax in device memory
	rtsBuf    memspace.Addr // staging for outgoing RTS envelopes
	localMR   *ibsim.MR     // covers all of local device memory
	peerMR    *ibsim.MR     // the peer's device-memory registration

	unexpected  []envelope
	outstanding int // signaled sends not yet reaped
}

// window bounds outstanding eager sends so receive slots cannot overrun
// (each send consumes one of the peer's eagerSlots; reposting happens at
// match time).
const window = eagerSlots / 2

// NewPair builds two connected endpoints over a fresh IB testbed. It runs
// the simulation to quiescence once to pre-post the receive slots; the
// returned testbed is ready for kernel launches.
func NewPair(p cluster.Params) (*Endpoint, *Endpoint, *cluster.Testbed) {
	tb := cluster.NewIBPair(p)
	va, vb := core.NewVerbs(tb.A), core.NewVerbs(tb.B)
	qa := va.CreateQP(256, eagerSlots+8, 256, true)
	qb := vb.CreateQP(256, eagerSlots+8, 256, true)
	core.ConnectVQPs(qa, qb)

	mk := func(node *cluster.Node, v *core.Verbs, qp *core.VQP) *Endpoint {
		e := &Endpoint{Node: node, v: v, qp: qp}
		e.eagerBase = node.AllocDev(eagerSlots * EagerMax)
		e.rtsBuf = node.AllocDev(64)
		e.localMR = v.RegMR(node.GPU.DevMem().Base, node.GPU.DevMem().Size)
		return e
	}
	ea := mk(tb.A, va, qa)
	eb := mk(tb.B, vb, qb)
	ea.peerMR, eb.peerMR = eb.localMR, ea.localMR

	// Pre-post every eager slot from the host before any traffic.
	for _, e := range []*Endpoint{ea, eb} {
		e := e
		tb.E.Spawn(e.Node.Name+".msg.prepost", func(p *sim.Proc) {
			for s := 0; s < eagerSlots; s++ {
				e.v.HostPostRecv(p, e.qp, ibsim.RecvWQE{
					WRID: uint64(s),
					Addr: uint64(e.slotAddr(s)),
					LKey: e.localMR.LKey,
				})
			}
		})
	}
	tb.E.Run()
	return ea, eb, tb
}

func (e *Endpoint) slotAddr(s int) memspace.Addr {
	return e.eagerBase + memspace.Addr(s*EagerMax)
}

// reapSends keeps the signaled-send window open.
func (e *Endpoint) reapSends(w *gpusim.Warp, max int) {
	for e.outstanding >= max {
		e.v.DevPollCQ(w, e.qp.SendCQ)
		e.outstanding--
	}
}

// DevSend transmits n bytes at addr under a tag from a GPU kernel. Eager
// sends buffer at the receiver and return after local completion; larger
// sends are synchronous (they return when the receiver has pulled the
// data).
func (e *Endpoint) DevSend(w *gpusim.Warp, tag uint32, addr memspace.Addr, n int) {
	if tag&^uint32(tagMask) != 0 {
		panic(fmt.Sprintf("msg: tag %#x exceeds 24 bits", tag))
	}
	if n <= EagerMax {
		e.reapSends(w, window)
		e.v.DevPostSend(w, e.qp, ibsim.WQE{
			Opcode: ibsim.OpSend, Flags: ibsim.FlagSignaled, WRID: uint64(tag),
			LAddr: uint64(addr), LKey: e.localMR.LKey, Length: n, Imm: tag,
		})
		e.outstanding++
		return
	}
	// Rendezvous: publish {srcAddr, size} and wait for the FIN.
	w.StGlobalU64(e.rtsBuf, uint64(addr))
	w.StGlobalU64(e.rtsBuf+8, uint64(n))
	e.reapSends(w, window)
	e.v.DevPostSend(w, e.qp, ibsim.WQE{
		Opcode: ibsim.OpSend, Flags: ibsim.FlagSignaled, WRID: uint64(tag),
		LAddr: uint64(e.rtsBuf), LKey: e.localMR.LKey, Length: 16, Imm: tag | rtsBit,
	})
	e.outstanding++
	// The FIN arrives as a small control message with the finBit set.
	e.recvMatch(w, tag, 0, 0, true)
}

// DevRecv receives a message with the given tag into addr (capacity n)
// and returns the payload size. Unexpected messages (other tags) queue up
// and are matched by later calls — the tag-matching overhead of §II-B.
func (e *Endpoint) DevRecv(w *gpusim.Warp, tag uint32, addr memspace.Addr, n int) int {
	return e.recvMatch(w, tag, addr, n, false)
}

// matches reports whether an envelope satisfies a receive: application
// receives (wantFin=false) match both eager and RTS messages with the
// tag; FIN waits match only the FIN control message.
func (env envelope) matches(tag uint32, wantFin bool) bool {
	return env.tag == tag && env.fin == wantFin
}

// recvMatch finds a message by tag, servicing the eager copy or the
// rendezvous pull.
func (e *Endpoint) recvMatch(w *gpusim.Warp, tag uint32, addr memspace.Addr, n int, wantFin bool) int {
	for {
		// Scan the unexpected queue first (linear tag matching, the real
		// cost MPI implementations pay).
		for i, env := range e.unexpected {
			w.Exec(12) // compare tag, predicate, list walk
			if env.matches(tag, wantFin) {
				e.unexpected = append(e.unexpected[:i], e.unexpected[i+1:]...)
				if wantFin {
					e.repost(w, env.slot)
					return 0
				}
				return e.consume(w, env, addr, n)
			}
		}
		// Poll the receive CQ for the next arrival.
		cqe := e.v.DevPollCQ(w, e.qp.RecvCQ)
		w.Exec(20) // decode envelope, classify protocol bits
		env := envelope{
			tag:  cqe.Imm & tagMask,
			size: cqe.ByteLen,
			slot: int(cqe.WRID),
			rts:  cqe.Imm&rtsBit != 0,
			fin:  cqe.Imm&finBit != 0,
		}
		if env.matches(tag, wantFin) {
			if wantFin {
				e.repost(w, env.slot)
				return 0
			}
			return e.consume(w, env, addr, n)
		}
		e.unexpected = append(e.unexpected, env)
		w.Exec(8)
	}
}

// consume finishes a matched message: eager copy-out or rendezvous pull.
func (e *Endpoint) consume(w *gpusim.Warp, env envelope, addr memspace.Addr, n int) int {
	if env.rts {
		// Rendezvous: read {srcAddr, size} from the slot, pull the
		// payload with an RDMA READ, then FIN the sender.
		src := w.LdGlobalU64(e.slotAddr(env.slot))
		size := int(w.LdGlobalU64(e.slotAddr(env.slot) + 8))
		if size > n {
			panic(fmt.Sprintf("msg: rendezvous payload %d exceeds receive buffer %d", size, n))
		}
		e.repost(w, env.slot)
		e.reapSends(w, window)
		e.v.DevPostSend(w, e.qp, ibsim.WQE{
			Opcode: ibsim.OpRDMARead, Flags: ibsim.FlagSignaled, WRID: 0x4ead,
			LAddr: uint64(addr), LKey: e.localMR.LKey, Length: size,
			RAddr: src, RKey: e.peerMR.RKey,
		})
		e.outstanding++
		// The read completion means the data is in place.
		for {
			cqe := e.v.DevPollCQ(w, e.qp.SendCQ)
			e.outstanding--
			if cqe.Opcode == ibsim.OpRDMARead {
				break
			}
		}
		// FIN releases the synchronous sender.
		e.reapSends(w, window)
		e.v.DevPostSend(w, e.qp, ibsim.WQE{
			Opcode: ibsim.OpSend, Flags: ibsim.FlagSignaled, WRID: 0xf1,
			LAddr: uint64(e.rtsBuf), LKey: e.localMR.LKey, Length: 8,
			Imm: env.tag | finBit,
		})
		e.outstanding++
		return size
	}
	// Eager: copy the payload out of the slot — §II-B's buffering cost.
	if env.size > n {
		panic(fmt.Sprintf("msg: eager payload %d exceeds receive buffer %d", env.size, n))
	}
	e.copyDev(w, addr, e.slotAddr(env.slot), env.size)
	e.repost(w, env.slot)
	return env.size
}

// copyDev is a coalesced device-memory copy loop.
func (e *Endpoint) copyDev(w *gpusim.Warp, dst, src memspace.Addr, n int) {
	per := 8 * w.Lanes
	buf := make([]byte, per)
	for off := 0; off < n; off += per {
		m := n - off
		if m > per {
			m = per
		}
		w.LdGlobalBytes(src+memspace.Addr(off), buf[:m])
		w.FillGlobal(dst+memspace.Addr(off), buf[:m])
	}
}

// repost returns an eager slot to the hardware.
func (e *Endpoint) repost(w *gpusim.Warp, slot int) {
	e.v.DevPostRecv(w, e.qp, ibsim.RecvWQE{
		WRID: uint64(slot),
		Addr: uint64(e.slotAddr(slot)),
		LKey: e.localMR.LKey,
	})
}
