package msg

import (
	"bytes"
	"testing"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

func smallParams() cluster.Params {
	p := cluster.Default()
	p.GPUDevMemSize = 64 << 20
	p.HostRAMSize = 96 << 20
	return p
}

// runPair launches one kernel per endpoint and asserts completion.
func runPair(t *testing.T, tb *cluster.Testbed, a, b func(w *gpusim.Warp)) {
	t.Helper()
	da := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: 32}, a)
	db := tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: 32}, b)
	tb.E.Run()
	if !da.Done() || !db.Done() {
		t.Fatal("message kernels deadlocked")
	}
}

func TestEagerSendRecv(t *testing.T) {
	ea, eb, tb := NewPair(smallParams())
	src := tb.A.AllocDev(4096)
	dst := tb.B.AllocDev(4096)
	payload := make([]byte, 777)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if err := tb.A.GPU.HostWrite(src, payload); err != nil {
		t.Fatal(err)
	}
	var gotN int
	runPair(t, tb,
		func(w *gpusim.Warp) { ea.DevSend(w, 42, src, len(payload)) },
		func(w *gpusim.Warp) { gotN = eb.DevRecv(w, 42, dst, 4096) },
	)
	if gotN != len(payload) {
		t.Fatalf("recv size = %d, want %d", gotN, len(payload))
	}
	got := make([]byte, len(payload))
	if err := tb.B.GPU.HostRead(dst, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("eager payload corrupted")
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	ea, eb, tb := NewPair(smallParams())
	const size = 256 << 10 // well above EagerMax
	src := tb.A.AllocDev(size)
	dst := tb.B.AllocDev(size)
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i*7 + 1)
	}
	if err := tb.A.GPU.HostWrite(src, payload); err != nil {
		t.Fatal(err)
	}
	var sendDone, recvDone sim.Time
	runPair(t, tb,
		func(w *gpusim.Warp) {
			ea.DevSend(w, 9, src, size)
			sendDone = w.Now()
		},
		func(w *gpusim.Warp) {
			eb.DevRecv(w, 9, dst, size)
			recvDone = w.Now()
		},
	)
	got := make([]byte, size)
	if err := tb.B.GPU.HostRead(dst, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("rendezvous payload corrupted")
	}
	// Synchronous semantics: the sender returns only after the receiver
	// has pulled the data (FIN round trip), so sendDone ≥ ~recvDone.
	if sendDone < recvDone-sim.Time(20*sim.Microsecond) {
		t.Fatalf("rendezvous send returned at %v, long before recv at %v", sendDone, recvDone)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	// A sends tags 1,2,3; B receives 3,1,2. The unexpected queue must
	// buffer and deliver each payload to the right receive.
	ea, eb, tb := NewPair(smallParams())
	srcs := make([]memspace.Addr, 3)
	dsts := make([]memspace.Addr, 3)
	for i := range srcs {
		srcs[i] = tb.A.AllocDev(256)
		dsts[i] = tb.B.AllocDev(256)
		buf := make([]byte, 100)
		for j := range buf {
			buf[j] = byte(10*(i+1) + j%10)
		}
		if err := tb.A.GPU.HostWrite(srcs[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	order := []uint32{3, 1, 2}
	runPair(t, tb,
		func(w *gpusim.Warp) {
			for i := 0; i < 3; i++ {
				ea.DevSend(w, uint32(i+1), srcs[i], 100)
			}
		},
		func(w *gpusim.Warp) {
			for _, tag := range order {
				eb.DevRecv(w, tag, dsts[tag-1], 256)
			}
		},
	)
	for i := 0; i < 3; i++ {
		got := make([]byte, 100)
		if err := tb.B.GPU.HostRead(dsts[i], got); err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != byte(10*(i+1)+j%10) {
				t.Fatalf("tag %d delivered wrong payload (byte %d = %d)", i+1, j, got[j])
			}
		}
	}
}

func TestManyEagerMessagesRespectWindow(t *testing.T) {
	// More messages than eager slots: the send window plus reposting must
	// keep the channel flowing without RNR drops.
	ea, eb, tb := NewPair(smallParams())
	src := tb.A.AllocDev(256)
	dst := tb.B.AllocDev(256)
	if err := tb.A.GPU.HostWrite(src, bytes.Repeat([]byte{0xa5}, 64)); err != nil {
		t.Fatal(err)
	}
	const N = 200 // ≫ eagerSlots
	runPair(t, tb,
		func(w *gpusim.Warp) {
			for i := 0; i < N; i++ {
				ea.DevSend(w, 7, src, 64)
			}
		},
		func(w *gpusim.Warp) {
			for i := 0; i < N; i++ {
				eb.DevRecv(w, 7, dst, 256)
			}
		},
	)
	if drops := tb.B.IB.Stats().RNRDrops; drops != 0 {
		t.Fatalf("%d RNR drops — eager flow control broken", drops)
	}
}

func TestBidirectionalExchange(t *testing.T) {
	ea, eb, tb := NewPair(smallParams())
	aSrc, aDst := tb.A.AllocDev(1024), tb.A.AllocDev(1024)
	bSrc, bDst := tb.B.AllocDev(1024), tb.B.AllocDev(1024)
	if err := tb.A.GPU.HostWrite(aSrc, bytes.Repeat([]byte{1}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := tb.B.GPU.HostWrite(bSrc, bytes.Repeat([]byte{2}, 512)); err != nil {
		t.Fatal(err)
	}
	runPair(t, tb,
		func(w *gpusim.Warp) {
			ea.DevSend(w, 1, aSrc, 512)
			ea.DevRecv(w, 2, aDst, 1024)
		},
		func(w *gpusim.Warp) {
			eb.DevSend(w, 2, bSrc, 512)
			eb.DevRecv(w, 1, bDst, 1024)
		},
	)
	aGot := make([]byte, 512)
	bGot := make([]byte, 512)
	if err := tb.A.GPU.HostRead(aDst, aGot); err != nil {
		t.Fatal(err)
	}
	if err := tb.B.GPU.HostRead(bDst, bGot); err != nil {
		t.Fatal(err)
	}
	if aGot[0] != 2 || bGot[0] != 1 {
		t.Fatalf("cross payloads wrong: %d %d", aGot[0], bGot[0])
	}
}

func TestOversizeTagRejected(t *testing.T) {
	ea, _, tb := NewPair(smallParams())
	src := tb.A.AllocDev(64)
	panicked := false
	done := tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ea.DevSend(w, 0x0100_0000, src, 8)
	})
	tb.E.Run()
	_ = done
	if !panicked {
		t.Fatal("25-bit tag accepted")
	}
}
