package cluster

import (
	"fmt"

	"putget/internal/extoll"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
	"putget/internal/topo"
)

// Fabric selects the NIC family an N-node cluster is built from.
type Fabric int

const (
	FabricExtoll Fabric = iota
	FabricIB
)

func (f Fabric) String() string {
	if f == FabricIB {
		return "ib"
	}
	return "extoll"
}

// Cluster is an N-node testbed joined by a switched topology instead of
// a single cable. Only the shared fabric (the topo.Net switch graph) is
// built up front; every node — the full pair-node anatomy of CPU, GPU,
// PCIe fabric and one NIC — is materialized lazily on its first Node(i)
// touch, so a 1024-node cluster whose job spans 64 ranks pays the
// construction cost of 64 nodes. Destinations are resolved from
// sender-local routing keys (EXTOLL origin ports, IB source QPNs) bound
// at connection-setup time via BindExtoll/BindIB — transports do this
// when they connect two nodes.
type Cluster struct {
	E      *sim.Engine
	Params Params
	Fab    Fabric
	Spec   topo.Spec

	// Exactly one of these is non-nil, matching Fab.
	ExtNet *topo.Net[extoll.Packet]
	IBNet  *topo.Net[ibsim.Packet]

	n     int
	nodes []*Node // nodes[i] == nil until first Node(i) touch
	built int
	index map[*Node]int

	extNotifBase memspace.Addr // EXTOLL notification-ring base, fixed at cluster build
}

// NewCluster builds an n-node EXTOLL cluster on the given topology.
// Panics if p fails Validate or sets knobs a switched fabric does not
// support (see NewClusterOn).
func NewCluster(spec topo.Spec, n int, p Params) *Cluster {
	return NewClusterOn(FabricExtoll, spec, n, p)
}

// NewClusterOn builds an n-node cluster of the given NIC family. The
// switch graph is constructed eagerly (it is shared state every node
// attaches to); per-node state is deferred to Node(i).
//
// FaultInject must be off: EXTOLL's link-level go-back-N reliability is
// a single-peer protocol (link ACK/NAK packets carry no node identity),
// so lossy multi-node EXTOLL would be wrong rather than degraded; use
// topo.Spec.DownLinks/DownNodes for whole-element failures, which the
// routing layer models fabric-manager-style. WireDepthCap is likewise a
// point-to-point knob with no per-cable equivalent here yet.
func NewClusterOn(fab Fabric, spec topo.Spec, n int, p Params) *Cluster {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.FaultInject {
		panic("cluster: FaultInject is pair-only (EXTOLL link-level reliability is single-peer); use topo.Spec.DownLinks/DownNodes for cluster faults")
	}
	if p.WireDepthCap > 0 {
		panic("cluster: WireDepthCap is pair-only; switched cables are uncapped")
	}
	if n < 2 {
		panic("cluster: need at least 2 nodes")
	}
	e := sim.NewEngine()
	c := &Cluster{E: e, Params: p, Fab: fab, Spec: spec,
		n: n, nodes: make([]*Node, n), index: make(map[*Node]int, n)}
	switch fab {
	case FabricExtoll:
		c.extNotifBase = NotifArea
		if p.ExtNotifInDevMem {
			c.extNotifBase = DevMemBase + memspace.Addr(p.GPUDevMemSize-(32<<20))
		}
		c.ExtNet = topo.NewNet[extoll.Packet](e, spec, n,
			topo.LinkConfig{BytesPerSecond: p.ExtWireBW, Latency: p.ExtWireLat},
			"rma.net",
			func(pkt extoll.Packet) int { return pkt.OriginPort })
	case FabricIB:
		c.IBNet = topo.NewNet[ibsim.Packet](e, spec, n,
			topo.LinkConfig{BytesPerSecond: p.IBWireBW, Latency: p.IBWireLat},
			"hca.net",
			func(pkt ibsim.Packet) int { return int(pkt.SrcQPN) })
	default:
		panic(fmt.Sprintf("cluster: unknown Fabric %d", int(fab)))
	}
	return c
}

// N returns the cluster's node count (materialized or not).
func (c *Cluster) N() int { return c.n }

// Built reports how many nodes have been materialized so far — the
// number a lazy-build job actually paid for.
func (c *Cluster) Built() int { return c.built }

// Node returns node i, materializing it (CPU, GPU, PCIe fabric, NIC,
// fabric attachment) on first touch. Repeated calls return the same
// node. Panics on out-of-range indices.
func (c *Cluster) Node(i int) *Node {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("cluster: node %d out of range (n=%d)", i, c.n))
	}
	if nd := c.nodes[i]; nd != nil {
		return nd
	}
	nd := newNode(c.E, fmt.Sprintf("n%d", i), c.Params)
	p := c.Params
	switch c.Fab {
	case FabricExtoll:
		nd.Extoll = extoll.New(c.E, nd.Fabric, extoll.Config{
			Name:          nd.Name + ".rma",
			ClockHz:       p.ExtClock,
			DatapathBytes: p.ExtDatapath,
			ReqCycles:     p.ExtReqCycles,
			CompCycles:    p.ExtCompCycles,
			RespCycles:    p.ExtRespCycles,
			NumPorts:      p.ExtPorts,
			BARBase:       ExtollBAR,
			NotifBase:     c.extNotifBase,
			NotifEntries:  p.ExtNotifEntries,
			DMAContexts:   p.ExtDMACtx,
			PCIe: pcie.EndpointConfig{
				EgressRate: p.ExtEgress, OneWay: p.ExtOneWay, ReadLatency: p.ExtReadLat,
			},
		})
		port := c.ExtNet.Port(i)
		nd.Extoll.AttachWire(port, port)
	case FabricIB:
		nd.IB = ibsim.New(c.E, nd.Fabric, ibsim.Config{
			Name:          nd.Name + ".hca",
			BARBase:       IBBAR,
			WQEFetchBatch: p.IBFetchBatch,
			ProcessTime:   p.IBProc,
			RxProcessTime: p.IBRxProc,
			DMAContexts:   p.IBDMACtx,
			PCIe: pcie.EndpointConfig{
				EgressRate: p.IBEgress, OneWay: p.IBOneWay, ReadLatency: p.IBReadLat,
			},
		})
		port := c.IBNet.Port(i)
		nd.IB.AttachWire(port, port)
	}
	c.nodes[i] = nd
	c.index[nd] = i
	c.built++
	return nd
}

// IndexOf returns a node's rank in the cluster; panics on foreign nodes.
func (c *Cluster) IndexOf(n *Node) int {
	i, ok := c.index[n]
	if !ok {
		panic("cluster: node is not part of this cluster")
	}
	return i
}

// BindExtoll routes packets originating from src's EXTOLL port to dst.
// Every outbound EXTOLL packet stamps its origin port, which is local to
// the sender, so (node, origin port) identifies the connection.
func (c *Cluster) BindExtoll(src *Node, port int, dst *Node) {
	c.ExtNet.Bind(c.IndexOf(src), port, c.IndexOf(dst))
}

// BindIB routes packets sent from src's QPN to dst. IB packets stamp
// the sender-local source QPN on every packet, requests and responses
// alike, so (node, SrcQPN) identifies the connection.
func (c *Cluster) BindIB(src *Node, qpn uint32, dst *Node) {
	c.IBNet.Bind(c.IndexOf(src), int(qpn), c.IndexOf(dst))
}

// Shutdown terminates the cluster's parked processes (NIC engines)
// so their goroutines exit; call it when done.
func (c *Cluster) Shutdown() { c.E.Shutdown() }
