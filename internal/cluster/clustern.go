package cluster

import (
	"fmt"

	"putget/internal/extoll"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
	"putget/internal/topo"
)

// Fabric selects the NIC family an N-node cluster is built from.
type Fabric int

const (
	FabricExtoll Fabric = iota
	FabricIB
)

func (f Fabric) String() string {
	if f == FabricIB {
		return "ib"
	}
	return "extoll"
}

// Cluster is an N-node testbed joined by a switched topology instead of
// a single cable: every node keeps the full pair-node anatomy (CPU, GPU,
// PCIe fabric, one NIC), and the NICs all attach to ports of one
// topo.Net carrying the fabric's packet type. Destinations are resolved
// from sender-local routing keys (EXTOLL origin ports, IB source QPNs)
// bound at connection-setup time via BindExtoll/BindIB — transports do
// this when they connect two nodes.
type Cluster struct {
	E      *sim.Engine
	Nodes  []*Node
	Params Params
	Fab    Fabric
	Spec   topo.Spec

	// Exactly one of these is non-nil, matching Fab.
	ExtNet *topo.Net[extoll.Packet]
	IBNet  *topo.Net[ibsim.Packet]

	index map[*Node]int
}

// NewCluster builds an n-node EXTOLL cluster on the given topology.
// Panics if p fails Validate or sets knobs a switched fabric does not
// support (see NewClusterOn).
func NewCluster(spec topo.Spec, n int, p Params) *Cluster {
	return NewClusterOn(FabricExtoll, spec, n, p)
}

// NewClusterOn builds an n-node cluster of the given NIC family.
//
// FaultInject must be off: EXTOLL's link-level go-back-N reliability is
// a single-peer protocol (link ACK/NAK packets carry no node identity),
// so lossy multi-node EXTOLL would be wrong rather than degraded; use
// topo.Spec.DownLinks/DownNodes for whole-element failures, which the
// routing layer models fabric-manager-style. WireDepthCap is likewise a
// point-to-point knob with no per-cable equivalent here yet.
func NewClusterOn(fab Fabric, spec topo.Spec, n int, p Params) *Cluster {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.FaultInject {
		panic("cluster: FaultInject is pair-only (EXTOLL link-level reliability is single-peer); use topo.Spec.DownLinks/DownNodes for cluster faults")
	}
	if p.WireDepthCap > 0 {
		panic("cluster: WireDepthCap is pair-only; switched cables are uncapped")
	}
	if n < 2 {
		panic("cluster: need at least 2 nodes")
	}
	e := sim.NewEngine()
	c := &Cluster{E: e, Params: p, Fab: fab, Spec: spec, index: make(map[*Node]int, n)}
	for i := 0; i < n; i++ {
		nd := newNode(e, fmt.Sprintf("n%d", i), p)
		c.Nodes = append(c.Nodes, nd)
		c.index[nd] = i
	}
	switch fab {
	case FabricExtoll:
		notifBase := NotifArea
		if p.ExtNotifInDevMem {
			notifBase = DevMemBase + memspace.Addr(p.GPUDevMemSize-(32<<20))
		}
		c.ExtNet = topo.NewNet[extoll.Packet](e, spec, n,
			topo.LinkConfig{BytesPerSecond: p.ExtWireBW, Latency: p.ExtWireLat},
			"rma.net",
			func(pkt extoll.Packet) int { return pkt.OriginPort })
		for i, nd := range c.Nodes {
			nd.Extoll = extoll.New(e, nd.Fabric, extoll.Config{
				Name:          nd.Name + ".rma",
				ClockHz:       p.ExtClock,
				DatapathBytes: p.ExtDatapath,
				ReqCycles:     p.ExtReqCycles,
				CompCycles:    p.ExtCompCycles,
				RespCycles:    p.ExtRespCycles,
				NumPorts:      p.ExtPorts,
				BARBase:       ExtollBAR,
				NotifBase:     notifBase,
				NotifEntries:  p.ExtNotifEntries,
				DMAContexts:   p.ExtDMACtx,
				PCIe: pcie.EndpointConfig{
					EgressRate: p.ExtEgress, OneWay: p.ExtOneWay, ReadLatency: p.ExtReadLat,
				},
			})
			port := c.ExtNet.Port(i)
			nd.Extoll.AttachWire(port, port)
		}
	case FabricIB:
		c.IBNet = topo.NewNet[ibsim.Packet](e, spec, n,
			topo.LinkConfig{BytesPerSecond: p.IBWireBW, Latency: p.IBWireLat},
			"hca.net",
			func(pkt ibsim.Packet) int { return int(pkt.SrcQPN) })
		for i, nd := range c.Nodes {
			nd.IB = ibsim.New(e, nd.Fabric, ibsim.Config{
				Name:          nd.Name + ".hca",
				BARBase:       IBBAR,
				WQEFetchBatch: p.IBFetchBatch,
				ProcessTime:   p.IBProc,
				RxProcessTime: p.IBRxProc,
				DMAContexts:   p.IBDMACtx,
				PCIe: pcie.EndpointConfig{
					EgressRate: p.IBEgress, OneWay: p.IBOneWay, ReadLatency: p.IBReadLat,
				},
			})
			port := c.IBNet.Port(i)
			nd.IB.AttachWire(port, port)
		}
	default:
		panic(fmt.Sprintf("cluster: unknown Fabric %d", int(fab)))
	}
	return c
}

// IndexOf returns a node's rank in the cluster; panics on foreign nodes.
func (c *Cluster) IndexOf(n *Node) int {
	i, ok := c.index[n]
	if !ok {
		panic("cluster: node is not part of this cluster")
	}
	return i
}

// BindExtoll routes packets originating from src's EXTOLL port to dst.
// Every outbound EXTOLL packet stamps its origin port, which is local to
// the sender, so (node, origin port) identifies the connection.
func (c *Cluster) BindExtoll(src *Node, port int, dst *Node) {
	c.ExtNet.Bind(c.IndexOf(src), port, c.IndexOf(dst))
}

// BindIB routes packets sent from src's QPN to dst. IB packets stamp
// the sender-local source QPN on every packet, requests and responses
// alike, so (node, SrcQPN) identifies the connection.
func (c *Cluster) BindIB(src *Node, qpn uint32, dst *Node) {
	c.IBNet.Bind(c.IndexOf(src), int(qpn), c.IndexOf(dst))
}

// Shutdown terminates the cluster's parked processes (NIC engines)
// so their goroutines exit; call it when done.
func (c *Cluster) Shutdown() { c.E.Shutdown() }
