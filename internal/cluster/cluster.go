package cluster

import (
	"fmt"

	"putget/internal/extoll"
	"putget/internal/faults"
	"putget/internal/gpusim"
	"putget/internal/hostsim"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
	"putget/internal/wire"
)

// Node is one machine: CPU + host RAM + GPU + (at most one) NIC on a
// private PCIe fabric.
type Node struct {
	Name    string
	E       *sim.Engine
	Space   *memspace.Space
	Fabric  *pcie.Fabric
	CPU     *hostsim.CPU
	GPU     *gpusim.GPU
	HostRAM memspace.Region

	Extoll *extoll.NIC // nil on IB testbeds
	IB     *ibsim.HCA  // nil on EXTOLL testbeds

	hostBrk memspace.Addr // bump allocator for host RAM
	devBrk  memspace.Addr // bump allocator for device memory
}

// p2pReadRate builds the GPU's inbound read-service curve.
func p2pReadRate(p Params) func(total int) float64 {
	return func(total int) float64 {
		if !p.P2PCollapseOff && total > p.P2PCollapseBytes {
			return p.P2PReadLarge
		}
		return p.P2PReadSmall
	}
}

// newNode builds one node without a NIC.
func newNode(e *sim.Engine, name string, p Params) *Node {
	space := memspace.NewSpace()
	host := space.MustMap(HostRAMBase, memspace.NewRAM(name+".host", p.HostRAMSize))
	f := pcie.NewFabric(e, space)
	hostEP := f.AddEndpoint(name+".hostmem", pcie.EndpointConfig{
		EgressRate: p.HostEgress, OneWay: p.HostOneWay, ReadLatency: p.HostReadLat,
	})
	f.ClaimRAM(hostEP, host)
	cpu := hostsim.New(e, f, hostsim.Config{
		Name:          name + ".cpu",
		MemLatency:    p.HostMemLat,
		MMIOWriteCost: p.CPUMMIO,
		WRGenCost:     p.CPUWRGen,
		HostRAM:       host,
		PCIe: pcie.EndpointConfig{
			EgressRate: p.CPUEgress, OneWay: p.CPUOneWay, ReadLatency: 100 * sim.Nanosecond,
		},
	})
	hostEP.OnInboundWrite = func(addr memspace.Addr, n int) { cpu.NotifyInboundWrite() }
	gpu := gpusim.New(e, f, gpusim.Config{
		Name:           name + ".gpu",
		SMs:            p.GPUSMs,
		IssueCost:      p.GPUIssue,
		IssueShare:     p.GPUIssueShare,
		L2HitLatency:   p.GPUL2Hit,
		DevMemLatency:  p.GPUDevMemLat,
		PCIeOpOverhead: p.GPUPCIeOp,
		PCIeSlots:      p.GPUPCIeSlots,
		PollLoopStall:  p.GPUPollStall,
		LaunchOverhead: p.GPULaunch,
		L2Bytes:        p.GPUL2Bytes,
		L2Assoc:        p.GPUL2Assoc,
		L2Sector:       p.GPUL2Sector,
		DevMemBase:     DevMemBase,
		DevMemSize:     p.GPUDevMemSize,
		PCIe: pcie.EndpointConfig{
			EgressRate:  p.GPUEgress,
			OneWay:      p.GPUOneWay,
			ReadLatency: p.GPUReadLat,
			ReadRate:    p2pReadRate(p),
		},
	})
	return &Node{
		Name: name, E: e, Space: space, Fabric: f,
		CPU: cpu, GPU: gpu, HostRAM: host,
		// Keep low host RAM for queues/flags; the notification area and a
		// generous slice above it are reserved.
		hostBrk: NotifArea + 0x0100_0000,
		devBrk:  DevMemBase,
	}
}

// AllocHost carves n bytes (64-byte aligned) out of host RAM.
func (n *Node) AllocHost(size uint64) memspace.Addr {
	a := (n.hostBrk + 63) &^ 63
	n.hostBrk = a + memspace.Addr(size)
	if n.hostBrk > n.HostRAM.End() {
		panic(fmt.Sprintf("cluster: %s: host RAM exhausted", n.Name))
	}
	return a
}

// AllocDev carves n bytes (256-byte aligned) out of GPU device memory.
func (n *Node) AllocDev(size uint64) memspace.Addr {
	a := (n.devBrk + 255) &^ 255
	n.devBrk = a + memspace.Addr(size)
	if uint64(n.devBrk) > uint64(DevMemBase)+n.GPU.DevMem().Size {
		panic(fmt.Sprintf("cluster: %s: device memory exhausted", n.Name))
	}
	return a
}

// Testbed is a two-node cluster joined by one cable.
type Testbed struct {
	E      *sim.Engine
	A, B   *Node
	Params Params

	// FaultsAB / FaultsBA guard the two wire directions when
	// Params.FaultInject is set; nil otherwise.
	FaultsAB *faults.Injector
	FaultsBA *faults.Injector
}

// Shutdown terminates the testbed's parked processes (NIC engines, stream
// runners) so their goroutines exit; call it when done with the testbed.
func (t *Testbed) Shutdown() { t.E.Shutdown() }

// wireFaultPlan scripts one wire direction's injector. The salt separates
// the two directions' PRNG streams so they draw independent verdicts from
// the same master seed.
func wireFaultPlan(p Params, salt uint64) faults.Plan {
	plan := faults.Plan{Seed: faults.DeriveSeed(p.FaultSeed, salt)}
	if p.FaultDropRate > 0 || p.FaultCorruptRate > 0 || p.FaultDelayMax > 0 {
		plan.Rules = []faults.Rule{{
			DropRate:    p.FaultDropRate,
			CorruptRate: p.FaultCorruptRate,
			DelayMax:    p.FaultDelayMax,
		}}
	}
	if p.FaultBlackoutEnd > p.FaultBlackoutStart {
		plan.Blackouts = []faults.Window{{Start: p.FaultBlackoutStart, End: p.FaultBlackoutEnd}}
	}
	return plan
}

// attachPCIeFaults wires node-local PCIe replay injection (salts 3 and 4).
func attachPCIeFaults(p Params, a, b *Node) {
	if p.FaultPCIeReplayRate <= 0 {
		return
	}
	penalty := p.FaultPCIeReplayPenalty
	if penalty == 0 {
		penalty = 500 * sim.Nanosecond
	}
	for i, n := range []*Node{a, b} {
		n.Fabric.SetFaults(faults.NewInjector(faults.Plan{
			Seed:  faults.DeriveSeed(p.FaultSeed, uint64(3+i)),
			Rules: []faults.Rule{{DropRate: p.FaultPCIeReplayRate}},
		}), penalty)
	}
}

// NewExtollPair builds the EXTOLL testbed: two nodes with Galibier NICs.
// Panics if p fails Validate.
func NewExtollPair(p Params) *Testbed {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	e := sim.NewEngine()
	a := newNode(e, "a", p)
	b := newNode(e, "b", p)
	notifBase := NotifArea
	if p.ExtNotifInDevMem {
		// Carve the rings out of the top of device memory (the heap
		// allocator grows from the bottom).
		notifBase = DevMemBase + memspace.Addr(p.GPUDevMemSize-(32<<20))
	}
	var extRel *extoll.RelConfig
	if p.FaultInject {
		extRel = p.ExtRel
		if extRel == nil {
			extRel = extoll.DefaultRelConfig()
		}
	}
	for _, n := range []*Node{a, b} {
		n.Extoll = extoll.New(e, n.Fabric, extoll.Config{
			Name:          n.Name + ".rma",
			Rel:           extRel,
			ClockHz:       p.ExtClock,
			DatapathBytes: p.ExtDatapath,
			ReqCycles:     p.ExtReqCycles,
			CompCycles:    p.ExtCompCycles,
			RespCycles:    p.ExtRespCycles,
			NumPorts:      p.ExtPorts,
			BARBase:       ExtollBAR,
			NotifBase:     notifBase,
			NotifEntries:  p.ExtNotifEntries,
			DMAContexts:   p.ExtDMACtx,
			PCIe: pcie.EndpointConfig{
				EgressRate: p.ExtEgress, OneWay: p.ExtOneWay, ReadLatency: p.ExtReadLat,
			},
		})
	}
	ab, ba := wire.NewDuplex[extoll.Packet](e, p.ExtWireBW, p.ExtWireLat)
	ab.SetName("a.rma.wire")
	ba.SetName("b.rma.wire")
	tb := &Testbed{E: e, A: a, B: b, Params: p}
	if p.WireDepthCap > 0 {
		ab.SetDepthCap(p.WireDepthCap)
		ba.SetDepthCap(p.WireDepthCap)
	}
	if p.FaultInject {
		poison := func(pkt extoll.Packet) extoll.Packet { pkt.Poisoned = true; return pkt }
		tb.FaultsAB = faults.NewInjector(wireFaultPlan(p, 1))
		tb.FaultsBA = faults.NewInjector(wireFaultPlan(p, 2))
		ab.SetFaults(tb.FaultsAB, poison)
		ba.SetFaults(tb.FaultsBA, poison)
		attachPCIeFaults(p, a, b)
	}
	a.Extoll.AttachWire(ab, ba)
	b.Extoll.AttachWire(ba, ab)
	return tb
}

// NewIBPair builds the InfiniBand testbed: two nodes with FDR HCAs.
// Panics if p fails Validate.
func NewIBPair(p Params) *Testbed {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	e := sim.NewEngine()
	a := newNode(e, "a", p)
	b := newNode(e, "b", p)
	var ibRel *ibsim.RelConfig
	if p.FaultInject {
		ibRel = p.IBRel
		if ibRel == nil {
			ibRel = ibsim.DefaultRelConfig()
		}
	}
	for _, n := range []*Node{a, b} {
		n.IB = ibsim.New(e, n.Fabric, ibsim.Config{
			Name:          n.Name + ".hca",
			Rel:           ibRel,
			BARBase:       IBBAR,
			WQEFetchBatch: p.IBFetchBatch,
			ProcessTime:   p.IBProc,
			RxProcessTime: p.IBRxProc,
			DMAContexts:   p.IBDMACtx,
			PCIe: pcie.EndpointConfig{
				EgressRate: p.IBEgress, OneWay: p.IBOneWay, ReadLatency: p.IBReadLat,
			},
		})
	}
	ab, ba := wire.NewDuplex[ibsim.Packet](e, p.IBWireBW, p.IBWireLat)
	ab.SetName("a.hca.wire")
	ba.SetName("b.hca.wire")
	tb := &Testbed{E: e, A: a, B: b, Params: p}
	if p.WireDepthCap > 0 {
		ab.SetDepthCap(p.WireDepthCap)
		ba.SetDepthCap(p.WireDepthCap)
	}
	if p.FaultInject {
		poison := func(pkt ibsim.Packet) ibsim.Packet { pkt.Poisoned = true; return pkt }
		tb.FaultsAB = faults.NewInjector(wireFaultPlan(p, 1))
		tb.FaultsBA = faults.NewInjector(wireFaultPlan(p, 2))
		ab.SetFaults(tb.FaultsAB, poison)
		ba.SetFaults(tb.FaultsBA, poison)
		attachPCIeFaults(p, a, b)
	}
	a.IB.AttachWire(ab, ba)
	b.IB.AttachWire(ba, ab)
	return tb
}
