// Package cluster composes the substrates into the paper's testbeds: two
// nodes, each with a host CPU, host RAM, a Kepler-class GPU and either an
// EXTOLL Galibier NIC or an InfiniBand FDR HCA, joined by a cable.
package cluster

import (
	"putget/internal/extoll"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// Address map per node. Each node has its own private physical address
// space (the two fabrics only meet through the NICs).
const (
	HostRAMBase memspace.Addr = 0x0000_0000
	DevMemBase  memspace.Addr = 0x10_0000_0000
	ExtollBAR   memspace.Addr = 0x20_0000_0000
	IBBAR       memspace.Addr = 0x21_0000_0000

	// NotifArea is carved out of host RAM for EXTOLL's kernel-allocated
	// notification rings.
	NotifArea memspace.Addr = 0x0100_0000
)

// Params collects every tunable of the testbed. Defaults (see Default)
// are calibrated so the reproduced figures match the paper's shapes; all
// experiments read them from here, so sensitivity studies are one field
// away.
type Params struct {
	// ---- GPU microarchitecture ----
	GPUSMs int
	// GPUIssue is the effective per-instruction time of a dependent
	// single-thread instruction stream (the paper's descriptor-generation
	// code path is exactly that).
	GPUIssue      sim.Duration
	GPUL2Hit      sim.Duration
	GPUDevMemLat  sim.Duration
	GPUPCIeOp     sim.Duration
	GPUPCIeSlots  int
	GPUPollStall  sim.Duration
	GPUIssueShare int
	GPULaunch     sim.Duration
	GPUL2Bytes    int
	GPUL2Assoc    int
	GPUL2Sector   int
	GPUDevMemSize uint64
	GPUEgress     float64
	GPUOneWay     sim.Duration
	GPUReadLat    sim.Duration
	// P2P read service: the documented PCIe peer-to-peer anomaly. Streams
	// up to P2PCollapseBytes read at P2PReadSmall; larger streams collapse
	// to P2PReadLarge ([14],[15] in the paper).
	P2PReadSmall     float64
	P2PReadLarge     float64
	P2PCollapseBytes int
	// P2PCollapseOff disables the anomaly (ablation).
	P2PCollapseOff bool

	// ---- host ----
	HostRAMSize uint64
	HostMemLat  sim.Duration
	CPUMMIO     sim.Duration
	CPUWRGen    sim.Duration
	HostEgress  float64
	HostOneWay  sim.Duration
	HostReadLat sim.Duration
	CPUEgress   float64
	CPUOneWay   sim.Duration

	// ---- EXTOLL ----
	ExtClock        float64
	ExtDatapath     int
	ExtReqCycles    int
	ExtCompCycles   int
	ExtRespCycles   int
	ExtPorts        int
	ExtNotifEntries int
	// ExtNotifInDevMem places the notification rings in GPU device memory
	// instead of kernel-allocated host memory — a what-if ablation; real
	// EXTOLL pre-allocates them in the driver (§VI).
	ExtNotifInDevMem bool
	ExtDMACtx        int
	ExtEgress        float64
	ExtOneWay        sim.Duration
	ExtReadLat       sim.Duration
	ExtWireBW        float64
	ExtWireLat       sim.Duration

	// ---- InfiniBand ----
	IBFetchBatch int
	IBProc       sim.Duration
	IBRxProc     sim.Duration
	IBDMACtx     int
	IBEgress     float64
	IBOneWay     sim.Duration
	IBReadLat    sim.Duration
	IBWireBW     float64
	IBWireLat    sim.Duration

	// ---- fault injection + reliability ----
	// FaultInject turns the machinery on: seeded injectors wrap both wire
	// directions (and optionally the PCIe bulk path), and both fabrics run
	// their reliability protocols (link retransmission for EXTOLL, the RC
	// ACK/NAK protocol for InfiniBand). Off by default: the zero-loss
	// testbed stays bit-identical to the seed.
	FaultInject bool
	// FaultSeed derives the per-direction injector seeds.
	FaultSeed uint64
	// FaultDropRate / FaultCorruptRate are per-packet probabilities on
	// each wire direction; FaultDelayMax adds uniform extra delivery
	// delay in [0, FaultDelayMax].
	FaultDropRate    float64
	FaultCorruptRate float64
	FaultDelayMax    sim.Duration
	// FaultBlackout, when non-zero in width, drops every packet in
	// [Start, End) of virtual time on both directions.
	FaultBlackoutStart sim.Time
	FaultBlackoutEnd   sim.Time
	// FaultPCIeReplayRate injects link-level replays (extra latency) on
	// the node-local PCIe bulk path; FaultPCIeReplayPenalty is the cost
	// per replay.
	FaultPCIeReplayRate    float64
	FaultPCIeReplayPenalty sim.Duration
	// WireDepthCap bounds each wire direction's egress queue (tail-drop
	// beyond it); 0 keeps the unbounded seed behaviour.
	WireDepthCap int
	// ExtRel / IBRel override the reliability tunables; nil picks the
	// package defaults when FaultInject is set.
	ExtRel *extoll.RelConfig
	IBRel  *ibsim.RelConfig

	// ---- harness ----
	// Parallel is the experiment-harness worker count: sweeps shard their
	// independent cells (one isolated engine + testbed each) across this
	// many workers. 0 defaults to GOMAXPROCS; 1 runs sequentially. It
	// never affects results — merged output is bit-identical for any
	// value — only wall-clock time.
	Parallel int
}

// Default returns the calibrated FPGA-era testbed: EXTOLL Galibier
// (157 MHz / 64-bit datapath), IB 4X FDR, PCIe gen3-x8-class host links,
// and a Kepler-class GPU.
func Default() Params {
	return Params{
		GPUSMs:        13,
		GPUIssue:      18 * sim.Nanosecond,
		GPUL2Hit:      80 * sim.Nanosecond,
		GPUDevMemLat:  250 * sim.Nanosecond,
		GPUPCIeOp:     120 * sim.Nanosecond,
		GPUPCIeSlots:  4,
		GPUPollStall:  200 * sim.Nanosecond,
		GPUIssueShare: 8,
		GPULaunch:     4 * sim.Microsecond,
		GPUL2Bytes:    1536 << 10,
		GPUL2Assoc:    16,
		GPUL2Sector:   32,
		GPUDevMemSize: 512 << 20,
		GPUEgress:     8e9,
		GPUOneWay:     350 * sim.Nanosecond,
		GPUReadLat:    600 * sim.Nanosecond,

		P2PReadSmall:     1.05e9,
		P2PReadLarge:     0.35e9,
		P2PCollapseBytes: 1 << 20,

		HostRAMSize: 256 << 20,
		HostMemLat:  90 * sim.Nanosecond,
		CPUMMIO:     100 * sim.Nanosecond,
		CPUWRGen:    50 * sim.Nanosecond,
		HostEgress:  8e9,
		HostOneWay:  100 * sim.Nanosecond,
		HostReadLat: 150 * sim.Nanosecond,
		CPUEgress:   16e9,
		CPUOneWay:   100 * sim.Nanosecond,

		ExtClock:        157e6,
		ExtDatapath:     8,
		ExtReqCycles:    70,
		ExtCompCycles:   25,
		ExtRespCycles:   25,
		ExtPorts:        34,
		ExtNotifEntries: 1024,
		ExtDMACtx:       8,
		ExtEgress:       4e9,
		ExtOneWay:       150 * sim.Nanosecond,
		ExtReadLat:      100 * sim.Nanosecond,
		ExtWireBW:       0.95e9,
		ExtWireLat:      450 * sim.Nanosecond,

		IBFetchBatch: 8,
		IBProc:       100 * sim.Nanosecond,
		IBRxProc:     100 * sim.Nanosecond,
		IBDMACtx:     16,
		IBEgress:     6e9,
		IBOneWay:     150 * sim.Nanosecond,
		IBReadLat:    100 * sim.Nanosecond,
		IBWireBW:     6.8e9,
		IBWireLat:    450 * sim.Nanosecond,
	}
}

// ASIC returns the projected EXTOLL ASIC profile the paper mentions
// (700 MHz core, 128-bit datapath) for forward-looking studies.
func ASIC() Params {
	p := Default()
	p.ExtClock = 700e6
	p.ExtDatapath = 16
	p.ExtWireBW = 7.0e9
	return p
}

// Modern returns an NVSHMEM-era what-if profile: a GPU with far better
// single-thread issue and many more outstanding PCIe operations, a healed
// peer-to-peer read path (PCIe gen4-class), and an HDR-class wire. It asks
// whether the paper's GPU-control penalty is fundamental or an artifact of
// 2014 hardware.
func Modern() Params {
	p := Default()
	p.GPUIssue = 5 * sim.Nanosecond
	p.GPUPCIeSlots = 64
	p.GPUPollStall = 60 * sim.Nanosecond
	p.GPUPCIeOp = 60 * sim.Nanosecond
	p.GPUOneWay = 250 * sim.Nanosecond
	p.P2PReadSmall = 12e9
	p.P2PReadLarge = 12e9
	p.P2PCollapseOff = true
	p.HostEgress = 16e9
	p.GPUEgress = 16e9
	p.IBEgress = 16e9
	p.IBWireBW = 25e9
	p.ExtClock = 700e6
	p.ExtDatapath = 16
	p.ExtWireBW = 12e9
	p.ExtEgress = 16e9
	return p
}
