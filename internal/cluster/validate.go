package cluster

import "fmt"

// Validate checks the parameter set for values that cannot describe a
// physical testbed — zero-sized notification rings, negative fault
// probabilities, buffers larger than the memories that hold them — and
// returns a descriptive error for the first violation found. The profile
// constructors (Default, ASIC, Modern) always validate cleanly; the check
// exists so hand-edited sweeps and CLI overrides fail fast with a message
// instead of deadlocking the simulation or panicking deep in a substrate.
func (p Params) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		// ---- GPU ----
		{p.GPUSMs > 0, fmt.Sprintf("GPUSMs must be positive, got %d", p.GPUSMs)},
		{p.GPUIssue > 0, fmt.Sprintf("GPUIssue must be positive, got %v", p.GPUIssue)},
		{p.GPUL2Hit > 0, fmt.Sprintf("GPUL2Hit must be positive, got %v", p.GPUL2Hit)},
		{p.GPUDevMemLat > 0, fmt.Sprintf("GPUDevMemLat must be positive, got %v", p.GPUDevMemLat)},
		{p.GPUPCIeSlots > 0, fmt.Sprintf("GPUPCIeSlots must be positive, got %d", p.GPUPCIeSlots)},
		{p.GPUIssueShare > 0, fmt.Sprintf("GPUIssueShare must be positive, got %d", p.GPUIssueShare)},
		{p.GPUL2Bytes > 0, fmt.Sprintf("GPUL2Bytes must be positive, got %d", p.GPUL2Bytes)},
		{p.GPUL2Assoc > 0, fmt.Sprintf("GPUL2Assoc must be positive, got %d", p.GPUL2Assoc)},
		{p.GPUL2Sector > 0, fmt.Sprintf("GPUL2Sector must be positive, got %d", p.GPUL2Sector)},
		{p.GPUDevMemSize > 0, fmt.Sprintf("GPUDevMemSize must be positive, got %d", p.GPUDevMemSize)},
		{p.GPUEgress > 0, fmt.Sprintf("GPUEgress must be positive, got %g", p.GPUEgress)},
		{p.P2PReadSmall > 0, fmt.Sprintf("P2PReadSmall must be positive, got %g", p.P2PReadSmall)},
		{p.P2PReadLarge > 0, fmt.Sprintf("P2PReadLarge must be positive, got %g", p.P2PReadLarge)},

		// ---- host ----
		{p.HostRAMSize > 0, fmt.Sprintf("HostRAMSize must be positive, got %d", p.HostRAMSize)},
		{p.HostMemLat > 0, fmt.Sprintf("HostMemLat must be positive, got %v", p.HostMemLat)},
		{p.HostEgress > 0, fmt.Sprintf("HostEgress must be positive, got %g", p.HostEgress)},
		{p.CPUEgress > 0, fmt.Sprintf("CPUEgress must be positive, got %g", p.CPUEgress)},

		// ---- EXTOLL ----
		{p.ExtClock > 0, fmt.Sprintf("ExtClock must be positive, got %g", p.ExtClock)},
		{p.ExtDatapath > 0, fmt.Sprintf("ExtDatapath must be positive, got %d", p.ExtDatapath)},
		{p.ExtPorts > 0, fmt.Sprintf("ExtPorts must be positive, got %d", p.ExtPorts)},
		{p.ExtNotifEntries > 0, fmt.Sprintf("ExtNotifEntries must be positive, got %d", p.ExtNotifEntries)},
		{p.ExtDMACtx > 0, fmt.Sprintf("ExtDMACtx must be positive, got %d", p.ExtDMACtx)},
		{p.ExtEgress > 0, fmt.Sprintf("ExtEgress must be positive, got %g", p.ExtEgress)},
		{p.ExtWireBW > 0, fmt.Sprintf("ExtWireBW must be positive, got %g", p.ExtWireBW)},

		// ---- InfiniBand ----
		{p.IBFetchBatch > 0, fmt.Sprintf("IBFetchBatch must be positive, got %d", p.IBFetchBatch)},
		{p.IBDMACtx > 0, fmt.Sprintf("IBDMACtx must be positive, got %d", p.IBDMACtx)},
		{p.IBEgress > 0, fmt.Sprintf("IBEgress must be positive, got %g", p.IBEgress)},
		{p.IBWireBW > 0, fmt.Sprintf("IBWireBW must be positive, got %g", p.IBWireBW)},

		// ---- fault injection ----
		{p.FaultDropRate >= 0 && p.FaultDropRate <= 1,
			fmt.Sprintf("FaultDropRate must be in [0,1], got %g", p.FaultDropRate)},
		{p.FaultCorruptRate >= 0 && p.FaultCorruptRate <= 1,
			fmt.Sprintf("FaultCorruptRate must be in [0,1], got %g", p.FaultCorruptRate)},
		{p.FaultPCIeReplayRate >= 0 && p.FaultPCIeReplayRate <= 1,
			fmt.Sprintf("FaultPCIeReplayRate must be in [0,1], got %g", p.FaultPCIeReplayRate)},
		{p.FaultDelayMax >= 0, fmt.Sprintf("FaultDelayMax must be non-negative, got %v", p.FaultDelayMax)},
		{p.FaultPCIeReplayPenalty >= 0,
			fmt.Sprintf("FaultPCIeReplayPenalty must be non-negative, got %v", p.FaultPCIeReplayPenalty)},
		{p.FaultBlackoutEnd >= p.FaultBlackoutStart,
			fmt.Sprintf("FaultBlackoutEnd (%v) must not precede FaultBlackoutStart (%v)",
				p.FaultBlackoutEnd, p.FaultBlackoutStart)},
		{p.WireDepthCap >= 0, fmt.Sprintf("WireDepthCap must be non-negative, got %d", p.WireDepthCap)},

		// ---- harness ----
		{p.Parallel >= 0, fmt.Sprintf("Parallel must be non-negative, got %d", p.Parallel)},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("cluster: invalid Params: %s", c.msg)
		}
	}
	// Cross-field sanity: the EXTOLL notification rings live in host RAM
	// (or in a 32 MiB carve-out at the top of device memory under the
	// ExtNotifInDevMem ablation) — the ring area must fit its backing
	// memory. Layout mirrors extoll.NIC: ExtPorts x 3 classes rings, each
	// ExtNotifEntries 16-byte notifications plus a 16-byte write pointer.
	ringBytes := uint64(p.ExtPorts) * 3 * (uint64(p.ExtNotifEntries)*16 + 16)
	if p.ExtNotifInDevMem {
		if ringBytes > 32<<20 {
			return fmt.Errorf("cluster: invalid Params: notification rings (%d bytes) exceed the 32 MiB device-memory carve-out", ringBytes)
		}
		if p.GPUDevMemSize < 32<<20 {
			return fmt.Errorf("cluster: invalid Params: GPUDevMemSize (%d) too small for the notification-ring carve-out", p.GPUDevMemSize)
		}
	} else if uint64(NotifArea)+ringBytes > p.HostRAMSize {
		return fmt.Errorf("cluster: invalid Params: notification rings (%d bytes at %#x) exceed HostRAMSize (%d)",
			ringBytes, uint64(NotifArea), p.HostRAMSize)
	}
	return nil
}
