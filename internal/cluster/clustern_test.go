package cluster

import (
	"testing"

	"putget/internal/topo"
)

func scaledParams() Params {
	p := Default()
	p.GPUDevMemSize = 64 << 20
	p.HostRAMSize = 96 << 20
	return p
}

func TestClusterBuildsNodesLazily(t *testing.T) {
	c := NewClusterOn(FabricExtoll, topo.Spec{Kind: topo.FatTree}, 64, scaledParams())
	defer c.Shutdown()
	if got := c.Built(); got != 0 {
		t.Fatalf("fresh cluster built %d nodes, want 0", got)
	}
	if c.N() != 64 {
		t.Fatalf("N() = %d, want 64", c.N())
	}
	a := c.Node(3)
	if a == nil || a.Extoll == nil || a.GPU == nil {
		t.Fatal("node 3 is missing its anatomy")
	}
	if got := c.Built(); got != 1 {
		t.Fatalf("built %d nodes after one touch, want 1", got)
	}
	if c.Node(3) != a {
		t.Fatal("second touch returned a different node")
	}
	if got := c.Built(); got != 1 {
		t.Fatalf("repeated touch built %d nodes, want still 1", got)
	}
	if got := c.IndexOf(a); got != 3 {
		t.Fatalf("IndexOf = %d, want 3", got)
	}
	c.Node(60)
	if got := c.Built(); got != 2 {
		t.Fatalf("built %d nodes, want 2", got)
	}
}

func TestClusterLazyIBNodesAttach(t *testing.T) {
	c := NewClusterOn(FabricIB, topo.Spec{Kind: topo.Torus3D}, 8, scaledParams())
	defer c.Shutdown()
	nd := c.Node(5)
	if nd.IB == nil {
		t.Fatal("IB node missing its HCA")
	}
	if nd.Extoll != nil {
		t.Fatal("IB node grew an EXTOLL NIC")
	}
}

func TestClusterNodeRangePanics(t *testing.T) {
	c := NewClusterOn(FabricExtoll, topo.Spec{Kind: topo.FatTree}, 4, scaledParams())
	defer c.Shutdown()
	for _, i := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Node(%d) did not panic", i)
				}
			}()
			c.Node(i)
		}()
	}
}

// Lazy nodes must see the same EXTOLL notification-ring base no matter
// when they are built: it is fixed at cluster construction.
func TestClusterExtNotifBaseStable(t *testing.T) {
	p := scaledParams()
	p.ExtNotifInDevMem = true
	c := NewClusterOn(FabricExtoll, topo.Spec{Kind: topo.FatTree}, 4, p)
	defer c.Shutdown()
	want := DevMemBase + 64<<20 - 32<<20
	if c.extNotifBase != want {
		t.Fatalf("extNotifBase = %#x, want %#x", uint64(c.extNotifBase), uint64(want))
	}
}
