package cluster

import (
	"strings"
	"testing"

	"putget/internal/sim"
)

func TestValidateAcceptsProfiles(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Params
	}{
		{"default", Default()},
		{"asic", ASIC()},
		{"modern", Modern()},
	} {
		if err := tc.p.Validate(); err != nil {
			t.Errorf("%s profile should validate: %v", tc.name, err)
		}
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Params)
		want string
	}{
		{"zero ring entries", func(p *Params) { p.ExtNotifEntries = 0 }, "ExtNotifEntries"},
		{"negative SMs", func(p *Params) { p.GPUSMs = -1 }, "GPUSMs"},
		{"zero dev mem", func(p *Params) { p.GPUDevMemSize = 0 }, "GPUDevMemSize"},
		{"negative drop rate", func(p *Params) { p.FaultDropRate = -0.1 }, "FaultDropRate"},
		{"drop rate above one", func(p *Params) { p.FaultDropRate = 1.5 }, "FaultDropRate"},
		{"negative corrupt rate", func(p *Params) { p.FaultCorruptRate = -1 }, "FaultCorruptRate"},
		{"negative delay", func(p *Params) { p.FaultDelayMax = -sim.Nanosecond }, "FaultDelayMax"},
		{"inverted blackout", func(p *Params) {
			p.FaultBlackoutStart = sim.Time(100)
			p.FaultBlackoutEnd = sim.Time(50)
		}, "FaultBlackout"},
		{"negative wire cap", func(p *Params) { p.WireDepthCap = -2 }, "WireDepthCap"},
		{"negative parallel", func(p *Params) { p.Parallel = -1 }, "Parallel"},
		{"zero wire bw", func(p *Params) { p.ExtWireBW = 0 }, "ExtWireBW"},
		{"rings exceed host RAM", func(p *Params) { p.HostRAMSize = 16 << 20 }, "notification rings"},
		{"rings exceed carve-out", func(p *Params) {
			p.ExtNotifInDevMem = true
			p.ExtNotifEntries = 1 << 20
		}, "carve-out"},
	} {
		p := Default()
		tc.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateMessagesCarryOffendingValue pins the contract that every
// rejection names the offending field AND the value it held — a sweep
// that fails halfway through a hand-edited matrix must be debuggable
// from the error string alone.
func TestValidateMessagesCarryOffendingValue(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Params)
		want []string
	}{
		{"zero dev mem", func(p *Params) { p.GPUDevMemSize = 0 }, []string{"GPUDevMemSize", "got 0"}},
		{"zero host ram", func(p *Params) { p.HostRAMSize = 0 }, []string{"HostRAMSize", "got 0"}},
		{"negative SMs", func(p *Params) { p.GPUSMs = -3 }, []string{"GPUSMs", "got -3"}},
		{"drop rate above one", func(p *Params) { p.FaultDropRate = 1.5 }, []string{"FaultDropRate", "got 1.5"}},
		{"negative delay", func(p *Params) { p.FaultDelayMax = -5 * sim.Nanosecond }, []string{"FaultDelayMax", "got"}},
		{"negative parallel", func(p *Params) { p.Parallel = -7 }, []string{"Parallel", "got -7"}},
		{"zero egress", func(p *Params) { p.ExtEgress = 0 }, []string{"ExtEgress", "got 0"}},
	} {
		p := Default()
		tc.mut(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q does not contain %q", tc.name, err, w)
			}
		}
	}
}

func TestNewPairPanicsOnInvalidParams(t *testing.T) {
	p := Default()
	p.ExtNotifEntries = 0
	for _, tc := range []struct {
		name string
		make func(Params) *Testbed
	}{
		{"extoll", NewExtollPair},
		{"ib", NewIBPair},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewPair should panic on invalid params", tc.name)
				}
			}()
			tc.make(p)
		}()
	}
}
