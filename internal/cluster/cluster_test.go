package cluster

import (
	"testing"

	"putget/internal/sim"
)

func TestExtollPairConstructs(t *testing.T) {
	tb := NewExtollPair(Default())
	if tb.A.Extoll == nil || tb.B.Extoll == nil {
		t.Fatal("EXTOLL NICs missing")
	}
	if tb.A.IB != nil {
		t.Fatal("unexpected IB HCA on EXTOLL testbed")
	}
	if tb.A.GPU == nil || tb.A.CPU == nil {
		t.Fatal("node incomplete")
	}
	// The notification area must fit below the host allocator floor.
	area := tb.A.Extoll.NotifRingArea()
	if floor := tb.A.AllocHost(64); uint64(NotifArea)+area > uint64(floor) {
		t.Fatalf("notification rings (%d bytes) collide with heap floor %#x", area, uint64(floor))
	}
}

func TestIBPairConstructs(t *testing.T) {
	tb := NewIBPair(Default())
	if tb.A.IB == nil || tb.B.IB == nil {
		t.Fatal("HCAs missing")
	}
	if tb.A.Extoll != nil {
		t.Fatal("unexpected EXTOLL NIC on IB testbed")
	}
}

func TestAllocatorsAlignAndAdvance(t *testing.T) {
	tb := NewExtollPair(Default())
	h1 := tb.A.AllocHost(100)
	h2 := tb.A.AllocHost(100)
	if h1%64 != 0 || h2%64 != 0 {
		t.Fatal("host allocations unaligned")
	}
	if h2 <= h1 || uint64(h2-h1) < 100 {
		t.Fatal("host allocations overlap")
	}
	d1 := tb.A.AllocDev(1000)
	d2 := tb.A.AllocDev(1000)
	if d1%256 != 0 || d2 <= d1 {
		t.Fatal("dev allocations wrong")
	}
	if !tb.A.GPU.DevMem().Contains(d1) {
		t.Fatal("dev allocation outside device memory")
	}
	if !tb.A.HostRAM.Contains(h1) {
		t.Fatal("host allocation outside host RAM")
	}
}

func TestNodesHaveIndependentSpaces(t *testing.T) {
	tb := NewExtollPair(Default())
	if err := tb.A.Space.WriteU64(0x40, 111); err != nil {
		t.Fatal(err)
	}
	v, err := tb.B.Space.ReadU64(0x40)
	if err != nil {
		t.Fatal(err)
	}
	if v == 111 {
		t.Fatal("node address spaces alias")
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := Default()
	if p.P2PReadSmall <= p.P2PReadLarge {
		t.Fatal("P2P collapse inverted")
	}
	if p.GPUIssue <= 0 || p.ExtClock <= 0 || p.IBWireBW <= 0 {
		t.Fatal("zero parameters")
	}
	a := ASIC()
	if a.ExtClock <= p.ExtClock || a.ExtDatapath <= p.ExtDatapath {
		t.Fatal("ASIC profile not faster than FPGA")
	}
}

func TestP2PCollapseToggle(t *testing.T) {
	p := Default()
	rate := p2pReadRate(p)
	if rate(1<<10) != p.P2PReadSmall || rate(4<<20) != p.P2PReadLarge {
		t.Fatal("collapse curve wrong")
	}
	p.P2PCollapseOff = true
	rate = p2pReadRate(p)
	if rate(4<<20) != p.P2PReadSmall {
		t.Fatal("collapse not disabled by ablation flag")
	}
}

func TestEngineRunsQuiescent(t *testing.T) {
	tb := NewExtollPair(Default())
	tb.E.RunUntil(sim.Time(100 * sim.Microsecond))
	if tb.E.Now() != sim.Time(100*sim.Microsecond) {
		t.Fatalf("engine stalled at %v", tb.E.Now())
	}
}

func TestModernProfileSane(t *testing.T) {
	d, m := Default(), Modern()
	if m.GPUIssue >= d.GPUIssue {
		t.Fatal("modern GPU not faster at issue")
	}
	if m.GPUPCIeSlots <= d.GPUPCIeSlots {
		t.Fatal("modern GPU not more parallel on PCIe")
	}
	if !m.P2PCollapseOff {
		t.Fatal("modern profile should heal the P2P path")
	}
	if m.P2PReadSmall <= d.P2PReadSmall {
		t.Fatal("modern P2P not faster")
	}
}
