package memspace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRAMRoundTrip(t *testing.T) {
	r := NewRAM("ram", 1024)
	in := []byte{1, 2, 3, 4, 5}
	if err := r.WriteAt(100, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 5)
	if err := r.ReadAt(100, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("read %v, want %v", out, in)
	}
}

func TestRAMBounds(t *testing.T) {
	r := NewRAM("ram", 16)
	if err := r.WriteAt(12, make([]byte, 8)); err == nil {
		t.Error("expected write OOB error")
	}
	if err := r.ReadAt(16, make([]byte, 1)); err == nil {
		t.Error("expected read OOB error")
	}
	if err := r.WriteAt(8, make([]byte, 8)); err != nil {
		t.Errorf("boundary write failed: %v", err)
	}
	// Offset overflow must not wrap around.
	if err := r.ReadAt(^uint64(0)-3, make([]byte, 8)); err == nil {
		t.Error("expected overflow read to fail")
	}
}

func TestSpaceRouting(t *testing.T) {
	s := NewSpace()
	host := NewRAM("host", 4096)
	dev := NewRAM("dev", 4096)
	s.MustMap(0x0, host)
	s.MustMap(0x1_0000, dev)

	if err := s.WriteU64(0x10, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteU64(0x1_0010, 0xcafebabe); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadU64(0x10)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("host read = %#x, %v", v, err)
	}
	v, err = s.ReadU64(0x1_0010)
	if err != nil || v != 0xcafebabe {
		t.Fatalf("dev read = %#x, %v", v, err)
	}
	// Same offsets in both devices must not alias.
	u, _ := s.ReadU64(0x1_0010)
	if u == 0xdeadbeef {
		t.Fatal("mappings alias")
	}
}

func TestSpaceUnmapped(t *testing.T) {
	s := NewSpace()
	s.MustMap(0x1000, NewRAM("r", 16))
	if err := s.Write(0x0, []byte{1}); err == nil {
		t.Error("expected unmapped write to fail")
	}
	if _, err := s.ReadU32(0x2000); err == nil {
		t.Error("expected unmapped read to fail")
	}
}

func TestSpaceOverlapRejected(t *testing.T) {
	s := NewSpace()
	s.MustMap(0x1000, NewRAM("a", 0x100))
	if _, err := s.Map(0x10ff, NewRAM("b", 0x100)); err == nil {
		t.Error("expected overlap to be rejected")
	}
	if _, err := s.Map(0x1100, NewRAM("c", 0x100)); err != nil {
		t.Errorf("adjacent mapping rejected: %v", err)
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{Base: 100, Size: 50}
	if !r.Contains(100) || !r.Contains(149) || r.Contains(150) || r.Contains(99) {
		t.Error("Contains wrong at boundaries")
	}
	if r.End() != 150 {
		t.Errorf("End = %d, want 150", r.End())
	}
	if !r.Overlaps(Region{Base: 149, Size: 1}) {
		t.Error("touching last byte should overlap")
	}
	if r.Overlaps(Region{Base: 150, Size: 10}) {
		t.Error("adjacent region should not overlap")
	}
}

func TestU32U64Endianness(t *testing.T) {
	s := NewSpace()
	s.MustMap(0, NewRAM("r", 64))
	if err := s.WriteU64(0, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	lo, _ := s.ReadU32(0)
	hi, _ := s.ReadU32(4)
	if lo != 0x05060708 || hi != 0x01020304 {
		t.Fatalf("little-endian split = %#x,%#x", lo, hi)
	}
}

// Property: write-then-read through the space round-trips any payload at
// any in-bounds offset.
func TestSpaceRoundTripProperty(t *testing.T) {
	s := NewSpace()
	s.MustMap(0x4000, NewRAM("r", 1<<16))
	f := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		if int(off)+len(payload) > 1<<16 {
			return true // out of scope for this property
		}
		a := Addr(0x4000 + uint64(off))
		if err := s.Write(a, payload); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if err := s.Read(a, got); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
