// Package memspace provides the functional (data-carrying) view of a
// node's physical address space: byte-addressable RAM devices mapped at
// fixed bases, plus routing from addresses to devices.
//
// Timing is deliberately absent here — the pcie, gpusim and hostsim
// packages charge virtual time for accesses; memspace only moves bytes, so
// put/get experiments can verify end-to-end data correctness.
package memspace

import (
	"encoding/binary"
	"fmt"
)

// Addr is a simulated physical address.
type Addr uint64

// Region is a half-open address range [Base, Base+Size).
type Region struct {
	Base Addr
	Size uint64
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && uint64(a-r.Base) < r.Size
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Overlaps reports whether two regions share any address.
func (r Region) Overlaps(o Region) bool {
	return r.Base < o.End() && o.Base < r.End()
}

// Memory is anything that stores bytes at region-relative offsets.
type Memory interface {
	// Name identifies the device in errors and traces.
	Name() string
	// ReadAt copies len(b) bytes starting at offset off into b.
	ReadAt(off uint64, b []byte) error
	// WriteAt copies b into the device starting at offset off.
	WriteAt(off uint64, b []byte) error
	// Size returns the device capacity in bytes.
	Size() uint64
}

// ramPageShift sizes RAM pages at 64 KiB: large enough that page lookups
// are rare in bulk copies, small enough that a testbed touching a few
// buffers materializes megabytes, not the configured gigabytes.
const (
	ramPageShift = 16
	ramPageSize  = 1 << ramPageShift
)

// RAM is a byte-array memory device with copy-on-write pages: a page
// materializes on its first write, and reads of untouched pages observe
// zeros — exactly the bytes a freshly made []byte would hold. Testbeds
// configure memories in the hundreds of megabytes but touch a tiny
// working set; allocating (and zeroing) the full span per experiment
// cell dominated cell setup cost.
type RAM struct {
	name  string
	size  uint64
	pages [][]byte
}

// NewRAM creates a RAM device of the given size. No page storage is
// allocated until the first write.
func NewRAM(name string, size uint64) *RAM {
	return &RAM{name: name, size: size, pages: make([][]byte, (size+ramPageSize-1)>>ramPageShift)}
}

// Name implements Memory.
func (r *RAM) Name() string { return r.name }

// Size implements Memory.
func (r *RAM) Size() uint64 { return r.size }

// ReadAt implements Memory.
func (r *RAM) ReadAt(off uint64, b []byte) error {
	if off+uint64(len(b)) > r.size || off+uint64(len(b)) < off {
		return fmt.Errorf("memspace: %s: read [%#x,%#x) out of bounds (size %#x)", r.name, off, off+uint64(len(b)), r.size)
	}
	for len(b) > 0 {
		po := off & (ramPageSize - 1)
		n := uint64(ramPageSize - po)
		if uint64(len(b)) < n {
			n = uint64(len(b))
		}
		if pg := r.pages[off>>ramPageShift]; pg != nil {
			copy(b[:n], pg[po:])
		} else {
			clear(b[:n]) // untouched page: the bytes are zero
		}
		b = b[n:]
		off += n
	}
	return nil
}

// WriteAt implements Memory.
func (r *RAM) WriteAt(off uint64, b []byte) error {
	if off+uint64(len(b)) > r.size || off+uint64(len(b)) < off {
		return fmt.Errorf("memspace: %s: write [%#x,%#x) out of bounds (size %#x)", r.name, off, off+uint64(len(b)), r.size)
	}
	for len(b) > 0 {
		pi := off >> ramPageShift
		po := off & (ramPageSize - 1)
		n := uint64(ramPageSize - po)
		if uint64(len(b)) < n {
			n = uint64(len(b))
		}
		if r.pages[pi] == nil {
			r.pages[pi] = make([]byte, ramPageSize)
		}
		copy(r.pages[pi][po:], b[:n])
		b = b[n:]
		off += n
	}
	return nil
}

// mapping binds a region of the space to a memory device.
type mapping struct {
	region Region
	mem    Memory
}

// Space routes physical addresses to mapped memory devices. One Space
// exists per node; the two nodes of a testbed have independent spaces.
type Space struct {
	maps []mapping
}

// NewSpace returns an empty address space.
func NewSpace() *Space { return &Space{} }

// Map binds mem at base. Overlapping mappings are rejected.
func (s *Space) Map(base Addr, mem Memory) (Region, error) {
	r := Region{Base: base, Size: mem.Size()}
	for _, m := range s.maps {
		if m.region.Overlaps(r) {
			return Region{}, fmt.Errorf("memspace: mapping %s at %#x overlaps %s at %#x",
				mem.Name(), base, m.mem.Name(), m.region.Base)
		}
	}
	s.maps = append(s.maps, mapping{region: r, mem: mem})
	return r, nil
}

// MustMap is Map that panics on error; for fixed testbed construction.
func (s *Space) MustMap(base Addr, mem Memory) Region {
	r, err := s.Map(base, mem)
	if err != nil {
		panic(err)
	}
	return r
}

// Lookup returns the device and region containing a.
func (s *Space) Lookup(a Addr) (Memory, Region, error) {
	for _, m := range s.maps {
		if m.region.Contains(a) {
			return m.mem, m.region, nil
		}
	}
	return nil, Region{}, fmt.Errorf("memspace: address %#x unmapped", a)
}

// Read copies len(b) bytes from address a. The access must not straddle a
// mapping boundary — hardware DMA never does, and catching it here turns
// model bugs into loud failures.
func (s *Space) Read(a Addr, b []byte) error {
	mem, region, err := s.Lookup(a)
	if err != nil {
		return err
	}
	return mem.ReadAt(uint64(a-region.Base), b)
}

// Write copies b to address a.
func (s *Space) Write(a Addr, b []byte) error {
	mem, region, err := s.Lookup(a)
	if err != nil {
		return err
	}
	return mem.WriteAt(uint64(a-region.Base), b)
}

// ReadU64 reads a little-endian 64-bit word at a.
func (s *Space) ReadU64(a Addr) (uint64, error) {
	var b [8]byte
	if err := s.Read(a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit word at a.
func (s *Space) WriteU64(a Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.Write(a, b[:])
}

// ReadU32 reads a little-endian 32-bit word at a.
func (s *Space) ReadU32(a Addr) (uint32, error) {
	var b [4]byte
	if err := s.Read(a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU32 writes a little-endian 32-bit word at a.
func (s *Space) WriteU32(a Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return s.Write(a, b[:])
}
