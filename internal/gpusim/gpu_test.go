package gpusim

import (
	"testing"

	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
)

type rig struct {
	e    *sim.Engine
	f    *pcie.Fabric
	g    *GPU
	host memspace.Region
}

func testConfig() Config {
	return Config{
		Name:           "gpu0",
		SMs:            4,
		IssueCost:      8 * sim.Nanosecond,
		L2HitLatency:   80 * sim.Nanosecond,
		DevMemLatency:  250 * sim.Nanosecond,
		PCIeOpOverhead: 100 * sim.Nanosecond,
		LaunchOverhead: 4 * sim.Microsecond,
		L2Bytes:        1 << 20,
		L2Assoc:        16,
		L2Sector:       32,
		DevMemBase:     0x1000_0000,
		DevMemSize:     16 << 20,
		PCIe: pcie.EndpointConfig{
			EgressRate:  8e9,
			OneWay:      350 * sim.Nanosecond,
			ReadLatency: 600 * sim.Nanosecond,
			ReadRate: func(total int) float64 {
				if total > 1<<20 {
					return 0.35e9
				}
				return 1.0e9
			},
		},
	}
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine()
	space := memspace.NewSpace()
	host := space.MustMap(0x0, memspace.NewRAM("host", 4<<20))
	f := pcie.NewFabric(e, space)
	hostEP := f.AddEndpoint("hostmem", pcie.EndpointConfig{
		EgressRate: 8e9, OneWay: 100 * sim.Nanosecond, ReadLatency: 150 * sim.Nanosecond,
	})
	f.ClaimRAM(hostEP, host)
	g := New(e, f, testConfig())
	return &rig{e: e, f: f, g: g, host: host}
}

func (r *rig) run(t *testing.T, blocks, threads int, body func(w *Warp)) {
	t.Helper()
	done := r.g.Launch(KernelConfig{Blocks: blocks, ThreadsPerBlock: threads}, body)
	r.e.Run()
	if !done.Done() {
		t.Fatal("kernel did not complete")
	}
}

func TestGlobalMemoryRoundTrip(t *testing.T) {
	r := newRig(t)
	base := r.g.DevMem().Base
	var got uint64
	r.run(t, 1, 1, func(w *Warp) {
		w.StGlobalU64(base+64, 0xfeedface)
		got = w.LdGlobalU64(base + 64)
	})
	if got != 0xfeedface {
		t.Fatalf("got %#x", got)
	}
	c := r.g.Counters()
	if c.Globmem64Writes != 1 || c.Globmem64Reads != 1 {
		t.Fatalf("globmem counters = %+v", c)
	}
	if c.SysmemReads32B != 0 || c.SysmemWrites32B != 0 {
		t.Fatalf("unexpected sysmem traffic: %+v", c)
	}
}

func TestL2HitMissSequence(t *testing.T) {
	r := newRig(t)
	base := r.g.DevMem().Base
	r.run(t, 1, 1, func(w *Warp) {
		w.StGlobalU64(base, 1) // allocates the sector
		for i := 0; i < 10; i++ {
			w.LdGlobalU64(base)
		}
	})
	c := r.g.Counters()
	if c.L2ReadHits != 10 || c.L2ReadMisses != 0 {
		t.Fatalf("hits=%d misses=%d, want 10/0", c.L2ReadHits, c.L2ReadMisses)
	}
}

func TestColdLoadMissesThenHits(t *testing.T) {
	r := newRig(t)
	base := r.g.DevMem().Base
	r.run(t, 1, 1, func(w *Warp) {
		w.LdGlobalU64(base + 4096) // cold: miss
		w.LdGlobalU64(base + 4096) // hit
	})
	c := r.g.Counters()
	if c.L2ReadMisses != 1 || c.L2ReadHits != 1 {
		t.Fatalf("misses=%d hits=%d, want 1/1", c.L2ReadMisses, c.L2ReadHits)
	}
}

func TestL2HitFasterThanMiss(t *testing.T) {
	r := newRig(t)
	base := r.g.DevMem().Base
	var missTime, hitTime sim.Duration
	r.run(t, 1, 1, func(w *Warp) {
		s := w.Now()
		w.LdGlobalU64(base + 8192)
		missTime = w.Now().Sub(s)
		s = w.Now()
		w.LdGlobalU64(base + 8192)
		hitTime = w.Now().Sub(s)
	})
	if hitTime >= missTime {
		t.Fatalf("hit %v not faster than miss %v", hitTime, missTime)
	}
	if missTime < 300*sim.Nanosecond {
		t.Fatalf("miss too fast: %v", missTime)
	}
}

func TestInboundDMAInvalidatesL2(t *testing.T) {
	r := newRig(t)
	base := r.g.DevMem().Base
	flagAddr := base + 1024
	var observed uint64
	var polls int
	nicEP := r.f.AddEndpoint("nic", pcie.EndpointConfig{
		EgressRate: 4e9, OneWay: 150 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond,
	})
	// NIC writes the flag after 20us.
	r.e.SpawnAt(20_000_000, "nic-dma", func(p *sim.Proc) {
		r.f.PostedWrite(nicEP, flagAddr, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	})
	r.run(t, 1, 1, func(w *Warp) {
		for {
			polls++
			if v := w.LdGlobalU64(flagAddr); v != 0 {
				observed = v
				return
			}
		}
	})
	if observed != 1 {
		t.Fatalf("poll never observed DMA write")
	}
	c := r.g.Counters()
	// All but the first and last polls must hit in L2.
	if c.L2ReadMisses != 2 {
		t.Fatalf("misses = %d, want exactly 2 (cold + post-invalidate)", c.L2ReadMisses)
	}
	if int(c.L2ReadHits) != polls-2 {
		t.Fatalf("hits = %d, polls = %d", c.L2ReadHits, polls)
	}
}

func TestSysmemAccessCountersAndLatency(t *testing.T) {
	r := newRig(t)
	if err := r.f.Space().WriteU64(0x100, 42); err != nil {
		t.Fatal(err)
	}
	var v uint64
	var rdLat sim.Duration
	r.run(t, 1, 1, func(w *Warp) {
		s := w.Now()
		v = w.LdSysU64(0x100)
		rdLat = w.Now().Sub(s)
		w.StSysU64(0x108, 77)
	})
	if v != 42 {
		t.Fatalf("sysmem read = %d", v)
	}
	got, _ := r.f.Space().ReadU64(0x108)
	if got != 77 {
		t.Fatalf("sysmem write landed %d", got)
	}
	c := r.g.Counters()
	if c.SysmemReads32B != 1 || c.SysmemWrites32B != 1 {
		t.Fatalf("sysmem counters %+v", c)
	}
	if c.L2ReadHits != 0 {
		t.Fatalf("sysmem read must not hit L2")
	}
	// GPU→sysmem read ≈ 1.1-1.4us in this configuration.
	if rdLat < sim.Microsecond || rdLat > 1600*sim.Nanosecond {
		t.Fatalf("sysmem read latency = %v", rdLat)
	}
}

func TestPostedStoreDoesNotStallWarp(t *testing.T) {
	r := newRig(t)
	var stTime sim.Duration
	r.run(t, 1, 1, func(w *Warp) {
		s := w.Now()
		w.StSysU64(0x200, 5)
		stTime = w.Now().Sub(s)
	})
	// Posted: issue + LSU overhead only, far less than a round trip.
	if stTime > 300*sim.Nanosecond {
		t.Fatalf("posted store stalled %v", stTime)
	}
}

func TestThreadfenceSystemDrains(t *testing.T) {
	r := newRig(t)
	var fenceDone sim.Time
	r.run(t, 1, 1, func(w *Warp) {
		w.StSysU64(0x300, 1)
		w.ThreadfenceSystem()
		fenceDone = w.Now()
		got, _ := r.f.Space().ReadU64(0x300)
		if got != 1 {
			t.Errorf("store not visible after fence")
		}
	})
	if fenceDone == 0 {
		t.Fatal("kernel did not run")
	}
}

func TestInstructionAccounting(t *testing.T) {
	r := newRig(t)
	r.run(t, 1, 1, func(w *Warp) {
		w.Exec(100)
	})
	if c := r.g.Counters(); c.InstrExecuted != 100 {
		t.Fatalf("instr = %d, want 100", c.InstrExecuted)
	}
	r.g.ResetCounters()
	if c := r.g.Counters(); c.InstrExecuted != 0 {
		t.Fatalf("reset failed: %+v", c)
	}
}

func TestIssueCostScalesWithInstructions(t *testing.T) {
	r := newRig(t)
	var t100, t1000 sim.Duration
	r.run(t, 1, 1, func(w *Warp) {
		s := w.Now()
		w.Exec(100)
		t100 = w.Now().Sub(s)
		s = w.Now()
		w.Exec(1000)
		t1000 = w.Now().Sub(s)
	})
	if t1000 != 10*t100 {
		t.Fatalf("issue time not linear: %v vs %v", t100, t1000)
	}
}

func TestBlocksRunConcurrently(t *testing.T) {
	r := newRig(t)
	var finishes []sim.Time
	r.run(t, 4, 1, func(w *Warp) {
		w.Exec(1000) // 8us of issue on 4 distinct SMs
		finishes = append(finishes, w.Now())
	})
	for i := 1; i < len(finishes); i++ {
		if finishes[i] != finishes[0] {
			t.Fatalf("blocks on distinct SMs did not run concurrently: %v", finishes)
		}
	}
}

func TestCoResidentWarpsSerializeIssue(t *testing.T) {
	r := newRig(t)
	// 64 blocks on 4 SMs: 16 warps per SM exceed the issue share (8),
	// so issue-port contention must slow them down.
	var finishes []sim.Time
	r.run(t, 64, 1, func(w *Warp) {
		w.Exec(1000)
		finishes = append(finishes, w.Now())
	})
	var max, min sim.Time
	min = finishes[0]
	for _, f := range finishes {
		if f > max {
			max = f
		}
		if f < min {
			min = f
		}
	}
	if max < 2*min-sim.Time(testConfig().LaunchOverhead) {
		t.Fatalf("co-resident warps did not serialize: min=%v max=%v", min, max)
	}
}

func TestStreamsSerializeKernels(t *testing.T) {
	r := newRig(t)
	s := r.g.NewStream()
	var k1End, k2Start sim.Time
	r.g.Launch(KernelConfig{Blocks: 1, Stream: s}, func(w *Warp) {
		w.Exec(500)
		k1End = w.Now()
	})
	r.g.Launch(KernelConfig{Blocks: 1, Stream: s}, func(w *Warp) {
		k2Start = w.Now()
		w.Exec(1)
	})
	r.e.Run()
	if k2Start < k1End {
		t.Fatalf("second kernel started %v before first ended %v", k2Start, k1End)
	}
}

func TestDifferentStreamsOverlap(t *testing.T) {
	r := newRig(t)
	s1, s2 := r.g.NewStream(), r.g.NewStream()
	var e1, s2start sim.Time
	r.g.Launch(KernelConfig{Blocks: 1, Stream: s1}, func(w *Warp) {
		w.Exec(10000)
		e1 = w.Now()
	})
	r.g.Launch(KernelConfig{Blocks: 1, Stream: s2}, func(w *Warp) {
		s2start = w.Now()
		w.Exec(1)
	})
	r.e.Run()
	if s2start >= e1 {
		t.Fatalf("independent streams serialized: k2 at %v, k1 end %v", s2start, e1)
	}
}

func TestLaunchOverheadCharged(t *testing.T) {
	r := newRig(t)
	var started sim.Time
	r.run(t, 1, 1, func(w *Warp) {
		started = w.Now()
	})
	if started != sim.Time(testConfig().LaunchOverhead) {
		t.Fatalf("kernel started at %v, want %v", started, testConfig().LaunchOverhead)
	}
}

func TestCoalescedStoreCountsSectors(t *testing.T) {
	r := newRig(t)
	data := make([]byte, 64) // 64B = 2 sectors
	r.run(t, 1, 8, func(w *Warp) {
		w.StSysCoalesced(0x400, data)
	})
	c := r.g.Counters()
	if c.SysmemWrites32B != 2 {
		t.Fatalf("coalesced 64B store = %d transactions, want 2", c.SysmemWrites32B)
	}
	if c.InstrExecuted != 1 {
		t.Fatalf("coalesced store = %d instr, want 1", c.InstrExecuted)
	}
}

func TestFillGlobalWritesPayload(t *testing.T) {
	r := newRig(t)
	base := r.g.DevMem().Base
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	r.run(t, 1, 32, func(w *Warp) {
		w.FillGlobal(base+0x2000, payload)
	})
	got := make([]byte, 1000)
	if err := r.g.HostRead(base+0x2000, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("payload corrupt at %d", i)
		}
	}
}

func TestAddressGuards(t *testing.T) {
	r := newRig(t)
	panics := 0
	r.run(t, 1, 1, func(w *Warp) {
		for _, fn := range []func(){
			func() { w.LdGlobalU64(0x100) },             // host addr via global op
			func() { w.LdSysU64(r.g.DevMem().Base) },    // device addr via sys op
			func() { w.StSysU64(r.g.DevMem().Base, 1) }, // device addr via sys store
			func() { w.StGlobalU64(0x100, 1) },          // host addr via global store
		} {
			func() {
				defer func() {
					if recover() != nil {
						panics++
					}
				}()
				fn()
			}()
		}
	})
	if panics != 4 {
		t.Fatalf("guards caught %d of 4 misroutes", panics)
	}
}

func TestHostWriteInvalidatesL2(t *testing.T) {
	r := newRig(t)
	base := r.g.DevMem().Base
	var first, second uint64
	done := r.g.Launch(KernelConfig{Blocks: 1}, func(w *Warp) {
		first = w.LdGlobalU64(base) // caches the sector (value 0)
		w.Proc().Sleep(10 * sim.Microsecond)
		second = w.LdGlobalU64(base)
	})
	r.e.RunUntil(8 * 1000 * 1000) // 8us: kernel did the first load
	if err := r.g.HostWriteU64(base, 99); err != nil {
		t.Fatal(err)
	}
	r.e.Run()
	if !done.Done() {
		t.Fatal("kernel stuck")
	}
	if first != 0 || second != 99 {
		t.Fatalf("first=%d second=%d, want 0 then 99", first, second)
	}
}

func TestOversizeBlockRejected(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for >1024 threads per block")
		}
	}()
	r.g.Launch(KernelConfig{Blocks: 1, ThreadsPerBlock: 2048}, func(w *Warp) {})
}

func TestPollGlobalU64FastPathAccounting(t *testing.T) {
	// The parked fast path must observe the write promptly and account
	// the probes it skipped.
	r := newRig(t)
	base := r.g.DevMem().Base
	flag := base + 2048
	nicEP := r.f.AddEndpoint("nic2", pcie.EndpointConfig{
		EgressRate: 4e9, OneWay: 150 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond,
	})
	const fireAt = 500 * 1000 * 1000 // 500us in ps
	r.e.SpawnAt(fireAt, "nic-dma", func(p *sim.Proc) {
		r.f.PostedWrite(nicEP, flag, []byte{7, 0, 0, 0, 0, 0, 0, 0})
	})
	var sawAt sim.Time
	var got uint64
	r.run(t, 1, 1, func(w *Warp) {
		got = w.PollGlobalU64(flag, 7)
		sawAt = w.Now()
	})
	if got != 7 {
		t.Fatalf("poll returned %#x", got)
	}
	if sawAt < fireAt || sawAt > fireAt+sim.Time(2*sim.Microsecond) {
		t.Fatalf("poll observed at %v, write at %v", sawAt, sim.Time(fireAt))
	}
	// ~496us of spinning at (3*8ns + 80ns) ≈ 104ns per probe ≈ 4800
	// probes; accounting must be in that ballpark, not 1 and not 5e6.
	c := r.g.Counters()
	if c.Globmem64Reads < 3000 || c.Globmem64Reads > 7000 {
		t.Fatalf("accounted %d probes, want ≈4800", c.Globmem64Reads)
	}
	if c.L2ReadHits < 3000 {
		t.Fatalf("skipped probes not counted as L2 hits: %d", c.L2ReadHits)
	}
	if c.InstrExecuted < 3*c.Globmem64Reads-10 {
		t.Fatalf("instruction accounting inconsistent: %d instr, %d loads", c.InstrExecuted, c.Globmem64Reads)
	}
}

func TestPollGlobalU64MaskedSmallPayload(t *testing.T) {
	r := newRig(t)
	base := r.g.DevMem().Base
	flag := base + 4096
	// Pre-pollute the high bytes; only the low 4 bytes are the stamp.
	if err := r.g.HostWriteU64(flag, 0xffffffff00000000); err != nil {
		t.Fatal(err)
	}
	nicEP := r.f.AddEndpoint("nic3", pcie.EndpointConfig{
		EgressRate: 4e9, OneWay: 150 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond,
	})
	r.e.SpawnAt(10_000_000, "nic-dma", func(p *sim.Proc) {
		r.f.PostedWrite(nicEP, flag, []byte{0x2a, 0, 0, 0}) // 4-byte message
	})
	var got uint64
	r.run(t, 1, 1, func(w *Warp) {
		got = w.PollGlobalU64Masked(flag, 0x2a, 0xffffffff)
	})
	if got&0xffffffff != 0x2a {
		t.Fatalf("masked poll returned %#x", got)
	}
}

func TestPollGlobalU64ImmediateValue(t *testing.T) {
	// If the value already matches, the poll returns after one probe.
	r := newRig(t)
	base := r.g.DevMem().Base
	if err := r.g.HostWriteU64(base+8192, 99); err != nil {
		t.Fatal(err)
	}
	var took sim.Duration
	r.run(t, 1, 1, func(w *Warp) {
		s := w.Now()
		w.PollGlobalU64(base+8192, 99)
		took = w.Now().Sub(s)
	})
	if took > sim.Microsecond {
		t.Fatalf("immediate poll took %v", took)
	}
}

func TestAtomicAddSerializesCorrectly(t *testing.T) {
	r := newRig(t)
	ctr := r.g.DevMem().Base + 0x100
	// 8 blocks each add 5, ten times: final value must be 400 and the
	// returned old values across all blocks must be a permutation of
	// {0,5,...,395}.
	seen := map[uint64]bool{}
	r.run(t, 8, 1, func(w *Warp) {
		for i := 0; i < 10; i++ {
			old := w.AtomicAddGlobalU64(ctr, 5)
			if seen[old] {
				t.Errorf("atomicity violated: old value %d seen twice", old)
			}
			seen[old] = true
		}
	})
	v, _ := r.g.HostReadU64(ctr)
	if v != 400 {
		t.Fatalf("counter = %d, want 400", v)
	}
	if len(seen) != 80 {
		t.Fatalf("distinct old values = %d, want 80", len(seen))
	}
}

func TestCASGlobal(t *testing.T) {
	r := newRig(t)
	word := r.g.DevMem().Base + 0x200
	if err := r.g.HostWriteU64(word, 10); err != nil {
		t.Fatal(err)
	}
	r.run(t, 1, 1, func(w *Warp) {
		if old := w.CASGlobalU64(word, 10, 20); old != 10 {
			t.Errorf("first CAS old = %d", old)
		}
		if old := w.CASGlobalU64(word, 10, 30); old != 20 {
			t.Errorf("failed CAS old = %d", old)
		}
	})
	v, _ := r.g.HostReadU64(word)
	if v != 20 {
		t.Fatalf("word = %d, want 20 (second CAS must fail)", v)
	}
}

func TestAtomicSpinLockMutualExclusion(t *testing.T) {
	// A CAS spin lock among 4 blocks protecting a non-atomic counter:
	// increments must not be lost.
	r := newRig(t)
	lock := r.g.DevMem().Base + 0x300
	ctr := r.g.DevMem().Base + 0x308
	r.run(t, 4, 1, func(w *Warp) {
		for i := 0; i < 5; i++ {
			for w.CASGlobalU64(lock, 0, 1) != 0 {
				w.Exec(2)
			}
			v := w.LdGlobalU64(ctr)
			w.Exec(2)
			w.StGlobalU64(ctr, v+1)
			w.StGlobalU64(lock, 0)
		}
	})
	v, _ := r.g.HostReadU64(ctr)
	if v != 20 {
		t.Fatalf("lock-protected counter = %d, want 20", v)
	}
}

func TestMultiWarpBlockLaunch(t *testing.T) {
	r := newRig(t)
	// 100 threads = 4 warps: 32+32+32+4 lanes.
	var lanes []int
	var warpIDs []int
	r.run(t, 1, 1, func(w *Warp) {}) // warm the rig helper
	done := r.g.Launch(KernelConfig{Blocks: 1, ThreadsPerBlock: 100}, func(w *Warp) {
		lanes = append(lanes, w.Lanes)
		warpIDs = append(warpIDs, w.WarpID)
	})
	r.e.Run()
	if !done.Done() {
		t.Fatal("kernel stuck")
	}
	if len(lanes) != 4 {
		t.Fatalf("warps = %d, want 4", len(lanes))
	}
	total := 0
	for _, l := range lanes {
		total += l
	}
	if total != 100 {
		t.Fatalf("total lanes = %d, want 100", total)
	}
	seen := map[int]bool{}
	for _, id := range warpIDs {
		seen[id] = true
	}
	if len(seen) != 4 {
		t.Fatalf("warp IDs not distinct: %v", warpIDs)
	}
}

func TestSyncThreadsBarrier(t *testing.T) {
	r := newRig(t)
	// Warp 0 dawdles; no warp may pass the barrier before it arrives.
	var exits []sim.Time
	done := r.g.Launch(KernelConfig{Blocks: 1, ThreadsPerBlock: 128}, func(w *Warp) {
		if w.WarpID == 0 {
			w.Proc().Sleep(50 * sim.Microsecond)
		}
		w.SyncThreads()
		exits = append(exits, w.Now())
	})
	r.e.Run()
	if !done.Done() {
		t.Fatal("barrier deadlocked")
	}
	for _, e := range exits {
		if e < sim.Time(50*sim.Microsecond) {
			t.Fatalf("a warp passed the barrier at %v, before the slow warp arrived", e)
		}
	}
}

func TestSyncThreadsRepeats(t *testing.T) {
	r := newRig(t)
	count := 0
	done := r.g.Launch(KernelConfig{Blocks: 2, ThreadsPerBlock: 96}, func(w *Warp) {
		for i := 0; i < 10; i++ {
			w.SyncThreads()
		}
		count++
	})
	r.e.Run()
	if !done.Done() {
		t.Fatal("repeated barriers deadlocked")
	}
	if count != 6 { // 2 blocks × 3 warps
		t.Fatalf("finished warps = %d, want 6", count)
	}
}

func TestSharedMemoryRoundTripAndIsolation(t *testing.T) {
	r := newRig(t)
	vals := make([]uint64, 2)
	done := r.g.Launch(KernelConfig{Blocks: 2, ThreadsPerBlock: 32, SharedBytes: 256}, func(w *Warp) {
		// Each block writes its own value; blocks must not alias.
		w.StSharedU64(0, uint64(100+w.Block))
		w.SyncThreads()
		vals[w.Block] = w.LdSharedU64(0)
	})
	r.e.Run()
	if !done.Done() {
		t.Fatal("kernel stuck")
	}
	if vals[0] != 100 || vals[1] != 101 {
		t.Fatalf("shared values = %v (blocks alias?)", vals)
	}
}

func TestSharedReductionAcrossWarps(t *testing.T) {
	r := newRig(t)
	var result uint64
	done := r.g.Launch(KernelConfig{Blocks: 1, ThreadsPerBlock: 256, SharedBytes: 64}, func(w *Warp) {
		w.AtomicAddSharedU64(0, uint64(w.WarpID+1)) // 1+2+...+8 = 36
		w.SyncThreads()
		if w.WarpID == 0 {
			result = w.LdSharedU64(0)
		}
	})
	r.e.Run()
	if !done.Done() {
		t.Fatal("kernel stuck")
	}
	if result != 36 {
		t.Fatalf("shared reduction = %d, want 36", result)
	}
}

func TestSharedOutOfBoundsPanics(t *testing.T) {
	r := newRig(t)
	panicked := false
	done := r.g.Launch(KernelConfig{Blocks: 1, ThreadsPerBlock: 1, SharedBytes: 16}, func(w *Warp) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		w.StSharedU64(12, 1) // [12,20) crosses the 16-byte scratchpad
	})
	r.e.Run()
	_ = done
	if !panicked {
		t.Fatal("out-of-bounds shared access accepted")
	}
}

func TestSharedFasterThanGlobal(t *testing.T) {
	r := newRig(t)
	base := r.g.DevMem().Base
	var tShared, tGlobal sim.Duration
	done := r.g.Launch(KernelConfig{Blocks: 1, ThreadsPerBlock: 1, SharedBytes: 64}, func(w *Warp) {
		w.StSharedU64(0, 1)
		w.StGlobalU64(base, 1)
		w.LdGlobalU64(base) // warm L2
		s := w.Now()
		for i := 0; i < 100; i++ {
			w.LdSharedU64(0)
		}
		tShared = w.Now().Sub(s)
		s = w.Now()
		for i := 0; i < 100; i++ {
			w.LdGlobalU64(base)
		}
		tGlobal = w.Now().Sub(s)
	})
	r.e.Run()
	_ = done
	if tShared >= tGlobal {
		t.Fatalf("shared (%v) not faster than L2-resident global (%v)", tShared, tGlobal)
	}
}

func TestCopyEngineD2HAndH2D(t *testing.T) {
	r := newRig(t)
	dev := r.g.DevMem().Base + 0x1000
	host := memspace.Addr(0x4000)
	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if err := r.g.HostWrite(dev, payload); err != nil {
		t.Fatal(err)
	}
	r.e.Spawn("driver", func(p *sim.Proc) {
		r.g.Copy(p, host, dev, len(payload))        // D2H
		r.g.Copy(p, dev+0x4000, host, len(payload)) // H2D
	})
	r.e.Run()
	got := make([]byte, len(payload))
	if err := r.f.Space().Read(host, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("D2H corrupt at %d", i)
		}
	}
	if err := r.g.HostRead(dev+0x4000, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("H2D corrupt at %d", i)
		}
	}
}

func TestCopyDirectionsOverlap(t *testing.T) {
	r := newRig(t)
	dev := r.g.DevMem().Base
	const n = 1 << 20
	single := func() sim.Duration {
		rr := newRig(t)
		var took sim.Duration
		rr.e.Spawn("d", func(p *sim.Proc) {
			s := p.Now()
			rr.g.Copy(p, memspace.Addr(0x10000), rr.g.DevMem().Base, n)
			took = p.Now().Sub(s)
		})
		rr.e.Run()
		return took
	}()
	var both sim.Duration
	r.e.Spawn("d", func(p *sim.Proc) {
		s := p.Now()
		d2h := r.g.CopyAsync(memspace.Addr(0x10000), dev, n)
		h2d := r.g.CopyAsync(dev+0x100000, memspace.Addr(0x200000), n)
		d2h.Wait(p)
		h2d.Wait(p)
		both = p.Now().Sub(s)
	})
	r.e.Run()
	// Opposite directions run on separate engines: far less than 2x.
	if float64(both) > 1.5*float64(single) {
		t.Fatalf("directions serialized: single=%v both=%v", single, both)
	}
}

func TestCopySameDirectionSerializes(t *testing.T) {
	r := newRig(t)
	dev := r.g.DevMem().Base
	const n = 1 << 20
	var first, second sim.Time
	r.e.Spawn("d", func(p *sim.Proc) {
		a := r.g.CopyAsync(memspace.Addr(0x10000), dev, n)
		b := r.g.CopyAsync(memspace.Addr(0x200000), dev+0x100000, n)
		a.Wait(p)
		first = a.At()
		b.Wait(p)
		second = b.At()
	})
	r.e.Run()
	if second < first+sim.Time(100*sim.Microsecond) {
		t.Fatalf("same-direction copies overlapped: %v then %v", first, second)
	}
}

func TestCopyRejectsSameMemory(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("device-to-device copy accepted")
		}
	}()
	r.g.CopyAsync(r.g.DevMem().Base, r.g.DevMem().Base+0x1000, 64)
}

func TestH2DCopyWakesDevicePollers(t *testing.T) {
	// A kernel polling device memory must observe data landed by an H2D
	// copy (the copy invalidates L2 and signals the pollers).
	r := newRig(t)
	flag := r.g.DevMem().Base + 0x9000
	host := memspace.Addr(0x8000)
	if err := r.f.Space().WriteU64(host, 0x1234); err != nil {
		t.Fatal(err)
	}
	r.e.SpawnAt(50_000_000, "driver", func(p *sim.Proc) {
		r.g.Copy(p, flag, host, 8)
	})
	var saw uint64
	r.run(t, 1, 1, func(w *Warp) {
		saw = w.PollGlobalU64(flag, 0x1234)
	})
	if saw != 0x1234 {
		t.Fatal("poller missed the H2D copy")
	}
}
