package gpusim

// L2 is a sectored, set-associative tag store with LRU replacement. It
// tracks presence only — data always lives in the node address space, so
// the cache can never serve stale bytes; it exists for timing and for the
// hit/miss counters the paper analyzes. Inbound PCIe writes invalidate
// matching sectors (the hardware keeps L2 coherent with DMA), which is
// exactly what makes device-memory polling work: polls hit in L2 until the
// NIC delivers data, then one miss observes the new value.
type L2 struct {
	sectorBytes uint64
	numSets     uint64
	assoc       int
	sets        [][]l2line
	tick        uint64
}

type l2line struct {
	tag   uint64 // sector index (addr / sectorBytes)
	valid bool
	lru   uint64
}

// NewL2 builds a cache of the given capacity, associativity and sector
// size (bytes). Capacity must be a multiple of assoc*sector.
func NewL2(capacity, assoc, sector int) *L2 {
	if capacity <= 0 || assoc <= 0 || sector <= 0 {
		panic("gpusim: invalid L2 geometry")
	}
	numSets := capacity / (assoc * sector)
	if numSets < 1 {
		numSets = 1
	}
	sets := make([][]l2line, numSets)
	for i := range sets {
		sets[i] = make([]l2line, assoc)
	}
	return &L2{
		sectorBytes: uint64(sector),
		numSets:     uint64(numSets),
		assoc:       assoc,
		sets:        sets,
	}
}

// Access looks up the sector containing addr, allocating on miss (both
// reads and writes allocate, as on Kepler-class parts). It reports whether
// the access hit.
func (c *L2) Access(addr uint64, write bool) bool {
	sector := addr / c.sectorBytes
	set := c.sets[sector%c.numSets]
	c.tick++
	for i := range set {
		if set[i].valid && set[i].tag == sector {
			set[i].lru = c.tick
			return true
		}
	}
	// Miss: fill the LRU way.
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = l2line{tag: sector, valid: true, lru: c.tick}
	return false
}

// InvalidateRange drops every sector overlapping [addr, addr+n).
func (c *L2) InvalidateRange(addr uint64, n int) {
	if n <= 0 {
		return
	}
	first := addr / c.sectorBytes
	last := (addr + uint64(n) - 1) / c.sectorBytes
	for s := first; s <= last; s++ {
		set := c.sets[s%c.numSets]
		for i := range set {
			if set[i].valid && set[i].tag == s {
				set[i].valid = false
			}
		}
	}
}

// Flush invalidates the whole cache.
func (c *L2) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}
