package gpusim

import (
	"testing"
	"testing/quick"
)

// runWarp executes body on a single warp with the given lane count.
func runWarp(t *testing.T, lanes int, body func(w *Warp)) {
	t.Helper()
	r := newRig(t)
	done := r.g.Launch(KernelConfig{Blocks: 1, ThreadsPerBlock: lanes}, body)
	r.e.Run()
	if !done.Done() {
		t.Fatal("warp stuck")
	}
}

func TestShflDown(t *testing.T) {
	runWarp(t, 8, func(w *Warp) {
		vals := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
		out := w.ShflDownU64(vals, 2)
		want := []uint64{2, 3, 4, 5, 6, 7, 6, 7}
		for i := range want {
			if out[i] != want[i] {
				t.Errorf("lane %d = %d, want %d", i, out[i], want[i])
			}
		}
	})
}

func TestWarpReduceAdd(t *testing.T) {
	runWarp(t, 32, func(w *Warp) {
		vals := make([]uint64, 32)
		var want uint64
		for i := range vals {
			vals[i] = uint64(i * 3)
			want += vals[i]
		}
		if got := w.WarpReduceAddU64(vals); got != want {
			t.Errorf("reduce = %d, want %d", got, want)
		}
	})
}

// Property: warp reduction equals the straight sum for any lane count and
// values.
func TestWarpReduceProperty(t *testing.T) {
	r := newRig(t)
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		vals := make([]uint64, len(raw))
		var want uint64
		for i, v := range raw {
			vals[i] = uint64(v)
			want += uint64(v)
		}
		got := ^uint64(0)
		done := r.g.Launch(KernelConfig{Blocks: 1, ThreadsPerBlock: len(raw)}, func(w *Warp) {
			got = w.WarpReduceAddU64(vals)
		})
		r.e.Run()
		return done.Done() && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBallotAnyAllPopc(t *testing.T) {
	runWarp(t, 4, func(w *Warp) {
		pred := []bool{true, false, true, false}
		if m := w.Ballot(pred); m != 0b0101 {
			t.Errorf("ballot = %#b", m)
		}
		if !w.Any(pred) {
			t.Error("Any false")
		}
		if w.All(pred) {
			t.Error("All true")
		}
		if n := w.PopcLanes(pred); n != 2 {
			t.Errorf("popc = %d", n)
		}
		all := []bool{true, true, true, true}
		if !w.All(all) {
			t.Error("All(all) false")
		}
		none := []bool{false, false, false, false}
		if w.Any(none) {
			t.Error("Any(none) true")
		}
	})
}

func TestReduceCostLogarithmic(t *testing.T) {
	// The shuffle ladder costs ~2*log2(width) instructions, far below a
	// 32-step serial sum.
	r := newRig(t)
	vals := make([]uint64, 32)
	done := r.g.Launch(KernelConfig{Blocks: 1, ThreadsPerBlock: 32}, func(w *Warp) {
		r.g.ResetCounters()
		w.WarpReduceAddU64(vals)
	})
	r.e.Run()
	if !done.Done() {
		t.Fatal("stuck")
	}
	instr := r.g.Counters().InstrExecuted
	if instr < 8 || instr > 16 {
		t.Fatalf("warp reduce = %d instructions, want ~10 (2*log2(32))", instr)
	}
}
