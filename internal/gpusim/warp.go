package gpusim

import (
	"encoding/binary"
	"fmt"

	"putget/internal/memspace"
	"putget/internal/sim"
)

// Warp is the execution context device code runs against: one warp
// (≤32 threads executing in lockstep) pinned to an SM. Every method
// charges issue time on the SM, adds memory latency where due, and bumps
// the GPU performance counters at the granularities nvprof reports.
//
// Methods must only be called from the warp's own process (inside the
// kernel body passed to Launch).
type Warp struct {
	g      *GPU
	p      *sim.Proc
	sm     int
	Block  int // block index within the grid
	WarpID int // warp index within the block
	Lanes  int // active threads (1 for the paper's single-thread blocks)
	block  *Block
}

// BlockState returns the warp's block (barrier, shared memory); nil only
// for warps constructed outside Launch.
func (w *Warp) BlockState() *Block { return w.block }

// GPU returns the device this warp runs on.
func (w *Warp) GPU() *GPU { return w.g }

// Proc exposes the underlying process (for integrating with sim waits).
func (w *Warp) Proc() *sim.Proc { return w.p }

// Now returns current virtual time.
func (w *Warp) Now() sim.Time { return w.p.Now() }

// issue books n instructions of issue time on this warp's SM and counts
// them. Co-resident warps serialize on the SM's issue port, which is the
// first-order effect of warp scheduling for our small grids.
func (w *Warp) issue(n int) {
	if n <= 0 {
		return
	}
	w.g.ctr.InstrExecuted += uint64(n)
	share := w.g.cfg.IssueShare
	if share <= 0 {
		share = 8
	}
	// The warp's own progress is bounded by its dependent-chain latency;
	// the SM issue port is only occupied for 1/share of that, so up to
	// `share` co-resident warps overlap in each other's pipeline bubbles.
	latency := sim.Duration(n) * w.g.cfg.IssueCost
	occDone := w.g.smIssue[w.sm].ReserveDuration(latency / sim.Duration(share))
	target := w.p.Now().Add(latency)
	if occDone > target {
		target = occDone
	}
	w.p.SleepUntil(target)
}

// Exec executes n dependent ALU/control instructions.
func (w *Warp) Exec(n int) { w.issue(n) }

// SyncWarp is a warp-level barrier; with lockstep lanes it costs one
// instruction.
func (w *Warp) SyncWarp() { w.issue(1) }

// acquirePCIe claims one of the GPU's outstanding-PCIe-operation slots;
// returns a release func (no-op when unlimited).
func (w *Warp) acquirePCIe() func() {
	if w.g.pcieSlots == nil {
		return func() {}
	}
	w.g.pcieSlots.Acquire(w.p)
	return w.g.pcieSlots.Release
}

// sectors returns the number of 32-byte transactions for n contiguous
// bytes.
func sectors(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64((n + 31) / 32)
}

// ---- device (global) memory: through L2 ----

// ldGlobal performs a coalesced warp load of n contiguous bytes.
func (w *Warp) ldGlobal(addr memspace.Addr, buf []byte) {
	w.g.ctr.MemAccesses++
	w.g.ctr.L2ReadRequests += sectors(len(buf))
	w.issue(1)
	hit := true
	base := uint64(addr) &^ 31
	end := uint64(addr) + uint64(len(buf))
	for s := base; s < end; s += 32 {
		if !w.g.l2.Access(s, false) {
			hit = false
			w.g.ctr.L2ReadMisses++
		} else {
			w.g.ctr.L2ReadHits++
		}
	}
	// Snapshot the data at probe time: a hit returns the cached epoch's
	// value even if a DMA write lands during the access latency. (The
	// write invalidates the sector, so the next access misses and reads
	// fresh data — exactly how device-memory polling behaves on hardware.)
	if err := w.g.f.Space().Read(addr, buf); err != nil {
		panic(fmt.Sprintf("gpusim: %s: %v", w.g.cfg.Name, err))
	}
	lat := w.g.cfg.L2HitLatency
	if !hit {
		lat += w.g.cfg.DevMemLatency
	}
	w.p.Sleep(lat)
}

// stGlobal performs a coalesced warp store of n contiguous bytes
// (write-through functionally; fire-and-forget timing beyond issue).
func (w *Warp) stGlobal(addr memspace.Addr, data []byte) {
	w.g.ctr.MemAccesses++
	w.g.ctr.L2WriteRequests += sectors(len(data))
	w.issue(1)
	base := uint64(addr) &^ 31
	end := uint64(addr) + uint64(len(data))
	for s := base; s < end; s += 32 {
		w.g.l2.Access(s, true)
	}
	if err := w.g.f.Space().Write(addr, data); err != nil {
		panic(fmt.Sprintf("gpusim: %s: %v", w.g.cfg.Name, err))
	}
}

// LdGlobalU64 loads a 64-bit word from device memory.
func (w *Warp) LdGlobalU64(addr memspace.Addr) uint64 {
	w.mustDevice(addr, "LdGlobalU64")
	w.g.ctr.Globmem64Reads++
	var b [8]byte
	w.ldGlobal(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// StGlobalU64 stores a 64-bit word to device memory.
func (w *Warp) StGlobalU64(addr memspace.Addr, v uint64) {
	w.mustDevice(addr, "StGlobalU64")
	w.g.ctr.Globmem64Writes++
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.stGlobal(addr, b[:])
}

// LdGlobalU64Coalesced loads Lanes consecutive 64-bit words starting at
// addr as one warp instruction (each lane one word).
func (w *Warp) LdGlobalU64Coalesced(addr memspace.Addr) []uint64 {
	w.mustDevice(addr, "LdGlobalU64Coalesced")
	w.g.ctr.Globmem64Reads += uint64(w.Lanes)
	buf := make([]byte, 8*w.Lanes)
	w.ldGlobal(addr, buf)
	out := make([]uint64, w.Lanes)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return out
}

// StGlobalU64Coalesced stores vals (one per lane, len ≤ Lanes) to
// consecutive words starting at addr as one warp instruction.
func (w *Warp) StGlobalU64Coalesced(addr memspace.Addr, vals []uint64) {
	w.mustDevice(addr, "StGlobalU64Coalesced")
	if len(vals) > w.Lanes {
		panic("gpusim: more values than lanes")
	}
	w.g.ctr.Globmem64Writes += uint64(len(vals))
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], v)
	}
	w.stGlobal(addr, buf)
}

// FillGlobal writes n bytes of payload into device memory, modelling a
// coalesced warp copy loop (used by examples to produce data in-kernel).
func (w *Warp) FillGlobal(addr memspace.Addr, data []byte) {
	w.mustDevice(addr, "FillGlobal")
	per := 8 * w.Lanes
	for off := 0; off < len(data); off += per {
		end := off + per
		if end > len(data) {
			end = len(data)
		}
		w.g.ctr.Globmem64Writes += uint64((end - off + 7) / 8)
		w.stGlobal(addr+memspace.Addr(off), data[off:end])
	}
}

// ---- system memory and MMIO: across PCIe, uncached ----

// LdSysU64 loads a 64-bit word from host system memory (or a BAR). The
// warp stalls for the full PCIe round trip; the transaction also occupies
// the GPU's egress link, which is how notification polling pressures the
// fabric in the paper's analysis.
func (w *Warp) LdSysU64(addr memspace.Addr) uint64 {
	w.mustNotDevice(addr, "LdSysU64")
	w.g.ctr.MemAccesses++
	w.g.ctr.SysmemReads32B++
	w.g.ctr.L2ReadRequests++ // traverses L2, never hits (uncached)
	w.g.ctr.L2ReadMisses++
	w.issue(1)
	release := w.acquirePCIe()
	w.p.Sleep(w.g.cfg.PCIeOpOverhead)
	var b [8]byte
	w.g.f.Read(w.p, w.g.ep, addr, b[:])
	release()
	return binary.LittleEndian.Uint64(b[:])
}

// LdSysU32 loads a 32-bit word from system memory.
func (w *Warp) LdSysU32(addr memspace.Addr) uint32 {
	w.mustNotDevice(addr, "LdSysU32")
	w.g.ctr.MemAccesses++
	w.g.ctr.SysmemReads32B++
	w.g.ctr.L2ReadRequests++
	w.g.ctr.L2ReadMisses++
	w.issue(1)
	release := w.acquirePCIe()
	w.p.Sleep(w.g.cfg.PCIeOpOverhead)
	var b [4]byte
	w.g.f.Read(w.p, w.g.ep, addr, b[:])
	release()
	return binary.LittleEndian.Uint32(b[:])
}

// StSysU64 posts a 64-bit store to system memory or MMIO. The warp pays
// issue plus LSU overhead; delivery is asynchronous (posted write).
func (w *Warp) StSysU64(addr memspace.Addr, v uint64) {
	w.mustNotDevice(addr, "StSysU64")
	w.g.ctr.MemAccesses++
	w.g.ctr.SysmemWrites32B++
	w.g.ctr.L2WriteRequests++
	w.issue(1)
	release := w.acquirePCIe()
	w.p.Sleep(w.g.cfg.PCIeOpOverhead)
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	w.g.f.PostedWrite(w.g.ep, addr, b)
	release()
}

// StSysU32 posts a 32-bit store to system memory or MMIO.
func (w *Warp) StSysU32(addr memspace.Addr, v uint32) {
	w.mustNotDevice(addr, "StSysU32")
	w.g.ctr.MemAccesses++
	w.g.ctr.SysmemWrites32B++
	w.g.ctr.L2WriteRequests++
	w.issue(1)
	release := w.acquirePCIe()
	w.p.Sleep(w.g.cfg.PCIeOpOverhead)
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	w.g.f.PostedWrite(w.g.ep, addr, b)
	release()
}

// StSysCoalesced posts data (multiple of 8 bytes, ≤ Lanes words) as one
// warp store instruction — the thread-collective descriptor-write
// optimization the paper's claims call for. Transactions are counted per
// 32-byte sector instead of per word.
func (w *Warp) StSysCoalesced(addr memspace.Addr, data []byte) {
	w.mustNotDevice(addr, "StSysCoalesced")
	if len(data) > 8*w.Lanes {
		panic("gpusim: StSysCoalesced wider than warp")
	}
	w.g.ctr.MemAccesses++
	w.g.ctr.SysmemWrites32B += sectors(len(data))
	w.g.ctr.L2WriteRequests += sectors(len(data))
	w.issue(1)
	release := w.acquirePCIe()
	w.p.Sleep(w.g.cfg.PCIeOpOverhead)
	cp := append([]byte(nil), data...)
	w.g.f.PostedWrite(w.g.ep, addr, cp)
	release()
}

// ThreadfenceSystem orders this warp's prior stores against all observers
// (__threadfence_system): it blocks until posted writes have drained.
func (w *Warp) ThreadfenceSystem() {
	w.issue(1)
	w.g.f.FlushWrites(w.p, w.g.ep)
}

// ---- guards ----

func (w *Warp) mustDevice(addr memspace.Addr, op string) {
	if !w.g.isDevice(addr) {
		panic(fmt.Sprintf("gpusim: %s: %s at %#x is not device memory", w.g.cfg.Name, op, uint64(addr)))
	}
}

func (w *Warp) mustNotDevice(addr memspace.Addr, op string) {
	if w.g.isDevice(addr) {
		panic(fmt.Sprintf("gpusim: %s: %s at %#x targets device memory; use the global-memory ops", w.g.cfg.Name, op, uint64(addr)))
	}
}

// PollGlobalU64Masked spins on a device-memory word until (value & mask)
// == want, returning the full word that satisfied the condition. It is
// semantically identical to a LdGlobalU64 spin loop — same instruction,
// L2 and access counters, same observation times — but between inbound
// writes it parks on the GPU's inbound-write signal and bulk-accounts the
// probes that would have happened, keeping simulation cost independent of
// how long the wait is.
//
// The per-probe cost model is one load instruction plus four address/
// compare/branch instructions, one L2 hit, and the configured spin-loop
// stall. (While spinning, the polled sector is L2 resident by
// construction; only the probes after an invalidation miss.)
func (w *Warp) PollGlobalU64Masked(addr memspace.Addr, want, mask uint64) uint64 {
	w.mustDevice(addr, "PollGlobalU64Masked")
	var span sim.SpanID
	if w.g.e.Observing() {
		span = w.g.e.SpanOpen(w.g.cfg.Name, "poll.mem")
	}
	probe := 5*w.g.cfg.IssueCost + w.g.cfg.L2HitLatency + w.g.cfg.PollLoopStall
	for {
		epoch := w.g.inboundEpoch
		v := w.LdGlobalU64(addr)
		w.Exec(4)
		if v&mask == want {
			w.g.e.SpanClose(span)
			return v
		}
		w.p.Sleep(w.g.cfg.PollLoopStall)
		if w.g.inboundEpoch != epoch {
			// A write landed while we were probing; re-probe immediately.
			continue
		}
		start := w.p.Now()
		w.g.inboundSig.Wait(w.p)
		// Account the probes that would have run during the wait.
		skipped := uint64(w.p.Now().Sub(start) / probe)
		w.g.ctr.InstrExecuted += 5 * skipped
		w.g.ctr.MemAccesses += skipped
		w.g.ctr.Globmem64Reads += skipped
		w.g.ctr.L2ReadRequests += skipped
		w.g.ctr.L2ReadHits += skipped
	}
}

// PollGlobalU64 spins until the device-memory word equals want.
func (w *Warp) PollGlobalU64(addr memspace.Addr, want uint64) uint64 {
	return w.PollGlobalU64Masked(addr, want, ^uint64(0))
}

// PollGlobalU64MaskedTimeout is PollGlobalU64Masked with a deadline: it
// returns the satisfying word and true, or the last observed word and
// false once `timeout` of virtual time has elapsed. The cost model is a
// sleep-probe loop (probe cadence identical to the unbounded poll), which
// is what a kernel that must not spin forever actually compiles to.
func (w *Warp) PollGlobalU64MaskedTimeout(addr memspace.Addr, want, mask uint64, timeout sim.Duration) (uint64, bool) {
	w.mustDevice(addr, "PollGlobalU64MaskedTimeout")
	var span sim.SpanID
	if w.g.e.Observing() {
		span = w.g.e.SpanOpen(w.g.cfg.Name, "poll.mem")
	}
	probe := 5*w.g.cfg.IssueCost + w.g.cfg.L2HitLatency + w.g.cfg.PollLoopStall
	deadline := w.p.Now().Add(timeout)
	var v uint64
	for {
		epoch := w.g.inboundEpoch
		v = w.LdGlobalU64(addr)
		w.Exec(4)
		if v&mask == want {
			w.g.e.SpanClose(span)
			return v, true
		}
		if w.p.Now() >= deadline {
			w.g.e.SpanClose(span)
			return v, false
		}
		w.p.Sleep(w.g.cfg.PollLoopStall)
		if w.g.inboundEpoch != epoch {
			continue
		}
		// Park until the next inbound write or the deadline, whichever is
		// first, then bulk-account the probes that would have run.
		start := w.p.Now()
		if deadline.Sub(start) <= probe {
			if deadline > start {
				w.p.SleepUntil(deadline)
			}
			w.g.e.SpanClose(span)
			return v, false
		}
		w.g.inboundSig.WaitUntil(w.p, deadline)
		skipped := uint64(w.p.Now().Sub(start) / probe)
		w.g.ctr.InstrExecuted += 5 * skipped
		w.g.ctr.MemAccesses += skipped
		w.g.ctr.Globmem64Reads += skipped
		w.g.ctr.L2ReadRequests += skipped
		w.g.ctr.L2ReadHits += skipped
	}
}

// LdSysBytes reads n contiguous bytes from system memory as independent
// loads issued back-to-back: one instruction and one 32-byte transaction
// per sector, but a single PCIe round trip (memory-level parallelism).
func (w *Warp) LdSysBytes(addr memspace.Addr, buf []byte) {
	w.mustNotDevice(addr, "LdSysBytes")
	n := sectors(len(buf))
	w.g.ctr.MemAccesses++
	w.g.ctr.SysmemReads32B += n
	w.g.ctr.L2ReadRequests += n
	w.g.ctr.L2ReadMisses += n
	w.issue(1)
	release := w.acquirePCIe()
	w.p.Sleep(w.g.cfg.PCIeOpOverhead)
	w.g.f.Read(w.p, w.g.ep, addr, buf)
	release()
}

// LdGlobalBytes reads n contiguous bytes from device memory as one
// coalesced access.
func (w *Warp) LdGlobalBytes(addr memspace.Addr, buf []byte) {
	w.mustDevice(addr, "LdGlobalBytes")
	w.g.ctr.Globmem64Reads += uint64((len(buf) + 7) / 8)
	w.ldGlobal(addr, buf)
}

// AtomicAddGlobalU64 performs an atomic fetch-and-add on a device-memory
// word. Atomics execute at the L2 (they bypass the SM caches), so the
// cost is one instruction plus an L2 round trip regardless of hit state.
func (w *Warp) AtomicAddGlobalU64(addr memspace.Addr, delta uint64) uint64 {
	w.mustDevice(addr, "AtomicAddGlobalU64")
	w.g.ctr.MemAccesses++
	w.g.ctr.Globmem64Reads++
	w.g.ctr.Globmem64Writes++
	w.g.ctr.L2ReadRequests++
	w.g.ctr.L2WriteRequests++
	w.g.l2.Access(uint64(addr), true)
	w.issue(1)
	var b [8]byte
	if err := w.g.f.Space().Read(addr, b[:]); err != nil {
		panic(fmt.Sprintf("gpusim: %s: %v", w.g.cfg.Name, err))
	}
	old := binary.LittleEndian.Uint64(b[:])
	binary.LittleEndian.PutUint64(b[:], old+delta)
	if err := w.g.f.Space().Write(addr, b[:]); err != nil {
		panic(fmt.Sprintf("gpusim: %s: %v", w.g.cfg.Name, err))
	}
	// The L2 atomic unit serializes same-address atomics; approximate
	// with the hit latency plus a fixed atomic-unit occupancy.
	w.p.Sleep(w.g.cfg.L2HitLatency + 4*w.g.cfg.IssueCost)
	return old
}

// CASGlobalU64 performs an atomic compare-and-swap on a device-memory
// word, returning the previous value.
func (w *Warp) CASGlobalU64(addr memspace.Addr, expect, desired uint64) uint64 {
	w.mustDevice(addr, "CASGlobalU64")
	w.g.ctr.MemAccesses++
	w.g.ctr.Globmem64Reads++
	w.g.ctr.L2ReadRequests++
	w.g.l2.Access(uint64(addr), true)
	w.issue(1)
	var b [8]byte
	if err := w.g.f.Space().Read(addr, b[:]); err != nil {
		panic(fmt.Sprintf("gpusim: %s: %v", w.g.cfg.Name, err))
	}
	old := binary.LittleEndian.Uint64(b[:])
	if old == expect {
		w.g.ctr.Globmem64Writes++
		w.g.ctr.L2WriteRequests++
		binary.LittleEndian.PutUint64(b[:], desired)
		if err := w.g.f.Space().Write(addr, b[:]); err != nil {
			panic(fmt.Sprintf("gpusim: %s: %v", w.g.cfg.Name, err))
		}
	}
	w.p.Sleep(w.g.cfg.L2HitLatency + 4*w.g.cfg.IssueCost)
	return old
}
