package gpusim

import "math/bits"

// Warp-level primitives (__shfl_down_sync, __ballot_sync, warp
// reductions): register-to-register exchanges that cost issue time only —
// no memory traffic. Lane values are modelled as explicit slices, one
// element per active lane.

// ShflDownU64 shifts each lane's value down by delta lanes (lane i
// receives lane i+delta's value; upper lanes keep their own, as the
// hardware intrinsic does out-of-range). One warp instruction.
func (w *Warp) ShflDownU64(vals []uint64, delta int) []uint64 {
	w.issue(1)
	out := make([]uint64, len(vals))
	for i := range vals {
		j := i + delta
		if j < len(vals) {
			out[i] = vals[j]
		} else {
			out[i] = vals[i]
		}
	}
	return out
}

// WarpReduceAddU64 sums one value per lane using the log2(width) shuffle
// ladder; every lane would hold partial results, lane 0's total is
// returned.
func (w *Warp) WarpReduceAddU64(vals []uint64) uint64 {
	cur := append([]uint64(nil), vals...)
	for delta := nextPow2(len(cur)) / 2; delta > 0; delta /= 2 {
		shifted := w.ShflDownU64(cur, delta)
		w.issue(1) // the add
		for i := range cur {
			if i+delta < len(cur) {
				cur[i] += shifted[i]
			}
		}
	}
	if len(cur) == 0 {
		return 0
	}
	return cur[0]
}

// Ballot returns a bitmask of the lanes whose predicate is true. One warp
// instruction.
func (w *Warp) Ballot(pred []bool) uint32 {
	w.issue(1)
	var mask uint32
	for i, p := range pred {
		if p {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// Any reports whether any lane's predicate is true (__any_sync).
func (w *Warp) Any(pred []bool) bool { return w.Ballot(pred) != 0 }

// All reports whether every lane's predicate is true (__all_sync).
func (w *Warp) All(pred []bool) bool {
	full := uint32(1)<<uint(len(pred)) - 1
	return w.Ballot(pred) == full
}

// PopcLanes counts the true lanes (ballot + popc).
func (w *Warp) PopcLanes(pred []bool) int {
	m := w.Ballot(pred)
	w.issue(1)
	return bits.OnesCount32(m)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
