package gpusim

import (
	"encoding/binary"
	"fmt"

	"putget/internal/sim"
)

// Block is the shared state of one thread block: up to 32 warps, a
// barrier, and a software-managed shared-memory scratchpad. The paper's
// benchmarks use single-warp blocks, but applications built on the API
// (reductions, stencils) want the full CUDA block model.
type Block struct {
	g      *GPU
	idx    int
	warps  int
	shared []byte

	arrived int
	epoch   int
	barrier *sim.Signal
}

// SharedLatency is the scratchpad access latency (far below L2).
const SharedLatency = 25 * sim.Nanosecond

// Index returns the block index within the grid.
func (b *Block) Index() int { return b.idx }

// Warps returns the number of warps in the block.
func (b *Block) Warps() int { return b.warps }

// SharedBytes returns the scratchpad capacity.
func (b *Block) SharedBytes() int { return len(b.shared) }

// SyncThreads is the __syncthreads barrier: every warp of the block must
// arrive before any proceeds.
func (w *Warp) SyncThreads() {
	b := w.block
	if b == nil || b.warps == 1 {
		w.issue(1)
		return
	}
	w.issue(1)
	b.arrived++
	if b.arrived == b.warps {
		b.arrived = 0
		b.epoch++
		b.barrier.Broadcast()
		return
	}
	b.barrier.Wait(w.p)
}

// LdSharedU64 loads a 64-bit word from block shared memory.
func (w *Warp) LdSharedU64(off int) uint64 {
	b := w.mustBlockShared(off, 8, "LdSharedU64")
	w.g.ctr.InstrExecuted++
	w.g.ctr.MemAccesses++
	done := w.g.smIssue[w.sm].ReserveDuration(w.g.cfg.IssueCost / 8)
	w.p.SleepUntil(done)
	w.p.Sleep(SharedLatency)
	return binary.LittleEndian.Uint64(b.shared[off:])
}

// StSharedU64 stores a 64-bit word to block shared memory.
func (w *Warp) StSharedU64(off int, v uint64) {
	b := w.mustBlockShared(off, 8, "StSharedU64")
	w.g.ctr.InstrExecuted++
	w.g.ctr.MemAccesses++
	done := w.g.smIssue[w.sm].ReserveDuration(w.g.cfg.IssueCost / 8)
	w.p.SleepUntil(done)
	w.p.Sleep(SharedLatency)
	binary.LittleEndian.PutUint64(b.shared[off:], v)
}

// AtomicAddSharedU64 performs a shared-memory fetch-and-add (serialized
// structurally: one warp executes at a time under the engine).
func (w *Warp) AtomicAddSharedU64(off int, delta uint64) uint64 {
	b := w.mustBlockShared(off, 8, "AtomicAddSharedU64")
	w.g.ctr.InstrExecuted++
	w.g.ctr.MemAccesses++
	w.p.Sleep(SharedLatency + 2*w.g.cfg.IssueCost)
	old := binary.LittleEndian.Uint64(b.shared[off:])
	binary.LittleEndian.PutUint64(b.shared[off:], old+delta)
	return old
}

func (w *Warp) mustBlockShared(off, n int, op string) *Block {
	if w.block == nil {
		panic(fmt.Sprintf("gpusim: %s: kernel launched without shared memory", op))
	}
	if off < 0 || off+n > len(w.block.shared) {
		panic(fmt.Sprintf("gpusim: %s: shared access [%d,%d) outside %d-byte scratchpad",
			op, off, off+n, len(w.block.shared)))
	}
	return w.block
}
