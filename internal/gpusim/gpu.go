// Package gpusim models a CUDA-class GPU at the level the paper's analysis
// needs: SMs executing warps with per-instruction issue costs, a sectored
// L2 in front of device memory, uncached system-memory/MMIO accesses that
// cross the PCIe fabric, kernel/stream launch semantics, and nvprof-style
// performance counters.
//
// Device code is written as Go functions against the Warp API; every
// operation charges virtual time and bumps the counters the paper reads,
// so Table I/II-style analyses fall out of running the same kernels the
// latency benchmarks use.
package gpusim

import (
	"fmt"

	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
)

// Config fixes a GPU's microarchitectural and link parameters.
type Config struct {
	Name string

	// SMs is the number of streaming multiprocessors; blocks are assigned
	// round-robin.
	SMs int
	// IssueCost is the effective time to issue one instruction from a
	// dependent single-warp instruction stream (covers pipeline depth and
	// the lack of ILP extraction on in-order SMs).
	IssueCost sim.Duration
	// IssueShare is how many co-resident warps an SM can sustain at full
	// single-warp speed: a dependent instruction stream occupies the
	// issue ports only 1/IssueShare of its latency, and other warps issue
	// in the bubbles. Defaults to 8 when zero.
	IssueShare int
	// L2HitLatency and DevMemLatency split a global access: hit pays the
	// first, miss pays both.
	L2HitLatency  sim.Duration
	DevMemLatency sim.Duration
	// PCIeOpOverhead is the extra LSU/interconnect cost the GPU adds to
	// every system-memory or MMIO access beyond fabric time.
	PCIeOpOverhead sim.Duration
	// PCIeSlots bounds concurrently outstanding system-memory/MMIO
	// operations across all warps (PCIe tag / LSU limits). Many blocks
	// polling notification queues in host memory therefore contend —
	// the effect that keeps GPU-controlled EXTOLL message rates below
	// host-controlled ones in the paper. 0 means unlimited.
	PCIeSlots int
	// PollLoopStall is the extra per-probe stall of a dependent
	// load-compare-branch spin loop (branch resolution, replay) beyond
	// issue cost and L2 latency.
	PollLoopStall sim.Duration
	// LaunchOverhead is charged per kernel launch.
	LaunchOverhead sim.Duration

	// L2Bytes/L2Assoc/L2Sector give the cache geometry (sector in bytes).
	L2Bytes  int
	L2Assoc  int
	L2Sector int

	// DevMemBase/DevMemSize place device memory in the node address space.
	DevMemBase memspace.Addr
	DevMemSize uint64

	// PCIe is the endpoint configuration for the GPU's fabric port. Its
	// ReadRate captures the peer-to-peer read collapse.
	PCIe pcie.EndpointConfig
}

// GPU is one simulated device on a node's PCIe fabric.
type GPU struct {
	cfg Config
	e   *sim.Engine
	f   *pcie.Fabric
	ep  *pcie.Endpoint

	devMem memspace.Region
	l2     *L2
	ctr    Counters

	smIssue   []*sim.Server // per-SM issue serialization
	nextSM    int
	pcieSlots *sim.Resource // nil when unlimited

	// inboundSig/inboundEpoch let polling warps sleep until the next
	// inbound write instead of burning one simulation event per probe;
	// PollGlobalU64Masked accounts the skipped probes exactly.
	inboundSig   *sim.Signal
	inboundEpoch uint64

	// copy engine queues (lazily started by CopyAsync)
	h2dQ, d2hQ *sim.Chan[copyReq]

	defaultStream *Stream
	streamSeq     int // per-GPU: cells in other engines must not share state
}

// New creates a GPU, maps its device memory into the node space, attaches
// its PCIe endpoint and wires DMA-write coherence into the L2.
func New(e *sim.Engine, f *pcie.Fabric, cfg Config) *GPU {
	if cfg.SMs <= 0 {
		panic("gpusim: need at least one SM")
	}
	g := &GPU{cfg: cfg, e: e, f: f}
	ram := memspace.NewRAM(cfg.Name+".devmem", cfg.DevMemSize)
	g.devMem = f.Space().MustMap(cfg.DevMemBase, ram)
	g.ep = f.AddEndpoint(cfg.Name, cfg.PCIe)
	f.ClaimRAM(g.ep, g.devMem)
	g.l2 = NewL2(cfg.L2Bytes, cfg.L2Assoc, cfg.L2Sector)
	g.inboundSig = sim.NewSignal(e)
	g.ep.OnInboundWrite = func(addr memspace.Addr, n int) {
		g.l2.InvalidateRange(uint64(addr), n)
		g.inboundEpoch++
		g.inboundSig.Broadcast()
	}
	g.smIssue = make([]*sim.Server, cfg.SMs)
	for i := range g.smIssue {
		// Rate is irrelevant; issue is booked in durations.
		g.smIssue[i] = sim.NewServer(e, 1)
	}
	if cfg.PCIeSlots > 0 {
		g.pcieSlots = sim.NewResource(e, cfg.PCIeSlots)
	}
	g.defaultStream = g.NewStream()
	return g
}

// Name returns the configured device name.
func (g *GPU) Name() string { return g.cfg.Name }

// Endpoint returns the GPU's PCIe port (the NIC DMA-reads through it).
func (g *GPU) Endpoint() *pcie.Endpoint { return g.ep }

// DevMem returns the device-memory region in the node address space.
func (g *GPU) DevMem() memspace.Region { return g.devMem }

// Counters returns a snapshot of the performance counters.
func (g *GPU) Counters() Counters { return g.ctr }

// ResetCounters zeroes the performance counters (nvprof session start).
func (g *GPU) ResetCounters() { g.ctr = Counters{} }

// L2 exposes the cache for tests and for explicit flushes.
func (g *GPU) L2() *L2 { return g.l2 }

// Engine returns the simulation engine.
func (g *GPU) Engine() *sim.Engine { return g.e }

// isDevice reports whether addr falls in this GPU's device memory.
func (g *GPU) isDevice(addr memspace.Addr) bool { return g.devMem.Contains(addr) }

// ---- host-side (zero-time) helpers for setup and verification ----

// HostWrite copies data into the simulated machine without charging time;
// use for buffer initialization, as cudaMemcpy before timing starts.
func (g *GPU) HostWrite(addr memspace.Addr, data []byte) error {
	if err := g.f.Space().Write(addr, data); err != nil {
		return err
	}
	// Keep the cache honest: DMA'd data replaces whatever was cached.
	g.l2.InvalidateRange(uint64(addr), len(data))
	g.inboundEpoch++
	g.inboundSig.Broadcast()
	return nil
}

// HostRead copies data out of the simulated machine without charging time.
func (g *GPU) HostRead(addr memspace.Addr, data []byte) error {
	return g.f.Space().Read(addr, data)
}

// HostWriteU64 writes one 64-bit word, zero-time.
func (g *GPU) HostWriteU64(addr memspace.Addr, v uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
	return g.HostWrite(addr, b[:])
}

// HostReadU64 reads one 64-bit word, zero-time.
func (g *GPU) HostReadU64(addr memspace.Addr) (uint64, error) {
	return g.f.Space().ReadU64(addr)
}

// ---- streams and kernel launch ----

// Stream orders kernel launches like a CUDA stream: kernels on the same
// stream run back to back; kernels on different streams run concurrently.
// A dedicated runner process dequeues launches and waits for each kernel
// to finish before starting the next.
type Stream struct {
	g  *GPU
	id int
	q  *sim.Chan[launchReq]
}

type launchReq struct {
	cfg  KernelConfig
	body func(w *Warp)
	done *sim.Completion
}

// NewStream creates an asynchronous stream.
func (g *GPU) NewStream() *Stream {
	g.streamSeq++
	s := &Stream{g: g, id: g.streamSeq, q: sim.NewChan[launchReq](g.e)}
	g.e.Spawn(fmt.Sprintf("%s.stream%d", g.cfg.Name, s.id), func(p *sim.Proc) {
		for {
			req := s.q.Recv(p)
			p.Sleep(g.cfg.LaunchOverhead)
			var span sim.SpanID
			if g.e.Observing() {
				span = g.e.SpanOpen(g.cfg.Name, "kernel",
					sim.Attr{Key: "blocks", Val: int64(req.cfg.Blocks)},
					sim.Attr{Key: "stream", Val: int64(s.id)})
			}
			inner := g.runGrid(req.cfg, req.body)
			inner.Wait(p)
			g.e.SpanClose(span)
			req.done.Complete()
		}
	})
	return s
}

// DefaultStream returns the GPU's stream 0.
func (g *GPU) DefaultStream() *Stream { return g.defaultStream }

// KernelConfig describes a grid. Blocks of up to 1024 threads split into
// warps of 32; the kernel body runs once per warp (the paper's kernels
// use 1-thread blocks; applications use full blocks with SyncThreads and
// shared memory).
type KernelConfig struct {
	Blocks          int
	ThreadsPerBlock int
	// SharedBytes allocates a per-block scratchpad accessible through the
	// LdShared/StShared warp operations.
	SharedBytes int
	Stream      *Stream // nil = default stream
}

// Launch enqueues a kernel on a stream and returns a completion that
// resolves when all blocks have finished. body runs once per block with
// that block's Warp.
func (g *GPU) Launch(cfg KernelConfig, body func(w *Warp)) *sim.Completion {
	if cfg.Blocks <= 0 {
		panic("gpusim: kernel needs at least one block")
	}
	if cfg.ThreadsPerBlock <= 0 {
		cfg.ThreadsPerBlock = 1
	}
	if cfg.ThreadsPerBlock > 1024 {
		panic(fmt.Sprintf("gpusim: ThreadsPerBlock %d exceeds the 1024-thread block limit", cfg.ThreadsPerBlock))
	}
	st := cfg.Stream
	if st == nil {
		st = g.defaultStream
	}
	done := sim.NewCompletion(g.e)
	st.q.Send(launchReq{cfg: cfg, body: body, done: done})
	return done
}

// runGrid spawns every warp of every block immediately and returns a
// completion resolving when all have finished. All warps of a block share
// an SM (as on hardware), its barrier and its scratchpad.
func (g *GPU) runGrid(cfg KernelConfig, body func(w *Warp)) *sim.Completion {
	done := sim.NewCompletion(g.e)
	warpsPerBlock := (cfg.ThreadsPerBlock + 31) / 32
	remaining := cfg.Blocks * warpsPerBlock
	for b := 0; b < cfg.Blocks; b++ {
		blk := &Block{
			g:       g,
			idx:     b,
			warps:   warpsPerBlock,
			shared:  make([]byte, cfg.SharedBytes),
			barrier: sim.NewSignal(g.e),
		}
		sm := g.nextSM
		g.nextSM = (g.nextSM + 1) % g.cfg.SMs
		for wi := 0; wi < warpsPerBlock; wi++ {
			lanes := 32
			if wi == warpsPerBlock-1 {
				if rem := cfg.ThreadsPerBlock - 32*wi; rem < 32 {
					lanes = rem
				}
			}
			w := &Warp{
				g:      g,
				sm:     sm,
				Block:  b,
				WarpID: wi,
				Lanes:  lanes,
				block:  blk,
			}
			name := fmt.Sprintf("%s.b%d.w%d", g.cfg.Name, b, wi)
			g.e.Spawn(name, func(p *sim.Proc) {
				w.p = p
				body(w)
				remaining--
				if remaining == 0 {
					done.Complete()
				}
			})
		}
	}
	return done
}

// Sync blocks p (a host-side process) until the completion resolves — the
// cudaStreamSynchronize analogue.
func (g *GPU) Sync(p *sim.Proc, done *sim.Completion) { done.Wait(p) }
