package gpusim

import "fmt"

// Counters mirrors the nvprof-style metrics the paper reads in Tables I
// and II. Granularities follow the paper: system-memory traffic is counted
// in 32-byte transactions, global-memory traffic in accesses, instructions
// in issued (warp-uniform) instructions.
type Counters struct {
	SysmemReads32B  uint64 // system-memory (PCIe) read transactions
	SysmemWrites32B uint64 // system-memory/MMIO write transactions
	Globmem64Reads  uint64 // 64-bit global (device) memory loads
	Globmem64Writes uint64 // 64-bit global (device) memory stores
	L2ReadHits      uint64
	L2ReadMisses    uint64
	L2ReadRequests  uint64
	L2WriteRequests uint64
	MemAccesses     uint64 // all memory instructions (read + write)
	InstrExecuted   uint64 // all issued instructions
}

// Sub returns c - o, for measuring a benchmark window.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		SysmemReads32B:  c.SysmemReads32B - o.SysmemReads32B,
		SysmemWrites32B: c.SysmemWrites32B - o.SysmemWrites32B,
		Globmem64Reads:  c.Globmem64Reads - o.Globmem64Reads,
		Globmem64Writes: c.Globmem64Writes - o.Globmem64Writes,
		L2ReadHits:      c.L2ReadHits - o.L2ReadHits,
		L2ReadMisses:    c.L2ReadMisses - o.L2ReadMisses,
		L2ReadRequests:  c.L2ReadRequests - o.L2ReadRequests,
		L2WriteRequests: c.L2WriteRequests - o.L2WriteRequests,
		MemAccesses:     c.MemAccesses - o.MemAccesses,
		InstrExecuted:   c.InstrExecuted - o.InstrExecuted,
	}
}

// String renders the counters one metric per line, paper-style.
func (c Counters) String() string {
	return fmt.Sprintf(
		"sysmem reads (32B): %d\nsysmem writes (32B): %d\nglobmem64 reads: %d\nglobmem64 writes: %d\nl2 read hits: %d\nl2 read requests: %d\nl2 write requests: %d\nmemory accesses (r/w): %d\ninstructions executed: %d",
		c.SysmemReads32B, c.SysmemWrites32B, c.Globmem64Reads, c.Globmem64Writes,
		c.L2ReadHits, c.L2ReadRequests, c.L2WriteRequests, c.MemAccesses, c.InstrExecuted)
}
