package gpusim

import (
	"fmt"

	"putget/internal/memspace"
	"putget/internal/sim"
)

// The GPU's copy engines implement cudaMemcpyAsync: DMA between device
// and host memory over the GPU's own PCIe port. Real parts have separate
// H2D and D2H engines, so the two directions overlap; copies in the same
// direction serialize FIFO.
//
// Host-staged communication — the pre-GPUDirect hybrid model the paper's
// background contrasts — is built from these: D2H copy, host-side network
// transfer, H2D copy.

type copyReq struct {
	dst, src memspace.Addr
	n        int
	done     *sim.Completion
}

// copyEngines lazily starts the two DMA engine processes.
func (g *GPU) copyEngines() {
	if g.h2dQ != nil {
		return
	}
	g.h2dQ = sim.NewChan[copyReq](g.e)
	g.d2hQ = sim.NewChan[copyReq](g.e)
	g.e.Spawn(g.cfg.Name+".ce.h2d", func(p *sim.Proc) {
		for {
			g.serveCopy(p, g.h2dQ.Recv(p))
		}
	})
	g.e.Spawn(g.cfg.Name+".ce.d2h", func(p *sim.Proc) {
		for {
			g.serveCopy(p, g.d2hQ.Recv(p))
		}
	})
}

// CopyAsync enqueues a DMA copy between host and device memory (either
// direction, inferred from the addresses) and returns its completion —
// the cudaMemcpyAsync analogue. Device-to-device and host-to-host copies
// are rejected: use kernels or the CPU for those.
func (g *GPU) CopyAsync(dst, src memspace.Addr, n int) *sim.Completion {
	g.copyEngines()
	d2h := g.isDevice(src) && !g.isDevice(dst)
	h2d := !g.isDevice(src) && g.isDevice(dst)
	if !d2h && !h2d {
		panic(fmt.Sprintf("gpusim: %s: CopyAsync needs one device and one host address (src %#x dst %#x)",
			g.cfg.Name, uint64(src), uint64(dst)))
	}
	done := sim.NewCompletion(g.e)
	req := copyReq{dst: dst, src: src, n: n, done: done}
	if d2h {
		g.d2hQ.Send(req)
	} else {
		g.h2dQ.Send(req)
	}
	return done
}

// serveCopy executes one DMA job on a copy engine.
func (g *GPU) serveCopy(p *sim.Proc, req copyReq) {
	const launch = 1500 * sim.Nanosecond // driver + engine kickoff
	p.Sleep(launch)
	buf := make([]byte, req.n)
	if g.isDevice(req.src) {
		// D2H: read device memory locally, stream posted writes to host.
		if err := g.f.Space().Read(req.src, buf); err != nil {
			panic(fmt.Sprintf("gpusim: %s: %v", g.cfg.Name, err))
		}
		deliver := g.f.WriteBulk(p, g.ep, req.dst, buf)
		p.SleepUntil(deliver)
	} else {
		// H2D: DMA-read host memory, land it in device memory.
		g.f.ReadBulk(p, g.ep, req.src, buf)
		if err := g.f.Space().Write(req.dst, buf); err != nil {
			panic(fmt.Sprintf("gpusim: %s: %v", g.cfg.Name, err))
		}
		g.l2.InvalidateRange(uint64(req.dst), req.n)
		g.inboundEpoch++
		g.inboundSig.Broadcast()
	}
	req.done.Complete()
}

// Copy runs CopyAsync and blocks the calling process until it completes —
// the synchronous cudaMemcpy analogue for host-side code.
func (g *GPU) Copy(p *sim.Proc, dst, src memspace.Addr, n int) {
	g.CopyAsync(dst, src, n).Wait(p)
}
