// Package extoll models the EXTOLL RMA unit of the Galibier NIC: BAR
// requester pages that accept 192-bit work requests, an address
// translation unit (ATU) mapping Network Logical Addresses to node
// physical memory, the requester/completer/responder engines, and 128-bit
// notifications written to kernel-allocated rings in host memory — the
// placement constraint at the heart of the paper's EXTOLL analysis.
package extoll

import "fmt"

// Command codes carried in WR word 0.
const (
	CmdPut = 1
	CmdGet = 2
	// CmdImmPut is an immediate put: up to 8 bytes of payload travel in
	// WR word 1 instead of a source NLA, so the requester skips the
	// source DMA read entirely — the EXTOLL analogue of inline sends.
	CmdImmPut = 3
	// CmdFetchAdd is a remote atomic fetch-and-add on a 64-bit word; the
	// previous value returns in the origin's completer notification.
	CmdFetchAdd = 4
)

// Notification-request flags in WR word 0.
const (
	FlagReqNotif  = 1 << 4 // requester notification at the origin
	FlagCompNotif = 1 << 5 // completer notification at the data sink
	FlagRespNotif = 1 << 6 // responder notification at the data source (get)
)

// WRWords is the number of 64-bit words in a work request (192 bits).
const WRWords = 3

// WRBytes is the work-request size in bytes.
const WRBytes = WRWords * 8

// WR is a decoded work request.
type WR struct {
	Cmd    int
	Flags  int
	Size   int
	SrcNLA uint64
	DstNLA uint64
	Port   int // filled from the BAR page the WR arrived on
}

// EncodeWord0 packs command, flags and size into WR word 0.
func EncodeWord0(cmd, flags, size int) uint64 {
	return uint64(cmd&0xf) | uint64(flags&0xff0) | uint64(size)<<16
}

// DecodeWord0 unpacks WR word 0.
func DecodeWord0(w uint64) (cmd, flags, size int) {
	return int(w & 0xf), int(w & 0xff0), int(w >> 16)
}

// EncodeWR packs a WR into its three 64-bit words.
func EncodeWR(wr WR) [WRWords]uint64 {
	return [WRWords]uint64{EncodeWord0(wr.Cmd, wr.Flags, wr.Size), wr.SrcNLA, wr.DstNLA}
}

// DecodeWR unpacks three words into a WR (Port is not encoded).
func DecodeWR(words [WRWords]uint64) WR {
	cmd, flags, size := DecodeWord0(words[0])
	return WR{Cmd: cmd, Flags: flags, Size: size, SrcNLA: words[1], DstNLA: words[2]}
}

// Validate checks a decoded WR for structural sanity.
func (w WR) Validate() error {
	switch w.Cmd {
	case CmdPut, CmdGet:
		if w.Size <= 0 {
			return fmt.Errorf("extoll: invalid WR size %d", w.Size)
		}
	case CmdImmPut:
		if w.Size <= 0 || w.Size > 8 {
			return fmt.Errorf("extoll: immediate put size %d exceeds 8 bytes", w.Size)
		}
	case CmdFetchAdd:
		if w.Size != 8 {
			return fmt.Errorf("extoll: fetch-add requires size 8, got %d", w.Size)
		}
	default:
		return fmt.Errorf("extoll: invalid WR command %d", w.Cmd)
	}
	return nil
}
