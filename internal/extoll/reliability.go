package extoll

import "putget/internal/sim"

// RelConfig tunes the link-level retransmission protocol and the
// requester's response watchdog. APEnet+ dedicates FPGA logic to exactly
// this kind of link-level go-back-N; EXTOLL's own link layer is likewise
// retransmitting.
type RelConfig struct {
	// AckEvery acks every Nth in-order data packet immediately; smaller
	// values cost ack bandwidth, larger ones lean on AckDelay.
	AckEvery int
	// AckDelay bounds how long a received packet may wait for a coalesced
	// link ACK.
	AckDelay sim.Duration
	// RetxTimeout is the sender's link retransmission timer.
	RetxTimeout sim.Duration
	// MaxRetries bounds link retries (timeouts + NAKs) before the link is
	// declared dead and outstanding requester ops error out.
	MaxRetries int
	// ReqTimeout is the requester watchdog: a get/atomic whose response
	// notification has not arrived by then completes with a timeout-error
	// notification instead.
	ReqTimeout sim.Duration
}

// DefaultRelConfig returns link-protocol tunables in FPGA-NIC territory.
func DefaultRelConfig() *RelConfig {
	return &RelConfig{
		AckEvery:    4,
		AckDelay:    3 * sim.Microsecond,
		RetxTimeout: 15 * sim.Microsecond,
		MaxRetries:  7,
		ReqTimeout:  200 * sim.Microsecond,
	}
}

// relEntry is one transmitted-but-unacknowledged data packet.
type relEntry struct {
	pkt   Packet
	bytes int
}

// pendingResp tracks one requester op (get / fetch-add) that owes this
// port a completer notification.
type pendingResp struct {
	port     int
	size     int
	cookie   uint64
	deadline sim.Time
	settled  bool
	timedOut bool
}

// linkRel is a NIC's link-reliability and watchdog state.
type linkRel struct {
	// Transmit side.
	txSeq      uint32
	unacked    []relEntry
	retryCount int
	armed      bool
	deadline   sim.Time
	kick       *sim.Signal
	dead       bool

	// Receive side.
	rxSeq      uint32
	nakSent    bool // one NAK per expected-Seq value
	ackPending int
	ackGen     int

	// Requester response watchdog: pending is the global FIFO (constant
	// timeout, so append order is deadline order); portQ indexes the same
	// entries per port for in-order settling.
	pending  []*pendingResp
	portQ    map[int][]*pendingResp
	respKick *sim.Signal
}

func newLinkRel(e *sim.Engine) *linkRel {
	return &linkRel{
		kick:     sim.NewSignal(e),
		respKick: sim.NewSignal(e),
		portQ:    map[int][]*pendingResp{},
	}
}

// ---- transmit side ----

// xmit sequences and transmits one data packet under the reliability
// protocol, or falls straight through to the wire without it.
func (n *NIC) xmit(pkt Packet, wb int) {
	r := n.rel
	if r == nil {
		n.tx.Send(pkt, wb)
		return
	}
	if r.dead {
		// A dead link transmits nothing; tracked requester ops fall to
		// the watchdog.
		return
	}
	pkt.Seq = r.txSeq
	r.txSeq++
	r.unacked = append(r.unacked, relEntry{pkt: pkt, bytes: wb})
	if !r.armed {
		n.armTimer()
	}
	n.tx.Send(pkt, wb)
}

func (n *NIC) armTimer() {
	r := n.rel
	if len(r.unacked) == 0 {
		r.armed = false
		return
	}
	r.armed = true
	r.deadline = n.e.Now().Add(n.cfg.Rel.RetxTimeout)
	r.kick.Broadcast()
}

// retxTimer is the link retransmission timer process.
func (n *NIC) retxTimer(p *sim.Proc) {
	r := n.rel
	for {
		for !r.armed {
			r.kick.Wait(p)
		}
		if now := p.Now(); now < r.deadline {
			p.SleepUntil(r.deadline)
			continue // deadline may have moved while sleeping
		}
		n.onRetxTimeout()
	}
}

func (n *NIC) onRetxTimeout() {
	r := n.rel
	if r.dead || len(r.unacked) == 0 {
		r.armed = false
		return
	}
	n.stats.Timeouts++
	r.retryCount++
	if n.e.Traced() {
		n.e.Tracev(n.cfg.Name, "retry", "retry: %s link timeout #%d, resend from seq %d", n.cfg.Name, r.retryCount, r.unacked[0].pkt.Seq)
	}
	if r.retryCount > n.cfg.Rel.MaxRetries {
		n.linkDead()
		return
	}
	n.resendFrom(r.unacked[0].pkt.Seq)
}

// resendFrom retransmits every unacked packet with Seq >= seq (go-back-N)
// and restarts the timer.
func (n *NIC) resendFrom(seq uint32) {
	r := n.rel
	for _, en := range r.unacked {
		if en.pkt.Seq < seq {
			continue
		}
		n.stats.Retransmits++
		n.tx.Send(en.pkt, en.bytes)
	}
	r.armed = true
	r.deadline = n.e.Now().Add(n.cfg.Rel.RetxTimeout)
	r.kick.Broadcast()
}

// linkDead gives up on the cable: nothing retransmits any more and every
// watchdog-tracked requester op errors out immediately.
func (n *NIC) linkDead() {
	r := n.rel
	r.dead = true
	r.armed = false
	r.unacked = nil
	n.stats.LinkDowns++
	if n.e.Traced() {
		n.e.Tracev(n.cfg.Name, "fault", "fault: %s link declared dead after %d retries", n.cfg.Name, r.retryCount)
	}
	for _, pr := range r.pending {
		if pr.settled || pr.timedOut {
			continue
		}
		pr.timedOut = true
		n.stats.ReqTimeouts++
		n.writeTimeoutNotif(pr.port, pr.size, pr.cookie)
	}
	r.pending = nil
	r.respKick.Broadcast()
}

// ---- receive side ----

// linkAdmit runs the link-layer checks on one received packet and reports
// whether it should be dispatched.
func (n *NIC) linkAdmit(pkt Packet) bool {
	r := n.rel
	if pkt.Poisoned {
		n.stats.IcrcDrops++
		return false
	}
	switch pkt.Kind {
	case pktLinkAck:
		n.stats.AcksRx++
		n.ackUpTo(pkt.Seq)
		return false
	case pktLinkNak:
		n.handleLinkNak(pkt)
		return false
	}
	if pkt.Seq != r.rxSeq {
		if pkt.Seq < r.rxSeq {
			// Already delivered (lost ACK or go-back-N replay): never
			// re-execute — completions and notifications are not
			// idempotent — just re-ack.
			n.stats.DupRx++
			n.sendLinkAck()
		} else if !r.nakSent {
			r.nakSent = true
			n.stats.NaksSent++
			if n.e.Traced() {
				n.e.Tracev(n.cfg.Name, "retry", "retry: %s link gap (got seq %d, want %d), NAK", n.cfg.Name, pkt.Seq, r.rxSeq)
			}
			n.tx.Send(Packet{Kind: pktLinkNak, Seq: r.rxSeq}, PktHeader)
		}
		return false
	}
	r.rxSeq++
	r.nakSent = false
	n.noteLinkAck()
	return true
}

// ackUpTo releases every unacked packet with Seq < seq.
func (n *NIC) ackUpTo(seq uint32) {
	r := n.rel
	cnt := 0
	for _, en := range r.unacked {
		if en.pkt.Seq >= seq {
			break
		}
		cnt++
	}
	if cnt == 0 {
		return
	}
	r.unacked = r.unacked[cnt:]
	r.retryCount = 0
	n.armTimer()
}

func (n *NIC) handleLinkNak(pkt Packet) {
	r := n.rel
	n.stats.NaksRx++
	n.ackUpTo(pkt.Seq)
	if r.dead || len(r.unacked) == 0 {
		return
	}
	r.retryCount++
	if r.retryCount > n.cfg.Rel.MaxRetries {
		n.linkDead()
		return
	}
	n.resendFrom(pkt.Seq)
}

// noteLinkAck implements ACK coalescing: every AckEvery-th in-order
// packet acks immediately, stragglers after at most AckDelay.
func (n *NIC) noteLinkAck() {
	r := n.rel
	r.ackPending++
	if r.ackPending >= n.cfg.Rel.AckEvery {
		n.sendLinkAck()
		return
	}
	gen := r.ackGen
	n.e.After(n.cfg.Rel.AckDelay, func() {
		if r.ackGen == gen && r.ackPending > 0 {
			n.sendLinkAck()
		}
	})
}

// sendLinkAck emits a cumulative link ACK for everything below the
// expected Seq.
func (n *NIC) sendLinkAck() {
	r := n.rel
	r.ackPending = 0
	r.ackGen++
	n.stats.AcksSent++
	n.tx.Send(Packet{Kind: pktLinkAck, Seq: r.rxSeq}, PktHeader)
}

// ---- requester response watchdog ----

// trackResponse registers one get/atomic op that owes port a completer
// notification.
func (n *NIC) trackResponse(port, size int, cookie uint64) {
	r := n.rel
	pr := &pendingResp{
		port: port, size: size, cookie: cookie,
		deadline: n.e.Now().Add(n.cfg.Rel.ReqTimeout),
	}
	r.pending = append(r.pending, pr)
	r.portQ[port] = append(r.portQ[port], pr)
	r.respKick.Broadcast()
}

// settleResponse consumes the oldest tracked op for port when its
// response arrives. It returns whether the success notification should be
// written: a response landing after the watchdog already reported a
// timeout is suppressed, so software sees exactly one notification per
// op. Untracked responses (reliability off, or no completion notification
// requested) always pass.
func (n *NIC) settleResponse(port int) bool {
	r := n.rel
	if r == nil {
		return true
	}
	q := r.portQ[port]
	if len(q) == 0 {
		return true
	}
	pr := q[0]
	r.portQ[port] = q[1:]
	pr.settled = true
	return !pr.timedOut
}

// respWatchdog turns overdue tracked ops into timeout-error notifications.
func (n *NIC) respWatchdog(p *sim.Proc) {
	r := n.rel
	for {
		for len(r.pending) == 0 {
			r.respKick.Wait(p)
		}
		head := r.pending[0]
		if head.settled || head.timedOut {
			r.pending = r.pending[1:]
			continue
		}
		if now := p.Now(); now < head.deadline {
			p.SleepUntil(head.deadline)
			continue
		}
		head.timedOut = true
		r.pending = r.pending[1:]
		n.stats.ReqTimeouts++
		n.writeTimeoutNotif(head.port, head.size, head.cookie)
	}
}
