package extoll

import (
	"bytes"
	"encoding/binary"
	"testing"

	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
	"putget/internal/wire"
)

// node is one side of a two-node EXTOLL rig.
type node struct {
	f    *pcie.Fabric
	nic  *NIC
	cpu  *pcie.Endpoint
	host memspace.Region
}

type rig struct {
	e    *sim.Engine
	a, b *node
}

func nicConfig(name string) Config {
	return Config{
		Name:          name,
		ClockHz:       157e6,
		DatapathBytes: 8,
		ReqCycles:     70,
		CompCycles:    25,
		RespCycles:    25,
		NumPorts:      32,
		BARBase:       0x2000_0000,
		NotifBase:     0x0010_0000, // inside host RAM
		NotifEntries:  64,
		DMAContexts:   8,
		PCIe: pcie.EndpointConfig{
			EgressRate: 4e9, OneWay: 150 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond,
		},
	}
}

func newNode(e *sim.Engine, name string) *node {
	space := memspace.NewSpace()
	host := space.MustMap(0, memspace.NewRAM(name+".host", 4<<20))
	f := pcie.NewFabric(e, space)
	hostEP := f.AddEndpoint(name+".hostmem", pcie.EndpointConfig{
		EgressRate: 8e9, OneWay: 100 * sim.Nanosecond, ReadLatency: 150 * sim.Nanosecond,
	})
	f.ClaimRAM(hostEP, host)
	cpu := f.AddEndpoint(name+".cpu", pcie.EndpointConfig{
		EgressRate: 16e9, OneWay: 100 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond,
	})
	nic := New(e, f, nicConfig(name+".nic"))
	return &node{f: f, nic: nic, cpu: cpu, host: host}
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine()
	a := newNode(e, "a")
	b := newNode(e, "b")
	ab, ba := wire.NewDuplex[Packet](e, 1.0e9, 450*sim.Nanosecond)
	a.nic.AttachWire(ab, ba)
	b.nic.AttachWire(ba, ab)
	return &rig{e: e, a: a, b: b}
}

// postWR writes a WR into a port page via three MMIO stores from the CPU
// endpoint (zero CPU cost model; timing via fabric only).
func (r *rig) postWR(n *node, port int, wr WR) {
	words := EncodeWR(wr)
	buf := make([]byte, WRBytes)
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	n.f.PostedWrite(n.cpu, n.nic.PortPage(port), buf)
}

func TestWREncodeDecodeRoundTrip(t *testing.T) {
	in := WR{Cmd: CmdPut, Flags: FlagReqNotif | FlagCompNotif, Size: 123456, SrcNLA: 0x123, DstNLA: 0x456}
	out := DecodeWR(EncodeWR(in))
	if out.Cmd != in.Cmd || out.Flags != in.Flags || out.Size != in.Size ||
		out.SrcNLA != in.SrcNLA || out.DstNLA != in.DstNLA {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
}

func TestWRValidate(t *testing.T) {
	if err := (WR{Cmd: CmdPut, Size: 8}).Validate(); err != nil {
		t.Errorf("valid WR rejected: %v", err)
	}
	if err := (WR{Cmd: 7, Size: 8}).Validate(); err == nil {
		t.Error("bad cmd accepted")
	}
	if err := (WR{Cmd: CmdGet, Size: 0}).Validate(); err == nil {
		t.Error("zero size accepted")
	}
}

func TestATURegisterTranslate(t *testing.T) {
	atu := NewATU()
	nla, err := atu.Register(0x4000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := atu.Translate(nla+64, 8)
	if err != nil || addr != 0x4040 {
		t.Fatalf("translate = %#x, %v", uint64(addr), err)
	}
	if _, err := atu.Translate(nla+1020, 8); err == nil {
		t.Error("overrun accepted")
	}
	if _, err := atu.Translate(NLA(0), 8); err == nil {
		t.Error("NLA 0 accepted")
	}
	if _, err := atu.Translate(NLA(99)<<40, 8); err == nil {
		t.Error("unregistered NLA accepted")
	}
}

func TestPutMovesData(t *testing.T) {
	r := newRig(t)
	// Register 64KiB buffers on both sides.
	srcNLA, _ := r.a.nic.ATU().Register(0x4000, 64<<10)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 64<<10)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := r.a.f.Space().Write(0x4000, payload); err != nil {
		t.Fatal(err)
	}
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	r.postWR(r.a, 0, WR{
		Cmd: CmdPut, Flags: FlagReqNotif | FlagCompNotif, Size: len(payload),
		SrcNLA: uint64(srcNLA), DstNLA: uint64(dstNLA),
	})
	r.e.Run()
	got := make([]byte, len(payload))
	if err := r.b.f.Space().Read(0x8000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted in flight")
	}
	if r.a.nic.Stats().PutsSent != 1 || r.b.nic.Stats().PutsCompleted != 1 {
		t.Fatalf("stats: %+v / %+v", r.a.nic.Stats(), r.b.nic.Stats())
	}
}

func TestPutWritesNotificationsBothSides(t *testing.T) {
	r := newRig(t)
	srcNLA, _ := r.a.nic.ATU().Register(0x4000, 4096)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 4096)
	r.a.nic.OpenPort(3)
	r.b.nic.OpenPort(5)
	ConnectPorts(r.a.nic, 3, r.b.nic, 5)
	r.postWR(r.a, 3, WR{
		Cmd: CmdPut, Flags: FlagReqNotif | FlagCompNotif, Size: 1024,
		SrcNLA: uint64(srcNLA), DstNLA: uint64(dstNLA),
	})
	r.e.Run()
	// Requester notification on A port 3.
	w0, err := r.a.f.Space().ReadU64(r.a.nic.NotifEntryAddr(3, ClassRequester, 0))
	if err != nil || !NotifValid(w0) {
		t.Fatalf("requester notification missing: %#x, %v", w0, err)
	}
	if NotifSize(w0) != 1024 {
		t.Fatalf("requester notif size = %d", NotifSize(w0))
	}
	// Completer notification on B port 5.
	w0, err = r.b.f.Space().ReadU64(r.b.nic.NotifEntryAddr(5, ClassCompleter, 0))
	if err != nil || !NotifValid(w0) {
		t.Fatalf("completer notification missing: %#x, %v", w0, err)
	}
}

func TestNotifSuppressedWithoutFlags(t *testing.T) {
	r := newRig(t)
	srcNLA, _ := r.a.nic.ATU().Register(0x4000, 4096)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 4096)
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	r.postWR(r.a, 0, WR{Cmd: CmdPut, Size: 64, SrcNLA: uint64(srcNLA), DstNLA: uint64(dstNLA)})
	r.e.Run()
	if n := r.a.nic.Stats().NotificationsWritten + r.b.nic.Stats().NotificationsWritten; n != 0 {
		t.Fatalf("notifications written without flags: %d", n)
	}
}

func TestGetFetchesRemoteData(t *testing.T) {
	r := newRig(t)
	// B holds the data; A gets it.
	remoteNLA, _ := r.b.nic.ATU().Register(0x8000, 4096)
	localNLA, _ := r.a.nic.ATU().Register(0x4000, 4096)
	payload := []byte("remote data to fetch via RMA get!")
	if err := r.b.f.Space().Write(0x8000, payload); err != nil {
		t.Fatal(err)
	}
	r.a.nic.OpenPort(1)
	r.b.nic.OpenPort(2)
	ConnectPorts(r.a.nic, 1, r.b.nic, 2)
	r.postWR(r.a, 1, WR{
		Cmd: CmdGet, Flags: FlagCompNotif | FlagRespNotif, Size: len(payload),
		SrcNLA: uint64(remoteNLA), DstNLA: uint64(localNLA),
	})
	r.e.Run()
	got := make([]byte, len(payload))
	if err := r.a.f.Space().Read(0x4000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("get payload = %q", got)
	}
	// Completer notification at origin (A port 1).
	w0, _ := r.a.f.Space().ReadU64(r.a.nic.NotifEntryAddr(1, ClassCompleter, 0))
	if !NotifValid(w0) {
		t.Fatal("origin completer notification missing")
	}
	// Responder notification at B port 2.
	w0, _ = r.b.f.Space().ReadU64(r.b.nic.NotifEntryAddr(2, ClassResponder, 0))
	if !NotifValid(w0) {
		t.Fatal("responder notification missing")
	}
	if r.b.nic.Stats().GetReqsServed != 1 || r.a.nic.Stats().GetRespsCompleted != 1 {
		t.Fatalf("get stats wrong: %+v %+v", r.b.nic.Stats(), r.a.nic.Stats())
	}
}

func TestNotificationAfterPayload(t *testing.T) {
	r := newRig(t)
	srcNLA, _ := r.a.nic.ATU().Register(0x4000, 64<<10)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 64<<10)
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	if err := r.a.f.Space().WriteU64(0x4000+32<<10-8, 0xf1a6); err != nil {
		t.Fatal(err)
	}
	r.postWR(r.a, 0, WR{
		Cmd: CmdPut, Flags: FlagCompNotif, Size: 32 << 10,
		SrcNLA: uint64(srcNLA), DstNLA: uint64(dstNLA),
	})
	// A process on B polls the completer notification, then immediately
	// checks the payload: it must already be there.
	notifAddr := r.b.nic.NotifEntryAddr(0, ClassCompleter, 0)
	var ok bool
	r.e.Spawn("poll", func(p *sim.Proc) {
		for {
			w0, _ := r.b.f.Space().ReadU64(notifAddr)
			if NotifValid(w0) {
				last, _ := r.b.f.Space().ReadU64(0x8000 + 32<<10 - 8)
				ok = last == 0xf1a6
				return
			}
			p.Sleep(50 * sim.Nanosecond)
		}
	})
	r.e.Run()
	if !ok {
		t.Fatal("completer notification visible before payload")
	}
}

func TestWRBurstWriteCompletes(t *testing.T) {
	r := newRig(t)
	srcNLA, _ := r.a.nic.ATU().Register(0x4000, 4096)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 4096)
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	// Full 24-byte burst (write-combining path a CPU uses).
	r.postWR(r.a, 0, WR{Cmd: CmdPut, Size: 64, SrcNLA: uint64(srcNLA), DstNLA: uint64(dstNLA)})
	r.e.Run()
	if r.a.nic.Stats().PutsSent != 1 {
		t.Fatal("burst WR not executed")
	}
}

func TestWRWordWiseWritesComplete(t *testing.T) {
	r := newRig(t)
	srcNLA, _ := r.a.nic.ATU().Register(0x4000, 4096)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 4096)
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	words := EncodeWR(WR{Cmd: CmdPut, Size: 64, SrcNLA: uint64(srcNLA), DstNLA: uint64(dstNLA)})
	page := r.a.nic.PortPage(0)
	for i, w := range words {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, w)
		r.a.f.PostedWrite(r.a.cpu, page+memspace.Addr(i*8), b)
	}
	r.e.Run()
	if r.a.nic.Stats().PutsSent != 1 {
		t.Fatal("word-wise WR not executed")
	}
}

func TestClosedPortRejectsWR(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic writing WR to closed port")
		}
	}()
	r.postWR(r.a, 7, WR{Cmd: CmdPut, Size: 64, SrcNLA: 1 << 40, DstNLA: 1 << 40})
	r.e.Run()
}

func TestManyPutsPipelineFasterThanSerial(t *testing.T) {
	r := newRig(t)
	srcNLA, _ := r.a.nic.ATU().Register(0x4000, 64<<10)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 64<<10)
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	const N = 32
	for i := 0; i < N; i++ {
		r.postWR(r.a, 0, WR{Cmd: CmdPut, Size: 64, SrcNLA: uint64(srcNLA), DstNLA: uint64(dstNLA)})
	}
	r.e.Run()
	if got := r.b.nic.Stats().PutsCompleted; got != N {
		t.Fatalf("completed %d of %d", got, N)
	}
	// With pipelining, 32 back-to-back 64B puts must take far less than
	// 32 serialized DMA round trips (~32×1.2us ≈ 38us).
	if r.e.Now() > sim.Time(25*sim.Microsecond) {
		t.Fatalf("32 puts took %v — requester not pipelining", r.e.Now())
	}
}

func TestNotificationRingOverflowDetected(t *testing.T) {
	r := newRig(t)
	srcNLA, _ := r.a.nic.ATU().Register(0x4000, 4096)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 4096)
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	// Never consuming requester notifications: a 64-entry ring overflows
	// once more than 64 have been written.
	const N = 80
	for i := 0; i < N; i++ {
		r.postWR(r.a, 0, WR{
			Cmd: CmdPut, Flags: FlagReqNotif, Size: 64,
			SrcNLA: uint64(srcNLA), DstNLA: uint64(dstNLA),
		})
	}
	r.e.Run()
	st := r.a.nic.Stats()
	if st.NotificationOverflows == 0 {
		t.Fatal("overflow not detected")
	}
	if st.NotificationsWritten+st.NotificationOverflows != N {
		t.Fatalf("written %d + overflow %d != %d", st.NotificationsWritten, st.NotificationOverflows, N)
	}
}

func TestRingLayoutDisjoint(t *testing.T) {
	n := nicConfig("x")
	nic := &NIC{cfg: n}
	seen := map[memspace.Addr]bool{}
	for port := 0; port < 4; port++ {
		for class := 0; class < numClasses; class++ {
			for idx := 0; idx < n.NotifEntries; idx++ {
				a := nic.NotifEntryAddr(port, class, idx)
				if seen[a] {
					t.Fatalf("ring slot collision at %#x", uint64(a))
				}
				seen[a] = true
			}
			rp := nic.NotifRPAddr(port, class)
			if seen[rp] {
				t.Fatalf("rp slot collision at %#x", uint64(rp))
			}
			seen[rp] = true
		}
	}
}

func TestNotifEntryWraps(t *testing.T) {
	n := nicConfig("x")
	nic := &NIC{cfg: n}
	if nic.NotifEntryAddr(0, 0, 0) != nic.NotifEntryAddr(0, 0, n.NotifEntries) {
		t.Fatal("ring index does not wrap")
	}
}

func TestImmediatePutDeliversValue(t *testing.T) {
	r := newRig(t)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 4096)
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	r.postWR(r.a, 0, WR{
		Cmd: CmdImmPut, Flags: FlagCompNotif, Size: 8,
		SrcNLA: 0xdeadbeefcafe, DstNLA: uint64(dstNLA),
	})
	r.e.Run()
	got, err := r.b.f.Space().ReadU64(0x8000)
	if err != nil || got != 0xdeadbeefcafe {
		t.Fatalf("immediate payload = %#x, %v", got, err)
	}
	if r.a.nic.Stats().ImmPutsSent != 1 {
		t.Fatal("immediate put not counted")
	}
	// Completer notification present at B.
	w0, _ := r.b.f.Space().ReadU64(r.b.nic.NotifEntryAddr(0, ClassCompleter, 0))
	if !NotifValid(w0) {
		t.Fatal("completer notification missing")
	}
}

func TestImmediatePutFasterThanRegularPut(t *testing.T) {
	measure := func(cmd int) sim.Duration {
		r := newRig(t)
		srcNLA, _ := r.a.nic.ATU().Register(0x4000, 4096)
		dstNLA, _ := r.b.nic.ATU().Register(0x8000, 4096)
		r.a.nic.OpenPort(0)
		r.b.nic.OpenPort(0)
		ConnectPorts(r.a.nic, 0, r.b.nic, 0)
		wr := WR{Cmd: cmd, Flags: FlagCompNotif, Size: 8, DstNLA: uint64(dstNLA)}
		if cmd == CmdPut {
			wr.SrcNLA = uint64(srcNLA)
		} else {
			wr.SrcNLA = 42
		}
		r.postWR(r.a, 0, wr)
		r.e.Run()
		return sim.Duration(r.e.Now())
	}
	reg := measure(CmdPut)
	imm := measure(CmdImmPut)
	if imm >= reg {
		t.Fatalf("immediate put (%v) should beat regular put (%v): no source DMA", imm, reg)
	}
	// The saving is the source DMA read — on the order of a microsecond.
	if reg-imm < 500*sim.Nanosecond {
		t.Fatalf("immediate saving only %v, expected ≥500ns", reg-imm)
	}
}

func TestFetchAddAtomicAndOldValue(t *testing.T) {
	r := newRig(t)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 8)
	if err := r.b.f.Space().WriteU64(0x8000, 100); err != nil {
		t.Fatal(err)
	}
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	r.postWR(r.a, 0, WR{Cmd: CmdFetchAdd, Flags: FlagCompNotif, Size: 8,
		SrcNLA: 7, DstNLA: uint64(dstNLA)})
	r.e.Run()
	got, _ := r.b.f.Space().ReadU64(0x8000)
	if got != 107 {
		t.Fatalf("fetch-add result = %d, want 107", got)
	}
	// Old value (100) in the origin's completer notification cookie.
	w0, _ := r.a.f.Space().ReadU64(r.a.nic.NotifEntryAddr(0, ClassCompleter, 0))
	w1, _ := r.a.f.Space().ReadU64(r.a.nic.NotifEntryAddr(0, ClassCompleter, 0) + 8)
	if !NotifValid(w0) || w1 != 100 {
		t.Fatalf("notification old-value = %d (valid=%v), want 100", w1, NotifValid(w0))
	}
	if r.b.nic.Stats().AtomicsServed != 1 {
		t.Fatal("atomic not counted")
	}
}

func TestFetchAddSequenceAccumulates(t *testing.T) {
	r := newRig(t)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 8)
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	// Serialized fetch-adds accumulate; old values form the prefix sums.
	olds := []uint64{}
	r.e.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r.postWR(r.a, 0, WR{Cmd: CmdFetchAdd, Flags: FlagCompNotif, Size: 8,
				SrcNLA: 10, DstNLA: uint64(dstNLA)})
			// Wait for the notification of this atomic before the next.
			notifAddr := r.a.nic.NotifEntryAddr(0, ClassCompleter, i)
			for {
				w0, _ := r.a.f.Space().ReadU64(notifAddr)
				if NotifValid(w0) {
					w1, _ := r.a.f.Space().ReadU64(notifAddr + 8)
					olds = append(olds, w1)
					break
				}
				p.Sleep(100 * sim.Nanosecond)
			}
		}
	})
	r.e.Run()
	for i, v := range olds {
		if v != uint64(i*10) {
			t.Fatalf("old values %v, want prefix sums of 10", olds)
		}
	}
	final, _ := r.b.f.Space().ReadU64(0x8000)
	if final != 50 {
		t.Fatalf("final = %d, want 50", final)
	}
}

func TestImmPutOversizeRejected(t *testing.T) {
	if err := (WR{Cmd: CmdImmPut, Size: 9}).Validate(); err == nil {
		t.Fatal("9-byte immediate accepted")
	}
	if err := (WR{Cmd: CmdFetchAdd, Size: 4}).Validate(); err == nil {
		t.Fatal("4-byte fetch-add accepted")
	}
	if err := (WR{Cmd: CmdImmPut, Size: 8}).Validate(); err != nil {
		t.Fatalf("valid immediate rejected: %v", err)
	}
}

func TestBadSrcNLAErrorNotification(t *testing.T) {
	r := newRig(t)
	dstNLA, _ := r.b.nic.ATU().Register(0x8000, 4096)
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	// Unregistered source NLA: no transfer, but an error notification so
	// software can observe the failure.
	r.postWR(r.a, 0, WR{Cmd: CmdPut, Flags: FlagReqNotif, Size: 64,
		SrcNLA: uint64(NLA(77) << 40), DstNLA: uint64(dstNLA)})
	r.e.Run()
	if r.a.nic.Stats().TranslationErrs != 1 {
		t.Fatalf("translation errors = %d", r.a.nic.Stats().TranslationErrs)
	}
	if r.a.nic.Stats().PutsSent != 0 || r.b.nic.Stats().PutsCompleted != 0 {
		t.Fatal("bad-NLA put still transferred data")
	}
	w0, _ := r.a.f.Space().ReadU64(r.a.nic.NotifEntryAddr(0, ClassRequester, 0))
	if !NotifValid(w0) || !NotifErr(w0) {
		t.Fatalf("error notification missing or unmarked: %#x", w0)
	}
}

func TestBadDstNLADroppedAtSink(t *testing.T) {
	r := newRig(t)
	srcNLA, _ := r.a.nic.ATU().Register(0x4000, 4096)
	r.a.nic.OpenPort(0)
	r.b.nic.OpenPort(0)
	ConnectPorts(r.a.nic, 0, r.b.nic, 0)
	r.postWR(r.a, 0, WR{Cmd: CmdPut, Size: 64,
		SrcNLA: uint64(srcNLA), DstNLA: uint64(NLA(99) << 40)})
	r.e.Run()
	if r.b.nic.Stats().TranslationErrs != 1 {
		t.Fatalf("sink translation errors = %d", r.b.nic.Stats().TranslationErrs)
	}
	if r.b.nic.Stats().PutsCompleted != 0 {
		t.Fatal("bad destination still completed")
	}
}

func TestErrNotifEncoding(t *testing.T) {
	w0 := EncodeErrNotif(ClassRequester, 64)
	if !NotifValid(w0) || !NotifErr(w0) || NotifSize(w0) != 64 {
		t.Fatalf("error notif encoding broken: %#x", w0)
	}
	if NotifErr(EncodeNotif(ClassCompleter, 64)) {
		t.Fatal("normal notification flagged as error")
	}
}
