package extoll

import (
	"fmt"

	"putget/internal/memspace"
)

// NLA is a Network Logical Address: the EXTOLL fabric's global handle for
// registered memory. The top bits select a registration, the low 40 bits
// are a byte offset, so NLA+offset arithmetic works as on hardware.
type NLA uint64

const nlaOffsetBits = 40
const nlaOffsetMask = (1 << nlaOffsetBits) - 1

// ATU is the NIC's address translation unit: it turns registered physical
// ranges into NLAs and translates NLAs back on access. With the GPUDirect
// patch applied (always on in this model), GPU device-memory addresses
// register exactly like host addresses — that is the API extension the
// paper describes in §III-C.
type ATU struct {
	entries []atuEntry
}

type atuEntry struct {
	base memspace.Addr
	size uint64
}

// NewATU returns an empty translation unit.
func NewATU() *ATU { return &ATU{} }

// Register maps [base, base+size) and returns its NLA handle.
func (a *ATU) Register(base memspace.Addr, size uint64) (NLA, error) {
	if size == 0 {
		return 0, fmt.Errorf("extoll: cannot register empty region")
	}
	if size > nlaOffsetMask {
		return 0, fmt.Errorf("extoll: registration of %d bytes exceeds NLA offset space", size)
	}
	a.entries = append(a.entries, atuEntry{base: base, size: size})
	return NLA(uint64(len(a.entries)) << nlaOffsetBits), nil
}

// Translate resolves an NLA (plus embedded offset) to a physical address,
// checking that [nla, nla+n) stays inside the registration.
func (a *ATU) Translate(nla NLA, n int) (memspace.Addr, error) {
	idx := uint64(nla) >> nlaOffsetBits
	off := uint64(nla) & nlaOffsetMask
	if idx == 0 || idx > uint64(len(a.entries)) {
		return 0, fmt.Errorf("extoll: NLA %#x not registered", uint64(nla))
	}
	e := a.entries[idx-1]
	if n < 0 || off+uint64(n) > e.size {
		return 0, fmt.Errorf("extoll: NLA %#x access [%d,%d) outside registration of %d bytes",
			uint64(nla), off, off+uint64(n), e.size)
	}
	return e.base + memspace.Addr(off), nil
}
