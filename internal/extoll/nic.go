package extoll

import (
	"encoding/binary"
	"fmt"

	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
	"putget/internal/wire"
)

// Notification classes: each RMA sub-unit writes its own ring.
const (
	ClassRequester = 0
	ClassCompleter = 1
	ClassResponder = 2
	numClasses     = 3
)

// NotifBytes is the size of one notification (128 bits).
const NotifBytes = 16

// PageSize is the BAR requester-page size; one page per open port keeps
// parallel descriptor posts race-free (§V-A.2 of the paper).
const PageSize = 4096

// PktHeader is the wire header size per EXTOLL packet.
const PktHeader = 32

// Config fixes the RMA unit's clocking and layout.
type Config struct {
	Name string
	// ClockHz and DatapathBytes give the internal datapath: the Galibier
	// FPGA runs 157 MHz × 64 bit; the projected ASIC 700 MHz × 128 bit.
	ClockHz       float64
	DatapathBytes int
	// Engine occupancies in core cycles.
	ReqCycles  int
	CompCycles int
	RespCycles int
	// NumPorts requester pages are exposed at BARBase.
	NumPorts int
	BARBase  memspace.Addr
	// NotifBase is the kernel-allocated host-RAM area holding the
	// notification rings (the driver pre-allocates them; they cannot move
	// to GPU memory — the paper's §VI contrast with Infiniband).
	NotifBase    memspace.Addr
	NotifEntries int
	// DMAContexts bounds concurrently outstanding DMA jobs per direction.
	DMAContexts int
	// Rel enables link-level retransmission and requester response
	// timeouts (APEnet+-style FPGA retransmission logic). nil — the
	// default — assumes a perfect wire and keeps the seed's cut-through
	// fast path bit-identical.
	Rel *RelConfig
	// PCIe configures the NIC's fabric port.
	PCIe pcie.EndpointConfig
}

// Stats counts processed operations.
type Stats struct {
	PutsSent, GetsSent    uint64
	PutsCompleted         uint64
	GetReqsServed         uint64
	GetRespsCompleted     uint64
	ImmPutsSent           uint64
	AtomicsServed         uint64
	TranslationErrs       uint64
	NotificationsWritten  uint64
	NotificationOverflows uint64

	// Link-reliability counters (all zero when Config.Rel == nil).
	Retransmits uint64 // data packets sent again (NAK or timer)
	AcksSent    uint64
	AcksRx      uint64
	NaksSent    uint64
	NaksRx      uint64
	Timeouts    uint64 // link retransmission-timer expiries
	ReqTimeouts uint64 // requester ops that gave up waiting for a response
	DupRx       uint64 // duplicate packets (already-delivered Seq)
	IcrcDrops   uint64 // packets discarded for a bad CRC
	LinkDowns   uint64 // links declared dead after retry exhaustion
}

// Packet is one EXTOLL network packet.
type Packet struct {
	Kind       int // CmdPut, CmdGet (request) or getResp
	DstPort    int // port at the receiving NIC
	OriginPort int // port at the WR's origin (for get responses)
	Flags      int
	Size       int
	SrcNLA     NLA
	DstNLA     NLA
	Data       []byte
	// Seq sequences data packets when link reliability is on; link
	// ACK/NAK packets carry the next expected Seq here.
	Seq uint32
	// Poisoned marks a payload damaged in flight; the receiver's CRC
	// check discards the packet.
	Poisoned bool
}

const (
	pktGetResp    = 10
	pktAtomic     = 11
	pktAtomicResp = 12
	pktLinkAck    = 20
	pktLinkNak    = 21
)

// NIC is one EXTOLL adapter on a node fabric.
type NIC struct {
	cfg Config
	e   *sim.Engine
	f   *pcie.Fabric
	ep  *pcie.Endpoint
	bar memspace.Region
	atu *ATU

	ports    []*portState
	reqQ     *sim.Chan[WR]
	txSlots  *sim.Resource
	rxSlots  *sim.Resource
	datapath *sim.Server
	tx       wire.Conduit[Packet]

	notifWP  [][numClasses]int
	stats    Stats
	dmaInUse int // outstanding requester DMA contexts (metric series)

	rel *linkRel // reliability state; nil on the perfect-wire fast path
}

type portState struct {
	words    [WRWords]uint64
	haveMask int
	peerPort int
	open     bool
}

// New creates an EXTOLL NIC, claims its BAR and starts the requester
// engine. Call AttachWire before posting WRs.
func New(e *sim.Engine, f *pcie.Fabric, cfg Config) *NIC {
	if cfg.NumPorts <= 0 || cfg.NotifEntries <= 0 || cfg.DMAContexts <= 0 {
		panic("extoll: invalid config")
	}
	n := &NIC{cfg: cfg, e: e, f: f, atu: NewATU()}
	n.ep = f.AddEndpoint(cfg.Name, cfg.PCIe)
	n.bar = memspace.Region{Base: cfg.BARBase, Size: uint64(cfg.NumPorts) * PageSize}
	f.ClaimMMIO(n.ep, n.bar, (*barTarget)(n))
	n.ports = make([]*portState, cfg.NumPorts)
	for i := range n.ports {
		n.ports[i] = &portState{peerPort: -1}
	}
	n.notifWP = make([][numClasses]int, cfg.NumPorts)
	n.reqQ = sim.NewChan[WR](e)
	n.txSlots = sim.NewResource(e, cfg.DMAContexts)
	n.rxSlots = sim.NewResource(e, cfg.DMAContexts)
	n.datapath = sim.NewServer(e, cfg.ClockHz*float64(cfg.DatapathBytes))
	if cfg.Rel != nil {
		n.rel = newLinkRel(e)
	}
	e.Spawn(cfg.Name+".requester", n.requesterLoop)
	return n
}

// Endpoint returns the NIC's fabric port.
func (n *NIC) Endpoint() *pcie.Endpoint { return n.ep }

// BAR returns the claimed MMIO region.
func (n *NIC) BAR() memspace.Region { return n.bar }

// ATU returns the translation unit (registration happens through it).
func (n *NIC) ATU() *ATU { return n.atu }

// Stats returns a snapshot of operation counts.
func (n *NIC) Stats() Stats { return n.stats }

// cyc converts core cycles to time.
func (n *NIC) cyc(c int) sim.Duration {
	return sim.Duration(float64(c) / n.cfg.ClockHz * float64(sim.Second))
}

// OpenPort marks a port usable and returns its requester-page base.
func (n *NIC) OpenPort(port int) memspace.Addr {
	n.ports[port].open = true
	return n.PortPage(port)
}

// PortPage returns the BAR address of a port's requester page.
func (n *NIC) PortPage(port int) memspace.Addr {
	return n.bar.Base + memspace.Addr(port*PageSize)
}

// ConnectPorts wires port pa of NIC a to port pb of NIC b (a static
// circuit, as set up by the EXTOLL connection manager).
func ConnectPorts(a *NIC, pa int, b *NIC, pb int) {
	a.ports[pa].peerPort = pb
	b.ports[pb].peerPort = pa
}

// AttachWire sets the transmit link and starts the receive loop on rx.
func (n *NIC) AttachWire(tx, rx wire.Conduit[Packet]) {
	n.tx = tx
	n.e.Spawn(n.cfg.Name+".rx", func(p *sim.Proc) {
		for {
			pkt := rx.Recv(p)
			if n.rel != nil && !n.linkAdmit(pkt) {
				continue
			}
			n.dispatch(pkt)
		}
	})
	if n.rel != nil {
		n.e.Spawn(n.cfg.Name+".retx", n.retxTimer)
		n.e.Spawn(n.cfg.Name+".watchdog", n.respWatchdog)
	}
}

// ---- notification rings ----

// ringStride is the per-ring footprint: entries plus a read-pointer slot.
func (n *NIC) ringStride() uint64 { return uint64(n.cfg.NotifEntries)*NotifBytes + 16 }

// NotifRingBase returns the host-RAM base of a (port, class) ring.
func (n *NIC) NotifRingBase(port, class int) memspace.Addr {
	idx := uint64(port*numClasses + class)
	return n.cfg.NotifBase + memspace.Addr(idx*n.ringStride())
}

// NotifEntryAddr returns the address of ring slot idx (mod ring size).
func (n *NIC) NotifEntryAddr(port, class, idx int) memspace.Addr {
	slot := idx % n.cfg.NotifEntries
	return n.NotifRingBase(port, class) + memspace.Addr(slot*NotifBytes)
}

// NotifRPAddr returns the address of the ring's software read pointer.
func (n *NIC) NotifRPAddr(port, class int) memspace.Addr {
	return n.NotifRingBase(port, class) + memspace.Addr(n.cfg.NotifEntries*NotifBytes)
}

// NotifRingArea returns the total host-RAM footprint of all rings.
func (n *NIC) NotifRingArea() uint64 {
	return uint64(n.cfg.NumPorts) * numClasses * n.ringStride()
}

// EncodeNotif packs a notification's first word.
func EncodeNotif(class, size int) uint64 {
	return 1 | uint64(class)<<1 | uint64(size)<<16
}

// notifErrBit marks an error notification (failed translation).
const notifErrBit = 1 << 8

// notifTimeoutBit refines an error notification: the operation's network
// response never arrived before the requester watchdog fired.
const notifTimeoutBit = 1 << 9

// EncodeErrNotif packs an error notification's first word.
func EncodeErrNotif(class, size int) uint64 {
	return EncodeNotif(class, size) | notifErrBit
}

// EncodeTimeoutNotif packs a response-timeout error notification's first
// word.
func EncodeTimeoutNotif(class, size int) uint64 {
	return EncodeNotif(class, size) | notifErrBit | notifTimeoutBit
}

// NotifErr reports whether a notification signals an error.
func NotifErr(word0 uint64) bool { return word0&notifErrBit != 0 }

// NotifTimeout reports whether an error notification was a response
// timeout.
func NotifTimeout(word0 uint64) bool { return word0&notifTimeoutBit != 0 }

// NotifValid reports whether a notification word 0 is a live entry.
func NotifValid(word0 uint64) bool { return word0&1 == 1 }

// NotifSize extracts the payload size from notification word 0.
func NotifSize(word0 uint64) int { return int(word0 >> 16) }

// writeErrNotif records a failed operation in the requester ring so
// software observes the failure instead of hanging.
func (n *NIC) writeErrNotif(port, size int) {
	wp := n.notifWP[port][ClassRequester]
	addr := n.NotifEntryAddr(port, ClassRequester, wp)
	if w0, err := n.f.Space().ReadU64(addr); err == nil && NotifValid(w0) {
		n.stats.NotificationOverflows++
		return
	}
	buf := make([]byte, NotifBytes)
	binary.LittleEndian.PutUint64(buf[0:], EncodeErrNotif(ClassRequester, size))
	n.notifSpan(n.f.PostedWrite(n.ep, addr, buf), size)
	n.notifWP[port][ClassRequester] = wp + 1
	n.stats.NotificationsWritten++
}

// writeTimeoutNotif records a response timeout in the origin port's
// completer ring — where software is waiting for the response's
// completion notification — so a lost response surfaces as a consumable
// error instead of a hang.
func (n *NIC) writeTimeoutNotif(port, size int, cookie uint64) {
	wp := n.notifWP[port][ClassCompleter]
	addr := n.NotifEntryAddr(port, ClassCompleter, wp)
	if w0, err := n.f.Space().ReadU64(addr); err == nil && NotifValid(w0) {
		n.stats.NotificationOverflows++
		return
	}
	if n.e.Traced() {
		n.e.Tracev(n.cfg.Name, "fault", "fault: %s response timeout notification port %d (size %d)", n.cfg.Name, port, size)
	}
	buf := make([]byte, NotifBytes)
	binary.LittleEndian.PutUint64(buf[0:], EncodeTimeoutNotif(ClassCompleter, size))
	binary.LittleEndian.PutUint64(buf[8:], cookie)
	n.notifSpan(n.f.PostedWrite(n.ep, addr, buf), size)
	n.notifWP[port][ClassCompleter] = wp + 1
	n.stats.NotificationsWritten++
}

// writeNotif DMA-writes a 16-byte notification into the ring (posted, so
// it lands after any payload the same engine wrote earlier).
func (n *NIC) writeNotif(port, class, size int, cookie uint64) {
	wp := n.notifWP[port][class]
	addr := n.NotifEntryAddr(port, class, wp)
	// Overflow check: the consumer zeroes entries when freeing them; a
	// still-valid slot means software fell behind (§III-A: "they have to
	// be consumed and freed before the queue overflows"). The hardware
	// drops the notification and raises an error counter.
	if w0, err := n.f.Space().ReadU64(addr); err == nil && NotifValid(w0) {
		n.stats.NotificationOverflows++
		n.e.Tracef("%s: notification ring overflow port %d class %d", n.cfg.Name, port, class)
		return
	}
	if n.e.Trace != nil {
		n.e.Tracef("%s: notification class %d port %d (size %d)", n.cfg.Name, class, port, size)
	}
	buf := make([]byte, NotifBytes)
	binary.LittleEndian.PutUint64(buf[0:], EncodeNotif(class, size))
	binary.LittleEndian.PutUint64(buf[8:], cookie)
	n.notifSpan(n.f.PostedWrite(n.ep, addr, buf), size)
	n.notifWP[port][class] = wp + 1
	n.stats.NotificationsWritten++
}

// notifSpan brackets a notification's posted write as a "notif.write"
// span ending at its ring-delivery time. Opened after the write so it
// out-nests the pcie write span covering the same interval.
func (n *NIC) notifSpan(deliver sim.Time, size int) {
	if !n.e.Observing() {
		return
	}
	id := n.e.SpanOpen(n.cfg.Name, "notif.write", sim.Attr{Key: "size", Val: int64(size)})
	n.e.SpanCloseAt(id, deliver)
}

// ---- BAR (requester page) MMIO ----

// barTarget adapts NIC to pcie.Target; writes into a requester page
// assemble a WR, and the third word fires it into the requester queue.
type barTarget NIC

func (bt *barTarget) MMIOWrite(addr memspace.Addr, data []byte) {
	n := (*NIC)(bt)
	off := uint64(addr - n.bar.Base)
	port := int(off / PageSize)
	pageOff := off % PageSize
	if pageOff%8 != 0 || len(data)%8 != 0 {
		panic(fmt.Sprintf("extoll: %s: unaligned BAR write at +%#x len %d", n.cfg.Name, pageOff, len(data)))
	}
	ps := n.ports[port]
	if !ps.open {
		panic(fmt.Sprintf("extoll: %s: WR write to closed port %d", n.cfg.Name, port))
	}
	for i := 0; i*8 < len(data); i++ {
		slot := int(pageOff)/8 + i
		if slot >= WRWords {
			panic(fmt.Sprintf("extoll: %s: BAR write past WR window (slot %d)", n.cfg.Name, slot))
		}
		ps.words[slot] = binary.LittleEndian.Uint64(data[i*8:])
		ps.haveMask |= 1 << slot
	}
	if ps.haveMask == (1<<WRWords)-1 {
		wr := DecodeWR(ps.words)
		wr.Port = port
		ps.haveMask = 0
		if err := wr.Validate(); err != nil {
			panic(fmt.Sprintf("extoll: %s: %v", n.cfg.Name, err))
		}
		n.reqQ.Send(wr)
		n.e.Metric(n.cfg.Name, "reqq", float64(n.reqQ.Len()))
	}
}

func (bt *barTarget) MMIORead(addr memspace.Addr, data []byte) {
	for i := range data {
		data[i] = 0
	}
}

// ---- engines ----

// requesterLoop decodes WRs in order; DMA and transmission fan out to
// bounded worker contexts so back-to-back small WRs pipeline (the paper's
// message-rate experiments depend on this).
func (n *NIC) requesterLoop(p *sim.Proc) {
	for {
		wr := n.reqQ.Recv(p)
		n.e.Metric(n.cfg.Name, "reqq", float64(n.reqQ.Len()))
		if n.e.Trace != nil {
			n.e.Tracef("%s: requester decodes WR (cmd=%d size=%d port=%d)", n.cfg.Name, wr.Cmd, wr.Size, wr.Port)
		}
		var decode sim.SpanID
		if n.e.Observing() {
			decode = n.e.SpanOpen(n.cfg.Name, "wr.decode", sim.Attr{Key: "cmd", Val: int64(wr.Cmd)})
		}
		p.Sleep(n.cyc(n.cfg.ReqCycles))
		n.e.SpanClose(decode)
		peer := n.ports[wr.Port].peerPort
		if peer < 0 {
			panic(fmt.Sprintf("extoll: %s: WR on unconnected port %d", n.cfg.Name, wr.Port))
		}
		if n.rel != nil && (wr.Cmd == CmdGet || wr.Cmd == CmdFetchAdd) && wr.Flags&FlagCompNotif != 0 {
			// The op's completion surfaces as a completer notification at
			// this port; arm the response watchdog so a lost response
			// becomes a timeout-error notification instead of a hang.
			size := wr.Size
			if wr.Cmd == CmdFetchAdd {
				size = 8
			}
			n.trackResponse(wr.Port, size, uint64(wr.DstNLA))
		}
		n.e.Spawn(n.cfg.Name+".req.dma", func(wp *sim.Proc) {
			n.txSlots.Acquire(wp)
			n.dmaInUse++
			n.e.Metric(n.cfg.Name, "dma_inflight", float64(n.dmaInUse))
			defer func() {
				n.dmaInUse--
				n.e.Metric(n.cfg.Name, "dma_inflight", float64(n.dmaInUse))
				n.txSlots.Release()
			}()
			switch wr.Cmd {
			case CmdPut:
				n.sendPut(wp, wr, peer)
			case CmdGet:
				n.sendGetReq(wp, wr, peer)
			case CmdImmPut:
				n.sendImmPut(wp, wr, peer)
			case CmdFetchAdd:
				n.sendAtomic(wp, wr, peer)
			}
			// The requester notification signals that the transfer has
			// been started and the WR slot is free for the next request —
			// it is written once the source data has left host/GPU memory.
			if wr.Flags&FlagReqNotif != 0 {
				n.writeNotif(wr.Port, ClassRequester, wr.Size, uint64(wr.SrcNLA))
			}
		})
	}
}

// sendPut streams a put cut-through: the DMA read from source memory,
// the FPGA datapath and the wire serialization all overlap; the packet
// reaches the cable no earlier than the data has been pulled.
func (n *NIC) sendPut(p *sim.Proc, wr WR, peer int) {
	src, err := n.atu.Translate(NLA(wr.SrcNLA), wr.Size)
	if err != nil {
		// Bad source NLA: the RMA unit reports the failure through an
		// error notification rather than transferring anything.
		n.stats.TranslationErrs++
		n.writeErrNotif(wr.Port, wr.Size)
		return
	}
	buf := make([]byte, wr.Size)
	var fetch sim.SpanID
	if n.e.Observing() {
		fetch = n.e.SpanOpen(n.cfg.Name, "dma.fetch", sim.Attr{Key: "bytes", Val: int64(wr.Size)})
	}
	readDone := n.f.ReadBulkReserve(n.ep, src, buf)
	n.e.SpanCloseAt(fetch, readDone)
	dpDone := n.datapath.Reserve(wr.Size + PktHeader)
	ready := readDone
	if dpDone > ready {
		ready = dpDone
	}
	if n.e.Trace != nil {
		n.e.Tracef("%s: put payload pulled, %dB to wire", n.cfg.Name, wr.Size)
	}
	pkt := Packet{
		Kind: CmdPut, DstPort: peer, OriginPort: wr.Port,
		Flags: wr.Flags, Size: wr.Size, DstNLA: NLA(wr.DstNLA), Data: buf,
	}
	if n.rel == nil {
		n.tx.SendAfter(pkt, wr.Size+PktHeader, ready)
		// The DMA context stays busy until the data has left local memory.
		p.SleepUntil(ready)
	} else {
		// Store-and-forward under reliability: sequence numbers must match
		// delivery order, which cut-through SendAfter cannot guarantee.
		p.SleepUntil(ready)
		n.xmit(pkt, wr.Size+PktHeader)
	}
	n.stats.PutsSent++
}

func (n *NIC) sendGetReq(p *sim.Proc, wr WR, peer int) {
	done := n.datapath.Reserve(PktHeader)
	p.SleepUntil(done)
	n.xmit(Packet{
		Kind: CmdGet, DstPort: peer, OriginPort: wr.Port,
		Flags: wr.Flags, Size: wr.Size, SrcNLA: NLA(wr.SrcNLA), DstNLA: NLA(wr.DstNLA),
	}, PktHeader)
	n.stats.GetsSent++
}

// sendImmPut transmits an immediate put: the payload came with the WR,
// so no source DMA read happens at all.
func (n *NIC) sendImmPut(p *sim.Proc, wr WR, peer int) {
	data := make([]byte, wr.Size)
	for i := 0; i < wr.Size; i++ {
		data[i] = byte(wr.SrcNLA >> (8 * uint(i)))
	}
	p.SleepUntil(n.datapath.Reserve(wr.Size + PktHeader))
	n.xmit(Packet{
		Kind: CmdPut, DstPort: peer, OriginPort: wr.Port,
		Flags: wr.Flags, Size: wr.Size, DstNLA: NLA(wr.DstNLA), Data: data,
	}, wr.Size+PktHeader)
	n.stats.ImmPutsSent++
}

// sendAtomic transmits a fetch-and-add request; the operand travels in
// the WR's source-NLA word.
func (n *NIC) sendAtomic(p *sim.Proc, wr WR, peer int) {
	p.SleepUntil(n.datapath.Reserve(PktHeader))
	n.xmit(Packet{
		Kind: pktAtomic, DstPort: peer, OriginPort: wr.Port,
		Flags: wr.Flags, Size: 8, SrcNLA: NLA(wr.SrcNLA), DstNLA: NLA(wr.DstNLA),
	}, PktHeader)
}

// dispatch routes one received packet to a bounded worker.
func (n *NIC) dispatch(pkt Packet) {
	n.e.Spawn(n.cfg.Name+".rx.work", func(p *sim.Proc) {
		n.rxSlots.Acquire(p)
		defer n.rxSlots.Release()
		switch pkt.Kind {
		case CmdPut:
			n.completePut(p, pkt)
		case CmdGet:
			n.serveGet(p, pkt)
		case pktGetResp:
			n.completeGetResp(p, pkt)
		case pktAtomic:
			n.serveAtomic(p, pkt)
		case pktAtomicResp:
			// The previous value arrives in the completer notification's
			// second word — no memory write at the origin.
			p.Sleep(n.cyc(n.cfg.CompCycles))
			if pkt.Flags&FlagCompNotif != 0 && n.settleResponse(pkt.DstPort) {
				n.writeNotif(pkt.DstPort, ClassCompleter, 8, uint64(pkt.SrcNLA))
			}
		default:
			panic(fmt.Sprintf("extoll: %s: bad packet kind %d", n.cfg.Name, pkt.Kind))
		}
	})
}

// completePut lands a put's payload and notifies the completer ring.
func (n *NIC) completePut(p *sim.Proc, pkt Packet) {
	if n.e.Trace != nil {
		n.e.Tracef("%s: completer lands %dB put on port %d", n.cfg.Name, pkt.Size, pkt.DstPort)
	}
	var land sim.SpanID
	if n.e.Observing() {
		land = n.e.SpanOpen(n.cfg.Name, "complete", sim.Attr{Key: "bytes", Val: int64(pkt.Size)})
	}
	p.Sleep(n.cyc(n.cfg.CompCycles))
	dst, err := n.atu.Translate(pkt.DstNLA, pkt.Size)
	if err != nil {
		// Bad destination NLA at the sink: drop the payload and record
		// the protection failure.
		n.stats.TranslationErrs++
		n.e.SpanClose(land)
		return
	}
	p.SleepUntil(n.datapath.Reserve(pkt.Size))
	n.e.SpanCloseAt(land, n.f.WriteBulk(p, n.ep, dst, pkt.Data))
	if pkt.Flags&FlagCompNotif != 0 {
		n.writeNotif(pkt.DstPort, ClassCompleter, pkt.Size, uint64(pkt.DstNLA))
	}
	n.stats.PutsCompleted++
}

// serveGet reads local memory on behalf of a remote get and responds.
func (n *NIC) serveGet(p *sim.Proc, pkt Packet) {
	p.Sleep(n.cyc(n.cfg.CompCycles) + n.cyc(n.cfg.RespCycles))
	src, err := n.atu.Translate(pkt.SrcNLA, pkt.Size)
	if err != nil {
		panic(fmt.Sprintf("extoll: %s: responder: %v", n.cfg.Name, err))
	}
	buf := make([]byte, pkt.Size)
	var fetch sim.SpanID
	if n.e.Observing() {
		fetch = n.e.SpanOpen(n.cfg.Name, "dma.fetch", sim.Attr{Key: "bytes", Val: int64(pkt.Size)})
	}
	readDone := n.f.ReadBulkReserve(n.ep, src, buf)
	n.e.SpanCloseAt(fetch, readDone)
	dpDone := n.datapath.Reserve(pkt.Size + PktHeader)
	ready := readDone
	if dpDone > ready {
		ready = dpDone
	}
	resp := Packet{
		Kind: pktGetResp, DstPort: pkt.OriginPort, OriginPort: pkt.DstPort,
		Flags: pkt.Flags, Size: pkt.Size, DstNLA: pkt.DstNLA, Data: buf,
	}
	if n.rel == nil {
		n.tx.SendAfter(resp, pkt.Size+PktHeader, ready)
		p.SleepUntil(ready)
	} else {
		p.SleepUntil(ready)
		n.xmit(resp, pkt.Size+PktHeader)
	}
	if pkt.Flags&FlagRespNotif != 0 {
		n.writeNotif(pkt.DstPort, ClassResponder, pkt.Size, uint64(pkt.SrcNLA))
	}
	n.stats.GetReqsServed++
}

// serveAtomic performs a remote fetch-and-add: an atomic read-modify-
// write on the target word (which may live in GPU memory — the same P2P
// path as everything else), then a response carrying the old value.
func (n *NIC) serveAtomic(p *sim.Proc, pkt Packet) {
	p.Sleep(n.cyc(n.cfg.CompCycles) + n.cyc(n.cfg.RespCycles))
	dst, err := n.atu.Translate(pkt.DstNLA, 8)
	if err != nil {
		panic(fmt.Sprintf("extoll: %s: atomic: %v", n.cfg.Name, err))
	}
	// Read-modify-write across the fabric; the NIC holds the line for
	// the duration (single completer, so atomicity is structural).
	buf := make([]byte, 8)
	n.f.Read(p, n.ep, dst, buf)
	old := binary.LittleEndian.Uint64(buf)
	binary.LittleEndian.PutUint64(buf, old+uint64(pkt.SrcNLA))
	n.f.WriteBulk(p, n.ep, dst, buf)
	n.stats.AtomicsServed++
	n.xmit(Packet{
		Kind: pktAtomicResp, DstPort: pkt.OriginPort, OriginPort: pkt.DstPort,
		Flags: pkt.Flags, Size: 8, SrcNLA: NLA(old),
	}, PktHeader)
}

// completeGetResp lands get data at the origin and notifies its completer
// ring.
func (n *NIC) completeGetResp(p *sim.Proc, pkt Packet) {
	var land sim.SpanID
	if n.e.Observing() {
		land = n.e.SpanOpen(n.cfg.Name, "complete", sim.Attr{Key: "bytes", Val: int64(pkt.Size)})
	}
	p.Sleep(n.cyc(n.cfg.CompCycles))
	dst, err := n.atu.Translate(pkt.DstNLA, pkt.Size)
	if err != nil {
		panic(fmt.Sprintf("extoll: %s: get completer: %v", n.cfg.Name, err))
	}
	p.SleepUntil(n.datapath.Reserve(pkt.Size))
	n.e.SpanCloseAt(land, n.f.WriteBulk(p, n.ep, dst, pkt.Data))
	if pkt.Flags&FlagCompNotif != 0 && n.settleResponse(pkt.DstPort) {
		n.writeNotif(pkt.DstPort, ClassCompleter, pkt.Size, uint64(pkt.DstNLA))
	}
	n.stats.GetRespsCompleted++
}
