package extoll

import (
	"testing"
	"testing/quick"

	"putget/internal/memspace"
)

// Property: WR word encoding round-trips every field combination.
func TestWRRoundTripProperty(t *testing.T) {
	f := func(cmd uint8, flags uint8, size uint32, src, dst uint64) bool {
		in := WR{
			Cmd:    int(cmd % 4),
			Flags:  int(flags) & 0xf0,
			Size:   int(size),
			SrcNLA: src,
			DstNLA: dst,
		}
		out := DecodeWR(EncodeWR(in))
		return out.Cmd == in.Cmd && out.Flags == in.Flags && out.Size == in.Size &&
			out.SrcNLA == in.SrcNLA && out.DstNLA == in.DstNLA
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a registered range translates correctly at every in-bounds
// offset and rejects every out-of-bounds access.
func TestATUTranslationProperty(t *testing.T) {
	atu := NewATU()
	const base, size = 0x1_0000, 4096
	nla, err := atu.Register(base, size)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, n uint8) bool {
		length := int(n) + 1
		inBounds := int(off)+length <= size
		addr, err := atu.Translate(nla+NLA(off), length)
		if inBounds {
			return err == nil && addr == base+memspace.Addr(off)
		}
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: notification word encoding preserves class and size, and the
// valid bit is always set.
func TestNotifEncodingProperty(t *testing.T) {
	f := func(class uint8, size uint32) bool {
		c := int(class % 3)
		w0 := EncodeNotif(c, int(size))
		return NotifValid(w0) && NotifSize(w0) == int(size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct registrations never produce NLAs whose translated
// ranges alias (registration isolation).
func TestATURegistrationIsolation(t *testing.T) {
	atu := NewATU()
	n1, _ := atu.Register(0x1000, 256)
	n2, _ := atu.Register(0x5000, 256)
	f := func(off1, off2 uint8) bool {
		a1, err1 := atu.Translate(n1+NLA(off1), 1)
		a2, err2 := atu.Translate(n2+NLA(off2), 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return a1 != a2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
