package core

import (
	"bytes"
	"testing"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

type ibRig struct {
	tb     *cluster.Testbed
	va, vb *Verbs
	qa, qb *VQP
	srcMR  *ibsim.MR
	dstMR  *ibsim.MR
	src    memspace.Addr
	dst    memspace.Addr
}

func newIBRig(t *testing.T, onGPU bool) *ibRig {
	t.Helper()
	tb := cluster.NewIBPair(cluster.Default())
	va, vb := NewVerbs(tb.A), NewVerbs(tb.B)
	qa := va.CreateQP(256, 256, 256, onGPU)
	qb := vb.CreateQP(256, 256, 256, onGPU)
	ConnectVQPs(qa, qb)
	const size = 1 << 20
	src := tb.A.AllocDev(size)
	dst := tb.B.AllocDev(size)
	return &ibRig{
		tb: tb, va: va, vb: vb, qa: qa, qb: qb,
		srcMR: va.RegMR(src, size), dstMR: vb.RegMR(dst, size),
		src: src, dst: dst,
	}
}

func TestDevPostSendMovesData(t *testing.T) {
	for _, onGPU := range []bool{false, true} {
		r := newIBRig(t, onGPU)
		payload := make([]byte, 1024)
		for i := range payload {
			payload[i] = byte(i * 11)
		}
		if err := r.tb.A.GPU.HostWrite(r.src, payload); err != nil {
			t.Fatal(err)
		}
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			r.va.DevPostSend(w, r.qa, ibsim.WQE{
				Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: 1,
				LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: len(payload),
				RAddr: uint64(r.dst), RKey: r.dstMR.RKey,
			})
			cqe := r.va.DevPollCQ(w, r.qa.SendCQ)
			if cqe.Status != ibsim.StatusOK || cqe.WRID != 1 {
				t.Errorf("onGPU=%v: bad CQE %+v", onGPU, cqe)
			}
		})
		r.tb.E.Run()
		if !done.Done() {
			t.Fatalf("onGPU=%v: kernel stuck", onGPU)
		}
		got := make([]byte, len(payload))
		if err := r.tb.B.GPU.HostRead(r.dst, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("onGPU=%v: payload corrupted", onGPU)
		}
	}
}

func TestDevPostSendInstructionBudget(t *testing.T) {
	// The paper measures 442 instructions per ibv_post_send on the GPU.
	r := newIBRig(t, false)
	r.tb.A.GPU.ResetCounters()
	done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		r.va.DevPostSend(w, r.qa, ibsim.WQE{
			Opcode: ibsim.OpRDMAWrite, WRID: 1,
			LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: 64,
			RAddr: uint64(r.dst), RKey: r.dstMR.RKey,
		})
	})
	r.tb.E.Run()
	if !done.Done() {
		t.Fatal("kernel stuck")
	}
	instr := r.tb.A.GPU.Counters().InstrExecuted
	if instr < 420 || instr > 460 {
		t.Fatalf("DevPostSend = %d instructions, want ≈442", instr)
	}
}

func TestDevPollCQInstructionBudget(t *testing.T) {
	// The paper measures 283 instructions per successful ibv_poll_cq.
	r := newIBRig(t, false)
	done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		r.va.DevPostSend(w, r.qa, ibsim.WQE{
			Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: 1,
			LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: 64,
			RAddr: uint64(r.dst), RKey: r.dstMR.RKey,
		})
		// Let the completion land so the next poll succeeds first try.
		w.Proc().Sleep(50 * sim.Microsecond)
		r.tb.A.GPU.ResetCounters()
		if _, ok := r.va.DevTryPollCQ(w, r.qa.SendCQ); !ok {
			t.Error("completion not ready after 50us")
		}
	})
	r.tb.E.Run()
	if !done.Done() {
		t.Fatal("kernel stuck")
	}
	instr := r.tb.A.GPU.Counters().InstrExecuted
	if instr < 260 || instr > 300 {
		t.Fatalf("DevPollCQ success = %d instructions, want ≈283", instr)
	}
}

func TestStaticFieldOptAblation(t *testing.T) {
	cost := func(static bool) uint64 {
		r := newIBRig(t, false)
		r.va.StaticFieldOpt = static
		r.tb.A.GPU.ResetCounters()
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			r.va.DevPostSend(w, r.qa, ibsim.WQE{
				Opcode: ibsim.OpRDMAWrite, WRID: 1,
				LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: 64,
				RAddr: uint64(r.dst), RKey: r.dstMR.RKey,
			})
		})
		r.tb.E.Run()
		if !done.Done() {
			t.Fatal("kernel stuck")
		}
		return r.tb.A.GPU.Counters().InstrExecuted
	}
	withOpt, without := cost(true), cost(false)
	if without <= withOpt {
		t.Fatalf("static-field opt not saving instructions: %d vs %d", withOpt, without)
	}
	if without-withOpt < 100 {
		t.Fatalf("endianness ablation too small: %d vs %d", withOpt, without)
	}
}

func TestCollectivePostCheaper(t *testing.T) {
	single := func() (uint64, uint64) {
		r := newIBRig(t, false)
		r.tb.A.GPU.ResetCounters()
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			r.va.DevPostSend(w, r.qa, ibsim.WQE{
				Opcode: ibsim.OpRDMAWrite, WRID: 1,
				LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: 64,
				RAddr: uint64(r.dst), RKey: r.dstMR.RKey,
			})
		})
		r.tb.E.Run()
		if !done.Done() {
			t.Fatal("kernel stuck")
		}
		c := r.tb.A.GPU.Counters()
		return c.InstrExecuted, c.SysmemWrites32B
	}
	collective := func() (uint64, uint64) {
		r := newIBRig(t, false)
		r.tb.A.GPU.ResetCounters()
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: 8}, func(w *gpusim.Warp) {
			r.va.DevPostSendCollective(w, r.qa, ibsim.WQE{
				Opcode: ibsim.OpRDMAWrite, WRID: 1,
				LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: 64,
				RAddr: uint64(r.dst), RKey: r.dstMR.RKey,
			})
		})
		r.tb.E.Run()
		if !done.Done() {
			t.Fatal("kernel stuck")
		}
		c := r.tb.A.GPU.Counters()
		return c.InstrExecuted, c.SysmemWrites32B
	}
	si, sw := single()
	ci, cw := collective()
	if ci >= si/2 {
		t.Fatalf("collective post not ≥2x cheaper in instructions: %d vs %d", ci, si)
	}
	if cw >= sw {
		t.Fatalf("collective post not cheaper in transactions: %d vs %d", cw, sw)
	}
}

func TestDevPingPongPollLastElement(t *testing.T) {
	r := newIBRig(t, false)
	// Mutual buffers: A writes to B's dst, B writes back into A's src+8.
	backMR := r.va.RegMR(r.src+4096, 4096)
	srcOnB := r.vb.RegMR(r.dst, 1<<20) // B reads its own landing buffer
	const iters = 5
	doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		for i := 1; i <= iters; i++ {
			w.StGlobalU64(r.src, uint64(i)) // payload = seq
			r.va.DevPostSend(w, r.qa, ibsim.WQE{
				Opcode: ibsim.OpRDMAWrite, WRID: uint64(i),
				LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: 8,
				RAddr: uint64(r.dst), RKey: r.dstMR.RKey,
			})
			// Wait for the pong: poll last received element in devmem.
			for w.LdGlobalU64(r.src+4096) != uint64(i) {
				w.Exec(2)
			}
		}
	})
	doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		for i := 1; i <= iters; i++ {
			// Wait for ping i.
			for w.LdGlobalU64(r.dst) != uint64(i) {
				w.Exec(2)
			}
			r.vb.DevPostSend(w, r.qb, ibsim.WQE{
				Opcode: ibsim.OpRDMAWrite, WRID: uint64(i),
				LAddr: uint64(r.dst), LKey: srcOnB.LKey, Length: 8,
				RAddr: uint64(r.src + 4096), RKey: backMR.RKey,
			})
		}
	})
	r.tb.E.Run()
	if !doneA.Done() || !doneB.Done() {
		t.Fatal("ping-pong deadlocked")
	}
}

func TestHostPostSendAndPoll(t *testing.T) {
	r := newIBRig(t, false)
	payload := []byte("host verbs path")
	if err := r.tb.A.GPU.HostWrite(r.src, payload); err != nil {
		t.Fatal(err)
	}
	var cqe ibsim.CQE
	r.tb.E.Spawn("cpuA", func(p *sim.Proc) {
		r.va.HostPostSend(p, r.qa, ibsim.WQE{
			Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: 7,
			LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: len(payload),
			RAddr: uint64(r.dst), RKey: r.dstMR.RKey,
		})
		cqe = r.va.HostPollCQ(p, r.qa.SendCQ)
	})
	r.tb.E.Run()
	if cqe.WRID != 7 || cqe.Status != ibsim.StatusOK {
		t.Fatalf("CQE = %+v", cqe)
	}
	got := make([]byte, len(payload))
	if err := r.tb.B.GPU.HostRead(r.dst, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
}

func TestHostWriteWithImmediate(t *testing.T) {
	r := newIBRig(t, false)
	var recvCQE ibsim.CQE
	r.tb.E.Spawn("cpuB", func(p *sim.Proc) {
		r.vb.HostPostRecv(p, r.qb, ibsim.RecvWQE{WRID: 100})
		recvCQE = r.vb.HostPollCQ(p, r.qb.RecvCQ)
	})
	r.tb.E.SpawnAt(sim.Time(5*sim.Microsecond), "cpuA", func(p *sim.Proc) {
		r.va.HostPostSend(p, r.qa, ibsim.WQE{
			Opcode: ibsim.OpRDMAWriteImm, WRID: 8, Imm: 0x1234,
			LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: 128,
			RAddr: uint64(r.dst), RKey: r.dstMR.RKey,
		})
	})
	r.tb.E.Run()
	if recvCQE.WRID != 100 || recvCQE.Imm != 0x1234 || recvCQE.ByteLen != 128 {
		t.Fatalf("recv CQE = %+v", recvCQE)
	}
}

func TestQueuePlacementSysmemTrafficDiffers(t *testing.T) {
	// The structural claim behind Table II: host-resident queues make the
	// GPU touch system memory on every post/poll; GPU-resident queues
	// keep that traffic in device memory (only the doorbell remains).
	traffic := func(onGPU bool) (reads, writes uint64) {
		r := newIBRig(t, onGPU)
		r.tb.A.GPU.ResetCounters()
		done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
			r.va.DevPostSend(w, r.qa, ibsim.WQE{
				Opcode: ibsim.OpRDMAWrite, Flags: ibsim.FlagSignaled, WRID: 1,
				LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: 64,
				RAddr: uint64(r.dst), RKey: r.dstMR.RKey,
			})
			r.va.DevPollCQ(w, r.qa.SendCQ)
		})
		r.tb.E.Run()
		if !done.Done() {
			t.Fatal("kernel stuck")
		}
		c := r.tb.A.GPU.Counters()
		return c.SysmemReads32B, c.SysmemWrites32B
	}
	hostR, hostW := traffic(false)
	gpuR, gpuW := traffic(true)
	if gpuR >= hostR {
		t.Fatalf("GPU queues should cut sysmem reads: %d vs %d", gpuR, hostR)
	}
	if gpuW >= hostW {
		t.Fatalf("GPU queues should cut sysmem writes: %d vs %d", gpuW, hostW)
	}
	if gpuW == 0 {
		t.Fatal("doorbell must still be a sysmem write")
	}
}

func TestDevPostRecvAndDeviceSendRecv(t *testing.T) {
	// GPU posts its own receive WQEs; a two-sided send from the peer GPU
	// lands at the posted address and completes into the recv CQ.
	r := newIBRig(t, false)
	payload := uint64(0xabcdef99)
	doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		r.vb.DevPostRecv(w, r.qb, ibsim.RecvWQE{
			WRID: 55, Addr: uint64(r.dst), LKey: r.dstMR.LKey,
		})
		cqe := r.vb.DevPollCQ(w, r.qb.RecvCQ)
		if cqe.WRID != 55 || cqe.Status != ibsim.StatusOK {
			t.Errorf("recv CQE = %+v", cqe)
		}
		if got := w.LdGlobalU64(r.dst); got != payload {
			t.Errorf("send payload = %#x", got)
		}
	})
	doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		w.Proc().Sleep(20 * sim.Microsecond) // let B post its recv
		w.StGlobalU64(r.src, payload)
		r.va.DevPostSend(w, r.qa, ibsim.WQE{
			Opcode: ibsim.OpSend, Flags: ibsim.FlagSignaled, WRID: 1,
			LAddr: uint64(r.src), LKey: r.srcMR.LKey, Length: 8,
		})
		r.va.DevPollCQ(w, r.qa.SendCQ)
	})
	r.tb.E.Run()
	if !doneA.Done() || !doneB.Done() {
		t.Fatal("device send/recv deadlocked")
	}
}
