// Package core implements the paper's contribution: the EXTOLL RMA and
// InfiniBand Verbs put/get APIs extended into the GPU domain, so that
// simulated CUDA kernels create work requests, ring doorbells and consume
// completion information without any CPU involvement — plus the host-side
// variants (host-controlled and host-assisted) the paper compares against.
//
// Every device-side function charges the instruction and memory-transaction
// costs the paper measures with performance counters; every host-side
// function charges the (much smaller) CPU costs. The same functions drive
// the latency, bandwidth, message-rate and counter experiments.
package core

import (
	"fmt"

	"putget/internal/cluster"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/hostsim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// RMA is the EXTOLL put/get API bound to one node, mirroring librma with
// the GPU extensions of §III-C: the requester BAR pages and notification
// queues are mapped into the GPU address space (GPUDirect + driver patch),
// so either processor can drive them.
type RMA struct {
	Node *cluster.Node
	NIC  *extoll.NIC

	// rp holds the software read cursor per (port, class) ring. Exactly
	// one consumer drives a given ring in any experiment.
	rp map[[2]int]int
}

// NewRMA binds the API to a node's EXTOLL NIC.
func NewRMA(n *cluster.Node) *RMA {
	if n.Extoll == nil {
		panic("core: node has no EXTOLL NIC")
	}
	return &RMA{Node: n, NIC: n.Extoll, rp: map[[2]int]int{}}
}

// Register registers memory with the ATU (host or GPU device memory; the
// MMIO-translation driver patch of §III-C is always applied here).
func (r *RMA) Register(addr memspace.Addr, size uint64) extoll.NLA {
	nla, err := r.NIC.ATU().Register(addr, size)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return nla
}

// OpenPort opens an RMA port and returns its requester page address.
func (r *RMA) OpenPort(port int) memspace.Addr {
	return r.NIC.OpenPort(port)
}

// ---- device-side API (runs in GPU kernels) ----

// span opens a pipeline-stage span on the node's engine when observed;
// SpanClose/SpanCloseAt on the returned zero id is a no-op otherwise.
func (r *RMA) span(comp, kind string, size int) sim.SpanID {
	e := r.Node.E
	if !e.Observing() {
		return 0
	}
	return e.SpanOpen(comp, kind, sim.Attr{Key: "size", Val: int64(size)})
}

// DevPut creates a put work request with a single GPU thread and writes it
// word-by-word to the port's requester page: three 64-bit MMIO stores, a
// few ALU instructions for field assembly — the paper's EXTOLL fast path.
func (r *RMA) DevPut(w *gpusim.Warp, port int, src, dst extoll.NLA, size, flags int) {
	id := r.span(w.GPU().Name(), "wr.create", size)
	page := r.NIC.PortPage(port)
	w.Exec(8) // assemble word0, compute page address
	w.StSysU64(page+0, extoll.EncodeWord0(extoll.CmdPut, flags, size))
	w.StSysU64(page+8, uint64(src))
	w.StSysU64(page+16, uint64(dst))
	r.Node.E.SpanClose(id)
}

// DevPutImm creates an immediate put: up to 8 bytes of payload travel in
// the work request itself, sparing the NIC the source DMA read — the
// lowest-latency GPU-initiated transfer this fabric offers (claim 3 of
// §VI: minimal PCIe transfers for control AND data).
func (r *RMA) DevPutImm(w *gpusim.Warp, port int, value uint64, dst extoll.NLA, size, flags int) {
	page := r.NIC.PortPage(port)
	w.Exec(8)
	w.StSysU64(page+0, extoll.EncodeWord0(extoll.CmdImmPut, flags, size))
	w.StSysU64(page+8, value)
	w.StSysU64(page+16, uint64(dst))
}

// DevFetchAdd issues a remote atomic fetch-and-add on a 64-bit word. The
// previous value returns through the completer notification; consume it
// with DevWaitNotifValue.
func (r *RMA) DevFetchAdd(w *gpusim.Warp, port int, addend uint64, dst extoll.NLA) {
	page := r.NIC.PortPage(port)
	w.Exec(8)
	w.StSysU64(page+0, extoll.EncodeWord0(extoll.CmdFetchAdd, extoll.FlagCompNotif, 8))
	w.StSysU64(page+8, addend)
	w.StSysU64(page+16, uint64(dst))
}

// DevGet creates a get work request from the GPU.
func (r *RMA) DevGet(w *gpusim.Warp, port int, src, dst extoll.NLA, size, flags int) {
	id := r.span(w.GPU().Name(), "wr.create", size)
	page := r.NIC.PortPage(port)
	w.Exec(8)
	w.StSysU64(page+0, extoll.EncodeWord0(extoll.CmdGet, flags, size))
	w.StSysU64(page+8, uint64(src))
	w.StSysU64(page+16, uint64(dst))
	r.Node.E.SpanClose(id)
}

// DevPutCollective is the thread-collective descriptor write the paper's
// claims (§VI) call for: a warp builds the WR cooperatively and issues it
// as one coalesced store burst, cutting both instructions and PCIe
// transactions. Requires ≥3 active lanes.
func (r *RMA) DevPutCollective(w *gpusim.Warp, port int, src, dst extoll.NLA, size, flags int) {
	if w.Lanes < extoll.WRWords {
		panic("core: DevPutCollective needs at least 3 lanes")
	}
	id := r.span(w.GPU().Name(), "wr.create", size)
	page := r.NIC.PortPage(port)
	w.Exec(4) // each lane computes its word in parallel
	buf := make([]byte, extoll.WRBytes)
	words := extoll.EncodeWR(extoll.WR{Cmd: extoll.CmdPut, Flags: flags, Size: size,
		SrcNLA: uint64(src), DstNLA: uint64(dst)})
	for i, v := range words {
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(v >> (8 * uint(b)))
		}
	}
	w.StSysCoalesced(page, buf)
	r.Node.E.SpanClose(id)
}

// DevTryConsumeNotif polls the (port, class) notification ring once. On a
// valid entry it consumes it the way the paper describes: read the
// 128-bit notification (2 loads), free it by zeroing (2 stores), and
// advance the ring's read pointer in the queue structure (1 store).
// Returns the notification's size field and true, or false if empty.
func (r *RMA) DevTryConsumeNotif(w *gpusim.Warp, port, class int) (int, bool) {
	size, _, ok := r.DevTryConsumeNotifValue(w, port, class)
	return size, ok
}

// DevTryConsumeNotifValue is DevTryConsumeNotif but also returns the
// notification's second word (the cookie — a fetch-add result, an NLA).
func (r *RMA) DevTryConsumeNotifValue(w *gpusim.Warp, port, class int) (int, uint64, bool) {
	w0, cookie, ok := r.devTryConsume(w, port, class)
	if !ok {
		return 0, 0, false
	}
	return extoll.NotifSize(w0), cookie, true
}

// devTryConsume is the raw single-probe consume: it returns the full
// first notification word so callers can inspect the error and timeout
// flags, with exactly the same cost model as DevTryConsumeNotifValue.
func (r *RMA) devTryConsume(w *gpusim.Warp, port, class int) (uint64, uint64, bool) {
	key := [2]int{port, class}
	idx := r.rp[key]
	entry := r.NIC.NotifEntryAddr(port, class, idx)
	// Library overhead per query: ring arithmetic, bounds checks, call
	// frames and type dispatch of the notification API.
	w.Exec(28)
	w0 := devLd64(w, entry) // host ring: PCIe read; device ring: L2 access
	if !extoll.NotifValid(w0) {
		return 0, 0, false
	}
	cookie := devLd64(w, entry+8) // second notification word
	w.Exec(30)                    // decode type/size/payload fields
	devSt64(w, entry, 0)          // free: reset to zero
	devSt64(w, entry+8, 0)
	rp := r.NIC.NotifRPAddr(port, class)
	if w.GPU().DevMem().Contains(rp) {
		devSt64(w, rp, uint64(idx+1))
	} else {
		w.StSysU32(rp, uint32(idx+1)) // 32-bit read-pointer update
	}
	r.rp[key] = idx + 1
	return w0, cookie, true
}

// DevWaitNotifValue spins until a notification arrives and returns both
// its size and its second word.
func (r *RMA) DevWaitNotifValue(w *gpusim.Warp, port, class int) (int, uint64) {
	id := r.span(w.GPU().Name(), "poll.notif", class)
	for {
		if size, cookie, ok := r.DevTryConsumeNotifValue(w, port, class); ok {
			r.Node.E.SpanClose(id)
			return size, cookie
		}
		w.Exec(2)
	}
}

// DevWaitNotif spins on the ring until a notification arrives and
// consumes it. Every probe is a system-memory read over PCIe — the
// behaviour Table I charges against the "system memory" polling approach.
func (r *RMA) DevWaitNotif(w *gpusim.Warp, port, class int) int {
	id := r.span(w.GPU().Name(), "poll.notif", class)
	for {
		if size, ok := r.DevTryConsumeNotif(w, port, class); ok {
			r.Node.E.SpanClose(id)
			return size
		}
		w.Exec(2) // loop branch
	}
}

// NotifResult describes a consumed notification for the bounded-wait
// variants: payload size plus the error and response-timeout flags the
// fault-tolerant fabric can set.
type NotifResult struct {
	Size    int
	Err     bool // the NIC reported a failure (translation, timeout, ...)
	Timeout bool // specifically: the op's network response never arrived
}

// DevWaitNotifTimeout spins like DevWaitNotif but gives up after
// `timeout` of virtual time, so a kernel facing a dead fabric degrades
// instead of deadlocking. ok is false when the deadline passed with no
// notification; otherwise the result carries the notification's error
// flags, which callers must check before trusting the payload.
func (r *RMA) DevWaitNotifTimeout(w *gpusim.Warp, port, class int, timeout sim.Duration) (NotifResult, bool) {
	id := r.span(w.GPU().Name(), "poll.notif", class)
	deadline := w.Now().Add(timeout)
	for {
		if w0, _, ok := r.devTryConsume(w, port, class); ok {
			r.Node.E.SpanClose(id)
			return NotifResult{
				Size: extoll.NotifSize(w0), Err: extoll.NotifErr(w0), Timeout: extoll.NotifTimeout(w0),
			}, true
		}
		w.Exec(2)
		if w.Now() >= deadline {
			r.Node.E.SpanClose(id)
			return NotifResult{}, false
		}
	}
}

// HostWaitNotifTimeout is the CPU-side bounded wait.
func (r *RMA) HostWaitNotifTimeout(p *sim.Proc, port, class int, timeout sim.Duration) (NotifResult, bool) {
	id := r.span(r.Node.CPU.Name(), "poll.notif", class)
	deadline := p.Now().Add(timeout)
	for {
		if w0, ok := r.hostTryConsume(p, port, class); ok {
			r.Node.E.SpanClose(id)
			return NotifResult{
				Size: extoll.NotifSize(w0), Err: extoll.NotifErr(w0), Timeout: extoll.NotifTimeout(w0),
			}, true
		}
		if p.Now() >= deadline {
			r.Node.E.SpanClose(id)
			return NotifResult{}, false
		}
	}
}

// DevPollU64 spins on a device-memory word until it holds want — the
// paper's dev2dev-pollOnGPU approach: probes hit in L2 until the NIC's
// DMA write invalidates the sector.
func (r *RMA) DevPollU64(w *gpusim.Warp, addr memspace.Addr, want uint64) {
	w.PollGlobalU64(addr, want)
}

// DevPollU64Masked waits until (word & mask) == want, for payloads
// smaller than 8 bytes whose sequence stamp only covers the low bytes.
func (r *RMA) DevPollU64Masked(w *gpusim.Warp, addr memspace.Addr, want, mask uint64) {
	w.PollGlobalU64Masked(addr, want, mask)
}

// DevPollU64Timeout is DevPollU64Masked with a deadline; it reports
// whether the condition was met before `timeout` elapsed.
func (r *RMA) DevPollU64Timeout(w *gpusim.Warp, addr memspace.Addr, want, mask uint64, timeout sim.Duration) bool {
	_, ok := w.PollGlobalU64MaskedTimeout(addr, want, mask, timeout)
	return ok
}

// ---- host-side API (runs on CPU threads) ----

// HostPut creates and posts a put WR from the CPU: descriptor assembly at
// host speed and one write-combined 24-byte MMIO burst.
func (r *RMA) HostPut(p *sim.Proc, port int, src, dst extoll.NLA, size, flags int) {
	cpu := r.Node.CPU
	id := r.span(cpu.Name(), "wr.create", size)
	defer r.Node.E.SpanClose(id)
	cpu.GenWR(p)
	words := extoll.EncodeWR(extoll.WR{Cmd: extoll.CmdPut, Flags: flags, Size: size,
		SrcNLA: uint64(src), DstNLA: uint64(dst)})
	buf := make([]byte, extoll.WRBytes)
	for i, v := range words {
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(v >> (8 * uint(b)))
		}
	}
	cpu.MMIOWriteBurst(p, r.NIC.PortPage(port), buf)
}

// HostPutImm posts an immediate put from the CPU.
func (r *RMA) HostPutImm(p *sim.Proc, port int, value uint64, dst extoll.NLA, size, flags int) {
	cpu := r.Node.CPU
	cpu.GenWR(p)
	words := extoll.EncodeWR(extoll.WR{Cmd: extoll.CmdImmPut, Flags: flags, Size: size,
		SrcNLA: value, DstNLA: uint64(dst)})
	buf := make([]byte, extoll.WRBytes)
	for i, v := range words {
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(v >> (8 * uint(b)))
		}
	}
	cpu.MMIOWriteBurst(p, r.NIC.PortPage(port), buf)
}

// HostFetchAdd posts a remote fetch-and-add from the CPU and returns the
// previous value via the completer notification.
func (r *RMA) HostFetchAdd(p *sim.Proc, port int, addend uint64, dst extoll.NLA) uint64 {
	cpu := r.Node.CPU
	cpu.GenWR(p)
	words := extoll.EncodeWR(extoll.WR{Cmd: extoll.CmdFetchAdd, Flags: extoll.FlagCompNotif,
		Size: 8, SrcNLA: addend, DstNLA: uint64(dst)})
	buf := make([]byte, extoll.WRBytes)
	for i, v := range words {
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(v >> (8 * uint(b)))
		}
	}
	cpu.MMIOWriteBurst(p, r.NIC.PortPage(port), buf)
	for {
		if _, cookie, ok := r.HostTryConsumeNotifValue(p, port, extoll.ClassCompleter); ok {
			return cookie
		}
	}
}

// HostGet creates and posts a get WR from the CPU.
func (r *RMA) HostGet(p *sim.Proc, port int, src, dst extoll.NLA, size, flags int) {
	cpu := r.Node.CPU
	id := r.span(cpu.Name(), "wr.create", size)
	defer r.Node.E.SpanClose(id)
	cpu.GenWR(p)
	words := extoll.EncodeWR(extoll.WR{Cmd: extoll.CmdGet, Flags: flags, Size: size,
		SrcNLA: uint64(src), DstNLA: uint64(dst)})
	buf := make([]byte, extoll.WRBytes)
	for i, v := range words {
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(v >> (8 * uint(b)))
		}
	}
	cpu.MMIOWriteBurst(p, r.NIC.PortPage(port), buf)
}

// HostTryConsumeNotif polls the ring once from the CPU (cache-speed host
// memory reads) and consumes a valid entry.
func (r *RMA) HostTryConsumeNotif(p *sim.Proc, port, class int) (int, bool) {
	size, _, ok := r.HostTryConsumeNotifValue(p, port, class)
	return size, ok
}

// HostTryConsumeNotifValue is HostTryConsumeNotif with the cookie word.
func (r *RMA) HostTryConsumeNotifValue(p *sim.Proc, port, class int) (int, uint64, bool) {
	cpu := r.Node.CPU
	key := [2]int{port, class}
	idx := r.rp[key]
	entry := r.NIC.NotifEntryAddr(port, class, idx)
	w0 := cpu.ReadU64(p, entry)
	if !extoll.NotifValid(w0) {
		return 0, 0, false
	}
	cookie := cpu.ReadU64(p, entry+8)
	cpu.WriteU64(p, entry, 0)
	cpu.WriteU64(p, entry+8, 0)
	cpu.WriteU64(p, r.NIC.NotifRPAddr(port, class), uint64(idx+1))
	r.rp[key] = idx + 1
	return extoll.NotifSize(w0), cookie, true
}

// hostTryConsume is HostTryConsumeNotifValue returning the raw first
// word, for callers that inspect the error/timeout flags.
func (r *RMA) hostTryConsume(p *sim.Proc, port, class int) (uint64, bool) {
	cpu := r.Node.CPU
	key := [2]int{port, class}
	idx := r.rp[key]
	entry := r.NIC.NotifEntryAddr(port, class, idx)
	w0 := cpu.ReadU64(p, entry)
	if !extoll.NotifValid(w0) {
		return 0, false
	}
	cpu.ReadU64(p, entry+8)
	cpu.WriteU64(p, entry, 0)
	cpu.WriteU64(p, entry+8, 0)
	cpu.WriteU64(p, r.NIC.NotifRPAddr(port, class), uint64(idx+1))
	r.rp[key] = idx + 1
	return w0, true
}

// HostWaitNotif spins until a notification arrives and consumes it.
func (r *RMA) HostWaitNotif(p *sim.Proc, port, class int) int {
	id := r.span(r.Node.CPU.Name(), "poll.notif", class)
	for {
		if size, ok := r.HostTryConsumeNotif(p, port, class); ok {
			r.Node.E.SpanClose(id)
			return size
		}
	}
}

// ---- host-assisted protocol ----

// AssistFlags is the host-memory mailbox the GPU uses to trigger the CPU:
// one request word and one acknowledge word per agent. The flag lives in
// host memory mapped into the GPU address space (zero-copy), as §V-A
// describes.
type AssistFlags struct {
	Req memspace.Addr // GPU writes a request sequence number
	Ack memspace.Addr // CPU acknowledges with the same number
}

// NewAssistFlags allocates a mailbox in host memory.
func NewAssistFlags(n *cluster.Node) AssistFlags {
	return AssistFlags{Req: n.AllocHost(8), Ack: n.AllocHost(8)}
}

// DevRequestAssist posts a request from the GPU (one system-memory store
// plus a fence) and returns without waiting.
func DevRequestAssist(w *gpusim.Warp, f AssistFlags, seq uint64) {
	w.Exec(4)
	w.StSysU64(f.Req, seq)
	w.ThreadfenceSystem()
}

// DevAwaitAssistAck spins on the acknowledge word across PCIe.
func DevAwaitAssistAck(w *gpusim.Warp, f AssistFlags, seq uint64) {
	for w.LdSysU64(f.Ack) != seq {
		w.Exec(2)
	}
}

// HostAwaitAssistReq blocks the CPU until the request word reaches seq.
func HostAwaitAssistReq(p *sim.Proc, cpu *hostsim.CPU, f AssistFlags, seq uint64) {
	cpu.WaitFlag(p, f.Req, seq)
}

// HostAckAssist acknowledges a serviced request.
func HostAckAssist(p *sim.Proc, cpu *hostsim.CPU, f AssistFlags, seq uint64) {
	cpu.WriteU64(p, f.Ack, seq)
}
