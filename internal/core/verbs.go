package core

import (
	"encoding/binary"
	"fmt"

	"putget/internal/cluster"
	"putget/internal/gpusim"
	"putget/internal/ibsim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// Verbs is the InfiniBand Verbs API bound to one node, with the GPU port
// of §IV-B: ibv_post_send / ibv_post_recv / ibv_poll_cq callable from
// device code, and queue buffers placeable in host or GPU memory.
type Verbs struct {
	Node *cluster.Node
	HCA  *ibsim.HCA
	// StaticFieldOpt applies the paper's optimization of pre-converting
	// endianness-static WQE fields ("we used static converted values
	// where possible"). The measured 442-instruction post cost includes
	// this optimization; disabling it is an ablation.
	StaticFieldOpt bool
}

// NewVerbs binds the API to a node's HCA.
func NewVerbs(n *cluster.Node) *Verbs {
	if n.IB == nil {
		panic("core: node has no InfiniBand HCA")
	}
	return &Verbs{Node: n, HCA: n.IB, StaticFieldOpt: true}
}

// RegMR registers a memory region (host or GPU).
func (v *Verbs) RegMR(addr memspace.Addr, size uint64) *ibsim.MR {
	return v.HCA.RegMR(addr, size)
}

// VCQ wraps a completion queue with its software consumer state.
type VCQ struct {
	CQ    *ibsim.CQ
	CIDoc memspace.Addr // consumer-index doorbell record in queue memory
	head  int
	OnGPU bool
}

// VQP wraps a queue pair with software producer state.
type VQP struct {
	QP     *ibsim.QP
	SendCQ *VCQ
	RecvCQ *VCQ
	sqTail int
	rqTail int
	OnGPU  bool
}

// SQTail returns the software producer index (posted WQEs).
func (q *VQP) SQTail() int { return q.sqTail }

// CreateQP allocates SQ/RQ/CQ rings in host or GPU memory (the paper's
// buffer-placement axis) and creates the QP.
func (v *Verbs) CreateQP(sqEntries, rqEntries, cqEntries int, onGPU bool) *VQP {
	alloc := v.Node.AllocHost
	if onGPU {
		alloc = v.Node.AllocDev
	}
	sq := alloc(uint64(sqEntries * ibsim.WQEBytes))
	rq := alloc(uint64(rqEntries * ibsim.RecvWQEBytes))
	newCQ := func() *VCQ {
		ring := alloc(uint64(cqEntries * ibsim.CQEBytes))
		ci := alloc(8)
		return &VCQ{CQ: v.HCA.CreateCQ(ring, cqEntries), CIDoc: ci, OnGPU: onGPU}
	}
	scq, rcq := newCQ(), newCQ()
	qp := v.HCA.CreateQP(sq, sqEntries, rq, rqEntries, scq.CQ, rcq.CQ)
	return &VQP{QP: qp, SendCQ: scq, RecvCQ: rcq, OnGPU: onGPU}
}

// ConnectVQPs brings both QPs of an RC connection to RTS.
func ConnectVQPs(a, b *VQP) { ibsim.ConnectQPs(a.QP, b.QP) }

// ---- GPU load/store routing: queue buffers may live in either memory ----

func devSt64(w *gpusim.Warp, addr memspace.Addr, val uint64) {
	if w.GPU().DevMem().Contains(addr) {
		w.StGlobalU64(addr, val)
	} else {
		w.StSysU64(addr, val)
	}
}

func devLd64(w *gpusim.Warp, addr memspace.Addr) uint64 {
	if w.GPU().DevMem().Contains(addr) {
		return w.LdGlobalU64(addr)
	}
	return w.LdSysU64(addr)
}

// Instruction-cost model for the device-side verbs port. The constants
// reproduce the paper's measurements: 442 instructions per ibv_post_send
// and 283 per successful ibv_poll_cq (§V-B.3), dominated by little- to
// big-endian conversion and queue bookkeeping on a single GPU thread.
const (
	postProlog       = 60 // ring arithmetic, ownership/wrap checks
	postDynField     = 40 // convert one request-dependent field (bswap etc.)
	postStaticField  = 8  // copy one pre-converted static field
	postStampCost    = 20 // stamp older queue elements for the prefetcher
	postDoorbellCalc = 80 // doorbell value, memory barriers
	postEpilog       = 30 // producer-index update, bookkeeping
	nDynFields       = 5  // laddr, raddr, length, wr_id, imm
	nStaticFields    = 4  // opcode, flags, lkey, rkey

	pollProbe    = 4   // ring arithmetic + validity test per probe
	pollConvert  = 60  // endianness conversion of the CQE
	pollQPLookup = 120 // "the associated QP has to be picked out of the list"
	pollHandle   = 70  // completion handling and validation
	pollCIUpdate = 10  // consumer-index doorbell record update
)

// vspan opens a pipeline-stage span on the node's engine when observed.
func (v *Verbs) vspan(comp, kind string, size int) sim.SpanID {
	e := v.Node.E
	if !e.Observing() {
		return 0
	}
	return e.SpanOpen(comp, kind, sim.Attr{Key: "size", Val: int64(size)})
}

// DevPostSend is ibv_post_send ported to the GPU: one thread builds the
// 64-byte big-endian WQE in queue memory (host or device), stamps the
// previous element, and rings the doorbell with an MMIO store.
func (v *Verbs) DevPostSend(w *gpusim.Warp, qp *VQP, wqe ibsim.WQE) {
	id := v.vspan(w.GPU().Name(), "wqe.post", wqe.Length)
	defer v.Node.E.SpanClose(id)
	slotIdx := qp.sqTail
	slot := qp.QP.SQSlotAddr(slotIdx)
	w.Exec(postProlog)

	// Stamp the previous queue element (reserved word, offset 56).
	w.Exec(postStampCost)
	prev := qp.QP.SQSlotAddr(slotIdx + qp.QP.SQEntries - 1)
	devSt64(w, prev+56, 0xdead)

	// Field conversion: dynamic fields are byte-swapped per request;
	// static ones were pre-converted at QP setup when the optimization is
	// on.
	w.Exec(nDynFields * postDynField)
	if v.StaticFieldOpt {
		w.Exec(nStaticFields * postStaticField)
	} else {
		w.Exec(nStaticFields * postDynField)
	}

	// Write the WQE as eight 64-bit stores.
	buf := make([]byte, ibsim.WQEBytes)
	ibsim.EncodeWQE(wqe, buf)
	for i := 0; i < ibsim.WQEBytes/8; i++ {
		devSt64(w, slot+memspace.Addr(i*8), binary.LittleEndian.Uint64(buf[i*8:]))
	}

	// Doorbell: compute the value, fence, one MMIO store.
	w.Exec(postDoorbellCalc)
	w.ThreadfenceSystem()
	qp.sqTail++
	w.StSysU64(v.HCA.DoorbellSQAddr(), uint64(qp.QP.QPN)<<32|uint64(qp.sqTail))
	w.Exec(postEpilog)
}

// DevPostSendCollective is the warp-cooperative variant the paper's
// claims motivate: 8 lanes convert fields in parallel and the WQE leaves
// as one coalesced store, collapsing both instruction count and PCIe
// transactions.
func (v *Verbs) DevPostSendCollective(w *gpusim.Warp, qp *VQP, wqe ibsim.WQE) {
	if w.Lanes < 8 {
		panic("core: DevPostSendCollective needs at least 8 lanes")
	}
	id := v.vspan(w.GPU().Name(), "wqe.post", wqe.Length)
	defer v.Node.E.SpanClose(id)
	slot := qp.QP.SQSlotAddr(qp.sqTail)
	w.Exec(postProlog / 4) // cooperative ring management
	w.Exec(postDynField)   // all lanes convert their field concurrently
	buf := make([]byte, ibsim.WQEBytes)
	ibsim.EncodeWQE(wqe, buf)
	prev := qp.QP.SQSlotAddr(qp.sqTail + qp.QP.SQEntries - 1)
	devSt64(w, prev+56, 0xdead)
	if w.GPU().DevMem().Contains(slot) {
		vals := make([]uint64, 8)
		for i := range vals {
			vals[i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
		w.StGlobalU64Coalesced(slot, vals)
	} else {
		w.StSysCoalesced(slot, buf)
	}
	w.Exec(postDoorbellCalc / 4)
	w.ThreadfenceSystem()
	qp.sqTail++
	w.StSysU64(v.HCA.DoorbellSQAddr(), uint64(qp.QP.QPN)<<32|uint64(qp.sqTail))
	w.Exec(postEpilog / 4)
}

// DevTryPollCQ is one ibv_poll_cq probe from the GPU. An empty probe
// costs one queue-memory load; a successful one additionally pays CQE
// conversion, QP lookup, consumption and the consumer-index update.
func (v *Verbs) DevTryPollCQ(w *gpusim.Warp, cq *VCQ) (ibsim.CQE, bool) {
	slot := cq.CQ.EntryAddr(cq.head)
	w.Exec(pollProbe)
	if !ibsim.CQEValidWord(devLd64(w, slot)) {
		return ibsim.CQE{}, false
	}
	// Read the remaining 24 bytes of the CQE — independent loads that
	// pipeline into one round trip.
	rest := make([]byte, ibsim.CQEBytes-8)
	if w.GPU().DevMem().Contains(slot) {
		w.LdGlobalBytes(slot+8, rest)
	} else {
		w.LdSysBytes(slot+8, rest)
	}
	w.Exec(pollConvert + pollQPLookup + pollHandle)
	// Functional decode from queue memory.
	buf := make([]byte, ibsim.CQEBytes)
	if err := v.Node.Space.Read(slot, buf); err != nil {
		panic(fmt.Sprintf("core: poll cq: %v", err))
	}
	cqe := ibsim.DecodeCQE(buf)
	// Free the CQE (zero all four words) and update the consumer index.
	for i := 0; i < ibsim.CQEBytes/8; i++ {
		devSt64(w, slot+memspace.Addr(i*8), 0)
	}
	w.Exec(pollCIUpdate)
	devSt64(w, cq.CIDoc, uint64(cq.head+1))
	cq.head++
	return cqe, true
}

// DevPollCQ spins until a completion arrives.
func (v *Verbs) DevPollCQ(w *gpusim.Warp, cq *VCQ) ibsim.CQE {
	id := v.vspan(w.GPU().Name(), "poll.cq", 0)
	for {
		if cqe, ok := v.DevTryPollCQ(w, cq); ok {
			v.Node.E.SpanClose(id)
			return cqe
		}
		w.Exec(2)
	}
}

// DevPollCQTimeout spins like DevPollCQ but gives up after `timeout` of
// virtual time; ok is false when the deadline passed with no completion.
// Callers must check cqe.Status — a retry-exhausted fabric delivers its
// verdict as an error CQE, not as a timeout.
func (v *Verbs) DevPollCQTimeout(w *gpusim.Warp, cq *VCQ, timeout sim.Duration) (ibsim.CQE, bool) {
	id := v.vspan(w.GPU().Name(), "poll.cq", 0)
	deadline := w.Now().Add(timeout)
	for {
		if cqe, ok := v.DevTryPollCQ(w, cq); ok {
			v.Node.E.SpanClose(id)
			return cqe, true
		}
		w.Exec(2)
		if w.Now() >= deadline {
			v.Node.E.SpanClose(id)
			return ibsim.CQE{}, false
		}
	}
}

// DevPostRecv posts a receive WQE from the GPU.
func (v *Verbs) DevPostRecv(w *gpusim.Warp, qp *VQP, rwqe ibsim.RecvWQE) {
	slot := qp.QP.RQSlotAddr(qp.rqTail)
	w.Exec(40)
	buf := make([]byte, ibsim.RecvWQEBytes)
	ibsim.EncodeRecvWQE(rwqe, buf)
	for i := 0; i < ibsim.RecvWQEBytes/8; i++ {
		devSt64(w, slot+memspace.Addr(i*8), binary.LittleEndian.Uint64(buf[i*8:]))
	}
	qp.rqTail++
	w.StSysU64(v.HCA.DoorbellRQAddr(), uint64(qp.QP.QPN)<<32|uint64(qp.rqTail))
}

// ---- host-side verbs ----

// HostPostSend is the CPU fast path: descriptor generation is cheap and
// the WQE reaches queue memory at cache speed (host rings) or as one
// posted burst (GPU rings).
func (v *Verbs) HostPostSend(p *sim.Proc, qp *VQP, wqe ibsim.WQE) {
	cpu := v.Node.CPU
	id := v.vspan(cpu.Name(), "wqe.post", wqe.Length)
	defer v.Node.E.SpanClose(id)
	cpu.GenWR(p)
	slot := qp.QP.SQSlotAddr(qp.sqTail)
	buf := make([]byte, ibsim.WQEBytes)
	ibsim.EncodeWQE(wqe, buf)
	cpu.Write(p, slot, buf)
	qp.sqTail++
	cpu.WriteU64(p, v.HCA.DoorbellSQAddr(), uint64(qp.QP.QPN)<<32|uint64(qp.sqTail))
}

// HostPostRecv posts a receive WQE from the CPU.
func (v *Verbs) HostPostRecv(p *sim.Proc, qp *VQP, rwqe ibsim.RecvWQE) {
	cpu := v.Node.CPU
	cpu.GenWR(p)
	slot := qp.QP.RQSlotAddr(qp.rqTail)
	buf := make([]byte, ibsim.RecvWQEBytes)
	ibsim.EncodeRecvWQE(rwqe, buf)
	cpu.Write(p, slot, buf)
	qp.rqTail++
	cpu.WriteU64(p, v.HCA.DoorbellRQAddr(), uint64(qp.QP.QPN)<<32|uint64(qp.rqTail))
}

// HostTryPollCQ is one CPU probe of a completion queue.
func (v *Verbs) HostTryPollCQ(p *sim.Proc, cq *VCQ) (ibsim.CQE, bool) {
	cpu := v.Node.CPU
	slot := cq.CQ.EntryAddr(cq.head)
	if !ibsim.CQEValidWord(cpu.ReadU64(p, slot)) {
		return ibsim.CQE{}, false
	}
	buf := make([]byte, ibsim.CQEBytes)
	cpu.Read(p, slot, buf)
	cqe := ibsim.DecodeCQE(buf)
	zero := make([]byte, ibsim.CQEBytes)
	cpu.Write(p, slot, zero)
	cpu.WriteU64(p, cq.CIDoc, uint64(cq.head+1))
	cq.head++
	return cqe, true
}

// HostPollCQ spins until a completion arrives.
func (v *Verbs) HostPollCQ(p *sim.Proc, cq *VCQ) ibsim.CQE {
	id := v.vspan(v.Node.CPU.Name(), "poll.cq", 0)
	for {
		if cqe, ok := v.HostTryPollCQ(p, cq); ok {
			v.Node.E.SpanClose(id)
			return cqe
		}
	}
}

// HostPollCQTimeout is the CPU-side bounded CQ poll.
func (v *Verbs) HostPollCQTimeout(p *sim.Proc, cq *VCQ, timeout sim.Duration) (ibsim.CQE, bool) {
	id := v.vspan(v.Node.CPU.Name(), "poll.cq", 0)
	deadline := p.Now().Add(timeout)
	for {
		if cqe, ok := v.HostTryPollCQ(p, cq); ok {
			v.Node.E.SpanClose(id)
			return cqe, true
		}
		if p.Now() >= deadline {
			v.Node.E.SpanClose(id)
			return ibsim.CQE{}, false
		}
	}
}
