package core

import (
	"bytes"
	"testing"

	"putget/internal/cluster"
	"putget/internal/extoll"
	"putget/internal/gpusim"
	"putget/internal/memspace"
	"putget/internal/sim"
)

// extollRig wires the API layer over an EXTOLL testbed with one connected
// port pair and registered buffers on both GPUs.
type extollRig struct {
	tb       *cluster.Testbed
	ra, rb   *RMA
	srcAddr  memspace.Addr
	dstAddr  memspace.Addr
	srcNLA   extoll.NLA
	dstNLA   extoll.NLA
	bufBytes uint64
}

func newExtollRig(t *testing.T) *extollRig {
	t.Helper()
	tb := cluster.NewExtollPair(cluster.Default())
	ra, rb := NewRMA(tb.A), NewRMA(tb.B)
	const size = 1 << 20
	src := tb.A.AllocDev(size)
	dst := tb.B.AllocDev(size)
	srcNLA := ra.Register(src, size)
	dstNLA := rb.Register(dst, size)
	ra.OpenPort(0)
	rb.OpenPort(0)
	extoll.ConnectPorts(tb.A.Extoll, 0, tb.B.Extoll, 0)
	return &extollRig{
		tb: tb, ra: ra, rb: rb,
		srcAddr: src, dstAddr: dst,
		srcNLA: srcNLA, dstNLA: dstNLA, bufBytes: size,
	}
}

func TestDevPutMovesDataBetweenGPUs(t *testing.T) {
	r := newExtollRig(t)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i ^ 0x5a)
	}
	if err := r.tb.A.GPU.HostWrite(r.srcAddr, payload); err != nil {
		t.Fatal(err)
	}
	done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		r.ra.DevPut(w, 0, r.srcNLA, r.dstNLA, len(payload), extoll.FlagReqNotif)
		r.ra.DevWaitNotif(w, 0, extoll.ClassRequester)
	})
	r.tb.E.Run()
	if !done.Done() {
		t.Fatal("kernel stuck")
	}
	got := make([]byte, len(payload))
	if err := r.tb.B.GPU.HostRead(r.dstAddr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
}

func TestDevPutCountsThreeSysmemWrites(t *testing.T) {
	r := newExtollRig(t)
	r.tb.A.GPU.ResetCounters()
	before := r.tb.A.GPU.Counters()
	done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		r.ra.DevPut(w, 0, r.srcNLA, r.dstNLA, 64, 0)
	})
	r.tb.E.Run()
	if !done.Done() {
		t.Fatal("kernel stuck")
	}
	c := r.tb.A.GPU.Counters().Sub(before)
	// "polling on device memory causes 3 system memory write operations
	// per iteration which is exactly the size of the WR (3x64 bit)".
	if c.SysmemWrites32B != 3 {
		t.Fatalf("WR post = %d sysmem writes, want 3", c.SysmemWrites32B)
	}
	if c.SysmemReads32B != 0 {
		t.Fatalf("WR post performed %d sysmem reads", c.SysmemReads32B)
	}
}

func TestDevPutCollectiveFewerTransactions(t *testing.T) {
	r := newExtollRig(t)
	r.tb.A.GPU.ResetCounters()
	done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1, ThreadsPerBlock: 8}, func(w *gpusim.Warp) {
		r.ra.DevPutCollective(w, 0, r.srcNLA, r.dstNLA, 64, 0)
	})
	r.tb.E.Run()
	if !done.Done() {
		t.Fatal("kernel stuck")
	}
	c := r.tb.A.GPU.Counters()
	if c.SysmemWrites32B != 1 {
		t.Fatalf("collective WR = %d transactions, want 1 (24B burst)", c.SysmemWrites32B)
	}
	if r.tb.A.Extoll.Stats().PutsSent != 1 {
		t.Fatal("collective WR not executed by NIC")
	}
}

func TestDevWaitNotifConsumesAndFrees(t *testing.T) {
	r := newExtollRig(t)
	var size int
	done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		r.ra.DevPut(w, 0, r.srcNLA, r.dstNLA, 512, extoll.FlagReqNotif)
		size = r.ra.DevWaitNotif(w, 0, extoll.ClassRequester)
		// A second put reuses the freed slot logic.
		r.ra.DevPut(w, 0, r.srcNLA, r.dstNLA, 256, extoll.FlagReqNotif)
		r.ra.DevWaitNotif(w, 0, extoll.ClassRequester)
	})
	r.tb.E.Run()
	if !done.Done() {
		t.Fatal("kernel stuck")
	}
	if size != 512 {
		t.Fatalf("notification size = %d, want 512", size)
	}
	// Both entries must be freed (zero) in host memory.
	for idx := 0; idx < 2; idx++ {
		w0, _ := r.tb.A.Space.ReadU64(r.tb.A.Extoll.NotifEntryAddr(0, extoll.ClassRequester, idx))
		if extoll.NotifValid(w0) {
			t.Fatalf("notification %d not freed", idx)
		}
	}
	// Read pointer advanced to 2.
	rp, _ := r.tb.A.Space.ReadU32(r.tb.A.Extoll.NotifRPAddr(0, extoll.ClassRequester))
	if rp != 2 {
		t.Fatalf("read pointer = %d, want 2", rp)
	}
}

func TestDevPollU64SeesCompleterWrite(t *testing.T) {
	r := newExtollRig(t)
	seq := uint64(0xabc123)
	lastWord := r.srcAddr // reuse source buffer on A as the pong sink
	dstOnA := r.ra.Register(lastWord, 8)
	// B puts 8 bytes to A.
	if err := r.tb.B.GPU.HostWriteU64(r.dstAddr, seq); err != nil {
		t.Fatal(err)
	}
	srcOnB := r.rb.Register(r.dstAddr, 8)
	extoll.ConnectPorts(r.tb.B.Extoll, 1, r.tb.A.Extoll, 1)
	r.tb.B.Extoll.OpenPort(1)
	r.tb.A.Extoll.OpenPort(1)
	doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		w.Proc().Sleep(20 * sim.Microsecond)
		r.rb.DevPut(w, 1, srcOnB, dstOnA, 8, 0)
	})
	var sawAt sim.Time
	doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		r.ra.DevPollU64(w, lastWord, seq)
		sawAt = w.Now()
	})
	r.tb.E.Run()
	if !doneA.Done() || !doneB.Done() {
		t.Fatal("kernels stuck")
	}
	if sawAt < sim.Time(20*sim.Microsecond) {
		t.Fatal("poll returned before data was sent")
	}
	// Device-memory polling must be L2-resident: hits vastly outnumber
	// misses.
	c := r.tb.A.GPU.Counters()
	if c.L2ReadHits < 10*c.L2ReadMisses {
		t.Fatalf("devmem polling not cached: hits=%d misses=%d", c.L2ReadHits, c.L2ReadMisses)
	}
	if c.SysmemReads32B != 0 {
		t.Fatalf("devmem polling produced %d sysmem reads", c.SysmemReads32B)
	}
}

func TestHostPutAndHostNotif(t *testing.T) {
	r := newExtollRig(t)
	payload := []byte("host controlled put")
	if err := r.tb.A.GPU.HostWrite(r.srcAddr, payload); err != nil {
		t.Fatal(err)
	}
	var notifSize int
	r.tb.E.Spawn("cpuA", func(p *sim.Proc) {
		r.ra.HostPut(p, 0, r.srcNLA, r.dstNLA, len(payload), extoll.FlagReqNotif|extoll.FlagCompNotif)
		notifSize = r.ra.HostWaitNotif(p, 0, extoll.ClassRequester)
	})
	var gotNotif bool
	r.tb.E.Spawn("cpuB", func(p *sim.Proc) {
		r.rb.HostWaitNotif(p, 0, extoll.ClassCompleter)
		gotNotif = true
	})
	r.tb.E.Run()
	if notifSize != len(payload) || !gotNotif {
		t.Fatalf("notifSize=%d gotNotif=%v", notifSize, gotNotif)
	}
	got := make([]byte, len(payload))
	if err := r.tb.B.GPU.HostRead(r.dstAddr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
}

func TestHostGetFetchesRemote(t *testing.T) {
	r := newExtollRig(t)
	payload := []byte("data pulled by get")
	if err := r.tb.B.GPU.HostWrite(r.dstAddr, payload); err != nil {
		t.Fatal(err)
	}
	// A gets from B's buffer into A's buffer.
	r.tb.E.Spawn("cpuA", func(p *sim.Proc) {
		r.ra.HostGet(p, 0, r.dstNLA, r.srcNLA, len(payload), extoll.FlagCompNotif)
		r.ra.HostWaitNotif(p, 0, extoll.ClassCompleter)
		got := make([]byte, len(payload))
		if err := r.tb.A.GPU.HostRead(r.srcAddr, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, payload) {
			t.Error("get payload corrupted")
		}
	})
	r.tb.E.Run()
}

func TestAssistProtocol(t *testing.T) {
	r := newExtollRig(t)
	flags := NewAssistFlags(r.tb.A)
	var serviced uint64
	// CPU service loop: on request, do a host put and acknowledge.
	r.tb.E.Spawn("cpu-service", func(p *sim.Proc) {
		for seq := uint64(1); seq <= 3; seq++ {
			HostAwaitAssistReq(p, r.tb.A.CPU, flags, seq)
			r.ra.HostPut(p, 0, r.srcNLA, r.dstNLA, 64, extoll.FlagReqNotif)
			r.ra.HostWaitNotif(p, 0, extoll.ClassRequester)
			serviced = seq
			HostAckAssist(p, r.tb.A.CPU, flags, seq)
		}
	})
	done := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		for seq := uint64(1); seq <= 3; seq++ {
			DevRequestAssist(w, flags, seq)
			DevAwaitAssistAck(w, flags, seq)
		}
	})
	r.tb.E.Run()
	if !done.Done() || serviced != 3 {
		t.Fatalf("assist protocol incomplete: serviced=%d", serviced)
	}
	if r.tb.A.Extoll.Stats().PutsSent != 3 {
		t.Fatalf("puts sent = %d, want 3", r.tb.A.Extoll.Stats().PutsSent)
	}
}

func TestHostPutImmAndFetchAdd(t *testing.T) {
	r := newExtollRig(t)
	ctr := r.tb.B.AllocDev(8)
	ctrNLA := r.rb.Register(ctr, 8)
	var old1, old2 uint64
	r.tb.E.Spawn("cpuA", func(p *sim.Proc) {
		// Immediate put seeds the counter, then two fetch-adds.
		r.ra.HostPutImm(p, 0, 1000, ctrNLA, 8, 0)
		p.Sleep(10 * sim.Microsecond)
		old1 = r.ra.HostFetchAdd(p, 0, 5, ctrNLA)
		old2 = r.ra.HostFetchAdd(p, 0, 5, ctrNLA)
	})
	r.tb.E.Run()
	if old1 != 1000 || old2 != 1005 {
		t.Fatalf("fetch-add olds = %d, %d; want 1000, 1005", old1, old2)
	}
	v, _ := r.tb.B.GPU.HostReadU64(ctr)
	if v != 1010 {
		t.Fatalf("counter = %d, want 1010", v)
	}
}

func TestDevPutImmEndToEnd(t *testing.T) {
	r := newExtollRig(t)
	var seen uint64
	doneA := r.tb.A.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		r.ra.DevPutImm(w, 0, 0x5ca1ab1e, r.dstNLA, 8, extoll.FlagReqNotif)
		r.ra.DevWaitNotif(w, 0, extoll.ClassRequester)
	})
	doneB := r.tb.B.GPU.Launch(gpusim.KernelConfig{Blocks: 1}, func(w *gpusim.Warp) {
		seen = w.PollGlobalU64(r.dstAddr, 0x5ca1ab1e)
	})
	r.tb.E.Run()
	if !doneA.Done() || !doneB.Done() {
		t.Fatal("immediate put deadlocked")
	}
	if seen != 0x5ca1ab1e {
		t.Fatalf("seen %#x", seen)
	}
	// An immediate put posts exactly 3 MMIO words and reads no memory.
	if r.tb.A.Extoll.Stats().ImmPutsSent != 1 {
		t.Fatal("immediate put not counted")
	}
}
