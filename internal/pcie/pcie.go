// Package pcie models a node-local PCIe fabric at transaction level.
//
// Topology is a star: every endpoint (CPU, GPU, NIC, host memory) hangs off
// the root complex through its own link. A transaction charges
// serialization time on the initiator's egress link, a fixed one-way
// latency per side, and — for reads — the target's internal service
// latency plus response serialization on the target's egress link. This
// puts contention exactly where the paper's analysis needs it: a GPU that
// polls notification queues in system memory shares its egress link with
// the MMIO work requests it posts, and a NIC that DMA-reads GPU memory
// shares the GPU's egress link with everything else the GPU sends.
//
// The model also reproduces the documented PCIe peer-to-peer anomaly
// ([14],[15] in the paper): reads from a GPU BAR collapse in bandwidth
// once a single DMA stream exceeds a threshold (~1 MiB). That is expressed
// through a per-endpoint read-service rate that may depend on the total
// stream size.
package pcie

import (
	"fmt"

	"putget/internal/memspace"
	"putget/internal/sim"
)

// TLPHeader is the per-transaction header+framing overhead in bytes charged
// on links. (3-4 DW header plus DLLP/framing; 24 is a common effective
// figure.)
const TLPHeader = 24

// ChunkSize is the modelling granularity for bulk DMA. Real fabrics split
// at MPS/MRRS (128–512 B); we use a coarser chunk to bound event counts
// while preserving pipelining behaviour at the sizes the paper sweeps.
const ChunkSize = 4096

// Target receives MMIO side effects for BAR-mapped device registers.
// Handlers run at TLP delivery time, in engine context: they must not
// block, only mutate device state, signal, or schedule events.
type Target interface {
	// MMIOWrite handles a posted write of data at addr.
	MMIOWrite(addr memspace.Addr, data []byte)
	// MMIORead fills data from register state at addr.
	MMIORead(addr memspace.Addr, data []byte)
}

// EndpointConfig fixes an endpoint's link and service characteristics.
type EndpointConfig struct {
	// EgressRate is the endpoint→fabric link bandwidth in bytes/second.
	EgressRate float64
	// OneWay is the latency between this endpoint and the root complex.
	OneWay sim.Duration
	// ReadLatency is the internal latency to begin serving an inbound read.
	ReadLatency sim.Duration
	// ReadRate returns the inbound read service bandwidth (bytes/second)
	// for a DMA stream of the given total size. nil means "unbounded"
	// (the link is then the only limit). This is where the GPU's P2P
	// read collapse lives.
	ReadRate func(total int) float64
}

// Stats counts the transactions an endpoint initiated.
type Stats struct {
	PostedWrites uint64 // posted write TLPs (incl. bulk trains)
	Reads        uint64 // non-posted control reads
	BulkReads    uint64 // DMA read streams
	BytesWritten uint64 // payload bytes written
	BytesRead    uint64 // payload bytes read (control + bulk)
}

// Endpoint is a device port on the fabric.
type Endpoint struct {
	name string
	f    *Fabric
	cfg  EndpointConfig

	egress *sim.Server // serializes everything this endpoint sends
	stats  Stats

	lastDeliver sim.Time // latest scheduled delivery of a posted write from here

	// OnInboundWrite, if set, runs (in engine context) after an inbound
	// DMA/MMIO write into this endpoint's RAM region lands. The GPU uses
	// it to invalidate L2 lines so device-memory polling observes NIC
	// writes.
	OnInboundWrite func(addr memspace.Addr, n int)
}

// Name returns the endpoint name.
func (ep *Endpoint) Name() string { return ep.name }

// Egress exposes the egress link server (for utilization metrics).
func (ep *Endpoint) Egress() *sim.Server { return ep.egress }

// Stats returns the transactions this endpoint initiated.
func (ep *Endpoint) Stats() Stats { return ep.stats }

// ResetStats zeroes the transaction counters.
func (ep *Endpoint) ResetStats() { ep.stats = Stats{} }

type ownerKind int

const (
	ownRAM ownerKind = iota
	ownMMIO
)

type ownerEntry struct {
	region memspace.Region
	ep     *Endpoint
	kind   ownerKind
	target Target
}

// Faults decides the fate of bulk DMA streams crossing the fabric. Same
// shape as wire.Faults; implemented by faults.Injector.
type Faults interface {
	Judge(at sim.Time, wireBytes int) (drop, corrupt bool, extraDelay sim.Duration)
}

// Fabric is one node's PCIe hierarchy.
type Fabric struct {
	e      *sim.Engine
	space  *memspace.Space
	eps    []*Endpoint
	owners []ownerEntry

	// Fault injection on the P2P bulk path. PCIe is link-level reliable
	// (DLLP ACK/NAK replay), so drop/corrupt verdicts surface as a replay
	// delay rather than data loss.
	faults        Faults
	replayPenalty sim.Duration
	replays       uint64
}

// SetFaults installs a fault injector on the bulk DMA path. Drop and
// corrupt verdicts each cost one replayPenalty of extra latency (the
// data-link layer retransmits); delay verdicts add directly.
func (f *Fabric) SetFaults(fi Faults, replayPenalty sim.Duration) {
	f.faults = fi
	f.replayPenalty = replayPenalty
}

// Replays reports bulk transfers that suffered a link-level retransmission.
func (f *Fabric) Replays() uint64 { return f.replays }

// faultDelay turns an injector verdict into extra bulk-transfer latency.
func (f *Fabric) faultDelay(at sim.Time, n int) sim.Duration {
	if f.faults == nil {
		return 0
	}
	drop, corrupt, extra := f.faults.Judge(at, n)
	if drop || corrupt {
		f.replays++
		extra += f.replayPenalty
		if f.e.Traced() {
			f.e.Tracev("pcie", "fault", "fault: pcie replay (%dB, +%v)", n, f.replayPenalty)
		}
	}
	return extra
}

// NewFabric creates a fabric over a node address space.
func NewFabric(e *sim.Engine, space *memspace.Space) *Fabric {
	return &Fabric{e: e, space: space}
}

// Engine returns the simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.e }

// Space returns the functional address space (zero-time backdoor access,
// used for test setup and assertions).
func (f *Fabric) Space() *memspace.Space { return f.space }

// AddEndpoint attaches a device port.
func (f *Fabric) AddEndpoint(name string, cfg EndpointConfig) *Endpoint {
	if cfg.EgressRate <= 0 {
		panic("pcie: endpoint needs a positive egress rate")
	}
	ep := &Endpoint{
		name:   name,
		f:      f,
		cfg:    cfg,
		egress: sim.NewServer(f.e, cfg.EgressRate),
	}
	f.eps = append(f.eps, ep)
	return ep
}

// ClaimRAM declares that addresses in region are served by ep's memory-side
// (the region must already be mapped in the Space).
func (f *Fabric) ClaimRAM(ep *Endpoint, region memspace.Region) {
	f.claim(ownerEntry{region: region, ep: ep, kind: ownRAM})
}

// ClaimMMIO declares a BAR region whose accesses are handled by target.
func (f *Fabric) ClaimMMIO(ep *Endpoint, region memspace.Region, target Target) {
	f.claim(ownerEntry{region: region, ep: ep, kind: ownMMIO, target: target})
}

func (f *Fabric) claim(o ownerEntry) {
	for _, x := range f.owners {
		if x.region.Overlaps(o.region) {
			panic(fmt.Sprintf("pcie: claim %v overlaps existing claim %v", o.region, x.region))
		}
	}
	f.owners = append(f.owners, o)
}

func (f *Fabric) owner(a memspace.Addr) ownerEntry {
	for _, o := range f.owners {
		if o.region.Contains(a) {
			return o
		}
	}
	panic(fmt.Sprintf("pcie: address %#x has no owner", uint64(a)))
}

// flight is the one-way fabric latency between two endpoints.
func flight(src, dst *Endpoint) sim.Duration {
	return src.cfg.OneWay + dst.cfg.OneWay
}

// PostedWrite sends data to addr as a posted (fire-and-forget) write. The
// caller does not block; serialization is booked on src's egress link and
// the functional effect (memory write or MMIO handler) fires at the
// returned delivery time. data is captured by reference: callers must
// treat it as frozen.
func (f *Fabric) PostedWrite(src *Endpoint, addr memspace.Addr, data []byte) sim.Time {
	o := f.owner(addr)
	src.stats.PostedWrites++
	src.stats.BytesWritten += uint64(len(data))
	sent := src.egress.Reserve(len(data) + TLPHeader)
	deliver := sent.Add(flight(src, o.ep))
	if deliver < src.lastDeliver {
		// Preserve same-source ordering even across destinations with
		// different latencies; PCIe posted writes never pass each other.
		deliver = src.lastDeliver
	}
	src.lastDeliver = deliver
	if f.e.Observing() {
		// The span covers issue through delivery: the MMIO/doorbell flight
		// the paper's per-stage breakdown charges to PCIe.
		id := f.e.SpanOpen("pcie", "write",
			sim.Attr{Key: "bytes", Val: int64(len(data))})
		f.e.SpanCloseAt(id, deliver)
	}
	f.e.At(deliver, func() { f.deliverWrite(o, addr, data) })
	return deliver
}

func (f *Fabric) deliverWrite(o ownerEntry, addr memspace.Addr, data []byte) {
	if f.e.Traced() {
		f.e.Tracev("pcie", "write", "pcie: write %dB -> %s @%#x", len(data), o.ep.name, uint64(addr))
	}
	switch o.kind {
	case ownMMIO:
		o.target.MMIOWrite(addr, data)
	case ownRAM:
		if err := f.space.Write(addr, data); err != nil {
			panic(fmt.Sprintf("pcie: inbound write: %v", err))
		}
		if o.ep.OnInboundWrite != nil {
			o.ep.OnInboundWrite(addr, len(data))
		}
	}
}

// FlushWrites blocks p until every posted write previously issued by src
// has been delivered (a fence / flushing read model).
func (f *Fabric) FlushWrites(p *sim.Proc, src *Endpoint) {
	if src.lastDeliver > f.e.Now() {
		p.SleepUntil(src.lastDeliver)
	}
}

// Read performs a blocking non-posted read of len(buf) bytes at addr —
// the control-path primitive (notification polls, CQ polls, register
// reads). The initiator observes the full round trip.
func (f *Fabric) Read(p *sim.Proc, src *Endpoint, addr memspace.Addr, buf []byte) {
	o := f.owner(addr)
	src.stats.Reads++
	src.stats.BytesRead += uint64(len(buf))
	if f.e.Traced() {
		f.e.Tracev("pcie", "read", "pcie: %s reads %dB from %s @%#x", src.name, len(buf), o.ep.name, uint64(addr))
	}
	// Request TLP on our egress; reads do not pass earlier writes.
	src.egress.Transfer(p, TLPHeader)
	p.Sleep(flight(src, o.ep))
	p.Sleep(o.ep.cfg.ReadLatency)
	f.serveRead(o, addr, buf)
	// Response serialization on the target's egress, then flight back.
	done := o.ep.egress.Reserve(len(buf) + TLPHeader)
	p.SleepUntil(done)
	p.Sleep(flight(o.ep, src))
}

func (f *Fabric) serveRead(o ownerEntry, addr memspace.Addr, buf []byte) {
	switch o.kind {
	case ownMMIO:
		o.target.MMIORead(addr, buf)
	case ownRAM:
		if err := f.space.Read(addr, buf); err != nil {
			panic(fmt.Sprintf("pcie: inbound read: %v", err))
		}
	}
}

// wireBytes returns the on-link size of a payload split into MRRS/MPS
// chunks, one TLP header per chunk.
func wireBytes(payload int) int {
	chunks := (payload + ChunkSize - 1) / ChunkSize
	if chunks < 1 {
		chunks = 1
	}
	return payload + chunks*TLPHeader
}

// ReadBulkReserve books a DMA read stream of len(buf) bytes without
// blocking the caller and returns the time the final data chunk reaches
// src. The functional read happens immediately; serialization is booked
// on the target's egress FIFO at the slower of its link rate and its
// (size-dependent) read-service rate — the P2P collapse. Cut-through
// engines use this to overlap the read with downstream stages.
func (f *Fabric) ReadBulkReserve(src *Endpoint, addr memspace.Addr, buf []byte) sim.Time {
	total := len(buf)
	o := f.owner(addr)
	if total == 0 {
		return f.e.Now().Add(flight(src, o.ep))
	}
	src.stats.BulkReads++
	src.stats.BytesRead += uint64(total)
	src.egress.Reserve(TLPHeader) // request TLP
	f.serveRead(o, addr, buf)
	effRate := o.ep.egress.Rate()
	if o.ep.cfg.ReadRate != nil {
		if r := o.ep.cfg.ReadRate(total); r > 0 && r < effRate {
			effRate = r
		}
	}
	// Book the whole stream on the target egress FIFO at the bottleneck
	// rate; concurrent senders through that link queue behind it.
	done := o.ep.egress.ReserveDuration(sim.BytesAt(wireBytes(total), effRate))
	done = done.Add(f.faultDelay(done, wireBytes(total)))
	return done.Add(flight(src, o.ep) + flight(o.ep, src) + o.ep.cfg.ReadLatency)
}

// ReadBulk performs a pipelined DMA read stream of len(buf) bytes: one
// request latency, then the data stream gated by the slower of the
// target's read-service rate (size-dependent — the P2P collapse) and the
// target's egress link. Used by NIC DMA engines fetching payload or WQEs.
func (f *Fabric) ReadBulk(p *sim.Proc, src *Endpoint, addr memspace.Addr, buf []byte) {
	p.SleepUntil(f.ReadBulkReserve(src, addr, buf))
}

// WriteBulk streams len(data) bytes to addr as a train of posted writes
// and blocks p while its egress link serializes them (the initiator's DMA
// engine is busy that long). The functional write and inbound-write hook
// fire once, at the returned delivery time of the final chunk.
func (f *Fabric) WriteBulk(p *sim.Proc, src *Endpoint, addr memspace.Addr, data []byte) sim.Time {
	if len(data) == 0 {
		return f.e.Now()
	}
	o := f.owner(addr)
	src.stats.PostedWrites++
	src.stats.BytesWritten += uint64(len(data))
	sent := src.egress.Reserve(wireBytes(len(data)))
	sent = sent.Add(f.faultDelay(sent, wireBytes(len(data))))
	deliver := sent.Add(flight(src, o.ep))
	if deliver < src.lastDeliver {
		deliver = src.lastDeliver
	}
	src.lastDeliver = deliver
	f.e.At(deliver, func() { f.deliverWrite(o, addr, data) })
	p.SleepUntil(sent)
	return deliver
}
