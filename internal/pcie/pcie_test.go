package pcie

import (
	"testing"

	"putget/internal/memspace"
	"putget/internal/sim"
)

// testbed builds a small fabric: host memory, a "gpu" with devmem and a
// P2P read collapse, and a "nic" with an MMIO BAR.
type testbed struct {
	e       *sim.Engine
	f       *Fabric
	hostEP  *Endpoint
	gpuEP   *Endpoint
	nicEP   *Endpoint
	cpuEP   *Endpoint
	hostRAM memspace.Region
	devRAM  memspace.Region
	bar     memspace.Region
	mmio    *recordingTarget
}

type recordingTarget struct {
	writes []mmioOp
	reads  int
	regVal uint64
}

type mmioOp struct {
	addr memspace.Addr
	data []byte
	at   sim.Time
}

func (r *recordingTarget) MMIOWrite(addr memspace.Addr, data []byte) {
	cp := append([]byte(nil), data...)
	r.writes = append(r.writes, mmioOp{addr: addr, data: cp})
}

func (r *recordingTarget) MMIORead(addr memspace.Addr, data []byte) {
	r.reads++
	for i := range data {
		data[i] = byte(r.regVal >> (8 * uint(i)))
	}
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	e := sim.NewEngine()
	space := memspace.NewSpace()
	hostRAM := space.MustMap(0x0, memspace.NewRAM("hostram", 8<<20))
	devRAM := space.MustMap(0x1000_0000, memspace.NewRAM("devram", 8<<20))
	f := NewFabric(e, space)

	hostEP := f.AddEndpoint("hostmem", EndpointConfig{
		EgressRate: 8e9, OneWay: 100 * sim.Nanosecond, ReadLatency: 150 * sim.Nanosecond,
	})
	gpuEP := f.AddEndpoint("gpu", EndpointConfig{
		EgressRate: 8e9, OneWay: 350 * sim.Nanosecond, ReadLatency: 600 * sim.Nanosecond,
		ReadRate: func(total int) float64 {
			if total > 1<<20 {
				return 0.35e9
			}
			return 1.0e9
		},
	})
	nicEP := f.AddEndpoint("nic", EndpointConfig{
		EgressRate: 4e9, OneWay: 150 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond,
	})
	cpuEP := f.AddEndpoint("cpu", EndpointConfig{
		EgressRate: 16e9, OneWay: 100 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond,
	})

	f.ClaimRAM(hostEP, hostRAM)
	f.ClaimRAM(gpuEP, devRAM)
	bar := memspace.Region{Base: 0x2000_0000, Size: 0x1000}
	mmio := &recordingTarget{regVal: 0xabcd}
	f.ClaimMMIO(nicEP, bar, mmio)

	return &testbed{e: e, f: f, hostEP: hostEP, gpuEP: gpuEP, nicEP: nicEP, cpuEP: cpuEP,
		hostRAM: hostRAM, devRAM: devRAM, bar: bar, mmio: mmio}
}

func TestPostedWriteDelivers(t *testing.T) {
	tb := newTestbed(t)
	deliver := tb.f.PostedWrite(tb.cpuEP, 0x100, []byte{9, 8, 7})
	if deliver <= 0 {
		t.Fatal("delivery time not in the future")
	}
	tb.e.Run()
	got := make([]byte, 3)
	if err := tb.f.Space().Read(0x100, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[1] != 8 || got[2] != 7 {
		t.Fatalf("payload = %v", got)
	}
}

func TestPostedWriteOrderingSameSource(t *testing.T) {
	tb := newTestbed(t)
	var order []int
	tb.gpuEP.OnInboundWrite = nil
	// Write to a far endpoint then a near one: delivery must not reorder.
	d1 := tb.f.PostedWrite(tb.cpuEP, tb.devRAM.Base, []byte{1}) // cpu→gpu (far)
	d2 := tb.f.PostedWrite(tb.cpuEP, 0x0, []byte{2})            // cpu→host (near)
	if d2 < d1 {
		t.Fatalf("posted writes reordered: %v then %v", d1, d2)
	}
	_ = order
	tb.e.Run()
}

func TestMMIOWriteTriggersTarget(t *testing.T) {
	tb := newTestbed(t)
	tb.f.PostedWrite(tb.gpuEP, tb.bar.Base+0x10, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	tb.e.Run()
	if len(tb.mmio.writes) != 1 {
		t.Fatalf("mmio writes = %d, want 1", len(tb.mmio.writes))
	}
	w := tb.mmio.writes[0]
	if w.addr != tb.bar.Base+0x10 || len(w.data) != 8 || w.data[0] != 1 {
		t.Fatalf("mmio op = %+v", w)
	}
}

func TestReadRoundTripLatency(t *testing.T) {
	tb := newTestbed(t)
	var took sim.Duration
	tb.e.Spawn("rd", func(p *sim.Proc) {
		start := p.Now()
		buf := make([]byte, 8)
		tb.f.Read(p, tb.gpuEP, 0x200, buf) // gpu reads host memory
		took = p.Now().Sub(start)
	})
	tb.e.Run()
	// Two flights (2×450ns) + 150ns service + serialization ≈ ≥1.05us.
	if took < 1000*sim.Nanosecond || took > 1300*sim.Nanosecond {
		t.Fatalf("gpu→sysmem read latency = %v, want ≈1.05–1.3us", took)
	}
}

func TestReadReturnsData(t *testing.T) {
	tb := newTestbed(t)
	if err := tb.f.Space().WriteU64(0x300, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	var got uint64
	tb.e.Spawn("rd", func(p *sim.Proc) {
		buf := make([]byte, 8)
		tb.f.Read(p, tb.nicEP, 0x300, buf)
		for i := 7; i >= 0; i-- {
			got = got<<8 | uint64(buf[i])
		}
	})
	tb.e.Run()
	if got != 0x1122334455667788 {
		t.Fatalf("read data = %#x", got)
	}
}

func TestMMIORead(t *testing.T) {
	tb := newTestbed(t)
	var got byte
	tb.e.Spawn("rd", func(p *sim.Proc) {
		buf := make([]byte, 2)
		tb.f.Read(p, tb.cpuEP, tb.bar.Base, buf)
		got = buf[0]
	})
	tb.e.Run()
	if tb.mmio.reads != 1 || got != 0xcd {
		t.Fatalf("mmio reads = %d, data = %#x", tb.mmio.reads, got)
	}
}

func TestReadBulkP2PCollapse(t *testing.T) {
	tb := newTestbed(t)
	timeFor := func(n int) sim.Duration {
		e := sim.NewEngine()
		// fresh testbed per measurement to avoid leftover reservations
		tbb := newTestbed(t)
		e = tbb.e
		var took sim.Duration
		e.Spawn("dma", func(p *sim.Proc) {
			start := p.Now()
			buf := make([]byte, n)
			tbb.f.ReadBulk(p, tbb.nicEP, tbb.devRAM.Base, buf)
			took = p.Now().Sub(start)
		})
		e.Run()
		return took
	}
	_ = tb
	small := timeFor(1 << 20) // 1 MiB at ~1.0 GB/s
	large := timeFor(4 << 20) // 4 MiB at ~0.35 GB/s
	smallBW := float64(1<<20) / small.Seconds()
	largeBW := float64(4<<20) / large.Seconds()
	if smallBW < 0.85e9 || smallBW > 1.05e9 {
		t.Fatalf("small-stream P2P bw = %.3g B/s, want ≈1e9", smallBW)
	}
	if largeBW > 0.4e9 || largeBW < 0.3e9 {
		t.Fatalf("large-stream P2P bw = %.3g B/s, want ≈0.35e9", largeBW)
	}
}

func TestReadBulkFromHostNotCollapsed(t *testing.T) {
	tb := newTestbed(t)
	var took sim.Duration
	tb.e.Spawn("dma", func(p *sim.Proc) {
		start := p.Now()
		buf := make([]byte, 4<<20)
		tb.f.ReadBulk(p, tb.nicEP, 0x0, buf)
		took = p.Now().Sub(start)
	})
	tb.e.Run()
	bw := float64(4<<20) / took.Seconds()
	if bw < 6e9 { // host egress is 8 GB/s; headers shave a little
		t.Fatalf("host bulk read bw = %.3g B/s, want near 8e9", bw)
	}
}

func TestWriteBulkDeliversOnceAtEnd(t *testing.T) {
	tb := newTestbed(t)
	fired := 0
	var firedAt sim.Time
	tb.gpuEP.OnInboundWrite = func(addr memspace.Addr, n int) {
		fired++
		firedAt = tb.e.Now()
		if n != 64<<10 {
			t.Errorf("inbound write size = %d, want 64KiB", n)
		}
	}
	data := make([]byte, 64<<10)
	data[len(data)-1] = 0x5a
	var sentDone sim.Time
	tb.e.Spawn("dma", func(p *sim.Proc) {
		tb.f.WriteBulk(p, tb.nicEP, tb.devRAM.Base, data)
		sentDone = p.Now()
	})
	tb.e.Run()
	if fired != 1 {
		t.Fatalf("inbound hook fired %d times, want 1", fired)
	}
	if firedAt < sentDone {
		t.Fatal("delivery before serialization finished")
	}
	got := make([]byte, 1)
	if err := tb.f.Space().Read(tb.devRAM.Base+(64<<10)-1, got); err != nil || got[0] != 0x5a {
		t.Fatalf("payload last byte = %v, %v", got, err)
	}
}

func TestFlushWrites(t *testing.T) {
	tb := newTestbed(t)
	var flushedAt, delivered sim.Time
	tb.e.Spawn("w", func(p *sim.Proc) {
		d := tb.f.PostedWrite(tb.gpuEP, 0x400, []byte{1, 2, 3, 4})
		delivered = d
		tb.f.FlushWrites(p, tb.gpuEP)
		flushedAt = p.Now()
	})
	tb.e.Run()
	if flushedAt < delivered {
		t.Fatalf("flush returned at %v before delivery %v", flushedAt, delivered)
	}
}

func TestEgressContentionSerializes(t *testing.T) {
	tb := newTestbed(t)
	// Two bulk reads from the same GPU target must share its egress link:
	// combined time ≈ 2× a single transfer, not 1×.
	single := func() sim.Duration {
		tbb := newTestbed(t)
		var took sim.Duration
		tbb.e.Spawn("a", func(p *sim.Proc) {
			start := p.Now()
			tbb.f.ReadBulk(p, tbb.nicEP, tbb.devRAM.Base, make([]byte, 256<<10))
			took = p.Now().Sub(start)
		})
		tbb.e.Run()
		return took
	}()
	var aDone, bDone sim.Time
	tb.e.Spawn("a", func(p *sim.Proc) {
		tb.f.ReadBulk(p, tb.nicEP, tb.devRAM.Base, make([]byte, 256<<10))
		aDone = p.Now()
	})
	tb.e.Spawn("b", func(p *sim.Proc) {
		tb.f.ReadBulk(p, tb.cpuEP, tb.devRAM.Base+0x1000, make([]byte, 256<<10))
		bDone = p.Now()
	})
	tb.e.Run()
	last := aDone
	if bDone > last {
		last = bDone
	}
	if sim.Duration(last) < sim.Duration(float64(single)*1.8) {
		t.Fatalf("concurrent bulk reads did not serialize: single=%v last=%v", single, last)
	}
}

func TestUnownedAddressPanics(t *testing.T) {
	tb := newTestbed(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unowned address")
		}
	}()
	tb.f.PostedWrite(tb.cpuEP, 0xdead_0000_0000, []byte{1})
}

func TestClaimOverlapPanics(t *testing.T) {
	tb := newTestbed(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for overlapping claim")
		}
	}()
	tb.f.ClaimRAM(tb.hostEP, memspace.Region{Base: tb.bar.Base, Size: 16})
}

func TestWireBytes(t *testing.T) {
	if wireBytes(1) != 1+TLPHeader {
		t.Errorf("wireBytes(1) = %d", wireBytes(1))
	}
	if wireBytes(ChunkSize) != ChunkSize+TLPHeader {
		t.Errorf("wireBytes(chunk) = %d", wireBytes(ChunkSize))
	}
	if wireBytes(ChunkSize+1) != ChunkSize+1+2*TLPHeader {
		t.Errorf("wireBytes(chunk+1) = %d", wireBytes(ChunkSize+1))
	}
}

func TestEndpointStats(t *testing.T) {
	tb := newTestbed(t)
	tb.e.Spawn("traffic", func(p *sim.Proc) {
		tb.f.PostedWrite(tb.cpuEP, 0x100, []byte{1, 2, 3, 4})
		buf := make([]byte, 8)
		tb.f.Read(p, tb.cpuEP, 0x100, buf)
		big := make([]byte, 64<<10)
		tb.f.ReadBulk(p, tb.nicEP, tb.devRAM.Base, big)
		tb.f.WriteBulk(p, tb.nicEP, 0x2000, big)
	})
	tb.e.Run()
	cpu := tb.cpuEP.Stats()
	if cpu.PostedWrites != 1 || cpu.BytesWritten != 4 {
		t.Fatalf("cpu write stats %+v", cpu)
	}
	if cpu.Reads != 1 || cpu.BytesRead != 8 {
		t.Fatalf("cpu read stats %+v", cpu)
	}
	nic := tb.nicEP.Stats()
	if nic.BulkReads != 1 || nic.BytesRead != 64<<10 {
		t.Fatalf("nic bulk read stats %+v", nic)
	}
	if nic.PostedWrites != 1 || nic.BytesWritten != 64<<10 {
		t.Fatalf("nic bulk write stats %+v", nic)
	}
	nicCopy := tb.nicEP
	nicCopy.ResetStats()
	if tb.nicEP.Stats() != (Stats{}) {
		t.Fatal("reset did not clear stats")
	}
}

func TestUtilizationVisible(t *testing.T) {
	tb := newTestbed(t)
	tb.e.Spawn("w", func(p *sim.Proc) {
		tb.f.WriteBulk(p, tb.nicEP, tb.devRAM.Base, make([]byte, 1<<20))
	})
	tb.e.Run()
	if tb.nicEP.Egress().BusyTotal() <= 0 {
		t.Fatal("egress utilization not accumulated")
	}
}
