package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"putget/internal/sim"
)

func TestSpanLifecycle(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	e.At(10, func() {
		id := e.SpanOpen("nic", "outer", sim.Attr{Key: "bytes", Val: 64})
		e.At(20, func() {
			inner := e.SpanOpen("nic", "inner")
			e.At(30, func() { e.SpanClose(inner) })
		})
		e.At(40, func() { e.SpanClose(id) })
	})
	e.At(50, func() {
		// Opened but never closed: Shutdown must force-close it.
		e.SpanOpen("gpu", "poll")
	})
	e.Run()
	e.Shutdown()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if n := len(r.OpenSpans()); n != 0 {
		t.Fatalf("%d spans still open after Shutdown", n)
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %+v ends before it starts", s)
		}
	}
	outer, inner, poll := spans[0], spans[1], spans[2]
	if outer.Kind != "outer" || outer.Start != 10 || outer.End != 40 {
		t.Fatalf("outer span: %+v", outer)
	}
	if len(outer.Attrs) != 1 || outer.Attrs[0].Key != "bytes" || outer.Attrs[0].Val != 64 {
		t.Fatalf("outer attrs: %+v", outer.Attrs)
	}
	// Nesting: the inner span lies inside the outer one and carries a
	// higher id (opened later).
	if inner.Start < outer.Start || inner.End > outer.End || inner.ID <= outer.ID {
		t.Fatalf("inner not nested in outer: %+v vs %+v", inner, outer)
	}
	if poll.Start != 50 || poll.End != 50 {
		t.Fatalf("force-closed span: %+v", poll)
	}
}

func TestSpanOpenAtFutureAndClamp(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	e.At(10, func() {
		// A cut-through stage whose window is known up front: scheduled
		// entirely in the future.
		id := e.SpanOpenAt(15, "wire", "xmit")
		e.SpanCloseAt(id, 25)
		// Closing in the past clamps to now.
		id2 := e.SpanOpen("nic", "stage")
		e.SpanCloseAt(id2, 3)
	})
	e.Run()
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].Start != 15 || spans[0].End != 25 {
		t.Fatalf("future span: %+v", spans[0])
	}
	if spans[1].Start != 10 || spans[1].End != 10 {
		t.Fatalf("clamped span: %+v", spans[1])
	}
}

func TestSpanCloseZeroIsNoop(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	e.At(1, func() { e.SpanClose(0) })
	e.Run()
	if len(r.Spans()) != 0 {
		t.Fatalf("spans = %+v", r.Spans())
	}
}

func TestMetricSamples(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	e.At(5, func() { e.Metric("wire", "depth", 2) })
	e.At(7, func() { e.Metric("wire", "depth", 1) })
	e.Run()
	s := r.Samples()
	if len(s) != 2 || s[0].At != 5 || s[0].Value != 2 || s[1].Value != 1 {
		t.Fatalf("samples = %+v", s)
	}
}

func mkSpan(id uint64, comp, kind string, start, end sim.Time) Span {
	return Span{ID: id, Comp: comp, Kind: kind, Start: start, End: end}
}

func TestBreakdownInnermostAndExactSum(t *testing.T) {
	spans := []Span{
		mkSpan(1, "gpu", "wr.create", 0, 40),
		mkSpan(2, "nic", "dma.fetch", 10, 30), // innermost over [10,30]
		mkSpan(3, "gpu", "poll", 60, 90),
	}
	rows := Breakdown(spans, 0, 100, nil)
	got := map[string]sim.Duration{}
	var sum sim.Duration
	for _, r := range rows {
		got[r.Comp+"/"+r.Kind] = r.Time
		sum += r.Time
	}
	if sum != 100 {
		t.Fatalf("rows sum to %v, want the whole window", sum)
	}
	want := map[string]sim.Duration{
		"gpu/wr.create": 20, "nic/dma.fetch": 20, "gpu/poll": 30, "/(other)": 30,
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("stage %s = %v, want %v (rows %+v)", k, got[k], v, rows)
		}
	}
}

func TestBreakdownTieAndClass(t *testing.T) {
	// Same start: the higher id (opened later) wins.
	spans := []Span{
		mkSpan(1, "x", "outer", 0, 10),
		mkSpan(2, "y", "wrapper", 0, 10),
	}
	rows := Breakdown(spans, 0, 10, nil)
	if len(rows) != 1 || rows[0].Comp != "y" {
		t.Fatalf("tie-break rows: %+v", rows)
	}
	// A class function outranks innermost-ness: demote y and x wins.
	rows = Breakdown(spans, 0, 10, func(s Span) int {
		if s.Comp == "y" {
			return 0
		}
		return 1
	})
	if len(rows) != 1 || rows[0].Comp != "x" {
		t.Fatalf("class rows: %+v", rows)
	}
}

func TestBreakdownClipsAndSkipsOpen(t *testing.T) {
	spans := []Span{
		mkSpan(1, "a", "pre", 0, 30),        // extends before the window
		mkSpan(2, "b", "open", 40, openEnd), // still open: ignored
	}
	rows := Breakdown(spans, 20, 60, nil)
	got := map[string]sim.Duration{}
	for _, r := range rows {
		got[r.Comp+"/"+r.Kind] = r.Time
	}
	if got["a/pre"] != 10 || got["/(other)"] != 30 {
		t.Fatalf("rows: %+v", rows)
	}
}

func TestPerfettoGolden(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	e.At(1_000_000, func() {
		id := e.SpanOpen("a.rma", "dma.fetch", sim.Attr{Key: "bytes", Val: 4096})
		e.At(2_000_000, func() { e.SpanClose(id) })
		e.Tracev("a.rma", "fault", "fault: wire drop")
		e.Metric("a.rma.wire", "depth", 3)
	})
	e.Run()

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, r.PerfettoEvents(7, "extoll/4096B")); err != nil {
		t.Fatal(err)
	}
	const golden = `{"traceEvents":[
{"name":"process_name","ph":"M","ts":0,"pid":7,"tid":0,"args":{"name":"extoll/4096B"}},
{"name":"thread_name","ph":"M","ts":0,"pid":7,"tid":1,"args":{"name":"a.rma"}},
{"name":"thread_name","ph":"M","ts":0,"pid":7,"tid":2,"args":{"name":"a.rma.wire"}},
{"name":"dma.fetch","cat":"a.rma","ph":"X","ts":1,"dur":1,"pid":7,"tid":1,"args":{"bytes":4096}},
{"name":"fault: wire drop","cat":"fault","ph":"i","ts":1,"pid":7,"tid":1,"s":"t"},
{"name":"depth","ph":"C","ts":1,"pid":7,"tid":2,"args":{"value":3}}
],"displayTimeUnit":"ns"}
`
	if buf.String() != golden {
		t.Fatalf("perfetto output:\n%s\nwant:\n%s", buf.String(), golden)
	}
	// The document must be valid JSON end to end.
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
}
