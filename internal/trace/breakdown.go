package trace

import (
	"sort"

	"putget/internal/sim"
)

// StageShare is one row of a latency breakdown: the exclusive virtual time
// a window attributes to one component/kind stage.
type StageShare struct {
	Comp string
	Kind string
	Time sim.Duration
}

// Breakdown decomposes the window [from, to] over the closed spans using a
// sweep line: each elementary segment between span boundaries is
// attributed to the innermost active span — the one with the latest start,
// ties broken by the latest id (the most recently opened). Time no span
// covers lands on the synthetic "(other)" stage, so the rows always sum
// exactly to to-from: the property the latency-breakdown table relies on.
//
// class, when non-nil, ranks spans before innermost-ness: among the active
// spans only those of the highest class compete. Callers use it to keep
// low-level transport spans from shadowing the pipeline-stage spans that
// wrap them. Rows appear in first-attribution order.
func Breakdown(spans []Span, from, to sim.Time, class func(Span) int) []StageShare {
	if to < from {
		from, to = to, from
	}
	var active []Span
	cuts := []sim.Time{from, to}
	for _, s := range spans {
		if s.Open() || s.End <= from || s.Start >= to || s.End == s.Start {
			continue
		}
		active = append(active, s)
		if s.Start > from {
			cuts = append(cuts, s.Start)
		}
		if s.End < to {
			cuts = append(cuts, s.End)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	idx := map[[2]string]int{}
	var rows []StageShare
	add := func(comp, kind string, d sim.Duration) {
		key := [2]string{comp, kind}
		i, ok := idx[key]
		if !ok {
			i = len(rows)
			idx[key] = i
			rows = append(rows, StageShare{Comp: comp, Kind: kind})
		}
		rows[i].Time += d
	}

	for c := 1; c < len(cuts); c++ {
		a, b := cuts[c-1], cuts[c]
		if b == a {
			continue
		}
		best := -1
		for i, s := range active {
			if s.Start > a || s.End < b {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			w := active[best]
			if class != nil {
				if cw, ci := class(w), class(s); cw != ci {
					if ci > cw {
						best = i
					}
					continue
				}
			}
			if s.Start > w.Start || (s.Start == w.Start && s.ID > w.ID) {
				best = i
			}
		}
		if best < 0 {
			add("", "(other)", b.Sub(a))
		} else {
			add(active[best].Comp, active[best].Kind, b.Sub(a))
		}
	}
	return rows
}
