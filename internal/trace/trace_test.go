package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"putget/internal/sim"
)

func emit(e *sim.Engine, at sim.Time, msg string) {
	e.At(at, func() { e.Tracef("%s", msg) })
}

func TestRecorderCapturesInOrder(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	emit(e, 30, "nic: three")
	emit(e, 10, "pcie: one")
	emit(e, 20, "gpu: two")
	e.Run()
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Cat != "pcie" || evs[1].Cat != "gpu" || evs[2].Cat != "nic" {
		t.Fatalf("order/categories wrong: %+v", evs)
	}
	if evs[0].At != 10 {
		t.Fatalf("timestamp = %v", evs[0].At)
	}
}

func TestRecorderBoundsAndDrops(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 2)
	for i := 0; i < 5; i++ {
		emit(e, sim.Time(i+1), "x: event")
	}
	e.Run()
	if len(r.Events()) != 2 || r.Dropped() != 3 {
		t.Fatalf("kept %d dropped %d", len(r.Events()), r.Dropped())
	}
}

func TestFilterAndCategories(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	emit(e, 1, "a.rma: wr")
	emit(e, 2, "pcie: write")
	emit(e, 3, "a.rma: notif")
	e.Run()
	if got := r.Filter("a.rma"); len(got) != 2 {
		t.Fatalf("filter = %d", len(got))
	}
	cats := r.Categories()
	if len(cats) != 2 || cats[0] != "a.rma" || cats[1] != "pcie" {
		t.Fatalf("categories = %v", cats)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 1)
	emit(e, 5, "pcie: hello")
	emit(e, 6, "pcie: dropped")
	e.Run()
	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "pcie: hello") || !strings.Contains(txt.String(), "dropped") {
		t.Fatalf("text output: %q", txt.String())
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	// The retained event plus the synthetic drop-summary record: the JSON
	// form must not silently lose the Dropped() count.
	if len(back) != 2 || back[0].Msg != "pcie: hello" {
		t.Fatalf("json round trip: %+v", back)
	}
	if back[1].Kind != "drops" || back[1].Dropped != 1 {
		t.Fatalf("drop record: %+v", back[1])
	}
}

func TestWriteJSONEmptyTraceIsArray(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	e.Run()
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(js.String())
	if out != "[]" {
		t.Fatalf("empty trace renders %q, want []", out)
	}
}

func TestFilterMatchesWholeSegments(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	emit(e, 1, "a: short name")
	emit(e, 2, "ack: not a match for 'a'")
	emit(e, 3, "a.rma: sub-component")
	emit(e, 4, "a.rma.wire: deeper sub-component")
	e.Run()
	if got := r.Filter("a"); len(got) != 3 {
		t.Fatalf("filter 'a' = %d events (%+v), want 3", len(got), got)
	}
	if got := r.Filter("a.rma"); len(got) != 2 {
		t.Fatalf("filter 'a.rma' = %d events, want 2", len(got))
	}
	if got := r.Filter("ac"); len(got) != 0 {
		t.Fatalf("filter 'ac' matched %d events, want 0", len(got))
	}
}

func TestFilterMatchesKind(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	e.At(1, func() { e.Tracev("a.rma", "fault", "fault: wire drop") })
	e.At(2, func() { e.Tracev("b.rma", "retry", "retry: resend") })
	e.Run()
	if got := r.Filter("fault"); len(got) != 1 || got[0].Cat != "a.rma" {
		t.Fatalf("filter 'fault' = %+v", got)
	}
	// A component filter must also see that component's structured events.
	if got := r.Filter("a.rma"); len(got) != 1 || got[0].Kind != "fault" {
		t.Fatalf("filter 'a.rma' = %+v", got)
	}
}

func TestAttachChains(t *testing.T) {
	e := sim.NewEngine()
	var prevGot []string
	e.Trace = func(at sim.Time, msg string) { prevGot = append(prevGot, msg) }
	r1 := Attach(e, 0)
	r2 := Attach(e, 0)
	emit(e, 1, "x: legacy line")
	e.At(2, func() { e.Tracev("y", "k", "y: structured line") })
	e.At(3, func() { e.SpanClose(e.SpanOpen("z", "stage")) })
	e.Run()
	// The pre-existing hook keeps receiving everything, including the
	// structured line (forwarded as text since it predates TraceEv).
	if len(prevGot) != 2 {
		t.Fatalf("previous hook got %d lines: %v", len(prevGot), prevGot)
	}
	for _, r := range []*Recorder{r1, r2} {
		if len(r.Events()) != 2 {
			t.Fatalf("recorder events = %d, want 2", len(r.Events()))
		}
		if len(r.Spans()) != 1 || r.Spans()[0].Comp != "z" {
			t.Fatalf("recorder spans = %+v", r.Spans())
		}
	}
}
