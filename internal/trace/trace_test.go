package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"putget/internal/sim"
)

func emit(e *sim.Engine, at sim.Time, msg string) {
	e.At(at, func() { e.Tracef("%s", msg) })
}

func TestRecorderCapturesInOrder(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	emit(e, 30, "nic: three")
	emit(e, 10, "pcie: one")
	emit(e, 20, "gpu: two")
	e.Run()
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Cat != "pcie" || evs[1].Cat != "gpu" || evs[2].Cat != "nic" {
		t.Fatalf("order/categories wrong: %+v", evs)
	}
	if evs[0].At != 10 {
		t.Fatalf("timestamp = %v", evs[0].At)
	}
}

func TestRecorderBoundsAndDrops(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 2)
	for i := 0; i < 5; i++ {
		emit(e, sim.Time(i+1), "x: event")
	}
	e.Run()
	if len(r.Events()) != 2 || r.Dropped() != 3 {
		t.Fatalf("kept %d dropped %d", len(r.Events()), r.Dropped())
	}
}

func TestFilterAndCategories(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 0)
	emit(e, 1, "a.rma: wr")
	emit(e, 2, "pcie: write")
	emit(e, 3, "a.rma: notif")
	e.Run()
	if got := r.Filter("a.rma"); len(got) != 2 {
		t.Fatalf("filter = %d", len(got))
	}
	cats := r.Categories()
	if len(cats) != 2 || cats[0] != "a.rma" || cats[1] != "pcie" {
		t.Fatalf("categories = %v", cats)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	e := sim.NewEngine()
	r := Attach(e, 1)
	emit(e, 5, "pcie: hello")
	emit(e, 6, "pcie: dropped")
	e.Run()
	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "pcie: hello") || !strings.Contains(txt.String(), "dropped") {
		t.Fatalf("text output: %q", txt.String())
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Msg != "pcie: hello" {
		t.Fatalf("json round trip: %+v", back)
	}
}
