package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"putget/internal/sim"
)

// PerfettoEvent is one record of the Chrome/Perfetto trace-event JSON
// format (https://ui.perfetto.dev loads it directly). Timestamps and
// durations are microseconds of virtual time.
type PerfettoEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// perfettoTs converts virtual picoseconds to the format's microseconds.
func perfettoTs(t sim.Time) float64 { return float64(t) / 1e6 }

// PerfettoEvents renders the recorder's spans, events and samples as
// trace-event records under one process: pid names the simulation (one
// per traced cell), and every component becomes a thread track in
// first-seen order. Spans become complete ("X") slices, legacy events
// instants ("i"), metric samples counter ("C") series. Output order is
// deterministic: metadata, then spans, events and samples in record order.
func (r *Recorder) PerfettoEvents(pid int, process string) []PerfettoEvent {
	tids := map[string]int{}
	order := []string{}
	tid := func(comp string) int {
		if comp == "" {
			comp = "(engine)"
		}
		if id, ok := tids[comp]; ok {
			return id
		}
		id := len(order) + 1
		tids[comp] = id
		order = append(order, comp)
		return id
	}
	for _, s := range r.spans {
		tid(s.Comp)
	}
	for _, ev := range r.events {
		tid(ev.Cat)
	}
	for _, sm := range r.samples {
		tid(sm.Comp)
	}

	var out []PerfettoEvent
	out = append(out, PerfettoEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]interface{}{"name": process},
	})
	for i, comp := range order {
		out = append(out, PerfettoEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: i + 1,
			Args: map[string]interface{}{"name": comp},
		})
	}
	for _, s := range r.spans {
		ev := PerfettoEvent{
			Name: s.Kind, Cat: s.Comp, Ts: perfettoTs(s.Start),
			Pid: pid, Tid: tid(s.Comp),
		}
		if len(s.Attrs) > 0 {
			ev.Args = map[string]interface{}{}
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		if s.Open() {
			// Never closed (teardown before Shutdown): emit a begin with
			// no matching end so the tail stays visible in the UI.
			ev.Ph = "B"
		} else {
			ev.Ph = "X"
			ev.Dur = float64(s.End.Sub(s.Start)) / 1e6
		}
		out = append(out, ev)
	}
	for _, e := range r.events {
		kind := e.Kind
		if kind == "" {
			kind = "event"
		}
		out = append(out, PerfettoEvent{
			Name: e.Msg, Cat: kind, Ph: "i", Ts: perfettoTs(e.At),
			Pid: pid, Tid: tid(e.Cat), S: "t",
		})
	}
	for _, sm := range r.samples {
		out = append(out, PerfettoEvent{
			Name: sm.Name, Ph: "C", Ts: perfettoTs(sm.At),
			Pid: pid, Tid: tid(sm.Comp),
			Args: map[string]interface{}{"value": sm.Value},
		})
	}
	return out
}

// WritePerfetto writes trace-event records as a Perfetto-loadable JSON
// document ({"traceEvents": [...]}) — one record per line for stable,
// diffable output.
func WritePerfetto(w io.Writer, evs []PerfettoEvent) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range evs {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(evs)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "],\"displayTimeUnit\":\"ns\"}\n")
	return err
}
