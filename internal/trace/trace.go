// Package trace collects structured event records from a simulation run:
// every model's trace line becomes an Event with a timestamp and a
// category (derived from the emitting component's prefix), filterable and
// exportable as text or JSON. The putgettrace command is built on it.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"putget/internal/sim"
)

// Event is one recorded model event.
type Event struct {
	At  sim.Time // virtual timestamp (picoseconds)
	Cat string   // emitting component ("pcie", "a.rma", "gpu", ...)
	Msg string   // human-readable description
}

// Recorder captures events from an engine's trace hook.
type Recorder struct {
	events []Event
	max    int
	drops  int
}

// Attach installs a recorder on the engine's trace hook. max bounds the
// number of retained events (0 = unlimited); further events are counted
// as dropped.
func Attach(e *sim.Engine, max int) *Recorder {
	r := &Recorder{max: max}
	e.Trace = func(t sim.Time, msg string) {
		if r.max > 0 && len(r.events) >= r.max {
			r.drops++
			return
		}
		cat := msg
		if i := strings.IndexByte(msg, ':'); i > 0 {
			cat = msg[:i]
		}
		r.events = append(r.events, Event{At: t, Cat: cat, Msg: msg})
	}
	return r
}

// Events returns every recorded event in time order.
func (r *Recorder) Events() []Event { return r.events }

// Dropped reports how many events exceeded the retention bound.
func (r *Recorder) Dropped() int { return r.drops }

// Filter returns the events whose category has the given prefix.
func (r *Recorder) Filter(catPrefix string) []Event {
	var out []Event
	for _, ev := range r.events {
		if strings.HasPrefix(ev.Cat, catPrefix) {
			out = append(out, ev)
		}
	}
	return out
}

// Categories returns the distinct categories seen, in first-seen order.
func (r *Recorder) Categories() []string {
	seen := map[string]bool{}
	var out []string
	for _, ev := range r.events {
		if !seen[ev.Cat] {
			seen[ev.Cat] = true
			out = append(out, ev.Cat)
		}
	}
	return out
}

// WriteText renders the events one per line with aligned timestamps.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.events {
		if _, err := fmt.Fprintf(w, "%12v  %s\n", ev.At, ev.Msg); err != nil {
			return err
		}
	}
	if r.drops > 0 {
		if _, err := fmt.Fprintf(w, "(… %d further events dropped)\n", r.drops); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the events as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.events)
}
