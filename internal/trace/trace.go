// Package trace collects structured records from a simulation run: every
// model's trace line becomes an Event with a timestamp, a component and a
// kind; every instrumented pipeline stage becomes a typed Span; metric
// hooks become virtual-time Samples. Records are filterable and export as
// text, JSON or Chrome/Perfetto trace-event JSON. The putgettrace command
// and the putgetbench latency-breakdown experiment are built on it.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"putget/internal/sim"
)

// Event is one recorded model event.
type Event struct {
	At  sim.Time // virtual timestamp (picoseconds)
	Cat string   // emitting component ("pcie", "a.rma", "gpu", ...)
	Msg string   // human-readable description
	// Kind classifies structured events ("fault", "retry", ...). Legacy
	// Tracef lines leave it empty; their Cat is derived from the message
	// prefix as before.
	Kind string `json:",omitempty"`
	// Dropped is nonzero only on the synthetic summary record WriteJSON
	// appends when the retention bound was exceeded.
	Dropped int `json:",omitempty"`
}

// Span is one completed (or still-open) pipeline stage: a component doing
// one kind of work over a virtual-time interval.
type Span struct {
	ID    uint64
	Comp  string     // owning component ("a.rma", "pcie", "b.gpu", ...)
	Kind  string     // stage ("wr.create", "dma.fetch", "xmit", ...)
	Start sim.Time   // virtual open time (picoseconds)
	End   sim.Time   // virtual close time; openEnd while still open
	Attrs []sim.Attr `json:",omitempty"`
}

// openEnd marks a span not yet closed.
const openEnd = sim.Time(-1)

// Open reports whether the span has not been closed yet.
func (s Span) Open() bool { return s.End == openEnd }

// Dur returns the span's length (0 while open).
func (s Span) Dur() sim.Duration {
	if s.Open() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Sample is one point of a virtual-time metric series.
type Sample struct {
	At    sim.Time
	Comp  string
	Name  string
	Value float64
}

// Recorder captures events, spans and metric samples from an engine's
// trace hooks and observer stream.
type Recorder struct {
	events []Event
	max    int
	drops  int

	spans   []Span
	openIdx map[sim.SpanID]int
	samples []Sample
}

// Attach installs a recorder on the engine's trace hooks and observer
// stream. max bounds the number of retained events (0 = unlimited);
// further events are counted as dropped. Spans and samples are not
// bounded: one span per pipeline stage is two orders of magnitude sparser
// than per-packet trace lines.
//
// Attach chains: a hook or observer already installed on the engine keeps
// receiving everything — two recorders may observe one simulation.
func Attach(e *sim.Engine, max int) *Recorder {
	r := &Recorder{max: max, openIdx: map[sim.SpanID]int{}}
	prevTrace := e.Trace
	prevEv := e.TraceEv
	e.Trace = func(t sim.Time, msg string) {
		if prevTrace != nil {
			prevTrace(t, msg)
		}
		// Legacy line: the category is the text before the first colon.
		cat := msg
		if i := strings.IndexByte(msg, ':'); i > 0 {
			cat = msg[:i]
		}
		r.record(Event{At: t, Cat: cat, Msg: msg})
	}
	e.TraceEv = func(t sim.Time, comp, kind, msg string) {
		if prevEv != nil {
			prevEv(t, comp, kind, msg)
		} else if prevTrace != nil {
			// The earlier observer predates the structured hook; forward
			// the text so it does not silently lose events.
			prevTrace(t, msg)
		}
		r.record(Event{At: t, Cat: comp, Kind: kind, Msg: msg})
	}
	e.SetObserver(r)
	return r
}

func (r *Recorder) record(ev Event) {
	if r.max > 0 && len(r.events) >= r.max {
		r.drops++
		return
	}
	r.events = append(r.events, ev)
}

// SpanOpen implements sim.Observer.
func (r *Recorder) SpanOpen(id sim.SpanID, at sim.Time, comp, kind string, attrs []sim.Attr) {
	r.openIdx[id] = len(r.spans)
	r.spans = append(r.spans, Span{ID: uint64(id), Comp: comp, Kind: kind, Start: at, End: openEnd, Attrs: attrs})
}

// SpanClose implements sim.Observer.
func (r *Recorder) SpanClose(id sim.SpanID, at sim.Time) {
	i, ok := r.openIdx[id]
	if !ok {
		return
	}
	delete(r.openIdx, id)
	if at < r.spans[i].Start {
		at = r.spans[i].Start
	}
	r.spans[i].End = at
}

// MetricSample implements sim.Observer.
func (r *Recorder) MetricSample(at sim.Time, comp, name string, value float64) {
	r.samples = append(r.samples, Sample{At: at, Comp: comp, Name: name, Value: value})
}

// Shutdown implements sim.Observer: spans still open when the simulation
// is torn down (pollers parked forever, in-flight ops at a Stop) are
// force-closed at teardown time so every opened span ends.
func (r *Recorder) Shutdown(at sim.Time) {
	for id, i := range r.openIdx {
		delete(r.openIdx, id)
		if at < r.spans[i].Start {
			r.spans[i].End = r.spans[i].Start
		} else {
			r.spans[i].End = at
		}
	}
}

// Events returns every recorded event in time order.
func (r *Recorder) Events() []Event { return r.events }

// Spans returns every span in open order (ids ascend).
func (r *Recorder) Spans() []Span { return r.spans }

// OpenSpans returns the spans not yet closed, in open order.
func (r *Recorder) OpenSpans() []Span {
	var out []Span
	for _, s := range r.spans {
		if s.Open() {
			out = append(out, s)
		}
	}
	return out
}

// Samples returns every metric sample in record order.
func (r *Recorder) Samples() []Sample { return r.samples }

// Dropped reports how many events exceeded the retention bound.
func (r *Recorder) Dropped() int { return r.drops }

// segMatch reports whether cat equals prefix or extends it at a dot
// boundary: "a" matches "a" and "a.rma" but not "ack" or "assist".
func segMatch(cat, prefix string) bool {
	return cat == prefix || (strings.HasPrefix(cat, prefix) && len(cat) > len(prefix) && cat[len(prefix)] == '.')
}

// Filter returns the events whose category — or, for structured events,
// whose kind — matches the prefix on whole dot-separated segments. Kind
// matching keeps "-filter fault" working now that fault/retry lines carry
// the emitting NIC as their category.
func (r *Recorder) Filter(prefix string) []Event {
	var out []Event
	for _, ev := range r.events {
		if segMatch(ev.Cat, prefix) || (ev.Kind != "" && segMatch(ev.Kind, prefix)) {
			out = append(out, ev)
		}
	}
	return out
}

// Categories returns the distinct categories seen, in first-seen order.
func (r *Recorder) Categories() []string {
	seen := map[string]bool{}
	var out []string
	for _, ev := range r.events {
		if !seen[ev.Cat] {
			seen[ev.Cat] = true
			out = append(out, ev.Cat)
		}
	}
	return out
}

// WriteText renders the events one per line with aligned timestamps.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.events {
		if _, err := fmt.Fprintf(w, "%12v  %s\n", ev.At, ev.Msg); err != nil {
			return err
		}
	}
	if r.drops > 0 {
		if _, err := fmt.Fprintf(w, "(… %d further events dropped)\n", r.drops); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the events as a JSON array — [] when the trace is
// empty, never null — with a trailing summary record carrying the drop
// count when the retention bound was exceeded.
func (r *Recorder) WriteJSON(w io.Writer) error {
	evs := r.events
	if r.drops > 0 {
		var last sim.Time
		if n := len(evs); n > 0 {
			last = evs[n-1].At
		}
		evs = append(evs[:len(evs):len(evs)], Event{
			At: last, Cat: "trace", Kind: "drops",
			Msg:     fmt.Sprintf("%d further events dropped (retention bound %d)", r.drops, r.max),
			Dropped: r.drops,
		})
	}
	if evs == nil {
		evs = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(evs)
}
