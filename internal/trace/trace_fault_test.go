package trace_test

import (
	"testing"

	"putget/internal/cluster"
	"putget/internal/core"
	"putget/internal/extoll"
	"putget/internal/sim"
	"putget/internal/trace"
)

// TestFaultTraceCategories checks that the fault injector and the
// retransmission machinery emit traceable events under their own
// categories ("fault" and "retry"), so putgettrace can filter them.
func TestFaultTraceCategories(t *testing.T) {
	p := cluster.Default()
	p.FaultInject = true
	p.FaultSeed = 1
	p.FaultDropRate = 1.0
	p.GPUDevMemSize = 64 << 20
	p.HostRAMSize = 96 << 20

	tb := cluster.NewExtollPair(p)
	defer tb.Shutdown()
	rec := trace.Attach(tb.E, 0)
	ra, rb := core.NewRMA(tb.A), core.NewRMA(tb.B)
	ra.OpenPort(0)
	rb.OpenPort(0)
	extoll.ConnectPorts(tb.A.Extoll, 0, tb.B.Extoll, 0)
	src := ra.Register(tb.A.AllocDev(64), 64)
	dst := rb.Register(tb.B.AllocDev(64), 64)

	done := sim.NewCompletion(tb.E)
	tb.E.Spawn("a.cpu", func(pr *sim.Proc) {
		ra.HostGet(pr, 0, dst, src, 64, extoll.FlagCompNotif)
		ra.HostWaitNotifTimeout(pr, 0, extoll.ClassCompleter, 2*sim.Millisecond)
		done.Complete()
	})
	tb.E.Run()
	if !done.Done() {
		t.Fatal("bounded wait did not complete")
	}
	if len(rec.Filter("fault")) == 0 {
		t.Fatalf("no 'fault' trace events; categories: %v", rec.Categories())
	}
	if len(rec.Filter("retry")) == 0 {
		t.Fatalf("no 'retry' trace events; categories: %v", rec.Categories())
	}
	// Regression: fault/retry lines must carry the emitting component, so
	// filtering on a NIC shows ITS faults too — not only its pipeline
	// events. Before the structured hook, the category was derived from
	// the "fault:"/"retry:" message prefix and the component was lost.
	var gotFault, gotRetry bool
	for _, ev := range rec.Filter("a.rma") {
		switch ev.Kind {
		case "fault":
			gotFault = true
		case "retry":
			gotRetry = true
		}
	}
	if !gotFault || !gotRetry {
		t.Fatalf("filter a.rma lost fault/retry events (fault=%v retry=%v)", gotFault, gotRetry)
	}
}
