package hostsim

import (
	"testing"

	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
)

type rig struct {
	e     *sim.Engine
	f     *pcie.Fabric
	cpu   *CPU
	dev   memspace.Region
	bar   memspace.Region
	nic   *fakeNIC
	devEP *pcie.Endpoint
}

type fakeNIC struct {
	writes [][]byte
}

func (n *fakeNIC) MMIOWrite(addr memspace.Addr, data []byte) {
	n.writes = append(n.writes, append([]byte(nil), data...))
}
func (n *fakeNIC) MMIORead(addr memspace.Addr, data []byte) {
	for i := range data {
		data[i] = 0xee
	}
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine()
	space := memspace.NewSpace()
	host := space.MustMap(0, memspace.NewRAM("host", 1<<20))
	dev := space.MustMap(0x1000_0000, memspace.NewRAM("dev", 1<<20))
	f := pcie.NewFabric(e, space)
	hostEP := f.AddEndpoint("hostmem", pcie.EndpointConfig{EgressRate: 8e9, OneWay: 100 * sim.Nanosecond, ReadLatency: 150 * sim.Nanosecond})
	devEP := f.AddEndpoint("dev", pcie.EndpointConfig{EgressRate: 8e9, OneWay: 350 * sim.Nanosecond, ReadLatency: 600 * sim.Nanosecond})
	f.ClaimRAM(hostEP, host)
	f.ClaimRAM(devEP, dev)
	nic := &fakeNIC{}
	bar := memspace.Region{Base: 0x2000_0000, Size: 0x1000}
	nicEP := f.AddEndpoint("nic", pcie.EndpointConfig{EgressRate: 4e9, OneWay: 150 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond})
	f.ClaimMMIO(nicEP, bar, nic)
	cpu := New(e, f, Config{
		Name:          "cpu0",
		MemLatency:    90 * sim.Nanosecond,
		MMIOWriteCost: 50 * sim.Nanosecond,
		WRGenCost:     60 * sim.Nanosecond,
		HostRAM:       host,
		PCIe:          pcie.EndpointConfig{EgressRate: 16e9, OneWay: 100 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond},
	})
	hostEP.OnInboundWrite = func(addr memspace.Addr, n int) { cpu.NotifyInboundWrite() }
	return &rig{e: e, f: f, cpu: cpu, dev: dev, bar: bar, nic: nic, devEP: devEP}
}

func TestLocalMemoryFast(t *testing.T) {
	r := newRig(t)
	var took sim.Duration
	r.e.Spawn("t", func(p *sim.Proc) {
		start := p.Now()
		r.cpu.WriteU64(p, 0x100, 7)
		if v := r.cpu.ReadU64(p, 0x100); v != 7 {
			t.Errorf("read back %d", v)
		}
		took = p.Now().Sub(start)
	})
	r.e.Run()
	if took != 180*sim.Nanosecond {
		t.Fatalf("local r+w took %v, want 180ns", took)
	}
}

func TestRemoteReadCrossesFabric(t *testing.T) {
	r := newRig(t)
	if err := r.f.Space().WriteU64(r.dev.Base, 99); err != nil {
		t.Fatal(err)
	}
	var took sim.Duration
	var v uint64
	r.e.Spawn("t", func(p *sim.Proc) {
		start := p.Now()
		v = r.cpu.ReadU64(p, r.dev.Base)
		took = p.Now().Sub(start)
	})
	r.e.Run()
	if v != 99 {
		t.Fatalf("remote read = %d", v)
	}
	if took < sim.Microsecond {
		t.Fatalf("remote read took %v, want ≥1us", took)
	}
}

func TestMMIOWriteReachesTarget(t *testing.T) {
	r := newRig(t)
	r.e.Spawn("t", func(p *sim.Proc) {
		r.cpu.WriteU64(p, r.bar.Base, 0xabcdef)
		r.cpu.MMIOWriteBurst(p, r.bar.Base+8, make([]byte, 24))
	})
	r.e.Run()
	if len(r.nic.writes) != 2 {
		t.Fatalf("nic got %d writes, want 2", len(r.nic.writes))
	}
	if len(r.nic.writes[1]) != 24 {
		t.Fatalf("burst size = %d, want 24", len(r.nic.writes[1]))
	}
}

func TestWaitFlagSeesPostedWrite(t *testing.T) {
	r := newRig(t)
	flag := memspace.Addr(0x500)
	var detected sim.Time
	r.e.Spawn("waiter", func(p *sim.Proc) {
		r.cpu.WaitFlag(p, flag, 1)
		detected = p.Now()
	})
	// Another device posts the flag at 5us (a DMA write over the fabric).
	r.e.SpawnAt(5_000_000, "setter", func(p *sim.Proc) {
		r.f.PostedWrite(r.devEP, flag, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	})
	r.e.Run()
	if detected < 5_000_000 {
		t.Fatalf("flag detected at %v before it was set", detected)
	}
	if detected > 5_000_000+sim.Time(1200*sim.Nanosecond) {
		t.Fatalf("flag detection too slow: %v", detected)
	}
}

func TestPollU64ReturnsSatisfyingValue(t *testing.T) {
	r := newRig(t)
	addr := memspace.Addr(0x600)
	var got uint64
	r.e.Spawn("p", func(p *sim.Proc) {
		got = r.cpu.PollU64(p, addr, func(v uint64) bool { return v >= 3 })
	})
	r.e.SpawnAt(1_000_000, "w", func(p *sim.Proc) {
		r.f.PostedWrite(r.devEP, addr, []byte{5, 0, 0, 0, 0, 0, 0, 0})
	})
	r.e.Run()
	if got != 5 {
		t.Fatalf("poll returned %d, want 5", got)
	}
}

func TestGenWRCost(t *testing.T) {
	r := newRig(t)
	var took sim.Duration
	r.e.Spawn("t", func(p *sim.Proc) {
		s := p.Now()
		r.cpu.GenWR(p)
		took = p.Now().Sub(s)
	})
	r.e.Run()
	if took != 60*sim.Nanosecond {
		t.Fatalf("GenWR took %v", took)
	}
}

func TestRemotePollPaysRoundTrips(t *testing.T) {
	// Polling across PCIe must not use the parked fast path: each probe
	// is a full round trip, and the value is still observed.
	r := newRig(t)
	addr := r.dev.Base + 0x40
	var took sim.Duration
	r.e.Spawn("poll", func(p *sim.Proc) {
		s := p.Now()
		r.cpu.PollU64(p, addr, func(v uint64) bool { return v == 9 })
		took = p.Now().Sub(s)
	})
	r.e.SpawnAt(10_000_000, "set", func(p *sim.Proc) {
		r.f.Space().WriteU64(addr, 9) // functional write; no host signal
	})
	r.e.Run()
	if took < 10*sim.Microsecond {
		t.Fatalf("remote poll returned too early: %v", took)
	}
}

func TestMMIOBurstKeepsOrderWithFlagWrite(t *testing.T) {
	// A WR burst followed by a host-memory flag write: the NIC must see
	// the burst before anyone sees the flag (same-source posted ordering
	// is what the host-assisted protocol relies on).
	r := newRig(t)
	var burstAt, flagAt sim.Time
	done := make(chan struct{}, 1)
	_ = done
	r.e.Spawn("t", func(p *sim.Proc) {
		r.cpu.MMIOWriteBurst(p, r.bar.Base, make([]byte, 24))
		r.cpu.WriteU64(p, 0x700, 1)
	})
	r.e.Spawn("watch", func(p *sim.Proc) {
		r.cpu.WaitFlag(p, 0x700, 1)
		flagAt = p.Now()
		if len(r.nic.writes) == 0 {
			t.Error("flag visible before the MMIO burst")
		} else {
			burstAt = flagAt // burst already delivered
		}
	})
	r.e.Run()
	_ = burstAt
}
