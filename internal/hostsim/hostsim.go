// Package hostsim models the host CPU side of the testbed: a fast
// single-thread processor with cache-speed access to its own RAM, MMIO
// over the PCIe fabric, and helper loops for the polling and host-assisted
// protocols the paper measures.
//
// The model is intentionally coarse — the paper's point is precisely that
// CPU-side work-request generation and notification polling are cheap, so
// only a handful of cost parameters matter.
package hostsim

import (
	"encoding/binary"
	"fmt"

	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
)

// Config fixes the CPU cost model.
type Config struct {
	Name string
	// MemLatency is one cached host-RAM access (also the polling cadence).
	MemLatency sim.Duration
	// MMIOWriteCost is the core-side cost to retire one posted MMIO store
	// (the fabric adds serialization and flight time).
	MMIOWriteCost sim.Duration
	// WRGenCost is the host-side cost to build one work request.
	WRGenCost sim.Duration
	// HostRAM is the region served without crossing PCIe.
	HostRAM memspace.Region
	// PCIe configures the CPU's fabric port.
	PCIe pcie.EndpointConfig
}

// CPU is one host processor attached to a node fabric. Its methods charge
// virtual time on the calling process, which plays the role of a pinned
// host thread.
type CPU struct {
	cfg Config
	e   *sim.Engine
	f   *pcie.Fabric
	ep  *pcie.Endpoint

	// inboundSig/inboundEpoch let PollU64 park between DMA writes into
	// host RAM instead of simulating every cache-speed probe.
	inboundSig   *sim.Signal
	inboundEpoch uint64
}

// New attaches a CPU endpoint to the fabric.
func New(e *sim.Engine, f *pcie.Fabric, cfg Config) *CPU {
	c := &CPU{cfg: cfg, e: e, f: f}
	c.ep = f.AddEndpoint(cfg.Name, cfg.PCIe)
	c.inboundSig = sim.NewSignal(e)
	return c
}

// Endpoint returns the CPU's fabric port.
func (c *CPU) Endpoint() *pcie.Endpoint { return c.ep }

// Name returns the configured name.
func (c *CPU) Name() string { return c.cfg.Name }

func (c *CPU) isLocal(addr memspace.Addr) bool { return c.cfg.HostRAM.Contains(addr) }

// Compute charges d of pure CPU time.
func (c *CPU) Compute(p *sim.Proc, d sim.Duration) { p.Sleep(d) }

// GenWR charges the host-side cost of building one work request.
func (c *CPU) GenWR(p *sim.Proc) { p.Sleep(c.cfg.WRGenCost) }

// ReadU64 loads a 64-bit word: cache-speed from host RAM, a full PCIe
// round trip otherwise.
func (c *CPU) ReadU64(p *sim.Proc, addr memspace.Addr) uint64 {
	var b [8]byte
	c.Read(p, addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Read loads len(b) bytes.
func (c *CPU) Read(p *sim.Proc, addr memspace.Addr, b []byte) {
	if c.isLocal(addr) {
		p.Sleep(c.cfg.MemLatency)
		if err := c.f.Space().Read(addr, b); err != nil {
			panic(fmt.Sprintf("hostsim: %s: %v", c.cfg.Name, err))
		}
		return
	}
	c.f.Read(p, c.ep, addr, b)
}

// WriteU64 stores a 64-bit word: host RAM at cache speed, posted MMIO
// otherwise.
func (c *CPU) WriteU64(p *sim.Proc, addr memspace.Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	c.Write(p, addr, b[:])
}

// Write stores b at addr.
func (c *CPU) Write(p *sim.Proc, addr memspace.Addr, b []byte) {
	if c.isLocal(addr) {
		p.Sleep(c.cfg.MemLatency)
		if err := c.f.Space().Write(addr, b); err != nil {
			panic(fmt.Sprintf("hostsim: %s: %v", c.cfg.Name, err))
		}
		return
	}
	p.Sleep(c.cfg.MMIOWriteCost)
	cp := append([]byte(nil), b...)
	c.f.PostedWrite(c.ep, addr, cp)
}

// MMIOWriteBurst posts data as one write-combined MMIO store burst (the
// x86 WC path hosts use to hand descriptors to a BAR in few TLPs).
func (c *CPU) MMIOWriteBurst(p *sim.Proc, addr memspace.Addr, data []byte) {
	p.Sleep(c.cfg.MMIOWriteCost)
	cp := append([]byte(nil), data...)
	c.f.PostedWrite(c.ep, addr, cp)
}

// NotifyInboundWrite wakes pollers after a DMA write into host RAM; the
// cluster wires it to the host-memory endpoint's inbound-write hook.
func (c *CPU) NotifyInboundWrite() {
	c.inboundEpoch++
	c.inboundSig.Broadcast()
}

// PollU64 re-reads addr until pred is satisfied, returning the value that
// satisfied it. Polling host RAM runs at cache cadence but parks between
// inbound DMA writes (the only way the value can change under the single-
// writer protocols this repository models); polling across PCIe pays a
// full round trip per probe.
func (c *CPU) PollU64(p *sim.Proc, addr memspace.Addr, pred func(uint64) bool) uint64 {
	var span sim.SpanID
	if c.e.Observing() {
		span = c.e.SpanOpen(c.cfg.Name, "poll.mem")
	}
	local := c.isLocal(addr)
	for {
		epoch := c.inboundEpoch
		v := c.ReadU64(p, addr)
		if pred(v) {
			c.e.SpanClose(span)
			return v
		}
		if !local || c.inboundEpoch != epoch {
			continue
		}
		c.inboundSig.Wait(p)
	}
}

// WaitFlag polls addr until it holds exactly want, then returns.
func (c *CPU) WaitFlag(p *sim.Proc, addr memspace.Addr, want uint64) {
	c.PollU64(p, addr, func(v uint64) bool { return v == want })
}
