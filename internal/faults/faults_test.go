package faults

import (
	"testing"

	"putget/internal/sim"
)

func TestFaultSplitmixDeterminism(t *testing.T) {
	a, b := NewSplitmix64(42), NewSplitmix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if NewSplitmix64(1).Next() == NewSplitmix64(2).Next() {
		t.Fatal("different seeds produced the same first draw")
	}
	g := NewSplitmix64(7)
	for i := 0; i < 1000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFaultDropRateStatistics(t *testing.T) {
	in := NewInjector(Plan{Seed: 9, Rules: []Rule{{DropRate: 0.25}}})
	const n = 20000
	for i := 0; i < n; i++ {
		in.Judge(sim.Time(i)*1000, 64)
	}
	st := in.Stats()
	if st.Seen != n {
		t.Fatalf("seen %d, want %d", st.Seen, n)
	}
	frac := float64(st.Dropped) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("drop fraction %.3f, want ~0.25", frac)
	}
}

func TestFaultDropNthPacket(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, DropPackets: map[uint64]bool{3: true}})
	for i := 0; i < 10; i++ {
		drop, _, _ := in.Judge(0, 64)
		if drop != (i == 3) {
			t.Fatalf("packet %d: drop=%v", i, drop)
		}
	}
}

func TestFaultBlackoutWindow(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Blackouts: []Window{
		{Start: 1000, End: 2000},
	}})
	cases := []struct {
		at   sim.Time
		drop bool
	}{{0, false}, {999, false}, {1000, true}, {1999, true}, {2000, false}}
	for _, c := range cases {
		drop, _, _ := in.Judge(c.at, 64)
		if drop != c.drop {
			t.Fatalf("at %v: drop=%v, want %v", c.at, drop, c.drop)
		}
	}
	// Open-ended blackout.
	open := NewInjector(Plan{Seed: 1, Blackouts: []Window{{Start: 500}}})
	if drop, _, _ := open.Judge(1e12, 64); !drop {
		t.Fatal("open-ended blackout did not drop")
	}
}

func TestFaultWindowedRule(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Rules: []Rule{
		{Window: Window{Start: 100, End: 200}, DropRate: 1.0},
	}})
	if drop, _, _ := in.Judge(50, 64); drop {
		t.Fatal("rule applied outside its window")
	}
	if drop, _, _ := in.Judge(150, 64); !drop {
		t.Fatal("rule did not apply inside its window")
	}
}

func TestFaultCorruptAndDelay(t *testing.T) {
	in := NewInjector(Plan{Seed: 5, Rules: []Rule{
		{CorruptRate: 1.0, DelayMax: 100 * sim.Nanosecond},
	}})
	drop, corrupt, delay := in.Judge(0, 64)
	if drop || !corrupt {
		t.Fatalf("drop=%v corrupt=%v, want corrupt only", drop, corrupt)
	}
	if delay < 0 || delay > 100*sim.Nanosecond {
		t.Fatalf("delay %v outside [0, 100ns]", delay)
	}
}

func TestFaultInjectorDeterminism(t *testing.T) {
	plan := Plan{Seed: 11, Rules: []Rule{{DropRate: 0.1, CorruptRate: 0.05, DelayMax: sim.Microsecond}}}
	a, b := NewInjector(plan), NewInjector(plan)
	for i := 0; i < 5000; i++ {
		d1, c1, x1 := a.Judge(sim.Time(i), 64)
		d2, c2, x2 := b.Judge(sim.Time(i), 64)
		if d1 != d2 || c1 != c2 || x1 != x2 {
			t.Fatalf("verdict %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestFaultDeriveSeedIndependence(t *testing.T) {
	if DeriveSeed(1, 1) == DeriveSeed(1, 2) {
		t.Fatal("salts collide")
	}
	if DeriveSeed(1, 1) != DeriveSeed(1, 1) {
		t.Fatal("derivation not deterministic")
	}
}
