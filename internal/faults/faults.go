// Package faults provides deterministic fault injection for the wire and
// PCIe models: seeded drop / corrupt / extra-delay decisions plus scripted
// blackout windows and "drop packet N" rules, all driven by a splitmix64
// PRNG and the simulation's virtual clock — never wall time — so a run is
// bit-identical for a given seed on any machine.
package faults

import "putget/internal/sim"

// Splitmix64 is the PRNG behind every injection decision: tiny state,
// excellent equidistribution, and trivially reproducible.
type Splitmix64 struct {
	state uint64
}

// NewSplitmix64 seeds a generator.
func NewSplitmix64(seed uint64) *Splitmix64 {
	return &Splitmix64{state: seed}
}

// Next returns the next 64-bit value.
func (s *Splitmix64) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Splitmix64) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// DeriveSeed mixes a salt into a base seed, giving independent streams for
// e.g. the two directions of a cable.
func DeriveSeed(seed, salt uint64) uint64 {
	g := NewSplitmix64(seed ^ (salt * 0x9E3779B97F4A7C15))
	return g.Next()
}

// Window is a half-open virtual-time interval [Start, End). End == 0 means
// "no upper bound".
type Window struct {
	Start sim.Time
	End   sim.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool {
	return t >= w.Start && (w.End == 0 || t < w.End)
}

// Rule applies probabilistic faults inside a time window.
type Rule struct {
	Window      Window
	DropRate    float64      // probability a packet is dropped
	CorruptRate float64      // probability a packet's payload is poisoned
	DelayMax    sim.Duration // uniform extra delivery delay in [0, DelayMax]
}

// Plan scripts an injector: probabilistic rules, targeted single-packet
// drops, and total-loss blackout windows.
type Plan struct {
	Seed  uint64
	Rules []Rule
	// DropPackets drops the Nth packet seen by this injector (0-based).
	DropPackets map[uint64]bool
	// Blackouts are 100%-loss windows, independent of any rule.
	Blackouts []Window
}

// Stats counts an injector's verdicts.
type Stats struct {
	Seen      uint64
	Dropped   uint64
	Corrupted uint64
	Delayed   uint64
}

// Injector renders a Plan's verdicts packet by packet. One injector guards
// one direction of one link; decisions consume PRNG state in call order,
// which the discrete-event engine makes deterministic.
type Injector struct {
	plan  Plan
	rng   *Splitmix64
	stats Stats
}

// NewInjector builds an injector from a plan.
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan, rng: NewSplitmix64(plan.Seed)}
}

// Stats returns a snapshot of the verdict counters.
func (in *Injector) Stats() Stats { return in.stats }

// Judge decides the fate of one packet entering the wire at time `at`.
// Implements wire.Faults.
func (in *Injector) Judge(at sim.Time, wireBytes int) (drop, corrupt bool, extraDelay sim.Duration) {
	n := in.stats.Seen
	in.stats.Seen++
	for _, b := range in.plan.Blackouts {
		if b.Contains(at) {
			in.stats.Dropped++
			return true, false, 0
		}
	}
	if in.plan.DropPackets[n] {
		in.stats.Dropped++
		return true, false, 0
	}
	for _, r := range in.plan.Rules {
		if !r.Window.Contains(at) {
			continue
		}
		if r.DropRate > 0 && in.rng.Float64() < r.DropRate {
			in.stats.Dropped++
			return true, false, 0
		}
		if r.CorruptRate > 0 && in.rng.Float64() < r.CorruptRate {
			corrupt = true
		}
		if r.DelayMax > 0 {
			d := sim.Duration(in.rng.Float64() * float64(r.DelayMax))
			if d > extraDelay {
				extraDelay = d
			}
		}
	}
	if corrupt {
		in.stats.Corrupted++
	}
	if extraDelay > 0 {
		in.stats.Delayed++
	}
	return false, corrupt, extraDelay
}
