package faults

import (
	"testing"

	"putget/internal/sim"
)

// TestFaultOverlappingBlackouts checks that packets inside the union of
// two overlapping blackout windows all drop, that the overlap is not
// double-counted, and that delivery resumes exactly at the union's end.
func TestFaultOverlappingBlackouts(t *testing.T) {
	in := NewInjector(Plan{
		Seed: 1,
		Blackouts: []Window{
			{Start: 100, End: 300},
			{Start: 200, End: 400},
		},
	})
	type probe struct {
		at   sim.Time
		drop bool
	}
	probes := []probe{
		{50, false},  // before either window
		{100, true},  // first window opens (inclusive start)
		{150, true},  // first only
		{250, true},  // overlap: both windows contain it
		{350, true},  // second only — past the first window's end
		{399, true},  // last instant of the union
		{400, false}, // half-open: the union's end is outside
		{500, false},
	}
	for _, p := range probes {
		drop, corrupt, delay := in.Judge(p.at, 64)
		if drop != p.drop {
			t.Errorf("at %v: drop = %v, want %v", p.at, drop, p.drop)
		}
		if corrupt || delay != 0 {
			t.Errorf("at %v: blackout-only plan corrupted (%v) or delayed (%v)", p.at, corrupt, delay)
		}
	}
	wantDrops := uint64(0)
	for _, p := range probes {
		if p.drop {
			wantDrops++
		}
	}
	st := in.Stats()
	if st.Seen != uint64(len(probes)) || st.Dropped != wantDrops {
		t.Fatalf("stats = %+v, want seen %d dropped %d (overlap must not double-count)",
			st, len(probes), wantDrops)
	}
}

// TestFaultOpenEndedWindow pins the End == 0 convention: a window with
// only a Start never closes, and the zero-value window contains every
// instant from time zero on.
func TestFaultOpenEndedWindow(t *testing.T) {
	w := Window{Start: 250}
	for _, tc := range []struct {
		at   sim.Time
		want bool
	}{
		{0, false},
		{249, false},
		{250, true},
		{1 << 40, true}, // far future: no upper bound
	} {
		if got := w.Contains(tc.at); got != tc.want {
			t.Errorf("Window{Start:250}.Contains(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	var zero Window
	if !zero.Contains(0) || !zero.Contains(1<<40) {
		t.Fatal("zero-value window must contain all of time")
	}
	// An open-ended blackout is permanent packet death.
	in := NewInjector(Plan{Seed: 2, Blackouts: []Window{{Start: 250}}})
	if drop, _, _ := in.Judge(249, 64); drop {
		t.Fatal("packet before an open-ended blackout dropped")
	}
	for _, at := range []sim.Time{250, 1e6, 1e12} {
		if drop, _, _ := in.Judge(at, 64); !drop {
			t.Fatalf("packet at %v survived an open-ended blackout", at)
		}
	}
}

// TestFaultCorruptDelayCombined drives a rule with both CorruptRate = 1
// and a delay cap: every surviving packet must be simultaneously
// corrupted and delayed, delays must stay within [0, DelayMax], and the
// counters must agree.
func TestFaultCorruptDelayCombined(t *testing.T) {
	const n = 500
	max := 40 * sim.Nanosecond
	in := NewInjector(Plan{
		Seed:  7,
		Rules: []Rule{{CorruptRate: 1, DelayMax: max}},
	})
	delayed := 0
	for i := 0; i < n; i++ {
		drop, corrupt, delay := in.Judge(sim.Time(i), 64)
		if drop {
			t.Fatalf("packet %d dropped with DropRate 0", i)
		}
		if !corrupt {
			t.Fatalf("packet %d not corrupted with CorruptRate 1", i)
		}
		if delay < 0 || delay >= max {
			t.Fatalf("packet %d delay %v outside [0, %v)", i, delay, max)
		}
		if delay > 0 {
			delayed++
		}
	}
	st := in.Stats()
	if st.Corrupted != n {
		t.Fatalf("corrupted %d of %d", st.Corrupted, n)
	}
	if st.Delayed != uint64(delayed) || delayed == 0 {
		t.Fatalf("delayed counter %d, counted %d (want nonzero and equal)", st.Delayed, delayed)
	}
}

// TestFaultStackedRules layers two windowed rules so a packet inside the
// overlap consults both: the larger of the two delay draws wins, and a
// corrupt verdict from either rule sticks.
func TestFaultStackedRules(t *testing.T) {
	in := NewInjector(Plan{
		Seed: 11,
		Rules: []Rule{
			{Window: Window{Start: 0, End: 1000}, DelayMax: 10 * sim.Nanosecond},
			{Window: Window{Start: 500}, CorruptRate: 1, DelayMax: 80 * sim.Nanosecond},
		},
	})
	// Inside the first rule only: never corrupted.
	for i := 0; i < 50; i++ {
		if _, corrupt, _ := in.Judge(sim.Time(i), 64); corrupt {
			t.Fatalf("packet %d corrupted outside the corrupting rule's window", i)
		}
	}
	// Inside both: always corrupted (second rule), delay bounded by the
	// larger cap.
	for i := 0; i < 50; i++ {
		at := sim.Time(600 + i)
		_, corrupt, delay := in.Judge(at, 64)
		if !corrupt {
			t.Fatalf("packet at %v not corrupted inside the corrupting window", at)
		}
		if delay >= 80*sim.Nanosecond {
			t.Fatalf("packet at %v delay %v exceeds the larger cap", at, delay)
		}
	}
}

// TestFaultVerdictDeterminism replays one mixed plan through two fresh
// injectors and requires verdict-for-verdict equality, and checks that a
// different seed changes at least one verdict while scripted decisions
// (blackouts, Nth-packet drops) stay fixed.
func TestFaultVerdictDeterminism(t *testing.T) {
	plan := func(seed uint64) Plan {
		return Plan{
			Seed:        seed,
			Rules:       []Rule{{DropRate: 0.2, CorruptRate: 0.2, DelayMax: 25 * sim.Nanosecond}},
			DropPackets: map[uint64]bool{13: true, 14: true},
			Blackouts:   []Window{{Start: 300, End: 360}},
		}
	}
	type verdict struct {
		drop, corrupt bool
		delay         sim.Duration
	}
	run := func(p Plan) []verdict {
		in := NewInjector(p)
		out := make([]verdict, 600)
		for i := range out {
			d, c, x := in.Judge(sim.Time(i), 64)
			out[i] = verdict{d, c, x}
		}
		return out
	}
	a, b := run(plan(99)), run(plan(99))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d diverged under one seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(plan(100))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("600 verdicts identical across different seeds")
	}
	for _, v := range []struct {
		name string
		got  []verdict
	}{{"seed 99", a}, {"seed 100", c}} {
		if !v.got[13].drop || !v.got[14].drop {
			t.Fatalf("%s: scripted Nth-packet drops did not fire", v.name)
		}
		for at := 300; at < 360; at++ {
			if !v.got[at].drop {
				t.Fatalf("%s: packet at %d survived the blackout", v.name, at)
			}
		}
	}
}
