// Package wire models the cable between two NICs: a full-duplex link with
// serialization bandwidth and propagation/switch latency per direction.
package wire

import "putget/internal/sim"

// Link is one direction of a cable. Packets serialize FIFO at the link
// rate, fly for the fixed latency, and land in the receiver's inbox.
type Link[T any] struct {
	e       *sim.Engine
	latency sim.Duration
	srv     *sim.Server
	inbox   *sim.Chan[T]
}

// NewLink creates one direction with the given bandwidth (bytes/second)
// and one-way latency.
func NewLink[T any](e *sim.Engine, bytesPerSecond float64, latency sim.Duration) *Link[T] {
	return &Link[T]{
		e:       e,
		latency: latency,
		srv:     sim.NewServer(e, bytesPerSecond),
		inbox:   sim.NewChan[T](e),
	}
}

// NewDuplex creates both directions of a cable with symmetric parameters.
func NewDuplex[T any](e *sim.Engine, bytesPerSecond float64, latency sim.Duration) (ab, ba *Link[T]) {
	return NewLink[T](e, bytesPerSecond, latency), NewLink[T](e, bytesPerSecond, latency)
}

// Send transmits pkt occupying wireBytes of link time; delivery into the
// receiver inbox happens after serialization plus latency. The sender does
// not block (NIC egress queues are modelled as unbounded).
func (l *Link[T]) Send(pkt T, wireBytes int) sim.Time {
	sent := l.srv.Reserve(wireBytes)
	deliver := sent.Add(l.latency)
	l.e.At(deliver, func() { l.inbox.Send(pkt) })
	return deliver
}

// SendAfter transmits pkt like Send but delays delivery until at least
// `ready` plus the link latency — used by cut-through senders whose
// upstream stage (a DMA read) finishes at `ready` while the wire
// serializes concurrently.
func (l *Link[T]) SendAfter(pkt T, wireBytes int, ready sim.Time) sim.Time {
	sent := l.srv.Reserve(wireBytes)
	if ready > sent {
		sent = ready
	}
	deliver := sent.Add(l.latency)
	l.e.At(deliver, func() { l.inbox.Send(pkt) })
	return deliver
}

// Recv blocks p until a packet arrives, FIFO.
func (l *Link[T]) Recv(p *sim.Proc) T { return l.inbox.Recv(p) }

// Pending reports packets delivered but not yet consumed.
func (l *Link[T]) Pending() int { return l.inbox.Len() }

// Utilization returns accumulated serialization time.
func (l *Link[T]) Utilization() sim.Duration { return l.srv.BusyTotal() }
