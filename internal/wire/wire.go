// Package wire models the cable between two NICs: a full-duplex link with
// serialization bandwidth and propagation/switch latency per direction,
// plus hooks for deterministic fault injection and a bounded egress queue.
//
// Drop accounting distinguishes two loss points with different physics:
//
//   - Tail drops (SetDepthCap) happen at the egress queue, before the
//     packet ever touches the wire: no serialization time is reserved and
//     Utilization() is unaffected.
//   - Injector drops (SetFaults) model physical in-flight loss — a CRC
//     hit, a marginal lane, a pulled cable. The packet fully serialized
//     onto the wire before it was lost, so its serialization time is
//     spent and counted in Utilization()/busy_us by design; only the
//     delivery is suppressed.
package wire

import "putget/internal/sim"

// Faults decides the fate of packets entering the wire. Implemented by
// faults.Injector; kept as a local interface so wire does not depend on
// the injection package.
type Faults interface {
	// Judge is called once per packet with the serialization-complete time
	// and on-wire size; it may drop the packet, poison its payload, or add
	// extra delivery delay. A drop verdict models loss in flight: the
	// packet has already occupied the link for its serialization window
	// (unlike a tail drop, which never reaches the wire).
	Judge(at sim.Time, wireBytes int) (drop, corrupt bool, extraDelay sim.Duration)
}

// Conduit is the transmit/receive contract NICs program against. It is
// satisfied by *Link (a direct point-to-point cable) and by topology
// ports that route packets across multi-hop switched fabrics. For
// multi-hop implementations the returned deliver time is the time the
// packet enters the fabric (a lower bound on arrival), exact only for a
// single-hop link; ok=false means the packet was dropped (depth cap,
// fault injector, or no route) and the time is not a delivery time.
type Conduit[T any] interface {
	Send(pkt T, wireBytes int) (deliver sim.Time, ok bool)
	SendAfter(pkt T, wireBytes int, ready sim.Time) (deliver sim.Time, ok bool)
	Recv(p *sim.Proc) T
	Pending() int
	Name() string
}

// Link is one direction of a cable. Packets serialize FIFO at the link
// rate, fly for the fixed latency, and land in the receiver's inbox.
type Link[T any] struct {
	e       *sim.Engine
	name    string
	latency sim.Duration
	srv     *sim.Server
	inbox   *sim.Chan[T]

	faults    Faults
	corrupter func(T) T

	// Egress queue accounting: packets scheduled but not yet delivered.
	// depthCap == 0 leaves the queue unbounded (the seed behaviour).
	depthCap      int
	inFlight      int
	inFlightBytes int
	maxDepth      int
	dropped       uint64
}

// NewLink creates one direction with the given bandwidth (bytes/second)
// and one-way latency.
func NewLink[T any](e *sim.Engine, bytesPerSecond float64, latency sim.Duration) *Link[T] {
	return &Link[T]{
		e:       e,
		latency: latency,
		srv:     sim.NewServer(e, bytesPerSecond),
		inbox:   sim.NewChan[T](e),
	}
}

// NewDuplex creates both directions of a cable with symmetric parameters.
func NewDuplex[T any](e *sim.Engine, bytesPerSecond float64, latency sim.Duration) (ab, ba *Link[T]) {
	return NewLink[T](e, bytesPerSecond, latency), NewLink[T](e, bytesPerSecond, latency)
}

// SetName labels this direction for structured traces, spans and metric
// series ("a.rma.wire"). Unnamed links report as "wire".
func (l *Link[T]) SetName(name string) { l.name = name }

// Name returns the label set by SetName, or "wire".
func (l *Link[T]) Name() string {
	if l.name == "" {
		return "wire"
	}
	return l.name
}

// SetFaults installs a fault injector on this direction. corrupter marks a
// packet's payload as damaged (e.g. sets a Poisoned flag the receiver's
// CRC check trips on); nil disables corruption even if the injector asks
// for it.
func (l *Link[T]) SetFaults(f Faults, corrupter func(T) T) {
	l.faults = f
	l.corrupter = corrupter
}

// SetDepthCap bounds the egress queue to n scheduled-but-undelivered
// packets; packets beyond the cap are tail-dropped and counted. 0 restores
// the unbounded seed behaviour.
func (l *Link[T]) SetDepthCap(n int) { l.depthCap = n }

// Dropped reports packets lost to the depth cap or the fault injector.
func (l *Link[T]) Dropped() uint64 { return l.dropped }

// MaxDepth reports the deepest egress queue observed.
func (l *Link[T]) MaxDepth() int { return l.maxDepth }

// tailDrop applies the depth cap before any serialization time is
// reserved: a tail-dropped packet never entered the egress queue, so it
// must not occupy the link (reserving first would inflate Utilization()
// and starve live packets behind phantom ones).
func (l *Link[T]) tailDrop(wireBytes int) bool {
	if l.depthCap <= 0 || l.inFlight < l.depthCap {
		return false
	}
	l.dropped++
	if l.e.Traced() {
		l.e.Tracev(l.Name(), "fault", "fault: wire tail-drop (%dB, depth %d)", wireBytes, l.inFlight)
	}
	return true
}

// post applies the fault verdicts, then schedules delivery. ok reports
// whether the packet was actually scheduled (false: injector drop). The
// incoming sent is the serialization-complete time; an injector drop at
// this point is loss in flight, after the link time was already spent —
// see the package comment for the tail-drop contrast.
func (l *Link[T]) post(pkt T, wireBytes int, sent sim.Time) (deliver sim.Time, ok bool) {
	// Serialization finished at sent; fault extraDelay below postpones
	// only the flight, so the xmit span's serialization window must be
	// back-computed from this pre-delay instant.
	serDone := sent
	if l.faults != nil {
		drop, corrupt, extra := l.faults.Judge(sent, wireBytes)
		if drop {
			l.dropped++
			if l.e.Traced() {
				l.e.Tracev(l.Name(), "fault", "fault: wire drop (%dB at %v)", wireBytes, sent)
			}
			return sent, false
		}
		if corrupt && l.corrupter != nil {
			pkt = l.corrupter(pkt)
			if l.e.Traced() {
				l.e.Tracev(l.Name(), "fault", "fault: wire corrupt (%dB at %v)", wireBytes, sent)
			}
		}
		sent = sent.Add(extra)
	}
	l.inFlight++
	if l.inFlight > l.maxDepth {
		l.maxDepth = l.inFlight
	}
	l.inFlightBytes += wireBytes
	deliver = sent.Add(l.latency)
	if l.e.Observing() {
		// The xmit span covers this packet's own serialization window plus
		// its flight: start when its bytes begin occupying the link (which
		// may be in the future under cut-through or behind queued packets),
		// end at delivery.
		start := serDone.Add(-sim.BytesAt(wireBytes, l.srv.Rate()))
		if now := l.e.Now(); start < now {
			start = now
		}
		id := l.e.SpanOpenAt(start, l.Name(), "xmit",
			sim.Attr{Key: "bytes", Val: int64(wireBytes)})
		l.e.SpanCloseAt(id, deliver)
		l.e.Metric(l.Name(), "depth", float64(l.inFlight))
		l.e.Metric(l.Name(), "inflight_bytes", float64(l.inFlightBytes))
		l.e.Metric(l.Name(), "busy_us", l.srv.BusyTotal().Microseconds())
	}
	l.e.At(deliver, func() {
		l.inFlight--
		l.inFlightBytes -= wireBytes
		if l.e.Observing() {
			l.e.Metric(l.Name(), "depth", float64(l.inFlight))
			l.e.Metric(l.Name(), "inflight_bytes", float64(l.inFlightBytes))
		}
		l.inbox.Send(pkt)
	})
	return deliver, true
}

// Send transmits pkt occupying wireBytes of link time; delivery into the
// receiver inbox happens after serialization plus latency. The sender does
// not block (NIC egress queues are unbounded unless SetDepthCap was
// called). ok reports whether the packet was scheduled for delivery;
// dropped packets (depth cap, fault injector) return ok=false, and the
// returned time is then not a delivery time. Tail-dropped packets consume
// no link serialization time; injector-dropped packets do (physical loss
// in flight happens after the bytes crossed the transmitter — see the
// package comment).
func (l *Link[T]) Send(pkt T, wireBytes int) (deliver sim.Time, ok bool) {
	if l.tailDrop(wireBytes) {
		return l.e.Now(), false
	}
	return l.post(pkt, wireBytes, l.srv.Reserve(wireBytes))
}

// SendAfter transmits pkt like Send but delays delivery until at least
// `ready` plus the link latency — used by cut-through senders whose
// upstream stage (a DMA read) finishes at `ready` while the wire
// serializes concurrently. Drop semantics match Send.
func (l *Link[T]) SendAfter(pkt T, wireBytes int, ready sim.Time) (deliver sim.Time, ok bool) {
	if l.tailDrop(wireBytes) {
		return l.e.Now(), false
	}
	sent := l.srv.Reserve(wireBytes)
	if ready > sent {
		sent = ready
	}
	return l.post(pkt, wireBytes, sent)
}

// Recv blocks p until a packet arrives, FIFO.
func (l *Link[T]) Recv(p *sim.Proc) T { return l.inbox.Recv(p) }

// Pending reports packets delivered but not yet consumed.
func (l *Link[T]) Pending() int { return l.inbox.Len() }

// Utilization returns accumulated serialization time.
func (l *Link[T]) Utilization() sim.Duration { return l.srv.BusyTotal() }
