package wire

import (
	"testing"

	"putget/internal/sim"
)

func TestLinkLatencyAndOrder(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink[int](e, 1e9, 450*sim.Nanosecond)
	var got []int
	var times []sim.Time
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, l.Recv(p))
			times = append(times, p.Now())
		}
	})
	e.At(0, func() {
		l.Send(1, 1000) // 1us serialize + 450ns
		l.Send(2, 1000)
		l.Send(3, 1000)
	})
	e.Run()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order %v", got)
		}
	}
	want := []sim.Time{1450_000, 2450_000, 3450_000}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("delivery times %v, want %v", times, want)
		}
	}
}

func TestDuplexIndependentDirections(t *testing.T) {
	e := sim.NewEngine()
	ab, ba := NewDuplex[string](e, 1e9, 100*sim.Nanosecond)
	var aGot, bGot string
	var aAt, bAt sim.Time
	e.Spawn("a", func(p *sim.Proc) {
		aGot = ba.Recv(p)
		aAt = p.Now()
	})
	e.Spawn("b", func(p *sim.Proc) {
		bGot = ab.Recv(p)
		bAt = p.Now()
	})
	e.At(0, func() {
		ab.Send("toB", 1000)
		ba.Send("toA", 1000)
	})
	e.Run()
	if aGot != "toA" || bGot != "toB" {
		t.Fatalf("payloads %q %q", aGot, bGot)
	}
	// Full duplex: both arrive at the same time, no cross-serialization.
	if aAt != bAt {
		t.Fatalf("duplex serialized: %v vs %v", aAt, bAt)
	}
}

func TestUtilizationAccumulates(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink[int](e, 1e9, 0)
	e.At(0, func() {
		l.Send(1, 500)
		l.Send(2, 500)
	})
	e.Run()
	if l.Utilization() != sim.Microsecond {
		t.Fatalf("utilization = %v, want 1us", l.Utilization())
	}
}

func TestSendAfterDelaysDelivery(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink[int](e, 1e9, 100*sim.Nanosecond)
	var at sim.Time
	e.Spawn("rx", func(p *sim.Proc) {
		l.Recv(p)
		at = p.Now()
	})
	e.At(0, func() {
		// Serialization would finish at 1us, but the upstream stage is
		// only ready at 5us: delivery = 5us + latency.
		l.SendAfter(1, 1000, sim.Time(5*sim.Microsecond))
	})
	e.Run()
	want := sim.Time(5*sim.Microsecond + 100*1000)
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestSendAfterPastReadyUsesSerialization(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink[int](e, 1e9, 0)
	var at sim.Time
	e.Spawn("rx", func(p *sim.Proc) {
		l.Recv(p)
		at = p.Now()
	})
	e.At(0, func() {
		l.SendAfter(1, 2000, 0) // ready immediately: 2us serialization rules
	})
	e.Run()
	if at != sim.Time(2*sim.Microsecond) {
		t.Fatalf("delivery at %v, want 2us", at)
	}
}

// dropAll drops every packet; dropNone passes everything through.
type verdictFaults struct {
	drop, corrupt bool
	delay         sim.Duration
}

func (v verdictFaults) Judge(at sim.Time, wireBytes int) (bool, bool, sim.Duration) {
	return v.drop, v.corrupt, v.delay
}

func TestFaultLinkDropLosesPacket(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink[int](e, 1e9, 0)
	l.SetFaults(verdictFaults{drop: true}, nil)
	got := 0
	e.Spawn("rx", func(p *sim.Proc) {
		l.Recv(p)
		got++
	})
	e.At(0, func() { l.Send(1, 100) })
	e.Run()
	if got != 0 {
		t.Fatalf("dropped packet was delivered")
	}
	if l.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", l.Dropped())
	}
}

func TestFaultLinkCorruptAndDelay(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink[int](e, 1e9, 0)
	l.SetFaults(verdictFaults{corrupt: true, delay: 500 * sim.Nanosecond},
		func(v int) int { return -v })
	var got int
	var at sim.Time
	e.Spawn("rx", func(p *sim.Proc) {
		got = l.Recv(p)
		at = p.Now()
	})
	e.At(0, func() { l.Send(7, 1000) }) // serializes in 1us
	e.Run()
	if got != -7 {
		t.Fatalf("corrupter not applied: got %d", got)
	}
	if want := sim.Time(1*sim.Microsecond + 500*sim.Nanosecond); at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

// Tail-dropped packets never entered the egress queue, so they must not
// consume link serialization time: utilization reflects live packets only.
func TestTailDropDoesNotInflateUtilization(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink[int](e, 1e9, sim.Millisecond)
	l.SetDepthCap(2)
	e.At(0, func() {
		for i := 0; i < 10; i++ {
			l.Send(i, 1000) // 1us serialization each; 8 of 10 tail-dropped
		}
	})
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			l.Recv(p)
		}
	})
	e.Run()
	if got, want := l.Utilization(), 2*sim.Microsecond; got != want {
		t.Fatalf("Utilization = %v, want %v (tail-drops must not serialize)", got, want)
	}
	if l.Dropped() != 8 {
		t.Fatalf("Dropped = %d, want 8", l.Dropped())
	}
}

// Send's return value must distinguish a drop from a delivery time.
func TestSendReportsDropDistinctly(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink[int](e, 1e9, 100*sim.Nanosecond)
	l.SetDepthCap(1)
	var okFirst, okSecond bool
	var tFirst sim.Time
	e.At(0, func() {
		tFirst, okFirst = l.Send(1, 1000)
		_, okSecond = l.Send(2, 1000)
	})
	e.Spawn("rx", func(p *sim.Proc) { l.Recv(p) })
	e.Run()
	if !okFirst || tFirst != sim.Time(1*sim.Microsecond+100*sim.Nanosecond) {
		t.Fatalf("first send: ok=%v deliver=%v", okFirst, tFirst)
	}
	if okSecond {
		t.Fatal("tail-dropped send reported ok=true")
	}

	// Injector drops report ok=false too.
	e2 := sim.NewEngine()
	l2 := NewLink[int](e2, 1e9, 0)
	l2.SetFaults(verdictFaults{drop: true}, nil)
	var ok bool
	e2.At(0, func() { _, ok = l2.Send(1, 100) })
	e2.Run()
	if ok {
		t.Fatal("injector-dropped send reported ok=true")
	}
}

// Injector drops model physical in-flight loss: the packet serialized
// onto the wire before it was lost, so its serialization time is spent —
// Utilization counts it and later packets queue behind it. (Contrast
// TestTailDropDoesNotInflateUtilization: tail drops never touch the wire.)
func TestInjectorDropConsumesSerialization(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink[int](e, 1e9, 100*sim.Nanosecond)
	l.SetFaults(verdictFaults{drop: true}, nil)
	var at sim.Time
	e.Spawn("rx", func(p *sim.Proc) {
		l.Recv(p)
		at = p.Now()
	})
	e.At(0, func() {
		l.Send(1, 1000) // serializes 0..1us, then lost in flight
		l.SetFaults(nil, nil)
		l.Send(2, 1000) // queues behind the lost packet: 1us..2us
	})
	e.Run()
	if got, want := l.Utilization(), 2*sim.Microsecond; got != want {
		t.Fatalf("Utilization = %v, want %v (injector drop must consume link time)", got, want)
	}
	if want := sim.Time(2*sim.Microsecond + 100*sim.Nanosecond); at != want {
		t.Fatalf("survivor delivered at %v, want %v", at, want)
	}
	if l.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", l.Dropped())
	}
}

// spanCap records the observability stream for span-placement assertions.
type spanCap struct {
	opens  map[sim.SpanID]sim.Time
	kinds  map[sim.SpanID]string
	closes map[sim.SpanID]sim.Time
}

func newSpanCap() *spanCap {
	return &spanCap{
		opens:  map[sim.SpanID]sim.Time{},
		kinds:  map[sim.SpanID]string{},
		closes: map[sim.SpanID]sim.Time{},
	}
}

func (s *spanCap) SpanOpen(id sim.SpanID, at sim.Time, comp, kind string, attrs []sim.Attr) {
	s.opens[id] = at
	s.kinds[id] = kind
}
func (s *spanCap) SpanClose(id sim.SpanID, at sim.Time)                     { s.closes[id] = at }
func (s *spanCap) MetricSample(at sim.Time, comp, name string, val float64) {}
func (s *spanCap) Shutdown(at sim.Time)                                     {}

// The xmit span's serialization window must be anchored at the
// pre-fault-delay serialization-complete time: extraDelay postpones only
// the flight, not when the bytes occupied the transmitter. A 500ns fault
// delay on a 1us serialization must keep the span start at 0, not shift
// the whole window right by 500ns.
func TestXmitSpanWindowUnderExtraDelay(t *testing.T) {
	e := sim.NewEngine()
	cap := newSpanCap()
	e.SetObserver(cap)
	l := NewLink[int](e, 1e9, 100*sim.Nanosecond)
	l.SetFaults(verdictFaults{delay: 500 * sim.Nanosecond}, nil)
	e.Spawn("rx", func(p *sim.Proc) { l.Recv(p) })
	e.At(0, func() { l.Send(1, 1000) }) // serializes 0..1us, +500ns fault delay, +100ns flight
	e.Run()
	var found bool
	for id, kind := range cap.kinds {
		if kind != "xmit" {
			continue
		}
		found = true
		if got := cap.opens[id]; got != 0 {
			t.Fatalf("xmit span start = %v, want 0 (serialization began at 0)", got)
		}
		if got, want := cap.closes[id], sim.Time(1600*sim.Nanosecond); got != want {
			t.Fatalf("xmit span close = %v, want %v (delayed delivery)", got, want)
		}
	}
	if !found {
		t.Fatal("no xmit span recorded")
	}
}

func TestFaultDepthCapTailDrop(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink[int](e, 1e9, sim.Millisecond) // long flight: all in-flight at once
	l.SetDepthCap(2)
	got := 0
	e.Spawn("rx", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			l.Recv(p)
			got++
		}
	})
	e.At(0, func() {
		for i := 0; i < 5; i++ {
			l.Send(i, 10)
		}
	})
	e.Run()
	if got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
	if l.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", l.Dropped())
	}
	if l.MaxDepth() != 2 {
		t.Fatalf("MaxDepth() = %d, want 2", l.MaxDepth())
	}
}
