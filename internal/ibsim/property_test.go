package ibsim

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: WQE encode/decode round-trips all non-inline field values.
func TestWQERoundTripProperty(t *testing.T) {
	f := func(op uint8, flags uint8, wrid, laddr, raddr uint64, lkey, rkey, imm uint32, length uint16) bool {
		in := WQE{
			Opcode: int(op%3) + 1,
			Flags:  int(flags) & FlagSignaled, // keep FlagInline clear
			WRID:   wrid,
			LAddr:  laddr,
			LKey:   lkey,
			Length: int(length),
			RAddr:  raddr,
			RKey:   rkey,
			Imm:    imm,
		}
		buf := make([]byte, WQEBytes)
		EncodeWQE(in, buf)
		out, err := DecodeWQE(buf)
		if err != nil {
			return false
		}
		return out.Opcode == in.Opcode && out.Flags == in.Flags && out.WRID == in.WRID &&
			out.LAddr == in.LAddr && out.LKey == in.LKey && out.Length == in.Length &&
			out.RAddr == in.RAddr && out.RKey == in.RKey && out.Imm == in.Imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: inline WQEs carry arbitrary payloads ≤ InlineMax unchanged.
func TestInlineWQEProperty(t *testing.T) {
	f := func(payload []byte, raddr uint64, rkey uint32) bool {
		if len(payload) > InlineMax {
			payload = payload[:InlineMax]
		}
		in := WQE{
			Opcode: OpRDMAWrite, Flags: FlagInline,
			Length: len(payload), Inline: payload,
			RAddr: raddr, RKey: rkey,
		}
		buf := make([]byte, WQEBytes)
		EncodeWQE(in, buf)
		out, err := DecodeWQE(buf)
		if err != nil {
			return false
		}
		return bytes.Equal(out.Inline, payload) && out.RAddr == raddr && out.RKey == rkey
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CQE encode/decode round-trips and the valid-word test agrees
// with the Valid flag.
func TestCQERoundTripProperty(t *testing.T) {
	f := func(op uint8, wrid uint64, length, imm, qpn uint32, status uint8) bool {
		in := CQE{
			Valid:   true,
			Opcode:  int(op%4) + 1,
			WRID:    wrid,
			ByteLen: int(length),
			Imm:     imm,
			QPN:     qpn,
			Status:  int(status % 2),
		}
		buf := make([]byte, CQEBytes)
		EncodeCQE(in, buf)
		out := DecodeCQE(buf)
		if out != in {
			return false
		}
		// The 64-bit fast-path probe must see a valid entry.
		var first8 uint64
		for i := 7; i >= 0; i-- {
			first8 = first8<<8 | uint64(buf[i])
		}
		return CQEValidWord(first8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a zeroed CQE slot never reads as valid.
func TestZeroCQEInvalid(t *testing.T) {
	buf := make([]byte, CQEBytes)
	if DecodeCQE(buf).Valid {
		t.Fatal("zero CQE decodes valid")
	}
	if CQEValidWord(0) {
		t.Fatal("zero word passes the fast-path probe")
	}
}

// Property: MR Contains accepts exactly the registered range.
func TestMRContainsProperty(t *testing.T) {
	mr := &MR{Base: 0x1000, Size: 4096, LKey: 1, RKey: 2}
	f := func(addr uint32, n uint16) bool {
		a := uint64(addr)
		length := int(n)
		want := a >= 0x1000 && a+uint64(length) <= 0x1000+4096
		return mr.Contains(a, length) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: recv WQE round-trips.
func TestRecvWQERoundTripProperty(t *testing.T) {
	f := func(wrid, addr uint64, lkey uint32) bool {
		in := RecvWQE{WRID: wrid, Addr: addr, LKey: lkey}
		buf := make([]byte, RecvWQEBytes)
		EncodeRecvWQE(in, buf)
		out, err := DecodeRecvWQE(buf)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
