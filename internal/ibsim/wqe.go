// Package ibsim models a Mellanox-class InfiniBand HCA at the level the
// Verbs API exposes: queue pairs backed by rings in host *or* GPU memory,
// completion queues, a doorbell BAR, big-endian work-queue elements, memory
// registration with lkey/rkey protection, and a reliable, in-order RC
// transport between two adapters.
//
// The two-step issue path (WQE into queue memory, then a doorbell MMIO
// write) and the byte-swapped descriptor format are exactly the properties
// the paper's Infiniband analysis charges against GPU-side control.
package ibsim

import (
	"encoding/binary"
	"fmt"
)

// Opcodes carried in WQEs and packets.
const (
	OpRDMAWrite    = 1 // one-sided remote write
	OpRDMAWriteImm = 2 // remote write + immediate (consumes a recv WQE)
	OpSend         = 3 // two-sided send (consumes a recv WQE for the address)
	OpRDMARead     = 4 // one-sided remote read
	OpAtomicFAdd   = 5 // one-sided 8-byte fetch-and-add; old value lands at LAddr
)

// WQE flags.
const (
	FlagSignaled = 1 << 0 // generate a send-side CQE
	// FlagInline embeds the payload in the WQE itself: the HCA skips the
	// payload DMA read entirely — the latency optimization real HCAs
	// offer for small messages.
	FlagInline = 1 << 1
)

// InlineMax is the maximum inline payload: it reuses the WQE's local
// scatter-gather fields (LAddr + LKey, 12 bytes); the Length field stays.
const InlineMax = 12

// Sizes of the hardware descriptors in queue memory.
const (
	WQEBytes     = 64 // send work-queue element
	RecvWQEBytes = 32 // receive work-queue element
	CQEBytes     = 32 // completion-queue element
)

// WQEOwnerMagic marks a send WQE slot as valid for the hardware; the HCA
// rejects slots that do not carry it (catching doorbells racing ahead of
// descriptor writes).
const WQEOwnerMagic = 0x57514545 // "WQEE"

// WQE is a decoded send work-queue element.
type WQE struct {
	Opcode int
	Flags  int
	WRID   uint64
	LAddr  uint64
	LKey   uint32
	Length int
	RAddr  uint64
	RKey   uint32
	Imm    uint32
	// Add is the OpAtomicFAdd operand; it travels in the descriptor (and
	// the request header on the wire), like real IB's AtomicETH.
	Add uint64
	// Inline carries the payload for FlagInline WQEs (≤ InlineMax bytes);
	// it occupies the local-address fields in the hardware layout.
	Inline []byte
}

// EncodeWQE serializes a WQE into its 64-byte big-endian hardware layout.
// (InfiniBand hardware consumes big-endian descriptors — the conversion
// cost on a little-endian GPU is a key finding of the paper.)
func EncodeWQE(w WQE, buf []byte) {
	if len(buf) < WQEBytes {
		panic("ibsim: WQE buffer too small")
	}
	for i := range buf[:WQEBytes] {
		buf[i] = 0
	}
	binary.BigEndian.PutUint32(buf[0:], uint32(w.Opcode))
	binary.BigEndian.PutUint32(buf[4:], uint32(w.Flags))
	binary.BigEndian.PutUint64(buf[8:], w.WRID)
	if w.Flags&FlagInline != 0 {
		if len(w.Inline) > InlineMax {
			panic("ibsim: inline payload exceeds InlineMax")
		}
		copy(buf[16:28], w.Inline)
		binary.BigEndian.PutUint32(buf[28:], uint32(len(w.Inline)))
	} else {
		binary.BigEndian.PutUint64(buf[16:], w.LAddr)
		binary.BigEndian.PutUint32(buf[24:], w.LKey)
		binary.BigEndian.PutUint32(buf[28:], uint32(w.Length))
	}
	binary.BigEndian.PutUint64(buf[32:], w.RAddr)
	binary.BigEndian.PutUint32(buf[40:], w.RKey)
	binary.BigEndian.PutUint32(buf[44:], w.Imm)
	binary.BigEndian.PutUint32(buf[48:], WQEOwnerMagic)
	binary.BigEndian.PutUint64(buf[52:], w.Add)
}

// DecodeWQE parses the hardware layout back into a WQE, checking the
// owner stamp.
func DecodeWQE(buf []byte) (WQE, error) {
	if len(buf) < WQEBytes {
		return WQE{}, fmt.Errorf("ibsim: short WQE (%d bytes)", len(buf))
	}
	if binary.BigEndian.Uint32(buf[48:]) != WQEOwnerMagic {
		return WQE{}, fmt.Errorf("ibsim: WQE slot not owned by hardware (stale or unstamped)")
	}
	w := WQE{
		Opcode: int(binary.BigEndian.Uint32(buf[0:])),
		Flags:  int(binary.BigEndian.Uint32(buf[4:])),
		WRID:   binary.BigEndian.Uint64(buf[8:]),
		Length: int(binary.BigEndian.Uint32(buf[28:])),
		RAddr:  binary.BigEndian.Uint64(buf[32:]),
		RKey:   binary.BigEndian.Uint32(buf[40:]),
		Imm:    binary.BigEndian.Uint32(buf[44:]),
		Add:    binary.BigEndian.Uint64(buf[52:]),
	}
	if w.Flags&FlagInline != 0 {
		if w.Length > InlineMax {
			return WQE{}, fmt.Errorf("ibsim: inline length %d exceeds maximum", w.Length)
		}
		w.Inline = append([]byte(nil), buf[16:16+w.Length]...)
	} else {
		w.LAddr = binary.BigEndian.Uint64(buf[16:])
		w.LKey = binary.BigEndian.Uint32(buf[24:])
	}
	return w, nil
}

// RecvWQE is a decoded receive work-queue element.
type RecvWQE struct {
	WRID uint64
	Addr uint64
	LKey uint32
}

// EncodeRecvWQE serializes a receive WQE (32 bytes, big endian).
func EncodeRecvWQE(w RecvWQE, buf []byte) {
	if len(buf) < RecvWQEBytes {
		panic("ibsim: recv WQE buffer too small")
	}
	for i := range buf[:RecvWQEBytes] {
		buf[i] = 0
	}
	binary.BigEndian.PutUint64(buf[0:], w.WRID)
	binary.BigEndian.PutUint64(buf[8:], w.Addr)
	binary.BigEndian.PutUint32(buf[16:], w.LKey)
	binary.BigEndian.PutUint32(buf[20:], WQEOwnerMagic)
}

// DecodeRecvWQE parses a receive WQE.
func DecodeRecvWQE(buf []byte) (RecvWQE, error) {
	if len(buf) < RecvWQEBytes {
		return RecvWQE{}, fmt.Errorf("ibsim: short recv WQE")
	}
	if binary.BigEndian.Uint32(buf[20:]) != WQEOwnerMagic {
		return RecvWQE{}, fmt.Errorf("ibsim: recv WQE slot not owned by hardware")
	}
	return RecvWQE{
		WRID: binary.BigEndian.Uint64(buf[0:]),
		Addr: binary.BigEndian.Uint64(buf[8:]),
		LKey: binary.BigEndian.Uint32(buf[16:]),
	}, nil
}

// CQE statuses. Numeric values follow enum ibv_wc_status.
const (
	StatusOK       = 0
	StatusErr      = 1  // generic local error (IBV_WC_LOC_QP_OP_ERR territory)
	StatusFlushErr = 5  // IBV_WC_WR_FLUSH_ERR: WQE flushed on an ERR/RESET QP
	StatusRetryExc = 12 // IBV_WC_RETRY_EXC_ERR: transport retries exhausted
	StatusRnrExc   = 13 // IBV_WC_RNR_RETRY_EXC_ERR: RNR retries exhausted
)

// CQE is a decoded completion-queue element.
type CQE struct {
	Valid   bool
	Opcode  int
	WRID    uint64
	ByteLen int
	Imm     uint32
	QPN     uint32
	Status  int
}

// EncodeCQE serializes a CQE (32 bytes, big endian, valid word first).
func EncodeCQE(c CQE, buf []byte) {
	if len(buf) < CQEBytes {
		panic("ibsim: CQE buffer too small")
	}
	for i := range buf[:CQEBytes] {
		buf[i] = 0
	}
	v := uint32(0)
	if c.Valid {
		v = 1
	}
	binary.BigEndian.PutUint32(buf[0:], v)
	binary.BigEndian.PutUint32(buf[4:], uint32(c.Opcode))
	binary.BigEndian.PutUint64(buf[8:], c.WRID)
	binary.BigEndian.PutUint32(buf[16:], uint32(c.ByteLen))
	binary.BigEndian.PutUint32(buf[20:], c.Imm)
	binary.BigEndian.PutUint32(buf[24:], c.QPN)
	binary.BigEndian.PutUint32(buf[28:], uint32(c.Status))
}

// DecodeCQE parses a CQE.
func DecodeCQE(buf []byte) CQE {
	if len(buf) < CQEBytes {
		panic("ibsim: short CQE")
	}
	return CQE{
		Valid:   binary.BigEndian.Uint32(buf[0:]) == 1,
		Opcode:  int(binary.BigEndian.Uint32(buf[4:])),
		WRID:    binary.BigEndian.Uint64(buf[8:]),
		ByteLen: int(binary.BigEndian.Uint32(buf[16:])),
		Imm:     binary.BigEndian.Uint32(buf[20:]),
		QPN:     binary.BigEndian.Uint32(buf[24:]),
		Status:  int(binary.BigEndian.Uint32(buf[28:])),
	}
}

// CQEValidWord reports whether the first 8 bytes of a CQE slot (as read by
// a 64-bit poll) indicate a valid entry.
func CQEValidWord(first8 uint64) bool {
	// The valid flag is the first big-endian 32-bit word; in the 64-bit
	// little-endian load the GPU performs, it occupies the low word's
	// byte-swapped form. Checking any nonzero first word is what the
	// real polling fast path does.
	return first8 != 0
}
