package ibsim

import (
	"bytes"
	"fmt"
	"testing"

	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
	"putget/internal/wire"
)

type node struct {
	f    *pcie.Fabric
	hca  *HCA
	cpu  *pcie.Endpoint
	host memspace.Region
}

type rig struct {
	e    *sim.Engine
	a, b *node
}

func hcaConfig(name string) Config {
	return Config{
		Name:          name,
		BARBase:       0x3000_0000,
		WQEFetchBatch: 8,
		ProcessTime:   100 * sim.Nanosecond,
		RxProcessTime: 100 * sim.Nanosecond,
		DMAContexts:   16,
		PCIe: pcie.EndpointConfig{
			EgressRate: 6e9, OneWay: 150 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond,
		},
	}
}

func newNode(e *sim.Engine, name string) *node {
	space := memspace.NewSpace()
	host := space.MustMap(0, memspace.NewRAM(name+".host", 4<<20))
	f := pcie.NewFabric(e, space)
	hostEP := f.AddEndpoint(name+".hostmem", pcie.EndpointConfig{
		EgressRate: 8e9, OneWay: 100 * sim.Nanosecond, ReadLatency: 150 * sim.Nanosecond,
	})
	f.ClaimRAM(hostEP, host)
	cpu := f.AddEndpoint(name+".cpu", pcie.EndpointConfig{
		EgressRate: 16e9, OneWay: 100 * sim.Nanosecond, ReadLatency: 100 * sim.Nanosecond,
	})
	hca := New(e, f, hcaConfig(name+".hca"))
	return &node{f: f, hca: hca, cpu: cpu, host: host}
}

// queue memory layout inside host RAM for tests.
const (
	sqBase   = 0x10_0000
	rqBase   = 0x11_0000
	sendCQAt = 0x12_0000
	recvCQAt = 0x13_0000
	dataAt   = 0x20_0000
)

func newRig(t *testing.T) (*rig, *QP, *QP) {
	t.Helper()
	e := sim.NewEngine()
	a := newNode(e, "a")
	b := newNode(e, "b")
	ab, ba := wire.NewDuplex[Packet](e, 6.8e9, 450*sim.Nanosecond)
	a.hca.AttachWire(ab, ba)
	b.hca.AttachWire(ba, ab)
	qa := a.hca.CreateQP(sqBase, 64, rqBase, 64, a.hca.CreateCQ(sendCQAt, 64), a.hca.CreateCQ(recvCQAt, 64))
	qb := b.hca.CreateQP(sqBase, 64, rqBase, 64, b.hca.CreateCQ(sendCQAt, 64), b.hca.CreateCQ(recvCQAt, 64))
	ConnectQPs(qa, qb)
	return &rig{e: e, a: a, b: b}, qa, qb
}

// postSend writes a WQE into the SQ ring (zero-time, host-driver style)
// and rings the doorbell from the CPU endpoint.
func postSend(t *testing.T, n *node, qp *QP, idx int, w WQE) {
	t.Helper()
	buf := make([]byte, WQEBytes)
	EncodeWQE(w, buf)
	if err := n.f.Space().Write(qp.SQSlotAddr(idx), buf); err != nil {
		t.Fatal(err)
	}
	db := make([]byte, 8)
	v := uint64(qp.QPN)<<32 | uint64(idx+1)
	for i := 0; i < 8; i++ {
		db[i] = byte(v >> (8 * uint(i)))
	}
	n.f.PostedWrite(n.cpu, n.hca.DoorbellSQAddr(), db)
}

func postRecv(t *testing.T, n *node, qp *QP, idx int, w RecvWQE) {
	t.Helper()
	buf := make([]byte, RecvWQEBytes)
	EncodeRecvWQE(w, buf)
	if err := n.f.Space().Write(qp.RQSlotAddr(idx), buf); err != nil {
		t.Fatal(err)
	}
	db := make([]byte, 8)
	v := uint64(qp.QPN)<<32 | uint64(idx+1) | 0
	for i := 0; i < 8; i++ {
		db[i] = byte(v >> (8 * uint(i)))
	}
	n.f.PostedWrite(n.cpu, n.hca.DoorbellRQAddr(), db)
}

func TestWQEEncodeDecodeRoundTrip(t *testing.T) {
	in := WQE{Opcode: OpRDMAWrite, Flags: FlagSignaled, WRID: 42, LAddr: 0x1000,
		LKey: 7, Length: 512, RAddr: 0x2000, RKey: 9, Imm: 0xbeef}
	buf := make([]byte, WQEBytes)
	EncodeWQE(in, buf)
	out, err := DecodeWQE(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Opcode != in.Opcode || out.Flags != in.Flags || out.WRID != in.WRID ||
		out.LAddr != in.LAddr || out.LKey != in.LKey || out.Length != in.Length ||
		out.RAddr != in.RAddr || out.RKey != in.RKey || out.Imm != in.Imm {
		t.Fatalf("%+v != %+v", out, in)
	}
}

func TestWQEUnstampedRejected(t *testing.T) {
	buf := make([]byte, WQEBytes)
	if _, err := DecodeWQE(buf); err == nil {
		t.Fatal("unstamped WQE accepted")
	}
}

func TestCQEEncodeDecodeRoundTrip(t *testing.T) {
	in := CQE{Valid: true, Opcode: OpSend, WRID: 99, ByteLen: 64, Imm: 5, QPN: 3, Status: StatusOK}
	buf := make([]byte, CQEBytes)
	EncodeCQE(in, buf)
	out := DecodeCQE(buf)
	if out != in {
		t.Fatalf("%+v != %+v", out, in)
	}
}

func TestRDMAWriteMovesData(t *testing.T) {
	r, qa, _ := newRig(t)
	srcMR := r.a.hca.RegMR(dataAt, 64<<10)
	dstMR := r.b.hca.RegMR(dataAt, 64<<10)
	payload := make([]byte, 2048)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if err := r.a.f.Space().Write(dataAt, payload); err != nil {
		t.Fatal(err)
	}
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpRDMAWrite, Flags: FlagSignaled, WRID: 1,
		LAddr: dataAt, LKey: srcMR.LKey, Length: len(payload),
		RAddr: dataAt, RKey: dstMR.RKey,
	})
	r.e.Run()
	got := make([]byte, len(payload))
	if err := r.b.f.Space().Read(dataAt, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
	// Signaled: send CQE at A.
	cqeBuf := make([]byte, CQEBytes)
	if err := r.a.f.Space().Read(qa.SendCQ.EntryAddr(0), cqeBuf); err != nil {
		t.Fatal(err)
	}
	cqe := DecodeCQE(cqeBuf)
	if !cqe.Valid || cqe.WRID != 1 || cqe.Status != StatusOK {
		t.Fatalf("send CQE = %+v", cqe)
	}
}

func TestUnsignaledWriteNoCQE(t *testing.T) {
	r, qa, _ := newRig(t)
	srcMR := r.a.hca.RegMR(dataAt, 4096)
	dstMR := r.b.hca.RegMR(dataAt, 4096)
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpRDMAWrite, WRID: 1, LAddr: dataAt, LKey: srcMR.LKey,
		Length: 64, RAddr: dataAt, RKey: dstMR.RKey,
	})
	r.e.Run()
	if r.a.hca.Stats().CQEsWritten != 0 {
		t.Fatal("unsignaled write produced a CQE")
	}
	if r.b.hca.Stats().PacketsRx != 1 {
		t.Fatal("packet not received")
	}
}

func TestWriteWithImmediateCompletesReceiver(t *testing.T) {
	r, qa, qb := newRig(t)
	srcMR := r.a.hca.RegMR(dataAt, 4096)
	dstMR := r.b.hca.RegMR(dataAt, 4096)
	// Receive WQE with zero address — legal for write-with-imm.
	postRecv(t, r.b, qb, 0, RecvWQE{WRID: 77})
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpRDMAWriteImm, Flags: FlagSignaled, WRID: 2, Imm: 0xfeed,
		LAddr: dataAt, LKey: srcMR.LKey, Length: 256, RAddr: dataAt, RKey: dstMR.RKey,
	})
	r.e.Run()
	cqeBuf := make([]byte, CQEBytes)
	if err := r.b.f.Space().Read(qb.RecvCQ.EntryAddr(0), cqeBuf); err != nil {
		t.Fatal(err)
	}
	cqe := DecodeCQE(cqeBuf)
	if !cqe.Valid || cqe.WRID != 77 || cqe.Imm != 0xfeed || cqe.ByteLen != 256 {
		t.Fatalf("recv CQE = %+v", cqe)
	}
}

func TestSendLandsAtRecvAddress(t *testing.T) {
	r, qa, qb := newRig(t)
	srcMR := r.a.hca.RegMR(dataAt, 4096)
	dstMR := r.b.hca.RegMR(dataAt, 4096)
	payload := []byte("two-sided send payload")
	if err := r.a.f.Space().Write(dataAt, payload); err != nil {
		t.Fatal(err)
	}
	postRecv(t, r.b, qb, 0, RecvWQE{WRID: 5, Addr: dataAt + 512, LKey: dstMR.LKey})
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpSend, Flags: FlagSignaled, WRID: 6,
		LAddr: dataAt, LKey: srcMR.LKey, Length: len(payload),
	})
	r.e.Run()
	got := make([]byte, len(payload))
	if err := r.b.f.Space().Read(dataAt+512, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("send payload = %q", got)
	}
}

func TestSendWithoutRecvDropsRNR(t *testing.T) {
	r, qa, _ := newRig(t)
	srcMR := r.a.hca.RegMR(dataAt, 4096)
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpSend, WRID: 6, LAddr: dataAt, LKey: srcMR.LKey, Length: 64,
	})
	r.e.Run()
	if r.b.hca.Stats().RNRDrops != 1 {
		t.Fatalf("RNR drops = %d, want 1", r.b.hca.Stats().RNRDrops)
	}
}

func TestBadRKeyProtectionError(t *testing.T) {
	r, qa, _ := newRig(t)
	srcMR := r.a.hca.RegMR(dataAt, 4096)
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpRDMAWrite, WRID: 1, LAddr: dataAt, LKey: srcMR.LKey,
		Length: 64, RAddr: dataAt, RKey: 0xdead,
	})
	r.e.Run()
	if r.b.hca.Stats().ProtectionErrs != 1 {
		t.Fatalf("protection errors = %d, want 1", r.b.hca.Stats().ProtectionErrs)
	}
}

func TestBadLKeyErrorCQE(t *testing.T) {
	r, qa, _ := newRig(t)
	r.b.hca.RegMR(dataAt, 4096)
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpRDMAWrite, WRID: 9, LAddr: dataAt, LKey: 0xbad,
		Length: 64, RAddr: dataAt, RKey: 1001,
	})
	r.e.Run()
	cqeBuf := make([]byte, CQEBytes)
	if err := r.a.f.Space().Read(qa.SendCQ.EntryAddr(0), cqeBuf); err != nil {
		t.Fatal(err)
	}
	cqe := DecodeCQE(cqeBuf)
	if !cqe.Valid || cqe.Status != StatusErr || cqe.WRID != 9 {
		t.Fatalf("error CQE = %+v", cqe)
	}
	if r.b.hca.Stats().PacketsRx != 0 {
		t.Fatal("bad-lkey packet still transmitted")
	}
}

func TestInOrderDelivery(t *testing.T) {
	r, qa, _ := newRig(t)
	srcMR := r.a.hca.RegMR(dataAt, 1<<20)
	dstMR := r.b.hca.RegMR(dataAt, 1<<20)
	// Post a large write then a small flag write; the flag must land after
	// the payload (RC ordering), which device-memory polling depends on.
	big := make([]byte, 256<<10)
	for i := range big {
		big[i] = 0xaa
	}
	if err := r.a.f.Space().Write(dataAt, big); err != nil {
		t.Fatal(err)
	}
	if err := r.a.f.Space().WriteU64(memspace.Addr(dataAt+uint64(len(big))), 0x11ff); err != nil {
		t.Fatal(err)
	}
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpRDMAWrite, WRID: 1, LAddr: dataAt, LKey: srcMR.LKey,
		Length: len(big), RAddr: dataAt, RKey: dstMR.RKey,
	})
	postSend(t, r.a, qa, 1, WQE{
		Opcode: OpRDMAWrite, WRID: 2, LAddr: dataAt + uint64(len(big)), LKey: srcMR.LKey,
		Length: 8, RAddr: dataAt + uint64(len(big)), RKey: dstMR.RKey,
	})
	// Poll the flag on B; when it appears, the payload must be complete.
	ok := false
	r.e.Spawn("poll", func(p *sim.Proc) {
		for {
			v, _ := r.b.f.Space().ReadU64(memspace.Addr(dataAt + uint64(len(big))))
			if v == 0x11ff {
				lastBuf := make([]byte, 1)
				r.b.f.Space().Read(memspace.Addr(dataAt+uint64(len(big))-1), lastBuf)
				ok = lastBuf[0] == 0xaa
				return
			}
			p.Sleep(100 * sim.Nanosecond)
		}
	})
	r.e.Run()
	if !ok {
		t.Fatal("flag overtook payload — RC ordering violated")
	}
}

func TestManyWQEsAllExecuteAcrossWrap(t *testing.T) {
	r, qa, _ := newRig(t)
	srcMR := r.a.hca.RegMR(dataAt, 1<<20)
	dstMR := r.b.hca.RegMR(dataAt, 1<<20)
	const N = 200 // > SQEntries(64): exercises ring wrap and batching
	for i := 0; i < N; i++ {
		postSend(t, r.a, qa, i, WQE{
			Opcode: OpRDMAWrite, WRID: uint64(i), LAddr: dataAt, LKey: srcMR.LKey,
			Length: 64, RAddr: dataAt + uint64(64*(i%1024)), RKey: dstMR.RKey,
		})
		// Run a bit so the hardware drains the ring before it wraps over
		// unconsumed slots.
		if i%32 == 31 {
			r.e.RunUntil(r.e.Now() + sim.Time(50*sim.Microsecond))
		}
	}
	r.e.Run()
	if got := r.b.hca.Stats().PacketsRx; got != N {
		t.Fatalf("received %d of %d packets", got, N)
	}
	if got := r.a.hca.Stats().WQEsExecuted; got != N {
		t.Fatalf("executed %d of %d WQEs", got, N)
	}
}

func TestCQOverflowCounted(t *testing.T) {
	r, qa, qb := newRig(t)
	srcMR := r.a.hca.RegMR(dataAt, 1<<20)
	dstMR := r.b.hca.RegMR(dataAt, 1<<20)
	_ = qb
	// 80 signaled writes into a 64-entry CQ that nobody drains.
	for i := 0; i < 80; i++ {
		postSend(t, r.a, qa, i, WQE{
			Opcode: OpRDMAWrite, Flags: FlagSignaled, WRID: uint64(i),
			LAddr: dataAt, LKey: srcMR.LKey, Length: 8, RAddr: dataAt, RKey: dstMR.RKey,
		})
		if i%16 == 15 {
			r.e.RunUntil(r.e.Now() + sim.Time(50*sim.Microsecond))
		}
	}
	r.e.Run()
	st := r.a.hca.Stats()
	if st.CQOverflows == 0 {
		t.Fatal("CQ overflow not detected")
	}
	if st.CQEsWritten+st.CQOverflows != 80 {
		t.Fatalf("CQEs %d + overflows %d != 80", st.CQEsWritten, st.CQOverflows)
	}
}

func TestQPParallelismSpeedsUpManySmallWrites(t *testing.T) {
	// 8 QPs posting 16 writes each should finish much faster than one QP
	// posting 128 (per-QP engines work in parallel).
	run := func(nQPs, perQP int) sim.Duration {
		e := sim.NewEngine()
		a := newNode(e, "a")
		b := newNode(e, "b")
		ab, ba := wire.NewDuplex[Packet](e, 6.8e9, 450*sim.Nanosecond)
		a.hca.AttachWire(ab, ba)
		b.hca.AttachWire(ba, ab)
		srcMR := a.hca.RegMR(dataAt, 1<<20)
		dstMR := b.hca.RegMR(dataAt, 1<<20)
		for q := 0; q < nQPs; q++ {
			sq := memspace.Addr(sqBase + q*0x1000)
			rq := memspace.Addr(rqBase + q*0x1000)
			scq := a.hca.CreateCQ(memspace.Addr(sendCQAt+q*0x1000), 256)
			rcq := a.hca.CreateCQ(memspace.Addr(recvCQAt+q*0x1000), 256)
			qa := a.hca.CreateQP(sq, 256, rq, 256, scq, rcq)
			qbq := b.hca.CreateQP(sq, 256, rq, 256,
				b.hca.CreateCQ(memspace.Addr(sendCQAt+q*0x1000), 256),
				b.hca.CreateCQ(memspace.Addr(recvCQAt+q*0x1000), 256))
			ConnectQPs(qa, qbq)
			for i := 0; i < perQP; i++ {
				buf := make([]byte, WQEBytes)
				EncodeWQE(WQE{
					Opcode: OpRDMAWrite, WRID: uint64(i), LAddr: dataAt, LKey: srcMR.LKey,
					Length: 64, RAddr: dataAt, RKey: dstMR.RKey,
				}, buf)
				if err := a.f.Space().Write(qa.SQSlotAddr(i), buf); err != nil {
					panic(err)
				}
			}
			db := make([]byte, 8)
			v := uint64(qa.QPN)<<32 | uint64(perQP)
			for i := 0; i < 8; i++ {
				db[i] = byte(v >> (8 * uint(i)))
			}
			a.f.PostedWrite(a.cpu, a.hca.DoorbellSQAddr(), db)
		}
		e.Run()
		if got := b.hca.Stats().PacketsRx; got != uint64(nQPs*perQP) {
			panic(fmt.Sprintf("rx %d want %d", got, nQPs*perQP))
		}
		return sim.Duration(e.Now())
	}
	serial := run(1, 128)
	parallel := run(8, 16)
	if parallel >= serial {
		t.Fatalf("8 QPs (%v) not faster than 1 QP (%v)", parallel, serial)
	}
}

func TestRDMAReadFetchesRemote(t *testing.T) {
	r, qa, _ := newRig(t)
	locMR := r.a.hca.RegMR(dataAt, 64<<10)
	remMR := r.b.hca.RegMR(dataAt, 64<<10)
	payload := []byte("one-sided remote read payload!")
	if err := r.b.f.Space().Write(dataAt+1024, payload); err != nil {
		t.Fatal(err)
	}
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpRDMARead, Flags: FlagSignaled, WRID: 11,
		LAddr: dataAt + 4096, LKey: locMR.LKey, Length: len(payload),
		RAddr: dataAt + 1024, RKey: remMR.RKey,
	})
	r.e.Run()
	got := make([]byte, len(payload))
	if err := r.a.f.Space().Read(dataAt+4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read returned %q", got)
	}
	// Completion arrives only after the response landed.
	cqeBuf := make([]byte, CQEBytes)
	if err := r.a.f.Space().Read(qa.SendCQ.EntryAddr(0), cqeBuf); err != nil {
		t.Fatal(err)
	}
	cqe := DecodeCQE(cqeBuf)
	if !cqe.Valid || cqe.Opcode != OpRDMARead || cqe.WRID != 11 || cqe.ByteLen != len(payload) {
		t.Fatalf("read CQE = %+v", cqe)
	}
	if r.b.hca.Stats().ReadsServed != 1 {
		t.Fatal("responder did not count the read")
	}
}

func TestRDMAReadBadRKey(t *testing.T) {
	r, qa, _ := newRig(t)
	locMR := r.a.hca.RegMR(dataAt, 4096)
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpRDMARead, Flags: FlagSignaled, WRID: 12,
		LAddr: dataAt, LKey: locMR.LKey, Length: 64,
		RAddr: dataAt, RKey: 0xbad,
	})
	r.e.Run()
	if r.b.hca.Stats().ProtectionErrs != 1 {
		t.Fatal("responder accepted a bad rkey")
	}
}

func TestInlineSendSkipsPayloadDMA(t *testing.T) {
	r, qa, _ := newRig(t)
	dstMR := r.b.hca.RegMR(dataAt, 4096)
	inline := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpRDMAWrite, Flags: FlagSignaled | FlagInline, WRID: 13,
		Length: len(inline), Inline: inline,
		RAddr: dataAt + 128, RKey: dstMR.RKey,
	})
	r.e.Run()
	got := make([]byte, len(inline))
	if err := r.b.f.Space().Read(dataAt+128, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, inline) {
		t.Fatalf("inline payload = %v", got)
	}
}

func TestInlineWQERoundTrip(t *testing.T) {
	in := WQE{Opcode: OpRDMAWrite, Flags: FlagInline, WRID: 5,
		Length: 5, Inline: []byte{1, 2, 3, 4, 5}, RAddr: 0x99, RKey: 7}
	buf := make([]byte, WQEBytes)
	EncodeWQE(in, buf)
	out, err := DecodeWQE(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Inline, in.Inline) || out.Length != 5 || out.RAddr != 0x99 {
		t.Fatalf("inline round trip %+v", out)
	}
}

func TestInlineTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized inline accepted")
		}
	}()
	buf := make([]byte, WQEBytes)
	EncodeWQE(WQE{Flags: FlagInline, Inline: make([]byte, InlineMax+1)}, buf)
}

func TestQPStateMachine(t *testing.T) {
	e := sim.NewEngine()
	n := newNode(e, "x")
	qp := n.hca.CreateQP(sqBase, 16, rqBase, 16,
		n.hca.CreateCQ(sendCQAt, 16), n.hca.CreateCQ(recvCQAt, 16))
	if qp.State() != StateReset {
		t.Fatalf("fresh QP in %v", qp.State())
	}
	if err := qp.ModifyQP(StateRTS); err == nil {
		t.Fatal("RESET->RTS accepted")
	}
	for _, s := range []QPState{StateInit, StateRTR, StateRTS} {
		if err := qp.ModifyQP(s); err != nil {
			t.Fatalf("legal transition to %v rejected: %v", s, err)
		}
	}
	if err := qp.ModifyQP(StateErr); err != nil {
		t.Fatalf("->ERR rejected: %v", err)
	}
	if err := qp.ModifyQP(StateReset); err != nil {
		t.Fatalf("ERR->RESET rejected: %v", err)
	}
	if qp.sqHeadHW != 0 || qp.sqTailHW != 0 {
		t.Fatal("reset did not clear hardware indices")
	}
}

func TestErrQPFlushesWQEs(t *testing.T) {
	r, qa, _ := newRig(t)
	srcMR := r.a.hca.RegMR(dataAt, 4096)
	dstMR := r.b.hca.RegMR(dataAt, 4096)
	// First WQE has a bad lkey: error CQE + QP -> ERR. The second must be
	// flushed with an error completion and never reach the wire.
	postSend(t, r.a, qa, 0, WQE{
		Opcode: OpRDMAWrite, WRID: 1, LAddr: dataAt, LKey: 0xbad,
		Length: 64, RAddr: dataAt, RKey: dstMR.RKey,
	})
	postSend(t, r.a, qa, 1, WQE{
		Opcode: OpRDMAWrite, WRID: 2, LAddr: dataAt, LKey: srcMR.LKey,
		Length: 64, RAddr: dataAt, RKey: dstMR.RKey,
	})
	r.e.Run()
	if qa.State() != StateErr {
		t.Fatalf("QP state = %v, want ERR", qa.State())
	}
	if r.a.hca.Stats().FlushedWQEs == 0 {
		t.Fatal("second WQE not flushed")
	}
	if r.b.hca.Stats().PacketsRx != 0 {
		t.Fatal("packet escaped an ERR QP")
	}
	// Both completions present, both with error status.
	for i := 0; i < 2; i++ {
		buf := make([]byte, CQEBytes)
		if err := r.a.f.Space().Read(qa.SendCQ.EntryAddr(i), buf); err != nil {
			t.Fatal(err)
		}
		want := StatusErr
		if i == 1 {
			// The second WQE never executed: Verbs flushes it.
			want = StatusFlushErr
		}
		if cqe := DecodeCQE(buf); !cqe.Valid || cqe.Status != want {
			t.Fatalf("CQE %d = %+v, want status %d", i, cqe, want)
		}
	}
}

func TestMTUFramingOverhead(t *testing.T) {
	e := sim.NewEngine()
	n := newNode(e, "x")
	if got := n.hca.wireBytes(100); got != 100+PktHeader {
		t.Fatalf("wireBytes(100) = %d", got)
	}
	if got := n.hca.wireBytes(2048); got != 2048+PktHeader {
		t.Fatalf("wireBytes(2048) = %d", got)
	}
	if got := n.hca.wireBytes(2049); got != 2049+2*PktHeader {
		t.Fatalf("wireBytes(2049) = %d", got)
	}
	if got := n.hca.wireBytes(0); got != PktHeader {
		t.Fatalf("wireBytes(0) = %d", got)
	}
}

func TestReadLatencyLongerThanWrite(t *testing.T) {
	// A read is a full round trip plus the responder's local DMA; it must
	// take measurably longer than a write's one-way completion.
	measure := func(op int) sim.Duration {
		r, qa, _ := newRig(t)
		locMR := r.a.hca.RegMR(dataAt, 4096)
		remMR := r.b.hca.RegMR(dataAt, 4096)
		wqe := WQE{
			Opcode: op, Flags: FlagSignaled, WRID: 1,
			LAddr: dataAt, LKey: locMR.LKey, Length: 1024,
			RAddr: dataAt, RKey: remMR.RKey,
		}
		var done sim.Time
		r.e.Spawn("meter", func(p *sim.Proc) {
			postSend(t, r.a, qa, 0, wqe)
			for {
				buf := make([]byte, CQEBytes)
				if err := r.a.f.Space().Read(qa.SendCQ.EntryAddr(0), buf); err != nil {
					t.Error(err)
					return
				}
				if DecodeCQE(buf).Valid {
					done = p.Now()
					return
				}
				p.Sleep(100 * sim.Nanosecond)
			}
		})
		r.e.Run()
		return sim.Duration(done)
	}
	write := measure(OpRDMAWrite)
	read := measure(OpRDMARead)
	if read <= write {
		t.Fatalf("read completion (%v) should exceed write completion (%v)", read, write)
	}
}
