package ibsim

import (
	"encoding/binary"
	"fmt"

	"putget/internal/memspace"
	"putget/internal/pcie"
	"putget/internal/sim"
	"putget/internal/wire"
)

// Config fixes the HCA's processing model.
type Config struct {
	Name    string
	BARBase memspace.Addr
	// WQEFetchBatch bounds how many SQ WQEs one DMA burst fetches after a
	// doorbell (hardware prefetches several descriptors per read).
	WQEFetchBatch int
	// ProcessTime is the engine occupancy per send WQE.
	ProcessTime sim.Duration
	// RxProcessTime is the engine occupancy per received packet.
	RxProcessTime sim.Duration
	// DMAContexts bounds outstanding DMA jobs.
	DMAContexts int
	// MTU is the path maximum transfer unit; the wire carries one header
	// per MTU segment. 0 defaults to 2048.
	MTU int
	// Rel enables the RC reliability protocol (PSN sequencing, ACK/NAK,
	// retransmission). nil — the default — assumes a perfect wire and
	// keeps the seed's zero-overhead fast path bit-identical.
	Rel *RelConfig
	// PCIe configures the HCA's fabric port.
	PCIe pcie.EndpointConfig
}

// Stats counts HCA activity.
type Stats struct {
	WQEsExecuted   uint64
	PacketsRx      uint64
	CQEsWritten    uint64
	CQOverflows    uint64
	RNRDrops       uint64 // sends/write-imms arriving with an empty RQ
	ProtectionErrs uint64
	ReadsServed    uint64 // RDMA READ requests answered
	AtomicsServed  uint64 // atomic fetch-add requests answered
	FlushedWQEs    uint64 // WQEs completed with flush error on an ERR QP
	DroppedOnErrQP uint64 // packets dropped because the QP was in ERR

	// Reliability-protocol counters (all zero when Config.Rel == nil).
	Retransmits    uint64 // data packets sent again (NAK or timeout)
	AcksSent       uint64
	AcksRx         uint64
	NaksSent       uint64 // sequence-error NAKs
	NaksRx         uint64
	RnrNaksSent    uint64
	RnrNaksRx      uint64
	Timeouts       uint64 // retransmission-timer expiries
	DupRx          uint64 // duplicate packets (already-delivered PSN)
	IcrcDrops      uint64 // packets discarded for a bad invariant CRC
	RetryExhausted uint64 // QPs driven to ERR by retry/RNR exhaustion
}

// Packet is one RC transport packet between the two HCAs.
type Packet struct {
	Opcode int
	Flags  int
	SrcQPN uint32
	DstQPN uint32
	RAddr  uint64
	RKey   uint32
	Imm    uint32
	WRID   uint64
	// LAddr echoes the requester's landing address on RDMA READ requests
	// so the response can be scattered without extra origin state.
	LAddr uint64
	// Add carries the fetch-and-add operand on OpAtomicFAdd requests
	// (real IB's AtomicETH field).
	Add  uint64
	Data []byte
	// PSN sequences request packets when the reliability protocol is on;
	// ACK/NAK packets carry the next expected PSN here, read responses the
	// request PSN they answer.
	PSN uint32
	// Poisoned marks a payload damaged in flight; the receiver's ICRC
	// check discards the packet.
	Poisoned bool
}

// Internal opcodes (above the Verbs WQE opcode space).
const (
	// opReadResp is an RDMA READ response packet.
	opReadResp = 100
	// opAtomicResp answers an atomic fetch-add with the pre-add value.
	opAtomicResp = 104
	// opAck acknowledges all PSNs below Packet.PSN.
	opAck = 101
	// opNak reports a sequence gap: resend from Packet.PSN.
	opNak = 102
	// opRnrNak reports receiver-not-ready: resend Packet.PSN after backoff.
	opRnrNak = 103
)

// PktHeader is the wire overhead per packet (LRH+BTH+RETH+ICRC ≈ 30-58 B).
const PktHeader = 48

// mtu returns the configured path MTU.
func (h *HCA) mtu() int {
	if h.cfg.MTU > 0 {
		return h.cfg.MTU
	}
	return 2048
}

// wireBytes is the on-cable size of a payload: one header per MTU segment.
func (h *HCA) wireBytes(payload int) int {
	segs := (payload + h.mtu() - 1) / h.mtu()
	if segs < 1 {
		segs = 1
	}
	return payload + segs*PktHeader
}

// DoorbellSQ and DoorbellRQ are register offsets in the HCA BAR page.
const (
	DoorbellSQ = 0x00
	DoorbellRQ = 0x08
)

// MR is a registered memory region. InfiniBand identifies memory by
// virtual address + key pair, unlike EXTOLL's NLAs.
type MR struct {
	Base memspace.Addr
	Size uint64
	LKey uint32
	RKey uint32
}

// Contains checks [addr, addr+n) against the registration.
func (m *MR) Contains(addr uint64, n int) bool {
	return addr >= uint64(m.Base) && addr+uint64(n) <= uint64(m.Base)+m.Size
}

// CQ is a completion queue whose ring lives wherever software allocated
// it — host memory or GPU device memory; the paper's Table II compares
// exactly these two placements.
type CQ struct {
	hca     *HCA
	Ring    memspace.Addr
	Entries int
	wp      int
}

// EntryAddr returns the address of CQE slot idx (mod ring size).
func (c *CQ) EntryAddr(idx int) memspace.Addr {
	return c.Ring + memspace.Addr((idx%c.Entries)*CQEBytes)
}

// push writes a CQE into the next slot (posted DMA write); software frees
// slots by zeroing them after polling.
func (c *CQ) push(cqe CQE) {
	addr := c.EntryAddr(c.wp)
	if w0, err := c.hca.f.Space().ReadU64(addr); err == nil && CQEValidWord(w0) {
		c.hca.stats.CQOverflows++
		return
	}
	cqe.Valid = true
	buf := make([]byte, CQEBytes)
	EncodeCQE(cqe, buf)
	deliver := c.hca.f.PostedWrite(c.hca.ep, addr, buf)
	if e := c.hca.e; e.Observing() {
		// Opened after the posted write so it out-nests the pcie span
		// covering the same interval.
		id := e.SpanOpen(c.hca.cfg.Name, "cqe.write", sim.Attr{Key: "qpn", Val: int64(cqe.QPN)})
		e.SpanCloseAt(id, deliver)
	}
	c.wp++
	c.hca.stats.CQEsWritten++
}

// QP states, following the Verbs state machine (simplified: no SQD).
type QPState int

// Valid states.
const (
	StateReset QPState = iota
	StateInit
	StateRTR
	StateRTS
	StateErr
)

// String implements fmt.Stringer.
func (s QPState) String() string {
	switch s {
	case StateReset:
		return "RESET"
	case StateInit:
		return "INIT"
	case StateRTR:
		return "RTR"
	case StateRTS:
		return "RTS"
	case StateErr:
		return "ERR"
	}
	return "?"
}

// QP is a queue pair. The send and receive rings live wherever software
// allocated them (host or GPU memory).
type QP struct {
	hca       *HCA
	QPN       uint32
	SQ        memspace.Addr
	SQEntries int
	RQ        memspace.Addr
	RQEntries int
	SendCQ    *CQ
	RecvCQ    *CQ

	remoteQPN uint32
	state     QPState

	sqHeadHW int // next WQE the hardware will fetch
	sqTailHW int // producer index last doorbelled
	rqHeadHW int
	rqTailHW int
	fetching int // WQEs currently in a descriptor DMA burst

	doorbell *sim.Signal
	lastSent *sim.Completion // chains senders to keep RC ordering

	rel *qpRel // reliability state; nil on the perfect-wire fast path
}

// SQSlotAddr returns the address of send-WQE slot idx (mod ring).
func (q *QP) SQSlotAddr(idx int) memspace.Addr {
	return q.SQ + memspace.Addr((idx%q.SQEntries)*WQEBytes)
}

// RQSlotAddr returns the address of recv-WQE slot idx (mod ring).
func (q *QP) RQSlotAddr(idx int) memspace.Addr {
	return q.RQ + memspace.Addr((idx%q.RQEntries)*RecvWQEBytes)
}

// HCA is one InfiniBand adapter on a node fabric.
type HCA struct {
	cfg Config
	e   *sim.Engine
	f   *pcie.Fabric
	ep  *pcie.Endpoint
	bar memspace.Region

	mrs      []*MR
	nextKey  uint32
	qps      map[uint32]*QP
	nextQPN  uint32
	dmaSlots *sim.Resource
	tx       wire.Conduit[Packet]
	stats    Stats
}

// New creates an HCA and claims its doorbell BAR.
func New(e *sim.Engine, f *pcie.Fabric, cfg Config) *HCA {
	if cfg.WQEFetchBatch <= 0 || cfg.DMAContexts <= 0 {
		panic("ibsim: invalid config")
	}
	h := &HCA{cfg: cfg, e: e, f: f, qps: map[uint32]*QP{}, nextKey: 1000, nextQPN: 1}
	h.ep = f.AddEndpoint(cfg.Name, cfg.PCIe)
	h.bar = memspace.Region{Base: cfg.BARBase, Size: 4096}
	f.ClaimMMIO(h.ep, h.bar, (*dbTarget)(h))
	h.dmaSlots = sim.NewResource(e, cfg.DMAContexts)
	return h
}

// Endpoint returns the HCA's fabric port.
func (h *HCA) Endpoint() *pcie.Endpoint { return h.ep }

// BAR returns the doorbell page region.
func (h *HCA) BAR() memspace.Region { return h.bar }

// DoorbellSQAddr returns the SQ doorbell register address.
func (h *HCA) DoorbellSQAddr() memspace.Addr { return h.bar.Base + DoorbellSQ }

// DoorbellRQAddr returns the RQ doorbell register address.
func (h *HCA) DoorbellRQAddr() memspace.Addr { return h.bar.Base + DoorbellRQ }

// Stats returns a snapshot of activity counters.
func (h *HCA) Stats() Stats { return h.stats }

// AttachWire sets the transmit link and starts the receive engine.
func (h *HCA) AttachWire(tx, rx wire.Conduit[Packet]) {
	h.tx = tx
	h.e.Spawn(h.cfg.Name+".rx", func(p *sim.Proc) {
		for {
			pkt := rx.Recv(p)
			h.receive(p, pkt)
		}
	})
}

// RegMR registers [base, base+size) and returns its keys. With the
// GPUDirect patch (always applied here) GPU device memory registers the
// same way as host memory.
func (h *HCA) RegMR(base memspace.Addr, size uint64) *MR {
	mr := &MR{Base: base, Size: size, LKey: h.nextKey, RKey: h.nextKey + 1}
	h.nextKey += 2
	h.mrs = append(h.mrs, mr)
	return mr
}

func (h *HCA) lookupLKey(key uint32, addr uint64, n int) (*MR, bool) {
	for _, mr := range h.mrs {
		if mr.LKey == key && mr.Contains(addr, n) {
			return mr, true
		}
	}
	return nil, false
}

func (h *HCA) lookupRKey(key uint32, addr uint64, n int) (*MR, bool) {
	for _, mr := range h.mrs {
		if mr.RKey == key && mr.Contains(addr, n) {
			return mr, true
		}
	}
	return nil, false
}

// CreateCQ wraps a software-allocated ring as a completion queue.
func (h *HCA) CreateCQ(ring memspace.Addr, entries int) *CQ {
	if entries <= 0 {
		panic("ibsim: CQ needs entries")
	}
	return &CQ{hca: h, Ring: ring, Entries: entries}
}

// CreateQP wraps software-allocated SQ/RQ rings as a queue pair.
func (h *HCA) CreateQP(sq memspace.Addr, sqEntries int, rq memspace.Addr, rqEntries int, sendCQ, recvCQ *CQ) *QP {
	if sqEntries <= 0 || rqEntries <= 0 {
		panic("ibsim: QP needs ring entries")
	}
	qp := &QP{
		hca: h, QPN: h.nextQPN, SQ: sq, SQEntries: sqEntries,
		RQ: rq, RQEntries: rqEntries, SendCQ: sendCQ, RecvCQ: recvCQ,
		doorbell: sim.NewSignal(h.e),
	}
	if h.cfg.Rel != nil {
		qp.rel = newQPRel(h.e)
	}
	h.nextQPN++
	h.qps[qp.QPN] = qp
	return qp
}

// State returns the QP's current state.
func (q *QP) State() QPState { return q.state }

// ModifyQP drives the Verbs state machine. Legal forward transitions are
// RESET→INIT→RTR→RTS; any state may move to ERR; ERR or any state may be
// reset to RESET (which also clears the hardware indices).
func (q *QP) ModifyQP(next QPState) error {
	legal := next == StateErr || next == StateReset ||
		(q.state == StateReset && next == StateInit) ||
		(q.state == StateInit && next == StateRTR) ||
		(q.state == StateRTR && next == StateRTS)
	if !legal {
		return fmt.Errorf("ibsim: illegal QP transition %v -> %v", q.state, next)
	}
	if next == StateErr || next == StateReset {
		// Verbs semantics: outstanding work completes with
		// IBV_WC_WR_FLUSH_ERR instead of silently vanishing.
		q.state = next
		q.flush()
	}
	if next == StateReset {
		q.sqHeadHW, q.sqTailHW, q.rqHeadHW, q.rqTailHW = 0, 0, 0, 0
	}
	q.state = next
	return nil
}

// flush completes every outstanding WQE — unacked requests awaiting the
// reliability protocol, doorbelled-but-unfetched send WQEs, and posted
// receives — with a flush-error CQE. WQEs already inside a descriptor DMA
// burst are left to the send engine, which flushes them at execute time.
func (q *QP) flush() {
	h := q.hca
	if q.rel != nil {
		for _, en := range q.rel.unacked {
			h.stats.FlushedWQEs++
			q.SendCQ.push(CQE{Opcode: en.pkt.Opcode, WRID: en.pkt.WRID, QPN: q.QPN, Status: StatusFlushErr})
		}
		q.rel.unacked = nil
		q.rel.armed = false
		q.rel.kick.Broadcast()
	}
	start := q.sqHeadHW + q.fetching
	for i := start; i < q.sqTailHW; i++ {
		buf := make([]byte, WQEBytes)
		if err := h.f.Space().Read(q.SQSlotAddr(i), buf); err != nil {
			continue
		}
		wqe, err := DecodeWQE(buf)
		if err != nil {
			continue
		}
		h.stats.FlushedWQEs++
		q.SendCQ.push(CQE{Opcode: wqe.Opcode, WRID: wqe.WRID, QPN: q.QPN, Status: StatusFlushErr})
	}
	q.sqTailHW = start
	for i := q.rqHeadHW; i < q.rqTailHW; i++ {
		buf := make([]byte, RecvWQEBytes)
		if err := h.f.Space().Read(q.RQSlotAddr(i), buf); err != nil {
			continue
		}
		rwqe, err := DecodeRecvWQE(buf)
		if err != nil {
			continue
		}
		h.stats.FlushedWQEs++
		q.RecvCQ.push(CQE{WRID: rwqe.WRID, QPN: q.QPN, Status: StatusFlushErr})
	}
	q.rqHeadHW = q.rqTailHW
}

// ConnectQPs walks both QPs of an RC connection through INIT/RTR to RTS
// and starts their send engines.
func ConnectQPs(a, b *QP) {
	if a.state != StateReset || b.state != StateReset {
		panic("ibsim: QP already connected")
	}
	a.remoteQPN, b.remoteQPN = b.QPN, a.QPN
	for _, q := range []*QP{a, b} {
		mustModify(q, StateInit)
		mustModify(q, StateRTR)
		mustModify(q, StateRTS)
	}
	a.hca.e.Spawn(fmt.Sprintf("%s.qp%d.send", a.hca.cfg.Name, a.QPN), func(p *sim.Proc) { a.hca.sendEngine(p, a) })
	b.hca.e.Spawn(fmt.Sprintf("%s.qp%d.send", b.hca.cfg.Name, b.QPN), func(p *sim.Proc) { b.hca.sendEngine(p, b) })
	for _, q := range []*QP{a, b} {
		if q.rel != nil {
			qp := q
			qp.hca.e.Spawn(fmt.Sprintf("%s.qp%d.retx", qp.hca.cfg.Name, qp.QPN), func(p *sim.Proc) { qp.hca.retxTimer(p, qp) })
		}
	}
}

func mustModify(q *QP, s QPState) {
	if err := q.ModifyQP(s); err != nil {
		panic(err)
	}
}

// ---- doorbell MMIO ----

type dbTarget HCA

func (dt *dbTarget) MMIOWrite(addr memspace.Addr, data []byte) {
	h := (*HCA)(dt)
	if len(data) < 8 {
		panic(fmt.Sprintf("ibsim: %s: short doorbell write", h.cfg.Name))
	}
	v := binary.LittleEndian.Uint64(data)
	qpn := uint32(v >> 32)
	idx := int(uint32(v))
	qp, ok := h.qps[qpn]
	if !ok {
		panic(fmt.Sprintf("ibsim: %s: doorbell for unknown QP %d", h.cfg.Name, qpn))
	}
	switch uint64(addr - h.bar.Base) {
	case DoorbellSQ:
		if idx > qp.sqTailHW {
			qp.sqTailHW = idx
			h.e.Metric(h.cfg.Name, "sq_backlog", float64(qp.sqTailHW-qp.sqHeadHW))
			qp.doorbell.Broadcast()
		}
	case DoorbellRQ:
		if idx > qp.rqTailHW {
			qp.rqTailHW = idx
		}
	default:
		panic(fmt.Sprintf("ibsim: %s: write to unknown register +%#x", h.cfg.Name, uint64(addr-h.bar.Base)))
	}
}

func (dt *dbTarget) MMIORead(addr memspace.Addr, data []byte) {
	for i := range data {
		data[i] = 0
	}
}

// ---- send engine ----

// sendEngine fetches and executes this QP's WQEs: batch DMA reads of
// descriptors (from host or GPU memory — the location drives the paper's
// Table II comparison), then per-WQE payload DMA and transmission.
func (h *HCA) sendEngine(p *sim.Proc, qp *QP) {
	for {
		for qp.sqHeadHW >= qp.sqTailHW {
			qp.doorbell.Wait(p)
		}
		batch := qp.sqTailHW - qp.sqHeadHW
		if batch > h.cfg.WQEFetchBatch {
			batch = h.cfg.WQEFetchBatch
		}
		// Never read across the ring wrap in one burst.
		slot := qp.sqHeadHW % qp.SQEntries
		if slot+batch > qp.SQEntries {
			batch = qp.SQEntries - slot
		}
		buf := make([]byte, batch*WQEBytes)
		qp.fetching = batch
		var fetch sim.SpanID
		if h.e.Observing() {
			fetch = h.e.SpanOpen(h.cfg.Name, "wqe.fetch", sim.Attr{Key: "batch", Val: int64(batch)})
		}
		h.dmaSlots.Acquire(p)
		h.f.ReadBulk(p, h.ep, qp.SQSlotAddr(qp.sqHeadHW), buf)
		h.dmaSlots.Release()
		h.e.SpanClose(fetch)
		if h.e.Trace != nil {
			h.e.Tracef("%s: qp%d fetched %d WQE(s)", h.cfg.Name, qp.QPN, batch)
		}
		for i := 0; i < batch; i++ {
			wqe, err := DecodeWQE(buf[i*WQEBytes:])
			if err != nil {
				panic(fmt.Sprintf("ibsim: %s qp%d: %v", h.cfg.Name, qp.QPN, err))
			}
			p.Sleep(h.cfg.ProcessTime)
			h.execute(qp, wqe)
		}
		qp.sqHeadHW += batch
		qp.fetching = 0
		h.e.Metric(h.cfg.Name, "sq_backlog", float64(qp.sqTailHW-qp.sqHeadHW))
	}
}

// execute launches one WQE's payload DMA + transmit, chained to preserve
// RC in-order delivery. On an ERR queue pair the WQE is flushed with an
// error completion instead.
func (h *HCA) execute(qp *QP, wqe WQE) {
	if qp.state != StateRTS {
		h.stats.FlushedWQEs++
		qp.SendCQ.push(CQE{
			Opcode: wqe.Opcode, WRID: wqe.WRID, QPN: qp.QPN, Status: StatusFlushErr,
		})
		return
	}
	prev := qp.lastSent
	sent := sim.NewCompletion(h.e)
	qp.lastSent = sent
	h.stats.WQEsExecuted++
	h.e.Spawn(fmt.Sprintf("%s.qp%d.tx", h.cfg.Name, qp.QPN), func(p *sim.Proc) {
		var data []byte
		status := StatusOK
		switch {
		case wqe.Flags&FlagInline != 0:
			// Inline payload travels in the descriptor itself: no DMA.
			data = wqe.Inline
		case wqe.Opcode == OpRDMARead:
			// Reads carry no payload; validate the landing buffer now.
			if _, ok := h.lookupLKey(wqe.LKey, wqe.LAddr, wqe.Length); !ok {
				h.stats.ProtectionErrs++
				status = StatusErr
			}
		case wqe.Opcode == OpAtomicFAdd:
			// Atomics carry the operand in the descriptor, no payload DMA;
			// validate the 8-byte landing buffer for the old value now.
			if _, ok := h.lookupLKey(wqe.LKey, wqe.LAddr, 8); !ok {
				h.stats.ProtectionErrs++
				status = StatusErr
			}
		case wqe.Length > 0:
			if _, ok := h.lookupLKey(wqe.LKey, wqe.LAddr, wqe.Length); !ok {
				h.stats.ProtectionErrs++
				status = StatusErr
			} else {
				data = make([]byte, wqe.Length)
				var fetch sim.SpanID
				if h.e.Observing() {
					fetch = h.e.SpanOpen(h.cfg.Name, "dma.fetch", sim.Attr{Key: "bytes", Val: int64(wqe.Length)})
				}
				h.dmaSlots.Acquire(p)
				h.f.ReadBulk(p, h.ep, memspace.Addr(wqe.LAddr), data)
				h.dmaSlots.Release()
				h.e.SpanClose(fetch)
			}
		}
		if prev != nil {
			prev.Wait(p)
		}
		if status == StatusOK {
			pkt := Packet{
				Opcode: wqe.Opcode, Flags: wqe.Flags, SrcQPN: qp.QPN, DstQPN: qp.remoteQPN,
				RAddr: wqe.RAddr, RKey: wqe.RKey, Imm: wqe.Imm, WRID: wqe.WRID, Data: data,
			}
			wb := h.wireBytes(len(data))
			if wqe.Opcode == OpRDMARead {
				pkt.LAddr = wqe.LAddr
				pkt.Data = nil
				// A read request is header-only; record the expected
				// length in RAddr-relative terms via the packet length.
				pkt.Imm = uint32(wqe.Length)
				wb = PktHeader
			}
			if wqe.Opcode == OpAtomicFAdd {
				// An atomic request is header + 8-byte operand (AtomicETH).
				pkt.LAddr = wqe.LAddr
				pkt.Data = nil
				pkt.Add = wqe.Add
				wb = PktHeader + 8
			}
			if qp.rel != nil {
				// PSNs are stamped at transmit time, after the ordering
				// chain, so PSN order equals wire order. The WQE completes
				// when the cumulative ACK (or read response) covers it.
				if qp.state != StateRTS {
					h.stats.FlushedWQEs++
					qp.SendCQ.push(CQE{Opcode: wqe.Opcode, WRID: wqe.WRID, QPN: qp.QPN, Status: StatusFlushErr})
					sent.Complete()
					return
				}
				pkt.PSN = qp.rel.nextPSN
				qp.rel.nextPSN++
				qp.rel.unacked = append(qp.rel.unacked, unackedEntry{
					pkt: pkt, bytes: wb,
					length:   wqe.Length,
					signaled: wqe.Flags&FlagSignaled != 0,
				})
				if !qp.rel.armed {
					h.armTimer(qp)
				}
				h.tx.Send(pkt, wb)
			} else {
				h.tx.Send(pkt, wb)
			}
		}
		sent.Complete()
		// A protection error moves the QP to ERR; later WQEs flush.
		if status != StatusOK {
			qp.state = StateErr
			qp.SendCQ.push(CQE{
				Opcode: wqe.Opcode, WRID: wqe.WRID, ByteLen: wqe.Length,
				QPN: qp.QPN, Status: status,
			})
			return
		}
		// RDMA READ and atomics complete only when the response lands (see
		// completeReadResp/completeAtomicResp). Under the reliability
		// protocol everything else completes on ACK; on the perfect wire,
		// locally.
		if qp.rel == nil && wqe.Opcode != OpRDMARead && wqe.Opcode != OpAtomicFAdd && wqe.Flags&FlagSignaled != 0 {
			qp.SendCQ.push(CQE{
				Opcode: wqe.Opcode, WRID: wqe.WRID, ByteLen: wqe.Length,
				QPN: qp.QPN, Status: status,
			})
		}
	})
}

// ---- receive engine ----

// receive lands one packet: RDMA writes go straight to memory; immediate
// and send operations additionally consume a receive WQE and complete into
// the receive CQ. Runs serially per HCA, preserving arrival order.
func (h *HCA) receive(p *sim.Proc, pkt Packet) {
	if h.e.Trace != nil {
		h.e.Tracef("%s: rx opcode %d, %dB for qp%d", h.cfg.Name, pkt.Opcode, len(pkt.Data), pkt.DstQPN)
	}
	h.stats.PacketsRx++
	if pkt.Poisoned {
		// The ICRC check rejects damaged packets before any processing;
		// the sender recovers by NAK or retransmission timeout.
		h.stats.IcrcDrops++
		return
	}
	p.Sleep(h.cfg.RxProcessTime)
	qp, ok := h.qps[pkt.DstQPN]
	if !ok {
		panic(fmt.Sprintf("ibsim: %s: packet for unknown QP %d", h.cfg.Name, pkt.DstQPN))
	}
	if qp.rel != nil {
		switch pkt.Opcode {
		case opAck:
			h.stats.AcksRx++
			h.ackUpTo(qp, pkt.PSN)
			return
		case opNak:
			h.handleNak(qp, pkt)
			return
		case opRnrNak:
			h.handleRnrNak(qp, pkt)
			return
		}
	}
	if qp.state != StateRTS && qp.state != StateRTR {
		h.stats.DroppedOnErrQP++
		return
	}
	if qp.rel != nil && pkt.Opcode != opReadResp && pkt.Opcode != opAtomicResp {
		if !h.responderAdmit(p, qp, pkt) {
			return
		}
	}
	switch pkt.Opcode {
	case OpRDMAWrite, OpRDMAWriteImm:
		if _, ok := h.lookupRKey(pkt.RKey, pkt.RAddr, len(pkt.Data)); !ok {
			h.stats.ProtectionErrs++
			return
		}
		if len(pkt.Data) > 0 {
			var land sim.SpanID
			if h.e.Observing() {
				land = h.e.SpanOpen(h.cfg.Name, "complete", sim.Attr{Key: "bytes", Val: int64(len(pkt.Data))})
			}
			h.e.SpanCloseAt(land, h.f.WriteBulk(p, h.ep, memspace.Addr(pkt.RAddr), pkt.Data))
		}
		if pkt.Opcode == OpRDMAWriteImm {
			h.completeReceive(p, qp, pkt, 0)
		}
	case OpSend:
		h.completeReceive(p, qp, pkt, 1)
	case OpRDMARead:
		h.serveRead(p, qp, pkt)
	case OpAtomicFAdd:
		h.serveAtomic(p, qp, pkt)
	case opReadResp:
		h.completeReadResp(p, qp, pkt)
	case opAtomicResp:
		h.completeAtomicResp(p, qp, pkt)
	default:
		panic(fmt.Sprintf("ibsim: %s: bad opcode %d", h.cfg.Name, pkt.Opcode))
	}
}

// serveRead answers a remote read: fetch local memory (the responder-side
// DMA pays the P2P read path when the region is GPU memory) and return
// the data.
func (h *HCA) serveRead(p *sim.Proc, qp *QP, pkt Packet) {
	length := int(pkt.Imm)
	if _, ok := h.lookupRKey(pkt.RKey, pkt.RAddr, length); !ok {
		h.stats.ProtectionErrs++
		return
	}
	data := make([]byte, length)
	h.dmaSlots.Acquire(p)
	h.f.ReadBulk(p, h.ep, memspace.Addr(pkt.RAddr), data)
	h.dmaSlots.Release()
	h.stats.ReadsServed++
	// The response echoes the request PSN: under the reliability protocol
	// it doubles as a cumulative ACK through that PSN.
	h.tx.Send(Packet{
		Opcode: opReadResp, Flags: pkt.Flags, SrcQPN: qp.QPN, DstQPN: pkt.SrcQPN,
		LAddr: pkt.LAddr, WRID: pkt.WRID, Data: data, PSN: pkt.PSN,
	}, h.wireBytes(length))
}

// serveAtomic answers a remote fetch-and-add: an atomic read-modify-write
// of one 8-byte word through the responder's DMA engine, returning the
// pre-add value. Unlike reads, atomics are not idempotent, so under the
// reliability protocol the response is cached for duplicate-request replay
// (responderAdmit must not re-execute the add). Verbs permits one
// outstanding atomic per QP, so a one-deep cache is exact.
func (h *HCA) serveAtomic(p *sim.Proc, qp *QP, pkt Packet) {
	if _, ok := h.lookupRKey(pkt.RKey, pkt.RAddr, 8); !ok {
		h.stats.ProtectionErrs++
		return
	}
	buf := make([]byte, 8)
	h.dmaSlots.Acquire(p)
	h.f.ReadBulk(p, h.ep, memspace.Addr(pkt.RAddr), buf)
	old := binary.LittleEndian.Uint64(buf)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], old+pkt.Add)
	h.f.WriteBulk(p, h.ep, memspace.Addr(pkt.RAddr), sum[:])
	h.dmaSlots.Release()
	h.stats.AtomicsServed++
	resp := Packet{
		Opcode: opAtomicResp, Flags: pkt.Flags, SrcQPN: qp.QPN, DstQPN: pkt.SrcQPN,
		LAddr: pkt.LAddr, WRID: pkt.WRID, Data: buf, PSN: pkt.PSN,
	}
	if qp.rel != nil {
		qp.rel.atomicRespValid = true
		qp.rel.atomicRespPSN = pkt.PSN
		qp.rel.atomicResp = resp
	}
	h.tx.Send(resp, h.wireBytes(8))
}

// completeAtomicResp lands the pre-add value at the origin and completes
// the atomic WQE into the send CQ. Like a read response, it doubles as a
// cumulative ACK under the reliability protocol.
func (h *HCA) completeAtomicResp(p *sim.Proc, qp *QP, pkt Packet) {
	if qp.rel != nil {
		h.ackUpTo(qp, pkt.PSN+1)
	}
	var land sim.SpanID
	if h.e.Observing() {
		land = h.e.SpanOpen(h.cfg.Name, "complete", sim.Attr{Key: "bytes", Val: int64(len(pkt.Data))})
	}
	h.e.SpanCloseAt(land, h.f.WriteBulk(p, h.ep, memspace.Addr(pkt.LAddr), pkt.Data))
	if pkt.Flags&FlagSignaled != 0 {
		qp.SendCQ.push(CQE{
			Opcode: OpAtomicFAdd, WRID: pkt.WRID, ByteLen: len(pkt.Data),
			QPN: qp.QPN, Status: StatusOK,
		})
	}
}

// completeReadResp lands read data at the origin and completes the read
// WQE into the send CQ.
func (h *HCA) completeReadResp(p *sim.Proc, qp *QP, pkt Packet) {
	if qp.rel != nil {
		// The response acknowledges everything up to and including the
		// request PSN; the read's own CQE is pushed below, so its unacked
		// entry releases silently.
		h.ackUpTo(qp, pkt.PSN+1)
	}
	if len(pkt.Data) > 0 {
		var land sim.SpanID
		if h.e.Observing() {
			land = h.e.SpanOpen(h.cfg.Name, "complete", sim.Attr{Key: "bytes", Val: int64(len(pkt.Data))})
		}
		h.e.SpanCloseAt(land, h.f.WriteBulk(p, h.ep, memspace.Addr(pkt.LAddr), pkt.Data))
	}
	if pkt.Flags&FlagSignaled != 0 {
		qp.SendCQ.push(CQE{
			Opcode: OpRDMARead, WRID: pkt.WRID, ByteLen: len(pkt.Data),
			QPN: qp.QPN, Status: StatusOK,
		})
	}
}

// completeReceive consumes one recv WQE. useAddr selects whether the
// payload lands at the recv WQE's address (send) or was already written
// via RETH (write-with-immediate, where the recv address may be zero —
// §IV-A of the paper).
func (h *HCA) completeReceive(p *sim.Proc, qp *QP, pkt Packet, useAddr int) {
	if qp.rqHeadHW >= qp.rqTailHW {
		// No posted receive: the RC transport would RNR-NAK; the paper
		// says "the communication fails".
		h.stats.RNRDrops++
		return
	}
	slotAddr := qp.RQSlotAddr(qp.rqHeadHW)
	qp.rqHeadHW++
	// Receive WQEs are prefetched into the HCA's descriptor cache ahead
	// of packet arrival; charge only the cache access, not a PCIe trip.
	buf := make([]byte, RecvWQEBytes)
	p.Sleep(100 * sim.Nanosecond)
	if err := h.f.Space().Read(slotAddr, buf); err != nil {
		panic(fmt.Sprintf("ibsim: %s: rq fetch: %v", h.cfg.Name, err))
	}
	rwqe, err := DecodeRecvWQE(buf)
	if err != nil {
		panic(fmt.Sprintf("ibsim: %s qp%d: %v", h.cfg.Name, qp.QPN, err))
	}
	if useAddr == 1 && len(pkt.Data) > 0 {
		if _, ok := h.lookupLKey(rwqe.LKey, rwqe.Addr, len(pkt.Data)); !ok {
			h.stats.ProtectionErrs++
			qp.RecvCQ.push(CQE{Opcode: pkt.Opcode, WRID: rwqe.WRID, QPN: qp.QPN, Status: StatusErr})
			return
		}
		h.f.WriteBulk(p, h.ep, memspace.Addr(rwqe.Addr), pkt.Data)
	}
	qp.RecvCQ.push(CQE{
		Opcode: pkt.Opcode, WRID: rwqe.WRID, ByteLen: len(pkt.Data),
		Imm: pkt.Imm, QPN: qp.QPN, Status: StatusOK,
	})
}
