package ibsim

import (
	"putget/internal/sim"
)

// RelConfig tunes the RC reliability protocol. All QPs of an HCA share
// these settings (real HCAs configure them per QP at RTR/RTS; one knob set
// is enough for the testbed).
type RelConfig struct {
	// AckCoalesce acks every Nth request packet immediately; smaller
	// values cost ack bandwidth, larger ones lean on AckDelay.
	AckCoalesce int
	// AckDelay bounds how long a received packet may wait for a coalesced
	// ACK.
	AckDelay sim.Duration
	// RetxTimeout is the requester's retransmission timer (Local ACK
	// Timeout in Verbs terms).
	RetxTimeout sim.Duration
	// RetryCnt bounds transport retries (timeouts + sequence NAKs) before
	// the QP moves to ERR with WcRetryExcErr.
	RetryCnt int
	// RnrRetry bounds receiver-not-ready retries before WcRnrRetryExcErr.
	RnrRetry int
	// RnrBackoff is the first RNR retry delay; it doubles per consecutive
	// RNR NAK.
	RnrBackoff sim.Duration
}

// DefaultRelConfig returns protocol tunables in real-HCA territory.
func DefaultRelConfig() *RelConfig {
	return &RelConfig{
		AckCoalesce: 4,
		AckDelay:    3 * sim.Microsecond,
		RetxTimeout: 20 * sim.Microsecond,
		RetryCnt:    7,
		RnrRetry:    7,
		RnrBackoff:  5 * sim.Microsecond,
	}
}

// unackedEntry is one transmitted-but-unacknowledged request packet. The
// model maps one WQE to one packet (MTU segmentation is folded into wire
// time), so the entry carries everything needed to retransmit and to
// complete the WQE.
type unackedEntry struct {
	pkt      Packet
	bytes    int // wire size for retransmission
	length   int // WQE byte length for the CQE
	signaled bool
}

// qpRel is the per-QP reliability state.
type qpRel struct {
	// Requester side.
	nextPSN    uint32
	unacked    []unackedEntry
	retryCount int
	rnrCount   int
	armed      bool
	deadline   sim.Time
	kick       *sim.Signal

	// Responder side.
	ePSN       uint32
	nakSent    bool // one NAK per expected-PSN value
	ackPending int
	ackGen     int

	// Atomic duplicate-replay cache: atomics are not idempotent, so a
	// replayed request re-sends the cached response instead of re-executing
	// the add. Verbs allows one outstanding atomic per QP, so the cache is
	// one-deep.
	atomicRespValid bool
	atomicRespPSN   uint32
	atomicResp      Packet
}

func newQPRel(e *sim.Engine) *qpRel {
	return &qpRel{kick: sim.NewSignal(e)}
}

// ---- requester side ----

// armTimer (re)starts the retransmission timer for the oldest unacked
// packet, or disarms it when nothing is outstanding.
func (h *HCA) armTimer(qp *QP) {
	r := qp.rel
	if len(r.unacked) == 0 {
		r.armed = false
		return
	}
	r.armed = true
	r.deadline = h.e.Now().Add(h.cfg.Rel.RetxTimeout)
	r.kick.Broadcast()
}

// retxTimer is the per-QP retransmission timer process: parked while
// nothing is outstanding, sleeping toward the deadline otherwise.
func (h *HCA) retxTimer(p *sim.Proc, qp *QP) {
	r := qp.rel
	for {
		for !r.armed {
			r.kick.Wait(p)
		}
		if now := p.Now(); now < r.deadline {
			p.SleepUntil(r.deadline)
			continue // deadline may have moved while sleeping
		}
		h.onRetxTimeout(qp)
	}
}

func (h *HCA) onRetxTimeout(qp *QP) {
	r := qp.rel
	if qp.state != StateRTS || len(r.unacked) == 0 {
		r.armed = false
		return
	}
	h.stats.Timeouts++
	r.retryCount++
	if h.e.Traced() {
		h.e.Tracev(h.cfg.Name, "retry", "retry: %s qp%d timeout #%d, resend from psn %d", h.cfg.Name, qp.QPN, r.retryCount, r.unacked[0].pkt.PSN)
	}
	if r.retryCount > h.cfg.Rel.RetryCnt {
		h.fatalQP(qp, StatusRetryExc)
		return
	}
	h.resendFrom(qp, r.unacked[0].pkt.PSN)
}

// resendFrom retransmits every unacked packet with PSN >= psn (go-back-N)
// and restarts the timer.
func (h *HCA) resendFrom(qp *QP, psn uint32) {
	r := qp.rel
	for _, en := range r.unacked {
		if en.pkt.PSN < psn {
			continue
		}
		h.stats.Retransmits++
		h.tx.Send(en.pkt, en.bytes)
	}
	r.armed = true
	r.deadline = h.e.Now().Add(h.cfg.Rel.RetxTimeout)
	r.kick.Broadcast()
}

// ackUpTo releases every unacked packet with PSN < psn: signaled writes
// and sends complete into the send CQ; reads and atomics complete
// separately when their response data lands.
func (h *HCA) ackUpTo(qp *QP, psn uint32) {
	r := qp.rel
	n := 0
	for _, en := range r.unacked {
		if en.pkt.PSN >= psn {
			break
		}
		n++
		if en.pkt.Opcode != OpRDMARead && en.pkt.Opcode != OpAtomicFAdd && en.signaled {
			qp.SendCQ.push(CQE{
				Opcode: en.pkt.Opcode, WRID: en.pkt.WRID, ByteLen: en.length,
				QPN: qp.QPN, Status: StatusOK,
			})
		}
	}
	if n == 0 {
		return
	}
	r.unacked = r.unacked[n:]
	r.retryCount, r.rnrCount = 0, 0
	h.armTimer(qp)
}

func (h *HCA) handleNak(qp *QP, pkt Packet) {
	h.stats.NaksRx++
	r := qp.rel
	// A NAK for psn acknowledges everything before it, then asks for a
	// resend from there; sequence errors count against the retry budget.
	h.ackUpTo(qp, pkt.PSN)
	if qp.state != StateRTS || len(r.unacked) == 0 {
		return
	}
	r.retryCount++
	if r.retryCount > h.cfg.Rel.RetryCnt {
		h.fatalQP(qp, StatusRetryExc)
		return
	}
	if h.e.Traced() {
		h.e.Tracev(h.cfg.Name, "retry", "retry: %s qp%d NAK, resend from psn %d", h.cfg.Name, qp.QPN, pkt.PSN)
	}
	h.resendFrom(qp, pkt.PSN)
}

func (h *HCA) handleRnrNak(qp *QP, pkt Packet) {
	h.stats.RnrNaksRx++
	r := qp.rel
	h.ackUpTo(qp, pkt.PSN)
	if qp.state != StateRTS || len(r.unacked) == 0 {
		return
	}
	r.rnrCount++
	if r.rnrCount > h.cfg.Rel.RnrRetry {
		h.fatalQP(qp, StatusRnrExc)
		return
	}
	backoff := h.cfg.Rel.RnrBackoff << (r.rnrCount - 1)
	if h.e.Traced() {
		h.e.Tracev(h.cfg.Name, "retry", "retry: %s qp%d RNR NAK #%d, backoff %v", h.cfg.Name, qp.QPN, r.rnrCount, backoff)
	}
	// Hold the timer past the backoff window, then resend.
	r.deadline = h.e.Now().Add(backoff + h.cfg.Rel.RetxTimeout)
	r.kick.Broadcast()
	psn := pkt.PSN
	h.e.After(backoff, func() {
		if qp.state == StateRTS && len(r.unacked) > 0 {
			h.resendFrom(qp, psn)
		}
	})
}

// fatalQP gives up on the oldest unacked request: its CQE carries the
// exhaustion status, the QP moves to ERR, and everything else flushes.
func (h *HCA) fatalQP(qp *QP, status int) {
	r := qp.rel
	h.stats.RetryExhausted++
	if h.e.Traced() {
		h.e.Tracev(h.cfg.Name, "retry", "retry: %s qp%d retries exhausted (status %d) -> ERR", h.cfg.Name, qp.QPN, status)
	}
	if len(r.unacked) > 0 {
		en := r.unacked[0]
		r.unacked = r.unacked[1:]
		qp.SendCQ.push(CQE{
			Opcode: en.pkt.Opcode, WRID: en.pkt.WRID, ByteLen: en.length,
			QPN: qp.QPN, Status: status,
		})
	}
	qp.state = StateErr
	qp.flush()
}

// ---- responder side ----

// responderAdmit enforces PSN sequencing and receiver-readiness for an
// inbound request packet. It returns true when the packet should be
// executed; duplicates are re-acknowledged (and reads re-served), gaps are
// NAKed, and not-ready receives are RNR-NAKed.
func (h *HCA) responderAdmit(p *sim.Proc, qp *QP, pkt Packet) bool {
	r := qp.rel
	if pkt.PSN != r.ePSN {
		if pkt.PSN < r.ePSN {
			// Already delivered: a lost ACK or a go-back-N replay. Writes
			// are idempotent but receives are not, so never re-execute;
			// reads are re-served (the original response may be lost).
			h.stats.DupRx++
			if pkt.Opcode == OpRDMARead {
				h.serveRead(p, qp, pkt)
				return false
			}
			if pkt.Opcode == OpAtomicFAdd {
				// Replay the cached response — re-executing would apply
				// the add twice.
				if r.atomicRespValid && r.atomicRespPSN == pkt.PSN {
					h.tx.Send(r.atomicResp, h.wireBytes(8))
				} else {
					h.sendAck(qp)
				}
				return false
			}
			h.sendAck(qp)
			return false
		}
		// Gap: something before this packet was lost. NAK once per
		// expected PSN so a burst of in-flight packets triggers a single
		// resend.
		if !r.nakSent {
			r.nakSent = true
			h.stats.NaksSent++
			if h.e.Traced() {
				h.e.Tracev(h.cfg.Name, "retry", "retry: %s qp%d gap (got psn %d, want %d), NAK", h.cfg.Name, qp.QPN, pkt.PSN, r.ePSN)
			}
			h.tx.Send(Packet{Opcode: opNak, SrcQPN: qp.QPN, DstQPN: qp.remoteQPN, PSN: r.ePSN}, PktHeader)
		}
		return false
	}
	// In-order. Receiver-not-ready is detected before the PSN advances so
	// the requester replays the same packet after backoff.
	if (pkt.Opcode == OpSend || pkt.Opcode == OpRDMAWriteImm) && qp.rqHeadHW >= qp.rqTailHW {
		h.stats.RnrNaksSent++
		if h.e.Traced() {
			h.e.Tracev(h.cfg.Name, "retry", "retry: %s qp%d RNR (psn %d)", h.cfg.Name, qp.QPN, pkt.PSN)
		}
		h.tx.Send(Packet{Opcode: opRnrNak, SrcQPN: qp.QPN, DstQPN: qp.remoteQPN, PSN: pkt.PSN}, PktHeader)
		return false
	}
	r.ePSN++
	r.nakSent = false
	if pkt.Opcode == OpRDMARead || pkt.Opcode == OpAtomicFAdd {
		// The read/atomic response doubles as a cumulative ACK; cancel any
		// pending coalesced ACK.
		r.ackPending = 0
		r.ackGen++
	} else {
		h.noteAckNeeded(qp)
	}
	return true
}

// noteAckNeeded implements ACK coalescing: every AckCoalesce-th packet
// acks immediately, stragglers after at most AckDelay.
func (h *HCA) noteAckNeeded(qp *QP) {
	r := qp.rel
	r.ackPending++
	if r.ackPending >= h.cfg.Rel.AckCoalesce {
		h.sendAck(qp)
		return
	}
	gen := r.ackGen
	h.e.After(h.cfg.Rel.AckDelay, func() {
		if r.ackGen == gen && r.ackPending > 0 {
			h.sendAck(qp)
		}
	})
}

// sendAck emits a cumulative ACK for everything below the expected PSN.
func (h *HCA) sendAck(qp *QP) {
	r := qp.rel
	r.ackPending = 0
	r.ackGen++
	h.stats.AcksSent++
	h.tx.Send(Packet{Opcode: opAck, SrcQPN: qp.QPN, DstQPN: qp.remoteQPN, PSN: r.ePSN}, PktHeader)
}
