package sim

// Chan is an unbounded FIFO mailbox between processes. Send never blocks;
// Recv parks until an item is available. It models hardware work queues
// whose depth we do not want to constrain (back-pressure, where needed, is
// modelled explicitly by the producer).
type Chan[T any] struct {
	e       *Engine
	items   []T
	waiters *Signal
}

// NewChan creates a mailbox bound to engine e.
func NewChan[T any](e *Engine) *Chan[T] {
	return &Chan[T]{e: e, waiters: NewSignal(e)}
}

// Send enqueues v and wakes one blocked receiver, if any.
func (c *Chan[T]) Send(v T) {
	c.items = append(c.items, v)
	c.waiters.Pulse()
}

// Recv dequeues the oldest item, parking p until one exists. p must
// belong to the same engine as the channel (affinity guard).
func (c *Chan[T]) Recv(p *Proc) T {
	c.e.mustOwn(p, "Chan.Recv")
	for len(c.items) == 0 {
		c.waiters.Wait(p)
	}
	v := c.items[0]
	var zero T
	c.items[0] = zero
	c.items = c.items[1:]
	return v
}

// TryRecv dequeues without blocking; ok reports whether an item was taken.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.items) == 0 {
		return v, false
	}
	v = c.items[0]
	var zero T
	c.items[0] = zero
	c.items = c.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (c *Chan[T]) Len() int { return len(c.items) }
