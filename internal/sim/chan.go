package sim

// Chan is an unbounded FIFO mailbox between processes. Send never blocks;
// Recv parks until an item is available. It models hardware work queues
// whose depth we do not want to constrain (back-pressure, where needed, is
// modelled explicitly by the producer).
//
// Storage is a head-indexed power-of-two ring: consumed slots are zeroed
// and reused, so a long-lived mailbox's footprint tracks its peak
// occupancy, not its lifetime item count (the former front-slicing
// implementation retained the consumed prefix of the backing array
// forever).
type Chan[T any] struct {
	e       *Engine
	buf     []T // ring storage, len is a power of two (or 0)
	head    int // index of the oldest item
	n       int // occupancy
	waiters *Signal
}

// NewChan creates a mailbox bound to engine e.
func NewChan[T any](e *Engine) *Chan[T] {
	return &Chan[T]{e: e, waiters: NewSignal(e)}
}

// Send enqueues v and wakes one blocked receiver, if any.
func (c *Chan[T]) Send(v T) {
	if c.n == len(c.buf) {
		c.grow()
	}
	c.buf[(c.head+c.n)&(len(c.buf)-1)] = v
	c.n++
	c.waiters.Pulse()
}

// grow doubles the ring (minimum 8 slots), unwrapping the live items to
// the front of the new buffer.
func (c *Chan[T]) grow() {
	cap := 2 * len(c.buf)
	if cap < 8 {
		cap = 8
	}
	nb := make([]T, cap)
	for i := 0; i < c.n; i++ {
		nb[i] = c.buf[(c.head+i)&(len(c.buf)-1)]
	}
	c.buf = nb
	c.head = 0
}

// take removes and returns the oldest item; the caller guarantees c.n > 0.
// The vacated slot is zeroed so the ring does not retain the value.
func (c *Chan[T]) take() T {
	v := c.buf[c.head]
	var zero T
	c.buf[c.head] = zero
	c.head = (c.head + 1) & (len(c.buf) - 1)
	c.n--
	return v
}

// Recv dequeues the oldest item, parking p until one exists. p must
// belong to the same engine as the channel (affinity guard).
func (c *Chan[T]) Recv(p *Proc) T {
	c.e.mustOwn(p, "Chan.Recv")
	for c.n == 0 {
		c.waiters.Wait(p)
	}
	return c.take()
}

// TryRecv dequeues without blocking; ok reports whether an item was taken.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if c.n == 0 {
		return v, false
	}
	return c.take(), true
}

// Len reports the number of queued items.
func (c *Chan[T]) Len() int { return c.n }
