package sim

import (
	"testing"
	"testing/quick"
)

func TestTimerCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.AtTimer(100, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer not active after arming")
	}
	if !tm.Cancel() {
		t.Fatal("Cancel returned false on an armed timer")
	}
	if tm.Active() {
		t.Fatal("timer active after Cancel")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Cancel, want 0", e.Pending())
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if e.Executed() != 0 {
		t.Fatalf("Executed = %d, want 0: a cancelled event must not count", e.Executed())
	}
}

func TestTimerCancelAfterFiringIsNoop(t *testing.T) {
	e := NewEngine()
	count := 0
	tm := e.AfterTimer(10, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if tm.Active() {
		t.Fatal("timer active after firing")
	}
	if tm.Cancel() {
		t.Fatal("Cancel returned true on a fired timer")
	}
	if count != 1 {
		t.Fatalf("count = %d after late Cancel, want 1", count)
	}
}

func TestTimerSlotReuseInvalidatesStaleHandle(t *testing.T) {
	e := NewEngine()
	first := e.AtTimer(10, func() {})
	e.Run() // fires; its slot returns to the free list
	second := e.AtTimer(20, func() {})
	if first.Cancel() {
		t.Fatal("stale handle cancelled a recycled slot's timer")
	}
	if !second.Active() {
		t.Fatal("recycled-slot timer should still be armed")
	}
	if !second.Cancel() {
		t.Fatal("live handle failed to cancel")
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	if tm.Active() {
		t.Fatal("zero Timer active")
	}
	if tm.Cancel() {
		t.Fatal("zero Timer Cancel returned true")
	}
}

func TestTimerCancelMidHeapPreservesOrder(t *testing.T) {
	// Cancelling events from the middle of the queue must not disturb the
	// dispatch order of the survivors, whatever the arming order was.
	f := func(offsets []uint8, cancelMask uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		var timers []Timer
		for _, off := range offsets {
			at := Time(off)
			timers = append(timers, e.AtTimer(at, func() { fired = append(fired, at) }))
		}
		cancelled := 0
		for i, tm := range timers {
			if cancelMask&(1<<(i%16)) != 0 {
				tm.Cancel()
				cancelled++
			}
		}
		e.Run()
		if len(fired) != len(offsets)-cancelled {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPendingStopHonoredByNextRun(t *testing.T) {
	// A Stop issued while the engine is idle must make the next Run return
	// before executing anything. The old loop reset the flag on entry,
	// silently discarding the stop.
	e := NewEngine()
	count := 0
	e.At(10, func() { count++ })
	e.Stop()
	e.Run()
	if count != 0 {
		t.Fatalf("count = %d: Run executed events despite a pending Stop", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run() // the stop was consumed; this run proceeds
	if count != 1 {
		t.Fatalf("count = %d after second Run, want 1", count)
	}
}

func TestPendingStopHonoredByRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(10, func() { count++ })
	e.Stop()
	e.RunUntil(100)
	if count != 0 {
		t.Fatalf("count = %d: RunUntil executed events despite a pending Stop", count)
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %v: a stopped RunUntil must not advance the clock", e.Now())
	}
	e.RunUntil(100)
	if count != 1 || e.Now() != 100 {
		t.Fatalf("count = %d, Now = %v after second RunUntil, want 1, 100", count, e.Now())
	}
}

func TestEventPanicPropagatesFromProcCarriedLoop(t *testing.T) {
	// An event callback that panics must surface out of Run even when the
	// event happens to be dispatched by a parked process's goroutine
	// (the carrier), not the Run caller's.
	e := NewEngine()
	e.Spawn("carrier", func(p *Proc) {
		for {
			p.Sleep(5) // resident: at t=10 this process carries the loop
		}
	})
	e.At(10, func() { panic("boom from event") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("event panic did not propagate out of Run")
		} else if r != "boom from event" {
			t.Fatalf("panic = %v, want original value", r)
		}
		e.Shutdown()
	}()
	e.Run()
}
