package sim

import (
	"runtime"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order broken: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestAfterFromEventContext(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("After fired at %v, want 150", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i*100), func() { count++ })
	}
	e.RunUntil(500)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 500 {
		t.Fatalf("Now = %v, want 500", e.Now())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count after Run = %d, want 10", count)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1234)
	if e.Now() != 1234 {
		t.Fatalf("Now = %v, want 1234", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 after Stop", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 after resume", count)
	}
}

func TestProcSleepSequence(t *testing.T) {
	e := NewEngine()
	var wakes []Time
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(100)
			wakes = append(wakes, p.Now())
		}
	})
	e.Run()
	for i, w := range wakes {
		if w != Time((i+1)*100) {
			t.Fatalf("wake %d at %v, want %v", i, w, (i+1)*100)
		}
	}
	if e.Live() != 0 {
		t.Fatalf("Live = %d, want 0", e.Live())
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(10)
				log = append(log, "a")
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(10)
				log = append(log, "b")
			}
		})
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleave: %v vs %v", first, again)
			}
		}
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childRan Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(100)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(50)
			childRan = c.Now()
		})
		p.Sleep(1000)
	})
	e.Run()
	if childRan != 150 {
		t.Fatalf("child finished at %v, want 150", childRan)
	}
}

func TestSleepUntilPastPanics(t *testing.T) {
	e := NewEngine()
	panicked := false
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
			// Let the goroutine exit cleanly through the spawn wrapper.
		}()
		p.Sleep(100)
		p.SleepUntil(50)
	})
	e.Run()
	if !panicked {
		t.Fatal("expected SleepUntil in the past to panic")
	}
}

// Property: for any set of event offsets, events fire in nondecreasing
// time order and the clock ends at the max offset.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		e := NewEngine()
		var seen []Time
		var max Time
		for _, off := range offsets {
			at := Time(off)
			if at > max {
				max = at
			}
			e.At(at, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		if len(seen) != len(offsets) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{1500 * Nanosecond, "1.5us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestBytesAt(t *testing.T) {
	// 1000 bytes at 1 GB/s = 1 us.
	if got := BytesAt(1000, 1e9); got != Duration(Microsecond) {
		t.Fatalf("BytesAt = %v, want 1us", got)
	}
	if got := BytesAt(0, 1e9); got != 0 {
		t.Fatalf("BytesAt(0) = %v, want 0", got)
	}
	if got := BytesAt(-5, 1e9); got != 0 {
		t.Fatalf("BytesAt(-5) = %v, want 0", got)
	}
}

func TestShutdownReleasesParkedGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	engines := make([]*Engine, 50)
	for i := range engines {
		e := NewEngine()
		ch := NewChan[int](e)
		sig := NewSignal(e)
		for j := 0; j < 4; j++ {
			e.Spawn("parked-ch", func(p *Proc) { ch.Recv(p) })
			e.Spawn("parked-sig", func(p *Proc) { sig.Wait(p) })
		}
		e.Run()
		engines[i] = e
	}
	mid := runtime.NumGoroutine()
	if mid < before+300 {
		t.Fatalf("expected ~400 parked goroutines, have %d -> %d", before, mid)
	}
	for _, e := range engines {
		e.Shutdown()
		if e.Live() != 0 {
			t.Fatalf("Live = %d after Shutdown", e.Live())
		}
	}
	// Give the runtime a moment to reap.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+20; i++ {
		runtime.Gosched()
	}
	after := runtime.NumGoroutine()
	if after > before+20 {
		t.Fatalf("goroutines leaked after Shutdown: %d -> %d -> %d", before, mid, after)
	}
}

func TestShutdownMidSleepProc(t *testing.T) {
	e := NewEngine()
	cleanExit := false
	e.Spawn("sleeper", func(p *Proc) {
		defer func() { cleanExit = true }()
		p.Sleep(Duration(1e12)) // 1s of virtual time, never reached
	})
	e.RunUntil(10)
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("Live = %d", e.Live())
	}
	_ = cleanExit // defers do run during the kill unwind
}

func TestEngineUsableForInspectionAfterShutdown(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) { p.Sleep(100) })
	e.Run()
	e.Shutdown()
	if e.Now() != 100 {
		t.Fatalf("Now = %v", e.Now())
	}
}
