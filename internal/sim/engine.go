package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant, preserving schedule order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending-event queue.
//
// All simulation code — event callbacks and process bodies — runs under the
// engine's strict handoff discipline, so engine state never needs locking.
// Calling engine methods from goroutines outside the simulation is not
// supported.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64

	// yield is signalled by a process when it parks or exits, handing
	// control back to the engine loop.
	yield chan struct{}

	procs   int // live (not yet finished) processes
	live    map[*Proc]struct{}
	stopped bool

	// Trace, when non-nil, receives a line per traced event. Models call
	// Tracef to emit them.
	Trace func(t Time, msg string)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{}), live: map[*Proc]struct{}{}}
}

// Shutdown terminates every parked process so their goroutines exit. Call
// it when a simulation is abandoned (testbed teardown); the engine must
// not be running. The engine remains usable only for inspection afterward.
func (e *Engine) Shutdown() {
	for p := range e.live {
		if p.done {
			continue
		}
		p.kill = true
		p.resume()
	}
	e.live = map[*Proc]struct{}{}
	e.events = nil
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Tracef emits a trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...interface{}) {
	if e.Trace != nil {
		e.Trace(e.now, fmt.Sprintf(format, args...))
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue drains or Stop is
// called. Processes blocked on signals with no pending wakeup are considered
// quiescent; Run returns with them still parked.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
	}
}

// RunUntil executes events until virtual time t is reached (events at
// exactly t still run), the queue drains, or Stop is called.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= t {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < t && !e.stopped {
		e.now = t
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Live reports the number of processes that have started but not finished.
func (e *Engine) Live() int { return e.procs }
