package sim

import (
	"fmt"
	"sync/atomic"
)

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant, preserving schedule order. Events are value-typed
// and live directly in the engine's heap slice: scheduling neither
// heap-allocates an event nor boxes it through an interface (the old
// *event + container/heap queue paid both per event). tslot links a
// cancellable event to its timer slot, -1 for plain events.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	tslot int32
}

// evLess orders events by (time, schedule order).
func evLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// setPos records an event's current heap index in its timer slot, so
// Timer.Cancel can remove it from the middle of the heap in O(log n).
//
//putget:hot
func (e *Engine) setPos(i int) {
	if t := e.events[i].tslot; t >= 0 {
		e.timers[t].pos = int32(i)
	}
}

// The queue is a 4-ary min-heap: half the depth of a binary heap and the
// four children of a node sit in adjacent cache lines, which is worth
// ~30% on the pop-dominated access pattern of a simulation run. Any
// valid heap yields the same pop order — (at, seq) is a total order — so
// arity is invisible to simulation results.

// siftUp restores the heap invariant after inserting at index i. It moves
// the hole rather than swapping, so each displaced event is written once.
//
//putget:hot
func (e *Engine) siftUp(i int) {
	ev := e.events[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !evLess(&ev, &e.events[parent]) {
			break
		}
		e.events[i] = e.events[parent]
		e.setPos(i)
		i = parent
	}
	e.events[i] = ev
	e.setPos(i)
}

// siftDown restores the heap invariant below index i and reports whether
// the element moved (Cancel uses that to decide whether to sift up).
//
//putget:hot
func (e *Engine) siftDown(i int) bool {
	n := len(e.events)
	ev := e.events[i]
	start := i
	for {
		l := 4*i + 1
		if l >= n {
			break
		}
		end := l + 4
		if end > n {
			end = n
		}
		m := l
		for c := l + 1; c < end; c++ {
			if evLess(&e.events[c], &e.events[m]) {
				m = c
			}
		}
		if !evLess(&e.events[m], &ev) {
			break
		}
		e.events[i] = e.events[m]
		e.setPos(i)
		i = m
	}
	e.events[i] = ev
	e.setPos(i)
	return i != start
}

// popMin removes and returns the earliest event. The vacated tail slot is
// zeroed so the heap does not retain the callback closure.
//
//putget:hot
func (e *Engine) popMin() (Time, func()) {
	ev := e.events[0]
	if ev.tslot >= 0 {
		e.freeTimerSlot(ev.tslot)
	}
	n := len(e.events) - 1
	if n > 0 {
		e.events[0] = e.events[n]
		e.setPos(0)
	}
	e.events[n] = event{}
	e.events = e.events[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return ev.at, ev.fn
}

// removeEvent deletes the event at heap index i (Timer.Cancel path).
//
//putget:hot
func (e *Engine) removeEvent(i int) {
	n := len(e.events) - 1
	if i != n {
		e.events[i] = e.events[n]
		e.setPos(i)
	}
	e.events[n] = event{}
	e.events = e.events[:n]
	if i < n && !e.siftDown(i) {
		e.siftUp(i)
	}
}

// Engine owns the virtual clock and the pending-event queue.
//
// All simulation code — event callbacks and process bodies — runs under the
// engine's strict handoff discipline, so engine state never needs locking.
// Calling engine methods from goroutines outside the simulation is not
// supported.
type Engine struct {
	now      Time
	events   []event
	seq      uint64
	executed uint64

	// timers backs cancellable events: slot i holds the heap position of
	// the event AtTimer armed (or -1 once it fired or was cancelled) plus
	// a generation counter that invalidates stale handles when the slot
	// is recycled through freeT.
	timers []timerSlot
	freeT  []int32

	// carrier is the process whose goroutine currently runs the event
	// loop (nil: the Run caller's goroutine). mainWake is the Run
	// caller's handoff channel; unwind tells the innermost loop frame to
	// return (set inside a dispatched event); bound is the RunUntil time
	// limit for every loop frame of the current run.
	carrier  *Proc
	mainWake chan uint8
	unwind   int
	bound    Time
	panicVal interface{} // event panic in flight to the Run caller

	procs   int // live (not yet finished) processes
	live    map[*Proc]struct{}
	stopped bool

	// id names the engine in affinity diagnostics; dead marks an engine
	// whose simulation was torn down by Shutdown. busy detects concurrent
	// scheduling from two goroutines (see touch).
	id   uint64
	dead bool
	busy atomic.Int32

	// Trace, when non-nil, receives a line per traced event. Models call
	// Tracef to emit them.
	Trace func(t Time, msg string)

	// TraceEv, when non-nil, receives structured trace lines: the emitting
	// component and the event kind travel beside the text instead of being
	// re-derived from it. Models call Tracev to emit them.
	TraceEv func(t Time, comp, kind, msg string)

	// obs receives span open/close and metric samples; nil disables the
	// structured observability layer entirely (the common case — every
	// instrumentation site guards on Observing, so a run without an
	// observer allocates and formats nothing).
	obs     Observer
	spanSeq uint64
}

// Attr is one key=value attribute on a span.
type Attr struct {
	Key string
	Val int64
}

// SpanID identifies one span within its engine. The zero SpanID is the
// "observability disabled" sentinel: SpanOpen returns it when no observer
// is installed, and SpanClose ignores it, so instrumentation sites need no
// guard around the close path.
type SpanID uint64

// Observer receives the structured observability stream: typed spans
// bracketing pipeline stages and virtual-clock metric samples. All calls
// happen under the engine's single-threaded handoff discipline, in a
// deterministic order for a given simulation.
type Observer interface {
	// SpanOpen announces a span. at may lie in the future when the stage's
	// schedule is known at open time (cut-through wire occupancy).
	SpanOpen(id SpanID, at Time, comp, kind string, attrs []Attr)
	// SpanClose ends a span. at may lie in the future (see SpanCloseAt).
	SpanClose(id SpanID, at Time)
	// MetricSample records one point of a virtual-time series.
	MetricSample(at Time, comp, name string, value float64)
	// Shutdown is called by Engine.Shutdown so observers can force-close
	// spans still open when a simulation is torn down.
	Shutdown(at Time)
}

// teeObserver fans the stream out to two observers, letting a second
// Attach coexist with an earlier one.
type teeObserver struct{ a, b Observer }

func (t teeObserver) SpanOpen(id SpanID, at Time, comp, kind string, attrs []Attr) {
	t.a.SpanOpen(id, at, comp, kind, attrs)
	t.b.SpanOpen(id, at, comp, kind, attrs)
}
func (t teeObserver) SpanClose(id SpanID, at Time) { t.a.SpanClose(id, at); t.b.SpanClose(id, at) }
func (t teeObserver) MetricSample(at Time, comp, name string, v float64) {
	t.a.MetricSample(at, comp, name, v)
	t.b.MetricSample(at, comp, name, v)
}
func (t teeObserver) Shutdown(at Time) { t.a.Shutdown(at); t.b.Shutdown(at) }

// engineSeq hands out engine ids for affinity diagnostics.
var engineSeq atomic.Uint64

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		id:       engineSeq.Add(1),
		mainWake: make(chan uint8),
		live:     map[*Proc]struct{}{},
	}
}

// ID returns the engine's process-unique id (used in diagnostics).
func (e *Engine) ID() uint64 { return e.id }

// mustOwn panics when p belongs to a different engine than e. It is the
// engine-affinity guard: with many isolated engines running concurrently
// (one per experiment cell), accidentally sharing a Chan, Signal,
// Resource or Server across engines would corrupt both simulations
// silently — this turns the bug into an immediate diagnostic.
func (e *Engine) mustOwn(p *Proc, what string) {
	if p.e != e {
		panic(fmt.Sprintf(
			"sim: engine affinity violation: proc %q of engine #%d called %s on an object of engine #%d",
			p.name, p.e.id, what, e.id))
	}
}

// mustAlive panics when the engine was shut down: a scheduling call on a
// dead engine means a stale reference leaked out of a finished
// experiment cell (the classic cross-cell sharing bug).
func (e *Engine) mustAlive(what string) {
	if e.dead {
		panic(fmt.Sprintf(
			"sim: engine #%d used after Shutdown (%s): stale reference from a finished cell?", e.id, what))
	}
}

// touch brackets a state mutation with a compare-and-swap marker. Legal
// use is strictly single-threaded (the handoff discipline), so a CAS
// collision means two goroutines are inside the same engine at once —
// almost always an object shared across concurrently-running engines.
func (e *Engine) touch(what string) {
	if !e.busy.CompareAndSwap(0, 1) {
		panic(fmt.Sprintf(
			"sim: engine #%d touched concurrently from two goroutines (%s): cross-engine sharing?", e.id, what))
	}
}

// untouch releases the marker set by touch.
func (e *Engine) untouch() { e.busy.Store(0) }

// Shutdown terminates every parked process so their goroutines exit. Call
// it when a simulation is abandoned (testbed teardown); the engine must
// not be running. The engine remains usable only for inspection afterward.
func (e *Engine) Shutdown() {
	e.dead = true
	if e.obs != nil {
		e.obs.Shutdown(e.now)
	}
	for p := range e.live {
		if p.done {
			continue
		}
		p.kill = true
		p.wake <- wakeKill
		<-e.mainWake // the dying process hands control back
	}
	e.live = map[*Proc]struct{}{}
	e.events = nil
	e.timers = nil
	e.freeT = nil
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Tracef emits a trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...interface{}) {
	if e.Trace != nil {
		e.Trace(e.now, fmt.Sprintf(format, args...))
	}
}

// Traced reports whether any trace hook is installed; models use it to
// skip formatting work on untraced runs.
func (e *Engine) Traced() bool { return e.Trace != nil || e.TraceEv != nil }

// Tracev emits a structured trace line carrying the emitting component and
// the event kind ("fault", "retry", ...). It prefers the structured hook
// and falls back to the plain one so legacy observers still see the text.
func (e *Engine) Tracev(comp, kind, format string, args ...interface{}) {
	if e.TraceEv != nil {
		e.TraceEv(e.now, comp, kind, fmt.Sprintf(format, args...))
	} else if e.Trace != nil {
		e.Trace(e.now, fmt.Sprintf(format, args...))
	}
}

// SetObserver installs obs on the engine's observability stream. A second
// call tees to both observers rather than silently replacing the first.
func (e *Engine) SetObserver(obs Observer) {
	if e.obs != nil {
		e.obs = teeObserver{e.obs, obs}
		return
	}
	e.obs = obs
}

// Observing reports whether an observer is installed. Instrumentation
// sites guard attribute construction on it so disabled runs stay free.
func (e *Engine) Observing() bool { return e.obs != nil }

// SpanOpen opens a span starting now and returns its id (0 when no
// observer is installed). Span ids are per-engine, so concurrent isolated
// engines produce identical streams regardless of worker interleaving.
func (e *Engine) SpanOpen(comp, kind string, attrs ...Attr) SpanID {
	return e.SpanOpenAt(e.now, comp, kind, attrs...)
}

// SpanOpenAt opens a span whose start time is known explicitly — possibly
// in the future, for stages whose schedule is decided at call time (a
// cut-through wire reservation occupies the link later). Starts before now
// are allowed down to 0; future starts must be closed at or after them.
func (e *Engine) SpanOpenAt(at Time, comp, kind string, attrs ...Attr) SpanID {
	if e.obs == nil {
		return 0
	}
	if at < 0 {
		at = 0
	}
	e.spanSeq++
	id := SpanID(e.spanSeq)
	e.obs.SpanOpen(id, at, comp, kind, attrs)
	return id
}

// SpanClose ends a span now. Closing the zero SpanID is a no-op.
func (e *Engine) SpanClose(id SpanID) { e.SpanCloseAt(id, e.now) }

// SpanCloseAt ends a span at an explicit time, possibly in the future —
// used when a stage's completion instant is already known at scheduling
// time (a posted write's delivery, a reserved DMA's finish).
func (e *Engine) SpanCloseAt(id SpanID, at Time) {
	if id == 0 || e.obs == nil {
		return
	}
	if at < e.now {
		at = e.now
	}
	e.obs.SpanClose(id, at)
}

// Metric records one sample of a virtual-time metric series (queue depth,
// in-flight bytes, link utilization) when an observer is installed.
func (e *Engine) Metric(comp, name string, value float64) {
	if e.obs != nil {
		e.obs.MetricSample(e.now, comp, name, value)
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently corrupt causality. Scheduling on a shut-down engine,
// or concurrently with another goroutine, panics with an engine-affinity
// diagnostic.
//
//putget:hot
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, fn, -1)
}

// schedule is the shared insertion path for At and AtTimer. The affinity
// bracket is inlined (no defer) — this runs once per scheduled event and
// is the hottest function in the simulator.
//
//putget:hot
func (e *Engine) schedule(t Time, fn func(), tslot int32) {
	e.mustAlive("At")
	e.touch("At")
	if t < e.now {
		e.untouch()
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.events = append(e.events, event{at: t, seq: e.seq, fn: fn, tslot: tslot})
	e.siftUp(len(e.events) - 1)
	e.untouch()
}

// After schedules fn to run d after the current time.
//
//putget:hot
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Stop makes the engine stop executing events: a running Run/RunUntil
// returns after the current event completes, and a Stop issued while the
// engine is idle makes the next Run/RunUntil return before executing
// anything (the stop is consumed either way). Pending events remain
// queued; a subsequent Run continues.
func (e *Engine) Stop() { e.stopped = true }

// maxTime is Run's bound: later than any schedulable instant.
const maxTime = Time(1<<63 - 1)

// loop dispatches events in time order on the calling goroutine until the
// queue drains, the bound passes, Stop is consumed, or a dispatched event
// sets an unwind code (the carrier process was woken mid-loop, or a
// process finished the run under the Run caller's feet). Any simulation
// goroutine may run it — the carrier discipline guarantees exactly one
// does at a time.
//
//putget:hot
func (e *Engine) loop() int {
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= e.bound {
		at, fn := e.popMin()
		e.now = at
		e.executed++
		fn()
		if u := e.unwind; u != unwindNone {
			e.unwind = unwindNone
			return u
		}
	}
	return unwindNone
}

// Run executes events in time order until the queue drains or Stop is
// called. Processes blocked on signals with no pending wakeup are considered
// quiescent; Run returns with them still parked.
func (e *Engine) Run() {
	e.mustAlive("Run")
	e.bound = maxTime
	e.loop()
	e.stopped = false
}

// RunUntil executes events until virtual time t is reached (events at
// exactly t still run), the queue drains, or Stop is called.
func (e *Engine) RunUntil(t Time) {
	e.mustAlive("RunUntil")
	e.bound = t
	e.loop()
	if e.now < t && !e.stopped {
		e.now = t
	}
	e.stopped = false
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Executed reports the total number of events the engine has run — a
// deterministic measure of simulation work (virtual-event throughput
// benchmarks divide it by wall time).
func (e *Engine) Executed() uint64 { return e.executed }

// Live reports the number of processes that have started but not finished.
func (e *Engine) Live() int { return e.procs }
